(* Benchmark entry point.

   Part 1 regenerates every paper artifact (experiments E1-E12, tables
   printed to stdout; see EXPERIMENTS.md for the expected shapes).
   Part 2 runs bechamel micro-benchmarks on the engineering-critical
   paths (P1-P5 in DESIGN.md): knowledge evaluation, universe
   enumeration (full vs canonical ablation), chain detection, vector
   clocks, bitsets. *)
open Bechamel
open Toolkit
open Hpl_core

let p0 = Pid.of_int 0

(* -- P1: knows() vs universe size ------------------------------------ *)

let chatter ~n ~k =
  Spec.make ~n (fun p history ->
      if List.length history >= k then []
      else
        let right = Pid.of_int ((Pid.to_int p + 1) mod n) in
        [ Spec.Send_to (right, "c"); Spec.Do "idle"; Spec.Recv_any ])

let knows_bench ~depth =
  let u = Universe.enumerate ~mode:`Canonical (chatter ~n:3 ~k:3) ~depth in
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  let name = Printf.sprintf "knows/U=%d" (Universe.size u) in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Prop.extent u (Knowledge.knows u (Pset.singleton p0) sent))))

let knows_naive_bench ~depth =
  let u = Universe.enumerate ~mode:`Canonical (chatter ~n:3 ~k:3) ~depth in
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  let ext = Prop.extent u sent in
  let name = Printf.sprintf "knows-naive/U=%d" (Universe.size u) in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Knowledge.knows_ext_naive u (Pset.singleton p0) ext)))

(* -- P2: enumeration ablation ----------------------------------------- *)

let enumeration_bench mode name ~depth =
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Universe.enumerate ~mode (chatter ~n:3 ~k:2) ~depth)))

(* -- P6: parallel enumeration / extent (scaling with ?domains) --------- *)

let enumeration_domains_bench ~depth ~domains =
  Test.make
    ~name:(Printf.sprintf "enumerate/depth=%d/domains=%d" depth domains)
    (Staged.stage (fun () ->
         ignore
           (Universe.enumerate ~mode:`Canonical ~domains (chatter ~n:3 ~k:3)
              ~depth)))

let extent_domains_bench ~depth ~domains =
  let u = Universe.enumerate ~mode:`Canonical (chatter ~n:3 ~k:3) ~depth in
  let busy =
    (* deliberately heavier than a field probe, so the per-index work
       dominates the fork/join overhead being measured *)
    Prop.make "busy" (fun z ->
        List.length (Universe.canon u z |> Trace.to_list) mod 2 = 0)
  in
  Test.make
    ~name:(Printf.sprintf "extent/U=%d/domains=%d" (Universe.size u) domains)
    (Staged.stage (fun () -> ignore (Prop.extent ~domains u busy)))

(* -- P3: chain detection vs trace length ------------------------------- *)

let relay_trace len =
  (* a long causal chain across 4 processes *)
  let n = 4 in
  let rec go k trace send_counts lseqs =
    if k >= len then trace
    else begin
      let src = k mod n and dst = (k + 1) mod n in
      let m =
        Msg.make ~src:(Pid.of_int src) ~dst:(Pid.of_int dst)
          ~seq:send_counts.(src) ~payload:"m"
      in
      send_counts.(src) <- send_counts.(src) + 1;
      let e1 = Event.send ~pid:(Pid.of_int src) ~lseq:lseqs.(src) m in
      lseqs.(src) <- lseqs.(src) + 1;
      let e2 = Event.receive ~pid:(Pid.of_int dst) ~lseq:lseqs.(dst) m in
      lseqs.(dst) <- lseqs.(dst) + 1;
      go (k + 1) (Trace.snoc (Trace.snoc trace e1) e2) send_counts lseqs
    end
  in
  go 0 Trace.empty (Array.make n 0) (Array.make n 0)

let chain_bench hops =
  let z = relay_trace hops in
  let psets = [ Pset.singleton (Pid.of_int 0); Pset.singleton (Pid.of_int 3) ] in
  Test.make
    ~name:(Printf.sprintf "chain/hops=%d" hops)
    (Staged.stage (fun () -> ignore (Chain.exists ~n:4 ~z psets)))

let chain_naive_bench hops =
  let z = relay_trace hops in
  let psets = [ Pset.singleton (Pid.of_int 0); Pset.singleton (Pid.of_int 3) ] in
  Test.make
    ~name:(Printf.sprintf "chain-naive/hops=%d" hops)
    (Staged.stage (fun () -> ignore (Chain.exists_naive ~n:4 ~z psets)))

(* -- P4: vector clock stamping ------------------------------------------ *)

let vclock_bench hops =
  let z = relay_trace hops in
  Test.make
    ~name:(Printf.sprintf "vclock/hops=%d" hops)
    (Staged.stage (fun () -> ignore (Hpl_clocks.Vector.stamp_trace ~n:4 z)))

(* -- P5: bitset algebra --------------------------------------------------- *)

let bitset_bench n =
  let a = Bitset.of_pred n (fun i -> i mod 3 = 0) in
  let b = Bitset.of_pred n (fun i -> i mod 5 = 0) in
  Test.make
    ~name:(Printf.sprintf "bitset/n=%d" n)
    (Staged.stage (fun () -> ignore (Bitset.cardinal (Bitset.inter a b))))

(* -- P7: fault-transformed enumeration (lib/faults daemon routing) ------ *)

let fault_enumeration_bench tag scenario ~depth =
  let s =
    match Hpl_faults.Faults.Scenario.parse scenario with
    | Ok t -> Hpl_faults.Faults.Scenario.apply_exn t (chatter ~n:3 ~k:3)
    | Error e -> failwith e
  in
  Test.make
    ~name:(Printf.sprintf "enumerate/faults=%s/depth=%d" tag depth)
    (Staged.stage (fun () ->
         ignore (Universe.enumerate ~mode:`Canonical s ~depth)))

let formula_bench () =
  let u = Universe.enumerate ~mode:`Canonical (chatter ~n:3 ~k:3) ~depth:6 in
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  let env = function "sent" -> Some sent | _ -> None in
  let f =
    match Formula.parse "AG (sent -> EF (K p1 sent))" with
    | Ok f -> f
    | Error e -> failwith e
  in
  Test.make ~name:"formula/AG-EF-K"
    (Staged.stage (fun () -> ignore (Formula.check u ~env f)))

let replay_bench () =
  let m01 = Msg.make ~src:p0 ~dst:(Pid.of_int 1) ~seq:0 ~payload:"m" in
  let z =
    Trace.of_list
      [
        Event.send ~pid:p0 ~lseq:0 m01;
        Event.internal ~pid:(Pid.of_int 2) ~lseq:0 "a";
        Event.receive ~pid:(Pid.of_int 1) ~lseq:0 m01;
        Event.internal ~pid:p0 ~lseq:1 "b";
        Event.internal ~pid:(Pid.of_int 2) ~lseq:1 "c";
        Event.internal ~pid:(Pid.of_int 1) ~lseq:1 "d";
      ]
  in
  Test.make ~name:"replay/6-event-universe"
    (Staged.stage (fun () -> ignore (Replay.universe_of_trace ~n:3 z)))

(* -- P8: static lint vs enumeration (lib/analysis) ---------------------- *)

let lint_all_bench () =
  Hpl_protocols.Builtins.init ();
  let protos = Hpl_protocols.Protocol.Registry.list () in
  assert (protos <> []);
  Test.make ~name:"lint/all-protocols"
    (Staged.stage (fun () ->
         List.iter
           (fun t ->
             ignore
               (Hpl_analysis.Lint.lint_instance
                  (Hpl_protocols.Protocol.default_instance t)))
           protos))

(* the whole point of the static pass: the same question — "can K p1
   sent ever be gained?" — answered from the channel graph (local
   histories, Theorems 4-5) vs. by enumerating interleavings and
   evaluating knowledge *)
let lint_vs_enumerate_bench which ~depth =
  (* 6 processes: the interleaving universe explodes, the per-process
     local behaviour (histories of length <= 2) does not *)
  let spec = chatter ~n:6 ~k:2 in
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  match which with
  | `Static ->
      let nest =
        match Formula.parse "K p1 sent" with
        | Ok f -> List.hd (Formula.nests f)
        | Error e -> failwith e
      in
      Test.make
        ~name:(Printf.sprintf "lint-vs-enumerate/static/depth=%d" depth)
        (Staged.stage (fun () ->
             let g = Hpl_analysis.Channel_graph.extract ~fuel:depth spec in
             ignore (Hpl_analysis.Chain_check.gain g ~origins:(Some [ 0 ]) nest)))
  | `Enumerate ->
      Test.make
        ~name:(Printf.sprintf "lint-vs-enumerate/enumerate/depth=%d" depth)
        (Staged.stage (fun () ->
             let u = Universe.enumerate ~mode:`Canonical spec ~depth in
             ignore
               (Prop.extent u
                  (Knowledge.knows u (Pset.singleton (Pid.of_int 1)) sent))))

let dependency_bench hops =
  let z = relay_trace hops in
  Test.make
    ~name:(Printf.sprintf "dep-reconstruct/hops=%d" hops)
    (Staged.stage (fun () ->
         let hb = Hpl_clocks.Dependency.reconstruct ~n:4 z in
         ignore (hb 0 0)))

(* on a 1-core container domains>1 enumeration rows record pure spawn
   overhead, not scaling signal — skip them rather than pollute the
   perf trajectory with noise *)
let multicore = Domain.recommended_domain_count () > 1

(* a function, not a top-level value: several of these tests capture
   prebuilt universes, and keeping them live for the whole process
   would tax every later wall-clock measurement with major-GC work
   proportional to the dead weight *)
let all_tests () =
  Test.make_grouped ~name:"hpl"
    ([
       formula_bench ();
       replay_bench ();
       dependency_bench 50;
       knows_bench ~depth:4;
       knows_bench ~depth:6;
       knows_bench ~depth:8;
       knows_naive_bench ~depth:4;
       enumeration_bench `Full "enumerate/full" ~depth:5;
       enumeration_bench `Canonical "enumerate/canonical" ~depth:5;
       fault_enumeration_bench "drop" "drop:p0->p1" ~depth:6;
       fault_enumeration_bench "crash" "crash-any:1" ~depth:6;
       enumeration_domains_bench ~depth:6 ~domains:1;
       enumeration_domains_bench ~depth:7 ~domains:1;
       extent_domains_bench ~depth:6 ~domains:1;
       lint_vs_enumerate_bench `Static ~depth:5;
       lint_vs_enumerate_bench `Enumerate ~depth:5;
       chain_bench 50;
       chain_bench 200;
       chain_bench 800;
       chain_naive_bench 50;
       chain_naive_bench 200;
       vclock_bench 200;
       bitset_bench 10_000;
       bitset_bench 100_000;
     ]
    @
    if multicore then
      [
        enumeration_domains_bench ~depth:6 ~domains:2;
        enumeration_domains_bench ~depth:6 ~domains:4;
        enumeration_domains_bench ~depth:7 ~domains:2;
        enumeration_domains_bench ~depth:7 ~domains:4;
        extent_domains_bench ~depth:6 ~domains:4;
      ]
    else [])

(* -- observability phase breakdown -------------------------------------

   One instrumented run of the depth-7 enumeration, reported as extra
   BENCH.json rows so the perf trajectory records where the time goes
   (parallel frontier expansion vs. sequential merge vs. final
   interning), not just the total. *)

(* min-of-N wall-clock timing: every source of scheduler/GC noise
   inflates a run, so the minimum over enough runs is a stable estimate
   of the true cost — observed spread across process invocations is
   under 0.5%, where single bechamel OLS estimates of the same row
   swing by +-25% on a shared machine. The overhead gate records and
   re-measures with this exact function so both sides of the
   comparison share a methodology. *)
let min_time_ns ~runs f =
  ignore (f ());
  (* warm-up: fault in code paths and stabilize the minor heap *)
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
    if dt < !best then best := dt
  done;
  !best

(* [~reduce] is passed explicitly: this row is the seed-parity gate, so
   it must pin the no-reduction path even if the default ever changes *)
let minwall_enumerate () =
  min_time_ns ~runs:15 (fun () ->
      Universe.size
        (Universe.enumerate ~mode:`Canonical ~domains:1 ~reduce:Reduction.none
           (chatter ~n:3 ~k:3) ~depth:7))

let minwall_bitset () =
  let a = Bitset.of_pred 10_000 (fun i -> i mod 3 = 0) in
  let b = Bitset.of_pred 10_000 (fun i -> i mod 5 = 0) in
  min_time_ns ~runs:50 (fun () ->
      let acc = ref 0 in
      for _ = 1 to 100 do
        acc := !acc + Bitset.cardinal (Bitset.inter a b)
      done;
      !acc)
  /. 100.

(* the bechamel phase and the paper experiments leave a large, badly
   fragmented major heap behind; without compacting first, the min-wall
   rows time GC pressure instead of enumeration (observed 10-20x
   inflation on allocation-heavy rows) *)
let fresh_heap () = Gc.compact ()

(* the overhead gate's baselines: same rows, min-wall methodology,
   probes disabled *)
let minwall_rows () =
  assert (not !Hpl_obs.enabled);
  fresh_heap ();
  [
    ( "hpl/enumerate/depth=7/disabled-minwall",
      Some (minwall_enumerate ()),
      "ns/run",
      None );
    ("hpl/bitset/n=10000/minwall", Some (minwall_bitset ()), "ns/run", None);
  ]

(* -- reduction layer rows (DESIGN.md §10) -------------------------------

   The depth-wall claim, machine-readable: time AND states explored for
   each reduction mode at depth 9 on the acceptance protocols. The
   [/states] rows carry a count (unit "states", not "ns/run") — they
   record how much smaller the reduced universe is, which is the part
   of the trajectory that survives machine changes. *)
let reduce_rows () =
  fresh_heap ();
  Hpl_protocols.Builtins.init ();
  let instance name =
    match Hpl_protocols.Protocol.Registry.find name with
    | Some p -> Hpl_protocols.Protocol.default_instance p
    | None -> failwith ("bench: protocol not registered: " ^ name)
  in
  let modes inst =
    let g = Hpl_protocols.Protocol.symmetry_of inst in
    (* por+indep: por carrying the abstract interpreter's independence
       relation. Where the no-truncation certificate fails at depth 9
       the restriction never fires and the row must equal plain por;
       where it holds (quorum: Σ bound = 7) the row must be strictly
       smaller — that strictness IS the tentpole claim, so it is
       asserted below, not just recorded. *)
    let por_indep =
      match
        Option.bind
          (Hpl_analysis.Dataflow.of_instance inst)
          Hpl_analysis.Dataflow.independence
      with
      | Some ind ->
          [ ("por+indep", Reduction.with_independence Reduction.por ind) ]
      | None -> []
    in
    [ ("none", Reduction.none); ("por", Reduction.por) ]
    @ por_indep
    @ [
        ("sym", Reduction.sym (Option.get g));
        ("full", Reduction.full (Option.get g));
      ]
  in
  List.concat_map
    (fun pname ->
      let inst = instance pname in
      let spec = Hpl_protocols.Protocol.spec_of inst in
      let states_of = Hashtbl.create 8 in
      let rows =
        List.concat_map
          (fun (label, reduce) ->
            let enum () = Universe.enumerate ~reduce spec ~depth:9 in
            let states = Universe.size (enum ()) in
            Hashtbl.replace states_of label states;
            let ns = min_time_ns ~runs:5 (fun () -> Universe.size (enum ())) in
            [
              ( Printf.sprintf "hpl/enumerate/reduce=%s/%s/depth=9" label pname,
                Some ns,
                "ns/run",
                None );
              ( Printf.sprintf "hpl/enumerate/reduce=%s/%s/depth=9/states" label
                  pname,
                Some (float_of_int states),
                "states",
                None );
            ])
          (modes inst)
      in
      (match
         ( Hashtbl.find_opt states_of "none",
           Hashtbl.find_opt states_of "por+indep" )
       with
      | Some n0, Some ni ->
          if ni > n0 then
            failwith
              (Printf.sprintf "bench: %s por+indep grew the universe (%d > %d)"
                 pname ni n0);
          if pname = "quorum" && ni >= n0 then
            failwith
              (Printf.sprintf
                 "bench: quorum por+indep shows no strict reduction (%d vs %d)"
                 ni n0)
      | _ -> ());
      rows)
    [ "ring"; "star-flood"; "quorum" ]

(* -- DSL rows (lib/dsl) --------------------------------------------------

   Two questions the trajectory should answer: what does loading a spec
   from text cost (lex + parse + elaborate + validate), and do the
   closures the elaborator compiles enumerate as fast as the hand-written
   builtin they mirror. The parity rows time the same universe — a
   parity assert guards that — so their ratio is pure interpreter
   overhead. *)
let dsl_rows () =
  fresh_heap ();
  Hpl_protocols.Builtins.init ();
  let path =
    match
      List.find_opt Sys.file_exists
        [
          "corpus/specs/ring.hpl";
          "../corpus/specs/ring.hpl";
          "../../corpus/specs/ring.hpl";
          "../../../corpus/specs/ring.hpl";
        ]
    with
    | Some p -> p
    | None -> failwith "bench: corpus/specs/ring.hpl not found"
  in
  let src = In_channel.with_open_bin path In_channel.input_all in
  let load () =
    match Hpl_dsl.Elaborate.load_string ~file:path src with
    | Ok l -> l
    | Error d -> failwith (Hpl_dsl.Diag.to_string d)
  in
  let loaded = load () in
  let inst_spec =
    Hpl_protocols.Protocol.default_instance loaded.Hpl_dsl.Elaborate.proto
  in
  let inst_builtin =
    match Hpl_protocols.Protocol.Registry.find "ring" with
    | Some p -> Hpl_protocols.Protocol.default_instance p
    | None -> failwith "bench: ring not registered"
  in
  let depth = Hpl_protocols.Protocol.depth_of inst_builtin in
  let enum inst () =
    Universe.size
      (Universe.enumerate (Hpl_protocols.Protocol.spec_of inst) ~depth)
  in
  assert (enum inst_spec () = enum inst_builtin ());
  [
    ( "hpl/dsl/parse+elaborate/ring",
      Some (min_time_ns ~runs:25 (fun () -> load ())),
      "ns/run",
      None );
    ( Printf.sprintf "hpl/dsl/enumerate-parity/spec/depth=%d" depth,
      Some (min_time_ns ~runs:10 (enum inst_spec)),
      "ns/run",
      None );
    ( Printf.sprintf "hpl/dsl/enumerate-parity/compiled/depth=%d" depth,
      Some (min_time_ns ~runs:10 (enum inst_builtin)),
      "ns/run",
      None );
  ]

let phase_rows () =
  fresh_heap ();
  Hpl_obs.reset ();
  Hpl_obs.enable ();
  ignore
    (Universe.enumerate ~mode:`Canonical ~domains:1 (chatter ~n:3 ~k:3)
       ~depth:7);
  Hpl_obs.disable ();
  let rows =
    List.map
      (fun (phase, span) ->
        ( Printf.sprintf "hpl/enumerate/depth=7/phase=%s" phase,
          Some (Hpl_obs.span_total_us span *. 1e3),
          "ns/run",
          None ))
      [
        ("frontier", "enumerate.frontier");
        ("merge", "enumerate.merge");
        ("intern", "enumerate.intern");
      ]
  in
  Hpl_obs.reset ();
  rows

(* -- flow rows (lib/analysis/dataflow.ml) --------------------------------

   The acceptance claim of `hpl flow`: one sweep of the abstract
   interpreter over the whole registry (every protocol that declares a
   profile) plus every corpus spec finishes well under a second — the
   analysis must stay cheap enough to run before every enumeration.
   The /rules row counts how many rules the sweep passed verdicts on,
   so a silently shrinking analysis surface would show in the
   trajectory; a false dead-rule report anywhere fails the bench
   outright. *)
let flow_rows () =
  fresh_heap ();
  Hpl_protocols.Builtins.init ();
  let dir =
    match
      List.find_opt Sys.file_exists
        [
          "corpus/specs";
          "../corpus/specs";
          "../../corpus/specs";
          "../../../corpus/specs";
        ]
    with
    | Some d -> d
    | None -> failwith "bench: corpus/specs not found"
  in
  let specs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".hpl")
    |> List.sort compare
    |> List.map (fun f ->
           match Hpl_dsl.Elaborate.load_file (Filename.concat dir f) with
           | Ok l -> l
           | Error d -> failwith (Hpl_dsl.Diag.to_string d))
  in
  let sweep () =
    let rules = ref 0 in
    List.iter
      (fun p ->
        let inst = Hpl_protocols.Protocol.default_instance p in
        match Hpl_analysis.Dataflow.of_instance inst with
        | Some df ->
            if Hpl_analysis.Dataflow.dead_rules df <> [] then
              failwith
                ("bench: false dead-rule report on "
                ^ Hpl_protocols.Protocol.name p);
            rules := !rules + List.length (Hpl_analysis.Dataflow.rules df)
        | None -> ())
      (Hpl_protocols.Protocol.Registry.list ());
    List.iter
      (fun l ->
        match
          Hpl_analysis.Dataflow.of_loaded l
            (Hpl_protocols.Protocol.defaults l.Hpl_dsl.Elaborate.proto)
        with
        | Ok df ->
            rules := !rules + List.length (Hpl_analysis.Dataflow.rules df)
        | Error d -> failwith (Hpl_dsl.Diag.to_string d))
      specs;
    !rules
  in
  let rules = sweep () in
  let ns = min_time_ns ~runs:25 (fun () -> ignore (sweep ())) in
  if ns >= 1e9 then
    failwith
      (Printf.sprintf "bench: hpl/flow/all took %.3fs (budget 1s)" (ns /. 1e9));
  [
    ("hpl/flow/all", Some ns, "ns/run", None);
    ("hpl/flow/all/rules", Some (float_of_int rules), "rules", None);
  ]

(* -- Monte Carlo sampler throughput -------------------------------------

   One row: how many seeded walks per second the mc layer sustains
   (two-generals, depth 12, trivial predicate — pure walk plus judging
   overhead, no knowledge resampling). Unit "runs/s", not time: the
   trajectory question here is sampling capacity, which is what decides
   how tight an interval a CI-budgeted [hpl mc] run can deliver. *)
let mc_rows () =
  fresh_heap ();
  Hpl_protocols.Builtins.init ();
  let spec =
    match Hpl_protocols.Protocol.Registry.find "two-generals" with
    | Some p ->
        Hpl_protocols.Protocol.spec_of
          (Hpl_protocols.Protocol.default_instance p)
    | None -> failwith "bench: two-generals not registered"
  in
  let cfg = { Hpl_mc.Mc.default with Hpl_mc.Mc.runs = 100_000; depth = 12 } in
  let b = Prop.make "always" (fun _ -> true) in
  let e = Hpl_mc.Mc.estimate_prop cfg spec b in
  let rate =
    if e.Hpl_mc.Mc.elapsed > 0.0 then
      float_of_int e.Hpl_mc.Mc.runs /. e.Hpl_mc.Mc.elapsed
    else 0.0
  in
  [ ("hpl/mc/runs=100k", Some rate, "runs/s", None) ]

(* -- serve: warm-cache query throughput ----------------------------------

   One row: queries per second sustained by an in-process [hpl serve]
   over line-delimited JSON frames with the universes warm in the LRU
   cache — the steady state a long-running daemon answers from. A
   self-driving client loops a small query pool (extent, knows, check,
   stats across three protocols); the first pass populates the cache,
   the timed passes must be all hits — a single miss during the timed
   window means the cache layer broke, so it fails the run rather than
   record an enumeration-bound number as serving throughput. *)
let serve_rows () =
  fresh_heap ();
  Hpl_protocols.Builtins.init ();
  let module Serve = Hpl_serve.Serve in
  let t =
    Serve.create { Serve.max_cached_states = 1_000_000; cache_dir = None }
  in
  let frames =
    [
      {|{"op":"extent","protocol":"ping-pong","depth":6,"atom":"sent"}|};
      {|{"op":"knows","protocol":"ping-pong","depth":6}|};
      {|{"op":"knows","protocol":"two-generals","depth":5}|};
      {|{"op":"extent","protocol":"two-generals","depth":5,"atom":"attack"}|};
      {|{"op":"check","protocol":"token-ring:3","depth":4,"formula":"AG (holds0 -> ~holds1)"}|};
      {|{"op":"enumerate-stats","protocol":"token-ring:3","depth":4}|};
    ]
  in
  let drive () = List.iter (fun f -> ignore (Serve.handle_line t f)) frames in
  drive ();
  let hit_count () = List.assoc "cache_hit" (Serve.counters t) in
  let hits0 = hit_count () in
  let n = ref 0 in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. 1.0 in
  while Unix.gettimeofday () < deadline do
    drive ();
    n := !n + List.length frames
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  if hit_count () - hits0 <> !n then
    failwith "bench: a warm serve query missed the cache";
  [
    ( "hpl/serve/warm-cache/queries-per-sec",
      Some (float_of_int !n /. elapsed),
      "queries/s",
      None );
  ]

(* Machine-readable results so successive PRs can track the perf
   trajectory. One JSON object per benchmark: {name, value, unit, r2};
   [unit] says what the number measures ("ns/run", "states",
   "runs/s", ...) — earlier schema versions abused ns_per_run for
   non-time rows, so readers fall back to that key for old files.
   Unavailable estimates are emitted as null. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let row_string (name, value, unit_, r2) =
  let fnum = function Some v -> Printf.sprintf "%.6g" v | None -> "null" in
  Printf.sprintf "{\"name\": \"%s\", \"value\": %s, \"unit\": \"%s\", \"r2\": %s}"
    (json_escape name) (fnum value) (json_escape unit_) (fnum r2)

let write_bench_json path rows =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i row ->
      Printf.fprintf oc "  %s%s\n" (row_string row)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "\nwrote %d benchmark results to %s\n" (List.length rows) path

let run_benchmarks () =
  print_endline "\n=== microbenchmarks (bechamel, monotonic clock) ===";
  if not multicore then
    print_endline
      "  (1 recommended domain: domains>1 enumeration rows skipped)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  (* wall-clock rows first: after the bechamel phase the process carries
     enough live and fragmented heap that allocation-heavy enumerations
     pay a multi-x GC tax, which would be recorded as enumeration time *)
  let early_rows =
    minwall_rows () @ reduce_rows () @ dsl_rows () @ flow_rows ()
  in
  let raw = Benchmark.all cfg instances (all_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  (* one run of the registry-wide lint takes ~0.5s, so it needs a wider
     quota than the micro-benchmarks to get a stable estimate *)
  let heavy_cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 5.0) ~stabilize:true ()
  in
  let heavy =
    Benchmark.all heavy_cfg instances
      (Test.make_grouped ~name:"hpl" [ lint_all_bench () ])
  in
  let heavy_results = Analyze.all ols Instance.monotonic_clock heavy in
  Hashtbl.iter (fun name ols -> Hashtbl.replace results name ols) heavy_results;
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  let estimate ols =
    match Analyze.OLS.estimates ols with Some [ est ] -> Some est | _ -> None
  in
  Printf.printf "  %-34s %16s %10s\n" "benchmark" "time/run" "r²";
  List.iter
    (fun (name, ols) ->
      let time =
        match estimate ols with
        | Some est ->
            if est > 1e6 then Printf.sprintf "%10.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%10.2f µs" (est /. 1e3)
            else Printf.sprintf "%10.0f ns" est
        | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      Printf.printf "  %-34s %16s %10s\n" name time r2)
    rows;
  write_bench_json "BENCH.json"
    (List.map
       (fun (name, ols) ->
         (name, estimate ols, "ns/run", Analyze.OLS.r_square ols))
       rows
    @ early_rows @ phase_rows () @ mc_rows () @ serve_rows ())

(* -- disabled-probe overhead guard --------------------------------------

   [--quick --assert-overhead] re-times the depth-7 enumeration with
   observability disabled — and [~reduce:Reduction.none] pinned, so the
   gate also proves that carrying the reduction layer costs nothing on
   the default path — and asserts it stays within 2% of the recorded
   BENCH.json baseline ([.../disabled-minwall], recorded by the same
   min-wall functions above — mixing timing methodologies here shows up
   as a spurious ~10% "overhead"). Machine-speed
   differences between the baseline host and this one are calibrated
   out against the bitset row, whose hot loop carries no probes at
   all. *)

let bench_json_lookup path name =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  let needle = Printf.sprintf "\"name\": \"%s\"" name in
  (* current schema first, then the pre-[unit] field name so the guard
     still reads baselines recorded before the schema migration. *)
  let extract line field =
    match contains line field with
    | Some i ->
        let off = i + String.length field in
        let rest = String.sub line off (String.length line - off) in
        let stop =
          match String.index_opt rest ',' with
          | Some j -> j
          | None -> String.length rest
        in
        float_of_string_opt (String.trim (String.sub rest 0 stop))
    | None -> None
  in
  let ic = open_in path in
  let result = ref None in
  (try
     while !result = None do
       let line = input_line ic in
       if contains line needle <> None then
         result :=
           (match extract line "\"value\": " with
           | Some _ as v -> v
           | None -> extract line "\"ns_per_run\": ")
     done
   with End_of_file -> ());
  close_in ic;
  !result

let assert_overhead () =
  print_endline "=== disabled-probe overhead check ===";
  let path = "BENCH.json" in
  let baseline name =
    match bench_json_lookup path name with
    | Some v -> v
    | None ->
        Printf.eprintf "no '%s' row in %s\n" name path;
        exit 2
  in
  let enum_base = baseline "hpl/enumerate/depth=7/disabled-minwall" in
  let cal_base = baseline "hpl/bitset/n=10000/minwall" in
  assert (not !Hpl_obs.enabled);
  let enum_now = minwall_enumerate () in
  let cal_now = minwall_bitset () in
  let speed = cal_now /. cal_base in
  let raw_overhead = (enum_now /. enum_base -. 1.0) *. 100. in
  let calibrated = (enum_now /. (enum_base *. speed) -. 1.0) *. 100. in
  (* the calibrated figure transports the baseline to a different
     machine; on the recording machine itself the raw figure is exact
     and the calibration only adds the bitset row's noise. A genuine
     probe regression inflates both, so the bound applies to the
     smaller. *)
  let overhead = Float.min raw_overhead calibrated in
  Printf.printf
    "  enumerate/depth=7: %.4g ns now vs %.4g ns baseline (machine ratio \
     %.3f) -> overhead raw %+.2f%% / calibrated %+.2f%%\n"
    enum_now enum_base speed raw_overhead calibrated;
  if overhead > 2.0 then begin
    Printf.eprintf "disabled-probe overhead %.2f%% exceeds the 2%% bound\n"
      overhead;
    exit 1
  end;
  print_endline "  within the 2% bound"

(* --mc: measure the sampler-throughput row alone and merge it into
   BENCH.json in place, keeping every other recorded row. This is the CI
   mc job's bench step — it must not disturb the ns/run baselines the
   overhead guard compares against, so the merge is line-based: existing
   row lines are kept verbatim (minus any previous row with the same
   name) and the fresh rows are appended. *)
let merge_bench_json path rows =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then false
      else if String.sub s i m = sub then true
      else go (i + 1)
    in
    go 0
  in
  let existing =
    if Sys.file_exists path then (
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !lines)
    else []
  in
  let names = List.map (fun (n, _, _, _) -> n) rows in
  let kept =
    existing
    |> List.filter_map (fun l ->
           let t = String.trim l in
           if String.length t = 0 || t.[0] <> '{' then None
           else if
             List.exists
               (fun n -> contains t (Printf.sprintf "\"name\": \"%s\"" n))
               names
           then None
           else if t.[String.length t - 1] = ',' then
             Some (String.sub t 0 (String.length t - 1))
           else Some t)
  in
  let all = kept @ List.map row_string rows in
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "  %s%s\n" r
        (if i = List.length all - 1 then "" else ","))
    all;
  output_string oc "]\n";
  close_out oc

(* --flow: measure the abstract-interpretation rows (the flow sweep and
   the depth-9 reduction ladder including por+indep) alone and merge
   them into BENCH.json in place — the CI gate for the strict-reduction
   and under-a-second claims, same line-based merge as --mc. *)
let run_flow () =
  print_endline "=== flow rows (abstract interpretation + reduction) ===";
  let rows = reduce_rows () @ flow_rows () in
  List.iter
    (fun (name, value, unit_, _) ->
      match value with
      | Some v -> Printf.printf "  %-48s %14.0f %s\n" name v unit_
      | None -> Printf.printf "  %-48s              - %s\n" name unit_)
    rows;
  merge_bench_json "BENCH.json" rows;
  print_endline "BENCH.json updated"

let run_mc () =
  print_endline "=== mc sampler throughput ===";
  let rows = mc_rows () in
  List.iter
    (fun (name, value, unit_, _) ->
      match value with
      | Some v -> Printf.printf "  %-34s %12.0f %s\n" name v unit_
      | None -> Printf.printf "  %-34s            - %s\n" name unit_)
    rows;
  merge_bench_json "BENCH.json" rows;
  print_endline "BENCH.json updated"

(* --serve: measure the daemon's warm-cache throughput row alone and
   merge it into BENCH.json in place — the CI serve job's bench step,
   same line-based merge as --mc. *)
let run_serve () =
  print_endline "=== serve warm-cache throughput ===";
  let rows = serve_rows () in
  List.iter
    (fun (name, value, unit_, _) ->
      match value with
      | Some v -> Printf.printf "  %-42s %12.0f %s\n" name v unit_
      | None -> Printf.printf "  %-42s            - %s\n" name unit_)
    rows;
  merge_bench_json "BENCH.json" rows;
  print_endline "BENCH.json updated"

(* --quick: CI smoke mode. Skips the paper experiments and runs a tiny
   benchmark subset with a minimal quota, without touching BENCH.json —
   it exists to prove the binary links and the hot paths execute, not to
   produce publishable numbers. *)
let run_quick () =
  print_endline "=== bench smoke (--quick) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ~stabilize:false ()
  in
  let tests =
    Test.make_grouped ~name:"hpl"
      [
        knows_bench ~depth:4;
        enumeration_bench `Canonical "enumerate/canonical" ~depth:5;
        fault_enumeration_bench "drop" "drop:p0->p1" ~depth:6;
        fault_enumeration_bench "crash" "crash-any:1" ~depth:6;
      ]
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter (fun name _ -> Printf.printf "  ran %s\n" name) results;
  print_endline "bench smoke passed"

let () =
  if Array.exists (fun a -> a = "--mc") Sys.argv then run_mc ()
  else if Array.exists (fun a -> a = "--serve") Sys.argv then run_serve ()
  else if Array.exists (fun a -> a = "--flow") Sys.argv then run_flow ()
  else if Array.exists (fun a -> a = "--quick") Sys.argv then begin
    run_quick ();
    if Array.exists (fun a -> a = "--assert-overhead") Sys.argv then
      assert_overhead ()
  end
  else begin
    Experiments.run_all ();
    run_benchmarks ();
    print_endline "\nall experiments completed"
  end
