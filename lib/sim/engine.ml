open Hpl_core

type config = {
  n : int;
  seed : int64;
  fifo : bool;
  min_delay : float;
  max_delay : float;
  drop_prob : float;
  drop_channels : (int * int) list;
  dup_prob : float;
  dup_channels : (int * int) list;
  partitions : (float * float * int list) list;
  crashes : (float * int) list;
  crash_after_events : (int * int) list;
  crash_prone : int list;
  crash_prob : float;
  recoveries : (int * int) list;
  max_steps : int;
  max_time : float;
}

let default =
  {
    n = 4;
    seed = 1L;
    fifo = true;
    min_delay = 1.0;
    max_delay = 10.0;
    drop_prob = 0.0;
    drop_channels = [];
    dup_prob = 0.0;
    dup_channels = [];
    partitions = [];
    crashes = [];
    crash_after_events = [];
    crash_prone = [];
    crash_prob = 0.0;
    recoveries = [];
    max_steps = 100_000;
    max_time = 1e6;
  }

type action =
  | Send of Pid.t * string
  | Set_timer of float * string
  | Log_internal of string
  | Crash

type 's handlers = {
  init : Pid.t -> 's * action list;
  on_message :
    's -> self:Pid.t -> src:Pid.t -> payload:string -> now:float -> 's * action list;
  on_timer : 's -> self:Pid.t -> tag:string -> now:float -> 's * action list;
}

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  timers_fired : int;
  end_time : float;
  steps : int;
  latency_avg : float;  (** mean delivery latency of delivered messages *)
  latency_max : float;
}

type 's result = {
  trace : Trace.t;
  states : 's array;
  stats : stats;
  crashed : bool array;
}

type item =
  | Deliver of {
      src : Pid.t;
      dst : Pid.t;
      msg_seq : int;
      payload : string;
      sent_at : float;
      dup : bool;
    }
  | Timer of { pid : Pid.t; tag : string }
  | Crash_at of { pid : Pid.t }
  | Recover_at of { pid : Pid.t }

let run cfg handlers =
  if cfg.n < 1 then invalid_arg "Engine.run: need at least one process";
  if cfg.min_delay < 0.0 || cfg.max_delay < cfg.min_delay then
    invalid_arg "Engine.run: delays must satisfy 0 <= min_delay <= max_delay";
  List.iter
    (fun (_, pid) ->
      if pid < 0 || pid >= cfg.n then
        invalid_arg (Printf.sprintf "Engine.run: crash pid %d out of range" pid))
    cfg.crashes;
  List.iter
    (fun (pid, after) ->
      if pid < 0 || pid >= cfg.n then
        invalid_arg (Printf.sprintf "Engine.run: crash pid %d out of range" pid);
      if after < 0 then
        invalid_arg "Engine.run: negative crash_after_events count")
    cfg.crash_after_events;
  List.iter
    (fun pid ->
      if pid < 0 || pid >= cfg.n then
        invalid_arg
          (Printf.sprintf "Engine.run: crash-prone pid %d out of range" pid))
    cfg.crash_prone;
  List.iter
    (fun (pid, upto) ->
      if pid < 0 || pid >= cfg.n then
        invalid_arg (Printf.sprintf "Engine.run: recovery pid %d out of range" pid);
      if upto < 1 then
        invalid_arg "Engine.run: recoveries need at least one recovery each")
    cfg.recoveries;
  List.iter
    (fun p ->
      if p < 0.0 || p > 1.0 then
        invalid_arg "Engine.run: probabilities must be within [0, 1]")
    [ cfg.drop_prob; cfg.dup_prob; cfg.crash_prob ];
  let rng = Rng.create cfg.seed in
  let queue : item Pqueue.t = Pqueue.create () in
  let seqno = ref 0 in
  let schedule time item =
    incr seqno;
    Pqueue.push queue ~time ~seqno:!seqno item
  in
  let inits = Array.init cfg.n (fun i -> handlers.init (Pid.of_int i)) in
  let states = Array.map fst inits in
  let crashed = Array.make cfg.n false in
  (* trace bookkeeping: per-process lseq, per-process send count *)
  let lseq = Array.make cfg.n 0 in
  let send_seq = Array.make cfg.n 0 in
  let trace = ref Trace.empty in
  let now = ref 0.0 in
  (* event-count crash quota, per pid; recovery bumps the quota so each
     life gets a fresh allowance, matching Faults.crash_recover *)
  let base_quota = Array.make cfg.n max_int in
  List.iter
    (fun (pid, after) -> base_quota.(pid) <- min base_quota.(pid) after)
    cfg.crash_after_events;
  let crash_quota = Array.copy base_quota in
  let recover_left = Array.make cfg.n 0 in
  List.iter
    (fun (pid, upto) -> recover_left.(pid) <- recover_left.(pid) + upto)
    cfg.recoveries;
  (* every crash site funnels through here: halt the node and — if it
     has recoveries left — schedule it to come back up one max_delay
     later (the repair takes about as long as the network's worst
     case) *)
  let crash_now pid =
    let i = Pid.to_int pid in
    crashed.(i) <- true;
    if recover_left.(i) > 0 then begin
      recover_left.(i) <- recover_left.(i) - 1;
      schedule (!now +. cfg.max_delay) (Recover_at { pid })
    end
  in
  let record pid mk =
    let i = Pid.to_int pid in
    trace := Trace.snoc !trace (mk ~lseq:lseq.(i));
    lseq.(i) <- lseq.(i) + 1;
    (* scheduled-by-event-count crashes are silent, like Faults.crash_stop:
       the process simply stops once it has performed its quota *)
    if lseq.(i) >= crash_quota.(i) && not crashed.(i) then crash_now pid
  in
  let sent = ref 0 and delivered = ref 0 and dropped = ref 0 in
  let duplicated = ref 0 in
  let timers_fired = ref 0 in
  (* messages scheduled but not yet delivered; tracked unconditionally
     (two int ops per message) so the observability layer can report
     the high-water mark without touching the hot loop *)
  let inflight = ref 0 and inflight_max = ref 0 in
  let latency_sum = ref 0.0 and latency_max = ref 0.0 in
  let last_delivery = Hashtbl.create 16 (* (src,dst) -> latest delivery time *) in
  let partitioned src dst t =
    List.exists
      (fun (t0, t1, group) ->
        t0 <= t && t < t1
        && List.mem (Pid.to_int src) group <> List.mem (Pid.to_int dst) group)
      cfg.partitions
  in
  (* [channels = []] means every channel is subject to the fault *)
  let on_channel channels src dst =
    channels = [] || List.mem (Pid.to_int src, Pid.to_int dst) channels
  in
  let do_send self dst payload =
    let i = Pid.to_int self in
    let m = Msg.make ~src:self ~dst ~seq:send_seq.(i) ~payload in
    send_seq.(i) <- send_seq.(i) + 1;
    record self (fun ~lseq -> Event.send ~pid:self ~lseq m);
    incr sent;
    if partitioned self dst !now then incr dropped
    else if
      cfg.drop_prob > 0.0
      && on_channel cfg.drop_channels self dst
      && Rng.float rng 1.0 < cfg.drop_prob
    then incr dropped
    else begin
      let fifo_slot t =
        if cfg.fifo then begin
          let key = (Pid.to_int self, Pid.to_int dst) in
          let t' =
            match Hashtbl.find_opt last_delivery key with
            | Some prev when prev >= t -> prev +. 1e-9
            | _ -> t
          in
          Hashtbl.replace last_delivery key t';
          t'
        end
        else t
      in
      let delay () =
        cfg.min_delay +. Rng.float rng (max 0.0 (cfg.max_delay -. cfg.min_delay))
      in
      let t = fifo_slot (!now +. delay ()) in
      schedule t
        (Deliver
           { src = self; dst; msg_seq = m.Msg.seq; payload; sent_at = !now; dup = false });
      incr inflight;
      if !inflight > !inflight_max then inflight_max := !inflight;
      if
        cfg.dup_prob > 0.0
        && on_channel cfg.dup_channels self dst
        && Rng.float rng 1.0 < cfg.dup_prob
      then begin
        let t' = fifo_slot (t +. delay ()) in
        schedule t'
          (Deliver
             { src = self; dst; msg_seq = m.Msg.seq; payload; sent_at = !now; dup = true })
      end
    end
  in
  let rec apply self actions =
    List.iter
      (fun a ->
        if not crashed.(Pid.to_int self) then
          match a with
          | Send (dst, payload) -> do_send self dst payload
          | Set_timer (delay, tag) ->
              schedule (!now +. delay) (Timer { pid = self; tag })
          | Log_internal tag ->
              record self (fun ~lseq -> Event.internal ~pid:self ~lseq tag)
          | Crash ->
              crash_now self;
              record self (fun ~lseq -> Event.internal ~pid:self ~lseq "crash"))
      actions
  and step_handler self f =
    let i = Pid.to_int self in
    if not crashed.(i) then
      if
        cfg.crash_prob > 0.0
        && List.mem i cfg.crash_prone
        && Rng.float rng 1.0 < cfg.crash_prob
      then begin
        crash_now self;
        record self (fun ~lseq -> Event.internal ~pid:self ~lseq "crash")
      end
      else begin
        let state', actions = f states.(i) in
        states.(i) <- state';
        apply self actions
      end
  in
  (* scheduled crashes *)
  List.iter
    (fun (t, pid) -> schedule t (Crash_at { pid = Pid.of_int pid }))
    cfg.crashes;
  (* initial actions at time 0 *)
  Array.iteri (fun i (_, actions) -> apply (Pid.of_int i) actions) inits;
  let steps = ref 0 in
  let rec loop () =
    if !steps >= cfg.max_steps then ()
    else
      match Pqueue.pop queue with
      | None -> ()
      | Some (t, _, item) ->
          if t > cfg.max_time then ()
          else begin
            now := t;
            incr steps;
            (match item with
            | Deliver { src; dst; msg_seq; payload; sent_at; dup } ->
                if not dup then decr inflight;
                let i = Pid.to_int dst in
                if not crashed.(i) then begin
                  (if dup then begin
                     (* a second receive of the same message would break
                        trace well-formedness, so duplicates are recorded
                        as internal events — the handler still runs *)
                     record dst (fun ~lseq ->
                         Event.internal ~pid:dst ~lseq ("dup-deliver:" ^ payload));
                     incr duplicated
                   end
                   else begin
                     let m = Msg.make ~src ~dst ~seq:msg_seq ~payload in
                     record dst (fun ~lseq -> Event.receive ~pid:dst ~lseq m);
                     incr delivered;
                     let lat = t -. sent_at in
                     latency_sum := !latency_sum +. lat;
                     if lat > !latency_max then latency_max := lat
                   end);
                  step_handler dst (fun s ->
                      handlers.on_message s ~self:dst ~src ~payload ~now:t)
                end
            | Timer { pid; tag } ->
                let i = Pid.to_int pid in
                if not crashed.(i) then begin
                  incr timers_fired;
                  step_handler pid (fun s ->
                      handlers.on_timer s ~self:pid ~tag ~now:t)
                end
            | Crash_at { pid } ->
                let i = Pid.to_int pid in
                if not crashed.(i) then begin
                  crash_now pid;
                  record pid (fun ~lseq -> Event.internal ~pid ~lseq "crash")
                end
            | Recover_at { pid } ->
                let i = Pid.to_int pid in
                if crashed.(i) then begin
                  crashed.(i) <- false;
                  (* fresh event allowance for the new life; node state
                     survives the outage (crash-recovery with stable
                     storage). The +1 exempts the recover event itself
                     from the new life's quota. *)
                  if base_quota.(i) <> max_int then
                    crash_quota.(i) <- lseq.(i) + 1 + base_quota.(i);
                  record pid (fun ~lseq -> Event.internal ~pid ~lseq "recover")
                end);
            loop ()
          end
  in
  Hpl_obs.span "sim.run"
    ~args:(fun () ->
      [ ("n", string_of_int cfg.n); ("steps", string_of_int !steps) ])
    loop;
  if !Hpl_obs.enabled then begin
    Hpl_obs.count "sim.sent" !sent;
    Hpl_obs.count "sim.delivered" !delivered;
    Hpl_obs.count "sim.dropped" !dropped;
    Hpl_obs.count "sim.duplicated" !duplicated;
    Hpl_obs.count "sim.timers_fired" !timers_fired;
    Hpl_obs.count "sim.steps" !steps;
    Hpl_obs.set_gauge "sim.in_flight" (float_of_int !inflight);
    Hpl_obs.set_gauge "sim.in_flight_max" (float_of_int !inflight_max)
  end;
  {
    trace = !trace;
    states;
    stats =
      {
        sent = !sent;
        delivered = !delivered;
        dropped = !dropped;
        duplicated = !duplicated;
        timers_fired = !timers_fired;
        end_time = !now;
        steps = !steps;
        latency_avg =
          (if !delivered = 0 then 0.0
           else !latency_sum /. float_of_int !delivered);
        latency_max = !latency_max;
      };
    crashed;
  }
