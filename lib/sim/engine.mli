(** Deterministic discrete-event simulator.

    The bounded-universe engine of {!Hpl_core.Universe} is exact but
    exponential; the §5 experiments (termination detection at thousands
    of messages, failure detection, gossip) need runs far beyond it.
    This engine executes a protocol once, at scale, under a seeded
    random schedule, and records the run as a well-formed
    {!Hpl_core.Trace.t} so every causality/chain/clock tool applies to
    it directly.

    Protocols are written as message/timer handlers returning actions.
    The network delays messages (uniform in [min_delay, max_delay]),
    optionally drops them, and optionally enforces FIFO channels.
    Crashes — from the config schedule or a [Crash] action — silence a
    node: no further handler runs on it, and it sends nothing more
    (matching §5's failure model: "the process does not send messages
    after its failure"). *)

type config = {
  n : int;  (** number of processes *)
  seed : int64;
  fifo : bool;  (** per-channel FIFO delivery *)
  min_delay : float;
  max_delay : float;
  drop_prob : float;  (** probability a message is lost *)
  drop_channels : (int * int) list;
      (** channels [(src, dst)] subject to [drop_prob]; [[]] = all *)
  dup_prob : float;
      (** probability a delivered message is delivered a second time;
          the duplicate arrives as an internal ["dup-deliver:payload"]
          event (a second receive of the same message would break trace
          well-formedness) but still runs [on_message] *)
  dup_channels : (int * int) list;
      (** channels subject to [dup_prob]; [[]] = all *)
  partitions : (float * float * int list) list;
      (** [(t0, t1, group)]: during \[t0, t1), messages crossing the
          boundary between [group] and its complement are lost *)
  crashes : (float * int) list;  (** scheduled (time, pid) crashes *)
  crash_after_events : (int * int) list;
      (** [(pid, k)]: pid halts silently once it has performed [k]
          local events — the scheduled counterpart of
          [Hpl_faults.Faults.crash_stop] *)
  crash_prone : int list;
      (** pids that may crash spontaneously before handling an event *)
  crash_prob : float;
      (** per-handled-event crash probability for [crash_prone] pids;
          a spontaneous crash records a visible ["crash"] event *)
  recoveries : (int * int) list;
      (** [(pid, k)]: pid recovers from a crash — whatever its cause —
          at most [k] times, coming back up one [max_delay] after going
          down with a visible ["recover"] event and its pre-crash state
          intact (crash-recovery with stable storage). A recovered
          process gets a fresh [crash_after_events] allowance for its
          new life — the timed counterpart of
          [Hpl_faults.Faults.crash_recover]. *)
  max_steps : int;  (** hard event budget *)
  max_time : float;  (** simulated-time horizon *)
}

val default : config
(** 4 processes, seed 1, FIFO, delays in [1, 10], no faults (no drops,
    duplicates, partitions, or crashes), 100_000 steps, horizon 1e6. *)

type action =
  | Send of Hpl_core.Pid.t * string  (** send payload to a process *)
  | Set_timer of float * string  (** fire [on_timer] after a delay *)
  | Log_internal of string  (** record an internal event in the trace *)
  | Crash  (** halt this node now *)

type 's handlers = {
  init : Hpl_core.Pid.t -> 's * action list;
      (** state and initial actions of each node (runs at time 0) *)
  on_message :
    's ->
    self:Hpl_core.Pid.t ->
    src:Hpl_core.Pid.t ->
    payload:string ->
    now:float ->
    's * action list;
  on_timer :
    's -> self:Hpl_core.Pid.t -> tag:string -> now:float -> 's * action list;
}

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;  (** duplicate deliveries injected by [dup_prob] *)
  timers_fired : int;
  end_time : float;
  steps : int;
  latency_avg : float;  (** mean delivery latency of delivered messages *)
  latency_max : float;
}

type 's result = {
  trace : Hpl_core.Trace.t;  (** the run as a §2 system computation *)
  states : 's array;  (** final node states *)
  stats : stats;
  crashed : bool array;
}

val run : config -> 's handlers -> 's result
