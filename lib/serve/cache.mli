(** In-memory universe cache with LRU eviction (DESIGN.md §14).

    Entries are keyed by the canonical request key (protocol identity,
    depth, faults, reduce, mode, state budget — see [Serve.cache_key])
    and weighted by their universe's computation count, so
    [--max-cached-states] bounds the dominant memory cost rather than an
    entry count. Eviction only ever forgets work — a re-enumeration
    returns the identical universe — so cache pressure can never change
    an answer, a property the serve test suite checks under a
    deliberately tiny budget. *)

open Hpl_core

type t

val create : max_states:int -> t
(** Raises [Invalid_argument] when [max_states < 1]. *)

val find : t -> string -> Universe.t option
(** Lookup; a hit refreshes the entry's recency. *)

val add : t -> string -> Universe.t -> unit
(** Insert, evicting least-recently-used entries until the new entry
    fits. A universe larger than the whole budget is not cached at all.
    Re-adding an existing key is a no-op. *)

val entries : t -> int
val stored_states : t -> int
val evictions : t -> int
(** Total entries evicted since {!create}. *)
