(** The shared query engine behind both [hpl] subcommands and the
    server (DESIGN.md §14).

    Conformance between the CLI and [hpl serve] is not tested into
    existence — it is obtained by construction: both front ends resolve
    requests with {!resolve}/{!resolve_reduce} and render answers with
    the [run_*] functions below, which build the exact bytes the CLI
    prints into an {!outcome}. The CLI writes [outcome.out] to stdout
    and [outcome.err] to stderr and exits with [outcome.code]; the
    server embeds the same strings in its JSON reply. The conformance
    battery in [test/serve_tests.ml] then checks the byte equality
    end-to-end through real processes, guarding against the two paths
    drifting apart.

    All argument parsing takes raw strings and produces the same
    one-line diagnostics the CLI has always printed (callers prefix
    ["hpl: "] and exit 2 — or wrap into a JSON error reply). *)

open Hpl_core
open Hpl_faults
open Hpl_protocols
open Hpl_analysis

type setup = {
  inst : Protocol.instance;
  loaded : Hpl_dsl.Elaborate.loaded option;
      (** elaborated AST when the protocol came from a .hpl file *)
  spec : Spec.t;  (** fault-transformed when a scenario is given *)
  base_n : int;  (** process count before fault routing *)
  depth : int;
  budget : Universe.budget;
  view : Trace.t -> Trace.t;
      (** faulty computation -> fault-free observation *)
  scenario : Faults.Scenario.t option;
  faults_str : string option;  (** the raw [--faults] argument *)
  src_key : string;
      (** canonical protocol identity for cache keys: the registry
          instance name, or [file=path#fnv:instance] for .hpl specs
          (content-hashed, so editing the file invalidates entries) *)
}

val load :
  string -> (Protocol.instance * Hpl_dsl.Elaborate.loaded, string) result
(** Load a [.hpl] spec as [path[:v1[:v2...]]]. *)

val resolve_proto :
  ?proto:string ->
  ?file:string ->
  unit ->
  (Protocol.instance * Hpl_dsl.Elaborate.loaded option, string) result
(** Registry ([-s], default [ping-pong]) or spec file ([-f]), mutually
    exclusive. *)

val resolve :
  ?proto:string ->
  ?file:string ->
  ?depth:string ->
  ?faults:string ->
  ?max_states:string ->
  ?max_seconds:string ->
  unit ->
  (setup, string) result
(** Resolve raw request arguments into everything a universe-driven
    query needs, validating exactly as the CLI does (including static
    channel validation of [drop:]/[dup:] scenarios). *)

val dataflow :
  loaded:Hpl_dsl.Elaborate.loaded option ->
  Protocol.instance ->
  Dataflow.t option
(** Flow analysis of an instance: through the elaborated AST when it
    came from a file, through the declared profile otherwise. *)

val resolve_reduce :
  setup ->
  mode:Universe.mode ->
  ?indep:bool ->
  string ->
  (Reduction.t, string) result
(** Parse and validate a [--reduce] argument against the setup. With
    [~indep:true] (the [enumerate] semantics) a por reduction gets the
    static independence relation attached when the protocol is
    fault-free and analyzable; [knows]/[check]/[extent] pass false,
    mirroring the CLI. *)

val enumerate :
  ?mode:Universe.mode -> ?domains:int -> setup -> reduce:Reduction.t ->
  Universe.t
(** [Universe.enumerate] with the setup's spec, depth and budget. *)

type outcome = { out : string; err : string; code : int }
(** Exactly what a CLI invocation would do: bytes for stdout, bytes for
    stderr, and the exit code (0 ok; 1 property violated; 2 bad
    arguments; 3 budget-truncated). *)

val run_stats : Universe.t -> outcome
(** The [enumerate] summary line. *)

val run_knows : setup -> Universe.t -> outcome
(** The [knows] report: every registered atom's per-process knowledge
    counts, routed through the fault view. *)

val run_check : setup -> Universe.t -> Formula.t -> outcome
(** The [check] verdict for a pre-parsed formula. *)

val run_extent : setup -> Universe.t -> atom:string -> outcome
(** The [extent] report: in how many stored computations one named atom
    holds. *)
