type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_finite f then
          Buffer.add_string buf (Printf.sprintf "%.17g" f)
        else Buffer.add_string buf "null"
    | Str s -> escape buf s
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go x)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad m) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected '%c', got '%c'" c d)
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail (Printf.sprintf "bad hex digit '%c'" c)
      in
      v := (!v lsl 4) lor d;
      advance ()
    done;
    !v
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'u' ->
              let cp = hex4 () in
              let cp =
                if cp >= 0xd800 && cp <= 0xdbff && !pos + 1 < n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xdc00 && lo <= 0xdfff then
                    0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00))
                  else fail "invalid surrogate pair"
                end
                else cp
              in
              add_utf8 buf cp;
              go ()
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c))
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            saw := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "bad number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* integer overflow: fall back to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec value depth =
    if depth > 100 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}' in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' in array"
          in
          List (items [])
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

(* --- accessors -------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let str_member k v =
  match member k v with
  | Some (Str s) -> Some s
  | Some (Int n) -> Some (string_of_int n)
  | Some (Float f) -> Some (Printf.sprintf "%g" f)
  | Some (Bool b) -> Some (string_of_bool b)
  | _ -> None

let int_member k v =
  match member k v with
  | Some (Int n) -> Some n
  | _ -> None
