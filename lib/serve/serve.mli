(** The [hpl serve] daemon: a cached knowledge-query server.

    Protocol: line-delimited JSON. One request object per line, one
    reply object per line, over a Unix domain socket ({!run_socket}) or
    stdin/stdout ({!run_pipe} — what the tests and the bench client
    drive). A request names an operation and the same parameters the
    CLI takes as flags:

    {v {"op": "knows", "protocol": "token-ring:4", "depth": 6,
        "faults": "drop:p0->p1", "reduce": "por", "id": 1} v}

    Operations: ["knows"], ["check"] (["formula"] required), ["extent"]
    (["atom"] required), ["enumerate-stats"], ["server-stats"],
    ["shutdown"]. Optional fields: ["protocol"] | ["file"], ["depth"],
    ["faults"], ["reduce"], ["mode"], ["max-states"], ["max-seconds"],
    ["id"] (echoed back verbatim).

    Replies carry ["ok"], the CLI-equivalent ["exit"] code, the exact
    bytes the CLI would print as ["answer"] / ["error"] (conformance by
    construction — see {!Query}), cache provenance (["cache"]:
    hit|miss|bypass, ["source"]: memory|snapshot|enumerated|bypass), a
    ["universe"] summary, ["elapsed_us"], and the server's cumulative
    ["counters"]. Malformed frames get an ["ok": false, "exit": 2]
    reply and do not count as requests; EOF and ["shutdown"] both stop
    the server cleanly.

    Universes are memoized across requests in an LRU {!Cache} and,
    when [cache_dir] is set, persisted as {!Snapshot} files keyed by
    {!cache_key} for warm starts. Requests with a wall-clock budget
    ([max-seconds]) bypass both layers — their universes are
    nondeterministic by nature. Counters keep the invariant
    [cache_hit + cache_miss = requests] (bypassed and failed requests
    are counted separately), mirrored into the [Hpl_obs] counter
    surface as [server.cache_hit] / [server.cache_miss] /
    [server.requests] when observability is enabled. *)

type config = {
  max_cached_states : int;
      (** LRU budget, in stored computations across all cached
          universes *)
  cache_dir : string option;  (** snapshot directory; [None] disables *)
}

type t

val create : config -> t
(** Raises [Invalid_argument] when [max_cached_states < 1]. *)

val cache_key : Query.setup -> mode:Hpl_core.Universe.mode ->
  reduce:Hpl_core.Reduction.t -> string
(** The canonical identity of a request's universe: protocol source key
    (see {!Query.setup.src_key}), depth, fault scenario, reduce label
    (with the attached-independence bit — por-with-independence prunes
    differently than plain por), mode and state budget. Everything that
    can change the enumerated universe is in the key; anything less
    would let two different universes collide. *)

val handle_line : t -> string -> string
(** Process one request frame, return one reply frame (no trailing
    newline). Never raises on bad input — errors become replies. *)

val stopped : t -> bool
(** True once a ["shutdown"] request has been processed. *)

val counters : t -> (string * int) list
(** Cumulative counters: requests, cache_hit, cache_miss, bypass,
    snapshot_load, snapshot_invalid, snapshot_write, evictions,
    cached_entries, cached_states, errors. *)

val run_pipe : t -> in_channel -> out_channel -> unit
(** Serve frames from an input channel until EOF or shutdown. *)

val run_socket : t -> path:string -> (unit, string) result
(** Bind a Unix domain socket at [path] (replacing a stale socket file)
    and serve connections sequentially until shutdown. [Error] with a
    one-line message when the socket cannot be bound. *)
