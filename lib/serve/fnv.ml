let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

let hex64 h = Printf.sprintf "%016Lx" h
