(** FNV-1a 64-bit hashing.

    Used twice in the server stack: as the content checksum of snapshot
    files (DESIGN.md §14) and to derive stable snapshot filenames from
    cache keys. Not cryptographic — it guards against truncation and
    bit rot, not adversaries, which is all a local cache needs. *)

val fnv64 : string -> int64
val hex64 : int64 -> string
(** 16 lowercase hex digits, zero-padded. *)
