open Hpl_core
open Hpl_faults
open Hpl_protocols
open Hpl_analysis

(* Internal control flow: every validation failure raises, the public
   entry points catch and return [Error msg]. The messages are the ones
   bin/hpl.ml historically printed via die_usage, verbatim — the CLI
   wraps them back with "hpl: " and exit 2, the server with a JSON
   error reply, and cli_errors.sh pins several of them. *)
exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

type setup = {
  inst : Protocol.instance;
  loaded : Hpl_dsl.Elaborate.loaded option;
  spec : Spec.t;
  base_n : int;
  depth : int;
  budget : Universe.budget;
  view : Trace.t -> Trace.t;
  scenario : Faults.Scenario.t option;
  faults_str : string option;
  src_key : string;
}

(* -- protocol selection ------------------------------------------------ *)

let load_exn arg =
  let path, vals =
    match String.split_on_char ':' arg with
    | [] -> fail "-f: empty argument"
    | path :: rest ->
        ( path,
          List.map
            (fun s ->
              match int_of_string_opt s with
              | Some v -> v
              | None ->
                  fail "-f %s: parameters must be integers (got %S)" path s)
            rest )
  in
  let loaded =
    match Hpl_dsl.Elaborate.load_file path with
    | Ok l -> l
    | Error d -> fail "%s" (Hpl_dsl.Diag.to_string d)
  in
  let inst =
    match Protocol.instantiate loaded.Hpl_dsl.Elaborate.proto vals with
    | Ok i -> i
    | Error e -> fail "%s: %s" path e
  in
  (match Hpl_dsl.Elaborate.validate loaded (Protocol.values inst) with
  | Ok () -> ()
  | Error d -> fail "%s" (Hpl_dsl.Diag.to_string d));
  (inst, loaded, path)

let load arg =
  match load_exn arg with
  | inst, loaded, _ -> Ok (inst, loaded)
  | exception Bad m -> Error m

(* The cache-key identity of a protocol source. Registry instances are
   pinned by their canonical name (params included); .hpl files by
   path, content hash and instance name, so editing a spec never
   resurrects a stale cached universe. *)
let src_key_of ~file inst =
  match file with
  | None -> Protocol.instance_name inst
  | Some path ->
      let content =
        try In_channel.with_open_bin path In_channel.input_all
        with Sys_error e -> fail "%s: %s" path e
      in
      Printf.sprintf "file=%s#%s:%s" path
        (Fnv.hex64 (Fnv.fnv64 content))
        (Protocol.instance_name inst)

let resolve_proto_exn ?proto ?file () =
  match (proto, file) with
  | Some _, Some _ ->
      fail "use either -s (registry) or -f (spec file), not both"
  | None, Some f ->
      let inst, loaded, _ = load_exn f in
      (inst, Some loaded)
  | _, None -> (
      let s = Option.value proto ~default:"ping-pong" in
      match Protocol.Registry.parse s with
      | Ok i -> (i, None)
      | Error e -> fail "%s" e)

let resolve_proto ?proto ?file () =
  match resolve_proto_exn ?proto ?file () with
  | r -> Ok r
  | exception Bad m -> Error m

(* -- request resolution ------------------------------------------------ *)

let resolve_exn ?proto ?file ?depth:depth_str ?faults:faults_str
    ?max_states:max_states_str ?max_seconds:max_seconds_str () =
  let inst, loaded = resolve_proto_exn ?proto ?file () in
  let file_path =
    match file with
    | None -> None
    | Some f -> Some (List.hd (String.split_on_char ':' f))
  in
  let scenario =
    match faults_str with
    | None -> None
    | Some s -> (
        match Faults.Scenario.parse s with
        | Ok t -> Some t
        | Error e -> fail "--faults: %s" e)
  in
  let base = Protocol.spec_of inst in
  let base_n = Spec.n base in
  let spec =
    match scenario with
    | None -> base
    | Some t -> (
        match Faults.Scenario.apply t base with
        | Ok s -> s
        | Error e -> fail "--faults: %s" e)
  in
  let depth =
    match depth_str with
    | Some s -> (
        match int_of_string_opt s with
        | Some d when d >= 0 -> d
        | _ -> fail "bad --depth %S (want a nonnegative integer)" s)
    | None -> (
        let d = Protocol.depth_of inst in
        match scenario with
        | None -> d
        | Some t -> Faults.Scenario.suggested_depth t d)
  in
  let max_states =
    match max_states_str with
    | None -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some k when k >= 1 -> Some k
        | _ -> fail "bad --max-states %S (want a positive integer)" s)
  in
  let max_seconds =
    match max_seconds_str with
    | None -> None
    | Some s -> (
        match float_of_string_opt s with
        | Some v when v > 0.0 -> Some v
        | _ -> fail "bad --max-seconds %S (want a positive number)" s)
  in
  let budget = Universe.budget ?max_states ?max_seconds () in
  (* an explicitly named drop/dup channel must exist in the spec:
     [Scenario.apply] only range-checks pids, so [drop:p0->p2] on a
     3-process ring would silently route a channel that carries no
     message. The static channel graph knows the real channels; reject
     when its scope covers this enumeration depth. *)
  (match scenario with
  | Some t
    when List.exists
           (function
             | Faults.Scenario.Drop (Faults.Scenario.Channel _)
             | Faults.Scenario.Dup (Faults.Scenario.Channel _) ->
                 true
             | _ -> false)
           t -> (
      let g =
        Channel_graph.extract
          ~fuel:(max 1 (min 16 depth))
          ~max_states:60_000 base
      in
      let covered =
        match Channel_graph.scope g with
        | Channel_graph.Exact -> true
        | Channel_graph.Up_to_depth f -> depth <= f
        | Channel_graph.Incomplete -> false
      in
      if covered then
        match
          Faults.Scenario.validate_channels t
            ~channels:(Channel_graph.channels g)
        with
        | Ok () -> ()
        | Error e -> fail "--faults: %s" e)
  | _ -> ());
  let view =
    match scenario with
    | None -> Fun.id
    | Some t -> Faults.Scenario.view t ~n:base_n
  in
  let src_key = src_key_of ~file:file_path inst in
  {
    inst;
    loaded;
    spec;
    base_n;
    depth;
    budget;
    view;
    scenario;
    faults_str;
    src_key;
  }

let resolve ?proto ?file ?depth ?faults ?max_states ?max_seconds () =
  match
    resolve_exn ?proto ?file ?depth ?faults ?max_states ?max_seconds ()
  with
  | st -> Ok st
  | exception Bad m -> Error m

let dataflow ~loaded inst =
  match loaded with
  | Some l -> (
      match Dataflow.of_loaded l (Protocol.values inst) with
      | Ok t -> Some t
      | Error _ -> None)
  | None -> Dataflow.of_instance inst

let resolve_reduce st ~mode ?(indep = false) reduce_str =
  match
    match Reduction.mode_of_string reduce_str with
    | Error e -> fail "--reduce: %s" e
    | Ok `None -> Reduction.none
    | Ok rmode ->
        if mode = `Full then
          fail "--reduce %s requires canonical mode (got --mode full)"
            (Reduction.mode_to_string rmode);
        (match (rmode, st.faults_str) with
        | (`Sym | `Full), Some _ ->
            fail
              "--reduce %s cannot be combined with --faults: fault \
               transformers add daemon processes and break the declared \
               automorphisms"
              (Reduction.mode_to_string rmode)
        | _ -> ());
        let r =
          match
            Reduction.resolve rmode ~symmetry:(Protocol.symmetry_of st.inst)
          with
          | Ok r -> r
          | Error e ->
              fail "--reduce %s: %s" (Reduction.mode_to_string rmode) e
        in
        (* a static independence relation describes the fault-free spec
           only: fault transformers add daemon events the analyzer never
           saw, so attach one just when no scenario is in force *)
        if indep && Reduction.uses_por r && st.faults_str = None then
          match Option.bind (dataflow ~loaded:st.loaded st.inst)
                  Dataflow.independence
          with
          | Some ind -> Reduction.with_independence r ind
          | None -> r
        else r
  with
  | r -> Ok r
  | exception Bad m -> Error m

let enumerate ?(mode = `Canonical) ?(domains = 1) st ~reduce =
  Universe.enumerate ~mode ~domains ~budget:st.budget ~reduce st.spec
    ~depth:st.depth

(* -- rendering ---------------------------------------------------------

   Each runner builds the CLI's stdout bytes in a buffer formatter (same
   default margin as std_formatter, and none of the printers below emit
   break hints anyway), so printing [outcome.out] is byte-identical to
   the pre-refactor Format.printf calls. *)

type outcome = { out : string; err : string; code : int }

let exit_violated = 1
let exit_usage = 2
let exit_truncated = 3

let with_buffer f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let r = f fmt in
  Format.pp_print_flush fmt ();
  (Buffer.contents buf, r)

(* Graceful degradation on a truncated universe: the answer computed
   from the explored prefix is printed, then stderr carries the
   truncation notice and the exit code is 3. *)
let finish u ~out ~code =
  match Universe.status u with
  | Universe.Complete -> { out; err = ""; code }
  | Universe.Truncated r ->
      {
        out;
        err =
          Printf.sprintf "hpl: enumeration truncated: %s\n"
            (Universe.reason_to_string r);
        code = exit_truncated;
      }

let run_stats u =
  let out, () =
    with_buffer (fun fmt -> Format.fprintf fmt "%a@." Universe.pp_stats u)
  in
  finish u ~out ~code:0

let run_knows st u =
  let out, () =
    with_buffer @@ fun fmt ->
    Format.fprintf fmt "%a@.@." Universe.pp_stats u;
    match Protocol.atoms_of st.inst with
    | [] ->
        Format.fprintf fmt "(no atoms registered for %s)@."
          (Protocol.instance_name st.inst)
    | atoms ->
        List.iter
          (fun (name, fact) ->
            (* atoms are written against the fault-free system; evaluate
               them through the fault view so they apply unchanged *)
            let fact =
              Prop.make (Prop.name fact) (fun z -> Prop.eval fact (st.view z))
            in
            Format.fprintf fmt "fact %s: %a@." name Prop.pp fact;
            (* report the real processes only, not fault daemons *)
            for i = 0 to st.base_n - 1 do
              let p = Pid.of_int i in
              let k = Knowledge.knows_p u p fact in
              let count =
                Universe.fold
                  (fun _ z acc -> if Prop.eval k z then acc + 1 else acc)
                  u 0
              in
              Format.fprintf fmt "  %a knows it in %d / %d computations@."
                Pid.pp p count (Universe.size u)
            done)
          atoms
  in
  finish u ~out ~code:0

let run_check st u f =
  let verdict = ref `Usage_error in
  let out, err =
    with_buffer @@ fun fmt ->
    Format.fprintf fmt "%a@." Universe.pp_stats u;
    Format.fprintf fmt "formula: %a@." Formula.pp f;
    let env name =
      (* formula atoms are fault-free predicates; route them through
         the fault view *)
      Option.map
        (fun b -> Prop.make (Prop.name b) (fun z -> Prop.eval b (st.view z)))
        (Protocol.atom_env st.inst name)
    in
    match Formula.check u ~env f with
    | Error e -> "hpl: " ^ e ^ "\n"
    | Ok `Valid ->
        verdict := `Valid;
        Format.fprintf fmt "VALID at every computation@.";
        ""
    | Ok (`Fails_at z) ->
        verdict := `Fails;
        Format.fprintf fmt "FAILS — witness computation:@.  %a@." Trace.pp z;
        ""
  in
  match !verdict with
  | `Usage_error -> { out; err; code = exit_usage }
  (* a VALID verdict on a truncated universe is not a proof *)
  | `Valid -> finish u ~out ~code:0
  | `Fails -> { out; err = ""; code = exit_violated }

let run_extent st u ~atom =
  let found = ref false in
  let out, err =
    with_buffer @@ fun fmt ->
    Format.fprintf fmt "%a@." Universe.pp_stats u;
    match Protocol.atom_env st.inst atom with
    | None ->
        Printf.sprintf
          "hpl: unknown atom %S for %s (run `hpl list -v` for atoms)\n" atom
          (Protocol.instance_name st.inst)
    | Some fact ->
        found := true;
        let fact =
          Prop.make (Prop.name fact) (fun z -> Prop.eval fact (st.view z))
        in
        let ext = Prop.extent u fact in
        Format.fprintf fmt "atom %s: %d / %d computations@." atom
          (Bitset.cardinal ext) (Universe.size u);
        ""
  in
  if !found then finish u ~out ~code:0 else { out; err; code = exit_usage }
