(** On-disk universe snapshots for warm starts (DESIGN.md §14).

    A snapshot file wraps a {!Hpl_core.Universe.serialize} body in a
    self-validating container:

    {v magic+version "HPLSNAP1" · key length · key ·
       FNV-1a-64 of body · body length · body v}

    Every load re-derives the checksum and compares the stored key to
    the requested one, so stale files (different protocol, params,
    depth, faults or reduce mode hashed to the same filename), truncated
    writes and bit rot all surface as {!Cache_invalid} — the server then
    falls back to re-enumeration and overwrites the bad file with a
    fresh snapshot. A snapshot can make a query faster, never wrong. *)

open Hpl_core

type error =
  | Absent  (** no snapshot file for this key — the normal cold miss *)
  | Cache_invalid of string
      (** a file exists but failed validation (version, key, checksum,
          length or body decode); callers must re-enumerate *)

val path_of : dir:string -> key:string -> string
(** The snapshot file for a cache key: [dir/<fnv64 key>.hplsnap]. *)

val save : dir:string -> key:string -> Universe.t -> (unit, string) result
(** Serialize and write atomically (temp file + rename), so a crashed
    or concurrent writer can never leave a half-written snapshot under
    the final name. [Error] when the universe has no snapshot form
    (symmetry-reduced) or on I/O failure. *)

val load : dir:string -> key:string -> Spec.t -> (Universe.t, error) result
