open Hpl_core

type config = { max_cached_states : int; cache_dir : string option }

(* Deterministic mutable counters on the server itself (they must work
   with observability disabled, and the property tests assert exact
   arithmetic on them); each bump is mirrored into the Hpl_obs counter
   surface, which aggregates when --stats/--profile is on and is a
   single flag check otherwise. *)
type counters = {
  mutable requests : int;  (** queries that consulted the cache *)
  mutable cache_hit : int;
  mutable cache_miss : int;
  mutable bypass : int;  (** wall-clock-budget queries, never cached *)
  mutable snapshot_load : int;
  mutable snapshot_invalid : int;
  mutable snapshot_write : int;
  mutable errors : int;  (** malformed frames and exit-2 requests *)
}

type t = {
  cfg : config;
  cache : Cache.t;
  c : counters;
  mutable stop : bool;
}

let create cfg =
  if cfg.max_cached_states < 1 then
    invalid_arg "Serve.create: max_cached_states < 1";
  {
    cfg;
    cache = Cache.create ~max_states:cfg.max_cached_states;
    c =
      {
        requests = 0;
        cache_hit = 0;
        cache_miss = 0;
        bypass = 0;
        snapshot_load = 0;
        snapshot_invalid = 0;
        snapshot_write = 0;
        errors = 0;
      };
    stop = false;
  }

let stopped t = t.stop

let counters t =
  [
    ("requests", t.c.requests);
    ("cache_hit", t.c.cache_hit);
    ("cache_miss", t.c.cache_miss);
    ("bypass", t.c.bypass);
    ("snapshot_load", t.c.snapshot_load);
    ("snapshot_invalid", t.c.snapshot_invalid);
    ("snapshot_write", t.c.snapshot_write);
    ("evictions", Cache.evictions t.cache);
    ("cached_entries", Cache.entries t.cache);
    ("cached_states", Cache.stored_states t.cache);
    ("errors", t.c.errors);
  ]

let counters_json t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t))

(* Everything that can change the enumerated universe is in the key:
   protocol source identity (params and, for files, content hash
   included), depth, fault scenario, reduce label with the
   attached-independence bit (por+indep prunes states plain por keeps),
   mode, and the state budget (truncation changes the stored set).
   Wall-clock budgets never reach the cache at all. *)
let cache_key st ~mode ~reduce =
  Printf.sprintf "hpl1|%s|depth=%d|faults=%s|reduce=%s%s|mode=%s|max_states=%s"
    st.Query.src_key st.Query.depth
    (Option.value st.Query.faults_str ~default:"-")
    (Reduction.label reduce)
    (if Reduction.independence reduce <> None then "+indep" else "")
    (match mode with `Full -> "full" | `Canonical -> "canonical")
    (match st.Query.budget.Universe.max_states with
    | Some k -> string_of_int k
    | None -> "-")

(* -- request handling --------------------------------------------------- *)

exception Bad_request of string

(* Error replies carry the exact bytes the CLI would print on stderr,
   "hpl: " prefix and trailing newline included, so process-level
   conformance can compare them byte for byte. *)
let err_reply t ~id msg =
  t.c.errors <- t.c.errors + 1;
  Hpl_obs.count "server.errors" 1;
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool false);
      ("exit", Json.Int 2);
      ("error", Json.Str ("hpl: " ^ msg ^ "\n"));
    ]

let field req k =
  match Json.member k req with
  | None | Some Json.Null -> None
  | Some (Json.Str s) -> Some s
  | Some (Json.Int n) -> Some (string_of_int n)
  | Some (Json.Float f) -> Some (Printf.sprintf "%g" f)
  | Some _ ->
      raise
        (Bad_request (Printf.sprintf "field %S must be a string or number" k))

(* Produce the universe for a resolved request: memory cache, then
   snapshot directory, then enumeration (writing a fresh snapshot on
   the way out). Returns provenance for the reply. *)
let obtain t st ~mode ~reduce ~key =
  if st.Query.budget.Universe.max_seconds <> None then begin
    t.c.bypass <- t.c.bypass + 1;
    Hpl_obs.count "server.bypass" 1;
    (Query.enumerate ~mode st ~reduce, "bypass", "bypass")
  end
  else begin
    t.c.requests <- t.c.requests + 1;
    Hpl_obs.count "server.requests" 1;
    match Cache.find t.cache key with
    | Some u ->
        t.c.cache_hit <- t.c.cache_hit + 1;
        Hpl_obs.count "server.cache_hit" 1;
        (u, "hit", "memory")
    | None ->
        t.c.cache_miss <- t.c.cache_miss + 1;
        Hpl_obs.count "server.cache_miss" 1;
        let enumerate_and_snapshot dir =
          let u =
            Hpl_obs.span "serve.enumerate" (fun () ->
                Query.enumerate ~mode st ~reduce)
          in
          (match dir with
          | None -> ()
          | Some dir -> (
              match Snapshot.save ~dir ~key u with
              | Ok () ->
                  t.c.snapshot_write <- t.c.snapshot_write + 1;
                  Hpl_obs.count "server.snapshot_write" 1
              | Error _ -> ()));
          (u, "enumerated")
        in
        let u, source =
          match t.cfg.cache_dir with
          | None -> enumerate_and_snapshot None
          | Some dir -> (
              match Snapshot.load ~dir ~key st.Query.spec with
              | Ok u ->
                  t.c.snapshot_load <- t.c.snapshot_load + 1;
                  Hpl_obs.count "server.snapshot_load" 1;
                  (u, "snapshot")
              | Error Snapshot.Absent -> enumerate_and_snapshot (Some dir)
              | Error (Snapshot.Cache_invalid _) ->
                  (* stale or corrupt file: fall back to enumeration;
                     the fresh snapshot overwrites the bad one *)
                  t.c.snapshot_invalid <- t.c.snapshot_invalid + 1;
                  Hpl_obs.count "server.snapshot_invalid" 1;
                  enumerate_and_snapshot (Some dir))
        in
        Cache.add t.cache key u;
        (u, "miss", source)
  end

let handle_query t ~id ~op req =
  let t0 = Unix.gettimeofday () in
  let proto = field req "protocol" in
  let file = field req "file" in
  let depth = field req "depth" in
  let faults = field req "faults" in
  let max_states = field req "max-states" in
  let max_seconds = field req "max-seconds" in
  (* parse the formula before resolving, like the CLI does — a bad
     formula is reported even when the protocol is also bad *)
  let formula =
    match op with
    | "check" -> (
        match field req "formula" with
        | None -> raise (Bad_request "check needs a \"formula\" field")
        | Some text -> (
            match Formula.parse text with
            | Error e -> raise (Bad_request ("parse error: " ^ e))
            | Ok f -> Some f))
    | _ -> None
  in
  let atom =
    match op with
    | "extent" -> (
        match field req "atom" with
        | None -> raise (Bad_request "extent needs an \"atom\" field")
        | Some a -> Some a)
    | _ -> None
  in
  match Query.resolve ?proto ?file ?depth ?faults ?max_states ?max_seconds ()
  with
  | Error m -> err_reply t ~id m
  | Ok st -> (
      let mode =
        match field req "mode" with
        | None | Some "canonical" -> `Canonical
        | Some "full" -> `Full
        | Some m ->
            raise
              (Bad_request (Printf.sprintf "bad mode %S (want canonical|full)" m))
      in
      (* enumerate-stats mirrors the CLI's enumerate: it is the one op
         that attaches static independence to a por reduction *)
      let indep = op = "enumerate-stats" in
      let reduce_str = Option.value (field req "reduce") ~default:"none" in
      match Query.resolve_reduce st ~mode ~indep reduce_str with
      | Error m -> err_reply t ~id m
      | Ok reduce ->
          let key = cache_key st ~mode ~reduce in
          let u, cache, source = obtain t st ~mode ~reduce ~key in
          let outcome =
            match (op, formula, atom) with
            | "check", Some f, _ -> Query.run_check st u f
            | "extent", _, Some a -> Query.run_extent st u ~atom:a
            | "knows", _, _ -> Query.run_knows st u
            | _ -> Query.run_stats u
          in
          if outcome.Query.code = 2 then t.c.errors <- t.c.errors + 1;
          Json.Obj
            [
              ("id", id);
              ("ok", Json.Bool (outcome.Query.code <> 2));
              ("op", Json.Str op);
              ("exit", Json.Int outcome.Query.code);
              ("answer", Json.Str outcome.Query.out);
              ( "error",
                if outcome.Query.err = "" then Json.Null
                else Json.Str outcome.Query.err );
              ("cache", Json.Str cache);
              ("source", Json.Str source);
              ( "universe",
                Json.Obj
                  [
                    ("size", Json.Int (Universe.size u));
                    ("depth", Json.Int (Universe.depth u));
                    ( "truncated",
                      Json.Bool (Universe.status u <> Universe.Complete) );
                  ] );
              ( "elapsed_us",
                Json.Int
                  (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)) );
              ("counters", counters_json t);
            ])

let handle_request t ~id req =
  match field req "op" with
  | None -> err_reply t ~id "request needs an \"op\" field"
  | Some "shutdown" ->
      t.stop <- true;
      Json.Obj
        [
          ("id", id);
          ("ok", Json.Bool true);
          ("op", Json.Str "shutdown");
          ("exit", Json.Int 0);
        ]
  | Some "server-stats" ->
      Json.Obj
        [
          ("id", id);
          ("ok", Json.Bool true);
          ("op", Json.Str "server-stats");
          ("exit", Json.Int 0);
          ("counters", counters_json t);
        ]
  | Some (("knows" | "check" | "extent" | "enumerate-stats") as op) ->
      Hpl_obs.span "serve.request"
        ~args:(fun () -> [ ("op", op) ])
        (fun () -> handle_query t ~id ~op req)
  | Some op ->
      err_reply t ~id
        (Printf.sprintf
           "unknown op %S (expected \
            knows|check|extent|enumerate-stats|server-stats|shutdown)"
           op)

let handle_line t line =
  let reply =
    match Json.parse line with
    | Error m ->
        t.c.errors <- t.c.errors + 1;
        Hpl_obs.count "server.bad_frames" 1;
        Json.Obj
          [
            ("id", Json.Null);
            ("ok", Json.Bool false);
            ("exit", Json.Int 2);
            ("error", Json.Str (Printf.sprintf "hpl: malformed frame: %s\n" m));
          ]
    | Ok req -> (
        let id = Option.value (Json.member "id" req) ~default:Json.Null in
        match handle_request t ~id req with
        | reply -> reply
        | exception Bad_request m -> err_reply t ~id m
        | exception e ->
            (* one bad request must not take the daemon down *)
            err_reply t ~id ("internal error: " ^ Printexc.to_string e))
  in
  Json.to_string reply

(* -- transports --------------------------------------------------------- *)

let run_pipe t ic oc =
  let rec loop () =
    if t.stop then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
          if String.trim line = "" then loop ()
          else begin
            output_string oc (handle_line t line);
            output_char oc '\n';
            flush oc;
            loop ()
          end
  in
  loop ()

let run_socket t ~path =
  (* a client hanging up mid-reply must be an EPIPE error on the
     connection, not a fatal signal for the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match
    (if Sys.file_exists path then
       if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
       else
         failwith
           (Printf.sprintf "--socket %s: exists and is not a socket" path));
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind sock (Unix.ADDR_UNIX path);
       Unix.listen sock 8;
       sock
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e)
  with
  | exception Failure m -> Error m
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "--socket %s: %s" path (Unix.error_message e))
  | sock ->
      let serve_conn fd =
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (try run_pipe t ic oc
         with Sys_error _ | Unix.Unix_error _ -> ());
        (try flush oc with Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      let rec accept_loop () =
        if t.stop then ()
        else begin
          (match Unix.accept sock with
          | fd, _ -> serve_conn fd
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
