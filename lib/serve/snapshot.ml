open Hpl_core

type error = Absent | Cache_invalid of string

(* Bumping the format (or Universe's body encoding) means bumping this
   string: old files then fail the magic check and are re-enumerated,
   which is exactly the invalidation rule we want. *)
let magic = "HPLSNAP1"

let path_of ~dir ~key =
  Filename.concat dir (Fnv.hex64 (Fnv.fnv64 key) ^ ".hplsnap")

let add_u32 b v =
  if v < 0 || v > 0x3fffffff then invalid_arg "Snapshot: length out of range";
  for k = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * k)) land 0xff))
  done

let add_u64 b (v : int64) =
  for k = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff))
  done

let save ~dir ~key u =
  match Universe.serialize u with
  | Error e -> Error e
  | Ok body -> (
      let b = Buffer.create (String.length body + 64) in
      Buffer.add_string b magic;
      add_u32 b (String.length key);
      Buffer.add_string b key;
      add_u64 b (Fnv.fnv64 body);
      add_u32 b (String.length body);
      Buffer.add_string b body;
      let path = path_of ~dir ~key in
      let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
      try
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc (Buffer.contents b));
        Unix.rename tmp path;
        Ok ()
      with
      | Sys_error e ->
          (try Sys.remove tmp with Sys_error _ -> ());
          Error e
      | Unix.Unix_error (e, _, _) ->
          (try Sys.remove tmp with Sys_error _ -> ());
          Error (Unix.error_message e))

exception Invalid of string

let load ~dir ~key spec =
  let path = path_of ~dir ~key in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> Error Absent
  | raw -> (
      let pos = ref 0 in
      let len = String.length raw in
      let fail m = raise (Invalid m) in
      let take k what =
        if k < 0 || !pos + k > len then fail ("truncated " ^ what);
        let s = String.sub raw !pos k in
        pos := !pos + k;
        s
      in
      let u32 what =
        let s = take 4 what in
        let v = ref 0 in
        for k = 3 downto 0 do
          v := (!v lsl 8) lor Char.code s.[k]
        done;
        if !v < 0 || !v > 0x3fffffff then fail ("implausible " ^ what);
        !v
      in
      let u64 what =
        let s = take 8 what in
        let v = ref 0L in
        for k = 7 downto 0 do
          v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[k]))
        done;
        !v
      in
      try
        if take (String.length magic) "header" <> magic then
          fail "bad magic or snapshot format version";
        let klen = u32 "key length" in
        if take klen "key" <> key then
          fail "cache key mismatch (filename hash collision or stale file)";
        let sum = u64 "checksum" in
        let blen = u32 "body length" in
        let body = take blen "body" in
        if !pos <> len then fail "trailing bytes after body";
        if Fnv.fnv64 body <> sum then fail "checksum mismatch";
        match Universe.deserialize spec body with
        | Ok u -> Ok u
        | Error e -> fail ("bad body: " ^ e)
      with Invalid m -> Error (Cache_invalid m))
