open Hpl_core

type entry = { u : Universe.t; mutable tick : int }

type t = {
  max_states : int;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable stored : int;
  mutable evicted : int;
}

let create ~max_states =
  if max_states < 1 then invalid_arg "Cache.create: max_states < 1";
  {
    max_states;
    tbl = Hashtbl.create 16;
    clock = 0;
    stored = 0;
    evicted = 0;
  }

let weight u = max 1 (Universe.size u)

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some e ->
      t.clock <- t.clock + 1;
      e.tick <- t.clock;
      Some e.u

(* The entry count stays small (a handful of distinct request shapes),
   so a linear scan for the LRU victim beats maintaining an intrusive
   list. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, b) when b.tick <= e.tick -> acc
        | _ -> Some (k, e))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (k, e) ->
      Hashtbl.remove t.tbl k;
      t.stored <- t.stored - weight e.u;
      t.evicted <- t.evicted + 1

let add t key u =
  if not (Hashtbl.mem t.tbl key) then begin
    let w = weight u in
    if w <= t.max_states then begin
      while t.stored + w > t.max_states && Hashtbl.length t.tbl > 0 do
        evict_one t
      done;
      t.clock <- t.clock + 1;
      Hashtbl.add t.tbl key { u; tick = t.clock };
      t.stored <- t.stored + w
    end
  end

let entries t = Hashtbl.length t.tbl
let stored_states t = t.stored
let evictions t = t.evicted
