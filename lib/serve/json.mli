(** Minimal JSON, just enough for the server's line-delimited protocol.

    One value per line, objects with string keys, no dependency beyond
    the stdlib. The printer emits compact single-line output (no
    whitespace), so a reply is always exactly one frame. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. *)

val to_string : t -> string
(** Compact single-line rendering; control characters in strings are
    escaped, so the output never contains a newline. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k]; [None] when absent
    or when the value is not an object. *)

val str_member : string -> t -> string option
(** String-valued member; numbers are rendered to strings (the server
    accepts ["depth": 5] and ["depth": "5"] alike). [None] when absent
    or [Null]. *)

val int_member : string -> t -> int option
