type t = {
  src : Pid.t;
  dst : Pid.t;
  seq : int;
  payload : string;
  mutable h : int;
}

let make ~src ~dst ~seq ~payload = { src; dst; seq; payload; h = -1 }

let equal a b =
  Pid.equal a.src b.src && Pid.equal a.dst b.dst && Int.equal a.seq b.seq
  && String.equal a.payload b.payload

let compare a b =
  let c = Pid.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Int.compare a.seq b.seq in
    if c <> 0 then c
    else
      let c = Pid.compare a.dst b.dst in
      if c <> 0 then c else String.compare a.payload b.payload

let hash m =
  if m.h >= 0 then m.h
  else begin
    let v = Hashtbl.hash (Pid.to_int m.src, Pid.to_int m.dst, m.seq, m.payload) in
    m.h <- v;
    v
  end
let key m = (m.src, m.seq)

let pp fmt m =
  Format.fprintf fmt "%a->%a#%d(%s)" Pid.pp m.src Pid.pp m.dst m.seq m.payload

let to_string m = Format.asprintf "%a" pp m
