type t =
  | Atom of Prop.t
  | True
  | False
  | Not of t
  | And of t * t
  | Or of t * t
  | Ex of t
  | Ax of t
  | Eu of t * t
  | Au of t * t

let atom b = Atom b
let tt = True
let ff = False
let not_ f = Not f
let and_ a b = And (a, b)
let or_ a b = Or (a, b)
let implies a b = Or (Not a, b)
let ex f = Ex f
let ax f = Ax f
let eu a b = Eu (a, b)
let au a b = Au (a, b)
let ef f = Eu (True, f)
let af f = Au (True, f)
let eg f = Not (Au (True, Not f))
let ag f = Not (Eu (True, Not f))

(* successor indices of each computation: its one-event extensions that
   are stored in the universe (canonical mode: the canonical form of
   each extension) *)
let successors u =
  let spec = Universe.spec u in
  Array.init (Universe.size u) (fun i ->
      let z = Universe.comp u i in
      List.filter_map (fun z' -> Universe.find u z') (Spec.extensions spec z)
      |> List.sort_uniq Int.compare)

let eval_ctl ~size ~succ ~atom formula =
  let rec eval = function
    | True -> Bitset.create_full size
    | False -> Bitset.create size
    | Atom b -> atom b
    | Not f -> Bitset.complement (eval f)
    | And (a, b) -> Bitset.inter (eval a) (eval b)
    | Or (a, b) -> Bitset.union (eval a) (eval b)
    | Ex f ->
        let s = eval f in
        Bitset.of_pred size (fun i -> List.exists (Bitset.mem s) succ.(i))
    | Ax f ->
        let s = eval f in
        Bitset.of_pred size (fun i -> List.for_all (Bitset.mem s) succ.(i))
    | Eu (a, b) ->
        (* least fixpoint: b ∪ (a ∩ EX result) — iterate upward *)
        let sa = eval a and sb = eval b in
        let result = Bitset.copy sb in
        let changed = ref true in
        while !changed do
          changed := false;
          for i = 0 to size - 1 do
            if
              (not (Bitset.mem result i))
              && Bitset.mem sa i
              && List.exists (Bitset.mem result) succ.(i)
            then begin
              Bitset.add result i;
              changed := true
            end
          done
        done;
        result
    | Au (a, b) ->
        (* least fixpoint: b ∪ (a ∩ nonempty-successors ∩ AX result);
           on a finite DAG leaves satisfy A[a U b] only via b *)
        let sa = eval a and sb = eval b in
        let result = Bitset.copy sb in
        let changed = ref true in
        while !changed do
          changed := false;
          for i = 0 to size - 1 do
            if
              (not (Bitset.mem result i))
              && Bitset.mem sa i
              && succ.(i) <> []
              && List.for_all (Bitset.mem result) succ.(i)
            then begin
              Bitset.add result i;
              changed := true
            end
          done
        done;
        result
  in
  eval formula

(* On a symmetry-reduced universe (DESIGN.md §10) the branching
   structure at a representative is NOT the branching structure of the
   quotient graph: an extension of [comp i] lives in some orbit [j]
   only up to a permutation. Model checking therefore runs on the pair
   graph whose nodes [(i, k)] denote the concrete computation
   [π_k · comp i]: a successor [z'] of [comp i] with
   [find_orbit u z' = (j, ρ)] (meaning [z' ≅ ρ · comp j]) lifts to the
   edge [(i, k) → (j, index (π_k ∘ ρ))]. Atoms are evaluated at the
   concrete computations, and the result is projected back to the
   identity-permutation nodes. Pair nodes that happen to denote
   [\[D\]]-equivalent computations are bisimilar duplicates, so the
   projection is exact. *)

let check_sym u g formula =
  let size = Universe.size u in
  let perms = Array.of_list (Symmetry.elements g) in
  let go = Array.length perms in
  let nn = size * go in
  let spec = Universe.spec u in
  let traces =
    Array.init nn (fun idx ->
        let i = idx / go and k = idx mod go in
        let z = Universe.comp u i in
        if k = 0 then z else Symmetry.permute_trace perms.(k) z)
  in
  let qsucc =
    Array.init size (fun i ->
        List.filter_map
          (fun z' -> Universe.find_orbit u z')
          (Spec.extensions spec (Universe.comp u i)))
  in
  let succ =
    Array.init nn (fun idx ->
        let i = idx / go and k = idx mod go in
        List.filter_map
          (fun (j, rho) ->
            match Symmetry.index_of g (Symmetry.compose perms.(k) rho) with
            | Some kk -> Some ((j * go) + kk)
            | None -> None)
          qsucc.(i)
        |> List.sort_uniq Int.compare)
  in
  let atom b = Bitset.of_pred nn (fun idx -> Prop.eval b traces.(idx)) in
  let full = eval_ctl ~size:nn ~succ ~atom formula in
  Bitset.of_pred size (fun i -> Bitset.mem full (i * go))

let check u formula =
  match Universe.symmetry u with
  | Some g when not (Symmetry.is_trivial g) -> check_sym u g formula
  | _ ->
      eval_ctl ~size:(Universe.size u) ~succ:(successors u)
        ~atom:(Prop.extent u) formula

let holds_at u f z = Bitset.mem (check u f) (Universe.find_exn u z)
let valid u f = Bitset.equal (check u f) (Bitset.create_full (Universe.size u))
let holds_initially u f = holds_at u f Trace.empty

let rec pp fmt = function
  | Atom b -> Prop.pp fmt b
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Not f -> Format.fprintf fmt "¬(%a)" pp f
  | And (a, b) -> Format.fprintf fmt "(%a ∧ %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a ∨ %a)" pp a pp b
  | Ex f -> Format.fprintf fmt "EX(%a)" pp f
  | Ax f -> Format.fprintf fmt "AX(%a)" pp f
  | Eu (True, b) -> Format.fprintf fmt "EF(%a)" pp b
  | Eu (a, b) -> Format.fprintf fmt "E[%a U %a]" pp a pp b
  | Au (True, b) -> Format.fprintf fmt "AF(%a)" pp b
  | Au (a, b) -> Format.fprintf fmt "A[%a U %a]" pp a pp b
