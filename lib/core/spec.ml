type intent =
  | Send_to of Pid.t * string
  | Recv_any
  | Recv_from of Pid.t
  | Recv_if of string * (Msg.t -> bool)
  | Do of string

type rule = Event.t list -> intent list
type t = { n : int; all : Pset.t; rule : Pid.t -> rule }

let make ~n rule =
  if n < 1 then invalid_arg "Spec.make: need at least one process";
  { n; all = Pset.all n; rule }

let n s = s.n
let all s = s.all
let pids s = Pset.to_list s.all
let rule_of s p = s.rule p

let local_send_count history =
  List.fold_left (fun k e -> if Event.is_send e then k + 1 else k) 0 history

(* The per-process alphabet: the events one intent stands for, given the
   process's local history and a pool of deliverable messages. Shared by
   [enabled_on] (which passes the trace's actual in-flight messages) and
   the static analyzer in [lib/analysis] (which passes an
   over-approximate candidate pool). *)
let intent_events p ~history ~pool intent =
  let lseq = List.length history in
  let here m = Pid.equal m.Msg.dst p in
  match intent with
  | Send_to (dst, payload) ->
      let sends = local_send_count history in
      [ Event.send ~pid:p ~lseq (Msg.make ~src:p ~dst ~seq:sends ~payload) ]
  | Recv_any ->
      List.filter_map
        (fun m -> if here m then Some (Event.receive ~pid:p ~lseq m) else None)
        pool
  | Recv_from src ->
      List.filter_map
        (fun m ->
          if here m && Pid.equal m.Msg.src src then
            Some (Event.receive ~pid:p ~lseq m)
          else None)
        pool
  | Recv_if (_, accept) ->
      List.filter_map
        (fun m ->
          if here m && accept m then Some (Event.receive ~pid:p ~lseq m)
          else None)
        pool
  | Do tag -> [ Event.internal ~pid:p ~lseq tag ]

let step_events s p ~history ~pool =
  s.rule p history
  |> List.concat_map (intent_events p ~history ~pool)
  |> List.sort_uniq Event.compare

let enabled_on s z p =
  step_events s p ~history:(Trace.proj z p) ~pool:(Trace.in_flight z)

let enabled s z =
  List.concat_map (enabled_on s z) (pids s) |> List.sort_uniq Event.compare

let extensions s z = List.map (Trace.snoc z) (enabled s z)

let validity_error s z =
  match Trace.well_formed_error z with
  | Some reason -> Some ("not well-formed: " ^ reason)
  | None ->
      let step (prefix, err) e =
        match err with
        | Some _ -> (prefix, err)
        | None ->
            if List.exists (Event.equal e) (enabled_on s prefix e.Event.pid) then
              (Trace.snoc prefix e, None)
            else
              ( prefix,
                Some
                  (Printf.sprintf "event %s not enabled after %d events"
                     (Event.to_string e) (Trace.length prefix)) )
      in
      let _, err = List.fold_left step (Trace.empty, None) (Trace.to_list z) in
      err

let valid s z = Option.is_none (validity_error s z)
