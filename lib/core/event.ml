type kind = Send of Msg.t | Receive of Msg.t | Internal of string
type t = { pid : Pid.t; lseq : int; kind : kind; mutable h : int }

let send ~pid ~lseq m =
  if not (Pid.equal pid m.Msg.src) then invalid_arg "Event.send: pid <> msg.src";
  { pid; lseq; kind = Send m; h = -1 }

let receive ~pid ~lseq m =
  if not (Pid.equal pid m.Msg.dst) then invalid_arg "Event.receive: pid <> msg.dst";
  { pid; lseq; kind = Receive m; h = -1 }

let internal ~pid ~lseq tag = { pid; lseq; kind = Internal tag; h = -1 }

let kind_rank = function Send _ -> 0 | Receive _ -> 1 | Internal _ -> 2

let equal_kind a b =
  match (a, b) with
  | Send m, Send m' | Receive m, Receive m' -> Msg.equal m m'
  | Internal s, Internal s' -> String.equal s s'
  | (Send _ | Receive _ | Internal _), _ -> false

let compare_kind a b =
  match (a, b) with
  | Send m, Send m' | Receive m, Receive m' -> Msg.compare m m'
  | Internal s, Internal s' -> String.compare s s'
  | _ -> Int.compare (kind_rank a) (kind_rank b)

let equal a b =
  a == b
  || (a.h < 0 || b.h < 0 || a.h = b.h)
     && Pid.equal a.pid b.pid && Int.equal a.lseq b.lseq
     && equal_kind a.kind b.kind

let compare a b =
  let c = Pid.compare a.pid b.pid in
  if c <> 0 then c
  else
    let c = Int.compare a.lseq b.lseq in
    if c <> 0 then c else compare_kind a.kind b.kind

(* memoized lazily: symmetry-reduced enumeration hashes every event of
   every orbit key it interns, and those events are shared structurally
   across BFS levels — but most renamed candidate events are only ever
   compared, so hashing eagerly at construction would be a net loss *)
let hash e =
  if e.h >= 0 then e.h
  else begin
    let v =
      Hashtbl.hash
        ( Pid.to_int e.pid,
          e.lseq,
          match e.kind with
          | Send m -> (0, Msg.hash m)
          | Receive m -> (1, Msg.hash m)
          | Internal s -> (2, Hashtbl.hash s) )
    in
    e.h <- v;
    v
  end

let on e ps = Pset.mem e.pid ps
let is_send e = match e.kind with Send _ -> true | Receive _ | Internal _ -> false

let is_receive e =
  match e.kind with Receive _ -> true | Send _ | Internal _ -> false

let is_internal e =
  match e.kind with Internal _ -> true | Send _ | Receive _ -> false

let message e =
  match e.kind with Send m | Receive m -> Some m | Internal _ -> None

let pp fmt e =
  match e.kind with
  | Send m -> Format.fprintf fmt "%a.%d!%a" Pid.pp e.pid e.lseq Msg.pp m
  | Receive m -> Format.fprintf fmt "%a.%d?%a" Pid.pp e.pid e.lseq Msg.pp m
  | Internal s -> Format.fprintf fmt "%a.%d:%s" Pid.pp e.pid e.lseq s

let to_string e = Format.asprintf "%a" pp e
