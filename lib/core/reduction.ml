(* --- static independence --------------------------------------------

   Facts about a spec that no enumeration can discover on its own,
   computed by the abstract interpreter ([Hpl_analysis.Dataflow]) and
   handed down here:

   - [stable.(p)]: process p performs no receive in any reachable
     history. A stable process's enabled set depends only on its own
     local history — no other process's event can enable, disable or
     change it — and none of its events is a receive.
   - [bound.(p)]: a finite upper bound on the total number of events p
     performs in any computation; [total] is their sum.

   [total <= depth] is the no-truncation certificate: every computation
   of length [depth] that the enumeration explores is genuinely blocked
   (quiescent), not cut off by the bound, so "inevitable" arguments
   about blocked computations apply to every leaf. *)

module Independence = struct
  type t = { stable : bool array; bound : int array; total : int }

  let make ~stable ~bound =
    if Array.length stable <> Array.length bound then
      invalid_arg "Reduction.Independence.make: array length mismatch";
    { stable; bound; total = Array.fold_left ( + ) 0 bound }

  let applicable t ~depth = t.total <= depth
  let stable t p = t.stable.(p)
  let bound t p = t.bound.(p)
  let total t = t.total
  let n t = Array.length t.stable
end

type t = {
  sym : Symmetry.group option;
  por : bool;
  indep : Independence.t option;
}

let none = { sym = None; por = false; indep = None }
let por = { sym = None; por = true; indep = None }
let sym g = { sym = Some g; por = false; indep = None }
let full g = { sym = Some g; por = true; indep = None }
let is_none r = Option.is_none r.sym && not r.por
let symmetry r = r.sym
let uses_por r = r.por
let with_independence r ind = { r with indep = Some ind }
let independence r = r.indep

let label r =
  match (r.sym, r.por) with
  | None, false -> "none"
  | None, true -> "por"
  | Some _, false -> "sym"
  | Some _, true -> "full"

type mode = [ `None | `Sym | `Por | `Full ]

let mode_to_string = function
  | `None -> "none"
  | `Sym -> "sym"
  | `Por -> "por"
  | `Full -> "full"

let mode_of_string = function
  | "none" -> Ok `None
  | "sym" -> Ok `Sym
  | "por" -> Ok `Por
  | "full" -> Ok `Full
  | s -> Error (Printf.sprintf "unknown reduction %S (expected none|sym|por|full)" s)

let resolve mode ~symmetry:g =
  match (mode, g) with
  | `None, _ -> Ok none
  | `Por, _ -> Ok por
  | (`Sym | `Full), None ->
      Error
        "this protocol declares no symmetry generators (see `hpl list -v`); \
         only --reduce none|por apply"
  | `Sym, Some g -> Ok (sym g)
  | `Full, Some g -> Ok (full g)

(* --- ample filter ---------------------------------------------------

   The persistent-set analogue of [Universe.snoc_is_canonical]: an
   extension [(z; e)] is kept iff [e] is not preceded, at or after the
   position where it first became available, by any event greater than
   it. The baseline recomputes availability by scanning [z] per
   candidate; here the per-state context precomputes
   - the suffix maxima of [z]'s events,
   - the position of each process's last event (the same-process direct
     predecessor of any extension on it), and
   - the position of each send (the direct predecessor of its receive),
   making each candidate test O(1). The kept set is exactly the
   baseline's, so reduced-without-symmetry enumeration is bit-identical
   to the seed — only faster. *)

module Ample = struct
  type ctx = {
    len : int;
    suffix_max : Event.t array;
    last_pos : int array; (* per pid, -1 when the process has no event *)
    send_pos : (Pid.t * int, int) Hashtbl.t; (* Msg.key -> position *)
  }

  let make ~n z =
    let events = Array.of_list (Trace.to_list z) in
    let len = Array.length events in
    let suffix_max =
      if len = 0 then [||]
      else begin
        let sm = Array.make len events.(len - 1) in
        for i = len - 2 downto 0 do
          sm.(i) <-
            (if Event.compare events.(i) sm.(i + 1) > 0 then events.(i)
             else sm.(i + 1))
        done;
        sm
      end
    in
    let last_pos = Array.make n (-1) in
    let send_pos = Hashtbl.create (2 * len) in
    Array.iteri
      (fun i e ->
        last_pos.(Pid.to_int e.Event.pid) <- i;
        match e.Event.kind with
        | Event.Send m -> Hashtbl.replace send_pos (Msg.key m) i
        | Event.Receive _ | Event.Internal _ -> ())
      events;
    { len; suffix_max; last_pos; send_pos }

  let keep ctx e =
    let same_pid = ctx.last_pos.(Pid.to_int e.Event.pid) in
    let from_send =
      match e.Event.kind with
      | Event.Receive m -> (
          match Hashtbl.find_opt ctx.send_pos (Msg.key m) with
          | Some i -> i
          | None -> -1)
      | Event.Send _ | Event.Internal _ -> -1
    in
    let avail = 1 + max same_pid from_send in
    avail >= ctx.len || Event.compare ctx.suffix_max.(avail) e < 0
end

(* --- incremental enabled sets ---------------------------------------

   [Spec.enabled] recomputes every process's projection and the
   in-flight pool by scanning the whole trace at every state. But a
   one-event extension only changes the enabled set of the extending
   process (its history and, for a receive, the pool entry it consumes)
   and — when the event is a send — of the destination (receives are
   filtered by [dst], so no other pool consumer exists). Carrying the
   per-process histories, per-process enabled lists and the pool from
   parent to child makes a step cost at most two rule invocations
   instead of [n] full-trace scans.

   Event lists are kept per process, each sorted and deduplicated by
   [Spec.step_events]; [Event.compare] orders by pid first, so their
   concatenation in pid order is exactly [Spec.enabled]'s output. *)

module Enabled = struct
  type ctx = {
    hists_rev : Event.t list array; (* newest first, tails shared *)
    by_pid : Event.t list array;
    pool : Msg.t list;
  }

  let recompute spec ~hists_rev ~pool q =
    Spec.step_events spec (Pid.of_int q)
      ~history:(List.rev hists_rev.(q))
      ~pool

  let init spec =
    let n = Spec.n spec in
    let hists_rev = Array.make n [] in
    let pool = [] in
    {
      hists_rev;
      by_pid = Array.init n (fun q -> recompute spec ~hists_rev ~pool q);
      pool;
    }

  let events ctx = List.concat (Array.to_list ctx.by_pid)

  let step spec ctx e =
    let n = Array.length ctx.by_pid in
    let pi = Pid.to_int e.Event.pid in
    let hists_rev = Array.copy ctx.hists_rev in
    hists_rev.(pi) <- e :: hists_rev.(pi);
    let pool =
      match e.Event.kind with
      | Event.Send m -> m :: ctx.pool
      | Event.Receive m -> List.filter (fun m' -> not (Msg.equal m' m)) ctx.pool
      | Event.Internal _ -> ctx.pool
    in
    let by_pid = Array.copy ctx.by_pid in
    by_pid.(pi) <- recompute spec ~hists_rev ~pool pi;
    (match e.Event.kind with
    | Event.Send m ->
        let d = Pid.to_int m.Msg.dst in
        if d <> pi && d >= 0 && d < n then
          by_pid.(d) <- recompute spec ~hists_rev ~pool d
    | Event.Receive _ | Event.Internal _ -> ());
    { hists_rev; by_pid; pool }
end

(* --- ample-set restriction ------------------------------------------

   At a canonical state, let x0 be the globally least enabled event
   ([Event.compare] is pid-major and [Enabled.events] concatenates the
   sorted per-pid lists in pid order, so x0 heads the candidate list)
   and p its process. If p is stable and x0 is p's only enabled event,
   {x0} is a valid ample set for the blocked fragment of the universe:

   - x0 is inevitable: p's enabled set cannot be changed by any other
     process (stability), so in every blocked extension of this state
     p eventually performs x0 — a blocked computation omitting it would
     leave x0 enabled forever.
   - the canonical linearization of any blocked class through this
     state continues with x0: x0 is ready (its same-process predecessor
     is in the state; a stable p's event is never a receive, so it has
     no cross-process predecessor) and globally least among enabled
     events, hence the lexicographically least continuation.
   - canonicity is prefix-closed, so if the x0-extension is itself
     non-canonical, no canonical linearization of a blocked class
     passes through this state at all and pruning the siblings loses
     nothing.

   Together with [Independence.applicable] (every depth-limit leaf is
   genuinely blocked) this preserves every blocked computation's class,
   which is what knowledge queries over complete runs consume. States
   on the way to unvisited interleavings of the {e same} classes are
   dropped — that is the reduction. *)

let restrict ind ctx cands =
  match cands with
  | e :: _ :: _ -> (
      let p = Pid.to_int e.Event.pid in
      if p < Independence.n ind && Independence.stable ind p then
        match ctx.Enabled.by_pid.(p) with [ _ ] -> [ e ] | _ -> cands
      else cands)
  | _ -> cands
