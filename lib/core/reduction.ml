type t = { sym : Symmetry.group option; por : bool }

let none = { sym = None; por = false }
let por = { sym = None; por = true }
let sym g = { sym = Some g; por = false }
let full g = { sym = Some g; por = true }
let is_none r = Option.is_none r.sym && not r.por
let symmetry r = r.sym
let uses_por r = r.por

let label r =
  match (r.sym, r.por) with
  | None, false -> "none"
  | None, true -> "por"
  | Some _, false -> "sym"
  | Some _, true -> "full"

type mode = [ `None | `Sym | `Por | `Full ]

let mode_to_string = function
  | `None -> "none"
  | `Sym -> "sym"
  | `Por -> "por"
  | `Full -> "full"

let mode_of_string = function
  | "none" -> Ok `None
  | "sym" -> Ok `Sym
  | "por" -> Ok `Por
  | "full" -> Ok `Full
  | s -> Error (Printf.sprintf "unknown reduction %S (expected none|sym|por|full)" s)

let resolve mode ~symmetry:g =
  match (mode, g) with
  | `None, _ -> Ok none
  | `Por, _ -> Ok por
  | (`Sym | `Full), None ->
      Error
        "this protocol declares no symmetry generators (see `hpl list -v`); \
         only --reduce none|por apply"
  | `Sym, Some g -> Ok (sym g)
  | `Full, Some g -> Ok (full g)

(* --- ample filter ---------------------------------------------------

   The persistent-set analogue of [Universe.snoc_is_canonical]: an
   extension [(z; e)] is kept iff [e] is not preceded, at or after the
   position where it first became available, by any event greater than
   it. The baseline recomputes availability by scanning [z] per
   candidate; here the per-state context precomputes
   - the suffix maxima of [z]'s events,
   - the position of each process's last event (the same-process direct
     predecessor of any extension on it), and
   - the position of each send (the direct predecessor of its receive),
   making each candidate test O(1). The kept set is exactly the
   baseline's, so reduced-without-symmetry enumeration is bit-identical
   to the seed — only faster. *)

module Ample = struct
  type ctx = {
    len : int;
    suffix_max : Event.t array;
    last_pos : int array; (* per pid, -1 when the process has no event *)
    send_pos : (Pid.t * int, int) Hashtbl.t; (* Msg.key -> position *)
  }

  let make ~n z =
    let events = Array.of_list (Trace.to_list z) in
    let len = Array.length events in
    let suffix_max =
      if len = 0 then [||]
      else begin
        let sm = Array.make len events.(len - 1) in
        for i = len - 2 downto 0 do
          sm.(i) <-
            (if Event.compare events.(i) sm.(i + 1) > 0 then events.(i)
             else sm.(i + 1))
        done;
        sm
      end
    in
    let last_pos = Array.make n (-1) in
    let send_pos = Hashtbl.create (2 * len) in
    Array.iteri
      (fun i e ->
        last_pos.(Pid.to_int e.Event.pid) <- i;
        match e.Event.kind with
        | Event.Send m -> Hashtbl.replace send_pos (Msg.key m) i
        | Event.Receive _ | Event.Internal _ -> ())
      events;
    { len; suffix_max; last_pos; send_pos }

  let keep ctx e =
    let same_pid = ctx.last_pos.(Pid.to_int e.Event.pid) in
    let from_send =
      match e.Event.kind with
      | Event.Receive m -> (
          match Hashtbl.find_opt ctx.send_pos (Msg.key m) with
          | Some i -> i
          | None -> -1)
      | Event.Send _ | Event.Internal _ -> -1
    in
    let avail = 1 + max same_pid from_send in
    avail >= ctx.len || Event.compare ctx.suffix_max.(avail) e < 0
end

(* --- incremental enabled sets ---------------------------------------

   [Spec.enabled] recomputes every process's projection and the
   in-flight pool by scanning the whole trace at every state. But a
   one-event extension only changes the enabled set of the extending
   process (its history and, for a receive, the pool entry it consumes)
   and — when the event is a send — of the destination (receives are
   filtered by [dst], so no other pool consumer exists). Carrying the
   per-process histories, per-process enabled lists and the pool from
   parent to child makes a step cost at most two rule invocations
   instead of [n] full-trace scans.

   Event lists are kept per process, each sorted and deduplicated by
   [Spec.step_events]; [Event.compare] orders by pid first, so their
   concatenation in pid order is exactly [Spec.enabled]'s output. *)

module Enabled = struct
  type ctx = {
    hists_rev : Event.t list array; (* newest first, tails shared *)
    by_pid : Event.t list array;
    pool : Msg.t list;
  }

  let recompute spec ~hists_rev ~pool q =
    Spec.step_events spec (Pid.of_int q)
      ~history:(List.rev hists_rev.(q))
      ~pool

  let init spec =
    let n = Spec.n spec in
    let hists_rev = Array.make n [] in
    let pool = [] in
    {
      hists_rev;
      by_pid = Array.init n (fun q -> recompute spec ~hists_rev ~pool q);
      pool;
    }

  let events ctx = List.concat (Array.to_list ctx.by_pid)

  let step spec ctx e =
    let n = Array.length ctx.by_pid in
    let pi = Pid.to_int e.Event.pid in
    let hists_rev = Array.copy ctx.hists_rev in
    hists_rev.(pi) <- e :: hists_rev.(pi);
    let pool =
      match e.Event.kind with
      | Event.Send m -> m :: ctx.pool
      | Event.Receive m -> List.filter (fun m' -> not (Msg.equal m' m)) ctx.pool
      | Event.Internal _ -> ctx.pool
    in
    let by_pid = Array.copy ctx.by_pid in
    by_pid.(pi) <- recompute spec ~hists_rev ~pool pi;
    (match e.Event.kind with
    | Event.Send m ->
        let d = Pid.to_int m.Msg.dst in
        if d <> pi && d >= 0 && d < n then
          by_pid.(d) <- recompute spec ~hists_rev ~pool d
    | Event.Receive _ | Event.Internal _ -> ());
    { hists_rev; by_pid; pool }
end
