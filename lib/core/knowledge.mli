(** Knowledge predicates (§4.1).

    [(P knows b) at x ≡ ∀y. x \[P\] y ⇒ b at y]: [P] knows [b] when [b]
    holds at every computation [P] cannot distinguish from the actual
    one. Over a bounded universe the quantifier is effective: [knows]
    is a class-wise AND over the [\[P\]]-partition, computed in
    O(universe) per application and returned as an ordinary predicate,
    so nesting ([P knows Q knows b]) is function composition.

    The {!Laws} submodule makes the paper's twelve knowledge facts and
    Lemma 2 decidable; tests and bench E6 drive them over random
    universes and predicates. *)

val knows_ext : Universe.t -> Pset.t -> Bitset.t -> Bitset.t
(** Extensional core: indices whose whole [\[P\]]-class lies in the
    given extent. *)

val knows_ext_naive : Universe.t -> Pset.t -> Bitset.t -> Bitset.t
(** Reference implementation scanning all pairs with the trace-level
    [\[P\]] test — O(size² · |P| · len) against {!knows_ext}'s
    O(size). Same answers (property-tested); kept for the P1 ablation
    bench. *)

val knows_prop_ext : Universe.t -> Pset.t -> Prop.t -> Bitset.t
(** The extent of "[P] knows [b]" over the universe's stored
    computations. Equals [knows_ext u ps (Prop.extent u b)] on an
    unreduced universe; on a symmetry-reduced one (DESIGN.md §10) it
    quantifies over the orbit expansion — every permuted image of every
    representative — so the verdict at each representative is exact
    even for predicates that are not themselves symmetric. The other
    epistemic operators ({!Group}, {!Common_knowledge}) build on this
    entry point. *)

val knows : Universe.t -> Pset.t -> Prop.t -> Prop.t
(** [knows u p b] is the predicate "[P] knows [b]". Evaluating it at a
    computation outside [u] raises [Not_found]. *)

val knows_p : Universe.t -> Pid.t -> Prop.t -> Prop.t
(** Single-process convenience. *)

val nested : Universe.t -> Pset.t list -> Prop.t -> Prop.t
(** [nested u \[P1;…;Pn\] b] is "[P1] knows [P2] knows … [Pn] knows
    [b]"; with the empty list it is [b] itself. *)

val holds_at : Universe.t -> Prop.t -> Trace.t -> bool
(** [holds_at u b x] evaluates [b] at [x] ("b at x"). *)

val sure : Universe.t -> Pset.t -> Prop.t -> Prop.t
(** [(P sure b) at x ≡ (P knows b) at x ∨ (P knows ¬b) at x] (§4.2). *)

val unsure : Universe.t -> Pset.t -> Prop.t -> Prop.t
(** [¬ (P sure b)]. *)

(** {1 Robustness under faults}

    How much of a predicate's knowledge extent survives a fault model?
    The comparison enumerates the same spec twice — untransformed and
    through a fault transformer (e.g. {!Spec_algebra}-style functions
    from the [Hpl_faults] library) — and compares how prevalent
    [P knows b] is in each universe. *)

type verdict =
  | Robust  (** knowledge at least as prevalent under faults *)
  | Degraded  (** still attainable under faults, but strictly rarer *)
  | Destroyed  (** attainable fault-free, never attained under faults *)
  | Vacuous  (** never attained even fault-free — nothing to compare *)

type provenance =
  | Exact
      (** both universes enumerated to completion — the prevalences (and
          hence the verdict) are exact statements about depth-bounded
          computations *)
  | Bound
      (** at least one universe was {!Universe.Truncated} by its budget:
          the prevalences are over the explored prefix only, so the
          verdict is evidence, not proof — in particular a [Destroyed]
          only says no witness was found {e within the budget}. For
          systems beyond exact reach, [Hpl_mc.Mc.estimate_robust] gives
          a statistical verdict with a confidence interval instead. *)

type robustness = {
  verdict : verdict;
  provenance : provenance;
      (** whether the verdict is an exact depth-bounded statement or a
          budget-relative bound *)
  baseline_hits : int;  (** computations where [P knows b], fault-free *)
  baseline_size : int;
  faulty_hits : int;  (** same count in the transformed universe *)
  faulty_size : int;
  baseline_status : Universe.status;
  faulty_status : Universe.status;
      (** which side(s) were truncated, with the triggering budget —
          the detail behind [provenance] *)
}

val verdict_to_string : verdict -> string
val provenance_to_string : provenance -> string
val pp_robustness : Format.formatter -> robustness -> unit

val robust_under :
  ?mode:Universe.mode ->
  ?budget:Universe.budget ->
  ?faulty_depth:int ->
  ?view:(Trace.t -> Trace.t) ->
  Spec.t ->
  transform:(Spec.t -> Spec.t) ->
  depth:int ->
  Pset.t ->
  Prop.t ->
  robustness
(** [robust_under spec ~transform ~depth ps b] compares the prevalence
    of [ps knows b] across [enumerate spec ~depth] and
    [enumerate (transform spec) ~depth:faulty_depth] (default
    [faulty_depth = depth]; routed fault models need roughly double —
    see [Hpl_faults.Faults.Scenario.suggested_depth]). [view] (default
    identity) translates each faulty computation to its fault-free
    observation before evaluating [b], so predicates written against
    the original system apply unchanged ([Hpl_faults.Faults.view] for
    routed models). Prevalences are compared as exact rationals, so
    different universe sizes are handled correctly. *)

(** The paper's facts about knowledge, each decided over the whole
    universe for given [P], [Q], [b], [b']. Numbering follows §4.1. *)
module Laws : sig
  val fact1_class_invariant : Universe.t -> Pset.t -> Prop.t -> bool
  (** (1)+(2): the extent of [P knows b] is a union of [\[P\]]-classes. *)

  val fact3_monotone_union : Universe.t -> Pset.t -> Pset.t -> Prop.t -> bool
  (** (3) [(P knows b) ⇒ (P ∪ Q knows b)]. *)

  val fact4_veridical : Universe.t -> Pset.t -> Prop.t -> bool
  (** (4) [(P knows b) ⇒ b]. *)

  val fact5_total : Universe.t -> Pset.t -> Prop.t -> bool
  (** (5) [(P knows b) ∨ ¬(P knows b)] — totality. *)

  val fact6_conjunction : Universe.t -> Pset.t -> Prop.t -> Prop.t -> bool
  (** (6) [(P knows b) ∧ (P knows b') = P knows (b ∧ b')]. *)

  val fact7_disjunction : Universe.t -> Pset.t -> Prop.t -> Prop.t -> bool
  (** (7) [(P knows b) ∨ (P knows b') ⇒ P knows (b ∨ b')]. *)

  val fact8_consistency : Universe.t -> Pset.t -> Prop.t -> bool
  (** (8) [(P knows ¬b) ⇒ ¬(P knows b)]. *)

  val fact9_closure : Universe.t -> Pset.t -> Prop.t -> Prop.t -> bool
  (** (9) [(P knows b) ∧ (b ⇒ b') ⇒ (P knows b')], premise read as
      [b ⇒ b'] valid on the universe. *)

  val fact10_positive_introspection : Universe.t -> Pset.t -> Prop.t -> bool
  (** (10) [P knows P knows b = P knows b]. *)

  val fact11_negative_introspection : Universe.t -> Pset.t -> Prop.t -> bool
  (** (11, Lemma 2) [P knows ¬(P knows b) = ¬(P knows b)]. *)

  val fact12_constants : Universe.t -> Pset.t -> bool -> bool
  (** (12) [P knows c] for constant [c = true]; for [c = false] it
      fails everywhere (classes are nonempty). *)
end
