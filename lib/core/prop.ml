type t = { name : string; eval : Trace.t -> bool }

let make name eval = { name; eval }
let name b = b.name
let eval b x = b.eval x
let holds = eval
let tt = make "true" (fun _ -> true)
let ff = make "false" (fun _ -> false)
let const c = if c then tt else ff
let not_ b = make (Printf.sprintf "¬(%s)" b.name) (fun x -> not (b.eval x))

let and_ a b =
  make (Printf.sprintf "(%s ∧ %s)" a.name b.name) (fun x -> a.eval x && b.eval x)

let or_ a b =
  make (Printf.sprintf "(%s ∨ %s)" a.name b.name) (fun x -> a.eval x || b.eval x)

let implies a b =
  make
    (Printf.sprintf "(%s ⇒ %s)" a.name b.name)
    (fun x -> (not (a.eval x)) || b.eval x)

let iff a b =
  make
    (Printf.sprintf "(%s ⇔ %s)" a.name b.name)
    (fun x -> Bool.equal (a.eval x) (b.eval x))

let conj = function
  | [] -> tt
  | b :: rest -> List.fold_left and_ b rest

let disj = function
  | [] -> ff
  | b :: rest -> List.fold_left or_ b rest

let local_event_count p f name =
  make name (fun x -> f (Trace.local_length x p))

let extent ?(domains = 1) u b =
  if domains < 1 then invalid_arg "Prop.extent: domains < 1";
  Hpl_obs.span "prop.extent"
    ~args:(fun () ->
      [ ("prop", b.name); ("size", string_of_int (Universe.size u)) ])
  @@ fun () ->
  Hpl_obs.count "prop.extent.evals" (Universe.size u);
  let n = Universe.size u in
  if domains = 1 || n < 2 * domains then
    Bitset.of_pred n (fun i -> b.eval (Universe.comp u i))
  else begin
    (* [eval] is a pure predicate over distinct computations, so the
       indices partition freely across domains; workers write disjoint
       slots and the joins order those writes before the read below. *)
    let vals = Array.make n false in
    let fill lo hi =
      for i = lo to hi - 1 do
        vals.(i) <- b.eval (Universe.comp u i)
      done
    in
    let block w = (w * n / domains, (w + 1) * n / domains) in
    let workers =
      List.init (domains - 1) (fun w ->
          let lo, hi = block (w + 1) in
          Domain.spawn (fun () -> fill lo hi))
    in
    let lo, hi = block 0 in
    fill lo hi;
    List.iter Domain.join workers;
    Bitset.of_pred n (fun i -> vals.(i))
  end

let of_extent u name s =
  make name (fun x -> Bitset.mem s (Universe.find_exn u x))

let respects_interleaving u b =
  let n = Universe.size u in
  let ids = Universe.pset_class_ids u (Spec.all (Universe.spec u)) in
  let value : (int, bool) Hashtbl.t = Hashtbl.create n in
  let ok = ref true in
  Universe.iter
    (fun i x ->
      let v = b.eval x in
      match Hashtbl.find_opt value ids.(i) with
      | None -> Hashtbl.add value ids.(i) v
      | Some v' -> if v <> v' then ok := false)
    u;
  !ok

let is_constant u b =
  match Universe.size u with
  | 0 -> true
  | _ ->
      let v0 = b.eval (Universe.comp u 0) in
      let ok = ref true in
      Universe.iter (fun _ x -> if b.eval x <> v0 then ok := false) u;
      !ok

let pp fmt b = Format.pp_print_string fmt b.name
