(** The principle of computation extension and Theorem 3 (§3.4).

    A process performs an internal or send event based on its own
    computation alone, so the event can be replayed after any
    computation isomorphic w.r.t. that process; dually an internal or
    receive event can be undone. Theorem 3 casts the consequences as
    monotonicity of the set of computations isomorphic to the current
    one w.r.t. [\[P P̄\]]: receives shrink it, sends grow it, internal
    events preserve it.

    The [check_*] functions verify one instance of each statement;
    they return [true] when the implication holds (vacuously true if
    the premise fails). Tests and bench E5 drive them exhaustively. *)

val extend : Spec.t -> Trace.t -> Event.t -> Trace.t option
(** [extend s x e] is [(x; e)] if that is a computation of [s]. *)

val walk :
  ?filter:(Trace.t -> Event.t -> bool) ->
  ?init:Trace.t ->
  Spec.t ->
  choose:(int -> int) ->
  depth:int ->
  Trace.t
(** [walk s ~choose ~depth] is one random walk through the extension
    relation: starting from [init] (default the empty computation), at
    each step the enabled extensions are listed (optionally thinned by
    [filter], which sees the computation so far and a candidate event)
    and [choose m] picks an index in [\[0, m)]. The walk ends after
    [depth] steps or at the first deadlock (no candidates), whichever
    comes first — every prefix visited is a computation of [s]. The
    walk is deterministic given [choose], which is how the Monte Carlo
    layer gets replayable samples. Raises [Invalid_argument] on a
    negative depth or an out-of-range choice. *)

val check_principle_forward :
  Spec.t -> x:Trace.t -> y:Trace.t -> e:Event.t -> p:Pset.t -> bool
(** Part 1: [e] internal-or-send on [P], [x \[P\] y], [(x;e)] a
    computation ⇒ [(y;e)] a computation (and [(x;e) \[P\] (y;e)]). *)

val check_principle_backward :
  Spec.t -> x:Trace.t -> y:Trace.t -> e:Event.t -> p:Pset.t -> bool
(** Part 2: [e] internal-or-receive on [P], [(x;e) \[P\] y] ⇒ [(y − e)]
    a computation (and [x \[P\] (y − e)]). *)

val check_corollary_receive :
  Spec.t -> x:Trace.t -> y:Trace.t -> e:Event.t -> bool
(** Corollary: [e] a receive on [P] whose send is on [Q];
    [x \[P ∪ Q\] y] and [(x;e)] a computation ⇒ [(y;e)] a
    computation. *)

val iso_set : Universe.t -> Pset.t -> Trace.t -> Bitset.t
(** [iso_set u p x] is [{z | x \[P P̄\] z}] — the "set of possible
    computations" of Theorem 3's reading. *)

val check_theorem3 : Universe.t -> p:Pset.t -> x:Trace.t -> e:Event.t -> bool
(** Verifies the case of Theorem 3 matching [e]'s kind at [(x; e)]:
    receive ⇒ [iso_set (x;e) ⊆ iso_set x]; send ⇒ [⊇]; internal ⇒ [=].
    [e] must be on [p] and [(x;e)] must lie within the universe. *)
