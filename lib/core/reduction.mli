(** The reduction layer: what {!Universe.enumerate} may collapse.

    Two cooperating reductions (DESIGN.md §10):

    - {e symmetry}: given a group of spec automorphisms (declared by the
      protocol, see {!Symmetry}), store one representative per orbit of
      [\[D\]]-classes. Exactness of knowledge queries on the reduced
      universe is recovered by quantifying over the orbit expansion
      ({!Knowledge.knows} does this automatically).
    - {e partial order} ([por]): the persistent-set style filter plus
      incremental enabled-set maintenance. This produces a universe
      {e bit-identical} to the unreduced canonical enumeration — same
      computations, same order, same class ids — only faster, so it is
      always safe.

    [full] combines both. Reductions require [`Canonical] mode. *)

type t

val none : t
val por : t
val sym : Symmetry.group -> t
val full : Symmetry.group -> t

val is_none : t -> bool
val symmetry : t -> Symmetry.group option
val uses_por : t -> bool
val label : t -> string
(** ["none"], ["por"], ["sym"] or ["full"]. *)

(** {2 CLI-facing mode} *)

type mode = [ `None | `Sym | `Por | `Full ]

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

val resolve : mode -> symmetry:Symmetry.group option -> (t, string) result
(** Combine a requested mode with a protocol's declared symmetry group.
    [`Sym]/[`Full] without a group is an error (the message names the
    remedy). *)

(** {2 Enumeration internals}

    Used by {!Universe.enumerate}; exposed for the property tests that
    cross-validate them against the baseline definitions. *)

module Ample : sig
  type ctx

  val make : n:int -> Trace.t -> ctx
  (** Per-state precomputation: suffix maxima, last event position per
      process, send positions. O(length + n). *)

  val keep : ctx -> Event.t -> bool
  (** Exactly [Universe]'s snoc-canonicity of the extension, in O(1)
      per candidate. *)
end

module Enabled : sig
  type ctx

  val init : Spec.t -> ctx
  (** Context of the empty computation. *)

  val events : ctx -> Event.t list
  (** Exactly [Spec.enabled] of the context's computation. *)

  val step : Spec.t -> ctx -> Event.t -> ctx
  (** Context of the one-event extension; recomputes only the extending
      process's enabled set (and the destination's, for a send). *)
end
