(** The reduction layer: what {!Universe.enumerate} may collapse.

    Two cooperating reductions (DESIGN.md §10):

    - {e symmetry}: given a group of spec automorphisms (declared by the
      protocol, see {!Symmetry}), store one representative per orbit of
      [\[D\]]-classes. Exactness of knowledge queries on the reduced
      universe is recovered by quantifying over the orbit expansion
      ({!Knowledge.knows} does this automatically).
    - {e partial order} ([por]): the persistent-set style filter plus
      incremental enabled-set maintenance. Plain {!por} produces a
      universe {e bit-identical} to the unreduced canonical enumeration
      — same computations, same order, same class ids — only faster, so
      it is always safe.

    [full] combines both. Reductions require [`Canonical] mode.

    A [por] reduction may additionally carry a static
    {!Independence.t} (attach with {!with_independence}; computed by
    the abstract interpreter, [Hpl_analysis.Dataflow]). When the
    no-truncation certificate holds ({!Independence.applicable}),
    enumeration restricts some states to a singleton ample set
    ({!restrict}), actually pruning. The contract weakens from
    bit-identity to {e blocked-preservation}: every blocked (quiescent)
    computation class of the unreduced universe survives, with its
    canonical representative; only states on the way to other
    interleavings of the same classes are dropped. On specs where the
    restriction never fires (no stable process ever holds the least
    enabled event alone) the result is still bit-identical. *)

type t

val none : t
val por : t
val sym : Symmetry.group -> t
val full : Symmetry.group -> t

val is_none : t -> bool
val symmetry : t -> Symmetry.group option
val uses_por : t -> bool
val label : t -> string
(** ["none"], ["por"], ["sym"] or ["full"]. *)

(** {2 Static independence}

    Facts a static analyzer proves about a spec, consumed by the
    ample-set restriction. [stable.(p)] means process [p] performs no
    receive in any reachable history (so its enabled set depends only
    on its own events); [bound.(p)] is a finite upper bound on the
    number of events [p] performs in any computation. *)

module Independence : sig
  type t

  val make : stable:bool array -> bound:int array -> t
  (** Arrays indexed by pid; raises [Invalid_argument] on a length
      mismatch. *)

  val applicable : t -> depth:int -> bool
  (** The no-truncation certificate: [Σ bound <= depth], so every
      depth-limited leaf is genuinely blocked. Restriction must not be
      used when this is false. *)

  val stable : t -> int -> bool
  val bound : t -> int -> int
  val total : t -> int
  val n : t -> int
end

val with_independence : t -> Independence.t -> t
(** Attach an independence relation (meaningful with {!por}/[full];
    enumeration additionally checks {!Independence.applicable} at its
    depth before restricting). *)

val independence : t -> Independence.t option

(** {2 CLI-facing mode} *)

type mode = [ `None | `Sym | `Por | `Full ]

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

val resolve : mode -> symmetry:Symmetry.group option -> (t, string) result
(** Combine a requested mode with a protocol's declared symmetry group.
    [`Sym]/[`Full] without a group is an error (the message names the
    remedy). *)

(** {2 Enumeration internals}

    Used by {!Universe.enumerate}; exposed for the property tests that
    cross-validate them against the baseline definitions. *)

module Ample : sig
  type ctx

  val make : n:int -> Trace.t -> ctx
  (** Per-state precomputation: suffix maxima, last event position per
      process, send positions. O(length + n). *)

  val keep : ctx -> Event.t -> bool
  (** Exactly [Universe]'s snoc-canonicity of the extension, in O(1)
      per candidate. *)
end

module Enabled : sig
  type ctx

  val init : Spec.t -> ctx
  (** Context of the empty computation. *)

  val events : ctx -> Event.t list
  (** Exactly [Spec.enabled] of the context's computation. *)

  val step : Spec.t -> ctx -> Event.t -> ctx
  (** Context of the one-event extension; recomputes only the extending
      process's enabled set (and the destination's, for a send). *)
end

val restrict : Independence.t -> Enabled.ctx -> Event.t list -> Event.t list
(** [restrict ind ctx cands] — the singleton ample set. [cands] must be
    the full enabled list of [ctx]'s state (head = globally least
    event). If the least event's process is stable and it is that
    process's only enabled event, returns just that event; otherwise
    [cands] unchanged. Sound for blocked-computation preservation only
    under {!Independence.applicable} — the caller gates on it. *)
