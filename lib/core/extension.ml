let extend s x e =
  if List.exists (Event.equal e) (Spec.enabled_on s x e.Event.pid) then
    Some (Trace.snoc x e)
  else None

let walk ?filter ?(init = Trace.empty) s ~choose ~depth =
  if depth < 0 then invalid_arg "Extension.walk: negative depth";
  let candidates z =
    let es = Spec.enabled s z in
    match filter with None -> es | Some keep -> List.filter (keep z) es
  in
  let rec go z k =
    if k = 0 then z
    else
      match candidates z with
      | [] -> z
      | cands ->
          let m = List.length cands in
          let i = choose m in
          if i < 0 || i >= m then
            invalid_arg "Extension.walk: choose returned an out-of-range index";
          go (Trace.snoc z (List.nth cands i)) (k - 1)
  in
  go init depth

let is_computation s z = Spec.valid s z

let check_principle_forward s ~x ~y ~e ~p =
  let premise =
    (Event.is_internal e || Event.is_send e)
    && Event.on e p && Isomorphism.iso x y p
    && is_computation s (Trace.snoc x e)
    && is_computation s x && is_computation s y
  in
  if not premise then true
  else
    let ye = Trace.snoc y e in
    is_computation s ye && Isomorphism.iso (Trace.snoc x e) ye p

let check_principle_backward s ~x ~y ~e ~p =
  let xe = Trace.snoc x e in
  let premise =
    (Event.is_internal e || Event.is_receive e)
    && Event.on e p && is_computation s xe && is_computation s y
    && Isomorphism.iso xe y p && Trace.mem y e
  in
  if not premise then true
  else
    let y' = Trace.remove y e in
    is_computation s y' && Isomorphism.iso x y' p

let check_corollary_receive s ~x ~y ~e =
  match e.Event.kind with
  | Event.Send _ | Event.Internal _ -> true
  | Event.Receive m ->
      let pq = Pset.of_list [ m.Msg.dst; m.Msg.src ] in
      let premise =
        Isomorphism.iso x y pq
        && is_computation s (Trace.snoc x e)
        && is_computation s x && is_computation s y
      in
      if not premise then true else is_computation s (Trace.snoc y e)

let iso_set u p x =
  let all = Spec.all (Universe.spec u) in
  Relations.reachable u [ p; Pset.compl ~all p ] (Universe.find_exn u x)

let check_theorem3 u ~p ~x ~e =
  if not (Event.on e p) then invalid_arg "Extension.check_theorem3: e not on P";
  let before = iso_set u p x in
  let after = iso_set u p (Trace.snoc x e) in
  match e.Event.kind with
  | Event.Receive _ -> Bitset.subset after before
  | Event.Send _ -> Bitset.subset before after
  | Event.Internal _ -> Bitset.equal before after
