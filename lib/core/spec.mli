(** System specifications.

    The paper characterizes a process by a prefix-closed set of process
    computations (§2). We specify that set {e generatively}: a process
    is a {!rule} mapping its local history (the events on it so far) to
    the set of steps it is willing to take next. This enforces the
    model's locality by construction — what a process can do depends
    only on its own computation — which is exactly the hypothesis behind
    the principle of computation extension (§3.4) and all knowledge
    results.

    A receive is enabled when the process is willing {e and} the message
    is in flight (sent, not yet received): condition (2) of the
    definition of system computations. *)

type intent =
  | Send_to of Pid.t * string
      (** willing to send a message with this payload to that process *)
  | Recv_any  (** willing to receive any in-flight message addressed here *)
  | Recv_from of Pid.t  (** …only from the given sender *)
  | Recv_if of string * (Msg.t -> bool)
      (** …only messages satisfying the predicate (named for display) *)
  | Do of string  (** willing to perform an internal event with this tag *)

type rule = Event.t list -> intent list
(** A process's behaviour: local history ↦ enabled intents. The history
    is the process's computation so far, in order. Must be
    deterministic (a function); nondeterminism is expressed by returning
    several intents. *)

type t

val make : n:int -> (Pid.t -> rule) -> t
(** [make ~n rule] is a system of processes [p0 … p(n-1)], each behaving
    as [rule pi]. Raises [Invalid_argument] if [n < 1]. *)

val n : t -> int
val all : t -> Pset.t
(** The process set [D]. *)

val pids : t -> Pid.t list

val rule_of : t -> Pid.t -> rule

val intent_events :
  Pid.t -> history:Event.t list -> pool:Msg.t list -> intent -> Event.t list
(** [intent_events p ~history ~pool intent] is the alphabet of one
    intent: the events process [p] would perform next for it, given its
    local history and a pool of candidate deliverable messages. Sequence
    numbers and local positions are derived from [history], exactly as
    enumeration does. *)

val step_events :
  t -> Pid.t -> history:Event.t list -> pool:Msg.t list -> Event.t list
(** [step_events s p ~history ~pool] is the sorted, deduplicated set of
    events [p] is willing to perform next. {!enabled_on} is this applied
    to the projection and the actual in-flight messages of a trace; the
    static analyzer ([lib/analysis]) passes an over-approximate pool
    instead, which is what makes channel-graph extraction sound without
    enumerating interleavings. *)

val enabled : t -> Trace.t -> Event.t list
(** [enabled s z] is the set of events [e] such that [(z; e)] is a
    system computation of [s], sorted by {!Event.compare} and
    deduplicated. *)

val enabled_on : t -> Trace.t -> Pid.t -> Event.t list
(** Enabled events on one process. *)

val extensions : t -> Trace.t -> Trace.t list
(** All one-event extensions [(z; e)] of [z]. *)

val valid : t -> Trace.t -> bool
(** [valid s z]: [z] is a system computation of [s] — well-formed and
    buildable step by step from the empty computation via {!enabled}. *)

val validity_error : t -> Trace.t -> string option
(** [None] when valid, otherwise the first offending step. *)
