(** Predicates on system computations (§4.1).

    A predicate assigns a truth value to every computation. The paper
    requires predicates to be interleaving-invariant:
    [x \[D\] y ⇒ (b at x = b at y)] — values depend on the component
    processes' computations, not the linear order of independent events.
    {!respects_interleaving} checks this on a universe, and every
    combinator preserves it.

    Predicates carry a name so that knowledge formulas print readably
    (e.g. ["p0 knows ¬(p1 knows token)"]). *)

type t

val make : string -> (Trace.t -> bool) -> t
val name : t -> string
val eval : t -> Trace.t -> bool
(** [eval b x] is the paper's "b at x". *)

val holds : t -> Trace.t -> bool
(** Alias of {!eval}. *)

val tt : t
(** The constant [true] predicate. *)

val ff : t
(** The constant [false] predicate. *)

val const : bool -> t

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val implies : t -> t -> t
val iff : t -> t -> t
val conj : t list -> t
val disj : t list -> t

val local_event_count : Pid.t -> (int -> bool) -> string -> t
(** [local_event_count p f name] holds at [x] iff [f (|x|_p)] — a
    typical local predicate: depends only on [p]'s computation. *)

val extent : ?domains:int -> Universe.t -> t -> Bitset.t
(** [extent u b] is the set of universe indices where [b] holds —
    the extensional form used by the knowledge engine. [domains]
    (default 1) evaluates the predicate across that many stdlib
    domains; the result is identical for any value. The predicate must
    be safe to call from multiple domains (pure predicates are). *)

val of_extent : Universe.t -> string -> Bitset.t -> t
(** [of_extent u name s] is the predicate holding exactly on [s].
    Evaluating it at a computation outside [u] raises [Not_found];
    evaluating at any interleaving of a stored class works ([find]).
    This is how [knows] results stay first-class predicates. *)

val respects_interleaving : Universe.t -> t -> bool
(** Checks [x \[D\] y ⇒ b at x = b at y] over all pairs in [u]
    (meaningful on [`Full] universes; trivially true on canonical
    ones). *)

val is_constant : Universe.t -> t -> bool
(** The paper's "b is a constant": same value at every computation. *)

val pp : Format.formatter -> t -> unit
