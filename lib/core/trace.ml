(* A trace stores its events in reverse so that [snoc] is O(1); every
   ordered observation reverses on demand.

   [h] is a structural hash of the event sequence, maintained
   incrementally by [snoc]: it is a pure function of the ordered event
   hashes, so [equal a b] implies [a.h = b.h] and hashtable probes
   ([Universe.TraceTbl]) need no O(length) rebuild. *)
type t = { rev : Event.t list; len : int; h : int }

(* FNV-1a-style step: order-sensitive, cheap, and stable across runs. *)
let mix h eh = ((h * 0x01000193) lxor eh) land max_int
let empty = { rev = []; len = 0; h = 0x811c9dc5 }
let snoc z e = { rev = e :: z.rev; len = z.len + 1; h = mix z.h (Event.hash e) }
let of_list es = List.fold_left snoc empty es
let to_list z = List.rev z.rev
let length z = z.len
let is_empty z = z.len = 0
let last z = match z.rev with [] -> None | e :: _ -> Some e

let nth z i =
  if i < 0 || i >= z.len then invalid_arg "Trace.nth: out of bounds";
  List.nth z.rev (z.len - 1 - i)

(* The cached hash is a fast-path reject: unequal hashes cannot be equal
   traces, equal hashes fall through to the structural check. *)
let equal a b =
  a.len = b.len && a.h = b.h && List.equal Event.equal a.rev b.rev

let compare a b =
  let c = Int.compare a.len b.len in
  if c <> 0 then c else List.compare Event.compare a.rev b.rev

let hash z = z.h

let proj z p =
  List.fold_left
    (fun acc e -> if Pid.equal e.Event.pid p then e :: acc else acc)
    [] z.rev

let proj_set z ps =
  List.fold_left (fun acc e -> if Event.on e ps then e :: acc else acc) [] z.rev

let local_length z p =
  List.fold_left
    (fun n e -> if Pid.equal e.Event.pid p then n + 1 else n)
    0 z.rev

let send_count z p =
  List.fold_left
    (fun n e -> if Pid.equal e.Event.pid p && Event.is_send e then n + 1 else n)
    0 z.rev

let events_on = proj_set
let mem z e = List.exists (Event.equal e) z.rev

let is_prefix x z =
  x.len <= z.len
  &&
  (* x.rev must equal z.rev with the first (z.len - x.len) elements dropped *)
  let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  List.equal Event.equal x.rev (drop (z.len - x.len) z.rev)

let suffix ~prefix z =
  if not (is_prefix prefix z) then invalid_arg "Trace.suffix: not a prefix";
  let rec take n l acc =
    if n = 0 then acc
    else match l with [] -> acc | e :: t -> take (n - 1) t (e :: acc)
  in
  take (z.len - prefix.len) z.rev []

let append z es = List.fold_left snoc z es

(* [z.rev] lists events backwards, so a prepending fold over it yields
   messages in forward (execution) order. *)
let sent z =
  List.fold_left
    (fun acc e ->
      match e.Event.kind with
      | Event.Send m -> m :: acc
      | Event.Receive _ | Event.Internal _ -> acc)
    [] z.rev

let received z =
  List.fold_left
    (fun acc e ->
      match e.Event.kind with
      | Event.Receive m -> m :: acc
      | Event.Send _ | Event.Internal _ -> acc)
    [] z.rev

let in_flight z =
  (* O(S+R): index received message keys instead of scanning the receive
     list once per send. Keys [(src,seq)] identify messages in any
     well-formed trace (each key is sent at most once). *)
  let recvd : (Pid.t * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.Event.kind with
      | Event.Receive m -> Hashtbl.replace recvd (Msg.key m) ()
      | Event.Send _ | Event.Internal _ -> ())
    z.rev;
  List.filter (fun m -> not (Hashtbl.mem recvd (Msg.key m))) (sent z)

let well_formed_error z =
  let events = to_list z in
  let exception Bad of string in
  let local_next : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let sent_keys : (Pid.t * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let send_counts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let recv_keys : (Pid.t * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  try
    List.iter
      (fun e ->
        let p = Pid.to_int e.Event.pid in
        let expect = get local_next p in
        if e.Event.lseq <> expect then
          raise
            (Bad
               (Printf.sprintf "event %s: lseq %d, expected %d"
                  (Event.to_string e) e.Event.lseq expect));
        Hashtbl.replace local_next p (expect + 1);
        (match e.Event.kind with
        | Event.Send m ->
            if not (Pid.equal m.Msg.src e.Event.pid) then
              raise (Bad (Printf.sprintf "send %s: src mismatch" (Event.to_string e)));
            if Hashtbl.mem sent_keys (Msg.key m) then
              raise (Bad (Printf.sprintf "message %s sent twice" (Msg.to_string m)));
            if m.Msg.seq <> get send_counts p then
              raise
                (Bad
                   (Printf.sprintf "message %s: seq %d, expected %d"
                      (Msg.to_string m) m.Msg.seq (get send_counts p)));
            Hashtbl.replace sent_keys (Msg.key m) ();
            Hashtbl.replace send_counts p (get send_counts p + 1)
        | Event.Receive m ->
            if not (Pid.equal m.Msg.dst e.Event.pid) then
              raise (Bad (Printf.sprintf "receive %s: dst mismatch" (Event.to_string e)));
            if not (Hashtbl.mem sent_keys (Msg.key m)) then
              raise
                (Bad (Printf.sprintf "message %s received before sent" (Msg.to_string m)));
            if Hashtbl.mem recv_keys (Msg.key m) then
              raise (Bad (Printf.sprintf "message %s received twice" (Msg.to_string m)));
            Hashtbl.replace recv_keys (Msg.key m) ()
        | Event.Internal _ -> ()))
      events;
    None
  with Bad reason -> Some reason

let well_formed z = Option.is_none (well_formed_error z)

let permutation_of x y =
  x.len = y.len
  &&
  let pids z =
    List.sort_uniq Pid.compare (List.map (fun e -> e.Event.pid) z.rev)
  in
  let ps = List.sort_uniq Pid.compare (pids x @ pids y) in
  List.for_all (fun p -> List.equal Event.equal (proj x p) (proj y p)) ps

let remove z e =
  if not (mem z e) then invalid_arg "Trace.remove: event not in trace";
  of_list (List.filter (fun e' -> not (Event.equal e e')) (to_list z))

let pp fmt z =
  Format.fprintf fmt "[@[<hov>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
       Event.pp)
    (to_list z)

let to_string z = Format.asprintf "%a" pp z
