(** An epistemic-temporal formula language.

    Concrete syntax for the paper's knowledge operators combined with
    branching time, so claims like the §4.1 token-bus assertion can be
    written down, parsed, and checked:

    {v AG (holds2 -> K p2 (K p1 (~holds0) & K p3 (~holds4))) v}

    Grammar (precedence low→high: [->], [|], [&], prefix):

    {v
    φ ::= 'true' | 'false' | atom
        | '~' φ | φ '&' φ | φ '|' φ | φ '->' φ
        | 'K' pset φ        knowledge        (paper §4.1)
        | 'sure' pset φ     sure             (paper §4.2)
        | 'E' pset φ        everyone knows
        | 'S' pset φ        someone knows
        | 'CK' φ            common knowledge (greatest fixpoint)
        | 'AG' φ | 'EF' φ | 'AF' φ | 'EG' φ | 'AX' φ | 'EX' φ
        | '(' φ ')'
    pset ::= pid | '{' pid (',' pid)* '}'        pid ::= 'p'? digits
    atom ::= identifier, resolved in the caller's environment
    v}

    Parsing is total ([Error] with position); evaluation needs a
    universe and an atom environment. The printer round-trips
    ([parse ∘ print = id] up to parentheses — property-tested). *)

type pset_syntax = int list

type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Know of pset_syntax * t
  | Sure of pset_syntax * t
  | Everyone of pset_syntax * t
  | Someone of pset_syntax * t
  | Common of t
  | Ag of t
  | Ef of t
  | Af of t
  | Eg of t
  | Ax of t
  | Ex of t

val parse : string -> (t, string) result
val print : t -> string
val pp : Format.formatter -> t -> unit

val atoms : t -> string list
(** Distinct atom names, in order of first occurrence. *)

(** {1 Knowledge-nest shape matching}

    The transfer theorems (§4.3, Theorems 4–6) are about formulas of the
    shape [P1 knows P2 knows … Pn knows b]. The static analyzer
    ([lib/analysis]) needs those nests syntactically, without
    evaluating anything. *)

type nest_level = { op : [ `Know | `Everyone | `Someone ]; pset : pset_syntax }

type nest = {
  levels : nest_level list;  (** outermost first: [K P1 (K P2 …)] *)
  body : t;  (** innermost non-knowledge subformula *)
  subformula : t;  (** the whole nest, as it appears in the formula *)
}

val nests : t -> nest list
(** All maximal directly-nested [K]/[E]/[S] chains of the formula, in
    syntactic order. [sure] and [CK] terminate a nest (they are not
    covered by the veridical gain-chain theorems); their operands are
    scanned for further nests. A formula with no knowledge operator has
    no nests. *)

val contains_common : t -> bool
(** Whether any [CK] operator occurs — common knowledge is a constant
    predicate (§4.2), which the linter reports statically. *)

val eval_at : env:(string -> Prop.t option) -> t -> Trace.t -> bool option
(** Pointwise evaluation of the knowledge- and temporal-free fragment at
    one computation — no universe needed. [None] when the formula
    contains a knowledge/temporal operator or an unbound atom. *)

val eval :
  Universe.t -> env:(string -> Prop.t option) -> t -> (Prop.t, string) result
(** Compile to a predicate over the universe. [Error] names any unbound
    atom or a process id outside the system. Temporal operators use
    {!Temporal}'s finite-tree semantics. *)

val check :
  Universe.t ->
  env:(string -> Prop.t option) ->
  t ->
  ([ `Valid | `Fails_at of Trace.t ], string) result
(** Evaluate and test at every computation: [`Valid] or a witness
    computation where the formula fails. *)
