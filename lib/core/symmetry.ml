(* Process-permutation symmetry: permutations, finite groups generated
   by declared generators, their action on messages / events / traces,
   and orbit keys for symmetry-reduced enumeration. *)

type perm = int array

let check ~n a =
  if Array.length a <> n then
    invalid_arg "Symmetry: permutation length does not match system size";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Symmetry: not a permutation";
      seen.(i) <- true)
    a

let identity n = Array.init n Fun.id
let is_identity a = Array.for_all2 (fun i j -> i = j) a (identity (Array.length a))

let rotation n =
  if n < 1 then invalid_arg "Symmetry.rotation: empty system";
  Array.init n (fun i -> (i + 1) mod n)

let transposition n a b =
  if a < 0 || b < 0 || a >= n || b >= n then
    invalid_arg "Symmetry.transposition: pid out of range";
  Array.init n (fun i -> if i = a then b else if i = b then a else i)

let cycle n members =
  (match members with
  | [] | [ _ ] -> invalid_arg "Symmetry.cycle: need at least two members"
  | _ -> ());
  let a = identity n in
  let rec go = function
    | x :: (y :: _ as rest) ->
        if x < 0 || x >= n then invalid_arg "Symmetry.cycle: pid out of range";
        a.(x) <- y;
        go rest
    | [ last ] ->
        if last < 0 || last >= n then
          invalid_arg "Symmetry.cycle: pid out of range";
        a.(last) <- List.hd members
    | [] -> ()
  in
  go members;
  check ~n a;
  a

(* compose a b = a ∘ b : first apply b, then a *)
let compose a b = Array.init (Array.length a) (fun i -> a.(b.(i)))

let inverse a =
  let inv = Array.make (Array.length a) 0 in
  Array.iteri (fun i j -> inv.(j) <- i) a;
  inv

let perm_equal (a : perm) (b : perm) = Stdlib.( = ) a b

let to_string a =
  (* disjoint cycle notation, fixpoints omitted *)
  let n = Array.length a in
  let seen = Array.make n false in
  let buf = Buffer.create 16 in
  for i = 0 to n - 1 do
    if (not seen.(i)) && a.(i) <> i then begin
      Buffer.add_char buf '(';
      let rec go j first =
        if not first then Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int j);
        seen.(j) <- true;
        if not seen.(a.(j)) then go a.(j) false
      in
      go i true;
      Buffer.add_char buf ')'
    end
  done;
  if Buffer.length buf = 0 then "id" else Buffer.contents buf

(* --- groups --------------------------------------------------------- *)

module PermTbl = Hashtbl.Make (struct
  type t = perm

  let equal = Stdlib.( = )
  let hash (a : perm) = Hashtbl.hash (Array.to_list a)
end)

type group = { n : int; perms : perm array; complete : bool }

let closure ~max_order n gens =
  let tbl = PermTbl.create 64 in
  let order = ref [] in
  let add p =
    if not (PermTbl.mem tbl p) then begin
      PermTbl.add tbl p ();
      order := p :: !order;
      true
    end
    else false
  in
  ignore (add (identity n));
  let queue = Queue.create () in
  Queue.add (identity n) queue;
  let exception Too_big in
  try
    while not (Queue.is_empty queue) do
      let p = Queue.pop queue in
      List.iter
        (fun g ->
          let q = compose g p in
          if add q then begin
            if PermTbl.length tbl > max_order then raise Too_big;
            Queue.add q queue
          end)
        gens
    done;
    Some (List.rev !order)
  with Too_big -> None

let of_generators ?(max_order = 10_080) ~n gens =
  List.iter (check ~n) gens;
  let gens = List.filter (fun g -> not (is_identity g)) gens in
  (* on overflow drop trailing generators: any subgroup is a sound
     (just weaker) reduction, and the kept prefix stays deterministic *)
  let rec fit kept =
    match closure ~max_order n kept with
    | Some perms -> (perms, List.length kept = List.length gens)
    | None -> (
        match List.rev kept with
        | [] -> ([ identity n ], false)
        | _ :: rev_rest -> fit (List.rev rev_rest))
  in
  let perms, complete = fit gens in
  { n; perms = Array.of_list perms; complete }

let trivial_group n = { n; perms = [| identity n |]; complete = true }
let order g = Array.length g.perms
let is_trivial g = order g = 1
let elements g = Array.to_list g.perms
let degree g = g.n
let complete g = g.complete

let index_of g p =
  (* groups are small; linear scan keeps the representation simple *)
  let rec go i = if i >= order g then None else if g.perms.(i) = p then Some i else go (i + 1) in
  go 0

(* --- action on the model ------------------------------------------- *)

let apply a p = Pid.of_int a.(Pid.to_int p)

let permute_msg a m =
  Msg.make ~src:(apply a m.Msg.src) ~dst:(apply a m.Msg.dst) ~seq:m.Msg.seq
    ~payload:m.Msg.payload

let permute_event a e =
  let pid = apply a e.Event.pid and lseq = e.Event.lseq in
  match e.Event.kind with
  | Event.Send m -> Event.send ~pid ~lseq (permute_msg a m)
  | Event.Receive m -> Event.receive ~pid ~lseq (permute_msg a m)
  | Event.Internal t -> Event.internal ~pid ~lseq t

let permute_trace a z =
  Trace.of_list (List.map (permute_event a) (Trace.to_list z))

(* --- orbit keys ----------------------------------------------------- *)

(* the per-process projection vector characterizes the [D]-class: two
   computations are interleaving-equivalent iff all projections agree.
   Components are newest-first: extending a computation by one event is
   then a cons onto one component, which is what lets the enumeration
   maintain all |G| renamed vectors incrementally. *)
let proj_vector n z =
  let projs = Array.make n [] in
  List.iter
    (fun e ->
      let i = Pid.to_int e.Event.pid in
      projs.(i) <- e :: projs.(i))
    (Trace.to_list z);
  projs

type key = Event.t list array

(* components of a child key share tails with the parent's (extension is
   a cons), so a physical-equality cut ends most comparisons early *)
let rec compare_elist a b =
  if a == b then 0
  else
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
        let c = Event.compare x y in
        if c <> 0 then c else compare_elist xs ys
let equal_key (a : key) b = Array.length a = Array.length b && Array.for_all2 (fun x y -> compare_elist x y = 0) a b

let compare_key (a : key) b =
  let la = Array.length a and lb = Array.length b in
  let rec go j =
    if j >= la then 0
    else
      let c = compare_elist a.(j) b.(j) in
      if c <> 0 then c else go (j + 1)
  in
  if la <> lb then Int.compare la lb else go 0

let hash_elist es =
  List.fold_left (fun acc e -> (acc * 31) + Event.hash e) 17 es

let hash_key (k : key) =
  Array.fold_left (fun acc es -> (acc * 131) + hash_elist es) 3 k

module KeyTbl = Hashtbl.Make (struct
  type t = key

  let equal = equal_key
  let hash = hash_key
end)

(* proj_{j}(π·z) = rename_π(proj_{π⁻¹(j)}(z)): the minimum over the
   group of the renamed projection vectors identifies the orbit of the
   [D]-class. Computed lazily component-by-component so losing
   candidates exit at their first greater component. *)
let orbit_key_witness g z =
  let n = g.n in
  let projs = proj_vector n z in
  let candidate_component pi inv j = List.map (permute_event pi) projs.(inv.(j)) in
  let best = ref projs and best_perm = ref g.perms.(0) in
  for k = 1 to order g - 1 do
    let pi = g.perms.(k) in
    let inv = inverse pi in
    let rec cmp j =
      if j >= n then ()
      else begin
        let cj = candidate_component pi inv j in
        let c = compare_elist cj !best.(j) in
        if c < 0 then begin
          (* strictly better: materialize the remaining components *)
          let full =
            Array.init n (fun i ->
                if i < j then !best.(i)
                else if i = j then cj
                else candidate_component pi inv i)
          in
          best := full;
          best_perm := pi
        end
        else if c = 0 then cmp (j + 1)
      end
    in
    cmp 0
  done;
  (!best, !best_perm)

let orbit_key g z = fst (orbit_key_witness g z)

(* --- bounded automorphism probe ------------------------------------- *)

(* [π] is a spec automorphism iff the computation set is closed under
   its action; equivalently (by induction on length) [enabled] is
   equivariant at every computation. We check that to a bounded depth
   over all interleavings, capped by [max_states]. *)
let is_automorphism ?(depth = 4) ?(max_states = 20_000) spec pi =
  Array.length pi = Spec.n spec
  && begin
       let budget = ref max_states in
       let ok = ref true in
       let rec go z d =
         if !ok && !budget > 0 then begin
           decr budget;
           let en = Spec.enabled spec z in
           let lhs = Spec.enabled spec (permute_trace pi z) in
           let rhs = List.sort Event.compare (List.map (permute_event pi) en) in
           if not (List.equal Event.equal lhs rhs) then ok := false
           else if d < depth then
             List.iter (fun e -> go (Trace.snoc z e) (d + 1)) en
         end
       in
       go Trace.empty 0;
       !ok
     end
