(** Common knowledge (§4.2).

    [b is common knowledge] is the greatest fixpoint of
    [ck = b ∧ ⋀p (p knows ck)]: [b] holds, everyone knows it, everyone
    knows everyone knows it, and so on. The paper's corollary to
    Lemma 3: in a system with more than one process, common knowledge
    is {e constant} — it can be neither gained nor lost. Bench E7
    exhibits this on concrete systems. *)

val common_ext : Universe.t -> Bitset.t -> Bitset.t
(** Greatest fixpoint, computed by iterating the (monotone, shrinking)
    operator to stability. *)

val common : Universe.t -> Prop.t -> Prop.t
(** ["b is common knowledge"] as a predicate. *)

val level : Universe.t -> int -> Prop.t -> Prop.t
(** [level u k b] is the depth-[k] approximation: [b] for [k = 0],
    [b ∧ ⋀p (p knows (level (k-1)))] otherwise. [common] is its limit. *)

val attainable : ?level:int -> Universe.t -> Prop.t -> bool
(** [attainable u b]: does ["b is CK"] hold at {e some} computation of
    [u]? With [~level:k] it asks about the [E^k] approximation instead
    (everyone knows … [k] deep). By the constancy corollary, full CK is
    attainable iff it holds at the empty computation — so over a lossy
    channel a fact that is not initially common knowledge never becomes
    so, while [E^k] levels can still climb as messages are delivered. *)

val constancy_holds : Universe.t -> Prop.t -> bool
(** The corollary checker: with ≥ 2 processes, ["b is CK"] is constant
    over the universe. *)

val iterations_to_fixpoint : Universe.t -> Prop.t -> int
(** Number of operator applications until stability — a measure used by
    bench E7. *)
