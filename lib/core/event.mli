(** Events.

    An event on a process is a send, a receive, or an internal event
    (§2). Every event records the process it is on and its position
    {!field:lseq} in that process's local computation; this makes events
    within one computation distinguished (as the paper requires) and
    makes events {e shared} between computations whenever the process
    reached them with the same local history — the identity notion that
    isomorphism is built on. *)

type kind =
  | Send of Msg.t  (** sending of [msg]; the event is on [msg.src] *)
  | Receive of Msg.t  (** reception of [msg]; the event is on [msg.dst] *)
  | Internal of string  (** internal action with a tag; no communication *)

type t = {
  pid : Pid.t;  (** the process this event is on *)
  lseq : int;  (** index of this event in [pid]'s local computation *)
  kind : kind;
  mutable h : int;  (** hash memo, [-1] until first {!hash} — use {!hash} *)
}

val send : pid:Pid.t -> lseq:int -> Msg.t -> t
(** [send ~pid ~lseq m] is the send event of [m]. Raises
    [Invalid_argument] if [pid <> m.src]. *)

val receive : pid:Pid.t -> lseq:int -> Msg.t -> t
(** [receive ~pid ~lseq m] is the receive event of [m]. Raises
    [Invalid_argument] if [pid <> m.dst]. *)

val internal : pid:Pid.t -> lseq:int -> string -> t

val equal : t -> t -> bool
val compare : t -> t -> int
(** A total order on events, used both for canonical linearizations of
    interleaving-equivalent computations and for deterministic
    enumeration. *)

val hash : t -> int

val on : t -> Pset.t -> bool
(** [on e ps] is true iff [e] is an event on some process in [ps]
    (the paper's "e is on P"). *)

val is_send : t -> bool
val is_receive : t -> bool
val is_internal : t -> bool

val message : t -> Msg.t option
(** The message sent or received, if any. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
