let operator u ext s =
  let acc = ref (Bitset.inter ext s) in
  List.iter
    (fun p ->
      acc := Bitset.inter !acc (Knowledge.knows_ext u (Pset.singleton p) s))
    (Spec.pids (Universe.spec u));
  !acc

let fixpoint u ext =
  let rec go s count =
    let s' = operator u ext s in
    if Bitset.equal s s' then (s, count) else go s' (count + 1)
  in
  go (Bitset.create_full (Universe.size u)) 0

let common_ext u ext = fst (fixpoint u ext)

(* -- symmetry-aware common knowledge ----------------------------------

   On a symmetry-reduced universe (DESIGN.md §10) the greatest-fixpoint
   characterization is computed over the orbit expansion directly.
   Since each [\[p\]] is an equivalence relation, the fixpoint equals:
   x ∈ CK(b) iff every computation reachable from x through the union
   of the [\[p\]] relations satisfies b — i.e. x's connected component
   in the "some process cannot distinguish" graph is all-[b]. Nodes
   are pairs (representative, group element) standing for the concrete
   computation π·(comp i); equal per-process projections are merged
   with a union-find, then each component is checked against [b]
   evaluated at the concrete computations. *)

let common_sym u g b =
  let size = Universe.size u in
  let perms = Array.of_list (Symmetry.elements g) in
  let go = Array.length perms in
  let nn = size * go in
  let n = Symmetry.degree g in
  let parent = Array.init nn (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  let traces =
    Array.init nn (fun idx ->
        let i = idx / go and k = idx mod go in
        let z = Universe.comp u i in
        if k = 0 then z else Symmetry.permute_trace perms.(k) z)
  in
  let pvs = Array.map (Symmetry.proj_vector n) traces in
  List.iter
    (fun p ->
      let q = Pid.to_int p in
      let first : int Symmetry.KeyTbl.t = Symmetry.KeyTbl.create nn in
      Array.iteri
        (fun idx pv ->
          let key = [| pv.(q) |] in
          match Symmetry.KeyTbl.find_opt first key with
          | None -> Symmetry.KeyTbl.add first key idx
          | Some j -> union idx j)
        pvs)
    (Spec.pids (Universe.spec u));
  let ok = Array.make nn true in
  Array.iteri
    (fun idx y -> if not (Prop.eval b y) then ok.(find idx) <- false)
    traces;
  Bitset.of_pred size (fun i -> ok.(find (i * go)))

let common u b =
  let name = Printf.sprintf "CK(%s)" (Prop.name b) in
  match Universe.symmetry u with
  | Some g when not (Symmetry.is_trivial g) ->
      Prop.of_extent u name (common_sym u g b)
  | _ -> Prop.of_extent u name (common_ext u (Prop.extent u b))

let rec level u k b =
  if k <= 0 then b
  else
    let prev = level u (k - 1) b in
    let ck_k =
      List.fold_left
        (fun acc p ->
          Bitset.inter acc
            (Knowledge.knows_prop_ext u (Pset.singleton p) prev))
        (Prop.extent u b)
        (Spec.pids (Universe.spec u))
    in
    Prop.of_extent u (Printf.sprintf "E^%d(%s)" k (Prop.name b)) ck_k

let attainable ?level:lvl u b =
  let p = match lvl with None -> common u b | Some k -> level u k b in
  not (Bitset.is_empty (Prop.extent u p))

let constancy_holds u b =
  Spec.n (Universe.spec u) < 2 || Prop.is_constant u (common u b)

let iterations_to_fixpoint u b = snd (fixpoint u (Prop.extent u b))
