let operator u ext s =
  let acc = ref (Bitset.inter ext s) in
  List.iter
    (fun p ->
      acc := Bitset.inter !acc (Knowledge.knows_ext u (Pset.singleton p) s))
    (Spec.pids (Universe.spec u));
  !acc

let fixpoint u ext =
  let rec go s count =
    let s' = operator u ext s in
    if Bitset.equal s s' then (s, count) else go s' (count + 1)
  in
  go (Bitset.create_full (Universe.size u)) 0

let common_ext u ext = fst (fixpoint u ext)

let common u b =
  Prop.of_extent u
    (Printf.sprintf "CK(%s)" (Prop.name b))
    (common_ext u (Prop.extent u b))

let rec level u k b =
  if k <= 0 then b
  else
    let prev = level u (k - 1) b in
    let ext = Prop.extent u prev in
    let ck_k =
      List.fold_left
        (fun acc p -> Bitset.inter acc (Knowledge.knows_ext u (Pset.singleton p) ext))
        (Prop.extent u b)
        (Spec.pids (Universe.spec u))
    in
    Prop.of_extent u (Printf.sprintf "E^%d(%s)" k (Prop.name b)) ck_k

let attainable ?level:lvl u b =
  let p = match lvl with None -> common u b | Some k -> level u k b in
  not (Bitset.is_empty (Prop.extent u p))

let constancy_holds u b =
  Spec.n (Universe.spec u) < 2 || Prop.is_constant u (common u b)

let iterations_to_fixpoint u b = snd (fixpoint u (Prop.extent u b))
