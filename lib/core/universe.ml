type mode = [ `Full | `Canonical ]

type budget = { max_states : int option; max_seconds : float option }

let budget ?max_states ?max_seconds () =
  (match max_states with
  | Some k when k < 1 -> invalid_arg "Universe.budget: max_states < 1"
  | _ -> ());
  (match max_seconds with
  | Some s when s <= 0.0 -> invalid_arg "Universe.budget: max_seconds <= 0"
  | _ -> ());
  { max_states; max_seconds }

let no_budget = { max_states = None; max_seconds = None }

type trunc_reason = Max_states of int | Max_seconds of float

type status = Complete | Truncated of trunc_reason

let reason_to_string = function
  | Max_states k -> Printf.sprintf "state budget reached (max_states = %d)" k
  | Max_seconds s -> Printf.sprintf "time budget reached (max_seconds = %g)" s

module TraceTbl = Hashtbl.Make (struct
  type t = Trace.t

  let equal = Trace.equal
  let hash = Trace.hash
end)

(* Interning table for incremental per-process projections. A local
   computation is identified by the pair (class id of its immediate
   prefix, final event) — a hash-consed trie over local histories, so
   extending a projection by one event costs O(1) instead of hashing
   the whole event list. *)
module StepTbl = Hashtbl.Make (struct
  type t = int * Event.t

  let equal (i, e) (j, f) = Int.equal i j && Event.equal e f
  let hash (i, e) = Hashtbl.hash (i, Event.hash e)
end)

type t = {
  spec : Spec.t;
  mode : mode;
  depth : int;
  status : status;
  reduce : Reduction.t;
  comps : Trace.t array;
  idx : int TraceTbl.t;
  class_ids_by_pid : int array array; (* pid index -> comp index -> class id *)
  orbit_idx : int Symmetry.KeyTbl.t option; (* sym: orbit key -> index *)
  rep_sigma : Symmetry.perm array option;
      (* sym: per index, the σ whose action on the stored representative
         attains its orbit key *)
  pset_ids_memo : (int list, int array) Hashtbl.t;
  classes_memo : (int list, Bitset.t array) Hashtbl.t;
}

(* --- canonical linearizations ------------------------------------- *)

(* Direct predecessors of [e] within a fixed event set: the previous
   event on the same process, and the corresponding send if [e] is a
   receive. All other causal ordering is their transitive closure. *)
let is_direct_pred ~of_:e c =
  (Pid.equal c.Event.pid e.Event.pid && c.Event.lseq = e.Event.lseq - 1)
  ||
  match e.Event.kind with
  | Event.Receive m -> (
      match c.Event.kind with Event.Send m' -> Msg.equal m m' | _ -> false)
  | Event.Send _ | Event.Internal _ -> false

(* Greedy least linearization: repeatedly emit the Event.compare-least
   event whose direct predecessors have all been emitted. For a valid
   computation this is exactly the lexicographically least interleaving
   of its [\[D\]]-class. *)
let canon_trace z =
  let rec go remaining acc =
    match remaining with
    | [] -> Trace.of_list (List.rev acc)
    | _ ->
        let ready =
          List.filter
            (fun e ->
              not
                (List.exists
                   (fun c -> (not (Event.equal c e)) && is_direct_pred ~of_:e c)
                   remaining))
            remaining
        in
        let least =
          match ready with
          | [] -> invalid_arg "Universe.canon: cyclic or ill-formed trace"
          | e :: rest -> List.fold_left (fun m c -> if Event.compare c m < 0 then c else m) e rest
        in
        go (List.filter (fun e -> not (Event.equal e least)) remaining) (least :: acc)
  in
  go (Trace.to_list z) []

(* [z] canonical, [e] enabled after [z]: is [(z;e)] canonical?  [e]
   becomes available right after its last direct predecessor; canonical
   means no later-placed event exceeds [e]. *)
let snoc_is_canonical z e =
  let events = Trace.to_list z in
  let _, avail =
    List.fold_left
      (fun (i, avail) c ->
        (i + 1, if is_direct_pred ~of_:e c then i + 1 else avail))
      (0, 0) events
  in
  let rec check i = function
    | [] -> true
    | c :: rest ->
        if i < avail then check (i + 1) rest
        else Event.compare c e < 0 && check (i + 1) rest
  in
  check 0 events

(* --- enumeration --------------------------------------------------- *)

(* Each BFS node carries its trace plus the vector of per-process class
   ids of its projections. A child differs from its parent in exactly
   one slot (the extending event's process), so maintaining the vector
   is O(n) per child and the post-hoc O(N·n·depth) re-projection pass
   is gone entirely.

   Parallelism: the effect-free, expensive half of a level — enabled
   events, the canonicity filter, [Trace.snoc] — is fanned out across
   [domains] stdlib domains in contiguous frontier blocks; each worker
   writes only its own slots of the output array. The effectful half
   (class-id interning, appending to the accumulator) runs sequentially
   in frontier order afterwards, so [comps], [idx] and every class id
   are bit-identical for any [domains]. *)
exception Out_of_budget of trunc_reason

let enumerate ?(mode = `Canonical) ?(domains = 1) ?(budget = no_budget)
    ?(reduce = Reduction.none) spec ~depth =
  if depth < 0 then invalid_arg "Universe.enumerate: negative depth";
  if domains < 1 then invalid_arg "Universe.enumerate: domains < 1";
  if mode = `Full && not (Reduction.is_none reduce) then
    invalid_arg "Universe.enumerate: reductions require `Canonical mode";
  let group = Reduction.symmetry reduce in
  let por = Reduction.uses_por reduce in
  Hpl_obs.span "enumerate"
    ~args:(fun () ->
      [
        ("depth", string_of_int depth);
        ("domains", string_of_int domains);
        ("mode", match mode with `Full -> "full" | `Canonical -> "canonical");
        ("reduce", Reduction.label reduce);
      ])
  @@ fun () ->
  let started = Sys.time () in
  let check_time () =
    match budget.max_seconds with
    | Some limit when Sys.time () -. started > limit ->
        Hpl_obs.instant "enumerate.budget"
          ~args:[ ("reason", "max_seconds") ];
        raise (Out_of_budget (Max_seconds limit))
    | _ -> ()
  in
  let n = Spec.n spec in
  let step_tbls = Array.init n (fun _ -> StepTbl.create 64) in
  let next_ids = Array.make n 1 in
  (* class id 0 is the empty projection; every distinct one-event
     extension of an interned projection gets the next id on first
     sight, in discovery order — the same first-occurrence order the
     old comps scan produced. *)
  let intern pi parent_id e =
    let key = (parent_id, e) in
    match StepTbl.find_opt step_tbls.(pi) key with
    | Some id -> id
    | None ->
        let id = next_ids.(pi) in
        next_ids.(pi) <- id + 1;
        StepTbl.add step_tbls.(pi) key id;
        id
  in
  (* under symmetry the canonicity filter is unsound — a stored orbit
     representative can reach a fresh orbit only through a non-canonical
     interleaving — so sym mode keeps every extension and dedups by
     orbit key in the merge instead *)
  let keep z e =
    match mode with
    | `Full -> true
    | `Canonical -> Option.is_some group || snoc_is_canonical z e
  in
  (* ample-set restriction: only with por, only when the static
     independence relation certifies no depth-truncation — then every
     leaf is blocked and Reduction.restrict preserves all blocked
     classes (see reduction.ml) *)
  let indep_active =
    if por && mode = `Canonical && group = None then
      match Reduction.independence reduce with
      | Some ind when Reduction.Independence.applicable ind ~depth -> Some ind
      | _ -> None
    else None
  in
  let children z en =
    let cands =
      match en with
      | Some ctx -> Reduction.Enabled.events ctx
      | None -> Spec.enabled spec z
    in
    let restricted =
      match (indep_active, en) with
      | Some ind, Some ctx -> Reduction.restrict ind ctx cands
      | _ -> cands
    in
    let kept =
      if por && mode = `Canonical && group = None then
        let ctx = Reduction.Ample.make ~n z in
        List.filter (Reduction.Ample.keep ctx) restricted
      else List.filter (keep z) restricted
    in
    let pruned = List.length cands - List.length kept in
    ( List.map
        (fun e ->
          ( e,
            Trace.snoc z e,
            Option.map (fun ctx -> Reduction.Enabled.step spec ctx e) en ))
        kept,
      pruned )
  in
  let expand frontier =
    let m = Array.length frontier in
    let out = Array.make m ([], 0) in
    let fill lo hi =
      for i = lo to hi - 1 do
        let z, _, en, _ = frontier.(i) in
        out.(i) <- children z en
      done
    in
    (* each worker records its own span (tid = its domain id), so the
       profile shows per-domain timelines and utilization *)
    let fill_span w lo hi =
      Hpl_obs.span "enumerate.worker"
        ~args:(fun () ->
          [ ("worker", string_of_int w); ("parents", string_of_int (hi - lo)) ])
        (fun () -> fill lo hi)
    in
    let k = if domains > 1 && m >= 2 * domains then domains else 1 in
    if k = 1 then fill_span 0 0 m
    else begin
      let block w = (w * m / k, (w + 1) * m / k) in
      let workers =
        List.init (k - 1) (fun w ->
            let lo, hi = block (w + 1) in
            Domain.spawn (fun () -> fill_span (w + 1) lo hi))
      in
      let lo, hi = block 0 in
      fill_span 0 lo hi;
      (* the joins establish happens-before on every [out] slot *)
      List.iter Domain.join workers
    end;
    out
  in
  let acc = ref [] and count = ref 0 in
  let push node =
    (match budget.max_states with
    | Some k when !count >= k ->
        Hpl_obs.instant "enumerate.budget" ~args:[ ("reason", "max_states") ];
        raise (Out_of_budget (Max_states k))
    | _ -> ());
    acc := node :: !acc;
    incr count
  in
  (* symmetry bookkeeping: [class_seen] memoizes the orbit decision per
     [D]-class (identity projection vector), [orbit_idx] maps each orbit
     key to its stored representative, [sigma_acc] records per stored
     node the σ attaining its key (reverse discovery order, like !acc) *)
  let class_seen = Symmetry.KeyTbl.create 256 in
  let orbit_idx = Symmetry.KeyTbl.create 256 in
  let sigma_acc = ref [] in
  let orbit_hits = ref 0 and ample_prunes = ref 0 in
  (* the group elements, identity first; each frontier node carries the
     renamed projection vector of every element's action on it, so a
     child's identity vector (the class key) and its orbit key (the
     minimum over the group) are maintained by consing one renamed
     event — no trace is ever re-traversed or permuted wholesale *)
  let perms =
    match group with
    | Some g -> Array.of_list (Symmetry.elements g)
    | None -> [||]
  in
  let extend_cand k cand e =
    let pe = if k = 0 then e else Symmetry.permute_event perms.(k) e in
    let j = Pid.to_int pe.Event.pid in
    let c = Array.copy cand in
    c.(j) <- pe :: c.(j);
    c
  in
  let root_en = if por then Some (Reduction.Enabled.init spec) else None in
  let root_cands =
    match group with
    | None -> None
    | Some _ -> Some (Array.make (Array.length perms) (Array.make n []))
  in
  let root = (Trace.empty, Array.make n 0, root_en, root_cands) in
  push root;
  (match group with
  | Some _ ->
      let empty_key = Array.make n [] in
      Symmetry.KeyTbl.replace class_seen empty_key ();
      Symmetry.KeyTbl.replace orbit_idx empty_key 0;
      sigma_acc := [ perms.(0) ]
  | None -> ());
  let rec level frontier d =
    if d >= depth || Array.length frontier = 0 then ()
    else begin
      check_time ();
      let m = Array.length frontier in
      if !Hpl_obs.enabled then
        Hpl_obs.set_gauge "enumerate.frontier_size" (float_of_int m);
      (* per-depth frontier span: the effect-free parallel half *)
      let busy0 =
        if !Hpl_obs.enabled then Hpl_obs.span_total_us "enumerate.worker"
        else 0.0
      in
      let wall0 =
        if !Hpl_obs.enabled then Hpl_obs.span_total_us "enumerate.frontier"
        else 0.0
      in
      let childlists =
        Hpl_obs.span "enumerate.frontier"
          ~args:(fun () ->
            [ ("depth", string_of_int d); ("frontier", string_of_int m) ])
          (fun () -> expand frontier)
      in
      if !Hpl_obs.enabled then begin
        (* utilization of the worker pool over this level's wall time *)
        let k = if domains > 1 && m >= 2 * domains then domains else 1 in
        let busy = Hpl_obs.span_total_us "enumerate.worker" -. busy0 in
        let wall = Hpl_obs.span_total_us "enumerate.frontier" -. wall0 in
        if wall > 0.0 then
          Hpl_obs.set_gauge "enumerate.domain_util"
            (busy /. (float_of_int k *. wall))
      end;
      (* deterministic merge: frontier order, then per-parent order.
         Budget checks live here, in the sequential half, so the set of
         kept states is identical for any [domains] (time-based
         truncation is inherently wall-clock dependent, but is only
         detected between whole parents, never mid-parent). *)
      (* symmetry: decide each child's fate first — skip if its
         [D]-class (identity projection vector) was already seen,
         otherwise extend the parent's remaining renamed vectors and
         take their minimum as the orbit key (timed separately) *)
      let annotated =
        match group with
        | None -> Array.map (fun (kids, pruned) -> (List.map (fun c -> (c, None)) kids, pruned)) childlists
        | Some _ ->
            Hpl_obs.span "reduce.canon"
              ~args:(fun () -> [ ("depth", string_of_int d) ])
              (fun () ->
                Array.mapi
                  (fun i (kids, pruned) ->
                    let _, _, _, pcands = frontier.(i) in
                    let pcands =
                      match pcands with Some c -> c | None -> assert false
                    in
                    ( List.map
                        (fun ((e, _, _) as c) ->
                          let v = extend_cand 0 pcands.(0) e in
                          if Symmetry.KeyTbl.mem class_seen v then (c, Some `Dup)
                          else begin
                            Symmetry.KeyTbl.replace class_seen v ();
                            let cands =
                              Array.mapi
                                (fun k pc ->
                                  if k = 0 then v else extend_cand k pc e)
                                pcands
                            in
                            let best = ref 0 in
                            for k = 1 to Array.length cands - 1 do
                              if
                                Symmetry.compare_key cands.(k) cands.(!best) < 0
                              then best := k
                            done;
                            (c, Some (`Key (cands.(!best), perms.(!best), cands)))
                          end)
                        kids,
                      pruned ))
                  childlists)
      in
      let next = ref [] in
      Hpl_obs.span "enumerate.merge"
        ~args:(fun () -> [ ("depth", string_of_int d) ])
        (fun () ->
          Array.iteri
            (fun i (kids, pruned) ->
              check_time ();
              ample_prunes := !ample_prunes + pruned;
              let _, pids, _, _ = frontier.(i) in
              List.iter
                (fun ((e, z', en), fate) ->
                  let admit =
                    match fate with
                    | None -> true
                    | Some `Dup ->
                        incr orbit_hits;
                        false
                    | Some (`Key (key, _, _)) ->
                        if Symmetry.KeyTbl.mem orbit_idx key then begin
                          incr orbit_hits;
                          false
                        end
                        else true
                  in
                  if admit then begin
                    let pi = Pid.to_int e.Event.pid in
                    let ids = Array.copy pids in
                    ids.(pi) <- intern pi pids.(pi) e;
                    let node =
                      match fate with
                      | Some (`Key (_, _, cands)) -> (z', ids, en, Some cands)
                      | _ -> (z', ids, en, None)
                    in
                    (* push may raise on budget: register the orbit
                       entry only once the node is actually stored *)
                    push node;
                    (match fate with
                    | Some (`Key (key, sigma, _)) ->
                        Symmetry.KeyTbl.replace orbit_idx key (!count - 1);
                        sigma_acc := sigma :: !sigma_acc
                    | _ -> ());
                    next := node :: !next
                  end)
                kids)
            annotated);
      level (Array.of_list (List.rev !next)) (d + 1)
    end
  in
  let status =
    match level [| root |] 0 with
    | () -> Complete
    | exception Out_of_budget reason -> Truncated reason
  in
  if !Hpl_obs.enabled then begin
    Hpl_obs.count "enumerate.states" !count;
    let classes = ref 0 in
    Array.iter (fun next -> classes := !classes + next - 1) next_ids;
    Hpl_obs.count "enumerate.proj_classes" !classes;
    if not (Reduction.is_none reduce) then begin
      Hpl_obs.count "reduce.orbit_hits" !orbit_hits;
      Hpl_obs.count "reduce.ample_prunes" !ample_prunes
    end
  end;
  let comps, class_ids_by_pid, idx =
    (* the interning half: materialize the computations and build the
       O(1)-lookup trace index *)
    Hpl_obs.span "enumerate.intern"
      ~args:(fun () -> [ ("states", string_of_int !count) ])
    @@ fun () ->
    let comps = Array.make !count Trace.empty in
    let class_ids_by_pid = Array.init n (fun _ -> Array.make !count 0) in
    (* [!acc] holds nodes in reverse discovery order *)
    List.iteri
      (fun k (z, ids, _, _) ->
        let i = !count - 1 - k in
        comps.(i) <- z;
        for pi = 0 to n - 1 do
          class_ids_by_pid.(pi).(i) <- ids.(pi)
        done)
      !acc;
    let idx = TraceTbl.create (2 * !count) in
    Array.iteri (fun i z -> TraceTbl.replace idx z i) comps;
    (comps, class_ids_by_pid, idx)
  in
  let rep_sigma =
    match group with
    | None -> None
    | Some _ ->
        let a = Array.make !count [||] in
        List.iteri (fun k s -> a.(!count - 1 - k) <- s) !sigma_acc;
        Some a
  in
  {
    spec;
    mode;
    depth;
    status;
    reduce;
    comps;
    idx;
    class_ids_by_pid;
    orbit_idx = (match group with None -> None | Some _ -> Some orbit_idx);
    rep_sigma;
    pset_ids_memo = Hashtbl.create 16;
    classes_memo = Hashtbl.create 16;
  }

let spec u = u.spec
let mode u = u.mode
let depth u = u.depth
let status u = u.status
let reduction u = u.reduce
let symmetry u = Reduction.symmetry u.reduce
let size u = Array.length u.comps
let comp u i = u.comps.(i)

let sample u ~choose =
  let k = Array.length u.comps in
  if k = 0 then invalid_arg "Universe.sample: empty universe";
  let i = choose k in
  if i < 0 || i >= k then
    invalid_arg "Universe.sample: choose returned an out-of-range index";
  u.comps.(i)
let index u z =
  let r = TraceTbl.find_opt u.idx z in
  if !Hpl_obs.enabled then begin
    Hpl_obs.count "universe.lookups" 1;
    if r <> None then Hpl_obs.count "universe.lookup_hits" 1
  end;
  r
let canon _u z = canon_trace z

let find u z =
  match (symmetry u, u.mode) with
  | Some g, _ -> (
      (* the stored representative of z's orbit — reps are not
         lexicographically canonical, so the orbit index is the only
         sound lookup *)
      match u.orbit_idx with
      | Some tbl -> Symmetry.KeyTbl.find_opt tbl (Symmetry.orbit_key g z)
      | None -> None)
  | None, `Full -> index u z
  | None, `Canonical -> (
      match index u z with Some i -> Some i | None -> index u (canon_trace z))

let find_orbit u z =
  match symmetry u with
  | None ->
      Option.map (fun i -> (i, Symmetry.identity (Spec.n u.spec))) (find u z)
  | Some g -> (
      let key, s1 = Symmetry.orbit_key_witness g z in
      match u.orbit_idx with
      | None -> None
      | Some tbl ->
          Option.map
            (fun i ->
              let s0 =
                match u.rep_sigma with Some a -> a.(i) | None -> assert false
              in
              (i, Symmetry.compose (Symmetry.inverse s1) s0))
            (Symmetry.KeyTbl.find_opt tbl key))

let find_exn u z = match find u z with Some i -> i | None -> raise Not_found
let iter f u = Array.iteri f u.comps

let fold f u init =
  let acc = ref init in
  Array.iteri (fun i z -> acc := f i z !acc) u.comps;
  !acc

let class_ids u p = u.class_ids_by_pid.(Pid.to_int p)
let pset_key ps = List.map Pid.to_int (Pset.to_list ps)

let pset_class_ids u ps =
  let key = pset_key ps in
  match Hashtbl.find_opt u.pset_ids_memo key with
  | Some ids -> ids
  | None ->
      let n = size u in
      let ids =
        if Pset.is_empty ps then Array.make n 0
        else begin
          (* combine per-process class ids into fresh ids *)
          let tbl : (int list, int) Hashtbl.t = Hashtbl.create (2 * n) in
          let next = ref 0 in
          Array.init n (fun i ->
              let combined =
                List.map (fun p -> (class_ids u p).(i)) (Pset.to_list ps)
              in
              match Hashtbl.find_opt tbl combined with
              | Some id -> id
              | None ->
                  let id = !next in
                  incr next;
                  Hashtbl.add tbl combined id;
                  id)
        end
      in
      Hashtbl.add u.pset_ids_memo key ids;
      ids

let classes u ps =
  let key = pset_key ps in
  match Hashtbl.find_opt u.classes_memo key with
  | Some cs -> cs
  | None ->
      let ids = pset_class_ids u ps in
      let n = size u in
      let nclasses = Array.fold_left (fun m id -> max m (id + 1)) 0 ids in
      let cs = Array.init nclasses (fun _ -> Bitset.create n) in
      Array.iteri (fun i id -> Bitset.add cs.(id) i) ids;
      Hashtbl.add u.classes_memo key cs;
      cs

let class_members u ps i =
  let ids = pset_class_ids u ps in
  (classes u ps).(ids.(i))

let prefixes_of u i =
  let z = comp u i in
  let rec go prefix events acc =
    let acc =
      match find u prefix with Some j -> j :: acc | None -> acc
    in
    match events with
    | [] -> acc
    | e :: rest -> go (Trace.snoc prefix e) rest acc
  in
  List.rev (go Trace.empty (Trace.to_list z) [])

(* --- snapshot body ---------------------------------------------------

   A universe is a prefix-closed BFS in discovery order: [comps.(0)] is
   the empty trace and every other computation extends an earlier one by
   a single event. The body therefore stores, per computation, the index
   of its parent prefix plus one interned event — the same incremental
   representation the enumerator builds — rather than whole traces.
   Payload strings and internal tags go through a first-occurrence
   string table. Class ids are not stored at all: replaying the events
   through the same hash-consed trie in the same discovery order
   reproduces them bit-identically.

   The encoding is body-only. Framing (magic, format version, cache key,
   checksum) belongs to the snapshot container in [Hpl_serve.Snapshot];
   this layer only promises that any byte string either round-trips to a
   structurally valid universe of the given spec or yields [Error]. *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_i32 b v =
  if v < 0 || v > 0x3fffffff then
    invalid_arg "Universe.serialize: integer out of range";
  add_u8 b v;
  add_u8 b (v lsr 8);
  add_u8 b (v lsr 16);
  add_u8 b (v lsr 24)

let add_i64 b (v : int64) =
  for k = 0 to 7 do
    add_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * k)))
  done

let add_str b s =
  add_i32 b (String.length s);
  Buffer.add_string b s

let serialize u =
  if Option.is_some (Reduction.symmetry u.reduce) then
    Error
      "symmetry-reduced universes have no snapshot form (orbit tables \
       are not serialized); cache them in memory only"
  else begin
    let b = Buffer.create 4096 in
    add_u8 b (match u.mode with `Full -> 0 | `Canonical -> 1);
    add_i32 b u.depth;
    (match u.status with
    | Complete -> add_u8 b 0
    | Truncated (Max_states k) ->
        add_u8 b 1;
        add_i32 b k
    | Truncated (Max_seconds s) ->
        add_u8 b 2;
        add_i64 b (Int64.bits_of_float s));
    add_u8 b (if Reduction.uses_por u.reduce then 1 else 0);
    let n = Spec.n u.spec in
    add_i32 b n;
    let count = Array.length u.comps in
    (* events into a side buffer so the string table can precede them *)
    let strings = Hashtbl.create 64 in
    let str_order = ref [] and nstr = ref 0 in
    let str_id s =
      match Hashtbl.find_opt strings s with
      | Some i -> i
      | None ->
          let i = !nstr in
          incr nstr;
          Hashtbl.add strings s i;
          str_order := s :: !str_order;
          i
    in
    let eb = Buffer.create 4096 in
    for i = 1 to count - 1 do
      let events = Trace.to_list u.comps.(i) in
      let rec split acc = function
        | [] -> invalid_arg "Universe.serialize: empty non-root computation"
        | [ e ] -> (List.rev acc, e)
        | e :: rest -> split (e :: acc) rest
      in
      let init, e = split [] events in
      let parent =
        match TraceTbl.find_opt u.idx (Trace.of_list init) with
        | Some j when j < i -> j
        | _ -> invalid_arg "Universe.serialize: universe is not prefix-closed"
      in
      add_i32 eb parent;
      add_i32 eb (Pid.to_int e.Event.pid);
      add_i32 eb e.Event.lseq;
      match e.Event.kind with
      | Event.Internal tag ->
          add_u8 eb 0;
          add_i32 eb (str_id tag)
      | Event.Send m ->
          add_u8 eb 1;
          add_i32 eb (Pid.to_int m.Msg.dst);
          add_i32 eb m.Msg.seq;
          add_i32 eb (str_id m.Msg.payload)
      | Event.Receive m ->
          add_u8 eb 2;
          add_i32 eb (Pid.to_int m.Msg.src);
          add_i32 eb m.Msg.seq;
          add_i32 eb (str_id m.Msg.payload)
    done;
    add_i32 b !nstr;
    List.iter (add_str b) (List.rev !str_order);
    add_i32 b count;
    Buffer.add_buffer b eb;
    Ok (Buffer.contents b)
  end

exception Corrupt of string

let deserialize spec blob =
  let len = String.length blob in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt in
  let u8 () =
    if !pos >= len then fail "truncated body";
    let v = Char.code blob.[!pos] in
    incr pos;
    v
  in
  let i32 () =
    let a = u8 () in
    let b = u8 () in
    let c = u8 () in
    let d = u8 () in
    let v = a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24) in
    if v < 0 || v > 0x3fffffff then fail "integer out of range";
    v
  in
  let i64 () =
    let v = ref 0L in
    for k = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 ())) (8 * k))
    done;
    !v
  in
  let str () =
    let k = i32 () in
    if !pos + k > len then fail "truncated string";
    let s = String.sub blob !pos k in
    pos := !pos + k;
    s
  in
  try
    let mode =
      match u8 () with 0 -> `Full | 1 -> `Canonical | m -> fail "bad mode %d" m
    in
    let depth = i32 () in
    let status =
      match u8 () with
      | 0 -> Complete
      | 1 -> Truncated (Max_states (i32 ()))
      | 2 ->
          let s = Int64.float_of_bits (i64 ()) in
          if not (s > 0.0 && Float.is_finite s) then fail "bad time budget";
          Truncated (Max_seconds s)
      | t -> fail "bad status tag %d" t
    in
    let reduce =
      match u8 () with 0 -> Reduction.none | 1 -> Reduction.por | t -> fail "bad reduce tag %d" t
    in
    if mode = `Full && not (Reduction.is_none reduce) then
      fail "full mode cannot carry a reduction";
    let n = i32 () in
    if n <> Spec.n spec then
      fail "process count mismatch (snapshot has %d, spec has %d)" n
        (Spec.n spec);
    let nstr = i32 () in
    if nstr > len then fail "oversized string table";
    let strings = Array.init nstr (fun _ -> str ()) in
    let getstr i = if i >= nstr then fail "dangling string reference" else strings.(i) in
    let count = i32 () in
    if count < 1 || count > len then fail "implausible computation count";
    let comps = Array.make count Trace.empty in
    let class_ids_by_pid = Array.init n (fun _ -> Array.make count 0) in
    let step_tbls = Array.init n (fun _ -> StepTbl.create 64) in
    let next_ids = Array.make n 1 in
    let intern pi parent_id e =
      let key = (parent_id, e) in
      match StepTbl.find_opt step_tbls.(pi) key with
      | Some id -> id
      | None ->
          let id = next_ids.(pi) in
          next_ids.(pi) <- id + 1;
          StepTbl.add step_tbls.(pi) key id;
          id
    in
    for i = 1 to count - 1 do
      let parent = i32 () in
      if parent >= i then fail "parent index %d not before child %d" parent i;
      let pi = i32 () in
      if pi >= n then fail "pid %d out of range" pi;
      let pid = Pid.of_int pi in
      let lseq = i32 () in
      let pz = comps.(parent) in
      (* lseq is derivable from the parent: reject inconsistent bodies
         rather than building traces that violate Trace.well_formed *)
      if lseq <> Trace.local_length pz pid then
        fail "inconsistent local sequence number at computation %d" i;
      let e =
        match u8 () with
        | 0 -> Event.internal ~pid ~lseq (getstr (i32 ()))
        | 1 ->
            let dst = i32 () in
            if dst >= n then fail "destination %d out of range" dst;
            let seq = i32 () in
            if seq <> Trace.send_count pz pid then
              fail "inconsistent send sequence number at computation %d" i;
            let payload = getstr (i32 ()) in
            Event.send ~pid ~lseq
              (Msg.make ~src:pid ~dst:(Pid.of_int dst) ~seq ~payload)
        | 2 ->
            let src = i32 () in
            if src >= n then fail "source %d out of range" src;
            let seq = i32 () in
            let payload = getstr (i32 ()) in
            let m = Msg.make ~src:(Pid.of_int src) ~dst:pid ~seq ~payload in
            if not (List.exists (Msg.equal m) (Trace.in_flight pz)) then
              fail "receive of a message not in flight at computation %d" i;
            Event.receive ~pid ~lseq m
        | t -> fail "bad event kind %d" t
      in
      comps.(i) <- Trace.snoc pz e;
      for q = 0 to n - 1 do
        class_ids_by_pid.(q).(i) <- class_ids_by_pid.(q).(parent)
      done;
      class_ids_by_pid.(pi).(i) <- intern pi class_ids_by_pid.(pi).(parent) e
    done;
    if !pos <> len then fail "%d trailing bytes" (len - !pos);
    (* spot-check against the spec the caller claims this snapshot is
       for: the deepest stored computation must be one of its
       computations (catches key collisions and spec drift) *)
    if count > 1 && not (Spec.valid spec comps.(count - 1)) then
      fail "snapshot is not a universe of the given spec";
    let idx = TraceTbl.create (2 * count) in
    Array.iteri (fun i z -> TraceTbl.replace idx z i) comps;
    Ok
      {
        spec;
        mode;
        depth;
        status;
        reduce;
        comps;
        idx;
        class_ids_by_pid;
        orbit_idx = None;
        rep_sigma = None;
        pset_ids_memo = Hashtbl.create 16;
        classes_memo = Hashtbl.create 16;
      }
  with Corrupt m -> Error m

let pp_stats fmt u =
  Format.fprintf fmt "universe: %d computations, depth %d, mode %s%s, %d processes%s"
    (size u) u.depth
    (match u.mode with `Full -> "full" | `Canonical -> "canonical")
    (if Reduction.is_none u.reduce then ""
     else Printf.sprintf ", reduce %s" (Reduction.label u.reduce))
    (Spec.n u.spec)
    (match u.status with
    | Complete -> ""
    | Truncated r -> Printf.sprintf " [TRUNCATED: %s]" (reason_to_string r))
