let everyone_ext u g ext =
  Pset.fold
    (fun p acc -> Bitset.inter acc (Knowledge.knows_ext u (Pset.singleton p) ext))
    g
    (Bitset.create_full (Universe.size u))

let someone_ext u g ext =
  Pset.fold
    (fun p acc -> Bitset.union acc (Knowledge.knows_ext u (Pset.singleton p) ext))
    g
    (Bitset.create (Universe.size u))

(* The prop-level operators go through [Knowledge.knows_prop_ext] so
   that on a symmetry-reduced universe each singleton's knowledge is
   evaluated over the orbit expansion (exact); on an unreduced universe
   the bits are identical to the [_ext] definitions above. *)

let everyone_prop_ext u g b =
  Pset.fold
    (fun p acc ->
      Bitset.inter acc (Knowledge.knows_prop_ext u (Pset.singleton p) b))
    g
    (Bitset.create_full (Universe.size u))

let someone_prop_ext u g b =
  Pset.fold
    (fun p acc ->
      Bitset.union acc (Knowledge.knows_prop_ext u (Pset.singleton p) b))
    g
    (Bitset.create (Universe.size u))

let everyone u g b =
  Prop.of_extent u
    (Format.asprintf "E%a(%s)" Pset.pp g (Prop.name b))
    (everyone_prop_ext u g b)

let someone u g b =
  Prop.of_extent u
    (Format.asprintf "S%a(%s)" Pset.pp g (Prop.name b))
    (someone_prop_ext u g b)

let distributed = Knowledge.knows

let rec e_iterate u g k b =
  if k <= 0 then b
  else
    let prev = e_iterate u g (k - 1) b in
    Prop.of_extent u
      (Printf.sprintf "E^%d(%s)" k (Prop.name b))
      (everyone_prop_ext u g prev)

module Laws = struct
  let everyone_implies_distributed u g b =
    Pset.is_empty g
    || Bitset.subset
         (everyone_ext u g (Prop.extent u b))
         (Prop.extent u (Knowledge.knows u g b))

  let someone_of_singleton u p b =
    let g = Pset.singleton p in
    let ext = Prop.extent u b in
    let e = everyone_ext u g ext in
    let s = someone_ext u g ext in
    let d = Knowledge.knows_ext u g ext in
    Bitset.equal e s && Bitset.equal s d

  let distributed_monotone u g h b =
    (not (Pset.subset g h))
    || Bitset.subset
         (Prop.extent u (Knowledge.knows u g b))
         (Prop.extent u (Knowledge.knows u h b))

  let e_chain_decreasing u g bound b =
    let rec go k prev =
      if k > bound then true
      else
        let cur = Prop.extent u (e_iterate u g k b) in
        Bitset.subset cur prev && go (k + 1) cur
    in
    go 1 (Prop.extent u (e_iterate u g 0 b))
end
