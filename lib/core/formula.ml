type pset_syntax = int list

type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Know of pset_syntax * t
  | Sure of pset_syntax * t
  | Everyone of pset_syntax * t
  | Someone of pset_syntax * t
  | Common of t
  | Ag of t
  | Ef of t
  | Af of t
  | Eg of t
  | Ax of t
  | Ex of t

(* ---------------------------------------------------------------- lexer *)

type token =
  | TTrue
  | TFalse
  | TIdent of string
  | TNot
  | TAnd
  | TOr
  | TArrow
  | TLParen
  | TRParen
  | TLBrace
  | TRBrace
  | TComma
  | TPid of int

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let lex input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '~' -> go (i + 1) (TNot :: acc)
      | '&' -> go (i + 1) (TAnd :: acc)
      | '|' -> go (i + 1) (TOr :: acc)
      | '(' -> go (i + 1) (TLParen :: acc)
      | ')' -> go (i + 1) (TRParen :: acc)
      | '{' -> go (i + 1) (TLBrace :: acc)
      | '}' -> go (i + 1) (TRBrace :: acc)
      | ',' -> go (i + 1) (TComma :: acc)
      | '-' when i + 1 < n && input.[i + 1] = '>' -> go (i + 2) (TArrow :: acc)
      | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ->
          let j = ref i in
          while !j < n && is_ident_char input.[!j] do
            incr j
          done;
          let word = String.sub input i (!j - i) in
          let tok =
            match word with
            | "true" -> TTrue
            | "false" -> TFalse
            | w -> (
                (* bare digits or pN are process ids in pset positions;
                   we classify lazily: emit TPid when purely numeric or
                   p<digits>, else identifier — the parser treats TPid
                   as an identifier when a formula atom is expected *)
                match int_of_string_opt w with
                | Some k -> TPid k
                | None ->
                    if
                      String.length w >= 2
                      && w.[0] = 'p'
                      && String.for_all
                           (fun c -> c >= '0' && c <= '9')
                           (String.sub w 1 (String.length w - 1))
                    then TPid (int_of_string (String.sub w 1 (String.length w - 1)))
                    else TIdent w)
          in
          go !j (tok :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  in
  go 0 []

(* ---------------------------------------------------------------- parser *)

exception Parse_error of string

let parse input =
  match lex input with
  | Error e -> Error e
  | Ok tokens -> (
      let toks = ref tokens in
      let peek () = match !toks with [] -> None | t :: _ -> Some t in
      let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
      let expect t what =
        match peek () with
        | Some t' when t' = t -> advance ()
        | _ -> raise (Parse_error ("expected " ^ what))
      in
      let parse_pset () =
        match peek () with
        | Some (TPid k) ->
            advance ();
            [ k ]
        | Some TLBrace ->
            advance ();
            let rec members acc =
              match peek () with
              | Some (TPid k) -> (
                  advance ();
                  match peek () with
                  | Some TComma ->
                      advance ();
                      members (k :: acc)
                  | Some TRBrace ->
                      advance ();
                      List.rev (k :: acc)
                  | _ -> raise (Parse_error "expected ',' or '}' in process set"))
              | _ -> raise (Parse_error "expected process id in process set")
            in
            members []
        | _ -> raise (Parse_error "expected a process id or '{...}'")
      in
      let rec parse_implies () =
        let lhs = parse_or () in
        match peek () with
        | Some TArrow ->
            advance ();
            Implies (lhs, parse_implies ())
        | _ -> lhs
      and parse_or () =
        let lhs = parse_and () in
        let rec go acc =
          match peek () with
          | Some TOr ->
              advance ();
              go (Or (acc, parse_and ()))
          | _ -> acc
        in
        go lhs
      and parse_and () =
        let lhs = parse_prefix () in
        let rec go acc =
          match peek () with
          | Some TAnd ->
              advance ();
              go (And (acc, parse_prefix ()))
          | _ -> acc
        in
        go lhs
      and parse_prefix () =
        match peek () with
        | Some TNot ->
            advance ();
            Not (parse_prefix ())
        | Some TTrue ->
            advance ();
            True
        | Some TFalse ->
            advance ();
            False
        | Some TLParen ->
            advance ();
            let f = parse_implies () in
            expect TRParen "')'";
            f
        | Some (TIdent "K") ->
            advance ();
            let ps = parse_pset () in
            Know (ps, parse_prefix ())
        | Some (TIdent "sure") ->
            advance ();
            let ps = parse_pset () in
            Sure (ps, parse_prefix ())
        | Some (TIdent "E") ->
            advance ();
            let ps = parse_pset () in
            Everyone (ps, parse_prefix ())
        | Some (TIdent "S") ->
            advance ();
            let ps = parse_pset () in
            Someone (ps, parse_prefix ())
        | Some (TIdent "CK") ->
            advance ();
            Common (parse_prefix ())
        | Some (TIdent "AG") ->
            advance ();
            Ag (parse_prefix ())
        | Some (TIdent "EF") ->
            advance ();
            Ef (parse_prefix ())
        | Some (TIdent "AF") ->
            advance ();
            Af (parse_prefix ())
        | Some (TIdent "EG") ->
            advance ();
            Eg (parse_prefix ())
        | Some (TIdent "AX") ->
            advance ();
            Ax (parse_prefix ())
        | Some (TIdent "EX") ->
            advance ();
            Ex (parse_prefix ())
        | Some (TIdent name) ->
            advance ();
            Atom name
        | Some (TPid k) ->
            (* a bare pN in formula position is an atom named "pN" *)
            advance ();
            Atom ("p" ^ string_of_int k)
        | _ -> raise (Parse_error "expected a formula")
      in
      try
        let f = parse_implies () in
        match !toks with
        | [] -> Ok f
        | _ -> Error "trailing tokens after formula"
      with Parse_error e -> Error e)

(* ---------------------------------------------------------------- printer *)

let print_pset = function
  | [ k ] -> "p" ^ string_of_int k
  | ks -> "{" ^ String.concat "," (List.map (fun k -> "p" ^ string_of_int k) ks) ^ "}"

let rec print = function
  | True -> "true"
  | False -> "false"
  | Atom a -> a
  | Not f -> "~" ^ print_atomic f
  | And (a, b) -> print_atomic a ^ " & " ^ print_atomic b
  | Or (a, b) -> print_atomic a ^ " | " ^ print_atomic b
  | Implies (a, b) -> print_atomic a ^ " -> " ^ print_atomic b
  | Know (ps, f) -> "K " ^ print_pset ps ^ " " ^ print_atomic f
  | Sure (ps, f) -> "sure " ^ print_pset ps ^ " " ^ print_atomic f
  | Everyone (ps, f) -> "E " ^ print_pset ps ^ " " ^ print_atomic f
  | Someone (ps, f) -> "S " ^ print_pset ps ^ " " ^ print_atomic f
  | Common f -> "CK " ^ print_atomic f
  | Ag f -> "AG " ^ print_atomic f
  | Ef f -> "EF " ^ print_atomic f
  | Af f -> "AF " ^ print_atomic f
  | Eg f -> "EG " ^ print_atomic f
  | Ax f -> "AX " ^ print_atomic f
  | Ex f -> "EX " ^ print_atomic f

and print_atomic f =
  match f with
  | True | False | Atom _ -> print f
  | _ -> "(" ^ print f ^ ")"

let pp fmt f = Format.pp_print_string fmt (print f)

let atoms f =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Atom a ->
        if not (Hashtbl.mem seen a) then begin
          Hashtbl.add seen a ();
          out := a :: !out
        end
    | True | False -> ()
    | Not f | Know (_, f) | Sure (_, f) | Everyone (_, f) | Someone (_, f)
    | Common f | Ag f | Ef f | Af f | Eg f | Ax f | Ex f ->
        go f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go a;
        go b
  in
  go f;
  List.rev !out

(* ------------------------------------------------------- nest matching *)

type nest_level = { op : [ `Know | `Everyone | `Someone ]; pset : pset_syntax }
type nest = { levels : nest_level list; body : t; subformula : t }

(* Maximal knowledge nests: every chain of directly nested K/E/S
   operators, outermost level first, down to the first non-K/E/S
   subformula (the body). [sure] and [CK] are not levels — the gain/loss
   chain theorems (Theorems 4-6) are about [knows]; a [sure] level is
   not veridical and the sure-variant of Theorem 4 is weaker, so a nest
   stops there and the sure/CK subformula becomes a body in its own
   right (its operand is scanned for further nests). *)
let nests formula =
  let out = ref [] in
  let level_of = function
    | Know (ps, f) -> Some ({ op = `Know; pset = ps }, f)
    | Everyone (ps, f) -> Some ({ op = `Everyone; pset = ps }, f)
    | Someone (ps, f) -> Some ({ op = `Someone; pset = ps }, f)
    | _ -> None
  in
  let rec collect_nest acc sub f =
    match level_of f with
    | Some (lvl, inner) -> collect_nest (lvl :: acc) sub inner
    | None ->
        out := { levels = List.rev acc; body = f; subformula = sub } :: !out;
        scan f
  and scan f =
    match level_of f with
    | Some _ -> collect_nest [] f f
    | None -> (
        match f with
        | True | False | Atom _ -> ()
        | Not f | Sure (_, f) | Common f | Ag f | Ef f | Af f | Eg f | Ax f
        | Ex f ->
            scan f
        | And (a, b) | Or (a, b) | Implies (a, b) ->
            scan a;
            scan b
        | Know _ | Everyone _ | Someone _ -> assert false)
  in
  scan formula;
  List.rev !out

let contains_common formula =
  let rec go = function
    | Common _ -> true
    | True | False | Atom _ -> false
    | Not f | Know (_, f) | Sure (_, f) | Everyone (_, f) | Someone (_, f)
    | Ag f | Ef f | Af f | Eg f | Ax f | Ex f ->
        go f
    | And (a, b) | Or (a, b) | Implies (a, b) -> go a || go b
  in
  go formula

(* Pointwise evaluation for the knowledge- and temporal-free fragment:
   the value of such a formula at one computation needs no universe.
   [None] as soon as a knowledge or temporal operator (whose value
   quantifies over other computations) appears, or an atom is unbound. *)
let eval_at ~env formula z =
  let rec go = function
    | True -> Some true
    | False -> Some false
    | Atom a -> Option.map (fun p -> Prop.eval p z) (env a)
    | Not f -> Option.map not (go f)
    | And (a, b) -> (
        match (go a, go b) with
        | Some a, Some b -> Some (a && b)
        | _ -> None)
    | Or (a, b) -> (
        match (go a, go b) with
        | Some a, Some b -> Some (a || b)
        | _ -> None)
    | Implies (a, b) -> (
        match (go a, go b) with
        | Some a, Some b -> Some ((not a) || b)
        | _ -> None)
    | Know _ | Sure _ | Everyone _ | Someone _ | Common _ | Ag _ | Ef _
    | Af _ | Eg _ | Ax _ | Ex _ ->
        None
  in
  go formula

(* ---------------------------------------------------------------- eval *)

let ( let* ) = Result.bind

let eval u ~env formula =
  let nprocs = Spec.n (Universe.spec u) in
  let pset_of ks =
    if List.for_all (fun k -> k >= 0 && k < nprocs) ks then
      Ok (Pset.of_list (List.map Pid.of_int ks))
    else Error (Printf.sprintf "process id out of range (system has %d)" nprocs)
  in
  (* temporal subformulas compile through Temporal; epistemic and
     boolean ones directly to Props. We interleave by evaluating to a
     Prop at every level (Temporal.check gives extents, wrapped back). *)
  let of_temporal tf = Prop.of_extent u "tmp" (Temporal.check u tf) in
  let rec go = function
    | True -> Ok Prop.tt
    | False -> Ok Prop.ff
    | Atom a -> (
        match env a with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unbound atom %S" a))
    | Not f ->
        let* p = go f in
        Ok (Prop.not_ p)
    | And (a, b) ->
        let* pa = go a in
        let* pb = go b in
        Ok (Prop.and_ pa pb)
    | Or (a, b) ->
        let* pa = go a in
        let* pb = go b in
        Ok (Prop.or_ pa pb)
    | Implies (a, b) ->
        let* pa = go a in
        let* pb = go b in
        Ok (Prop.implies pa pb)
    | Know (ks, f) ->
        let* ps = pset_of ks in
        let* p = go f in
        Ok (Knowledge.knows u ps p)
    | Sure (ks, f) ->
        let* ps = pset_of ks in
        let* p = go f in
        Ok (Knowledge.sure u ps p)
    | Everyone (ks, f) ->
        let* ps = pset_of ks in
        let* p = go f in
        Ok (Group.everyone u ps p)
    | Someone (ks, f) ->
        let* ps = pset_of ks in
        let* p = go f in
        Ok (Group.someone u ps p)
    | Common f ->
        let* p = go f in
        Ok (Common_knowledge.common u p)
    | Ag f ->
        let* p = go f in
        Ok (of_temporal (Temporal.ag (Temporal.atom p)))
    | Ef f ->
        let* p = go f in
        Ok (of_temporal (Temporal.ef (Temporal.atom p)))
    | Af f ->
        let* p = go f in
        Ok (of_temporal (Temporal.af (Temporal.atom p)))
    | Eg f ->
        let* p = go f in
        Ok (of_temporal (Temporal.eg (Temporal.atom p)))
    | Ax f ->
        let* p = go f in
        Ok (of_temporal (Temporal.ax (Temporal.atom p)))
    | Ex f ->
        let* p = go f in
        Ok (of_temporal (Temporal.ex (Temporal.atom p)))
  in
  go formula

let check u ~env formula =
  let* p = eval u ~env formula in
  let witness =
    Universe.fold
      (fun _ z acc ->
        match acc with
        | Some _ -> acc
        | None -> if Prop.eval p z then None else Some z)
      u None
  in
  match witness with None -> Ok `Valid | Some z -> Ok (`Fails_at z)
