(* Shift every pid mentioned in an event by [delta] — used to translate
   a composite-system local history back into component coordinates. *)
let shift_msg delta (m : Msg.t) =
  Msg.make
    ~src:(Pid.of_int (Pid.to_int m.Msg.src + delta))
    ~dst:(Pid.of_int (Pid.to_int m.Msg.dst + delta))
    ~seq:m.Msg.seq ~payload:m.Msg.payload

let shift_event delta (e : Event.t) =
  let pid = Pid.of_int (Pid.to_int e.Event.pid + delta) in
  match e.Event.kind with
  | Event.Send m -> Event.send ~pid ~lseq:e.Event.lseq (shift_msg delta m)
  | Event.Receive m -> Event.receive ~pid ~lseq:e.Event.lseq (shift_msg delta m)
  | Event.Internal tag -> Event.internal ~pid ~lseq:e.Event.lseq tag

let shift_intent delta ~limit ~sender = function
  | Spec.Send_to (dst, payload) ->
      let d = Pid.to_int dst + delta in
      if d < fst limit || d >= snd limit then
        invalid_arg
          (Printf.sprintf
             "Spec_algebra.parallel: component addresses outside itself (p%d \
              sends %S to p%d, outside its component's pids %d..%d)"
             (Pid.to_int sender) payload (Pid.to_int dst) (fst limit - delta)
             (snd limit - delta - 1));
      Spec.Send_to (Pid.of_int d, payload)
  | (Spec.Recv_any | Spec.Recv_from _ | Spec.Recv_if _ | Spec.Do _) as i -> (
      match i with
      | Spec.Recv_from src -> Spec.Recv_from (Pid.of_int (Pid.to_int src + delta))
      | other -> other)

let parallel a b =
  let na = Spec.n a and nb = Spec.n b in
  Spec.make ~n:(na + nb) (fun p history ->
      let i = Pid.to_int p in
      if i < na then
        (* histories are already in component coordinates for a *)
        List.map (shift_intent 0 ~limit:(0, na) ~sender:p) (Spec.rule_of a p history)
      else
        let local = List.map (shift_event (-na)) history in
        let cp = Pid.of_int (i - na) in
        Spec.rule_of b cp local
        |> List.map (shift_intent na ~limit:(na, na + nb) ~sender:cp))

let restrict s keep =
  Spec.make ~n:(Spec.n s) (fun p history ->
      List.filter (keep p) (Spec.rule_of s p history))

let bound_events s k =
  Spec.make ~n:(Spec.n s) (fun p history ->
      if List.length history >= k then [] else Spec.rule_of s p history)

let rename_payloads s f =
  Spec.make ~n:(Spec.n s) (fun p history ->
      (* translate the history's send/receive payloads back through f?
         Renaming is outward-only: the component sees the renamed
         payloads, so rules that match on their own payloads must be
         written against the renamed values. We keep the simple
         semantics: rules receive the raw (renamed) history and their
         Send_to intents are mapped through [f]. *)
      List.map
        (function
          | Spec.Send_to (dst, payload) -> Spec.Send_to (dst, f payload)
          | other -> other)
        (Spec.rule_of s p history))
