(** System computations (§2).

    A trace is a finite sequence of events. It is a {e system
    computation} when (1) every process's projection is one of that
    process's computations and (2) every receive is preceded by its
    corresponding send. Condition (2) plus per-process sequencing is
    intrinsic well-formedness and is checked by {!well_formed};
    condition (1) depends on a system specification and is checked by
    {!Spec.valid}.

    Traces are persistent; extension at the right end ([snoc]) is O(1),
    which is what universe enumeration and the computation-extension
    principle (§3.4) need. *)

type t

val empty : t
val snoc : t -> Event.t -> t
val of_list : Event.t list -> t
val to_list : t -> Event.t list
(** Events in execution order. *)

val length : t -> int
val is_empty : t -> bool
val last : t -> Event.t option
val nth : t -> int -> Event.t
(** [nth z i] is the [i]-th event (0-based, execution order). Raises
    [Invalid_argument] if out of bounds. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** O(1): a structural hash of the ordered event sequence, cached inside
    the trace and maintained incrementally by {!snoc}/{!of_list}.
    [equal a b] implies [hash a = hash b]. *)

val proj : t -> Pid.t -> Event.t list
(** [proj z p] is [z]p — the subsequence of events on [p] (§2). *)

val proj_set : t -> Pset.t -> Event.t list
(** [proj_set z ps] is the subsequence of events on any process in [ps]. *)

val local_length : t -> Pid.t -> int
(** [local_length z p = List.length (proj z p)], without building it. *)

val send_count : t -> Pid.t -> int
(** Number of send events on [p] in [z] — the next message's [seq]. *)

val events_on : t -> Pset.t -> Event.t list
(** Alias of {!proj_set}. *)

val mem : t -> Event.t -> bool

val is_prefix : t -> t -> bool
(** [is_prefix x z] is the paper's [x ≤ z]. *)

val suffix : prefix:t -> t -> Event.t list
(** [suffix ~prefix:x z] is the paper's [(x, z)] — the suffix of [z]
    after removing the prefix [x]. Raises [Invalid_argument] if [x] is
    not a prefix of [z]. *)

val append : t -> Event.t list -> t
(** [append z es] is the concatenation [(z; es)]. *)

val sent : t -> Msg.t list
(** Messages sent in [z], in send order. *)

val received : t -> Msg.t list
(** Messages received in [z], in receive order. *)

val in_flight : t -> Msg.t list
(** Messages sent but not yet received in [z], in send order. *)

val well_formed : t -> bool
(** Intrinsic well-formedness: per-process [lseq]s run 0,1,2,…; message
    keys [(src,seq)] are sent at most once and consistent with the
    sender's send count; every receive is preceded by its corresponding
    send; no message is received twice. *)

val well_formed_error : t -> string option
(** [None] if well-formed, otherwise a human-readable reason. *)

val permutation_of : t -> t -> bool
(** [permutation_of x y] is [x \[D\] y] for any [D] covering both — the
    projections of every process agree (hence one is a permutation of
    the other, §3). *)

val remove : t -> Event.t -> t
(** [remove z e] is [(z − e)]: [z] with the (unique) occurrence of [e]
    deleted, as used by the computation-extension principle (§3.4).
    Raises [Invalid_argument] if [e] does not occur in [z]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
