let knows_ext u ps ext =
  Hpl_obs.span "knowledge.knows_ext"
    ~args:(fun () -> [ ("pset", Pset.to_string ps) ])
  @@ fun () ->
  let classes = Universe.classes u ps in
  Hpl_obs.count "knowledge.classes_scanned" (Array.length classes);
  let out = Bitset.create (Universe.size u) in
  Array.iter
    (fun cls -> if Bitset.subset cls ext then Bitset.union_into out cls)
    classes;
  out

let knows_ext_naive u ps ext =
  let size = Universe.size u in
  Bitset.of_pred size (fun i ->
      let x = Universe.comp u i in
      let ok = ref true in
      Universe.iter
        (fun j y ->
          if Isomorphism.iso x y ps && not (Bitset.mem ext j) then ok := false)
        u;
      !ok)

(* -- symmetry-aware evaluation ----------------------------------------

   On a symmetry-reduced universe (DESIGN.md §10) the stored
   computations are orbit representatives, but the paper's quantifier
   "for all y: x [P] y : b at y" still ranges over the full computation
   set — i.e. over every permuted image π·(comp j), π in the group.
   Bucketing the verdict of [b] over all (j, π) by the [P]-projection
   of π·(comp j) answers, per bucket, whether every member of that
   [P]-class satisfies [b]; a representative knows [b] iff the bucket
   of its own (identity) projection is all-true. [b] is always
   evaluated at concrete computations, so this is exact for arbitrary
   — even asymmetric — predicates. *)

let knows_sym u g ps b =
  let size = Universe.size u in
  let perms = Array.of_list (Symmetry.elements g) in
  let n = Symmetry.degree g in
  let sel =
    Array.of_list (List.rev (Pset.fold (fun p acc -> Pid.to_int p :: acc) ps []))
  in
  Hpl_obs.count "knowledge.orbit_expansions" (size * Array.length perms);
  let all_true : bool Symmetry.KeyTbl.t = Symmetry.KeyTbl.create (4 * size) in
  let id_keys = Array.make size ([||] : Symmetry.key) in
  for i = 0 to size - 1 do
    let z = Universe.comp u i in
    Array.iteri
      (fun k pi ->
        let y = if k = 0 then z else Symmetry.permute_trace pi z in
        let pv = Symmetry.proj_vector n y in
        let key = Array.map (fun q -> pv.(q)) sel in
        if k = 0 then id_keys.(i) <- key;
        let v = Prop.eval b y in
        match Symmetry.KeyTbl.find_opt all_true key with
        | None -> Symmetry.KeyTbl.add all_true key v
        | Some true -> if not v then Symmetry.KeyTbl.replace all_true key false
        | Some false -> ())
      perms
  done;
  Bitset.of_pred size (fun i -> Symmetry.KeyTbl.find all_true id_keys.(i))

let knows_prop_ext u ps b =
  match Universe.symmetry u with
  | Some g when not (Symmetry.is_trivial g) ->
      Hpl_obs.span "knowledge.knows_sym"
        ~args:(fun () -> [ ("pset", Pset.to_string ps) ])
      @@ fun () -> knows_sym u g ps b
  | _ -> knows_ext u ps (Prop.extent u b)

let knows u ps b =
  let ext = knows_prop_ext u ps b in
  Prop.of_extent u
    (Format.asprintf "%a knows %s" Pset.pp ps (Prop.name b))
    ext

let knows_p u p b = knows u (Pset.singleton p) b

let nested u psets b = List.fold_right (fun ps acc -> knows u ps acc) psets b

let holds_at _u b x = Prop.eval b x

let sure u ps b =
  let kb = Prop.extent u (knows u ps b) in
  let knb = Prop.extent u (knows u ps (Prop.not_ b)) in
  Prop.of_extent u
    (Format.asprintf "%a sure %s" Pset.pp ps (Prop.name b))
    (Bitset.union kb knb)

let unsure u ps b = Prop.not_ (sure u ps b)

(* -- robustness under faults ----------------------------------------- *)

type verdict = Robust | Degraded | Destroyed | Vacuous

type provenance = Exact | Bound

type robustness = {
  verdict : verdict;
  provenance : provenance;
  baseline_hits : int;
  baseline_size : int;
  faulty_hits : int;
  faulty_size : int;
  baseline_status : Universe.status;
  faulty_status : Universe.status;
}

let verdict_to_string = function
  | Robust -> "robust"
  | Degraded -> "degraded"
  | Destroyed -> "destroyed"
  | Vacuous -> "vacuous"

let provenance_to_string = function Exact -> "exact" | Bound -> "bound"

let pp_robustness fmt r =
  Format.fprintf fmt "%s (fault-free: %d/%d%s; faulty: %d/%d%s)%s"
    (verdict_to_string r.verdict) r.baseline_hits r.baseline_size
    (match r.baseline_status with
    | Universe.Complete -> ""
    | Universe.Truncated _ -> " truncated")
    r.faulty_hits r.faulty_size
    (match r.faulty_status with
    | Universe.Complete -> ""
    | Universe.Truncated _ -> " truncated")
    (match r.provenance with
    | Exact -> ""
    | Bound -> "  [bound: truncated universe]")

let robust_under ?(mode = `Canonical) ?(budget = Universe.no_budget)
    ?faulty_depth ?(view = Fun.id) spec ~transform ~depth ps b =
  let u0 = Universe.enumerate ~mode ~budget spec ~depth in
  let faulty_depth = Option.value faulty_depth ~default:depth in
  let u1 = Universe.enumerate ~mode ~budget (transform spec) ~depth:faulty_depth in
  (* [b] is written against the fault-free system; [view] translates a
     faulty computation back to its fault-free observation first *)
  let b' = Prop.make (Prop.name b) (fun z -> Prop.eval b (view z)) in
  let hits u bb = Bitset.cardinal (knows_ext u ps (Prop.extent u bb)) in
  let baseline_hits = hits u0 b and faulty_hits = hits u1 b' in
  let baseline_size = Universe.size u0 and faulty_size = Universe.size u1 in
  let verdict =
    if baseline_hits = 0 then Vacuous
    else if faulty_hits = 0 then Destroyed
    else if
      (* compare prevalence as exact rationals: hits1/size1 vs hits0/size0 *)
      faulty_hits * baseline_size >= baseline_hits * faulty_size
    then Robust
    else Degraded
  in
  let provenance =
    match (Universe.status u0, Universe.status u1) with
    | Universe.Complete, Universe.Complete -> Exact
    | _ -> Bound
  in
  {
    verdict;
    provenance;
    baseline_hits;
    baseline_size;
    faulty_hits;
    faulty_size;
    baseline_status = Universe.status u0;
    faulty_status = Universe.status u1;
  }

module Laws = struct
  let ext_knows u ps b = knows_ext u ps (Prop.extent u b)

  let fact1_class_invariant u ps b =
    let k = ext_knows u ps b in
    let ids = Universe.pset_class_ids u ps in
    let ok = ref true in
    Universe.iter
      (fun i _ ->
        Universe.iter
          (fun j _ ->
            if ids.(i) = ids.(j) && Bitset.mem k i <> Bitset.mem k j then
              ok := false)
          u)
      u;
    !ok

  let fact3_monotone_union u p q b =
    Bitset.subset (ext_knows u p b) (ext_knows u (Pset.union p q) b)

  let fact4_veridical u ps b = Bitset.subset (ext_knows u ps b) (Prop.extent u b)

  let fact5_total u ps b =
    let k = ext_knows u ps b in
    let n = Universe.size u in
    Bitset.equal (Bitset.create_full n) (Bitset.union k (Bitset.complement k))

  let fact6_conjunction u ps b b' =
    Bitset.equal
      (Bitset.inter (ext_knows u ps b) (ext_knows u ps b'))
      (ext_knows u ps (Prop.and_ b b'))

  let fact7_disjunction u ps b b' =
    Bitset.subset
      (Bitset.union (ext_knows u ps b) (ext_knows u ps b'))
      (ext_knows u ps (Prop.or_ b b'))

  let fact8_consistency u ps b =
    Bitset.is_empty
      (Bitset.inter (ext_knows u ps (Prop.not_ b)) (ext_knows u ps b))

  let fact9_closure u ps b b' =
    let valid_implication =
      Bitset.subset (Prop.extent u b) (Prop.extent u b')
    in
    (not valid_implication)
    || Bitset.subset (ext_knows u ps b) (ext_knows u ps b')

  let fact10_positive_introspection u ps b =
    let k = ext_knows u ps b in
    Bitset.equal (knows_ext u ps k) k

  let fact11_negative_introspection u ps b =
    let nk = Bitset.complement (ext_knows u ps b) in
    Bitset.equal (knows_ext u ps nk) nk

  let fact12_constants u ps c =
    let k = ext_knows u ps (Prop.const c) in
    if c then Bitset.equal k (Bitset.create_full (Universe.size u))
    else Bitset.is_empty k
end
