(** Process-permutation symmetry.

    Registry protocols with interchangeable processes (rings under
    rotation, star/quorum members under swaps) induce automorphisms of
    the specification: pid permutations [π] under which the computation
    set is closed. Enumeration can then store one representative per
    {e orbit} of [\[D\]]-classes instead of one per class — the
    symmetry half of the reduction layer (DESIGN.md §10).

    A permutation is an [int array] [a] with [a.(i)] the image of pid
    [i]. Groups are materialized explicitly (closure of the declared
    generators); registry symmetry groups are tiny, so the explicit
    representation keeps orbit computations simple and deterministic. *)

type perm = int array

val check : n:int -> perm -> unit
(** Raises [Invalid_argument] unless the array is a permutation of
    [0 .. n-1] of length [n]. *)

val identity : int -> perm
val is_identity : perm -> bool

val rotation : int -> perm
(** [rotation n] maps [i ↦ i+1 mod n] — the ring rotation. *)

val transposition : int -> int -> int -> perm
(** [transposition n a b] swaps [a] and [b], fixing everything else. *)

val cycle : int -> int list -> perm
(** [cycle n members] cyclically permutes [members] (each to the next,
    the last to the first), fixing all other pids — e.g.
    [cycle n [1; …; n-1]] rotates the members of a star, fixing the
    hub. *)

val compose : perm -> perm -> perm
(** [compose a b] is [a ∘ b] (apply [b] first). *)

val inverse : perm -> perm
val perm_equal : perm -> perm -> bool

val to_string : perm -> string
(** Disjoint-cycle notation, e.g. ["(0 1 2)"]; ["id"] for the
    identity. *)

(** {2 Groups} *)

type group

val of_generators : ?max_order:int -> n:int -> perm list -> group
(** Closure of the generators under composition. The identity is always
    element 0. If the closure would exceed [max_order] (default 10080 =
    7!·2), trailing generators are dropped until it fits — any subgroup
    gives a sound, merely weaker, reduction — and {!complete} reports
    the truncation. Raises [Invalid_argument] if a generator is not a
    permutation of [0 .. n-1]. *)

val trivial_group : int -> group
val order : group -> int
val is_trivial : group -> bool
val degree : group -> int
(** The number of processes the group acts on. *)

val complete : group -> bool
(** False when {!of_generators} had to drop generators. *)

val elements : group -> perm list
(** All elements, identity first. *)

val index_of : group -> perm -> int option

(** {2 Action on the model} *)

val apply : perm -> Pid.t -> Pid.t

val permute_msg : perm -> Msg.t -> Msg.t
(** Renames [src] and [dst]; [seq] and [payload] are label-independent
    (the sequence number counts the sender's sends, which renaming
    preserves). *)

val permute_event : perm -> Event.t -> Event.t
val permute_trace : perm -> Trace.t -> Trace.t
(** For an automorphism [π] of the spec, [permute_trace π z] is again a
    system computation with the same event order. *)

(** {2 Orbit keys} *)

val proj_vector : int -> Trace.t -> Event.t list array
(** Per-process projections, in one pass, each component newest-first
    (extension = cons). Two computations are [\[D\]]-equivalent iff
    their vectors are equal. *)

type key = Event.t list array

val orbit_key : group -> Trace.t -> key
(** The minimum over the group of the renamed projection vectors of
    [z]: equal for [x] and [y] iff [x] is interleaving-equivalent to
    [π·y] for some group element [π]. This is the canonical form
    symmetry-reduced enumeration interns. *)

val orbit_key_witness : group -> Trace.t -> key * perm
(** The key together with a minimizing [σ]: the key is the projection
    vector of [σ·z]. *)

val equal_key : key -> key -> bool
val compare_key : key -> key -> int
val hash_key : key -> int

module KeyTbl : Hashtbl.S with type key = key

(** {2 Validation} *)

val is_automorphism : ?depth:int -> ?max_states:int -> Spec.t -> perm -> bool
(** Bounded equivariance probe: checks [enabled (π·z) = π·(enabled z)]
    over every computation up to [depth] (default 4), visiting at most
    [max_states] (default 20000) interleavings. By induction this is
    exactly closure of the depth-bounded computation set under [π]; the
    property tests cross-validate the unbounded claim per protocol. *)
