(** Bounded computation universes.

    The paper's definitions quantify over all system computations ("for
    all y: x \[P\] y : b at y"). For a finite system we make those
    quantifiers executable by enumerating every computation up to a
    depth bound.

    Two modes:
    - [`Full] enumerates every computation (every interleaving);
    - [`Canonical] enumerates one representative per [\[D\]]-equivalence
      class — the lexicographically least linearization of the induced
      event partial order. Since predicates are required to be
      interleaving-invariant ([x \[D\] y ⇒ b at x = b at y], §4.1) and
      [x \[P\] y] depends only on projections, evaluating knowledge over
      canonical representatives is exact while the universe is usually
      exponentially smaller (ablation P2 in DESIGN.md).

    A universe indexes its computations [0 .. size-1] and precomputes,
    per process, the partition of indices by local computation; this
    is what makes [knows] evaluation linear in the universe size. *)

type mode = [ `Full | `Canonical ]

type budget = { max_states : int option; max_seconds : float option }
(** Resource ceiling for {!enumerate}. Fault transformers multiply
    branching, so an unbounded enumeration of a fault-blown state space
    can exhaust memory or wall-clock; a budget turns that failure mode
    into graceful degradation — a valid, prefix-closed universe plus a
    {!status} saying it is incomplete. *)

val budget : ?max_states:int -> ?max_seconds:float -> unit -> budget
(** Smart constructor. Raises [Invalid_argument] on [max_states < 1] or
    [max_seconds <= 0]. Omitted fields are unlimited. *)

val no_budget : budget

type trunc_reason = Max_states of int | Max_seconds of float

type status = Complete | Truncated of trunc_reason

val reason_to_string : trunc_reason -> string

type t

val enumerate :
  ?mode:mode ->
  ?domains:int ->
  ?budget:budget ->
  ?reduce:Reduction.t ->
  Spec.t ->
  depth:int ->
  t
(** [enumerate spec ~depth] explores breadth-first from the empty
    computation. Default mode is [`Canonical].

    [reduce] (default {!Reduction.none}) applies the reduction layer
    (DESIGN.md §10); requires [`Canonical] mode. With a symmetry group
    the universe stores one representative per {e orbit} of
    [\[D\]]-classes: {!find} resolves any computation to its orbit's
    representative, knowledge/CK/temporal operators quantify over the
    orbit expansion automatically, and plain {!Prop.extent} ranges over
    representatives only. The partial-order half is bit-identical to the
    unreduced enumeration, only faster.

    [domains] (default 1) expands each BFS level in parallel across
    that many stdlib domains. The result is bit-identical to the
    sequential run for any [domains]: workers only compute candidate
    extensions, and all state (computation indices, class-id interning)
    is merged sequentially in frontier order. Raises [Invalid_argument]
    if [domains < 1].

    [budget] (default {!no_budget}) bounds the enumeration. When a
    ceiling is hit the BFS stops cleanly and the universe carries
    [Truncated reason] as its {!status}; the stored computations are
    still prefix-closed (children are only kept after their parent), so
    every query below remains sound — it just quantifies over fewer
    computations than the depth bound implies. [max_states] truncation
    is deterministic (checks happen in the sequential merge, in frontier
    order, for any [domains]); [max_seconds] is wall-clock dependent by
    nature and detected between parent expansions. *)

val spec : t -> Spec.t
val mode : t -> mode
val depth : t -> int

val reduction : t -> Reduction.t
val symmetry : t -> Symmetry.group option
(** The group the universe was reduced under, if any. *)

val status : t -> status
(** [Complete] unless a {!budget} ceiling stopped the enumeration. A
    truncated universe underapproximates: [knows]/CK verdicts computed
    on it are relative to the explored prefix of the state space. *)

val size : t -> int

val comp : t -> int -> Trace.t
(** [comp u i] is computation number [i]. *)

val sample : t -> choose:(int -> int) -> Trace.t
(** [sample u ~choose] draws one stored computation: [choose k] must
    return an index in [\[0, k)] where [k = size u]. With a uniform
    [choose] this samples the stored computations uniformly — the hook
    the Monte Carlo layer uses for small-universe resampling. Raises
    [Invalid_argument] on an empty universe or an out-of-range
    choice. *)

val index : t -> Trace.t -> int option
(** Exact lookup of a trace (as stored — canonical form in
    [`Canonical] mode). *)

val find : t -> Trace.t -> int option
(** Like {!index} but canonicalizes first in [`Canonical] mode, so any
    valid interleaving of a stored class is found. On a
    symmetry-reduced universe the lookup goes through the orbit key, so
    any interleaving of any permuted image of a stored class is found. *)

val find_orbit : t -> Trace.t -> (int * Symmetry.perm) option
(** [find_orbit u z = Some (i, ρ)]: [z] is interleaving-equivalent to
    [ρ · comp u i]. On an unreduced universe [ρ] is the identity and
    this is {!find}. This is the bridge that makes exact evaluation of
    arbitrary (even asymmetric) predicates possible on a reduced
    universe: evaluate at the concrete computation [ρ · comp u i]. *)

val find_exn : t -> Trace.t -> int
(** @raise Not_found when the trace's class is outside the universe
    (e.g. longer than [depth]). *)

val canon : t -> Trace.t -> Trace.t
(** [canon u z] is the canonical (lexicographically least) linearization
    of [z]'s event partial order. Identity in [`Full] mode semantics:
    still computes the canonical form, callers in full mode rarely need
    it. *)

val iter : (int -> Trace.t -> unit) -> t -> unit
val fold : (int -> Trace.t -> 'a -> 'a) -> t -> 'a -> 'a

val class_ids : t -> Pid.t -> int array
(** [class_ids u p] assigns to each computation index the id of its
    [\[p\]]-class: [x \[p\] y ⟺ ids.(ix) = ids.(iy)]. *)

val pset_class_ids : t -> Pset.t -> int array
(** Same for a process set [P] (intersection of the per-process
    partitions); memoized per set. For the empty set all computations
    share class 0, matching [x \[{}\] y] for all x, y. *)

val class_members : t -> Pset.t -> int -> Bitset.t
(** [class_members u ps i] is the set of indices [\[P\]]-equivalent to
    [i] (always contains [i]). *)

val classes : t -> Pset.t -> Bitset.t array
(** All [\[P\]]-classes, indexed by class id; memoized. *)

val prefixes_of : t -> int -> int list
(** Indices of all stored computations that are prefixes of computation
    [i] (in [`Canonical] mode: whose class representative is a prefix). *)

val serialize : t -> (string, string) result
(** Compact binary body of the universe's interned-projection
    representation: computation [i] is stored as (parent index, one
    event) with payloads/tags going through a first-occurrence string
    table, exploiting prefix-closure — no trace is written twice. The
    spec itself is {e not} stored; pair the body with a cache key that
    pins down (protocol, params, depth, faults, reduce, mode) and hand
    the same spec back to {!deserialize}. [Error] for symmetry-reduced
    universes, whose orbit tables have no serialized form. The body
    carries no framing — version stamp, key and checksum belong to the
    snapshot container layered on top (DESIGN.md §14). *)

val deserialize : Spec.t -> string -> (t, string) result
(** Rebuild a universe from a {!serialize} body, replaying the stored
    events through the same class-id interning trie in the same
    discovery order, so [class_ids], [find] and every knowledge query
    answer bit-identically to the originally enumerated universe. Every
    read is bounds-checked and cross-validated against derivable
    invariants (parents precede children, [lseq]/[seq] match the parent
    trace, receives consume in-flight messages, the deepest computation
    satisfies [Spec.valid]); any violation — truncation, bit flips, a
    body for a different spec — yields [Error], never a wrong
    universe. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: size, depth, mode. *)
