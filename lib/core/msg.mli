(** Messages.

    The paper assumes "all events and all messages are distinguished; for
    instance, multiple occurrences of the same message are distinguished
    by affixing sequence numbers to them" (§2). We realize this by
    stamping every message with the sender's send count {!field:seq} at
    the moment of sending: within any single system computation the pair
    [(src, seq)] uniquely identifies a message, and two computations in
    which the sender has the same local history produce the {e same}
    message value — exactly what isomorphism ([x \[p\] y], §3) needs. *)

type t = {
  src : Pid.t;  (** sending process *)
  dst : Pid.t;  (** destination process *)
  seq : int;  (** sender's send count when this message was sent *)
  payload : string;  (** application content *)
  mutable h : int;  (** hash memo, [-1] until first {!hash} — use {!hash} *)
}

val make : src:Pid.t -> dst:Pid.t -> seq:int -> payload:string -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val key : t -> Pid.t * int
(** [key m] is [(m.src, m.seq)] — unique within a computation. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
