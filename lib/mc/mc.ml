open Hpl_core
module Rng = Hpl_sim.Rng
module Faults = Hpl_faults.Faults

(* -- exact rationals --------------------------------------------------- *)

module Rat = struct
  type t = { num : int; den : int }

  exception Overflow

  let rec gcd a b = if b = 0 then a else gcd b (a mod b)

  let mul_exn a b =
    if a = 0 || b = 0 then 0
    else
      let r = a * b in
      if r / b <> a then raise Overflow else r

  let add_exn a b =
    let s = a + b in
    if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
      raise Overflow
    else s

  let make num den =
    if den = 0 then invalid_arg "Mc.Rat.make: zero denominator";
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    if num = 0 then { num = 0; den = 1 }
    else
      let g = gcd (abs num) den in
      { num = num / g; den = den / g }

  let zero = { num = 0; den = 1 }
  let one = { num = 1; den = 1 }
  let add x y = make (add_exn (mul_exn x.num y.den) (mul_exn y.num x.den)) (mul_exn x.den y.den)
  let mul x y = make (mul_exn x.num y.num) (mul_exn x.den y.den)

  let div_int x k =
    if k = 0 then invalid_arg "Mc.Rat.div_int: division by zero";
    make x.num (mul_exn x.den k)

  let num x = x.num
  let den x = x.den
  let to_float x = float_of_int x.num /. float_of_int x.den
  let equal x y = x.num = y.num && x.den = y.den

  let compare x y =
    (* num/den in lowest terms with den > 0; cross-multiply, checked *)
    Stdlib.compare (mul_exn x.num y.den) (mul_exn y.num x.den)

  let to_string x =
    if x.den = 1 then string_of_int x.num
    else Printf.sprintf "%d/%d" x.num x.den

  let pp fmt x = Format.pp_print_string fmt (to_string x)
end

(* -- Wilson confidence intervals --------------------------------------- *)

type ci = { lo : float; hi : float; level : float }

(* Acklam's rational approximation to the standard normal quantile. *)
let inv_normal_cdf p =
  let a0 = -3.969683028665376e+01 and a1 = 2.209460984245205e+02 in
  let a2 = -2.759285104469687e+02 and a3 = 1.383577518672690e+02 in
  let a4 = -3.066479806614716e+01 and a5 = 2.506628277459239e+00 in
  let b0 = -5.447609879822406e+01 and b1 = 1.615858368580409e+02 in
  let b2 = -1.556989798598866e+02 and b3 = 6.680131188771972e+01 in
  let b4 = -1.328068155288572e+01 in
  let c0 = -7.784894002430293e-03 and c1 = -3.223964580411365e-01 in
  let c2 = -2.400758277161838e+00 and c3 = -2.549732539343734e+00 in
  let c4 = 4.374664141464968e+00 and c5 = 2.938163982698783e+00 in
  let d0 = 7.784695709041462e-03 and d1 = 3.224671290700398e-01 in
  let d2 = 2.445134137142996e+00 and d3 = 3.754408661907416e+00 in
  let tail q =
    (((((c0 *. q +. c1) *. q +. c2) *. q +. c3) *. q +. c4) *. q +. c5)
    /. ((((d0 *. q +. d1) *. q +. d2) *. q +. d3) *. q +. 1.0)
  in
  let p_low = 0.02425 in
  if p < p_low then tail (sqrt (-2.0 *. log p))
  else if p <= 1.0 -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a0 *. r +. a1) *. r +. a2) *. r +. a3) *. r +. a4) *. r +. a5)
    *. q
    /. (((((b0 *. r +. b1) *. r +. b2) *. r +. b3) *. r +. b4) *. r +. 1.0)
  else -.tail (sqrt (-2.0 *. log (1.0 -. p)))

let z_of_level level =
  if not (level > 0.0 && level < 1.0) then
    invalid_arg "Mc.z_of_level: level must be within (0, 1)";
  inv_normal_cdf (1.0 -. ((1.0 -. level) /. 2.0))

let wilson ~hits ~runs ~level =
  if hits < 0 || runs < 0 || hits > runs then
    invalid_arg "Mc.wilson: need 0 <= hits <= runs";
  if runs = 0 then { lo = 0.0; hi = 1.0; level }
  else
    let z = z_of_level level in
    let n = float_of_int runs in
    let p = float_of_int hits /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z /. denom
      *. sqrt (((p *. (1.0 -. p)) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    { lo = Float.max 0.0 (center -. half); hi = Float.min 1.0 (center +. half); level }

let covers c x = c.lo -. 1e-9 <= x && x <= c.hi +. 1e-9

(* -- configuration ------------------------------------------------------ *)

type config = {
  runs : int;
  depth : int;
  seed : int64;
  level : float;
  peers : int;
  peer_tries : int;
  ck_depth : int;
  base_n : int option;
  windows : (int * int * int list) list;
  max_seconds : float option;
}

let default =
  {
    runs = 10_000;
    depth = 8;
    seed = 1L;
    level = 0.95;
    peers = 12;
    peer_tries = 30;
    ck_depth = 2;
    base_n = None;
    windows = [];
    max_seconds = None;
  }

let check_config cfg =
  if cfg.runs < 1 then invalid_arg "Mc: runs must be >= 1";
  if cfg.depth < 0 then invalid_arg "Mc: negative depth";
  if not (cfg.level > 0.0 && cfg.level < 1.0) then
    invalid_arg "Mc: confidence level must be within (0, 1)";
  if cfg.peers < 1 then invalid_arg "Mc: peers must be >= 1";
  if cfg.peer_tries < 1 then invalid_arg "Mc: peer_tries must be >= 1";
  if cfg.ck_depth < 1 then invalid_arg "Mc: ck_depth must be >= 1";
  List.iter
    (fun (t0, t1, group) ->
      if t0 < 0 || t1 < t0 then invalid_arg "Mc: bad partition window";
      if group = [] then invalid_arg "Mc: empty partition group")
    cfg.windows

(* The walker's candidate filter for partition windows: while the
   global step index sits inside a window, deliveries crossing the
   group boundary are blocked — delayed, not lost. *)
let window_filter ~base_n windows =
  match windows with
  | [] -> None
  | ws ->
      Some
        (fun z e ->
          match Faults.delivery_channel ~n:base_n e with
          | None -> true
          | Some (src, dst) ->
              let step = Trace.length z in
              not
                (List.exists
                   (fun (t0, t1, group) ->
                     step >= t0 && step < t1
                     && List.mem src group <> List.mem dst group)
                   ws))

(* -- estimates ---------------------------------------------------------- *)

type status = Complete | Out_of_time

type estimate = {
  hits : int;
  runs : int;
  requested : int;
  mean : float;
  ci : ci;
  depth : int;
  seed : int64;
  elapsed : float;
  status : status;
}

let pp_estimate fmt e =
  Format.fprintf fmt "%.4f  %g%% CI [%.4f, %.4f]  (hits %d/%d%s)" e.mean
    (100.0 *. e.ci.level) e.ci.lo e.ci.hi e.hits e.runs
    (match e.status with
    | Complete -> ""
    | Out_of_time ->
        Printf.sprintf "; out of time after %d of %d walks" e.runs e.requested)

exception Budget

let one_walk (cfg : config) spec ~filter rng =
  Extension.walk ?filter spec ~choose:(fun k -> Rng.int rng k) ~depth:cfg.depth

(* Judges get the walk endpoint and the walk's own stream (for peer
   sampling), so the whole estimate is a pure function of the seed. *)
let run_estimate cfg spec (judge : Trace.t -> Rng.t -> bool) =
  check_config cfg;
  let base_n = Option.value cfg.base_n ~default:(Spec.n spec) in
  let filter = window_filter ~base_n cfg.windows in
  Hpl_obs.span "mc.estimate"
    ~args:(fun () ->
      [
        ("runs", string_of_int cfg.runs); ("depth", string_of_int cfg.depth);
      ])
  @@ fun () ->
  let rng0 = Rng.create cfg.seed in
  let started = Unix.gettimeofday () in
  let hits = ref 0 and completed = ref 0 in
  let status = ref Complete in
  (try
     for _ = 1 to cfg.runs do
       (match cfg.max_seconds with
       | Some lim when Unix.gettimeofday () -. started > lim -> raise Budget
       | _ -> ());
       let rng = Rng.split rng0 in
       let z = one_walk cfg spec ~filter rng in
       if judge z rng then incr hits;
       incr completed
     done
   with Budget -> status := Out_of_time);
  let elapsed = Unix.gettimeofday () -. started in
  if !Hpl_obs.enabled then begin
    Hpl_obs.count "mc.walks" !completed;
    Hpl_obs.count "mc.hits" !hits;
    if elapsed > 0.0 then
      Hpl_obs.set_gauge "mc.runs_per_sec" (float_of_int !completed /. elapsed)
  end;
  {
    hits = !hits;
    runs = !completed;
    requested = cfg.runs;
    mean =
      (if !completed = 0 then 0.0
       else float_of_int !hits /. float_of_int !completed);
    ci = wilson ~hits:!hits ~runs:!completed ~level:cfg.level;
    depth = cfg.depth;
    seed = cfg.seed;
    elapsed;
    status = !status;
  }

let walks cfg spec =
  check_config cfg;
  let base_n = Option.value cfg.base_n ~default:(Spec.n spec) in
  let filter = window_filter ~base_n cfg.windows in
  let rng0 = Rng.create cfg.seed in
  List.init cfg.runs (fun _ -> one_walk cfg spec ~filter (Rng.split rng0))

let estimate_prop ?(view = Fun.id) cfg spec b =
  run_estimate cfg spec (fun z _rng -> Prop.eval b (view z))

(* -- formula semantics at a walk endpoint -------------------------------- *)

type st = {
  cfg : config;
  spec : Spec.t;
  base_n : int;
  view : Trace.t -> Trace.t;
  env : string -> Prop.t option;
  filter : (Trace.t -> Event.t -> bool) option;
}

let validate_formula ~base_n env f =
  let bad fmt = Printf.ksprintf (fun e -> Error e) fmt in
  let rec go = function
    | Formula.True | Formula.False -> Ok ()
    | Formula.Atom a -> (
        match env a with Some _ -> Ok () | None -> bad "unbound atom %S" a)
    | Formula.Not f | Formula.Common f -> go f
    | Formula.And (f, g) | Formula.Or (f, g) | Formula.Implies (f, g) -> (
        match go f with Ok () -> go g | e -> e)
    | Formula.Know (ps, f)
    | Formula.Sure (ps, f)
    | Formula.Everyone (ps, f)
    | Formula.Someone (ps, f) -> (
        if ps = [] then bad "empty process set"
        else
          match List.find_opt (fun p -> p < 0 || p >= base_n) ps with
          | Some p -> bad "process id p%d out of range (system has %d)" p base_n
          | None -> go f)
    | Formula.Ag _ | Formula.Ef _ | Formula.Af _ | Formula.Eg _
    | Formula.Ax _ | Formula.Ex _ ->
        bad
          "temporal operators are not supported by the sampler (a walk \
           endpoint has no branching structure); use hpl check"
  in
  go f

(* One constrained walk: processes in [ps] replay their exact
   projections of [z] (so an accepted result is [P]-indistinguishable
   from [z] by construction); everyone else walks freely. Rejection
   sampling: None when the walk ends before every pinned event has been
   replayed. *)
let peer st ps z rng =
  let pins =
    List.map
      (fun p -> (p, Array.of_list (Trace.proj z (Pid.of_int p)), ref 0))
      ps
  in
  let pinned_total =
    List.fold_left (fun a (_, arr, _) -> a + Array.length arr) 0 pins
  in
  let budget = max st.cfg.depth (Trace.length z) in
  let target = pinned_total + Rng.int rng (budget - pinned_total + 1) in
  let pin_of pid = List.find_opt (fun (p, _, _) -> p = pid) pins in
  let consumed () =
    List.for_all (fun (_, arr, cur) -> !cur = Array.length arr) pins
  in
  let finish y = if consumed () then Some y else None in
  let rec go y len =
    if len >= target then finish y
    else
      let cands =
        List.filter
          (fun e ->
            (match st.filter with None -> true | Some keep -> keep y e)
            &&
            match pin_of (Pid.to_int e.Event.pid) with
            | None -> true
            | Some (_, arr, cur) ->
                !cur < Array.length arr && Event.equal arr.(!cur) e)
          (Spec.enabled st.spec y)
      in
      match cands with
      | [] -> finish y
      | cands ->
          let e = List.nth cands (Rng.int rng (List.length cands)) in
          (match pin_of (Pid.to_int e.Event.pid) with
          | Some (_, _, cur) -> incr cur
          | None -> ());
          go (Trace.snoc y e) (len + 1)
  in
  go Trace.empty 0

let rec holds st f z rng =
  match f with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Atom a -> (
      match st.env a with
      | Some b -> Prop.eval b (st.view z)
      | None -> false (* unreachable: formulas are validated first *))
  | Formula.Not f -> not (holds st f z rng)
  | Formula.And (f, g) -> holds st f z rng && holds st g z rng
  | Formula.Or (f, g) -> holds st f z rng || holds st g z rng
  | Formula.Implies (f, g) -> (not (holds st f z rng)) || holds st g z rng
  | Formula.Know (ps, f) -> knows st (List.sort_uniq Int.compare ps) f z rng
  | Formula.Sure (ps, f) ->
      let ps = List.sort_uniq Int.compare ps in
      knows st ps f z rng || knows st ps (Formula.Not f) z rng
  | Formula.Everyone (ps, f) ->
      List.for_all
        (fun p -> knows st [ p ] f z rng)
        (List.sort_uniq Int.compare ps)
  | Formula.Someone (ps, f) ->
      List.exists
        (fun p -> knows st [ p ] f z rng)
        (List.sort_uniq Int.compare ps)
  | Formula.Common f ->
      (* E^ck_depth, an upper bound on CK = ∩ₖ Eᵏ over all (real)
         processes *)
      let all = List.init st.base_n Fun.id in
      let rec expand k g =
        if k = 0 then g else expand (k - 1) (Formula.Everyone (all, g))
      in
      holds st (expand st.cfg.ck_depth f) z rng
  | Formula.Ag _ | Formula.Ef _ | Formula.Af _ | Formula.Eg _ | Formula.Ax _
  | Formula.Ex _ ->
      invalid_arg "Mc.holds: temporal operator (validated out earlier)"

and knows st ps f z rng =
  (* veridicality first: z is its own peer *)
  holds st f z rng
  && begin
       let found = ref 0 and tries = ref 0 in
       let refuted = ref false in
       let max_tries = st.cfg.peers * st.cfg.peer_tries in
       while (not !refuted) && !found < st.cfg.peers && !tries < max_tries do
         incr tries;
         match peer st ps z rng with
         | None -> ()
         | Some y ->
             if not (Trace.equal y z) then begin
               incr found;
               if not (holds st f y rng) then refuted := true
             end
       done;
       if !Hpl_obs.enabled then begin
         Hpl_obs.count "mc.peer_walks" !tries;
         Hpl_obs.count "mc.peers_found" !found
       end;
       not !refuted
     end

let formula_state ?(view = Fun.id) (cfg : config) spec ~env =
  let base_n = Option.value cfg.base_n ~default:(Spec.n spec) in
  {
    cfg;
    spec;
    base_n;
    view;
    env;
    filter = window_filter ~base_n cfg.windows;
  }

let estimate_formula ?view cfg spec ~env f =
  check_config cfg;
  let st = formula_state ?view cfg spec ~env in
  match validate_formula ~base_n:st.base_n env f with
  | Error _ as e -> e
  | Ok () -> Ok (run_estimate cfg spec (fun z rng -> holds st f z rng))

(* -- robustness ---------------------------------------------------------- *)

type verdict = Robust | Degraded | Destroyed | Vacuous | Inconclusive

let verdict_to_string = function
  | Robust -> "robust"
  | Degraded -> "degraded"
  | Destroyed -> "destroyed"
  | Vacuous -> "vacuous"
  | Inconclusive -> "inconclusive"

type robustness = {
  verdict : verdict;
  baseline : estimate;
  faulty : estimate;
}

let pp_robustness fmt r =
  Format.fprintf fmt "%s (fault-free: %a; faulty: %a)"
    (verdict_to_string r.verdict) pp_estimate r.baseline pp_estimate r.faulty

let estimate_robust cfg spec ~faulty ?faulty_config ?view ~env f =
  let fcfg = Option.value faulty_config ~default:cfg in
  match estimate_formula { cfg with windows = [] } spec ~env f with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok baseline -> (
      match estimate_formula ?view fcfg faulty ~env f with
      | Error _ as e -> e |> Result.map (fun _ -> assert false)
      | Ok ft ->
          let verdict =
            if baseline.hits = 0 then Vacuous
            else if ft.ci.hi < baseline.ci.lo then
              if ft.hits = 0 then Destroyed else Degraded
            else if ft.mean >= baseline.mean then Robust
            else Inconclusive
          in
          Ok { verdict; baseline; faulty = ft })

(* -- exact μ-prevalence (the cross-validation ground truth) -------------- *)

let exact_prevalence ?(view = Fun.id) ?(windows = []) ?base_n
    ?(max_nodes = 200_000) spec ~depth b =
  if depth < 0 then invalid_arg "Mc.exact_prevalence: negative depth";
  let base_n = Option.value base_n ~default:(Spec.n spec) in
  let filter = window_filter ~base_n windows in
  let keep z = match filter with None -> fun _ -> true | Some k -> k z in
  let nodes = ref 0 in
  let exception Out in
  Hpl_obs.span "mc.exact" ~args:(fun () -> [ ("depth", string_of_int depth) ])
  @@ fun () ->
  let rec go z k =
    incr nodes;
    if !nodes > max_nodes then raise Out;
    let endpoint () = if Prop.eval b (view z) then Rat.one else Rat.zero in
    if k = 0 then endpoint ()
    else
      match List.filter (keep z) (Spec.enabled spec z) with
      | [] -> endpoint ()
      | es ->
          let m = List.length es in
          List.fold_left
            (fun acc e ->
              Rat.add acc (Rat.div_int (go (Trace.snoc z e) (k - 1)) m))
            Rat.zero es
  in
  match go Trace.empty depth with
  | r -> Some r
  | exception Out -> None
  | exception Rat.Overflow -> None

let exact_formula_prevalence ?(view = Fun.id) ?(max_states = 200_000) spec
    ~depth ~env f =
  if depth < 0 then invalid_arg "Mc.exact_formula_prevalence: negative depth";
  let env' name =
    Option.map
      (fun b -> Prop.make (Prop.name b) (fun z -> Prop.eval b (view z)))
      (env name)
  in
  let u =
    Universe.enumerate ~mode:`Full
      ~budget:(Universe.budget ~max_states ())
      spec ~depth
  in
  match Universe.status u with
  | Universe.Truncated _ -> Ok None
  | Universe.Complete -> (
      match Formula.eval u ~env:env' f with
      | Error _ as e -> e |> Result.map (fun _ -> assert false)
      | Ok p ->
          let b = Prop.make "mc-exact" (fun z -> Prop.eval p z) in
          Ok (exact_prevalence ~max_nodes:max_int spec ~depth b))

(* -- cross-validation ---------------------------------------------------- *)

type validation = {
  subject : string;
  atom : string;
  exact : Rat.t;
  est : estimate;
  ok : bool;
}

let pp_validation fmt v =
  Format.fprintf fmt "%s/%s: exact %a (%.4f) vs %a%s" v.subject v.atom Rat.pp
    v.exact (Rat.to_float v.exact) pp_estimate v.est
    (if v.ok then "" else "  ** CI MISS **")

let cross_validate ?(runs = 10_000) ?(depth = 4) ?(seed = 1L) ?(level = 0.95)
    ?(max_nodes = 200_000) ~name spec ~atoms =
  Hpl_obs.span "mc.validate" ~args:(fun () -> [ ("subject", name) ])
  @@ fun () ->
  List.filter_map
    (fun (atom, b) ->
      match exact_prevalence ~max_nodes spec ~depth b with
      | None -> None
      | Some exact ->
          let cfg = { default with runs; depth; seed; level } in
          let est = estimate_prop cfg spec b in
          Some
            { subject = name; atom; exact; est; ok = covers est.ci (Rat.to_float exact) })
    atoms

let cross_validate_registry ?runs ?depth ?seed ?level () =
  let module P = Hpl_protocols.Protocol in
  List.concat_map
    (fun proto ->
      let inst = P.default_instance proto in
      let spec = P.spec_of inst in
      let atoms = P.atoms_of inst in
      cross_validate ?runs ?depth ?seed ?level ~name:(P.instance_name inst)
        spec ~atoms)
    (P.Registry.list ())
