(** Monte Carlo statistical model checking.

    The exact engine ({!Hpl_core.Universe.enumerate}) is the ground
    truth but exponential: with reduction it tops out near depth 9—10,
    and §5's impossibility results (coordinated attack, failure
    detection) live exactly where faults blow the universe up. This
    layer trades certainty for scale: seeded random walks through a
    {!Hpl_core.Spec.t}'s extension relation — fault transformers
    applied first, so every [--faults] scenario works unchanged —
    estimate atom extents, [knows]/common-knowledge prevalence, and
    robustness verdicts as point estimates with Wilson confidence
    intervals, at depths where enumeration is hopelessly Truncated.

    {2 The estimand: schedule measure}

    A random walk picks uniformly among the enabled extensions at every
    step, for [depth] steps or until deadlock. That defines a
    probability measure μ over computations — the {e uniform-scheduler
    measure} — and every estimate here is of the μ-probability that a
    formula holds at the walk's endpoint. This is {b not} the uniform
    distribution over the universe (interleavings with fewer
    scheduling choices are likelier), and the exact side of the
    cross-validation ({!exact_prevalence}) computes the {e same}
    μ-prevalence as a rational by dynamic programming over the
    extension tree, so the estimator is validated against its own
    estimand. The measure is the natural one operationally: it is what
    a memoryless random scheduler produces.

    {2 Knowledge}

    [K P φ] at an endpoint [z] is estimated by {e peer resampling}:
    constrained walks that pin every [P]-process to replay its exact
    projection of [z] (so each accepted peer [y] satisfies [y \[P\] z]
    by construction) while the rest of the system walks freely. If any
    sampled peer refutes [φ], knowledge is refuted — soundly, since the
    peer is a real indistinguishable computation. If no sampled peer
    refutes it, knowledge is reported — this direction is approximate
    and {e upper-biased}: unsampled peers could still refute it. [CK]
    is approximated by [E^k] ([ck_depth] levels of "everyone knows"),
    an upper bound on common knowledge (CK = ∩ₖ Eᵏ) — ideal for
    impossibility demonstrations, where even the generous bound hits
    zero. Temporal operators are rejected: a walk endpoint has no
    branching structure to quantify over.

    Estimates are replayable: the same seed gives bit-identical
    estimates and walk sequences ({!Hpl_sim.Rng.split} derives one
    independent splitmix64 stream per walk). *)

open Hpl_core

(** Exact rationals over [int], normalized, overflow-checked — wide
    enough for μ-prevalences at cross-validation depths (denominators
    divide products of per-step branching factors). *)
module Rat : sig
  type t

  exception Overflow
  (** Raised by arithmetic whose intermediate values leave the [int]
      range. Callers treat it as "no exact value at this depth". *)

  val zero : t
  val one : t

  val make : int -> int -> t
  (** [make num den] normalized; raises [Invalid_argument] on a zero
      denominator. *)

  val add : t -> t -> t
  val mul : t -> t -> t
  val div_int : t -> int -> t
  val num : t -> int
  val den : t -> int
  val to_float : t -> float
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

(** {1 Confidence intervals} *)

type ci = { lo : float; hi : float; level : float }

val z_of_level : float -> float
(** Two-sided normal quantile for a confidence level in (0, 1):
    [z_of_level 0.95 ≈ 1.96]. (Acklam's rational approximation,
    |ε| < 1.2e-9.) *)

val wilson : hits:int -> runs:int -> level:float -> ci
(** Wilson score interval for [hits] successes in [runs] Bernoulli
    trials. Unlike the normal approximation it behaves at the
    boundaries: [hits = 0] gives [lo = 0] with an informative [hi], and
    the interval excludes 1 exactly when [hits < runs]. [runs = 0]
    gives the vacuous [\[0, 1\]]. *)

val covers : ci -> float -> bool
(** [covers c x]: is [x] inside [c] (with a 1e-9 float tolerance)? *)

(** {1 Configuration} *)

type config = {
  runs : int;  (** walks to sample (>= 1) *)
  depth : int;  (** maximum walk length *)
  seed : int64;  (** replay seed; one split stream per walk *)
  level : float;  (** confidence level in (0, 1), e.g. 0.95 *)
  peers : int;  (** peer samples per [K] evaluation *)
  peer_tries : int;
      (** rejection-sampling attempts allowed per requested peer *)
  ck_depth : int;  (** [CK] is approximated by [E^ck_depth] *)
  base_n : int option;
      (** real process count of the fault-free system — pids >= base_n
          are fault daemons; [CK] quantifies over [0..base_n); default
          [Spec.n] of the sampled spec *)
  windows : (int * int * int list) list;
      (** partition windows [(t0, t1, group)] in global {e step-index}
          coordinates: while [t0 <= step < t1], deliveries crossing the
          group boundary are blocked (delayed, not lost — they remain
          in flight and may deliver after the window closes). Usually
          [Faults.Scenario.partition_windows]; pair with a spec
          transformed by [Faults.Scenario.without_partitions]. *)
  max_seconds : float option;
      (** wall-clock budget; on exhaustion the estimate is over the
          walks completed so far, with status {!Out_of_time} *)
}

val default : config
(** 10_000 runs, depth 8, seed 1, level 0.95, 12 peers with 30 tries
    each, [ck_depth] 2, no windows, no time budget. *)

(** {1 Estimates} *)

type status = Complete | Out_of_time

type estimate = {
  hits : int;
  runs : int;  (** walks actually completed (< requested iff out of time) *)
  requested : int;
  mean : float;  (** [hits / runs] *)
  ci : ci;
  depth : int;
  seed : int64;
  elapsed : float;  (** wall-clock seconds *)
  status : status;
}

val pp_estimate : Format.formatter -> estimate -> unit

val walks : config -> Spec.t -> Trace.t list
(** The endpoint computations of the config's walks, in sampling
    order — exactly the samples the estimators visit for the same
    config (walks draw from each per-walk stream before any judging
    does). For determinism tests and inspection; ignores
    [max_seconds]. *)

val estimate_prop : ?view:(Trace.t -> Trace.t) -> config -> Spec.t -> Prop.t -> estimate
(** μ-prevalence of a plain predicate at walk endpoints. [view]
    translates a faulty computation to its fault-free observation
    before the predicate sees it (see {!Hpl_faults.Faults.view}). *)

val estimate_formula :
  ?view:(Trace.t -> Trace.t) ->
  config ->
  Spec.t ->
  env:(string -> Prop.t option) ->
  Formula.t ->
  (estimate, string) result
(** μ-prevalence of an epistemic formula at walk endpoints, with the
    knowledge semantics described above. [Error] on temporal operators,
    unbound atoms, or out-of-range process ids — checked before any
    sampling. *)

(** {1 Robustness} *)

type verdict = Robust | Degraded | Destroyed | Vacuous | Inconclusive

val verdict_to_string : verdict -> string

type robustness = {
  verdict : verdict;
  baseline : estimate;
  faulty : estimate;
}

val pp_robustness : Format.formatter -> robustness -> unit

val estimate_robust :
  config ->
  Spec.t ->
  faulty:Spec.t ->
  ?faulty_config:config ->
  ?view:(Trace.t -> Trace.t) ->
  env:(string -> Prop.t option) ->
  Formula.t ->
  (robustness, string) result
(** The statistical analogue of {!Hpl_core.Knowledge.robust_under}:
    estimate the formula's prevalence on the fault-free spec and on the
    faulty one ([faulty_config] defaults to [config]; give it the
    scaled depth and the scenario windows), then compare at the CI
    level. [Degraded]/[Destroyed] are {e confident} verdicts — the
    faulty interval lies strictly below the baseline interval
    ([Destroyed] additionally saw zero faulty hits); [Robust] means the
    faulty point estimate is no worse (intervals overlapping or
    above); [Inconclusive] means the point estimate dropped but within
    sampling noise — more runs would sharpen it; [Vacuous] means the
    baseline itself never held. *)

(** {1 Exact μ-prevalence and cross-validation} *)

val exact_prevalence :
  ?view:(Trace.t -> Trace.t) ->
  ?windows:(int * int * int list) list ->
  ?base_n:int ->
  ?max_nodes:int ->
  Spec.t ->
  depth:int ->
  Prop.t ->
  Rat.t option
(** The exact μ-measure of the predicate at walk endpoints, as a
    rational: dynamic programming over the extension tree, mirroring
    the walker exactly (same deadlock handling, same window
    filtering). [None] when the tree exceeds [max_nodes] (default
    200_000) or the rationals overflow — "no exact value at this
    depth". Exponential in [depth]; meant for small-depth validation
    only. *)

val exact_formula_prevalence :
  ?view:(Trace.t -> Trace.t) ->
  ?max_states:int ->
  Spec.t ->
  depth:int ->
  env:(string -> Prop.t option) ->
  Formula.t ->
  (Rat.t option, string) result
(** Same measure for a full epistemic formula, with the {e exact}
    knowledge semantics: the universe is enumerated ([`Full] mode, so
    it contains every walk endpoint), the formula compiled against it
    via {!Hpl_core.Formula.eval}, and the DP weighs endpoints by μ.
    [Ok None] when enumeration hits [max_states] (default 200_000).
    Partition windows are not supported here (the exact knowledge
    classes are over the unfiltered universe). Used to test the peer
    estimator's bias direction, not for CI coverage gates. *)

type validation = {
  subject : string;  (** protocol/spec label *)
  atom : string;
  exact : Rat.t;
  est : estimate;
  ok : bool;  (** the estimate's CI covers the exact prevalence *)
}

val pp_validation : Format.formatter -> validation -> unit

val cross_validate :
  ?runs:int ->
  ?depth:int ->
  ?seed:int64 ->
  ?level:float ->
  ?max_nodes:int ->
  name:string ->
  Spec.t ->
  atoms:(string * Prop.t) list ->
  validation list
(** For each atom, compute the exact μ-prevalence at [depth] (default
    4) and a seeded estimate (default 10_000 runs, seed 1, level 0.95),
    and check CI coverage. Atoms whose exact side is unavailable
    (tree or rational overflow) are skipped. Fully deterministic for a
    fixed seed, hence replayable. *)

val cross_validate_registry :
  ?runs:int -> ?depth:int -> ?seed:int64 -> ?level:float -> unit -> validation list
(** {!cross_validate} over every registered protocol's default
    instance — the estimator-vs-exact gate CI runs (the same
    lint-vs-enumerate discipline, aimed at the sampler). *)
