(* One-line diagnostics. The CLI contract (test/cli_errors.sh) is that
   every bad-input path dies with a single stderr line and exit 2;
   [to_string] is that line's body: "file:line:col: message". I/O
   failures that precede any token carry line 0 and render without a
   position.

   A diagnostic may carry a span (start–end positions) instead of a
   point, so multi-token findings — a whole guard, say — can be
   underlined by tooling. [line]/[col] remain the start position, so
   point construction and field access are unchanged; the renderer
   appends the end only when it extends past the start. *)

type t = {
  file : string;
  line : int;
  col : int;
  eline : int;  (* span end, inclusive of the last token; = line/col *)
  ecol : int;  (* for point diagnostics *)
  msg : string;
}

exception Error of t

let make ~file ~pos msg =
  let line = pos.Ast.line and col = pos.Ast.col in
  { file; line; col; eline = line; ecol = col; msg }

let span ~file ~pos ~epos msg =
  let line = pos.Ast.line and col = pos.Ast.col in
  let eline = epos.Ast.line and ecol = epos.Ast.col in
  (* a degenerate span collapses to a point rather than erroring: span
     ends come from token end positions and an empty production can
     place one at its start *)
  if eline < line || (eline = line && ecol <= col) then
    { file; line; col; eline = line; ecol = col; msg }
  else { file; line; col; eline; ecol; msg }

let io ~file msg = { file; line = 0; col = 0; eline = 0; ecol = 0; msg }

let is_span d = d.eline > d.line || (d.eline = d.line && d.ecol > d.col)

let to_string d =
  if d.line = 0 then Printf.sprintf "%s: %s" d.file d.msg
  else if not (is_span d) then
    Printf.sprintf "%s:%d:%d: %s" d.file d.line d.col d.msg
  else if d.eline = d.line then
    Printf.sprintf "%s:%d:%d-%d: %s" d.file d.line d.col d.ecol d.msg
  else Printf.sprintf "%s:%d:%d-%d:%d: %s" d.file d.line d.col d.eline d.ecol d.msg

let error ~file ~pos fmt = Printf.ksprintf (make ~file ~pos) fmt
