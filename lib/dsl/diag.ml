(* One-line diagnostics. The CLI contract (test/cli_errors.sh) is that
   every bad-input path dies with a single stderr line and exit 2;
   [to_string] is that line's body: "file:line:col: message". I/O
   failures that precede any token carry line 0 and render without a
   position. *)

type t = { file : string; line : int; col : int; msg : string }

exception Error of t

let make ~file ~pos msg = { file; line = pos.Ast.line; col = pos.Ast.col; msg }
let io ~file msg = { file; line = 0; col = 0; msg }

let to_string d =
  if d.line = 0 then Printf.sprintf "%s: %s" d.file d.msg
  else Printf.sprintf "%s:%d:%d: %s" d.file d.line d.col d.msg

let error ~file ~pos fmt = Printf.ksprintf (make ~file ~pos) fmt
