(** One-line [file:line:col] diagnostics for the DSL pipeline.

    Lexing, parsing and elaboration all fail with a {!t}; the CLI
    renders {!to_string} on stderr and exits 2 — the same exit-code
    discipline as every other bad-argument path
    (test/cli_errors.sh). *)

type t = { file : string; line : int; col : int; msg : string }

exception Error of t
(** Raised by elaborated closures on value-dependent violations that
    were not pre-validated with {!Elaborate.validate} — a programming
    error in the caller, not a user error. *)

val make : file:string -> pos:Ast.pos -> string -> t

val io : file:string -> string -> t
(** A failure with no source position (unreadable file); renders as
    ["file: message"]. *)

val to_string : t -> string
(** ["file:line:col: message"], or ["file: message"] for {!io}. *)

val error : file:string -> pos:Ast.pos -> ('a, unit, string, t) format4 -> 'a
