(** One-line [file:line:col] diagnostics for the DSL pipeline.

    Lexing, parsing and elaboration all fail with a {!t}; the CLI
    renders {!to_string} on stderr and exits 2 — the same exit-code
    discipline as every other bad-argument path
    (test/cli_errors.sh).

    A diagnostic carries a {e span}: [line]/[col] is the start of the
    offending region and [eline]/[ecol] its end (the last column of the
    last token). Point diagnostics — the common case — have both ends
    equal and render exactly as before; flow findings over whole guards
    use {!span} so the rendered line pins down the full region. *)

type t = {
  file : string;
  line : int;  (** start line *)
  col : int;  (** start column *)
  eline : int;  (** end line; equals [line] for a point *)
  ecol : int;  (** end column, inclusive; equals [col] for a point *)
  msg : string;
}

exception Error of t
(** Raised by elaborated closures on value-dependent violations that
    were not pre-validated with {!Elaborate.validate} — a programming
    error in the caller, not a user error. *)

val make : file:string -> pos:Ast.pos -> string -> t
(** A point diagnostic. *)

val span : file:string -> pos:Ast.pos -> epos:Ast.pos -> string -> t
(** A range diagnostic from [pos] to [epos] (inclusive). A degenerate
    range ([epos] not past [pos]) collapses to a point. *)

val io : file:string -> string -> t
(** A failure with no source position (unreadable file); renders as
    ["file: message"]. *)

val is_span : t -> bool
(** Whether the end extends past the start. *)

val to_string : t -> string
(** ["file:line:col: message"] for points,
    ["file:line:col-ecol: message"] for single-line spans,
    ["file:line:col-eline:ecol: message"] for multi-line spans, and
    ["file: message"] for {!io}. *)

val error : file:string -> pos:Ast.pos -> ('a, unit, string, t) format4 -> 'a
