(* Elaboration of a parsed .hpl tree into a Protocol.t (DESIGN.md §11).

   Internally everything raises Diag.Error and the public entry points
   catch it — elaboration is a pipeline of checks, and early exit with
   a positioned diagnostic is exactly the control flow we want.

   Two invariants drive the design:

   - Compiled rule closures must be TOTAL. The engine calls them on
     every reachable history, and the static analyzer's soundness
     argument (lint's [rule-raises]) assumes registered rules do not
     raise. So: division/modulus right-hand sides must be
     history-independent (checked nonzero per process by [validate]),
     and a history-dependent destination that leaves [0..n-1] or names
     the sender disables the intent instead of failing.

   - Value-dependent checks live in [validate], not in the closures.
     Selector pids, divisors, destinations and generator endpoints all
     depend on parameter values; the CLI validates right after
     [Protocol.instantiate]. The closures keep Diag.Error backstops for
     callers that skip validation. *)

open Ast
open Hpl_core
module P = Hpl_protocols.Protocol

type loaded = { proto : P.t; ast : Ast.spec; file : string }

let errf ~file ~pos fmt =
  Printf.ksprintf (fun msg -> raise (Diag.Error (Diag.make ~file ~pos msg))) fmt

(* -- item split ----------------------------------------------------------- *)

type split = {
  sdoc : string;
  sparams : param_decl list;
  sprocesses : expr;
  sppos : pos;  (* position of the 'processes' item *)
  sdepth : int option;
  sblocks : (selector * rule list * pos) list;
  satoms : atom_decl list;
  sgens : (symgen * pos) list;
  sfaults : (string * pos) list;
  slint : string list;
}

let split ~file (s : spec) : split =
  let doc = ref None and procs = ref None and depth = ref None in
  let params = ref [] and blocks = ref [] and atoms = ref [] in
  let gens = ref [] and faults = ref [] and lints = ref [] in
  List.iter
    (fun item ->
      match item with
      | Doc (d, p) -> (
          match !doc with
          | Some _ -> errf ~file ~pos:p "duplicate 'doc' item"
          | None -> doc := Some d)
      | Param pd -> params := pd :: !params
      | Processes (e, p) -> (
          match !procs with
          | Some _ -> errf ~file ~pos:p "duplicate 'processes' item"
          | None -> procs := Some (e, p))
      | Depth (d, p) -> (
          match !depth with
          | Some _ -> errf ~file ~pos:p "duplicate 'depth' item"
          | None ->
              if d < 1 then errf ~file ~pos:p "depth must be positive (got %d)" d;
              depth := Some d)
      | Process (sel, rules, p) -> blocks := (sel, rules, p) :: !blocks
      | Atom a -> atoms := a :: !atoms
      | Symmetry (g, p) -> gens := (g, p) :: !gens
      | Faults (ss, p) -> List.iter (fun f -> faults := (f, p) :: !faults) ss
      | Lint_expect (ss, p) ->
          List.iter
            (fun l ->
              if l = "" then errf ~file ~pos:p "empty lint rule id";
              lints := l :: !lints)
            ss)
    s.items;
  let sprocesses, sppos =
    match !procs with
    | Some (e, p) -> (e, p)
    | None -> errf ~file ~pos:s.spos "missing 'processes' item"
  in
  {
    sdoc = Option.value !doc ~default:"";
    sparams = List.rev !params;
    sprocesses;
    sppos;
    sdepth = !depth;
    sblocks = List.rev !blocks;
    satoms = List.rev !atoms;
    sgens = List.rev !gens;
    sfaults = List.rev !faults;
    slint = List.rev !lints;
  }

(* -- static typing and scoping ------------------------------------------- *)

type ty = TInt | TBool

(* Kstatic: parameters only (process counts, selectors, atom scopes,
   generator endpoints). Khist: adds [me] and the history readers
   (guards, destinations, receive sources, atom bodies). *)
type kind = Kstatic | Khist

let ty_name = function TInt -> "an integer" | TBool -> "a boolean"

(* history vars are the only names the two kinds disagree on *)
let history_var = function "len" | "sends" | "recvs" -> true | _ -> false

let reserved =
  [ "me"; "len"; "sends"; "recvs"; "did"; "min"; "max"; "true"; "false" ]

let rec ensure_history_free ~file ~op e =
  match e with
  | Int _ | Boolean _ -> ()
  | Var (v, p) when history_var v ->
      errf ~file ~pos:p
        "the right-hand side of '%s' must not read the local history (it is \
         validated nonzero per process, which keeps rules total)"
        op
  | Var _ -> ()
  | Count (fn, _, p) ->
      errf ~file ~pos:p
        "'%s(...)' cannot appear in the right-hand side of '%s' (divisors \
         must be history-independent)"
        fn op
  | Did (_, p) ->
      errf ~file ~pos:p
        "'did(...)' cannot appear in the right-hand side of '%s' (divisors \
         must be history-independent)"
        op
  | Minmax (_, a, b, _) | Binop (_, a, b, _) ->
      ensure_history_free ~file ~op a;
      ensure_history_free ~file ~op b
  | Unop (_, a, _) -> ensure_history_free ~file ~op a

let rec infer ~file ~params ~kind e : ty =
  match e with
  | Int _ -> TInt
  | Boolean _ -> TBool
  | Var ("me", p) ->
      if kind = Kstatic then
        errf ~file ~pos:p
          "'me' is only available inside rules and atom bodies";
      TInt
  | Var (v, p) when history_var v ->
      if kind = Kstatic then
        errf ~file ~pos:p
          "'%s' reads the local history and is only available inside rules \
           and atom bodies"
          v;
      TInt
  | Var (v, p) ->
      if not (List.mem v params) then
        errf ~file ~pos:p "undeclared name '%s' (declare it with 'param %s = \
                           ...')" v v;
      TInt
  | Count (fn, payload, p) ->
      if payload = "" then errf ~file ~pos:p "empty payload string";
      if kind = Kstatic then
        errf ~file ~pos:p
          "'%s(...)' reads the local history and is only available inside \
           rules and atom bodies"
          fn;
      TInt
  | Did (tag, p) ->
      if tag = "" then errf ~file ~pos:p "empty internal-event tag";
      if kind = Kstatic then
        errf ~file ~pos:p
          "'did(...)' reads the local history and is only available inside \
           rules and atom bodies";
      TBool
  | Minmax (_, a, b, _) ->
      want ~file ~params ~kind TInt a;
      want ~file ~params ~kind TInt b;
      TInt
  | Unop (`Neg, a, _) ->
      want ~file ~params ~kind TInt a;
      TInt
  | Unop (`Not, a, _) ->
      want ~file ~params ~kind TBool a;
      TBool
  | Binop ((Add | Sub | Mul), a, b, _) ->
      want ~file ~params ~kind TInt a;
      want ~file ~params ~kind TInt b;
      TInt
  | Binop ((Div | Mod) as op, a, b, _) ->
      want ~file ~params ~kind TInt a;
      want ~file ~params ~kind TInt b;
      ensure_history_free ~file ~op:(binop_to_string op) b;
      TInt
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge), a, b, _) ->
      want ~file ~params ~kind TInt a;
      want ~file ~params ~kind TInt b;
      TBool
  | Binop ((And | Or), a, b, _) ->
      want ~file ~params ~kind TBool a;
      want ~file ~params ~kind TBool b;
      TBool

and want ~file ~params ~kind expected e =
  let t = infer ~file ~params ~kind e in
  if t <> expected then
    errf ~file ~pos:(expr_pos e) "this expression must be %s, not %s"
      (ty_name expected) (ty_name t)

let check_params ~file pds =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun pd ->
      if List.mem pd.key reserved then
        errf ~file ~pos:pd.ppos "parameter name '%s' is reserved" pd.key;
      if Hashtbl.mem seen pd.key then
        errf ~file ~pos:pd.ppos "duplicate parameter '%s'" pd.key;
      Hashtbl.add seen pd.key ();
      let lo = Option.value pd.lo ~default:1 in
      (match pd.hi with
      | Some hi when hi < lo ->
          errf ~file ~pos:pd.ppos
            "parameter '%s': the bounds are empty (min %d > max %d)" pd.key lo
            hi
      | Some hi when pd.default > hi ->
          errf ~file ~pos:pd.ppos "parameter '%s': default %d is above max %d"
            pd.key pd.default hi
      | _ -> ());
      if pd.default < lo then
        errf ~file ~pos:pd.ppos
          "parameter '%s': default %d is below min %d (bounds default to min \
           1 — declare 'min %d' to allow it)"
          pd.key pd.default lo pd.default)
    pds

let static_check ~file (ast : spec) (sp : split) =
  let name_ok =
    ast.sname <> ""
    && String.for_all
         (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-')
         ast.sname
  in
  if not name_ok then
    errf ~file ~pos:ast.spos "protocol name %S must match [a-z0-9-]+"
      ast.sname;
  check_params ~file sp.sparams;
  let params = List.map (fun pd -> pd.key) sp.sparams in
  want ~file ~params ~kind:Kstatic TInt sp.sprocesses;
  let seen_rest = ref false in
  List.iter
    (fun (sel, rules, bpos) ->
      (match sel with
      | Sel_pid (e, _) -> want ~file ~params ~kind:Kstatic TInt e
      | Sel_rest _ ->
          if !seen_rest then errf ~file ~pos:bpos "duplicate 'process *' block";
          seen_rest := true);
      List.iter
        (fun r ->
          want ~file ~params ~kind:Khist TBool r.guard;
          List.iter
            (fun it ->
              match it with
              | Send (payload, dst, ip) ->
                  if payload = "" then errf ~file ~pos:ip "empty payload string";
                  want ~file ~params ~kind:Khist TInt dst
              | Recv (Some src, _) -> want ~file ~params ~kind:Khist TInt src
              | Recv (None, _) -> ()
              | Act (tag, ip) ->
                  if tag = "" then errf ~file ~pos:ip "empty internal-event tag")
            r.intents)
        rules)
    sp.sblocks;
  let seen_atoms = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen_atoms a.aname then
        errf ~file ~pos:a.apos "duplicate atom '%s'" a.aname;
      Hashtbl.add seen_atoms a.aname ();
      (match a.scope with
      | At e -> want ~file ~params ~kind:Kstatic TInt e
      | Forall -> ());
      want ~file ~params ~kind:Khist TBool a.body)
    sp.satoms;
  List.iter
    (fun (g, _) ->
      match g with
      | Rotation _ -> ()
      | Swap (a, b, _) | Cycle (a, b, _) ->
          want ~file ~params ~kind:Kstatic TInt a;
          want ~file ~params ~kind:Kstatic TInt b)
    sp.sgens;
  List.iter
    (fun (s, p) ->
      match Hpl_faults.Faults.Scenario.parse s with
      | Ok _ -> ()
      | Error e -> errf ~file ~pos:p "bad fault scenario %S: %s" s e)
    sp.sfaults

(* -- evaluation ----------------------------------------------------------- *)

(* One untyped evaluator (booleans are 0/1): the static type check above
   already separated the worlds, and a single total function keeps the
   closures free of unreachable branches. *)

type env = { efile : string; values : P.values; me : int; hist : Event.t list }

let senv ~file ~values ~me = { efile = file; values; me; hist = [] }

let rec eval env e : int =
  match e with
  | Int (k, _) -> k
  | Boolean (b, _) -> if b then 1 else 0
  | Var ("me", _) -> env.me
  | Var ("len", _) -> List.length env.hist
  | Var ("sends", _) -> P.sends env.hist
  | Var ("recvs", _) -> P.recvs env.hist
  | Var (v, p) -> (
      match List.assoc_opt v env.values with
      | Some k -> k
      | None -> errf ~file:env.efile ~pos:p "undeclared name '%s'" v)
  | Count ("sends", payload, _) -> P.sends_of env.hist payload
  | Count (_, payload, _) -> P.recvs_of env.hist payload
  | Did (tag, _) -> if P.did env.hist tag then 1 else 0
  | Minmax (`Min, a, b, _) -> min (eval env a) (eval env b)
  | Minmax (`Max, a, b, _) -> max (eval env a) (eval env b)
  | Unop (`Neg, a, _) -> -eval env a
  | Unop (`Not, a, _) -> if eval env a = 0 then 1 else 0
  | Binop (op, a, b, p) -> (
      match op with
      | Add -> eval env a + eval env b
      | Sub -> eval env a - eval env b
      | Mul -> eval env a * eval env b
      | Div | Mod ->
          let d = eval env b in
          if d = 0 then
            errf ~file:env.efile ~pos:p
              "%s by zero (validate the spec at these parameter values)"
              (if op = Div then "division" else "modulus");
          if op = Div then eval env a / d else eval env a mod d
      | Eq -> if eval env a = eval env b then 1 else 0
      | Ne -> if eval env a <> eval env b then 1 else 0
      | Lt -> if eval env a < eval env b then 1 else 0
      | Le -> if eval env a <= eval env b then 1 else 0
      | Gt -> if eval env a > eval env b then 1 else 0
      | Ge -> if eval env a >= eval env b then 1 else 0
      | And -> if eval env a <> 0 && eval env b <> 0 then 1 else 0
      | Or -> if eval env a <> 0 || eval env b <> 0 then 1 else 0)

let nproc ~file sp values =
  let n = eval (senv ~file ~values ~me:0) sp.sprocesses in
  if n < 1 then
    errf ~file ~pos:sp.sppos "'processes' evaluates to %d (need at least 1)" n;
  n

(* Selector resolution: explicit pids first, then 'process *' claims the
   rest; unclaimed processes have no rules (they enable nothing). *)
let resolve_blocks ~file sp values ~n =
  let pid_rules = Array.make n [] in
  let claimed = Array.make n false in
  let rest = ref None in
  List.iter
    (fun (sel, rules, bpos) ->
      match sel with
      | Sel_pid (e, _) ->
          let v = eval (senv ~file ~values ~me:0) e in
          if v < 0 || v >= n then
            errf ~file ~pos:(expr_pos e)
              "process %d is out of range (this spec has processes 0..%d)" v
              (n - 1);
          if claimed.(v) then
            errf ~file ~pos:bpos "process %d has two rule blocks" v;
          claimed.(v) <- true;
          pid_rules.(v) <- rules
      | Sel_rest _ -> (
          match !rest with
          | Some _ -> errf ~file ~pos:bpos "duplicate 'process *' block"
          | None -> rest := Some rules))
    sp.sblocks;
  (match !rest with
  | Some rules ->
      for i = 0 to n - 1 do
        if not claimed.(i) then pid_rules.(i) <- rules
      done
  | None -> ());
  (pid_rules, claimed)

(* -- compilation ---------------------------------------------------------- *)

let compile_intent env ~n it =
  match it with
  | Send (payload, dst, _) ->
      let d = eval env dst in
      if d < 0 || d >= n || d = env.me then None
      else Some (Spec.Send_to (Pid.of_int d, payload))
  | Recv (None, _) -> Some Spec.Recv_any
  | Recv (Some src, _) ->
      let s = eval env src in
      if s < 0 || s >= n || s = env.me then None
      else Some (Spec.Recv_from (Pid.of_int s))
  | Act (tag, _) -> Some (Spec.Do tag)

let build_spec ~file sp values =
  let n = nproc ~file sp values in
  let pid_rules, _ = resolve_blocks ~file sp values ~n in
  Spec.make ~n (fun p ->
      let me = Pid.to_int p in
      let rules = pid_rules.(me) in
      fun hist ->
        let env = { efile = file; values; me; hist } in
        List.concat_map
          (fun r ->
            if eval env r.guard <> 0 then
              List.filter_map (compile_intent env ~n) r.intents
            else [])
          rules)

let build_atoms ~file sp values =
  let n = nproc ~file sp values in
  List.map
    (fun a ->
      match a.scope with
      | At e ->
          let k = eval (senv ~file ~values ~me:0) e in
          if k < 0 || k >= n then
            errf ~file ~pos:(expr_pos e)
              "atom '%s': process %d is out of range (this spec has processes \
               0..%d)"
              a.aname k (n - 1);
          let pid = Pid.of_int k in
          ( a.aname,
            Prop.make a.aname (fun z ->
                eval { efile = file; values; me = k; hist = Trace.proj z pid }
                  a.body
                <> 0) )
      | Forall ->
          ( a.aname,
            Prop.make a.aname (fun z ->
                let rec holds_at i =
                  i >= n
                  || eval
                       {
                         efile = file;
                         values;
                         me = i;
                         hist = Trace.proj z (Pid.of_int i);
                       }
                       a.body
                     <> 0
                     && holds_at (i + 1)
                in
                holds_at 0) ))
    sp.satoms

let build_symmetry ~file sp values =
  let n = nproc ~file sp values in
  let endpoint e =
    let v = eval (senv ~file ~values ~me:0) e in
    if v < 0 || v >= n then
      errf ~file ~pos:(expr_pos e)
        "process %d is out of range (this spec has processes 0..%d)" v (n - 1);
    v
  in
  List.filter_map
    (fun (g, _) ->
      match g with
      | Rotation _ -> Some (Symmetry.rotation n)
      | Swap (a, b, _) ->
          let x = endpoint a and y = endpoint b in
          if x = y then None else Some (Symmetry.transposition n x y)
      | Cycle (a, b, _) ->
          let x = endpoint a and y = endpoint b in
          (* fewer than two members is the identity — drop it, so a
             generator like [cycle 1 .. n-1] degrades gracefully at the
             smallest parameter values instead of erroring *)
          if y - x < 1 then None
          else Some (Symmetry.cycle n (List.init (y - x + 1) (fun i -> x + i))))
    sp.sgens

(* -- value-dependent validation ------------------------------------------ *)

let rec divisors e acc =
  match e with
  | Int _ | Boolean _ | Var _ | Count _ | Did _ -> acc
  | Minmax (_, a, b, _) -> divisors a (divisors b acc)
  | Unop (_, a, _) -> divisors a acc
  | Binop (op, a, b, p) -> (
      let acc = divisors a (divisors b acc) in
      match op with
      | Div | Mod -> (b, p, binop_to_string op) :: acc
      | _ -> acc)

let rec history_free = function
  | Int _ | Boolean _ -> true
  | Var (v, _) -> not (history_var v)
  | Count _ | Did _ -> false
  | Minmax (_, a, b, _) | Binop (_, a, b, _) ->
      history_free a && history_free b
  | Unop (_, a, _) -> history_free a

let validate { ast; file; _ } values =
  try
    let sp = split ~file ast in
    let check_divs ~mes e =
      List.iter
        (fun (d, p, op) ->
          List.iter
            (fun me ->
              if eval (senv ~file ~values ~me) d = 0 then
                errf ~file ~pos:p
                  "the right-hand side of '%s' evaluates to 0 at process %d" op
                  me)
            mes)
        (divisors e [])
    in
    (* divisors of the count expression first — [nproc] evaluates it *)
    check_divs ~mes:[ 0 ] sp.sprocesses;
    let n = nproc ~file sp values in
    let _, claimed = resolve_blocks ~file sp values ~n in
    ignore (build_atoms ~file sp values);
    ignore (build_symmetry ~file sp values);
    List.iter
      (fun a ->
        let mes =
          match a.scope with
          | At e -> [ eval (senv ~file ~values ~me:0) e ]
          | Forall -> List.init n (fun i -> i)
        in
        check_divs ~mes a.body)
      sp.satoms;
    List.iter
      (fun (sel, rules, _) ->
        let mes =
          match sel with
          | Sel_pid (e, _) -> [ eval (senv ~file ~values ~me:0) e ]
          | Sel_rest _ ->
              List.filteri (fun i _ -> not claimed.(i))
                (List.init n (fun i -> i))
        in
        List.iter
          (fun r ->
            check_divs ~mes r.guard;
            let check_target ~what e =
              check_divs ~mes e;
              if history_free e then
                List.iter
                  (fun me ->
                    let v = eval (senv ~file ~values ~me) e in
                    if v < 0 || v >= n then
                      errf ~file ~pos:(expr_pos e)
                        "%s %d is out of range (this spec has processes \
                         0..%d)"
                        what v (n - 1)
                    else if v = me then
                      errf ~file ~pos:(expr_pos e)
                        "process %d uses itself as the %s" me what)
                  mes
            in
            List.iter
              (fun it ->
                match it with
                | Send (_, dst, _) -> check_target ~what:"destination" dst
                | Recv (Some src, _) -> check_target ~what:"receive source" src
                | Recv (None, _) | Act _ -> ())
              r.intents)
          rules)
      sp.sblocks;
    Ok ()
  with Diag.Error d -> Error d

(* -- static-analysis surface ---------------------------------------------- *)

(* The abstract interpreter (Hpl_analysis.Dataflow) works on the
   elaborated per-pid rule lists rather than the compiled closures, so
   it sees guards as syntax; its soundness tests need the concrete
   semantics of a single guard on a single local history — exactly the
   [eval] the closures use. *)

let resolved_rules (l : loaded) values =
  try
    let sp = split ~file:l.file l.ast in
    let n = nproc ~file:l.file sp values in
    let pid_rules, _ = resolve_blocks ~file:l.file sp values ~n in
    Ok pid_rules
  with Diag.Error d -> Error d

let eval_expr (l : loaded) values ~me ~history e =
  eval { efile = l.file; values; me; hist = history } e

(* -- entry points --------------------------------------------------------- *)

let elaborate ~file (ast : spec) =
  try
    let sp = split ~file ast in
    static_check ~file ast sp;
    let params =
      List.map
        (fun pd -> P.param ?lo:pd.lo ?hi:pd.hi pd.key pd.default pd.pdoc)
        sp.sparams
    in
    let proto =
      try
        P.make ~name:ast.sname ~doc:sp.sdoc ~params
          ~atoms:(fun values -> build_atoms ~file sp values)
          ~symmetry:(fun values -> build_symmetry ~file sp values)
          ?suggested_depth:sp.sdepth
          ~fault_scenarios:(List.map fst sp.sfaults)
          ~lint_expect:sp.slint
          (fun values -> build_spec ~file sp values)
      with Invalid_argument m -> errf ~file ~pos:ast.spos "%s" m
    in
    let loaded = { proto; ast; file } in
    match validate loaded (P.defaults proto) with
    | Ok () -> Ok loaded
    | Error d -> Error d
  with Diag.Error d -> Error d

let load_string ~file src =
  match Parser.parse ~file src with
  | Error d -> Error d
  | Ok ast -> elaborate ~file ast

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> load_string ~file:path src
  | exception Sys_error m ->
      (* Sys_error messages already lead with the path; don't print it
         twice in the "file: message" rendering *)
      let prefix = path ^ ": " in
      let plen = String.length prefix in
      let m =
        if String.length m >= plen && String.sub m 0 plen = prefix then
          String.sub m plen (String.length m - plen)
        else m
      in
      Error (Diag.io ~file:path m)
