(* Abstract syntax of the .hpl protocol language (DESIGN.md §11).

   Every node carries the source position of its first token, so both
   the parser and the elaborator report one-line file:line:col
   diagnostics. The tree is untyped; [Elaborate.check] performs the
   int/bool distinction and the static/history context separation. *)

type pos = { line : int; col : int }

let pos0 = { line = 1; col = 1 }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Int of int * pos
  | Boolean of bool * pos
  | Var of string * pos  (** [me], [n], [len], [sends], [recvs], or a param *)
  | Count of string * string * pos
      (** [sends "m"] / [recvs "m"] — payload-filtered history counts *)
  | Did of string * pos  (** [did "tag"] — internal event in the history *)
  | Minmax of [ `Min | `Max ] * expr * expr * pos
  | Unop of [ `Neg | `Not ] * expr * pos
  | Binop of binop * expr * expr * pos

type intent =
  | Send of string * expr * pos  (** payload, destination *)
  | Recv of expr option * pos  (** optional sender restriction *)
  | Act of string * pos  (** internal event, [do "tag"] *)

type rule = {
  guard : expr;
  intents : intent list;
  rpos : pos;
  gspan : pos * pos;  (* first and last token of the guard, inclusive *)
}

type selector =
  | Sel_pid of expr * pos  (** [process <expr>] — a specific process *)
  | Sel_rest of pos  (** [process *] — every process not matched above *)

type symgen =
  | Rotation of pos  (** [i ↦ i+1 mod n] *)
  | Swap of expr * expr * pos
  | Cycle of expr * expr * pos  (** cyclic permutation of an inclusive range *)

type atom_scope =
  | At of expr  (** evaluated over one process's projection *)
  | Forall  (** must hold at every process's projection *)

type param_decl = {
  key : string;
  default : int;
  lo : int option;
  hi : int option;
  pdoc : string;
  ppos : pos;
}

type atom_decl = {
  aname : string;
  scope : atom_scope;
  body : expr;
  apos : pos;
}

type item =
  | Doc of string * pos
  | Param of param_decl
  | Processes of expr * pos
  | Depth of int * pos
  | Process of selector * rule list * pos
  | Atom of atom_decl
  | Symmetry of symgen * pos
  | Faults of string list * pos
  | Lint_expect of string list * pos

type spec = { sname : string; items : item list; spos : pos }

let expr_pos = function
  | Int (_, p)
  | Boolean (_, p)
  | Var (_, p)
  | Count (_, _, p)
  | Did (_, p)
  | Minmax (_, _, _, p)
  | Unop (_, _, p)
  | Binop (_, _, _, p) ->
      p

let intent_pos = function Send (_, _, p) | Recv (_, p) | Act (_, p) -> p

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"
