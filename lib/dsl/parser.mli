(** Recursive-descent parser for the [.hpl] grammar (DESIGN.md §11).

    Keywords are matched contextually from identifier tokens, and one
    untyped expression grammar serves both integer and boolean
    positions (precedence: [||] < [&&] < comparison < [+ -] < [* / %]
    < unary); {!Elaborate.check} performs the type separation. *)

val parse : file:string -> string -> (Ast.spec, Diag.t) result
(** Parse one protocol block from [src]. [file] is used only for
    diagnostics. Trailing input after the closing brace is an error. *)
