(** Seeded generator of random well-formed [.hpl] sources.

    Each generated spec is guaranteed to load (parse + elaborate +
    validate at defaults), to enumerate to a small universe at its
    declared depth (every send rule is bounded by a [sends < c]
    conjunct), and to declare only symmetry generators that are true
    automorphisms of its rules — so the fuzz pipeline ([hpl fuzz], the
    CI [dsl] job, and the property tests) can assert the §3
    isomorphism laws and lint soundness on every output without
    filtering. *)

val spec_text : seed:int -> index:int -> string
(** Deterministic: the same [(seed, index)] pair always yields the same
    source text, so a CI failure replays from two integers. *)
