(* Hand-written lexer: the token set is tiny and a handwritten scanner
   gives exact line/col tracking without a generator dependency.

   Identifiers are [A-Za-z_][A-Za-z0-9_]*; hyphenated protocol names
   ("ping-pong") are written as string literals so '-' stays the minus
   operator inside expressions. Comments run from '#' to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | EQUALS  (* =  *)
  | EQEQ  (* == *)
  | NE  (* != *)
  | LE
  | GE
  | LT
  | GT
  | ANDAND
  | OROR
  | BANG
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | ARROW  (* => *)
  | DOTDOT
  | EOF

type t = { tok : token; pos : Ast.pos; epos : Ast.pos }

let token_to_string = function
  | IDENT s -> Printf.sprintf "'%s'" s
  | INT k -> string_of_int k
  | STRING s -> Printf.sprintf "%S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | STAR -> "'*'"
  | EQUALS -> "'='"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | LE -> "'<='"
  | GE -> "'>='"
  | LT -> "'<'"
  | GT -> "'>'"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | ARROW -> "'=>'"
  | DOTDOT -> "'..'"
  | EOF -> "end of file"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize ~file src : (t list, Diag.t) result =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  (* i = absolute offset; column is 1-based from the last newline *)
  let pos_at i = { Ast.line = !line; col = i - !bol + 1 } in
  let toks = ref [] in
  (* a token occupies [i, j): its end position is the column of its
     last character — tokens never span newlines (strings reject '\n'),
     so [pos_at] is valid at any offset inside the token *)
  let emit tok i j =
    let epos = if j > i then pos_at (j - 1) else pos_at i in
    toks := { tok; pos = pos_at i; epos } :: !toks
  in
  let err i msg = Error (Diag.make ~file ~pos:(pos_at i) msg) in
  let rec go i =
    if i >= n then begin
      emit EOF i i;
      Ok (List.rev !toks)
    end
    else
      let c = src.[i] in
      match c with
      | '\n' ->
          incr line;
          bol := i + 1;
          go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '#' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip (i + 1))
      | '{' ->
          emit LBRACE i (i + 1);
          go (i + 1)
      | '}' ->
          emit RBRACE i (i + 1);
          go (i + 1)
      | '(' ->
          emit LPAREN i (i + 1);
          go (i + 1)
      | ')' ->
          emit RPAREN i (i + 1);
          go (i + 1)
      | ',' ->
          emit COMMA i (i + 1);
          go (i + 1)
      | '*' ->
          emit STAR i (i + 1);
          go (i + 1)
      | '+' ->
          emit PLUS i (i + 1);
          go (i + 1)
      | '-' ->
          emit MINUS i (i + 1);
          go (i + 1)
      | '/' ->
          emit SLASH i (i + 1);
          go (i + 1)
      | '%' ->
          emit PERCENT i (i + 1);
          go (i + 1)
      | '=' ->
          if i + 1 < n && src.[i + 1] = '=' then begin
            emit EQEQ i (i + 2);
            go (i + 2)
          end
          else if i + 1 < n && src.[i + 1] = '>' then begin
            emit ARROW i (i + 2);
            go (i + 2)
          end
          else begin
            emit EQUALS i (i + 1);
            go (i + 1)
          end
      | '!' ->
          if i + 1 < n && src.[i + 1] = '=' then begin
            emit NE i (i + 2);
            go (i + 2)
          end
          else begin
            emit BANG i (i + 1);
            go (i + 1)
          end
      | '<' ->
          if i + 1 < n && src.[i + 1] = '=' then begin
            emit LE i (i + 2);
            go (i + 2)
          end
          else begin
            emit LT i (i + 1);
            go (i + 1)
          end
      | '>' ->
          if i + 1 < n && src.[i + 1] = '=' then begin
            emit GE i (i + 2);
            go (i + 2)
          end
          else begin
            emit GT i (i + 1);
            go (i + 1)
          end
      | '&' ->
          if i + 1 < n && src.[i + 1] = '&' then begin
            emit ANDAND i (i + 2);
            go (i + 2)
          end
          else err i "expected '&&'"
      | '|' ->
          if i + 1 < n && src.[i + 1] = '|' then begin
            emit OROR i (i + 2);
            go (i + 2)
          end
          else err i "expected '||'"
      | '.' ->
          if i + 1 < n && src.[i + 1] = '.' then begin
            emit DOTDOT i (i + 2);
            go (i + 2)
          end
          else err i "expected '..'"
      | '"' ->
          (* no escapes: payloads, tags and scenario strings never need
             them, and keeping literals verbatim means the file shows
             exactly what goes over the wire *)
          let rec scan j =
            if j >= n then err i "unterminated string literal"
            else if src.[j] = '\n' then err i "unterminated string literal"
            else if src.[j] = '"' then begin
              emit (STRING (String.sub src (i + 1) (j - i - 1))) i (j + 1);
              go (j + 1)
            end
            else scan (j + 1)
          in
          scan (i + 1)
      | c when is_digit c ->
          let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
          let j = scan i in
          let lit = String.sub src i (j - i) in
          (match int_of_string_opt lit with
          | Some k ->
              emit (INT k) i j;
              go j
          | None -> err i (Printf.sprintf "integer literal %s out of range" lit))
      | c when is_ident_start c ->
          let rec scan j =
            if j < n && is_ident_char src.[j] then scan (j + 1) else j
          in
          let j = scan i in
          emit (IDENT (String.sub src i (j - i))) i j;
          go j
      | c -> err i (Printf.sprintf "unexpected character %C" c)
  in
  go 0
