(** Elaboration: a parsed [.hpl] spec becomes a first-class
    {!Hpl_protocols.Protocol.t} — the same record the compiled builtins
    register, so every consumer (enumeration, knowledge queries, lint,
    diagrams, reduction) works on loaded specs unchanged.

    Elaboration is where the untyped surface tree acquires meaning:

    - expressions are typed (int vs bool) and scoped (static expressions
      see only parameters; guards, destinations and atom bodies also see
      [me] and the local history via [len]/[sends]/[recvs]/[did]);
    - rule blocks compile to total {!Hpl_core.Spec.rule} closures — a
      division or modulus right-hand side must be history-independent
      and is checked nonzero by {!validate}, and a history-dependent
      destination that falls outside [0..n-1] (or names the sender)
      simply disables the intent — so the static analyzer's
      [rule-raises] finding can never fire for a loaded spec;
    - atoms become interleaving-invariant {!Hpl_core.Prop.t}s (bodies
      read one process's projection);
    - symmetry generators become {!Hpl_core.Symmetry.perm}s ([cycle]
      ranges with fewer than two members collapse to the identity and
      are dropped, so a generator can degenerate gracefully at small
      parameter values).

    Static checks run once per spec; value-dependent checks
    ({!validate}) run per instantiation, because selector pids,
    destinations, divisors and generator ranges all depend on parameter
    values. {!elaborate} validates at the declared defaults, so a
    successfully loaded spec is usable as-is. *)

type loaded = {
  proto : Hpl_protocols.Protocol.t;
  ast : Ast.spec;
  file : string;
}

val elaborate : file:string -> Ast.spec -> (loaded, Diag.t) result
(** Static checks (typing, scoping, duplicate items, parameter bounds,
    fault-scenario syntax, protocol-name shape), then {!validate} at
    the default parameter values. *)

val validate : loaded -> Hpl_protocols.Protocol.values -> (unit, Diag.t) result
(** Value-dependent checks at [values]: the process count is positive;
    selector pids are in range and pairwise distinct; divisors are
    nonzero at every process; history-independent send destinations and
    receive sources are in range and never the process itself; [at]
    atoms and symmetry-generator endpoints are in range. Call after
    {!Hpl_protocols.Protocol.instantiate} and before using the
    instance; the compiled closures raise {!Diag.Error} as a backstop
    on violations this would have caught. *)

val resolved_rules :
  loaded -> Hpl_protocols.Protocol.values -> (Ast.rule list array, Diag.t) result
(** The per-pid surface rules at [values] — selectors resolved, one
    {!Ast.rule} list per process. This is the syntax the static
    analyzer ([Hpl_analysis.Dataflow]) interprets; guard spans
    ([Ast.rule.gspan]) survive, so flow findings can point into the
    source. *)

val eval_expr :
  loaded ->
  Hpl_protocols.Protocol.values ->
  me:int ->
  history:Hpl_core.Event.t list ->
  Ast.expr ->
  int
(** Concrete evaluation of one expression on one local history — the
    exact dynamic semantics the compiled closures use (booleans are
    0/1). The flow soundness tests compare abstract verdicts against
    this. May raise {!Diag.Error} (e.g. division by zero) like the
    closures themselves. *)

val load_string : file:string -> string -> (loaded, Diag.t) result
(** Lex, parse, elaborate. [file] is used for diagnostics only. *)

val load_file : string -> (loaded, Diag.t) result
(** {!load_string} on the file's contents; unreadable files become a
    position-less {!Diag.io} diagnostic. *)
