(** Tokenizer for the [.hpl] language.

    Hand-written: the token set is tiny, and scanning by hand gives
    exact line/column tracking for {!Diag} without a generator
    dependency. Keywords are not distinguished here — the parser
    matches identifiers contextually, so rule payloads and parameter
    names can reuse surface words. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | EQUALS
  | EQEQ
  | NE
  | LE
  | GE
  | LT
  | GT
  | ANDAND
  | OROR
  | BANG
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | ARROW
  | DOTDOT
  | EOF

type t = { tok : token; pos : Ast.pos; epos : Ast.pos }
(** [pos] is the token's first character, [epos] its last (inclusive).
    Tokens never span lines, so [epos.line = pos.line] except for
    {!EOF}, where both are the end-of-input position. *)

val token_to_string : token -> string
(** For "expected X, got Y" parse errors. *)

val tokenize : file:string -> string -> (t list, Diag.t) result
(** The token stream always ends with {!EOF}. Comments ([#] to end of
    line) and whitespace are skipped. String literals have no escape
    sequences. *)
