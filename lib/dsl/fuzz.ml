(* Seeded generator of random well-formed .hpl sources.

   Three template families keep every emitted spec inside the
   guarantees the rest of the pipeline asserts on it:

   - every send rule carries a small 'sends < c' bound, so universes at
     the emitted depth stay enumerable;
   - symmetry generators are only emitted in families whose rules are
     invariant under them by construction (a lone 'process *' block
     with rotation-equivariant destinations for rotation; identical
     member blocks for member cycles), so Symmetry.is_automorphism
     holds for every generator we print;
   - divisors are literals, destinations stay in range, and guards use
     only declared names, so parse + elaborate + validate succeed.

   Randomness comes from a Random.State seeded with (seed, index) —
   same pair, same text — which is what lets CI replay a failure from
   the two integers alone. *)

let payloads = [| "msg"; "tok"; "ping"; "ack" |]
let tags = [| "fire"; "mark"; "decide" |]

let pick st a = a.(Random.State.int st (Array.length a))

(* a random extra conjunct for a guard, in history context *)
let garnish st =
  match Random.State.int st 5 with
  | 0 -> Printf.sprintf " && len < %d" (4 + Random.State.int st 3)
  | 1 -> Printf.sprintf " && recvs <= %d" (1 + Random.State.int st 2)
  | 2 -> Printf.sprintf " && !did(\"%s\")" (pick st tags)
  | 3 -> " && len % 2 >= 0"
  | _ -> ""

(* [k] makes the name unique within the spec: elaboration rejects
   duplicate atom names, and a 100-wide random pool collides within a
   50-spec run (birthday bound — seed 42 index 38 really did) *)
let atom_line st ~n ~k =
  let body =
    match Random.State.int st 4 with
    | 0 -> Printf.sprintf "sends(\"%s\") >= 1" (pick st payloads)
    | 1 -> "recvs > 0"
    | 2 -> Printf.sprintf "did(\"%s\")" (pick st tags)
    | _ -> Printf.sprintf "len <= %d" (2 + Random.State.int st 4)
  in
  if Random.State.bool st then
    Printf.sprintf "  atom a%d_%d at %d = %s\n" k (Random.State.int st 100)
      (Random.State.int st n) body
  else
    Printf.sprintf "  atom a%d_%d forall = %s\n" k (Random.State.int st 100)
      body

(* family 0: one 'process *' block, rotation-equivariant destinations *)
let ring_family st buf ~n =
  let payload = pick st payloads in
  let cap = 1 + Random.State.int st 2 in
  Buffer.add_string buf "  process * {\n";
  Buffer.add_string buf
    (Printf.sprintf "    when sends < %d%s => send \"%s\" to (me + 1) %% n\n"
       cap (garnish st) payload);
  Buffer.add_string buf
    (Printf.sprintf "    when recvs < %d => recv\n" (1 + Random.State.int st 2));
  if Random.State.bool st then
    Buffer.add_string buf
      (Printf.sprintf "    when recvs >= 1 && !did(\"%s\") => do \"%s\"\n"
         tags.(0) tags.(0));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "  symmetry rotation\n";
  ignore n

(* family 1: a collector plus identical members — quorum-shaped, so the
   member cycle is automorphic. (A hub that *sends* to members in pid
   order would distinguish them — see the comment atop
   lib/protocols/symmetric.ml — so this family never addresses a member
   from process 0.) *)
let star_family st buf ~n =
  let rep = pick st payloads in
  let q = 1 + Random.State.int st (n - 1) in
  let votes = 1 + Random.State.int st 2 in
  Buffer.add_string buf "  process 0 {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    when !did(\"%s\") && recvs >= %d => do \"%s\"\n" tags.(2) q
       tags.(2));
  Buffer.add_string buf
    (Printf.sprintf
       "    when !did(\"%s\") && recvs < %d => recv\n" tags.(2) q);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "  process * {\n";
  Buffer.add_string buf
    (Printf.sprintf "    when sends < %d => send \"%s\" to 0\n" votes rep);
  Buffer.add_string buf "  }\n";
  if n > 2 then Buffer.add_string buf "  symmetry cycle 1 .. n - 1\n"

(* family 2: asymmetric random rules, no symmetry *)
let random_family st buf ~n =
  let p0 = pick st payloads and p1 = pick st payloads in
  let dst = 1 + Random.State.int st (n - 1) in
  Buffer.add_string buf "  process 0 {\n";
  Buffer.add_string buf
    (Printf.sprintf "    when sends < %d%s => send \"%s\" to %d\n"
       (1 + Random.State.int st 2)
       (garnish st) p0 dst);
  Buffer.add_string buf
    (Printf.sprintf "    when recvs < %d => recv\n" (1 + Random.State.int st 2));
  if Random.State.bool st then
    Buffer.add_string buf
      (Printf.sprintf "    when recvs >= 1 && !did(\"%s\") => do \"%s\"\n"
         (pick st tags) (pick st tags));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "  process * {\n";
  (match Random.State.int st 3 with
  | 0 -> Buffer.add_string buf "    when recvs < 2 => recv from 0\n"
  | 1 -> Buffer.add_string buf "    when recvs < 2 => recv\n"
  | _ ->
      Buffer.add_string buf
        (Printf.sprintf
           "    when recvs < 2 => recv, do \"%s\"\n" (pick st tags)));
  Buffer.add_string buf
    (Printf.sprintf
       "    when recvs >= 1 && sends < %d => send \"%s\" to 0\n"
       (1 + Random.State.int st 1)
       p1);
  Buffer.add_string buf "  }\n"

let spec_text ~seed ~index =
  let st = Random.State.make [| 0x48504c; seed; index |] in
  let family = Random.State.int st 3 in
  let n_lo = 2 + if family = 1 then 1 else 0 in
  let n = n_lo + Random.State.int st 2 in
  let depth = 4 + Random.State.int st 2 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "protocol \"fuzz-%d-%d\" {\n" seed index);
  Buffer.add_string buf
    (Printf.sprintf
       "  doc \"generated spec (seed %d, index %d, family %d)\"\n" seed index
       family);
  Buffer.add_string buf
    (Printf.sprintf "  param n = %d min %d max %d\n" n n_lo (n + 1));
  Buffer.add_string buf "  processes n\n";
  Buffer.add_string buf (Printf.sprintf "  depth %d\n" depth);
  (match family with
  | 0 -> ring_family st buf ~n
  | 1 -> star_family st buf ~n
  | _ -> random_family st buf ~n);
  for k = 1 to Random.State.int st 3 do
    Buffer.add_string buf (atom_line st ~n ~k)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
