(** Abstract syntax of the [.hpl] protocol language (DESIGN.md §11).

    A spec is a name plus a list of items: documentation, integer
    parameters with bounds, a process count, per-process rule blocks,
    named atoms, symmetry generators, fault scenarios and lint
    expectations — everything {!Hpl_protocols.Protocol.make} takes.
    Every node carries the position of its first token so diagnostics
    can point at [file:line:col]. *)

type pos = { line : int; col : int }

val pos0 : pos

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Int of int * pos
  | Boolean of bool * pos
  | Var of string * pos  (** [me], [n], [len], [sends], [recvs], or a param *)
  | Count of string * string * pos
      (** [sends "m"] / [recvs "m"] — payload-filtered history counts *)
  | Did of string * pos  (** [did "tag"] — internal event in the history *)
  | Minmax of [ `Min | `Max ] * expr * expr * pos
  | Unop of [ `Neg | `Not ] * expr * pos
  | Binop of binop * expr * expr * pos

type intent =
  | Send of string * expr * pos  (** payload, destination *)
  | Recv of expr option * pos  (** optional sender restriction *)
  | Act of string * pos  (** internal event, [do "tag"] *)

type rule = {
  guard : expr;
  intents : intent list;
  rpos : pos;
  gspan : pos * pos;
      (** positions of the guard's first and last tokens (inclusive) —
          the span flow diagnostics underline *)
}

type selector =
  | Sel_pid of expr * pos  (** [process <expr>] — a specific process *)
  | Sel_rest of pos  (** [process *] — every process not matched above *)

type symgen =
  | Rotation of pos  (** [i ↦ i+1 mod n] *)
  | Swap of expr * expr * pos
  | Cycle of expr * expr * pos  (** cyclic permutation of an inclusive range *)

type atom_scope =
  | At of expr  (** evaluated over one process's projection *)
  | Forall  (** must hold at every process's projection *)

type param_decl = {
  key : string;
  default : int;
  lo : int option;
  hi : int option;
  pdoc : string;
  ppos : pos;
}

type atom_decl = {
  aname : string;
  scope : atom_scope;
  body : expr;
  apos : pos;
}

type item =
  | Doc of string * pos
  | Param of param_decl
  | Processes of expr * pos
  | Depth of int * pos
  | Process of selector * rule list * pos
  | Atom of atom_decl
  | Symmetry of symgen * pos
  | Faults of string list * pos
  | Lint_expect of string list * pos

type spec = { sname : string; items : item list; spos : pos }

val expr_pos : expr -> pos
val intent_pos : intent -> pos
val binop_to_string : binop -> string
