(* Recursive-descent parser for the .hpl grammar (DESIGN.md §11).

   Keywords are matched contextually from IDENT tokens, so the lexer
   stays trivial. Expressions use one untyped grammar for both integer
   and boolean positions — precedence (low to high): '||', '&&',
   comparison (non-associative), '+'/'-', '*'/'/'/'%', unary '!'/'-' —
   and the elaborator's type check separates the two, which avoids the
   classic "parenthesized boolean vs parenthesized integer" ambiguity
   without backtracking. *)

open Ast

type state = { file : string; toks : Lexer.t array; mutable i : int }

let peek st = st.toks.(st.i)
let peek_tok st = (peek st).Lexer.tok
let peek_pos st = (peek st).Lexer.pos

let advance st =
  let t = st.toks.(st.i) in
  if st.i < Array.length st.toks - 1 then st.i <- st.i + 1;
  t

let fail st pos fmt =
  Printf.ksprintf (fun msg -> raise (Diag.Error (Diag.make ~file:st.file ~pos msg))) fmt

let expect st tok what =
  let t = advance st in
  if t.Lexer.tok <> tok then
    fail st t.Lexer.pos "expected %s, got %s" what
      (Lexer.token_to_string t.Lexer.tok)

let expect_ident st what =
  let t = advance st in
  match t.Lexer.tok with
  | Lexer.IDENT s -> (s, t.Lexer.pos)
  | k -> fail st t.Lexer.pos "expected %s, got %s" what (Lexer.token_to_string k)

let expect_string st what =
  let t = advance st in
  match t.Lexer.tok with
  | Lexer.STRING s -> (s, t.Lexer.pos)
  | k -> fail st t.Lexer.pos "expected %s, got %s" what (Lexer.token_to_string k)

(* integer literal with optional leading minus — for parameter
   defaults/bounds and depth, where full expressions are not allowed *)
let expect_int_lit st what =
  let t = advance st in
  match t.Lexer.tok with
  | Lexer.INT k -> (k, t.Lexer.pos)
  | Lexer.MINUS -> (
      let t2 = advance st in
      match t2.Lexer.tok with
      | Lexer.INT k -> (-k, t.Lexer.pos)
      | k ->
          fail st t2.Lexer.pos "expected %s, got %s" what
            (Lexer.token_to_string k))
  | k -> fail st t.Lexer.pos "expected %s, got %s" what (Lexer.token_to_string k)

(* -- expressions --------------------------------------------------------- *)

let rec parse_or st =
  let lhs = parse_and st in
  if peek_tok st = Lexer.OROR then begin
    let p = (advance st).Lexer.pos in
    let rhs = parse_or st in
    Binop (Or, lhs, rhs, p)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek_tok st = Lexer.ANDAND then begin
    let p = (advance st).Lexer.pos in
    let rhs = parse_and st in
    Binop (And, lhs, rhs, p)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek_tok st with
    | Lexer.EQEQ -> Some Eq
    | Lexer.NE -> Some Ne
    | Lexer.LT -> Some Lt
    | Lexer.LE -> Some Le
    | Lexer.GT -> Some Gt
    | Lexer.GE -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      let p = (advance st).Lexer.pos in
      let rhs = parse_add st in
      Binop (op, lhs, rhs, p)

and parse_add st =
  let rec loop lhs =
    match peek_tok st with
    | Lexer.PLUS ->
        let p = (advance st).Lexer.pos in
        loop (Binop (Add, lhs, parse_mul st, p))
    | Lexer.MINUS ->
        let p = (advance st).Lexer.pos in
        loop (Binop (Sub, lhs, parse_mul st, p))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek_tok st with
    | Lexer.STAR ->
        let p = (advance st).Lexer.pos in
        loop (Binop (Mul, lhs, parse_unary st, p))
    | Lexer.SLASH ->
        let p = (advance st).Lexer.pos in
        loop (Binop (Div, lhs, parse_unary st, p))
    | Lexer.PERCENT ->
        let p = (advance st).Lexer.pos in
        loop (Binop (Mod, lhs, parse_unary st, p))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek_tok st with
  | Lexer.MINUS ->
      let p = (advance st).Lexer.pos in
      Unop (`Neg, parse_unary st, p)
  | Lexer.BANG ->
      let p = (advance st).Lexer.pos in
      Unop (`Not, parse_unary st, p)
  | _ -> parse_primary st

and parse_primary st =
  let t = advance st in
  let p = t.Lexer.pos in
  match t.Lexer.tok with
  | Lexer.INT k -> Int (k, p)
  | Lexer.LPAREN ->
      let e = parse_or st in
      expect st Lexer.RPAREN "')'";
      e
  | Lexer.IDENT "true" -> Boolean (true, p)
  | Lexer.IDENT "false" -> Boolean (false, p)
  | Lexer.IDENT name when peek_tok st = Lexer.LPAREN -> (
      ignore (advance st);
      match name with
      | "sends" | "recvs" ->
          let payload, _ = expect_string st "a payload string" in
          expect st Lexer.RPAREN "')'";
          Count (name, payload, p)
      | "did" ->
          let tag, _ = expect_string st "an internal-event tag string" in
          expect st Lexer.RPAREN "')'";
          Did (tag, p)
      | "min" | "max" ->
          let a = parse_or st in
          expect st Lexer.COMMA "','";
          let b = parse_or st in
          expect st Lexer.RPAREN "')'";
          Minmax ((if name = "min" then `Min else `Max), a, b, p)
      | _ ->
          fail st p "unknown function '%s' (expected sends, recvs, did, min, max)"
            name)
  | Lexer.IDENT name -> Var (name, p)
  | k -> fail st p "expected an expression, got %s" (Lexer.token_to_string k)

let parse_expr = parse_or

(* -- rules and items ------------------------------------------------------ *)

let parse_intent st =
  let t = advance st in
  let p = t.Lexer.pos in
  match t.Lexer.tok with
  | Lexer.IDENT "send" ->
      let payload, _ = expect_string st "a payload string" in
      let kw, kp = expect_ident st "'to'" in
      if kw <> "to" then fail st kp "expected 'to', got '%s'" kw;
      Send (payload, parse_expr st, p)
  | Lexer.IDENT "recv" -> (
      match peek_tok st with
      | Lexer.IDENT "from" ->
          ignore (advance st);
          Recv (Some (parse_expr st), p)
      | _ -> Recv (None, p))
  | Lexer.IDENT "do" ->
      let tag, _ = expect_string st "an internal-event tag string" in
      Act (tag, p)
  | k ->
      fail st p "expected an intent (send, recv, do), got %s"
        (Lexer.token_to_string k)

let parse_rule st =
  let _, rpos = expect_ident st "'when'" in
  let gstart = peek_pos st in
  let guard = parse_expr st in
  (* the guard's last token is the one just consumed before '=>' *)
  let gend = st.toks.(st.i - 1).Lexer.epos in
  expect st Lexer.ARROW "'=>'";
  let rec more acc =
    if peek_tok st = Lexer.COMMA then begin
      ignore (advance st);
      more (parse_intent st :: acc)
    end
    else List.rev acc
  in
  let intents = more [ parse_intent st ] in
  { guard; intents; rpos; gspan = (gstart, gend) }

let parse_process st ppos =
  let sel =
    match peek_tok st with
    | Lexer.STAR ->
        let p = (advance st).Lexer.pos in
        Sel_rest p
    | _ ->
        let p = peek_pos st in
        Sel_pid (parse_expr st, p)
  in
  expect st Lexer.LBRACE "'{'";
  let rec rules acc =
    match peek_tok st with
    | Lexer.RBRACE ->
        ignore (advance st);
        List.rev acc
    | Lexer.IDENT "when" -> rules (parse_rule st :: acc)
    | k ->
        fail st (peek_pos st) "expected 'when' or '}' in process block, got %s"
          (Lexer.token_to_string k)
  in
  Process (sel, rules [], ppos)

let parse_param st ppos =
  let key, _ = expect_ident st "a parameter name" in
  expect st Lexer.EQUALS "'='";
  let default, _ = expect_int_lit st "an integer default" in
  let lo = ref None and hi = ref None and pdoc = ref "" in
  let rec opts () =
    match peek_tok st with
    | Lexer.IDENT "min" ->
        ignore (advance st);
        let v, _ = expect_int_lit st "an integer lower bound" in
        lo := Some v;
        opts ()
    | Lexer.IDENT "max" ->
        ignore (advance st);
        let v, _ = expect_int_lit st "an integer upper bound" in
        hi := Some v;
        opts ()
    | Lexer.IDENT "doc" ->
        ignore (advance st);
        let s, _ = expect_string st "a doc string" in
        pdoc := s;
        opts ()
    | _ -> ()
  in
  opts ();
  Param { key; default; lo = !lo; hi = !hi; pdoc = !pdoc; ppos }

let parse_symgen st spos =
  let name, p = expect_ident st "a symmetry generator (rotation, swap, cycle)" in
  match name with
  | "rotation" -> Symmetry (Rotation p, spos)
  | "swap" ->
      let a = parse_expr st in
      let b = parse_expr st in
      Symmetry (Swap (a, b, p), spos)
  | "cycle" ->
      let a = parse_expr st in
      expect st Lexer.DOTDOT "'..'";
      let b = parse_expr st in
      Symmetry (Cycle (a, b, p), spos)
  | _ ->
      fail st p "unknown symmetry generator '%s' (expected rotation, swap, or cycle)"
        name

let parse_strings st what =
  let s, _ = expect_string st what in
  let rec more acc =
    match peek_tok st with
    | Lexer.STRING s ->
        ignore (advance st);
        more (s :: acc)
    | _ -> List.rev acc
  in
  more [ s ]

let parse_atom st apos =
  let aname, _ = expect_ident st "an atom name" in
  let scope =
    match advance st with
    | { Lexer.tok = Lexer.IDENT "at"; _ } -> At (parse_expr st)
    | { Lexer.tok = Lexer.IDENT "forall"; _ } -> Forall
    | { Lexer.tok = k; pos } ->
        fail st pos "expected 'at <process>' or 'forall', got %s"
          (Lexer.token_to_string k)
  in
  expect st Lexer.EQUALS "'='";
  Atom { aname; scope; body = parse_expr st; apos }

let parse_item st =
  let t = advance st in
  let p = t.Lexer.pos in
  match t.Lexer.tok with
  | Lexer.IDENT "doc" ->
      let s, _ = expect_string st "a doc string" in
      Doc (s, p)
  | Lexer.IDENT "param" -> parse_param st p
  | Lexer.IDENT "processes" -> Processes (parse_expr st, p)
  | Lexer.IDENT "depth" ->
      let d, _ = expect_int_lit st "an integer depth" in
      Depth (d, p)
  | Lexer.IDENT "process" -> parse_process st p
  | Lexer.IDENT "atom" -> parse_atom st p
  | Lexer.IDENT "symmetry" -> parse_symgen st p
  | Lexer.IDENT "faults" -> Faults (parse_strings st "a fault-scenario string", p)
  | Lexer.IDENT "lint_expect" ->
      Lint_expect (parse_strings st "a lint rule id string", p)
  | k ->
      fail st p
        "expected an item (doc, param, processes, depth, process, atom, \
         symmetry, faults, lint_expect), got %s"
        (Lexer.token_to_string k)

let parse_spec st =
  let kw, kp = expect_ident st "'protocol'" in
  if kw <> "protocol" then fail st kp "expected 'protocol', got '%s'" kw;
  let sname, spos =
    match advance st with
    | { Lexer.tok = Lexer.IDENT s; pos } -> (s, pos)
    | { Lexer.tok = Lexer.STRING s; pos } -> (s, pos)
    | { Lexer.tok = k; pos } ->
        fail st pos "expected a protocol name, got %s" (Lexer.token_to_string k)
  in
  expect st Lexer.LBRACE "'{'";
  let rec items acc =
    match peek_tok st with
    | Lexer.RBRACE ->
        ignore (advance st);
        List.rev acc
    | _ -> items (parse_item st :: acc)
  in
  let its = items [] in
  expect st Lexer.EOF "end of file after the protocol block";
  { sname; items = its; spos }

let parse ~file src : (Ast.spec, Diag.t) result =
  match Lexer.tokenize ~file src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { file; toks = Array.of_list toks; i = 0 } in
      try Ok (parse_spec st) with Diag.Error e -> Error e)
