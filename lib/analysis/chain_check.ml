open Hpl_core

type verdict =
  | Feasible of { chain : int list; paths : int list list; min_hops : int }
  | Infeasible of { level : int option; detail : string }
  | Unknown of string

(* A stage of the chain: one knowledge level (or the body-locality
   origin), with the processes that may realize it. [`Joint] needs some
   member on the chain (K of a group, S); [`Each] needs every member,
   each with its own feasible continuation (E). *)
type stage = {
  kind : [ `Joint | `Each ];
  members : int list;
  label : string;
  level : int option;
}

let pids_to_string = function
  | [ p ] -> Printf.sprintf "p%d" p
  | ps ->
      "{" ^ String.concat "," (List.map (Printf.sprintf "p%d") ps) ^ "}"

let stage_of_level idx (l : Formula.nest_level) =
  let kind, opname =
    match l.Formula.op with
    | `Everyone -> (`Each, "E")
    | `Know -> (`Joint, "K")
    | `Someone -> (`Joint, "S")
  in
  {
    kind;
    members = List.sort_uniq Int.compare l.Formula.pset;
    label = Printf.sprintf "%s %s" opname (pids_to_string l.Formula.pset);
    level = Some idx;
  }

let origin_stage origins =
  {
    kind = `Joint;
    members = List.sort_uniq Int.compare origins;
    label = Printf.sprintf "body locality %s" (pids_to_string origins);
    level = None;
  }

(* Shortest delivered-channel path from any of [prev] to [q]. *)
let best_path g prev q =
  List.fold_left
    (fun best o ->
      match Channel_graph.path g o q with
      | None -> best
      | Some p -> (
          match best with
          | Some b when List.length b <= List.length p -> best
          | _ -> Some p))
    None prev

(* Minimal-hops feasible chain through [stages] starting anywhere in
   [prev]. Ok (hops, chosen pids, connecting paths) or Error with the
   failing formula level and a description. *)
let rec solve g prev stages =
  match stages with
  | [] -> Ok (0, [], [])
  | st :: rest -> (
      let attempt q =
        if not (Channel_graph.active g q) then
          Error (`Here (Printf.sprintf "p%d never takes any event" q))
        else
          match best_path g prev q with
          | None ->
              Error
                (`Here
                   (Printf.sprintf
                      "no delivered-channel path from %s reaches p%d"
                      (pids_to_string prev) q))
          | Some path -> (
              match solve g [ q ] rest with
              | Ok (c, pids, paths) ->
                  Ok (List.length path - 1 + c, q :: pids, path :: paths)
              | Error e -> Error (`Deep e))
      in
      let here detail =
        Error
          ( st.level,
            Printf.sprintf "level %s cannot join the chain: %s" st.label detail
          )
      in
      match st.kind with
      | `Joint -> (
          let results = List.map attempt st.members in
          let oks =
            List.filter_map (function Ok r -> Some r | Error _ -> None) results
          in
          match oks with
          | _ :: _ ->
              let best =
                List.fold_left
                  (fun (bc, bp, bps) (c, p, ps) ->
                    if c < bc then (c, p, ps) else (bc, bp, bps))
                  (List.hd oks) (List.tl oks)
              in
              Ok best
          | [] -> (
              (* prefer an error from deeper in the chain: the member
                 was reachable, the failure lies further out *)
              match
                List.find_map
                  (function Error (`Deep e) -> Some e | _ -> None)
                  results
              with
              | Some e -> Error e
              | None ->
                  let msgs =
                    List.filter_map
                      (function Error (`Here m) -> Some m | _ -> None)
                      results
                  in
                  here (String.concat "; " msgs)))
      | `Each ->
          let rec all acc = function
            | [] -> Ok acc
            | q :: qs -> (
                match attempt q with
                | Ok r -> all (r :: acc) qs
                | Error (`Here m) -> here m
                | Error (`Deep e) -> Error e)
          in
          (* cost of an E level is its most expensive member branch —
             every conjunct must be gained *)
          (match all [] st.members with
          | Error e -> Error e
          | Ok [] -> here "empty process set"
          | Ok (b :: bs) ->
              let c, p, ps =
                List.fold_left
                  (fun (bc, bp, bps) (c, p, ps) ->
                    if c > bc then (c, p, ps) else (bc, bp, bps))
                  b bs
              in
              Ok (c, p, ps)))

let all_pids g = List.init (Channel_graph.n g) Fun.id

let run g ~origins stages_of =
  match Channel_graph.scope g with
  | Channel_graph.Incomplete ->
      Unknown "channel graph is incomplete (state cap hit) — no verdict"
  | Channel_graph.Exact | Channel_graph.Up_to_depth _ -> (
      let prev, stages = stages_of origins in
      match stages with
      | [] -> Unknown "degenerate nest (no levels)"
      | _ -> (
          match solve g prev stages with
          | Ok (min_hops, chain, paths) -> Feasible { chain; paths; min_hops }
          | Error (level, detail) -> Infeasible { level; detail }))

let gain g ~origins (nest : Formula.nest) =
  run g ~origins (fun origins ->
      let levels = List.mapi (fun i l -> stage_of_level (i + 1) l) nest.levels in
      match origins with
      | Some os -> (all_pids g, origin_stage os :: List.rev levels)
      | None -> (all_pids g, List.rev levels))

let loss g ~origins (nest : Formula.nest) =
  run g ~origins (fun origins ->
      let levels = List.mapi (fun i l -> stage_of_level (i + 1) l) nest.levels in
      match origins with
      | Some os -> (all_pids g, levels @ [ origin_stage os ])
      | None -> (all_pids g, levels))

let min_depth = function
  | Feasible { min_hops; _ } -> Some (2 * min_hops)
  | Infeasible _ | Unknown _ -> None

let never_holds g ~env ~depth (nest : Formula.nest) ~gain =
  match gain with
  | Feasible _ | Unknown _ -> false
  | Infeasible _ ->
      let covered =
        match (Channel_graph.scope g, depth) with
        | Channel_graph.Exact, _ -> true
        | Channel_graph.Up_to_depth f, Some d -> d <= f
        | Channel_graph.Up_to_depth _, None -> false
        | Channel_graph.Incomplete, _ -> false
      in
      covered
      && (match Formula.eval_at ~env nest.body Trace.empty with
         | Some false -> true
         | Some true | None -> false)
