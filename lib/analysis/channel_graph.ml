open Hpl_core

type recv_shape = Any | From of int | Filtered of string
type scope = Exact | Up_to_depth of int | Incomplete

type t = {
  n : int;
  fuel : int;
  scope : scope;
  states : int;
  channels : (int * int) list;  (* sorted, with at least one send *)
  payloads : (int * int, string list) Hashtbl.t;
  delivered : (int * int) list;
  active : bool array;
  tags : string list array;
  shapes : (recv_shape * bool) list array;
  dead : (int * int * string) list;
  bad : (int * int * string) list;
  errors : (int * string) list;
  adj : int list array;  (* delivered adjacency, in-range endpoints *)
}

(* -- exploration -------------------------------------------------------- *)

let extract ?(fuel = 16) ?(max_states = 60_000) spec =
  if fuel < 1 then invalid_arg "Channel_graph.extract: fuel must be >= 1";
  let n = Spec.n spec in
  (* discovered local histories, per process *)
  let visited : (Event.t list, unit) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 64)
  in
  let states = ref 0 in
  let capped = ref false in
  let fuel_hit = ref false in
  (* over-approximate message pool, keyed by destination (in range) *)
  let pool : (int, (Msg.t, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let pool_of d =
    match Hashtbl.find_opt pool d with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 16 in
        Hashtbl.add pool d h;
        h
  in
  let accepted : (Msg.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let sent_payloads : (int * int, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let delivered_tbl : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let active = Array.make n false in
  let tags = Array.init n (fun _ -> Hashtbl.create 8) in
  let shapes : (recv_shape, bool ref) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 8)
  in
  let bad : (int * int * string, unit) Hashtbl.t = Hashtbl.create 8 in
  let errors : (int, string) Hashtbl.t = Hashtbl.create 4 in
  let work : (int * Event.t list) Queue.t = Queue.create () in
  let discover p h =
    if not (Hashtbl.mem visited.(p) h) then
      if !states >= max_states then capped := true
      else begin
        Hashtbl.add visited.(p) h ();
        incr states;
        Queue.add (p, h) work
      end
  in
  let record_send p m =
    let di = Pid.to_int m.Msg.dst in
    if di >= n || di = p then Hashtbl.replace bad (p, di, m.Msg.payload) ();
    let key = (p, di) in
    let payloads =
      match Hashtbl.find_opt sent_payloads key with
      | Some h -> h
      | None ->
          let h = Hashtbl.create 4 in
          Hashtbl.add sent_payloads key h;
          h
    in
    Hashtbl.replace payloads m.Msg.payload ();
    if di < n then begin
      let dst_pool = pool_of di in
      if not (Hashtbl.mem dst_pool m) then begin
        Hashtbl.add dst_pool m ();
        (* the destination's explored histories may now extend further:
           re-expand them against the grown pool (idempotent — children
           already discovered are skipped) *)
        Hashtbl.iter (fun h () -> Queue.add (di, h) work) visited.(di)
      end
    end
  in
  let record_shape p shape satisfied =
    let r =
      match Hashtbl.find_opt shapes.(p) shape with
      | Some r -> r
      | None ->
          let r = ref false in
          Hashtbl.add shapes.(p) shape r;
          r
    in
    if satisfied then r := true
  in
  let expand p h =
    (* a well-formed computation receives each message at most once, so
       candidates already consumed by this history can be excluded
       without losing any real history *)
    let consumed =
      List.filter_map
        (fun e ->
          match e.Event.kind with
          | Event.Receive m -> Some (Msg.key m)
          | Event.Send _ | Event.Internal _ -> None)
        h
    in
    let candidates =
      match Hashtbl.find_opt pool p with
      | None -> []
      | Some tbl ->
          Hashtbl.fold
            (fun m () acc ->
              if List.mem (Msg.key m) consumed then acc else m :: acc)
            tbl []
    in
    let pid = Pid.of_int p in
    match
      let intents = Spec.rule_of spec pid h in
      List.concat_map
        (fun intent ->
          let events = Spec.intent_events pid ~history:h ~pool:candidates intent in
          (match intent with
          | Spec.Recv_any -> record_shape p Any (events <> [])
          | Spec.Recv_from src ->
              record_shape p (From (Pid.to_int src)) (events <> [])
          | Spec.Recv_if (name, _) ->
              record_shape p (Filtered name) (events <> [])
          | Spec.Send_to _ | Spec.Do _ -> ());
          events)
        intents
    with
    | exception e ->
        if not (Hashtbl.mem errors p) then
          Hashtbl.add errors p (Printexc.to_string e)
    | events ->
        if events <> [] then begin
          active.(p) <- true;
          if List.length h >= fuel then fuel_hit := true
          else
            List.iter
              (fun e ->
                (match e.Event.kind with
                | Event.Send m -> record_send p m
                | Event.Receive m ->
                    Hashtbl.replace accepted m ();
                    Hashtbl.replace delivered_tbl (Pid.to_int m.Msg.src, p) ()
                | Event.Internal tag -> Hashtbl.replace tags.(p) tag ());
                discover p (h @ [ e ]))
              events
        end
  in
  for p = 0 to n - 1 do
    discover p []
  done;
  while not (Queue.is_empty work) do
    let p, h = Queue.pop work in
    if not !capped then expand p h
  done;
  let scope =
    if !capped then Incomplete else if !fuel_hit then Up_to_depth fuel else Exact
  in
  let channels =
    Hashtbl.fold (fun c _ acc -> c :: acc) sent_payloads []
    |> List.sort_uniq Stdlib.compare
  in
  let payloads = Hashtbl.create 16 in
  Hashtbl.iter
    (fun c tbl ->
      Hashtbl.replace payloads c
        (Hashtbl.fold (fun s () acc -> s :: acc) tbl [] |> List.sort_uniq String.compare))
    sent_payloads;
  let delivered =
    Hashtbl.fold (fun c _ acc -> c :: acc) delivered_tbl []
    |> List.sort_uniq Stdlib.compare
  in
  let dead =
    Hashtbl.fold
      (fun d tbl acc ->
        Hashtbl.fold
          (fun m () acc ->
            if Hashtbl.mem accepted m then acc
            else (Pid.to_int m.Msg.src, d, m.Msg.payload) :: acc)
          tbl acc)
      pool []
    |> List.sort_uniq Stdlib.compare
  in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) -> if a < n && b < n && a <> b then adj.(a) <- b :: adj.(a))
    delivered;
  {
    n;
    fuel;
    scope;
    states = !states;
    channels;
    payloads;
    delivered;
    active;
    tags = Array.map (fun h -> Hashtbl.fold (fun t () acc -> t :: acc) h [] |> List.sort String.compare) tags;
    shapes =
      Array.map
        (fun h ->
          Hashtbl.fold (fun s r acc -> (s, !r) :: acc) h []
          |> List.sort Stdlib.compare)
        shapes;
    dead;
    bad = Hashtbl.fold (fun b () acc -> b :: acc) bad [] |> List.sort_uniq Stdlib.compare;
    errors = Hashtbl.fold (fun p e acc -> (p, e) :: acc) errors [] |> List.sort Stdlib.compare;
    adj;
  }

(* -- accessors ----------------------------------------------------------- *)

let n t = t.n
let fuel t = t.fuel
let scope t = t.scope
let states t = t.states
let channels t = t.channels

let channel_payloads t a b =
  Option.value ~default:[] (Hashtbl.find_opt t.payloads (a, b))

let delivered t = t.delivered
let active t p = p >= 0 && p < t.n && t.active.(p)
let internal_tags t p = if p < 0 || p >= t.n then [] else t.tags.(p)
let recv_shapes t p = if p < 0 || p >= t.n then [] else t.shapes.(p)
let dead_letters t = t.dead
let bad_sends t = t.bad
let rule_errors t = t.errors

let without_channels t removed =
  let delivered =
    List.filter (fun c -> not (List.mem c removed)) t.delivered
  in
  let adj = Array.make t.n [] in
  List.iter
    (fun (a, b) -> if a < t.n && b < t.n && a <> b then adj.(a) <- b :: adj.(a))
    delivered;
  { t with delivered; adj }

(* -- reachability over delivered channels -------------------------------- *)

let bfs t src =
  let parent = Array.make t.n (-2) in
  if src < 0 || src >= t.n then parent
  else begin
    parent.(src) <- -1;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if parent.(v) = -2 then begin
            parent.(v) <- u;
            Queue.add v q
          end)
        t.adj.(u)
    done;
    parent
  end

let reach t src dst =
  src >= 0 && src < t.n && dst >= 0 && dst < t.n
  && (src = dst || (bfs t src).(dst) <> -2)

let path t src dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then None
  else if src = dst then Some [ src ]
  else
    let parent = bfs t src in
    if parent.(dst) = -2 then None
    else
      let rec build v acc =
        if v = src then src :: acc else build parent.(v) (v :: acc)
      in
      Some (build dst [])

(* -- printing ------------------------------------------------------------- *)

let scope_to_string = function
  | Exact -> "exact (exploration saturated)"
  | Up_to_depth d -> Printf.sprintf "sound for enumeration depth <= %d" d
  | Incomplete -> "incomplete (state cap hit)"

let shape_to_string = function
  | Any -> "recv-any"
  | From p -> Printf.sprintf "recv-from p%d" p
  | Filtered name -> Printf.sprintf "recv-if %s" name

let pp fmt t =
  Format.fprintf fmt "channel graph: %d processes, %d states explored, %s@,"
    t.n t.states (scope_to_string t.scope);
  List.iter
    (fun (a, b) ->
      Format.fprintf fmt "  p%d -> p%d  {%s}%s@," a b
        (String.concat ", " (channel_payloads t a b))
        (if List.mem (a, b) t.delivered then "" else "  (never delivered)"))
    t.channels;
  for p = 0 to t.n - 1 do
    Format.fprintf fmt "  p%d:%s%s%s@," p
      (if t.active.(p) then "" else " inactive")
      (match t.tags.(p) with
      | [] -> ""
      | ts -> " internal {" ^ String.concat ", " ts ^ "}")
      (match t.shapes.(p) with
      | [] -> ""
      | ss ->
          " "
          ^ String.concat " "
              (List.map
                 (fun (s, sat) ->
                   shape_to_string s ^ if sat then "" else " (never satisfied)")
                 ss))
  done
