open Hpl_core

type atom_state = {
  prop : Prop.t;
  (* per process: local projection ↦ atom value seen there *)
  seen : (Event.t list, bool) Hashtbl.t array;
  alive : bool array;  (* still consistent with "local to p" *)
}

type t = {
  n : int;
  depth : int;
  probes : int;
  exhaustive : bool;
  atoms : (string * atom_state) list;
}

let probe ?(max_probes = 20_000) spec ~depth ~atoms =
  if depth < 0 then invalid_arg "Locality.probe: depth must be >= 0";
  let n = Spec.n spec in
  let states =
    List.map
      (fun (name, prop) ->
        ( name,
          {
            prop;
            seen = Array.init n (fun _ -> Hashtbl.create 64);
            alive = Array.make n true;
          } ))
      atoms
  in
  let probes = ref 0 in
  let capped = ref false in
  let visit z =
    incr probes;
    List.iter
      (fun (_, st) ->
        let v = Prop.eval st.prop z in
        for p = 0 to n - 1 do
          if st.alive.(p) then
            let key = Trace.proj z (Pid.of_int p) in
            match Hashtbl.find_opt st.seen.(p) key with
            | None -> Hashtbl.add st.seen.(p) key v
            | Some v' -> if v <> v' then st.alive.(p) <- false
        done)
      states
  in
  (* every computation is reachable by appending its own events in
     order, so the extension tree has no duplicates — plain DFS *)
  let rec walk z len =
    if !probes >= max_probes then capped := true
    else begin
      visit z;
      if len < depth then
        List.iter (fun z' -> if not !capped then walk z' (len + 1))
          (Spec.extensions spec z)
    end
  in
  walk Trace.empty 0;
  { n; depth; probes = !probes; exhaustive = not !capped; atoms = states }

let exhaustive t = t.exhaustive
let probes t = t.probes
let depth t = t.depth

let local_pids t name =
  List.assoc_opt name t.atoms
  |> Option.map (fun st ->
         List.filter (fun p -> st.alive.(p)) (List.init t.n Fun.id))

let origins t formula =
  if not t.exhaustive then None
  else
    let names = Formula.atoms formula in
    let all = List.init t.n Fun.id in
    let rec common acc = function
      | [] -> Some acc
      | name :: rest -> (
          match local_pids t name with
          | None -> None
          | Some ps -> common (List.filter (fun p -> List.mem p ps) acc) rest)
    in
    match common all names with
    | Some (_ :: _ as ps) -> Some ps
    | Some [] | None -> None
