(** The [hpl lint] engine: static findings over a spec, its formulas,
    and its fault scenarios — no universe enumeration anywhere.

    Every rule is grounded in a structural fact of the
    {!Channel_graph} (hygiene rules) or in a theorem of the paper
    (chain rules, Theorems 4–6; CK constancy, §4.2; locality facts,
    §4.2). Findings carry a rule id, a severity, a witness where one
    exists, and a fix hint. A protocol may declare {e expected}
    findings ({!Hpl_protocols.Protocol.t.lint_expect}); those are
    annotated and do not fail the gate.

    {2 Rules}

    Hygiene (always run):
    - [rule-raises] (error) — a process rule raised during probing
    - [bad-address] (error) — send addressed outside the system or to
      the sender itself
    - [dead-letter] (warning) — payload sent on a real channel but
      never accepted by any receive of the destination
    - [recv-starved] (warning) — receive willingness never satisfied
      by any message
    - [inactive-process] (warning) — process never takes any event
    - [analysis-incomplete] (info) — the state cap stopped extraction

    Formula rules (per asserted formula):
    - [chain-infeasible] (error when provably never holds, warning
      otherwise) — no gain chain per Theorems 4–5
    - [chain-feasible] (info) — witness chain and its hop cost
    - [depth-insufficient] (warning) — the analyzed depth is below the
      chain's minimum event cost
    - [loss-infeasible] (info) — Theorem 6 chain missing: stable once
      gained
    - [chain-unknown] (info) — graph too incomplete for a verdict
    - [ck-constant] (info) — the formula contains [CK], a constant

    Derived formulas (auto-generated [K q atom] probes when the caller
    asserts none) report the same chain rules at info severity.

    Atom rules (when the locality probe is exhaustive):
    - [atom-local] / [atom-global] (info)

    Fault rules (when a scenario is given):
    - [fault-unknown-channel] (error under an [Exact] graph, warning
      otherwise) — [drop:pA->pB]/[dup:pA->pB] names a channel the spec
      does not have
    - [fault-severs-chain] (warning) — a chain feasible in the
      fault-free spec becomes infeasible under the scenario's
      transformers
    - [lossy-gain-chain] (warning) — every gain chain crosses a
      dropped channel: gain is at the daemon's mercy, and no protocol
      over such channels attains common knowledge (coordinated
      attack) *)

open Hpl_core

type severity = Error | Warning | Info

type finding = {
  rule : string;
  severity : severity;
  target : string;  (** what it is about: ["p1"], ["p0->p1"], a formula *)
  message : string;
  witness : string option;
  hint : string option;
  expected : bool;  (** matched an expected-findings annotation *)
}

type report = {
  subject : string;
  depth : int;  (** depth the claims are relative to *)
  findings : finding list;
  graph : Channel_graph.t;
  locality : Locality.t;
}

val lint_spec :
  ?fuel:int ->
  ?max_states:int ->
  ?max_probes:int ->
  ?atoms:(string * Prop.t) list ->
  ?formulas:Formula.t list ->
  ?derive:bool ->
  ?faults:Hpl_faults.Faults.Scenario.t ->
  ?expect:string list ->
  depth:int ->
  subject:string ->
  Spec.t ->
  report
(** Run every applicable rule. [formulas] are asserted (full
    severity); when none are given and [derive] (default [true]),
    single-level [K q atom] probes are derived from atoms with exact
    locality and reported at info severity. [expect] entries are rule
    ids or ["rule@target"]. *)

val lint_instance :
  ?fuel:int ->
  ?max_states:int ->
  ?max_probes:int ->
  ?formulas:Formula.t list ->
  ?faults:Hpl_faults.Faults.Scenario.t ->
  ?depth:int ->
  Hpl_protocols.Protocol.instance ->
  report
(** {!lint_spec} wired to a registry instance: its spec, atoms,
    suggested depth, and [lint_expect] annotations. *)

val clean : report -> bool
(** No unexpected error- or warning-severity finding. *)

val exit_code : report list -> int
(** [0] when every report is {!clean}, [1] otherwise. *)

val severity_to_string : severity -> string
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
