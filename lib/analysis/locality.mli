(** Static locality inference for atoms (§4.2).

    A predicate is local to [P] when [P] is always sure of its value.
    The analyzer infers per-process locality of registered atoms by
    probing computations directly — a bounded walk over
    {!Hpl_core.Spec.extensions} grouped by local projection — without
    building a {!Hpl_core.Universe.t}.

    When the probe is {!exhaustive} (it visited {e every} computation
    up to the depth before hitting the cap), the inference coincides
    exactly with {!Hpl_core.Local_pred.is_local} on the [`Full]-mode
    universe of the same depth: both say "constant on every
    same-projection class". When the cap cuts the probe short the
    verdicts are only refutations — a conflict genuinely disproves
    locality, but absence of conflict proves nothing, so {!origins}
    returns [None] and chain checking falls back to unconstrained
    origins. *)

open Hpl_core

type t

val probe :
  ?max_probes:int ->
  Spec.t ->
  depth:int ->
  atoms:(string * Prop.t) list ->
  t
(** Walk all computations of length ≤ [depth] (up to [max_probes],
    default [20_000]) and classify each atom's locality per process. *)

val exhaustive : t -> bool
val probes : t -> int
val depth : t -> int

val local_pids : t -> string -> int list option
(** Processes the atom looks local to — exact when {!exhaustive},
    otherwise an over-approximation (only refutations are sound).
    [None] for an atom not given to {!probe}. *)

val origins : t -> Formula.t -> int list option
(** Sound body-locality origins for {!Chain_check}: [Some ps] when the
    probe was exhaustive, every atom of the formula is classified, and
    [ps] is the (nonempty) set of processes every atom is local to.
    A formula with no atoms is constant, hence local to every process
    (fact 7). [None] otherwise — never an unsound guess. *)
