(** Static chain feasibility for knowledge nests.

    Theorems 4–5 of the paper: gaining
    [P1 knows P2 knows … Pn knows b] requires a process chain
    [<Pn, …, P1>] — a causal message path visiting the processes
    innermost-to-outermost. Theorem 6 dually: losing it requires the
    reverse chain [<P1, …, Pn>]. Both are {e necessary} conditions, so
    their static refutation over the {!Channel_graph} is sound: if no
    delivered-channel path realizes the chain, the knowledge transfer
    is impossible within the graph's soundness scope.

    When the nest's body is known to be local to some process [Q]
    (knowledge facts 2 and 4: [b = Q knows b] when [b] is local to
    [Q]), the chain extends with [Q] at the innermost end — gain needs
    [<Q, Pn, …, P1>] — which is what makes single-level nests
    (plain [K p b]) refutable at all. *)

open Hpl_core

type verdict =
  | Feasible of {
      chain : int list;
          (** one witness: chosen process per chain position,
              information-flow order (origin first, outermost last) *)
      paths : int list list;
          (** [paths.(i)] is a delivered-channel path (inclusive
              endpoints) from [chain.(i)] to [chain.(i+1)] *)
      min_hops : int;
          (** minimal total channel hops over all chain choices
              (max over [E]-branches, min over member choices) *)
    }
  | Infeasible of {
      level : int option;
          (** 1-based formula level (outermost first) that cannot be
              reached; [None] when the body-locality origin itself is
              unreachable or inactive *)
      detail : string;
    }
  | Unknown of string
      (** graph scope is [Incomplete], or the nest is degenerate *)

val gain : Channel_graph.t -> origins:int list option -> Formula.nest -> verdict
(** Feasibility of ever {e gaining} the nest. [origins]: processes the
    body is local to ([None] = unknown — the chain then starts
    unconstrained at the innermost level, which is still sound, just
    weaker). [Know] and [Someone] levels need {e some} member on the
    chain; [Everyone] levels need {e every} member, each with its own
    feasible continuation. *)

val loss : Channel_graph.t -> origins:int list option -> Formula.nest -> verdict
(** Feasibility of ever {e losing} the nest (Theorem 6): the chain runs
    outermost-to-innermost, extended by the body-locality process at
    the far end. *)

val min_depth : verdict -> int option
(** Lower bound on the enumeration depth needed to exhibit the
    transfer: two events (send + receive) per channel hop of the
    cheapest witness chain. [None] unless the verdict is [Feasible]. *)

val never_holds :
  Channel_graph.t ->
  env:(string -> Prop.t option) ->
  depth:int option ->
  Formula.nest ->
  gain:verdict ->
  bool
(** Conservative "holds nowhere" check: the gain chain is [Infeasible],
    every nest level is veridical (always true for [K]/[E]/[S] nests),
    the body evaluates to [false] at the empty computation, and the
    graph's scope covers [depth] ([None] = must cover every depth, i.e.
    scope [Exact]). Then the nest holds at no computation of the
    universe: it is false initially, and Theorem 5 rules out every
    gain. *)
