(* Abstract interpretation over protocol rules — see dataflow.mli.

   Both rule sources (the elaborated .hpl AST and a registry protocol's
   declared Profile) are normalized into one internal shape, [srule]:
   an abstract guard evaluator (a closure over a counter-hull lookup),
   a concrete guard oracle (for the soundness tests), and a list of
   intents each carrying a static firing cap. Everything downstream —
   the liveness fixpoint, verdicts, channels, bounds, independence —
   works on [srule] alone, so the two front ends cannot drift in the
   analyses, only in how faithfully they translate guards. *)

open Hpl_core
module P = Hpl_protocols.Protocol
module Profile = P.Profile
module Ast = Hpl_dsl.Ast
module Elab = Hpl_dsl.Elaborate
module Diag = Hpl_dsl.Diag

(* -- interval domain ------------------------------------------------------ *)

(* [max_int] is +inf, [min_int] is -inf. Counters live in [0, hi]; full
   intervals appear only transiently while evaluating expressions
   (negation, subtraction). Arithmetic saturates at the infinities;
   finite values in this domain are tiny (caps, parameters), so finite
   overflow is not a practical concern. *)

type itv = { lo : int; hi : int }

let pinf = max_int
let ninf = min_int
let point k = { lo = k; hi = k }
let top = { lo = ninf; hi = pinf }
let nonneg hi = { lo = 0; hi }

(* saturating bound addition; the two sides resolve the (impossible in
   well-formed intervals) mixed-infinity case differently so each bound
   errs outward *)
let add_lo a b =
  if a = ninf || b = ninf then ninf
  else if a = pinf || b = pinf then pinf
  else a + b

let add_hi a b =
  if a = pinf || b = pinf then pinf
  else if a = ninf || b = ninf then ninf
  else a + b

(* nonnegative saturating sum, for counter caps *)
let sadd a b = if a = pinf || b = pinf then pinf else a + b
let iadd a b = { lo = add_lo a.lo b.lo; hi = add_hi a.hi b.hi }

let neg_b x = if x = ninf then pinf else if x = pinf then ninf else -x
let ineg a = { lo = neg_b a.hi; hi = neg_b a.lo }
let isub a b = iadd a (ineg b)
let imin a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
let imax a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }

let finite x = x <> ninf && x <> pinf

let imul a b =
  if finite a.lo && finite a.hi && finite b.lo && finite b.hi then begin
    let ps = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
    {
      lo = List.fold_left min (List.hd ps) ps;
      hi = List.fold_left max (List.hd ps) ps;
    }
  end
  else top

(* divisor is a nonzero constant (the elaborator validates this for
   loaded specs); truncation toward zero is monotone in the dividend
   for either divisor sign *)
let idiv a k =
  if k > 0 then
    {
      lo = (if finite a.lo then a.lo / k else a.lo);
      hi = (if finite a.hi then a.hi / k else a.hi);
    }
  else
    {
      lo = (if finite a.hi then a.hi / k else neg_b a.hi);
      hi = (if finite a.lo then a.lo / k else neg_b a.lo);
    }

let imod a k =
  if a.lo >= 0 && k > 0 then { lo = 0; hi = min a.hi (k - 1) } else top

(* three-valued booleans, encoded as intervals over {0, 1} *)
let tru = point 1
let fls = point 0
let mby = { lo = 0; hi = 1 }

type tv = [ `T | `F | `M ]

let truth v : tv =
  if v.lo > 0 || v.hi < 0 then `T
  else if v.lo = 0 && v.hi = 0 then `F
  else `M

let of_tv = function `T -> tru | `F -> fls | `M -> mby
let bnot v = match truth v with `T -> fls | `F -> tru | `M -> mby

let band a b =
  match (truth a, truth b) with
  | `F, _ | _, `F -> fls
  | `T, `T -> tru
  | _ -> mby

let bor a b =
  match (truth a, truth b) with
  | `T, _ | _, `T -> tru
  | `F, `F -> fls
  | _ -> mby

let ilt a b = if a.hi < b.lo then tru else if a.lo >= b.hi then fls else mby
let ile a b = if a.hi <= b.lo then tru else if a.lo > b.hi then fls else mby

let ieq a b =
  if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo && finite a.lo then tru
  else if a.hi < b.lo || b.hi < a.lo then fls
  else mby

(* -- counter keys ---------------------------------------------------------- *)

type ckey =
  | K_len
  | K_sends
  | K_recvs
  | K_sends_of of string
  | K_recvs_of of string
  | K_sends_to of int
  | K_did of string

let key_of_counter = function
  | Profile.C_len -> K_len
  | Profile.C_sends -> K_sends
  | Profile.C_recvs -> K_recvs
  | Profile.C_sends_of m -> K_sends_of m
  | Profile.C_recvs_of m -> K_recvs_of m
  | Profile.C_sends_to d -> K_sends_to d
  | Profile.C_did t -> K_did t

(* -- normalized rules ------------------------------------------------------ *)

type src = Src_any | Src_of of int

type intent =
  | I_send of { dst : int option; payload : string }
      (* [None] = history-dependent destination: over-approximated to
         every other process *)
  | I_recv of src
  | I_do of string

type srule = {
  pid : int;
  index : int;
  text : string;
  where : string;
  aguard : (ckey -> itv) -> tv;
  cguard : Event.t list -> bool;
  intents : (intent * int option) list;  (* with static firing caps *)
}

type verdict = Dead | Tautology | Sat

type rule_report = {
  pid : int;
  index : int;
  text : string;
  where : string;
  verdict : verdict;
  starved_recv : bool;
}

(* -- AST front end --------------------------------------------------------- *)

let rec history_free e =
  match e with
  | Ast.Int _ | Ast.Boolean _ -> true
  | Ast.Var (("len" | "sends" | "recvs"), _) -> false
  | Ast.Var _ -> true
  | Ast.Count _ | Ast.Did _ -> false
  | Ast.Minmax (_, a, b, _) | Ast.Binop (_, a, b, _) ->
      history_free a && history_free b
  | Ast.Unop (_, a, _) -> history_free a

let ast_counter_of = function
  | Ast.Var ("len", _) -> Some K_len
  | Ast.Var ("sends", _) -> Some K_sends
  | Ast.Var ("recvs", _) -> Some K_recvs
  | Ast.Count ("sends", m, _) -> Some (K_sends_of m)
  | Ast.Count (_, m, _) -> Some (K_recvs_of m)
  | _ -> None

let rec conjuncts e =
  match e with
  | Ast.Binop (Ast.And, a, b, _) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* abstract evaluation of an AST expression: history-free subtrees are
   concrete at the instance ([evalc] is the elaborator's evaluator on
   the empty history), so only history counters are abstract *)
let rec aeval ~evalc look e =
  if history_free e then point (evalc e)
  else
    match e with
    | Ast.Var ("len", _) -> look K_len
    | Ast.Var ("sends", _) -> look K_sends
    | Ast.Var ("recvs", _) -> look K_recvs
    | Ast.Count ("sends", m, _) -> look (K_sends_of m)
    | Ast.Count (_, m, _) -> look (K_recvs_of m)
    | Ast.Did (t, _) -> look (K_did t)
    | Ast.Minmax (`Min, a, b, _) ->
        imin (aeval ~evalc look a) (aeval ~evalc look b)
    | Ast.Minmax (`Max, a, b, _) ->
        imax (aeval ~evalc look a) (aeval ~evalc look b)
    | Ast.Unop (`Neg, a, _) -> ineg (aeval ~evalc look a)
    | Ast.Unop (`Not, a, _) -> bnot (aeval ~evalc look a)
    | Ast.Binop (op, a, b, _) -> (
        let va () = aeval ~evalc look a and vb () = aeval ~evalc look b in
        match op with
        | Ast.Add -> iadd (va ()) (vb ())
        | Ast.Sub -> isub (va ()) (vb ())
        | Ast.Mul -> imul (va ()) (vb ())
        | Ast.Div ->
            if history_free b then
              let k = evalc b in
              if k = 0 then top else idiv (va ()) k
            else top
        | Ast.Mod ->
            if history_free b then
              let k = evalc b in
              if k = 0 then top else imod (va ()) k
            else top
        | Ast.Eq -> ieq (va ()) (vb ())
        | Ast.Ne -> bnot (ieq (va ()) (vb ()))
        | Ast.Lt -> ilt (va ()) (vb ())
        | Ast.Le -> ile (va ()) (vb ())
        | Ast.Gt -> ilt (vb ()) (va ())
        | Ast.Ge -> ile (vb ()) (va ())
        | Ast.And -> band (va ()) (vb ())
        | Ast.Or -> bor (va ()) (vb ()))
    | Ast.Int _ | Ast.Boolean _ | Ast.Var _ ->
        (* history-free, caught by the fast path above *)
        point (evalc e)

(* firing caps: a guard conjunct thresholding a counter this intent
   increments is a firing budget — counters are monotone over a local
   history and strictly increase with each firing of the intent *)
let ast_cap ~evalc guard ~keys ~do_tag =
  let upd acc cap =
    match acc with None -> Some cap | Some c -> Some (min c cap)
  in
  List.fold_left
    (fun acc c ->
      match c with
      | Ast.Unop (`Not, Ast.Did (t, _), _) when do_tag = Some t -> upd acc 1
      | Ast.Binop (op, l, r, _) -> (
          match (ast_counter_of l, history_free r) with
          | Some k, true when List.mem k keys -> (
              let kv = evalc r in
              match op with
              | Ast.Lt -> upd acc (max kv 0)
              | Ast.Le -> upd acc (max (kv + 1) 0)
              | Ast.Eq -> upd acc (if kv < 0 then 0 else 1)
              | _ -> acc)
          | _ -> (
              match (ast_counter_of r, history_free l) with
              | Some k, true when List.mem k keys -> (
                  let kv = evalc l in
                  match op with
                  | Ast.Gt -> upd acc (max kv 0)
                  | Ast.Ge -> upd acc (max (kv + 1) 0)
                  | Ast.Eq -> upd acc (if kv < 0 then 0 else 1)
                  | _ -> acc)
              | _ -> acc))
      | _ -> acc)
    None (conjuncts guard)

let send_keys payload = [ K_sends; K_len; K_sends_of payload ]
let recv_keys = [ K_recvs; K_len ]

(* compact guard rendering for messages *)
let rec expr_str e =
  match e with
  | Ast.Int (k, _) -> string_of_int k
  | Ast.Boolean (b, _) -> string_of_bool b
  | Ast.Var (v, _) -> v
  | Ast.Count (fn, m, _) -> Printf.sprintf "%s(%S)" fn m
  | Ast.Did (t, _) -> Printf.sprintf "did(%S)" t
  | Ast.Minmax (k, a, b, _) ->
      Printf.sprintf "%s(%s, %s)"
        (match k with `Min -> "min" | `Max -> "max")
        (expr_str a) (expr_str b)
  | Ast.Unop (`Neg, a, _) -> "-" ^ atom_str a
  | Ast.Unop (`Not, a, _) -> "!" ^ atom_str a
  | Ast.Binop (op, a, b, _) ->
      Printf.sprintf "%s %s %s" (atom_str a) (Ast.binop_to_string op)
        (atom_str b)

and atom_str e =
  match e with
  | Ast.Binop _ | Ast.Unop _ -> "(" ^ expr_str e ^ ")"
  | _ -> expr_str e

let ast_srules (l : Elab.loaded) values pid_rules =
  let n = Array.length pid_rules in
  Array.mapi
    (fun pid rl ->
      let evalc e = Elab.eval_expr l values ~me:pid ~history:[] e in
      List.mapi
        (fun index (r : Ast.rule) ->
          let intents =
            List.filter_map
              (fun it ->
                match it with
                | Ast.Send (payload, dst, _) ->
                    if history_free dst then begin
                      let d = evalc dst in
                      if d < 0 || d >= n || d = pid then None
                      else
                        let cap =
                          ast_cap ~evalc r.Ast.guard ~keys:(send_keys payload)
                            ~do_tag:None
                        in
                        Some (I_send { dst = Some d; payload }, cap)
                    end
                    else
                      let cap =
                        ast_cap ~evalc r.Ast.guard ~keys:(send_keys payload)
                          ~do_tag:None
                      in
                      Some (I_send { dst = None; payload }, cap)
                | Ast.Recv (se, _) ->
                    let src =
                      match se with
                      | None -> Some Src_any
                      | Some e ->
                          if history_free e then begin
                            let s = evalc e in
                            if s < 0 || s >= n || s = pid then None
                            else Some (Src_of s)
                          end
                          else Some Src_any
                    in
                    Option.map
                      (fun src ->
                        let cap =
                          ast_cap ~evalc r.Ast.guard ~keys:recv_keys
                            ~do_tag:None
                        in
                        (I_recv src, cap))
                      src
                | Ast.Act (tag, _) ->
                    let cap =
                      ast_cap ~evalc r.Ast.guard ~keys:[ K_len ]
                        ~do_tag:(Some tag)
                    in
                    Some (I_do tag, cap))
              r.Ast.intents
          in
          let gs, ge = r.Ast.gspan in
          {
            pid;
            index;
            text = expr_str r.Ast.guard;
            where = Diag.to_string (Diag.span ~file:l.Elab.file ~pos:gs ~epos:ge "");
            aguard =
              (fun look -> truth (aeval ~evalc look r.Ast.guard));
            cguard =
              (fun history ->
                Elab.eval_expr l values ~me:pid ~history r.Ast.guard <> 0);
            intents;
          })
        rl)
    pid_rules

(* -- Profile front end ----------------------------------------------------- *)

let counter_val history c =
  match c with
  | Profile.C_len -> List.length history
  | Profile.C_sends -> P.sends history
  | Profile.C_recvs -> P.recvs history
  | Profile.C_sends_of m -> P.sends_of history m
  | Profile.C_recvs_of m -> P.recvs_of history m
  | Profile.C_sends_to d ->
      List.length
        (List.filter
           (fun e ->
             match e.Event.kind with
             | Event.Send m -> Pid.to_int m.Msg.dst = d
             | Event.Receive _ | Event.Internal _ -> false)
           history)
  | Profile.C_did t -> if P.did history t then 1 else 0

let atom_holds history = function
  | Profile.Between (c, lo, hi) ->
      let v = counter_val history c in
      v >= lo && (match hi with None -> true | Some h -> v <= h)
  | Profile.Diff_le (c1, c2, k) ->
      counter_val history c1 - counter_val history c2 <= k

let atom_truth look = function
  | Profile.Between (c, lo, hi) ->
      let v = look (key_of_counter c) in
      let always =
        v.lo >= lo && match hi with None -> true | Some h -> v.hi <= h
      in
      let never =
        v.hi < lo || match hi with Some h -> v.lo > h | None -> false
      in
      if always then `T else if never then `F else `M
  | Profile.Diff_le (c1, c2, k) ->
      let d = isub (look (key_of_counter c1)) (look (key_of_counter c2)) in
      if d.hi <= k then `T else if d.lo > k then `F else `M

let conj_truth look atoms =
  List.fold_left
    (fun acc a -> truth (band (of_tv acc) (of_tv (atom_truth look a))))
    `T atoms

let counter_str = function
  | Profile.C_len -> "len"
  | Profile.C_sends -> "sends"
  | Profile.C_recvs -> "recvs"
  | Profile.C_sends_of m -> Printf.sprintf "sends(%S)" m
  | Profile.C_recvs_of m -> Printf.sprintf "recvs(%S)" m
  | Profile.C_sends_to d -> Printf.sprintf "sends->p%d" d
  | Profile.C_did t -> Printf.sprintf "did(%S)" t

let patom_str = function
  | Profile.Between (Profile.C_did t, 0, Some 0) ->
      Printf.sprintf "!did(%S)" t
  | Profile.Between (Profile.C_did t, lo, _) when lo >= 1 ->
      Printf.sprintf "did(%S)" t
  | Profile.Between (c, lo, None) ->
      Printf.sprintf "%s >= %d" (counter_str c) lo
  | Profile.Between (c, lo, Some hi) when lo = hi ->
      Printf.sprintf "%s == %d" (counter_str c) lo
  | Profile.Between (c, 0, Some hi) ->
      Printf.sprintf "%s <= %d" (counter_str c) hi
  | Profile.Between (c, lo, Some hi) ->
      Printf.sprintf "%d <= %s <= %d" lo (counter_str c) hi
  | Profile.Diff_le (c1, c2, 0) ->
      Printf.sprintf "%s <= %s" (counter_str c1) (counter_str c2)
  | Profile.Diff_le (c1, c2, k) ->
      Printf.sprintf "%s - %s <= %d" (counter_str c1) (counter_str c2) k

let pguard_str = function
  | [] -> "true"
  | atoms -> String.concat " && " (List.map patom_str atoms)

let prof_cap atoms ~keys ~do_tag =
  let upd acc cap =
    match acc with None -> Some cap | Some c -> Some (min c cap)
  in
  List.fold_left
    (fun acc a ->
      match a with
      | Profile.Between (Profile.C_did t, _, Some 0) when do_tag = Some t ->
          (* firing flips did to 1, leaving the [.. <= 0] window *)
          upd acc 1
      | Profile.Between (Profile.C_did _, _, _) -> acc
      | Profile.Between (c, lo, Some hi) when List.mem (key_of_counter c) keys
        ->
          let lo = max lo 0 in
          upd acc (if hi < lo then 0 else hi - lo + 1)
      | Profile.Between _ | Profile.Diff_le _ -> acc)
    None atoms

let prof_srules (prof : Profile.t) =
  let n = Array.length prof in
  Array.mapi
    (fun pid rl ->
      List.mapi
        (fun index (r : Profile.rule) ->
          let intents =
            List.filter_map
              (fun (a : Profile.act) ->
                match a with
                | Profile.Send { dst; payload } ->
                    if dst < 0 || dst >= n || dst = pid then None
                    else
                      let keys = K_sends_to dst :: send_keys payload in
                      Some
                        ( I_send { dst = Some dst; payload },
                          prof_cap r.Profile.guard ~keys ~do_tag:None )
                | Profile.Recv ->
                    Some
                      ( I_recv Src_any,
                        prof_cap r.Profile.guard ~keys:recv_keys ~do_tag:None
                      )
                | Profile.Do t ->
                    Some
                      ( I_do t,
                        prof_cap r.Profile.guard ~keys:[ K_len ]
                          ~do_tag:(Some t) ))
              r.Profile.acts
          in
          {
            pid;
            index;
            text = pguard_str r.Profile.guard;
            where = "";
            aguard = (fun look -> conj_truth look r.Profile.guard);
            cguard = (fun history -> List.for_all (atom_holds history) r.Profile.guard);
            intents;
          })
        rl)
    prof

(* -- the liveness fixpoint ------------------------------------------------- *)

type hull = {
  mutable h_sends : int;
  mutable h_recvs : int;
  mutable h_dos : int;
  h_sends_of : (string, int) Hashtbl.t;
  h_recvs_of : (string, int) Hashtbl.t;
  h_sends_to : (int, int) Hashtbl.t;
  h_did : (string, unit) Hashtbl.t;
}

let fresh_hull () =
  {
    h_sends = 0;
    h_recvs = 0;
    h_dos = 0;
    h_sends_of = Hashtbl.create 4;
    h_recvs_of = Hashtbl.create 4;
    h_sends_to = Hashtbl.create 4;
    h_did = Hashtbl.create 4;
  }

(* the hull of every reachable local state of one process: each counter
   in [0, hi] — the empty history is always reachable, so lo = 0 *)
let look_of h k =
  let tbl t key = Option.value (Hashtbl.find_opt t key) ~default:0 in
  match k with
  | K_len -> nonneg (sadd (sadd h.h_sends h.h_recvs) h.h_dos)
  | K_sends -> nonneg h.h_sends
  | K_recvs -> nonneg h.h_recvs
  | K_sends_of m -> nonneg (tbl h.h_sends_of m)
  | K_recvs_of m -> nonneg (tbl h.h_recvs_of m)
  | K_sends_to d -> nonneg (tbl h.h_sends_to d)
  | K_did t -> if Hashtbl.mem h.h_did t then mby else point 0

type t = {
  n : int;
  reports : rule_report list;
  channels : (int * int * string) list;
  graph_exact : bool;
  indep : Reduction.Independence.t option;
  unreachable : (string * string) list;
  conc : (Event.t list -> bool) array array;
  bounds : int array;  (* pinf = unbounded *)
  stable : bool array;
}

let analyze ~n (rules : srule list array) ~atom_exprs =
  let hulls = Array.init n (fun _ -> fresh_hull ()) in
  let chans : (int * int * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let live : (int * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let cap_of = function Some c -> c | None -> pinf in
  let tbl_add t key c =
    Hashtbl.replace t key (sadd (Option.value (Hashtbl.find_opt t key) ~default:0) c)
  in
  let recompute () =
    (* channel capacities by message conservation: a process cannot
       receive more than every live peer send can feed it *)
    let inbound = Array.make n 0 in
    let inbound_m : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
    Array.iter
      (fun rl ->
        List.iter
          (fun (r : srule) ->
            List.iteri
              (fun j (it, cap) ->
                if Hashtbl.mem live (r.pid, r.index, j) then
                  match it with
                  | I_send { dst; payload } ->
                      let c = cap_of cap in
                      let add d =
                        inbound.(d) <- sadd inbound.(d) c;
                        tbl_add inbound_m (d, payload) c
                      in
                      (match dst with
                      | Some d -> add d
                      | None ->
                          for d = 0 to n - 1 do
                            if d <> r.pid then add d
                          done)
                  | I_recv _ | I_do _ -> ())
              r.intents)
          rl)
      rules;
    Array.iteri
      (fun p rl ->
        let h = hulls.(p) in
        Hashtbl.reset h.h_sends_of;
        Hashtbl.reset h.h_recvs_of;
        Hashtbl.reset h.h_sends_to;
        Hashtbl.reset h.h_did;
        let sends = ref 0 and recvs_raw = ref 0 and dos = ref 0 in
        List.iter
          (fun (r : srule) ->
            List.iteri
              (fun j (it, cap) ->
                if Hashtbl.mem live (p, r.index, j) then
                  let c = cap_of cap in
                  match it with
                  | I_send { dst; payload } ->
                      sends := sadd !sends c;
                      tbl_add h.h_sends_of payload c;
                      (match dst with
                      | Some d -> tbl_add h.h_sends_to d c
                      | None ->
                          for d = 0 to n - 1 do
                            if d <> p then tbl_add h.h_sends_to d c
                          done)
                  | I_recv _ -> recvs_raw := sadd !recvs_raw c
                  | I_do tag ->
                      dos := sadd !dos c;
                      Hashtbl.replace h.h_did tag ())
              r.intents)
          rl;
        h.h_sends <- !sends;
        h.h_recvs <- min !recvs_raw inbound.(p);
        h.h_dos <- !dos;
        Hashtbl.iter
          (fun (d, m) c ->
            if d = p then Hashtbl.replace h.h_recvs_of m (min h.h_recvs c))
          inbound_m)
      rules
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun p rl ->
        let look = look_of hulls.(p) in
        List.iter
          (fun (r : srule) ->
            if r.aguard look <> `F then
              List.iteri
                (fun j (it, _) ->
                  let key = (p, r.index, j) in
                  if not (Hashtbl.mem live key) then
                    match it with
                    | I_send { dst; payload } ->
                        Hashtbl.replace live key ();
                        changed := true;
                        (match dst with
                        | Some d -> Hashtbl.replace chans (p, d, payload) ()
                        | None ->
                            for d = 0 to n - 1 do
                              if d <> p then
                                Hashtbl.replace chans (p, d, payload) ()
                            done)
                    | I_do _ ->
                        Hashtbl.replace live key ();
                        changed := true
                    | I_recv src ->
                        let feed =
                          Hashtbl.fold
                            (fun (s, d, _) () acc ->
                              acc
                              || d = p
                                 &&
                                 match src with
                                 | Src_any -> true
                                 | Src_of s0 -> s = s0)
                            chans false
                        in
                        if feed then begin
                          Hashtbl.replace live key ();
                          changed := true
                        end)
                r.intents)
          rl)
      rules;
    if !changed then recompute ()
  done;
  (* verdicts and derived facts under the final hull *)
  let reports = ref [] in
  let graph_exact = ref true in
  let stable = Array.make n true in
  Array.iteri
    (fun p rl ->
      let look = look_of hulls.(p) in
      List.iter
        (fun (r : srule) ->
          let verdict =
            match r.aguard look with `F -> Dead | `T -> Tautology | `M -> Sat
          in
          let starved = ref false in
          List.iteri
            (fun j (it, _) ->
              let is_live = Hashtbl.mem live (p, r.index, j) in
              match it with
              | I_recv _ ->
                  if is_live then stable.(p) <- false
                  else if verdict <> Dead then starved := true
              | I_send { dst = None; _ } ->
                  if is_live then graph_exact := false
              | I_send _ | I_do _ -> ())
            r.intents;
          reports :=
            {
              pid = p;
              index = r.index;
              text = r.text;
              where = r.where;
              verdict;
              starved_recv = !starved;
            }
            :: !reports)
        rl)
    rules;
  let reports = List.rev !reports in
  let bounds =
    Array.mapi
      (fun p _ ->
        let h = hulls.(p) in
        sadd (sadd h.h_sends h.h_recvs) h.h_dos)
      hulls
  in
  let indep =
    if Array.for_all (fun b -> b <> pinf) bounds then
      Some (Reduction.Independence.make ~stable:(Array.copy stable) ~bound:bounds)
    else None
  in
  let channels =
    Hashtbl.fold (fun c () acc -> c :: acc) chans [] |> List.sort compare
  in
  (* atoms over tags no live rule performs / payloads no live channel
     carries can never change value *)
  let producible t =
    Array.exists (fun h -> Hashtbl.mem h.h_did t) hulls
  in
  let carried m = List.exists (fun (_, _, m') -> String.equal m m') channels in
  let unreachable =
    List.concat_map
      (fun (aname, body) ->
        let probs = ref [] in
        let rec scan e =
          match e with
          | Ast.Did (t, _) ->
              if not (producible t) then
                probs :=
                  Printf.sprintf "mentions did(%S) but no live rule performs it"
                    t
                  :: !probs
          | Ast.Count (_, m, _) ->
              if not (carried m) then
                probs :=
                  Printf.sprintf "mentions payload %S which no live channel carries"
                    m
                  :: !probs
          | Ast.Int _ | Ast.Boolean _ | Ast.Var _ -> ()
          | Ast.Minmax (_, a, b, _) | Ast.Binop (_, a, b, _) ->
              scan a;
              scan b
          | Ast.Unop (_, a, _) -> scan a
        in
        scan body;
        List.rev_map (fun why -> (aname, why)) !probs)
      atom_exprs
  in
  let conc =
    Array.map
      (fun rl -> Array.of_list (List.map (fun (r : srule) -> r.cguard) rl))
      rules
  in
  {
    n;
    reports;
    channels;
    graph_exact = !graph_exact;
    indep;
    unreachable;
    conc;
    bounds;
    stable;
  }

(* -- entry points ----------------------------------------------------------- *)

let of_loaded (l : Elab.loaded) values =
  try
    match Elab.resolved_rules l values with
    | Error d -> Error d
    | Ok pid_rules ->
        let n = Array.length pid_rules in
        let rules = ast_srules l values pid_rules in
        let atom_exprs =
          List.filter_map
            (fun item ->
              match item with
              | Ast.Atom a -> Some (a.Ast.aname, a.Ast.body)
              | _ -> None)
            l.Elab.ast.Ast.items
        in
        Ok (analyze ~n rules ~atom_exprs)
  with Diag.Error d -> Error d

let of_instance inst =
  match P.profile_of inst with
  | None -> None
  | Some prof ->
      let n = Array.length prof in
      Some (analyze ~n (prof_srules prof) ~atom_exprs:[])

(* -- accessors -------------------------------------------------------------- *)

let n t = t.n
let rules t = t.reports
let dead_rules t = List.filter (fun r -> r.verdict = Dead) t.reports
let channels t = t.channels
let graph_exact t = t.graph_exact
let independence t = t.indep
let unreachable_atoms t = t.unreachable

let guard_holds t ~pid ~index history =
  if pid < 0 || pid >= t.n then invalid_arg "Dataflow.guard_holds: bad pid";
  let arr = t.conc.(pid) in
  if index < 0 || index >= Array.length arr then
    invalid_arg "Dataflow.guard_holds: bad rule index";
  arr.(index) history

let clean t =
  (not (List.exists (fun r -> r.verdict = Dead || r.starved_recv) t.reports))
  && t.unreachable = []

(* -- findings ---------------------------------------------------------------- *)

let finding ~expect rule severity target message hint =
  {
    Lint.rule;
    severity;
    target;
    message;
    witness = None;
    hint;
    expected =
      List.exists (fun e -> e = rule || e = rule ^ "@" ^ target) expect;
  }

let findings t ~expect =
  let dead =
    List.filter_map
      (fun r ->
        if r.verdict = Dead then
          Some
            (finding ~expect "dead-rule" Lint.Warning
               (Printf.sprintf "p%d" r.pid)
               (Printf.sprintf "%srule %d `when %s` can never fire" r.where
                  r.index r.text)
               (Some "delete the rule, or relax its guard"))
        else None)
      t.reports
  in
  let starved =
    List.filter_map
      (fun r ->
        if r.starved_recv then
          Some
            (finding ~expect "unreachable-message" Lint.Warning
               (Printf.sprintf "p%d" r.pid)
               (Printf.sprintf
                  "%sreceive in rule %d `when %s` is never fed: every \
                   matching send is dead"
                  r.where r.index r.text)
               (Some "fix or remove the dead sender, or drop the receive"))
        else None)
      t.reports
  in
  let atoms =
    List.map
      (fun (aname, why) ->
        finding ~expect "unreachable-message" Lint.Warning aname
          (Printf.sprintf "atom %s %s — the atom can never change value"
             aname why)
          (Some "point the atom at a payload or tag the spec can produce"))
      t.unreachable
  in
  let tauto =
    List.filter_map
      (fun r ->
        if r.verdict = Tautology && r.text <> "true" then
          Some
            (finding ~expect "guard-tautology" Lint.Info
               (Printf.sprintf "p%d" r.pid)
               (Printf.sprintf
                  "%sguard `%s` of rule %d holds in every reachable state"
                  r.where r.text r.index)
               (Some "write `when true` if the rule is meant to always offer"))
        else None)
      t.reports
  in
  dead @ starved @ atoms @ tauto

(* -- rendering --------------------------------------------------------------- *)

let pp ppf t =
  let open Format in
  let verdict_str = function
    | Dead -> "dead"
    | Tautology -> "always"
    | Sat -> "sat"
  in
  fprintf ppf "@[<v>";
  fprintf ppf "rules:@,";
  List.iter
    (fun r ->
      fprintf ppf "  p%d/%d [%s%s] when %s@," r.pid r.index
        (verdict_str r.verdict)
        (if r.starved_recv then ", starved recv" else "")
        r.text)
    t.reports;
  fprintf ppf "channels:%s@,"
    (if t.channels = [] then " (none)" else "");
  List.iter
    (fun (s, d, m) -> fprintf ppf "  p%d -> p%d %S@," s d m)
    t.channels;
  if not t.graph_exact then
    fprintf ppf "  (over-approximate: some destination is history-dependent)@,";
  List.iter
    (fun (aname, why) -> fprintf ppf "unreachable atom %s: %s@," aname why)
    t.unreachable;
  fprintf ppf "bounds:@,";
  Array.iteri
    (fun p b ->
      fprintf ppf "  p%d: %s events%s@," p
        (if b = pinf then "unbounded" else "<= " ^ string_of_int b)
        (if t.stable.(p) then ", receive-free (stable)" else ""))
    t.bounds;
  (match t.indep with
  | Some ind ->
      fprintf ppf
        "independence: total event bound %d — POR may restrict at depth >= %d@,"
        (Reduction.Independence.total ind)
        (Reduction.Independence.total ind)
  | None ->
      fprintf ppf
        "independence: unavailable (some process has no finite event bound)@,");
  fprintf ppf "@]"
