(** Static channel-graph extraction.

    A {!Hpl_core.Spec.t} is generative — each process is a rule from
    local history to intents — so its communication structure is not
    written down anywhere. This module recovers it {e without
    enumerating the universe}: it explores each process's local
    behaviour tree in isolation (histories, not interleavings), feeding
    receives from an over-approximate pool of every message any
    explored history could send, iterated to a fixpoint.

    {2 Soundness}

    The exploration over-approximates: every local history a process
    can exhibit in a real system computation of depth ≤ d is visited,
    provided [fuel ≥ d] (a real history's receives consume messages
    whose senders' histories are themselves real, hence visited, hence
    pooled — induction on depth). Consequently

    - a channel absent from {!sends} carries no message in any
      computation within the soundness {!scope};
    - a pair absent from the {!reach} closure of {!delivered} admits no
      causal message path within the scope.

    The converse direction is approximate by design: an edge in the
    graph may be unrealizable (the pool ignores in-flight timing), so
    the analyzer only ever derives {e negative} facts from absence,
    never positive guarantees from presence.

    Exploration cost is per-process local branching — exponentially
    cheaper than the interleaving universe, and bounded by [fuel] and
    [max_states] regardless. *)

open Hpl_core

type t

type scope =
  | Exact  (** exploration saturated: the graph is exact at every depth *)
  | Up_to_depth of int
      (** fuel-limited: sound for enumerations up to this depth *)
  | Incomplete
      (** the state cap stopped exploration — no negative fact is sound *)

val extract : ?fuel:int -> ?max_states:int -> Spec.t -> t
(** [extract spec] explores every process's bounded local behaviour.
    [fuel] (default 16) caps local-history length; [max_states]
    (default 60_000) caps total explored histories. Raising either
    widens the {!scope}. Rule exceptions are caught and reported via
    {!rule_errors}, never raised. *)

val n : t -> int
val fuel : t -> int
val scope : t -> scope
val states : t -> int
(** Total explored local histories, for cost reporting. *)

val channels : t -> (int * int) list
(** Channels with at least one send, sorted. *)

val channel_payloads : t -> int -> int -> string list
(** Payloads ever sent on a channel, sorted; empty if no such channel. *)

val delivered : t -> (int * int) list
(** Channels on which some sent message is also accepted by an explored
    receive of the destination — the edges knowledge can flow along. *)

val active : t -> int -> bool
(** Whether the process has any possible event at all. *)

val internal_tags : t -> int -> string list

type recv_shape = Any | From of int | Filtered of string

val recv_shapes : t -> int -> (recv_shape * bool) list
(** Receive willingness the process ever exhibits, with whether any
    explored candidate message satisfied it. *)

val dead_letters : t -> (int * int * string) list
(** [(src, dst, payload)] triples sent on a real channel but never
    accepted by any explored receive of [dst]. *)

val bad_sends : t -> (int * int * string) list
(** Sends addressed outside the system or to the sender itself. *)

val rule_errors : t -> (int * string) list
(** Rules that raised during probing (e.g.
    {!Hpl_core.Spec_algebra.parallel} cross-boundary violations), with
    the exception text. *)

val without_channels : t -> (int * int) list -> t
(** The graph with the given delivered edges removed — "what if these
    channels delivered nothing". Feasibility on the result answers
    whether a knowledge chain survives losing them. *)

val reach : t -> int -> int -> bool
(** Reflexive-transitive closure of {!delivered}. *)

val path : t -> int -> int -> int list option
(** A shortest delivered-channel path [src; …; dst] (inclusive), or
    [None]. [Some [p]] when [src = dst]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human dump: per-channel payloads, per-process tags and
    receive shapes, scope. *)
