open Hpl_core
open Hpl_faults
open Hpl_protocols

type severity = Error | Warning | Info

type finding = {
  rule : string;
  severity : severity;
  target : string;
  message : string;
  witness : string option;
  hint : string option;
  expected : bool;
}

type report = {
  subject : string;
  depth : int;
  findings : finding list;
  graph : Channel_graph.t;
  locality : Locality.t;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* -- rendering helpers ---------------------------------------------------- *)

let pids_to_string = function
  | [ p ] -> Printf.sprintf "p%d" p
  | ps -> "{" ^ String.concat "," (List.map (Printf.sprintf "p%d") ps) ^ "}"

let chan_to_string (a, b) = Printf.sprintf "p%d->p%d" a b

(* Concatenate the witness hop paths into one route: consecutive paths
   share their junction process. *)
let route_of_witness chain paths =
  let full =
    List.fold_left
      (fun acc path ->
        match (acc, path) with
        | [], _ -> path
        | _, _ :: rest -> acc @ rest
        | _, [] -> acc)
      [] paths
  in
  let full = match full with [] -> chain | f -> f in
  String.concat " -> " (List.map (Printf.sprintf "p%d") full)

(* -- findings construction ------------------------------------------------ *)

let find_ ?witness ?hint ~expect rule severity target message =
  let expected =
    List.exists (fun e -> e = rule || e = rule ^ "@" ^ target) expect
  in
  { rule; severity; target; message; witness; hint; expected }

let hygiene_findings ~expect g =
  let f = find_ ~expect in
  let incomplete = Channel_graph.scope g = Channel_graph.Incomplete in
  let base =
    List.map
      (fun (p, e) ->
        f "rule-raises" Error (Printf.sprintf "p%d" p)
          (Printf.sprintf "the rule of p%d raised while being probed: %s" p e)
          ~hint:"rules must be total over their local histories")
      (Channel_graph.rule_errors g)
    @ List.map
        (fun (a, b, payload) ->
          f "bad-address" Error (chan_to_string (a, b))
            (Printf.sprintf
               "p%d sends %S to %s — no process can ever receive it" a payload
               (if a = b then "itself" else Printf.sprintf "p%d (outside the system)" b))
            ~hint:"fix the destination pid or grow the system")
        (Channel_graph.bad_sends g)
  in
  if incomplete then
    base
    @ [
        f "analysis-incomplete" Info "graph"
          (Printf.sprintf
             "state cap hit after %d explored histories — absence-based rules \
              were skipped"
             (Channel_graph.states g));
      ]
  else
    base
    @ List.map
        (fun (a, b, payload) ->
          f "dead-letter" Warning
            (Printf.sprintf "%s:%s" (chan_to_string (a, b)) payload)
            (Printf.sprintf
               "p%d sends %S to p%d but no receive of p%d ever accepts it" a
               payload b b)
            ~hint:"add a matching receive or remove the send")
        (Channel_graph.dead_letters g)
    @ List.concat_map
        (fun p ->
          List.filter_map
            (fun (shape, satisfied) ->
              if satisfied then None
              else
                let s =
                  match shape with
                  | Channel_graph.Any -> "any message"
                  | Channel_graph.From q -> Printf.sprintf "from p%d" q
                  | Channel_graph.Filtered name ->
                      Printf.sprintf "matching filter %S" name
                in
                Some
                  (f "recv-starved" Warning (Printf.sprintf "p%d" p)
                     (Printf.sprintf
                        "p%d is willing to receive %s but no message ever \
                         satisfies it"
                        p s)
                     ~hint:"add the matching send or drop the receive"))
            (Channel_graph.recv_shapes g p))
        (List.init (Channel_graph.n g) Fun.id)
    @ List.filter_map
        (fun p ->
          if Channel_graph.active g p then None
          else
            Some
              (f "inactive-process" Warning (Printf.sprintf "p%d" p)
                 (Printf.sprintf "p%d never takes any event" p)
                 ~hint:"remove the process or give it behaviour"))
        (List.init (Channel_graph.n g) Fun.id)

let atom_findings ~expect loc atoms =
  if not (Locality.exhaustive loc) then []
  else
    List.filter_map
      (fun (name, _) ->
        match Locality.local_pids loc name with
        | None -> None
        | Some [] ->
            Some
              (find_ ~expect "atom-global" Info name
                 (Printf.sprintf
                    "atom %S is not local to any single process (exact at \
                     depth %d)"
                    name (Locality.depth loc)))
        | Some ps ->
            Some
              (find_ ~expect "atom-local" Info name
                 (Printf.sprintf "atom %S is local to %s (exact at depth %d)"
                    name (pids_to_string ps) (Locality.depth loc))))
      atoms

(* Channels dropped by the scenario, expanded over the graph's actual
   channel list. *)
let dropped_channels scenario g =
  List.concat_map
    (function
      | Faults.Scenario.Drop Faults.Scenario.All_channels ->
          Channel_graph.channels g
      | Faults.Scenario.Drop (Faults.Scenario.Channel (a, b)) -> [ (a, b) ]
      | Faults.Scenario.Partition { group; _ } ->
          (* the exact engine over-approximates a partition window as
             whole-run lossiness on the crossing channels *)
          List.filter
            (fun (a, b) -> List.mem a group <> List.mem b group)
            (Channel_graph.channels g)
      | Faults.Scenario.Dup _ | Faults.Scenario.Crash_stop _
      | Faults.Scenario.Crash_any _ | Faults.Scenario.Recover _ ->
          [])
    scenario
  |> List.sort_uniq Stdlib.compare

let formula_findings ~expect ~env ~depth ~faults ~faulty_graph g loc
    (formula, asserted) =
  let f = find_ ~expect in
  let sev_major = if asserted then Warning else Info in
  let unbound =
    if not asserted then []
    else
      List.filter_map
        (fun name ->
          if Option.is_some (env name) then None
          else
            Some
              (f "unbound-atom" Error name
                 (Printf.sprintf "formula %s uses atom %S, which this spec \
                                  does not define"
                    (Formula.print formula) name)))
        (Formula.atoms formula)
  in
  let ck =
    if Formula.contains_common formula then
      [
        f "ck-constant" Info (Formula.print formula)
          "CK is a constant predicate (§4.2): it can never be gained or \
           lost, and over lossy channels this is exactly the \
           coordinated-attack impossibility";
      ]
    else []
  in
  let nest_findings (nest : Formula.nest) =
    let target = Formula.print nest.subformula in
    let origins = Locality.origins loc nest.body in
    let gain = Chain_check.gain g ~origins nest in
    match gain with
    | Chain_check.Feasible { chain; paths; min_hops } ->
        let witness =
          Printf.sprintf "chain %s (route %s, %d hop%s)"
            (String.concat " ⇝ " (List.map (Printf.sprintf "p%d") chain))
            (route_of_witness chain paths)
            min_hops
            (if min_hops = 1 then "" else "s")
        in
        [ f "chain-feasible" Info target
            (Printf.sprintf
               "a gain chain exists: knowledge can flow along delivered \
                channels (Theorem 5 necessary condition met)")
            ~witness ]
        @ (match Chain_check.min_depth gain with
          | Some md when md > depth ->
              [
                f "depth-insufficient" sev_major target
                  (Printf.sprintf
                     "the cheapest gain chain needs %d hops = %d events, but \
                      the analyzed depth is %d — the property cannot be \
                      exhibited at this depth"
                     min_hops md depth)
                  ~hint:(Printf.sprintf "use --depth %d or more" md);
              ]
          | _ -> [])
        @ (match Chain_check.loss g ~origins nest with
          | Chain_check.Infeasible _ ->
              [
                f "loss-infeasible" Info target
                  "no loss chain exists (Theorem 6): once gained, this \
                   knowledge is stable";
              ]
          | _ -> [])
        @ (match faults with
          | None -> []
          | Some scenario -> (
              let dropped = dropped_channels scenario g in
              (if dropped = [] then []
               else
                 match
                   Chain_check.gain
                     (Channel_graph.without_channels g dropped)
                     ~origins nest
                 with
                 | Chain_check.Infeasible _ ->
                     [
                       f "lossy-gain-chain" sev_major target
                         (Printf.sprintf
                            "every gain chain crosses a dropped channel (%s): \
                             gain is at the daemon's mercy, and no protocol \
                             over such channels attains common knowledge"
                            (String.concat ", "
                               (List.map chan_to_string dropped)))
                         ~hint:"this is the coordinated-attack situation of \
                                §4.2";
                     ]
                 | _ -> [])
              @
              match faulty_graph with
              | None -> []
              | Some g' -> (
                  match Chain_check.gain g' ~origins nest with
                  | Chain_check.Infeasible { detail; _ } ->
                      [
                        f "fault-severs-chain" sev_major target
                          (Printf.sprintf
                             "feasible in the fault-free spec, infeasible \
                              under %s: %s"
                             (Faults.Scenario.to_string scenario)
                             detail);
                      ]
                  | _ -> [])))
    | Chain_check.Infeasible { level; detail } ->
        let never =
          Chain_check.never_holds g ~env ~depth:(Some depth) nest ~gain
        in
        let at_level =
          match level with
          | Some l -> Printf.sprintf " (breaks at nesting level %d)" l
          | None -> " (the body's home process is cut off)"
        in
        if never && asserted then
          [
            f "chain-infeasible" Error target
              (Printf.sprintf
                 "provably holds at no computation of depth <= %d: the body \
                  is false initially and no gain chain exists (Theorems 4-5, \
                  veridicality)%s"
                 depth at_level)
              ~witness:detail
              ~hint:"the formula is unsatisfiable here — fix the formula or \
                     add the missing channel path";
          ]
        else
          [
            f "chain-infeasible" sev_major target
              (Printf.sprintf "cannot be gained at depth <= %d%s" depth
                 at_level)
              ~witness:detail;
          ]
    | Chain_check.Unknown msg -> [ f "chain-unknown" Info target msg ]
  in
  unbound @ ck @ List.concat_map nest_findings (Formula.nests formula)

let fault_findings ~expect g scenario ~label =
  let f = find_ ~expect in
  match
    Faults.Scenario.validate_channels scenario
      ~channels:(Channel_graph.channels g)
  with
  | Ok () -> []
  | Error msg ->
      let sev =
        match Channel_graph.scope g with
        | Channel_graph.Exact -> Error
        | Channel_graph.Up_to_depth _ | Channel_graph.Incomplete -> Warning
      in
      [ f "fault-unknown-channel" sev label msg
          ~hint:"name a channel the spec actually uses, or drop:*" ]

(* -- drivers -------------------------------------------------------------- *)

let lint_spec ?fuel ?(max_states = 60_000) ?(max_probes = 20_000)
    ?(atoms = []) ?(formulas = []) ?(derive = true) ?faults ?(expect = [])
    ~depth ~subject spec =
  Hpl_obs.span "lint" ~args:(fun () -> [ ("subject", subject) ]) @@ fun () ->
  (* fuel = depth suffices for depth-relative claims: a depth-d
     computation contains no local history longer than d, and deeper
     fuel explodes on unbounded specs (the pool keeps growing) *)
  let fuel = match fuel with Some f -> f | None -> max 1 depth in
  let g =
    Hpl_obs.span "lint.extract" (fun () ->
        Channel_graph.extract ~fuel ~max_states spec)
  in
  let loc =
    Hpl_obs.span "lint.locality" (fun () ->
        Locality.probe ~max_probes spec ~depth ~atoms)
  in
  let env name = List.assoc_opt name atoms in
  let asserted = List.map (fun f -> (f, true)) formulas in
  let derived =
    if formulas <> [] || not derive then []
    else
      List.concat_map
        (fun (name, _) ->
          match Locality.local_pids loc name with
          | Some (_ :: _ as ps) when Locality.exhaustive loc ->
              List.filter_map
                (fun q ->
                  if List.mem q ps || not (Channel_graph.active g q) then None
                  else Some (Formula.Know ([ q ], Formula.Atom name), false))
                (List.init (Channel_graph.n g) Fun.id)
          | _ -> [])
        atoms
  in
  let faulty_graph =
    match faults with
    | None -> None
    | Some scenario -> (
        match Faults.Scenario.apply scenario spec with
        | Ok spec' ->
            Some
              (Hpl_obs.span "lint.extract-faulty" (fun () ->
                   Channel_graph.extract ~fuel ~max_states spec'))
        | Error _ -> None)
  in
  (* per-rule-group timing: the cross-check test asserts these child
     spans account for (almost all of) the parent [lint] span *)
  let findings =
    Hpl_obs.span "lint.rules.hygiene" (fun () -> hygiene_findings ~expect g)
    @ Hpl_obs.span "lint.rules.atoms" (fun () -> atom_findings ~expect loc atoms)
    @ Hpl_obs.span "lint.rules.faults" (fun () ->
          match faults with
          | None -> []
          | Some scenario -> (
              fault_findings ~expect g scenario
                ~label:(Faults.Scenario.to_string scenario)
              @
              match Faults.Scenario.apply scenario spec with
              | Ok _ -> []
              | Error msg ->
                  [
                    find_ ~expect "fault-invalid" Error
                      (Faults.Scenario.to_string scenario)
                      (Printf.sprintf "scenario cannot be applied: %s" msg);
                  ]))
    @ Hpl_obs.span "lint.rules.formulas" (fun () ->
          List.concat_map
            (formula_findings ~expect ~env ~depth ~faults ~faulty_graph g loc)
            (asserted @ derived))
  in
  Hpl_obs.count "lint.findings" (List.length findings);
  { subject; depth; findings; graph = g; locality = loc }

let lint_instance ?fuel ?max_states ?max_probes ?(formulas = []) ?faults
    ?depth inst =
  let proto = Protocol.proto inst in
  let depth =
    match depth with Some d -> d | None -> Protocol.depth_of inst
  in
  let expect = Protocol.lint_expect proto in
  let base =
    lint_spec ?fuel ?max_states ?max_probes ~atoms:(Protocol.atoms_of inst)
      ~formulas ?faults ~expect ~depth
      ~subject:(Protocol.instance_name inst)
      (Protocol.spec_of inst)
  in
  (* symmetry hygiene (DESIGN.md §10): declared generators must be spec
     automorphisms — an invalid generator makes symmetry-reduced
     enumeration silently unsound — and a spec that *is* invariant
     under an obvious pid permutation (ring rotation, member swap)
     but declares none is leaving the reduction on the table *)
  let symmetry =
    let spec = Protocol.spec_of inst in
    let n = Spec.n spec in
    let probe = Symmetry.is_automorphism ~depth:3 ~max_states:5_000 spec in
    match Protocol.generators_of inst with
    | _ :: _ as gens ->
        List.filter_map
          (fun pi ->
            if Array.length pi = n && probe pi then None
            else
              Some
                (find_ ~expect "invalid-symmetry" Error (Symmetry.to_string pi)
                   (Printf.sprintf
                      "declared symmetry generator %s is not an automorphism \
                       of the spec: [enabled] fails equivariance at some \
                       computation of depth <= 3"
                      (Symmetry.to_string pi))
                   ~hint:"fix the generator or the spec — an invalid \
                          generator makes --reduce sym/full unsound"))
          gens
    | [] ->
        if n < 2 then []
        else
          let candidates =
            (if n >= 2 then [ ("ring rotation", Symmetry.rotation n) ] else [])
            @ (if n >= 3 then
                 [ ("member swap", Symmetry.transposition n 1 2) ]
               else [])
            @ [ ("process swap", Symmetry.transposition n 0 1) ]
          in
          let hit =
            List.find_opt (fun (_, pi) -> probe pi) candidates
          in
          (match hit with
          | Some (what, pi) ->
              [
                find_ ~expect "undeclared-symmetry" Warning
                  (Protocol.instance_name inst)
                  (Printf.sprintf
                     "the spec is invariant under the %s %s (probed to depth \
                      3) but declares no symmetry generators"
                     what (Symmetry.to_string pi))
                  ~hint:"declare it via Protocol.make ~symmetry to unlock \
                         --reduce sym/full";
              ]
          | None -> [])
  in
  (* registry metadata check: every declared fault scenario must parse
     and name real channels *)
  let declared =
    List.concat_map
      (fun s ->
        match Faults.Scenario.parse s with
        | Error msg ->
            [
              find_ ~expect "fault-unparseable" Error s
                (Printf.sprintf "declared fault scenario does not parse: %s"
                   msg);
            ]
        | Ok scenario ->
            fault_findings ~expect base.graph scenario ~label:s)
      (Protocol.fault_scenarios proto)
  in
  { base with findings = base.findings @ symmetry @ declared }

(* -- reporting ------------------------------------------------------------ *)

let gate f = (f.severity = Error || f.severity = Warning) && not f.expected
let clean r = not (List.exists gate r.findings)
let exit_code reports = if List.for_all clean reports then 0 else 1

let pp_finding fmt f =
  Format.fprintf fmt "@[<v2>%-7s %-18s %s: %s%s@]"
    (severity_to_string f.severity)
    f.rule f.target f.message
    (if f.expected then "  [expected]" else "");
  Option.iter (fun w -> Format.fprintf fmt "@,        witness: %s" w) f.witness;
  Option.iter (fun h -> Format.fprintf fmt "@,        hint: %s" h) f.hint

let pp_report fmt r =
  let errs, warns, infos =
    List.fold_left
      (fun (e, w, i) f ->
        match f.severity with
        | Error -> (e + 1, w, i)
        | Warning -> (e, w + 1, i)
        | Info -> (e, w, i + 1))
      (0, 0, 0) r.findings
  in
  let scope =
    match Channel_graph.scope r.graph with
    | Channel_graph.Exact -> "exact"
    | Channel_graph.Up_to_depth d -> Printf.sprintf "sound to depth %d" d
    | Channel_graph.Incomplete -> "incomplete"
  in
  Format.fprintf fmt "@[<v>%s: %d error(s), %d warning(s), %d info — depth %d, graph %s, %d states + %d probes%s@,"
    r.subject errs warns infos r.depth scope
    (Channel_graph.states r.graph)
    (Locality.probes r.locality)
    (if clean r then " — clean" else "");
  List.iter (fun f -> Format.fprintf fmt "  %a@," pp_finding f) r.findings;
  Format.fprintf fmt "@]"
