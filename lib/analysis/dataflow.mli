(** Abstract interpretation over protocol rules ([hpl flow]) — guard
    satisfiability, dead rules, a static channel graph, and the static
    independence relation POR consumes. No trace is ever constructed.

    The analyzer interprets a first-order view of a spec's rules:
    either the elaborated [.hpl] AST ({!of_loaded}, full expression
    grammar) or a registry protocol's declared
    {!Hpl_protocols.Protocol.Profile} ({!of_instance}). Guards are
    evaluated in an interval domain over the local-history counters
    ([len], [sends], [recvs], [sends "m"], [recvs "m"], [did "t"]);
    parameters and [me] are concrete at the analyzed instance, so only
    history counters are abstract.

    {2 The two phases}

    {e Caps}: each intent gets a static bound on how many times it can
    fire, read off guard conjuncts that threshold a counter the intent
    increments ([sends < k], [recvs <= k], [c == k], [!did "t"]) —
    counters are monotone over a local history, so a threshold is a
    firing budget. Receive totals are additionally bounded by message
    conservation: a process cannot receive more than every peer can
    send to it.

    {e Liveness fixpoint}: starting from the empty-history state (all
    counters [0,0]), repeatedly widen each process's counter hull by
    the caps of its possibly-enabled intents — a receive is realizable
    only once some live channel feeds it — until nothing changes. The
    final hull over-approximates every reachable local state, so a
    guard that is definitely false under it belongs to a {e dead rule}
    (sound: it never fires in any computation), and one definitely true
    is a {e tautology} (sound: always enabled while the process runs).

    {2 Soundness caveats}

    The domain is non-relational: a guard like [sends > recvs] that is
    unsatisfiable only for {e relational} reasons is reported [Sat],
    never [Dead] — verdicts err toward silence. The registry-wide flow
    test suite cross-validates: no reported-dead rule ever fires under
    full enumeration, and the static channel graph is compared against
    {!Channel_graph.extract}. *)

open Hpl_core

type t

type verdict =
  | Dead  (** guard unsatisfiable in every reachable local state *)
  | Tautology  (** guard holds in every reachable local state *)
  | Sat  (** neither provable — the normal case *)

type rule_report = {
  pid : int;
  index : int;  (** position in the pid's rule list *)
  text : string;  (** rendered guard, for messages *)
  where : string;
      (** ["file:line:col-ecol: "] span prefix for AST rules, [""] for
          profile rules *)
  verdict : verdict;
  starved_recv : bool;
      (** the rule has a live guard and a receive intent, but no live
          channel can ever feed it *)
}

(** {1 Building an analysis} *)

val of_loaded :
  Hpl_dsl.Elaborate.loaded ->
  Hpl_protocols.Protocol.values ->
  (t, Hpl_dsl.Diag.t) result
(** Analyze a loaded [.hpl] spec at [values] (use
    [Protocol.defaults l.proto] for the declared defaults). [Error] only
    on value-dependent elaboration failure (bad process count or
    selector) — the same conditions {!Hpl_dsl.Elaborate.validate}
    reports. *)

val of_instance : Hpl_protocols.Protocol.instance -> t option
(** Analyze a registry instance through its declared profile; [None]
    when the protocol declares none (opaque closure). *)

(** {1 Results} *)

val n : t -> int
val rules : t -> rule_report list
(** All rules, pid-major then list order. *)

val dead_rules : t -> rule_report list

val channels : t -> (int * int * string) list
(** Live channels [(src, dst, payload)], sorted: sends of non-dead
    rules reachable in the liveness fixpoint. A history-dependent
    destination is over-approximated to every other process (and
    clears {!graph_exact}). *)

val graph_exact : t -> bool
(** Every send destination was static — {!channels} is then exactly the
    communication structure, suitable for equality cross-validation
    against {!Channel_graph.extract}. *)

val independence : t -> Reduction.Independence.t option
(** The static independence relation for ample-set restriction:
    per-pid receive-freedom and finite event bounds. [None] when any
    process's event bound is not finite. *)

val unreachable_atoms : t -> (string * string) list
(** [(atom, why)] — named atoms (AST specs only) mentioning a [did]
    tag no live rule performs or a payload no live channel carries;
    such an atom can never change value. *)

(** {1 Concrete semantics — the oracle tests compare against} *)

val guard_holds : t -> pid:int -> index:int -> Event.t list -> bool
(** Evaluate rule [index] of [pid]'s guard concretely on a local
    history, with the exact dynamic semantics (the elaborator's
    evaluator for AST specs, counter arithmetic for profiles). The flow
    soundness property: if the rule's verdict is {!Dead}, this returns
    [false] on every reachable history. *)

(** {1 Reporting} *)

val findings : t -> expect:string list -> Lint.finding list
(** The flow rule family as lint findings: [dead-rule] (warning),
    [unreachable-message] (warning; starved receives and unreachable
    atoms), [guard-tautology] (info). [expect] as in {!Lint.lint_spec}:
    rule ids or ["rule@target"], matched findings are annotated and do
    not fail gates. *)

val clean : t -> bool
(** No dead rule, no starved receive, no unreachable atom. *)

val pp : Format.formatter -> t -> unit
(** Human-readable report: per-rule verdicts, live channels, per-pid
    event bounds and stability, independence applicability. *)
