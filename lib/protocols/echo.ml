open Hpl_core
open Hpl_sim

type params = { n : int; seed : int64 }

let default = { n = 6; seed = 3L }

let wave_tag = "wave"
let echo_tag = "echo"
let done_tag = "pif-done"

type state = {
  params : params;
  me : int;
  parent : int option;
  seen : bool;
  pending : int;  (** outstanding answers (wave or echo) expected *)
  is_root : bool;
  completed : bool;
}

type outcome = {
  trace : Trace.t;
  completed : bool;
  messages : int;
  all_informed : bool;
  completion_knows_all : bool;
}

let others st = List.filter (fun i -> i <> st.me) (List.init st.params.n (fun i -> i))

let send_to targets tag = List.map (fun i -> Engine.Send (Pid.of_int i, Wire.enc tag [])) targets

let init params p =
  let me = Pid.to_int p in
  let is_root = me = 0 in
  let st =
    { params; me; parent = None; seen = is_root; pending = 0; is_root; completed = false }
  in
  if is_root then
    let targets = others st in
    ({ st with pending = List.length targets }, send_to targets wave_tag)
  else (st, [])

let finish st =
  if st.pending > 0 then (st, [])
  else if st.is_root then
    if st.completed then (st, [])
    else ({ st with completed = true }, [ Engine.Log_internal done_tag ])
  else
    match st.parent with
    | Some parent -> ({ st with parent = None }, [ Engine.Send (Pid.of_int parent, Wire.enc echo_tag []) ])
    | None -> (st, [])

let on_message st ~self:_ ~src ~payload ~now:_ =
  let s = Pid.to_int src in
  if Wire.is wave_tag payload then begin
    if not st.seen then begin
      (* first contact: adopt parent, flood to everyone else *)
      let targets = List.filter (fun i -> i <> s) (others st) in
      let st =
        { st with seen = true; parent = Some s; pending = List.length targets }
      in
      let st, fin = finish st in
      (st, send_to targets wave_tag @ fin)
    end
    else
      (* already in the wave: answer immediately with an echo *)
      (st, [ Engine.Send (src, Wire.enc echo_tag []) ])
  end
  else if Wire.is echo_tag payload then begin
    let st = { st with pending = st.pending - 1 } in
    finish st
  end
  else (st, [])

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let result =
    Engine.run config
      {
        Engine.init = init params;
        on_message;
        on_timer = (fun st ~self:_ ~tag:_ ~now:_ -> (st, []));
      }
  in
  let z = result.Engine.trace in
  let completed =
    List.exists
      (fun e ->
        match e.Event.kind with
        | Event.Internal t -> String.equal t done_tag
        | _ -> false)
      (Trace.to_list z)
  in
  let all_informed =
    (* the initiator is informed by construction *)
    List.for_all
      (fun i ->
        i = 0
        || List.exists
             (fun e ->
               match e.Event.kind with
               | Event.Receive m -> Wire.is wave_tag m.Msg.payload
               | _ -> false)
             (Trace.proj z (Pid.of_int i)))
      (List.init params.n (fun i -> i))
  in
  let completion_knows_all =
    completed
    && List.for_all
         (fun i ->
           i = 0
           || Chain.exists ~n:params.n ~z
                [ Pset.singleton (Pid.of_int i); Pset.singleton (Pid.of_int 0) ])
         (List.init params.n (fun i -> i))
  in
  {
    trace = z;
    completed;
    messages = result.Engine.stats.Engine.sent;
    all_informed;
    completion_knows_all;
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: the wave as a star — the initiator informs every
   process, acks collapse back, and the completion event is exactly the
   point where p0 knows the wave reached everyone *)
let wave_spec ~n =
  Protocol.star_spec ~n ~request:wave_tag ~reply:"ack" ~finish:done_tag ()

let protocol =
  Protocol.make ~name:"echo"
    ~doc:"echo/PIF wave: flood out, acks collapse back, initiator completes"
    ~params:[ Protocol.param ~lo:2 "n" 3 "processes (p0 initiates)" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      ( "completed",
        Protocol.did_prop "completed" (Pid.of_int 0) done_tag )
      :: List.init (n - 1) (fun i ->
             let p = Pid.of_int (i + 1) in
             (Printf.sprintf "informed%d" (i + 1),
              Protocol.received_prop (Printf.sprintf "informed%d" (i + 1)) p
                wave_tag)))
    ~suggested_depth:6
    ~fault_scenarios:[ "crash:p1@1"; "drop:p0->p1"; "crash-any:1" ]
    (fun vs -> wave_spec ~n:(Protocol.get vs "n"))
