open Hpl_core
open Hpl_sim

(* -- impossibility ----------------------------------------------------- *)

let crash_tag = "crash"

let has_crashed history =
  List.exists
    (fun e ->
      match e.Event.kind with
      | Event.Internal tag -> String.equal tag crash_tag
      | Event.Send _ | Event.Receive _ -> false)
    history

let crashable_spec ~n =
  Spec.make ~n (fun p history ->
      if has_crashed history then []
      else
        let next = Pid.of_int ((Pid.to_int p + 1) mod n) in
        [ Spec.Do "tick"; Spec.Do crash_tag; Spec.Send_to (next, "ping"); Spec.Recv_any ])

let crashed p =
  Prop.make
    (Printf.sprintf "%s crashed" (Pid.to_string p))
    (fun z -> has_crashed (Trace.proj z p))

let nobody_ever_knows u ~observer ~subject =
  if Pid.equal observer subject then
    invalid_arg "Failure_detector.nobody_ever_knows: observer = subject";
  let k = Knowledge.knows u (Pset.singleton observer) (crashed subject) in
  let ok = ref true in
  Universe.iter (fun _ z -> if Prop.eval k z then ok := false) u;
  !ok

(* -- heartbeat detector ------------------------------------------------ *)

type params = {
  n : int;
  heartbeat_period : float;
  timeout : float;
  check_period : float;
  crash_time : float option;
  horizon : float;
}

let default =
  {
    n = 4;
    heartbeat_period = 5.0;
    timeout = 20.0;
    check_period = 2.0;
    crash_time = Some 100.0;
    horizon = 300.0;
  }

type outcome = {
  suspected : bool array;
  crashed : bool array;
  false_suspicions : int;
  missed : int;
  detection_time : float option;
}

let hb_tag = "hb"
let beat_timer = "beat"
let check_timer = "check"

type state = {
  params : params;
  is_monitor : bool;
  last_heard : float array;  (** monitor: last heartbeat per process *)
  suspect : bool array;
  mutable suspicion_log : (float * int) list;  (** (time, pid) suspicions *)
  first_detection : float option;
}

let monitor_pid = Pid.of_int 0

let init params p =
  let is_monitor = Pid.to_int p = 0 in
  let st =
    {
      params;
      is_monitor;
      last_heard = Array.make params.n 0.0;
      suspect = Array.make params.n false;
      suspicion_log = [];
      first_detection = None;
    }
  in
  let actions =
    if is_monitor then [ Engine.Set_timer (params.check_period, check_timer) ]
    else [ Engine.Set_timer (params.heartbeat_period, beat_timer) ]
  in
  (st, actions)

let on_message st ~self:_ ~src ~payload ~now =
  if st.is_monitor && Wire.is hb_tag payload then begin
    st.last_heard.(Pid.to_int src) <- now;
    if st.suspect.(Pid.to_int src) then st.suspect.(Pid.to_int src) <- false;
    (st, [])
  end
  else (st, [])

let on_timer st ~self:_ ~tag ~now =
  if String.equal tag beat_timer then
    ( st,
      [
        Engine.Send (monitor_pid, Wire.enc hb_tag []);
        Engine.Set_timer (st.params.heartbeat_period, beat_timer);
      ] )
  else if String.equal tag check_timer then begin
    let newly_detected = ref false in
    for i = 1 to st.params.n - 1 do
      if (not st.suspect.(i)) && now -. st.last_heard.(i) > st.params.timeout then begin
        st.suspect.(i) <- true;
        st.suspicion_log <- (now, i) :: st.suspicion_log;
        newly_detected := true
      end
    done;
    let st =
      if !newly_detected && st.first_detection = None then
        { st with first_detection = Some now }
      else st
    in
    (st, [ Engine.Set_timer (st.params.check_period, check_timer) ])
  end
  else (st, [])

let run ?(config = Engine.default) params =
  let crashes =
    match params.crash_time with
    | Some t -> [ (t, params.n - 1) ]
    | None -> []
  in
  let config =
    { config with Engine.n = params.n; crashes; max_time = params.horizon }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let monitor = result.Engine.states.(0) in
  let crashed = result.Engine.crashed in
  (* a suspicion is false when the process had not crashed by then;
     transient suspicions that were later cleared still count *)
  let crash_time_of i =
    List.fold_left
      (fun acc (t, pid) -> if pid = i then Some t else acc)
      None crashes
  in
  let false_suspicions =
    List.length
      (List.filter
         (fun (t, i) ->
           match crash_time_of i with None -> true | Some tc -> t < tc)
         monitor.suspicion_log)
  in
  let missed = ref 0 in
  for i = 1 to params.n - 1 do
    if (not monitor.suspect.(i)) && crashed.(i) then incr missed
  done;
  let detection_time =
    List.fold_left
      (fun acc (t, i) ->
        match crash_time_of i with
        | Some tc when t >= tc -> (
            match acc with Some best -> Some (min best t) | None -> Some t)
        | _ -> acc)
      None monitor.suspicion_log
  in
  {
    suspected = Array.copy monitor.suspect;
    crashed = Array.copy crashed;
    false_suspicions;
    missed = !missed;
    detection_time;
  }

(* -- registry ----------------------------------------------------------- *)

let protocol =
  Protocol.make ~name:"failure-detector"
    ~doc:"crashable processes: nobody ever knows a crash (no timeouts)"
    ~params:[ Protocol.param ~lo:2 "n" 2 "processes" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      List.init n (fun i ->
          (Printf.sprintf "crashed%d" i, crashed (Pid.of_int i))))
    ~symmetry:(fun vs -> [ Symmetry.rotation (Protocol.get vs "n") ])
    ~suggested_depth:4
    (fun vs -> crashable_spec ~n:(Protocol.get vs "n"))
