(** Rumor spreading — knowledge dissemination at scale.

    A rumor starts at process 0; every informed process forwards it to
    a random peer each period. The run is recorded as a computation, so
    learning is measured two ways:

    - {e ground truth / causality}: a process is informed exactly when
      the rumor's origin event is in its causal past — the process
      chain of Theorem 5 made concrete; {!informed_positions} extracts
      when each process learned;
    - {e higher-order knowledge}: matrix clocks over the same trace
      give each process's estimate of who else knows (the
      [depth2_complete_time] field), the operational counterpart of
      [p knows q knows rumor].

    Bench E9 sweeps n and reports rounds-to-everyone-knows and
    rounds-to-depth-2; the spec-level ladder of {!Two_generals}
    complements it with exact nested knowledge on two processes. *)

type mode = Push | Pull | Push_pull

type params = {
  n : int;
  period : float;
  fanout : int;  (** peers contacted per period *)
  mode : mode;
      (** Push: informed processes send the rumor. Pull: everyone
          queries random peers, informed peers answer. Push_pull:
          both on every contact. The classic trade-off — push spreads
          fast early, pull finishes the tail fast — shows up directly
          in E9's rounds-to-everyone numbers. *)
  horizon : float;
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  informed_time : float option array;
      (** when each process first received the rumor (entry 0 = 0.0) *)
  all_informed : bool;
  messages : int;
  depth2_complete_time : float option;
      (** when every process's matrix clock showed every other process
          informed — "everyone knows everyone knows" operationally *)
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val informed_positions : n:int -> Hpl_core.Trace.t -> int option array
(** Per process, trace position of its first rumor receipt (position 0
    for the origin). *)

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
