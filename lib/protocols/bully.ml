open Hpl_core
open Hpl_sim

type params = { n : int; ok_timeout : float; crash : int option; seed : int64 }

let default = { n = 5; ok_timeout = 30.0; crash = None; seed = 29L }

let election_tag = "bl-election"
let ok_tag = "bl-ok"
let coordinator_tag = "bl-coord"
let wait_timer = "bl-wait"
let declare_tag = "bl-i-am-coordinator"

type state = {
  params : params;
  me : int;
  got_ok : bool;
  declared : bool;
  leader : int option;
}

type outcome = {
  trace : Trace.t;
  coordinators : int list;
  agreed_on : int option;
  safe : bool;
  messages : int;
}

let higher st = List.init (st.params.n - 1 - st.me) (fun k -> st.me + 1 + k)
let all_but st = List.filter (fun i -> i <> st.me) (List.init st.params.n (fun i -> i))

let declare st =
  if st.declared then (st, [])
  else
    ( { st with declared = true; leader = Some st.me },
      Engine.Log_internal declare_tag
      :: List.map
           (fun i -> Engine.Send (Pid.of_int i, Wire.enc coordinator_tag [ st.me ]))
           (all_but st) )

let start_timer = "bl-start"

(* the election starts at t = 1 so that crash injection at t = 0.5 can
   remove a process before it acts (the classic "coordinator already
   down" scenario) *)
let init params p =
  let me = Pid.to_int p in
  let st = { params; me; got_ok = false; declared = false; leader = None } in
  (st, [ Engine.Set_timer (1.0, start_timer) ])

let on_message st ~self:_ ~src ~payload ~now:_ =
  match Wire.dec payload with
  | Some (tag, [ challenger ]) when String.equal tag election_tag ->
      ignore challenger;
      (* a lower process challenged: suppress it; (we are alive and
         already challenging everyone above us from init) *)
      (st, [ Engine.Send (src, Wire.enc ok_tag []) ])
  | Some (tag, []) when String.equal tag ok_tag ->
      ({ st with got_ok = true }, [])
  | Some (tag, [ c ]) when String.equal tag coordinator_tag ->
      ({ st with leader = Some c }, [])
  | _ -> (st, [])

let on_timer st ~self:_ ~tag ~now:_ =
  if String.equal tag start_timer then
    if higher st = [] then declare st
    else
      ( st,
        List.map
          (fun i -> Engine.Send (Pid.of_int i, Wire.enc election_tag [ st.me ]))
          (higher st)
        @ [ Engine.Set_timer (st.params.ok_timeout, wait_timer) ] )
  else if String.equal tag wait_timer && (not st.got_ok) && st.leader = None then
    declare st
  else (st, [])

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let config =
    match params.crash with
    | Some i -> { config with Engine.crashes = (0.5, i) :: config.Engine.crashes }
    | None -> config
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let coordinators =
    Array.to_list result.Engine.states
    |> List.filter_map (fun st -> if st.declared then Some st.me else None)
  in
  let live = Array.to_list (Array.mapi (fun i c -> (i, not c)) result.Engine.crashed) in
  let agreed_on =
    match coordinators with
    | [ c ] ->
        if
          List.for_all
            (fun (i, alive) ->
              (not alive) || i = c
              || result.Engine.states.(i).leader = Some c)
            live
        then Some c
        else None
    | _ -> None
  in
  {
    trace = result.Engine.trace;
    coordinators;
    agreed_on;
    safe = List.length coordinators <= 1;
    messages = result.Engine.stats.Engine.sent;
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: the lowest process challenges everyone above
   it; the highest answers by claiming coordinatorship *)
let election_spec ~n =
  if n < 2 then invalid_arg "Bully.election_spec: need at least two processes";
  let top = n - 1 in
  Spec.make ~n (fun p history ->
      let i = Pid.to_int p in
      if i = 0 then
        let s = Protocol.sends history in
        (if s < n - 1 then [ Spec.Send_to (Pid.of_int (s + 1), "elect") ]
         else [])
        @ [ Spec.Recv_any ]
      else if i = top then
        if Protocol.recvs_of history "elect" = 0 then [ Spec.Recv_any ]
        else
          let s = Protocol.sends_of history "coord" in
          if s < n - 1 then
            [ Spec.Send_to (Pid.of_int s, "coord"); Spec.Recv_any ]
          else if Protocol.did history "lead" then [ Spec.Recv_any ]
          else [ Spec.Do "lead" ]
      else [ Spec.Recv_any ])

let protocol =
  Protocol.make ~name:"bully"
    ~doc:"bully election: p0 challenges, the highest id claims the crown"
    ~params:[ Protocol.param ~lo:2 "n" 3 "processes (ids = indices)" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      ("crowned", Protocol.did_prop "crowned" (Pid.of_int (n - 1)) "lead")
      :: List.init (n - 1) (fun i ->
             (Printf.sprintf "learned%d" i,
              Protocol.received_prop (Printf.sprintf "learned%d" i)
                (Pid.of_int i) "coord")))
    ~suggested_depth:6
    (fun vs -> election_spec ~n:(Protocol.get vs "n"))
