open Hpl_core
open Hpl_sim

type params = {
  n : int;
  rounds : int;
  cs_duration : float;
  think_time : float;
  seed : int64;
}

let default = { n = 4; rounds = 3; cs_duration = 3.0; think_time = 5.0; seed = 43L }

let request_tag = "ra-req"
let reply_tag = "ra-rep"
let enter_tag = "ra-enter"
let exit_tag = "ra-exit"
let think_timer = "ra-think"
let leave_timer = "ra-leave"

type state = {
  params : params;
  me : int;
  clock : int;
  requesting : (int * int) option;  (** my (ts, id) request *)
  replies : int;
  deferred : int list;  (** processes awaiting my reply *)
  in_cs : bool;
  rounds_done : int;
}

type outcome = {
  trace : Trace.t;
  entries : int array;
  mutual_exclusion : bool;
  all_rounds_served : bool;
  messages : int;
  messages_per_entry : float;
}

let others st = List.filter (fun i -> i <> st.me) (List.init st.params.n (fun i -> i))

let beats (ts1, id1) (ts2, id2) = ts1 < ts2 || (ts1 = ts2 && id1 < id2)

let try_enter st =
  match st.requesting with
  | Some _ when (not st.in_cs) && st.replies = st.params.n - 1 ->
      ( { st with in_cs = true },
        [
          Engine.Log_internal enter_tag;
          Engine.Set_timer (st.params.cs_duration, leave_timer);
        ] )
  | _ -> (st, [])

let init params p =
  let me = Pid.to_int p in
  let st =
    {
      params;
      me;
      clock = 0;
      requesting = None;
      replies = 0;
      deferred = [];
      in_cs = false;
      rounds_done = 0;
    }
  in
  (st, [ Engine.Set_timer (params.think_time *. float_of_int (me + 1), think_timer) ])

let on_message st ~self:_ ~src ~payload ~now:_ =
  let s = Pid.to_int src in
  match Wire.dec payload with
  | Some (tag, [ ts ]) when String.equal tag request_tag ->
      let st = { st with clock = max st.clock ts + 1 } in
      let defer =
        match st.requesting with
        | Some mine -> st.in_cs || beats mine (ts, s)
        | None -> false
      in
      if defer then ({ st with deferred = s :: st.deferred }, [])
      else (st, [ Engine.Send (src, Wire.enc reply_tag []) ])
  | Some (tag, []) when String.equal tag reply_tag ->
      let st = { st with replies = st.replies + 1 } in
      try_enter st
  | _ -> (st, [])

let on_timer st ~self:_ ~tag ~now:_ =
  if String.equal tag think_timer then (
    match st.requesting with
    | None when st.rounds_done < st.params.rounds ->
        let clock = st.clock + 1 in
        let st =
          { st with clock; requesting = Some (clock, st.me); replies = 0 }
        in
        ( st,
          List.map
            (fun i -> Engine.Send (Pid.of_int i, Wire.enc request_tag [ clock ]))
            (others st) )
    | _ -> (st, []))
  else if String.equal tag leave_timer && st.in_cs then begin
    let replies =
      List.map (fun i -> Engine.Send (Pid.of_int i, Wire.enc reply_tag [])) st.deferred
    in
    let st =
      {
        st with
        in_cs = false;
        requesting = None;
        replies = 0;
        deferred = [];
        rounds_done = st.rounds_done + 1;
      }
    in
    let again =
      if st.rounds_done < st.params.rounds then
        [ Engine.Set_timer (st.params.think_time, think_timer) ]
      else []
    in
    (st, (Engine.Log_internal exit_tag :: replies) @ again)
  end
  else (st, [])

let check_exclusion z =
  let inside = ref 0 in
  let ok = ref true in
  List.iter
    (fun e ->
      match e.Event.kind with
      | Event.Internal t when String.equal t enter_tag ->
          if !inside > 0 then ok := false;
          incr inside
      | Event.Internal t when String.equal t exit_tag -> decr inside
      | _ -> ())
    (Trace.to_list z);
  !ok

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let z = result.Engine.trace in
  let entries =
    Array.init params.n (fun i ->
        List.length
          (List.filter
             (fun e ->
               match e.Event.kind with
               | Event.Internal t -> String.equal t enter_tag
               | _ -> false)
             (Trace.proj z (Pid.of_int i))))
  in
  let total = Array.fold_left ( + ) 0 entries in
  {
    trace = z;
    entries;
    mutual_exclusion = check_exclusion z;
    all_rounds_served = Array.for_all (fun e -> e = params.rounds) entries;
    messages = result.Engine.stats.Engine.sent;
    messages_per_entry =
      (if total = 0 then 0.0
       else float_of_int result.Engine.stats.Engine.sent /. float_of_int total);
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec (two contenders): both request; p1 grants
   immediately, p0 defers its grant until after its own critical
   section — the deferral that makes RA exclusion a knowledge fact *)
let contention_spec =
  let p0 = Pid.of_int 0 and p1 = Pid.of_int 1 in
  Spec.make ~n:2 (fun p history ->
      if Pid.equal p p0 then
        if Protocol.sends_of history "req" = 0 then [ Spec.Send_to (p1, "req") ]
        else if not (Protocol.did history "cs") then
          (if Protocol.recvs_of history "ok" > 0 then [ Spec.Do "cs" ] else [])
          @ [ Spec.Recv_any ]
        else if
          Protocol.recvs_of history "req" > Protocol.sends_of history "ok"
        then [ Spec.Send_to (p1, "ok") ]
        else [ Spec.Recv_any ]
      else if Protocol.sends_of history "req" = 0 then [ Spec.Send_to (p0, "req") ]
      else
        (if Protocol.recvs_of history "req" > Protocol.sends_of history "ok"
         then [ Spec.Send_to (p0, "ok") ]
         else [])
        @ (if
             Protocol.recvs_of history "ok" > 0 && not (Protocol.did history "cs")
           then [ Spec.Do "cs" ]
           else [])
        @ [ Spec.Recv_any ])

let protocol =
  Protocol.make ~name:"ricart-agrawala"
    ~doc:"RA mutex, two contenders: deferred grants order the sections"
    ~atoms:(fun _ ->
      [
        ("cs0", Protocol.did_prop "cs0" (Pid.of_int 0) "cs");
        ("cs1", Protocol.did_prop "cs1" (Pid.of_int 1) "cs");
      ])
    ~suggested_depth:7
    (fun _ -> contention_spec)
