(** Underlying diffusing computations — the workload whose termination
    the §5 detectors must discover.

    A computation starts at a root, which spawns work messages; each
    delivered work message may spawn further work, subject to a global
    message budget carried in the messages themselves ("token
    counting", so the total number of underlying messages is bounded by
    construction). A node is busy only while handling a delivery, so
    the underlying computation has terminated exactly when every work
    message has been delivered.

    Detectors embed this module's pure transition functions inside
    their own handlers, adding control traffic around the same
    workload; {!handlers} runs it bare (for ground truth and message
    counts). *)

type params = {
  n : int;  (** processes *)
  root : int;  (** the initiator *)
  budget : int;  (** max total work messages *)
  fanout : int;  (** max spawns per delivery *)
  spawn_prob : float;  (** probability of using each spawn slot *)
  seed : int64;  (** workload decisions (independent of the scheduler) *)
}

val default : params

val work_tag : string
(** Payload tag of work messages ("work"); budgets ride along. *)

val is_work : string -> bool

(** Pure workload logic, for embedding into detectors. *)
module Logic : sig
  type t
  (** Per-node workload state (its private RNG). *)

  val create : params -> Hpl_core.Pid.t -> t

  val initial_spawns : params -> t -> t * (Hpl_core.Pid.t * string) list
  (** Root's initial work sends (empty for non-roots). *)

  val on_work : params -> t -> payload:string -> t * (Hpl_core.Pid.t * string) list
  (** Handle a delivered work message: returns the spawned work sends
      (possibly none — then this branch of the diffusion dies). *)
end

val handlers : params -> Logic.t Hpl_sim.Engine.handlers
(** Bare workload for the simulator: work messages only, no detector. *)

val run : ?config:Hpl_sim.Engine.config -> params -> Logic.t Hpl_sim.Engine.result
(** Runs the bare workload (config's [n] is overridden by [params.n]). *)

val work_messages : Hpl_core.Trace.t -> int
(** Number of work messages sent in a recorded run. *)

val terminated_by : Hpl_core.Trace.t -> bool
(** Every sent work message was delivered (no work in flight). *)

val termination_position : Hpl_core.Trace.t -> int option
(** The prefix length after which the underlying computation is
    terminated for good — one past the final work delivery, 0 if no
    work was ever sent — or [None] when work is still in flight at the
    end of the trace. An announcement at trace index [d] is sound iff
    [d ≥] this position. *)

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
