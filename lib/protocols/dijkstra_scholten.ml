open Hpl_core
open Hpl_sim

let name = "ds"
let detect_tag = Termination.detect_tag_of name
let ack = "ds-ack"

type state = {
  logic : Underlying.Logic.t;
  params : Underlying.params;
  is_root : bool;
  parent : Pid.t option;
  deficit : int;
  announced : bool;
}

let send_work sends = List.map (fun (dst, payload) -> Engine.Send (dst, payload)) sends

(* After any state change, an engaged non-root node with zero deficit
   signals its parent and detaches; the root announces at zero deficit. *)
let settle st =
  if st.deficit > 0 then (st, [])
  else if st.is_root then
    if st.announced then (st, [])
    else ({ st with announced = true }, [ Engine.Log_internal detect_tag ])
  else
    match st.parent with
    | Some parent -> ({ st with parent = None }, [ Engine.Send (parent, Wire.enc ack []) ])
    | None -> (st, [])

let init params p =
  let logic = Underlying.Logic.create params p in
  let is_root = Pid.to_int p = params.root in
  let logic, sends =
    if is_root then Underlying.Logic.initial_spawns params logic else (logic, [])
  in
  let st =
    { logic; params; is_root; parent = None; deficit = List.length sends; announced = false }
  in
  let st, settle_actions = settle st in
  (st, send_work sends @ settle_actions)

let on_message st ~self:_ ~src ~payload ~now:_ =
  if Underlying.is_work payload then begin
    let was_detached = (not st.is_root) && st.parent = None && st.deficit = 0 in
    let logic, sends = Underlying.Logic.on_work st.params st.logic ~payload in
    let st = { st with logic; deficit = st.deficit + List.length sends } in
    (* engagement: a detached node adopts the sender as parent; an
       already-engaged node (or the root) acknowledges right away *)
    let st, ack_now =
      if was_detached then ({ st with parent = Some src }, [])
      else (st, [ Engine.Send (src, Wire.enc ack []) ])
    in
    let st, settle_actions = settle st in
    (st, send_work sends @ ack_now @ settle_actions)
  end
  else if Wire.is ack payload then begin
    let st = { st with deficit = st.deficit - 1 } in
    let st, settle_actions = settle st in
    (st, settle_actions)
  end
  else (st, [])

let handlers params =
  {
    Engine.init = init params;
    on_message;
    on_timer = (fun st ~self:_ ~tag:_ ~now:_ -> (st, []));
  }

let run_raw ?(config = Engine.default) params =
  let result =
    Engine.run { config with Engine.n = params.Underlying.n } (handlers params)
  in
  (result.Engine.stats, result.Engine.trace)

let run ?config params =
  let _, trace = run_raw ?config params in
  Termination.score ~detector:name ~detect_tag trace

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: a one-level DS tree — the root engages every
   process, signals flow back, and detection is the root's knowledge
   that its deficit reached zero *)
let protocol =
  Protocol.make ~name:"dijkstra-scholten"
    ~doc:"DS termination: engage children, signals retire the tree"
    ~params:[ Protocol.param ~lo:2 "n" 2 "processes (p0 is the root)" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      ("detected", Protocol.did_prop "detected" (Pid.of_int 0) detect_tag)
      :: List.init (n - 1) (fun i ->
             (Printf.sprintf "worked%d" (i + 1),
              Protocol.did_prop (Printf.sprintf "worked%d" (i + 1))
                (Pid.of_int (i + 1)) "worked")))
    ~suggested_depth:6
    (fun vs ->
      Protocol.star_spec ~n:(Protocol.get vs "n") ~work:"worked"
        ~request:Underlying.work_tag ~reply:ack ~finish:detect_tag ())
