open Hpl_core
open Hpl_sim

type mode = [ `Naive | `Four_counter ]

let name = function `Naive -> "probe" | `Four_counter -> "4counter"
let detect_tag mode = Termination.detect_tag_of (name mode)
let probe_tag = "probe-req"
let reply_tag = "probe-reply"
let wave_timer = "probe-wave"

type state = {
  logic : Underlying.Logic.t;
  params : Underlying.params;
  sent_work : int;
  recv_work : int;
  (* root bookkeeping for the current wave *)
  replies : int;
  wave_s : int;
  wave_r : int;
  prev_wave : (int * int) option;
  announced : bool;
}

let send_work sends = List.map (fun (dst, payload) -> Engine.Send (dst, payload)) sends

let init ~wave_delay params p =
  let logic = Underlying.Logic.create params p in
  let is_root = Pid.to_int p = params.Underlying.root in
  let logic, sends =
    if is_root then Underlying.Logic.initial_spawns params logic else (logic, [])
  in
  let st =
    {
      logic;
      params;
      sent_work = List.length sends;
      recv_work = 0;
      replies = 0;
      wave_s = 0;
      wave_r = 0;
      prev_wave = None;
      announced = false;
    }
  in
  let actions =
    send_work sends
    @ if is_root then [ Engine.Set_timer (wave_delay, wave_timer) ] else []
  in
  (st, actions)

let wave_complete ~mode ~wave_delay st =
  let s = st.wave_s + st.sent_work and r = st.wave_r + st.recv_work in
  let declare =
    match mode with
    | `Naive -> true (* everyone answered "idle": announce *)
    | `Four_counter -> (
        match st.prev_wave with
        | Some (s1, r1) -> s1 = r1 && s1 = s && r1 = r
        | None -> false)
  in
  if declare && not st.announced then
    ({ st with announced = true }, [ Engine.Log_internal (detect_tag mode) ])
  else
    ( { st with prev_wave = Some (s, r) },
      if st.announced then [] else [ Engine.Set_timer (wave_delay, wave_timer) ] )

let on_message ~mode ~wave_delay st ~self:_ ~src ~payload ~now:_ =
  if Underlying.is_work payload then begin
    let logic, sends = Underlying.Logic.on_work st.params st.logic ~payload in
    let st =
      {
        st with
        logic;
        sent_work = st.sent_work + List.length sends;
        recv_work = st.recv_work + 1;
      }
    in
    (st, send_work sends)
  end
  else if Wire.is probe_tag payload then
    (* answer instantly: we are idle; report counters *)
    (st, [ Engine.Send (src, Wire.enc reply_tag [ st.sent_work; st.recv_work ]) ])
  else
    match Wire.dec payload with
    | Some (tag, [ s; r ]) when String.equal tag reply_tag ->
        let st =
          {
            st with
            replies = st.replies + 1;
            wave_s = st.wave_s + s;
            wave_r = st.wave_r + r;
          }
        in
        if st.replies = st.params.Underlying.n - 1 then begin
          let st = { st with replies = 0 } in
          let st, actions = wave_complete ~mode ~wave_delay st in
          ({ st with wave_s = 0; wave_r = 0 }, actions)
        end
        else (st, [])
    | _ -> (st, [])

let on_timer ~mode ~wave_delay st ~self ~tag ~now:_ =
  if String.equal tag wave_timer && not st.announced then begin
    let others =
      List.filter
        (fun i -> i <> Pid.to_int self)
        (List.init st.params.Underlying.n (fun i -> i))
    in
    if others = [] then begin
      (* single-process system: the wave is just the root's counters *)
      let st, actions = wave_complete ~mode ~wave_delay st in
      ({ st with wave_s = 0; wave_r = 0 }, actions)
    end
    else
      (st, List.map (fun i -> Engine.Send (Pid.of_int i, Wire.enc probe_tag [])) others)
  end
  else (st, [])

let handlers ~mode ~wave_delay params =
  {
    Engine.init = init ~wave_delay params;
    on_message = on_message ~mode ~wave_delay;
    on_timer = on_timer ~mode ~wave_delay;
  }

let run_raw ?(config = Engine.default) ?(wave_delay = 25.0) ~mode params =
  let result =
    Engine.run { config with Engine.n = params.Underlying.n }
      (handlers ~mode ~wave_delay params)
  in
  (result.Engine.stats, result.Engine.trace)

let run ?config ?wave_delay ~mode params =
  let _, trace = run_raw ?config ?wave_delay ~mode params in
  Termination.score ~detector:(name mode) ~detect_tag:(detect_tag mode) trace

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: one probe wave — query every process, count the
   echoes, detect on a complete wave *)
let protocol =
  Protocol.make ~name:"probe"
    ~doc:"probe-wave termination: one wave of query/echo, then detect"
    ~params:[ Protocol.param ~lo:2 "n" 2 "processes (p0 probes)" ]
    ~atoms:(fun _ ->
      [
        ("detected",
         Protocol.did_prop "detected" (Pid.of_int 0) (detect_tag `Four_counter));
      ])
    ~suggested_depth:5
    (fun vs ->
      Protocol.star_spec ~n:(Protocol.get vs "n") ~request:"probe"
        ~reply:"echo" ~finish:(detect_tag `Four_counter) ())
