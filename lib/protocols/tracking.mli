(** Remote tracking of a changing local predicate (§5).

    The paper: a process [P] cannot track the changes of a predicate
    local to [P̄] exactly at all times — [P] must be unsure while the
    value is changing; and a {e necessary condition} for [P̄] to change
    [b] is that [P̄] knows [P] is unsure of [b] at the point of change.

    Two systems make this concrete:
    - {!silent_spec}: p0 flips a bit privately; p1 hears nothing and is
      unsure forever after the first flip becomes possible;
    - {!notify_spec}: p0 announces every flip and waits for an
      acknowledgement before flipping again — the tightest tracking the
      theory allows, and p1 is still unsure while a notification is in
      flight.

    The change-condition checker verifies the necessary condition on
    every flip of every computation in a universe — for {e any}
    protocol, which is how the paper states it. *)

val flip_tag : string

val silent_spec : n:int -> flips:int -> ticks:int -> Hpl_core.Spec.t
(** [ticks] bounds the tracker's internal events so the whole system is
    finite: enumerate with [depth ≥ flips + (n-1)·ticks] and the
    universe is the complete computation set — the knowledge
    quantifiers are then exact, free of horizon artifacts. *)

val notify_spec : flips:int -> Hpl_core.Spec.t
(** Two processes: p0 the flipper/notifier, p1 the tracker. *)

val bit : Hpl_core.Prop.t
(** "p0's bit is set" — parity of p0's flip events; local to p0. *)

val tracker_always_unsure_after_flip : Hpl_core.Universe.t -> bool
(** In {!silent_spec} universes: at every computation where a flip has
    occurred, p1 is unsure of {!bit}. *)

val unsure_while_changing : Hpl_core.Universe.t -> bool
(** At every computation [z] with an enabled flip event [e] (so the
    value is "undergoing change"), p1 is unsure of {!bit} at [z] or at
    [(z;e)] — the tracker cannot be sure across the change. *)

val change_requires_known_unsureness :
  Hpl_core.Universe.t -> tracker:Hpl_core.Pid.t -> bool
(** The paper's necessary condition, on every computation of the
    universe: if [(z; flip)] is a computation, then at [z] p0 knows
    that the tracker is unsure of {!bit}. *)

val protocol : Protocol.t
(** Registry entry for the silent-flipper system. *)

val notify_protocol : Protocol.t
(** Registry entry for the notify+ack system. *)
