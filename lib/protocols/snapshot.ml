open Hpl_core
open Hpl_sim

type params = {
  n : int;
  app_period : float;
  snapshot_time : float;
  horizon : float;
}

let default = { n = 4; app_period = 3.0; snapshot_time = 50.0; horizon = 200.0 }

type recorded = {
  states : int array;
  channel_messages : (int * int * int) list;
  cut_positions : int array;
}

type outcome = {
  recorded : recorded;
  consistent : bool;
  conservation : bool;
  trace : Trace.t;
}

let app_tag = "app"
let marker_tag = "marker"
let app_timer = "app-tick"
let start_timer = "snap-start"
let record_tag = "recorded"

type state = {
  params : params;
  me : int;
  sent_app : int;
  recv_app : int array;  (** per-source app receive counts *)
  recording : bool;
  recorded_state : int option;
  marker_from : bool array;  (** marker received on channel from i *)
  chan_recorded : int array;  (** app messages recorded per channel *)
  rng : Rng.t;
}

let others st = List.filter (fun i -> i <> st.me) (List.init st.params.n (fun i -> i))

let init params p =
  let me = Pid.to_int p in
  let st =
    {
      params;
      me;
      sent_app = 0;
      recv_app = Array.make params.n 0;
      recording = false;
      recorded_state = None;
      marker_from = Array.make params.n false;
      chan_recorded = Array.make params.n 0;
      rng = Rng.create (Int64.of_int (1000 + me));
    }
  in
  let actions =
    [ Engine.Set_timer (params.app_period, app_timer) ]
    @ if me = 0 then [ Engine.Set_timer (params.snapshot_time, start_timer) ] else []
  in
  (st, actions)

let begin_recording st =
  if st.recording then (st, [])
  else begin
    let st = { st with recording = true; recorded_state = Some st.sent_app } in
    let markers =
      List.map
        (fun i -> Engine.Send (Pid.of_int i, Wire.enc marker_tag []))
        (others st)
    in
    (st, (Engine.Log_internal record_tag :: markers))
  end

let recording_done st =
  st.recording && List.for_all (fun i -> st.marker_from.(i)) (others st)

let on_message st ~self:_ ~src ~payload ~now:_ =
  let s = Pid.to_int src in
  if Wire.is app_tag payload then begin
    st.recv_app.(s) <- st.recv_app.(s) + 1;
    (* an app message arriving while recording, before that channel's
       marker, belongs to the channel state *)
    if st.recording && not st.marker_from.(s) then
      st.chan_recorded.(s) <- st.chan_recorded.(s) + 1;
    (st, [])
  end
  else if Wire.is marker_tag payload then begin
    let st, actions = begin_recording st in
    st.marker_from.(s) <- true;
    let actions =
      if recording_done st then actions @ [ Engine.Log_internal "snap-done" ]
      else actions
    in
    (st, actions)
  end
  else (st, [])

let on_timer st ~self:_ ~tag ~now =
  if String.equal tag app_timer then begin
    if now > st.params.horizon then (st, [])
    else begin
      let dst = Rng.int st.rng st.params.n in
      let dst = if dst = st.me then (dst + 1) mod st.params.n else dst in
      let st = { st with sent_app = st.sent_app + 1 } in
      ( st,
        [
          Engine.Send (Pid.of_int dst, Wire.enc app_tag []);
          Engine.Set_timer (st.params.app_period, app_timer);
        ] )
    end
  end
  else if String.equal tag start_timer then begin_recording st
  else (st, [])

let positions_of_internal z tag =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i e ->
      match e.Event.kind with
      | Event.Internal t when String.equal t tag ->
          let p = Pid.to_int e.Event.pid in
          if not (Hashtbl.mem tbl p) then Hashtbl.add tbl p i
      | _ -> ())
    (Trace.to_list z);
  tbl

(* Consistency is a statement about application traffic: markers cross
   the cut by construction (they are how the cut is agreed on), so the
   condition is that no app message is received inside the cut but sent
   outside it. *)
let cut_is_consistent ~n:_ z ~cut_positions =
  let events = Array.of_list (Trace.to_list z) in
  let send_pos : (Pid.t * int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i e ->
      match e.Event.kind with
      | Event.Send m when Wire.is app_tag m.Msg.payload ->
          Hashtbl.replace send_pos (Msg.key m) i
      | _ -> ())
    events;
  let ok = ref true in
  Array.iteri
    (fun j e ->
      match e.Event.kind with
      | Event.Receive m when Wire.is app_tag m.Msg.payload ->
          let d = Pid.to_int e.Event.pid in
          if j <= cut_positions.(d) then begin
            let i = Hashtbl.find send_pos (Msg.key m) in
            let s = Pid.to_int m.Msg.src in
            if i > cut_positions.(s) then ok := false
          end
      | _ -> ())
    events;
  !ok

let run ?(config = Engine.default) params =
  let config =
    { config with Engine.n = params.n; max_time = params.horizon *. 2.0 }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let z = result.Engine.trace in
  let cut_tbl = positions_of_internal z record_tag in
  let all_recorded = Hashtbl.length cut_tbl = params.n in
  let cut_positions =
    Array.init params.n (fun i ->
        Option.value ~default:max_int (Hashtbl.find_opt cut_tbl i))
  in
  let states =
    Array.map
      (fun st -> Option.value ~default:(-1) st.recorded_state)
      result.Engine.states
  in
  let channel_messages =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun dst st ->
              List.filter_map
                (fun src ->
                  if st.chan_recorded.(src) > 0 then
                    Some (src, dst, st.chan_recorded.(src))
                  else None)
                (List.init params.n (fun i -> i)))
            result.Engine.states))
  in
  let consistent =
    all_recorded && cut_is_consistent ~n:params.n z ~cut_positions
  in
  (* conservation: per channel (s,d), app messages sent by s before its
     cut point = app messages received by d before d's cut point +
     recorded channel content *)
  let conservation =
    all_recorded
    &&
    let events = Array.of_list (Trace.to_list z) in
    let count_app_sent s d limit =
      let c = ref 0 in
      Array.iteri
        (fun i e ->
          match e.Event.kind with
          | Event.Send m
            when i <= limit
                 && Pid.to_int e.Event.pid = s
                 && Pid.to_int m.Msg.dst = d
                 && Wire.is app_tag m.Msg.payload ->
              incr c
          | _ -> ())
        events;
      !c
    in
    let count_app_recv s d limit =
      let c = ref 0 in
      Array.iteri
        (fun i e ->
          match e.Event.kind with
          | Event.Receive m
            when i <= limit
                 && Pid.to_int e.Event.pid = d
                 && Pid.to_int m.Msg.src = s
                 && Wire.is app_tag m.Msg.payload ->
              incr c
          | _ -> ())
        events;
      !c
    in
    let ok = ref true in
    for s = 0 to params.n - 1 do
      for d = 0 to params.n - 1 do
        if s <> d then begin
          let sent = count_app_sent s d cut_positions.(s) in
          let recvd = count_app_recv s d cut_positions.(d) in
          let in_channel =
            match List.find_opt (fun (s', d', _) -> s' = s && d' = d) channel_messages with
            | Some (_, _, c) -> c
            | None -> 0
          in
          if sent <> recvd + in_channel then ok := false
        end
      done
    done;
    !ok
  in
  {
    recorded = { states; channel_messages; cut_positions };
    consistent;
    conservation;
    trace = z;
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: Chandy-Lamport markers over a hub — p0 records,
   floods markers; each process records on its first marker and markers
   back, so the cut is consistent by construction *)
let marker_spec ~n =
  if n < 2 then invalid_arg "Snapshot.marker_spec: need at least two processes";
  let p0 = Pid.of_int 0 in
  Spec.make ~n (fun p history ->
      if Pid.equal p p0 then
        if not (Protocol.did history "record") then [ Spec.Do "record" ]
        else
          let s = Protocol.sends history in
          if s < n - 1 then [ Spec.Send_to (Pid.of_int (s + 1), "marker") ]
          else [ Spec.Recv_any ]
      else if Protocol.recvs history = 0 then [ Spec.Recv_any ]
      else if not (Protocol.did history "record") then [ Spec.Do "record" ]
      else if Protocol.sends history = 0 then [ Spec.Send_to (p0, "marker") ]
      else [])

let protocol =
  Protocol.make ~name:"snapshot"
    ~doc:"Chandy-Lamport markers: record on first marker, flood on"
    ~params:[ Protocol.param ~lo:2 "n" 2 "processes (p0 initiates)" ]
    ~atoms:(fun vs ->
      List.init (Protocol.get vs "n") (fun i ->
          (Printf.sprintf "recorded%d" i,
           Protocol.did_prop (Printf.sprintf "recorded%d" i) (Pid.of_int i)
             "record")))
    ~suggested_depth:6
    (fun vs -> marker_spec ~n:(Protocol.get vs "n"))
