open Hpl_core

(* Four protocols whose topology is genuinely invariant under a
   pid-permutation group, declared via [Protocol.make ~symmetry] — the
   registry's exercise ground for the reduction layer (DESIGN.md §10).

   Symmetry is easy to break by accident: a hub that contacts members
   in pid order, or an initiator holding a token, distinguishes
   processes and admits no non-trivial automorphism (that is exactly
   what [hpl lint]'s symmetry rules check). The specs here use only
   relative addressing (ring) or unordered choice over interchangeable
   peers (quorum, star-flood, mesh), so the declared generators are
   true automorphisms — validated by [Symmetry.is_automorphism] in the
   registry test suite. *)

let sent_to history q =
  List.exists
    (fun e ->
      match e.Event.kind with
      | Event.Send m -> Pid.to_int m.Msg.dst = q
      | Event.Receive _ | Event.Internal _ -> false)
    history

(* -- ring: rotation symmetry Z_n ---------------------------------------- *)

let ring_spec ~n ~rounds =
  Spec.make ~n (fun p history ->
      let s = Protocol.sends history and r = Protocol.recvs history in
      let right = Pid.of_int ((Pid.to_int p + 1) mod n) in
      (if s < rounds && s <= r then [ Spec.Send_to (right, "r") ] else [])
      @ if r < rounds then [ Spec.Recv_any ] else [])

(* Each process sends at most [rounds] and receives at most [rounds];
   the relay constraint [sends <= recvs] is counter-vs-counter, hence
   [Diff_le]. Every process receives, so no pid is stable and the flow
   independence relation never restricts ring enumeration. *)
let ring_profile vs =
  let n = Protocol.get vs "n" in
  let rounds = Protocol.get vs "rounds" in
  let open Protocol.Profile in
  Array.init n (fun i ->
      [
        {
          guard =
            [
              Between (C_sends, 0, Some (rounds - 1));
              Diff_le (C_sends, C_recvs, 0);
            ];
          acts = [ Send { dst = (i + 1) mod n; payload = "r" } ];
        };
        { guard = [ Between (C_recvs, 0, Some (rounds - 1)) ]; acts = [ Recv ] };
      ])

let all_sent n =
  Prop.make "all_sent" (fun z ->
      List.for_all
        (fun i -> Trace.send_count z (Pid.of_int i) > 0)
        (List.init n Fun.id))

let p_sent name i = Prop.make name (fun z -> Trace.send_count z (Pid.of_int i) > 0)

let ring =
  Protocol.make ~name:"ring"
    ~doc:"each process relays one message per round to its right neighbour"
    ~params:
      [
        Protocol.param ~lo:2 "n" 6 "ring size";
        Protocol.param "rounds" 2 "messages each process sends";
      ]
    ~atoms:(fun vs ->
      [
        ("all_sent", all_sent (Protocol.get vs "n"));
        ("p0_sent", p_sent "p0_sent" 0);
      ])
    ~symmetry:(fun vs -> [ Symmetry.rotation (Protocol.get vs "n") ])
    ~suggested_depth:6 ~profile:ring_profile
    (fun vs ->
      ring_spec ~n:(Protocol.get vs "n") ~rounds:(Protocol.get vs "rounds"))

(* -- quorum: members interchangeable, S_{n-1} --------------------------- *)

let quorum_spec ~n ~q =
  let collector = Pid.of_int 0 in
  Spec.make ~n (fun p history ->
      if Pid.equal p collector then
        if Protocol.did history "decide" then []
        else if Protocol.recvs history >= q then [ Spec.Do "decide" ]
        else [ Spec.Recv_any ]
      else if Protocol.sends history = 0 then
        [ Spec.Send_to (collector, "yes") ]
      else [])

(* Members are receive-free (stable): each fires exactly one send. The
   collector receives at most [q] votes then decides once, so every
   per-pid event bound is finite — quorum is the registry protocol
   where flow-derived independence lets POR prune member-send
   interleavings. *)
let quorum_profile vs =
  let n = Protocol.get vs "n" in
  let q = min (Protocol.get vs "q") (n - 1) in
  let open Protocol.Profile in
  Array.init n (fun i ->
      if i = 0 then
        [
          {
            guard =
              [
                Between (C_did "decide", 0, Some 0); Between (C_recvs, q, None);
              ];
            acts = [ Do "decide" ];
          };
          {
            guard =
              [
                Between (C_did "decide", 0, Some 0);
                Between (C_recvs, 0, Some (q - 1));
              ];
            acts = [ Recv ];
          };
        ]
      else
        [
          {
            guard = [ Between (C_sends, 0, Some 0) ];
            acts = [ Send { dst = 0; payload = "yes" } ];
          };
        ])

(* generators of the symmetric group on pids 1..n-1, fixing the
   distinguished process 0 *)
let member_generators n =
  let members = List.init (n - 1) (fun i -> i + 1) in
  match members with
  | [] | [ _ ] -> []
  | [ a; b ] -> [ Symmetry.transposition n a b ]
  | a :: b :: _ -> [ Symmetry.cycle n members; Symmetry.transposition n a b ]

let quorum =
  Protocol.make ~name:"quorum"
    ~doc:"members vote for a fixed collector; decision after q votes"
    ~params:
      [
        Protocol.param ~lo:2 "n" 5 "processes (collector + members)";
        Protocol.param "q" 2 "votes needed to decide";
      ]
    ~atoms:(fun _ ->
      [
        ("decided", Protocol.did_prop "decided" (Pid.of_int 0) "decide");
        ("p1_voted", p_sent "p1_voted" 1);
      ])
    ~symmetry:(fun vs -> member_generators (Protocol.get vs "n"))
    ~suggested_depth:6 ~profile:quorum_profile
    (fun vs ->
      let n = Protocol.get vs "n" in
      let q = min (Protocol.get vs "q") (n - 1) in
      quorum_spec ~n ~q)

(* -- star-flood: hub broadcasts in any order, S_{n-1} ------------------- *)

(* Unlike [Protocol.star_spec] (whose hub contacts members in pid
   order, breaking interchangeability), the hub here offers a send to
   every not-yet-contacted member simultaneously — the enabled set is
   equivariant under member permutations. *)
let star_flood_spec ~n =
  let hub = Pid.of_int 0 in
  Spec.make ~n (fun p history ->
      if Pid.equal p hub then
        let pending =
          List.filter
            (fun q -> not (sent_to history q))
            (List.init (n - 1) (fun i -> i + 1))
        in
        List.map (fun q -> Spec.Send_to (Pid.of_int q, "go")) pending
        @ (if Protocol.recvs history < n - 1 then [ Spec.Recv_any ] else [])
      else if Protocol.recvs history = 0 then [ Spec.Recv_any ]
      else if Protocol.sends history = 0 then [ Spec.Send_to (hub, "ack") ]
      else [])

(* The hub's "not yet contacted q" choice is a per-destination send
   counter; members receive exactly once then ack. *)
let star_flood_profile vs =
  let n = Protocol.get vs "n" in
  let open Protocol.Profile in
  Array.init n (fun i ->
      if i = 0 then
        List.init (n - 1) (fun j ->
            {
              guard = [ Between (C_sends_to (j + 1), 0, Some 0) ];
              acts = [ Send { dst = j + 1; payload = "go" } ];
            })
        @ [ { guard = [ Between (C_recvs, 0, Some (n - 2)) ]; acts = [ Recv ] } ]
      else
        [
          { guard = [ Between (C_recvs, 0, Some 0) ]; acts = [ Recv ] };
          {
            guard = [ Between (C_recvs, 1, None); Between (C_sends, 0, Some 0) ];
            acts = [ Send { dst = 0; payload = "ack" } ];
          };
        ])

let star_flood =
  Protocol.make ~name:"star-flood"
    ~doc:"hub floods members in any order; members ack — unordered star"
    ~params:[ Protocol.param ~lo:2 "n" 5 "hub + members" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      [
        ( "all_acked",
          Prop.make "all_acked" (fun z ->
              Protocol.recvs (Trace.proj z (Pid.of_int 0)) = n - 1) );
        ("p1_acked", p_sent "p1_acked" 1);
      ])
    ~symmetry:(fun vs -> member_generators (Protocol.get vs "n"))
    ~suggested_depth:6 ~profile:star_flood_profile
    (fun vs -> star_flood_spec ~n:(Protocol.get vs "n"))

(* -- mesh: full symmetric group S_n ------------------------------------- *)

let mesh_spec ~n =
  Spec.make ~n (fun p history ->
      (if Protocol.sends history = 0 then
         List.filter_map
           (fun q ->
             if q = Pid.to_int p then None
             else Some (Spec.Send_to (Pid.of_int q, "hi")))
           (List.init n Fun.id)
       else [])
      @ if Protocol.recvs history < n - 1 then [ Spec.Recv_any ] else [])

let mesh_profile vs =
  let n = Protocol.get vs "n" in
  let open Protocol.Profile in
  Array.init n (fun i ->
      List.filter_map
        (fun q ->
          if q = i then None
          else
            Some
              {
                guard = [ Between (C_sends, 0, Some 0) ];
                acts = [ Send { dst = q; payload = "hi" } ];
              })
        (List.init n Fun.id)
      @ [ { guard = [ Between (C_recvs, 0, Some (n - 2)) ]; acts = [ Recv ] } ])

let mesh =
  Protocol.make ~name:"mesh"
    ~doc:"every process greets any one peer; no process distinguished"
    ~params:[ Protocol.param ~lo:2 "n" 4 "processes" ]
    ~atoms:(fun vs ->
      [
        ("all_sent", all_sent (Protocol.get vs "n"));
        ("p0_sent", p_sent "p0_sent" 0);
      ])
    ~symmetry:(fun vs ->
      let n = Protocol.get vs "n" in
      if n = 2 then [ Symmetry.transposition n 0 1 ]
      else
        [ Symmetry.cycle n (List.init n Fun.id); Symmetry.transposition n 0 1 ])
    ~suggested_depth:4 ~profile:mesh_profile
    (fun vs -> mesh_spec ~n:(Protocol.get vs "n"))
