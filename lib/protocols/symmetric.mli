(** Protocols with declared pid-permutation symmetry.

    Registry entries whose topology is invariant under a non-trivial
    permutation group, declared via [Protocol.make ~symmetry] and hence
    eligible for [--reduce sym|full] (DESIGN.md §10):

    - [ring] — relay ring, rotations (Z_n);
    - [quorum] — members vote for a fixed collector, member swaps
      (S_{n-1});
    - [star-flood] — hub floods members in {e unordered} fashion,
      member swaps (S_{n-1});
    - [mesh] — everyone may greet any one peer, all permutations
      (S_n).

    The registry test suite validates every declared generator with
    {!Hpl_core.Symmetry.is_automorphism} and cross-checks reduced
    against unreduced enumeration. *)

open Hpl_core

val ring : Protocol.t
val quorum : Protocol.t
val star_flood : Protocol.t
val mesh : Protocol.t

(** The underlying specs, exposed for direct use in tests. *)

val ring_spec : n:int -> rounds:int -> Spec.t
val quorum_spec : n:int -> q:int -> Spec.t
val star_flood_spec : n:int -> Spec.t
val mesh_spec : n:int -> Spec.t

val member_generators : int -> Symmetry.perm list
(** Generators of the group fixing pid 0 and permuting [1..n-1]. *)
