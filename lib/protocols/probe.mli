(** Probe-based termination detection, in two variants.

    [`Naive] — the coordinator periodically polls every node "are you
    idle?"; since instantaneous local idleness says nothing about
    messages in flight, it can announce while work is still travelling.
    This is the cautionary half of the §5 argument: an algorithm that
    refuses to pay for information flow is wrong, not merely slow. The
    experiment harness measures its unsoundness rate directly.

    [`Four_counter] — Mattern's four-counter method: each wave collects
    total work sent [S] and received [R]; announce only when two
    {e consecutive} waves agree with [S1 = R1 = S2 = R2]. Sound, and
    its overhead ([2(n−1)] messages per wave) again scales with the
    run's length — the lower bound reasserting itself. *)

type mode = [ `Naive | `Four_counter ]

val name : mode -> string
val detect_tag : mode -> string

val run :
  ?config:Hpl_sim.Engine.config ->
  ?wave_delay:float ->
  mode:mode ->
  Underlying.params ->
  Termination.report

val run_raw :
  ?config:Hpl_sim.Engine.config ->
  ?wave_delay:float ->
  mode:mode ->
  Underlying.params ->
  Hpl_sim.Engine.stats * Hpl_core.Trace.t

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
