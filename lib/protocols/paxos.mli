(** Single-decree Paxos (the synod algorithm).

    Proposers run numbered ballots; acceptors promise not to regress
    and report what they already accepted; a proposer that gathers a
    majority of promises must adopt the highest accepted value it saw —
    the rule that makes decided values stable. In the vocabulary of
    this library: a later ballot's quorum intersects every earlier
    one's, so a process chain from any possible past decision reaches
    the new proposer {e before} it chooses — it cannot {e not} know.

    What is verified on every recorded run: {b agreement} (all
    "decided" events carry the same value), {b validity} (the decided
    value was proposed), and — under a single live proposer —
    {b liveness}. Duelling proposers may livelock (that is Paxos;
    FLP says something must give), which shows up as longer runs, never
    as disagreement: the tests sweep contention and crash schedules
    and require safety in all of them. *)

type params = {
  n : int;  (** all processes accept; the first [proposers] also propose *)
  proposers : int;
  retry_timeout : float;
  crash : (float * int) list;
  horizon : float;
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  decided : (int * int) list;  (** (process, value) of each decision event *)
  agreement : bool;
  validity : bool;  (** decided values ∈ proposed values *)
  any_decision : bool;
  ballots_started : int;
  messages : int;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val proposal_of : int -> int
(** The value proposer [i] champions (distinct per proposer, so
    agreement is observable). *)

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
