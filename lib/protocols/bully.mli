(** Bully leader election.

    Every process challenges all higher-identified processes; one that
    hears no OK within a timeout declares itself coordinator and
    broadcasts the result; one that receives an OK stands down and
    waits. Crash the top process and the next one inherits — but only
    thanks to the timeout: §5's failure-detection impossibility means
    silence can never be {e known} to be a crash, so bully's
    correctness, like the heartbeat detector's, is bought entirely with
    the synchrony assumption. Run it with delays above the timeout and
    it elects two coordinators — a measurable safety violation the
    tests exhibit. *)

type params = {
  n : int;  (** identifiers are the indices; higher wins *)
  ok_timeout : float;  (** how long a challenger waits for an OK *)
  crash : int option;  (** crash this process at t = 0 *)
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  coordinators : int list;  (** processes that declared themselves *)
  agreed_on : int option;
      (** the coordinator every live process accepted, if unanimous *)
  safe : bool;  (** at most one self-declared coordinator *)
  messages : int;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
