(** Credit-counting termination detection (coordinator variant of
    weight-throwing).

    Every work message carries one unit of credit minted by the
    coordinator's outstanding counter. A node that finishes handling a
    work message returns its unit — together with the number of new
    work messages it spawned — straight to the coordinator, which
    adjusts its outstanding count ([+spawned − 1]) and announces
    termination when the count reaches zero.

    Overhead is one report per work message handled away from the
    coordinator: like Dijkstra–Scholten it meets the paper's lower
    bound up to the coordinator's own deliveries, but concentrates all
    control traffic on one hot spot instead of the engagement tree. *)

val name : string
val detect_tag : string

val run :
  ?config:Hpl_sim.Engine.config -> Underlying.params -> Termination.report

val run_raw :
  ?config:Hpl_sim.Engine.config ->
  Underlying.params ->
  Hpl_sim.Engine.stats * Hpl_core.Trace.t

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
