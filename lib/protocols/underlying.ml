open Hpl_core
open Hpl_sim

type params = {
  n : int;
  root : int;
  budget : int;
  fanout : int;
  spawn_prob : float;
  seed : int64;
}

let default =
  { n = 4; root = 0; budget = 50; fanout = 3; spawn_prob = 0.7; seed = 7L }

let work_tag = "work"
let is_work payload = Wire.is work_tag payload

module Logic = struct
  type t = { rng : Rng.t; me : int }

  let create params p =
    (* per-node stream independent of scheduling: derive from the
       workload seed and the pid *)
    let r = Rng.create (Int64.add params.seed (Int64.of_int (Pid.to_int p * 7919))) in
    { rng = r; me = Pid.to_int p }

  (* distribute a budget of [b] further messages over up to [fanout]
     spawns; each spawn consumes one message from the budget and
     carries a share of what remains *)
  let spawns params t b =
    if b <= 0 then []
    else begin
      let max_spawns = min params.fanout b in
      let chosen =
        List.filter
          (fun _ -> Rng.float t.rng 1.0 < params.spawn_prob)
          (List.init max_spawns (fun i -> i))
      in
      let k = List.length chosen in
      if k = 0 then []
      else begin
        let remaining = b - k in
        let share = remaining / k and extra = remaining mod k in
        List.mapi
          (fun i _ ->
            let sub = share + if i < extra then 1 else 0 in
            let dst = Pid.of_int (Rng.int t.rng params.n) in
            (dst, Wire.enc work_tag [ sub ]))
          chosen
      end
    end

  let initial_spawns params t =
    if t.me <> params.root then (t, [])
    else (t, spawns params t params.budget)

  let on_work params t ~payload =
    match Wire.dec payload with
    | Some (tag, [ b ]) when tag = work_tag -> (t, spawns params t b)
    | _ -> (t, [])
end

let handlers params =
  {
    Engine.init =
      (fun p ->
        let t = Logic.create params p in
        let t, sends = Logic.initial_spawns params t in
        (t, List.map (fun (dst, payload) -> Engine.Send (dst, payload)) sends));
    on_message =
      (fun t ~self:_ ~src:_ ~payload ~now:_ ->
        let t, sends = Logic.on_work params t ~payload in
        (t, List.map (fun (dst, payload) -> Engine.Send (dst, payload)) sends));
    on_timer = (fun t ~self:_ ~tag:_ ~now:_ -> (t, []));
  }

let run ?(config = Engine.default) params =
  Engine.run { config with Engine.n = params.n } (handlers params)

let work_messages z =
  List.length (List.filter (fun m -> is_work m.Msg.payload) (Trace.sent z))

let terminated_by z =
  List.for_all (fun m -> not (is_work m.Msg.payload)) (Trace.in_flight z)

let termination_position z =
  (* the prefix length after which no work is ever in flight again:
     one past the final work delivery (0 if no work was ever sent) *)
  let events = Trace.to_list z in
  let flights = ref 0 in
  let last_recv = ref (-1) in
  List.iteri
    (fun i e ->
      match e.Event.kind with
      | Event.Send m when is_work m.Msg.payload -> incr flights
      | Event.Receive m when is_work m.Msg.payload ->
          decr flights;
          last_recv := i
      | _ -> ())
    events;
  if !flights > 0 then None else Some (!last_recv + 1)

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: a depth-(n-1) diffusing chain — work hops down
   the line, each process acting once *)
let chain_spec ~n =
  if n < 2 then invalid_arg "Underlying.chain_spec: need at least two processes";
  Spec.make ~n (fun p history ->
      let i = Pid.to_int p in
      if i = 0 then
        if Protocol.sends history = 0 then
          [ Spec.Send_to (Pid.of_int 1, work_tag) ]
        else []
      else if Protocol.recvs history = 0 then [ Spec.Recv_any ]
      else if not (Protocol.did history "worked") then [ Spec.Do "worked" ]
      else if i < n - 1 && Protocol.sends history = 0 then
        [ Spec.Send_to (Pid.of_int (i + 1), work_tag) ]
      else [])

let protocol =
  Protocol.make ~name:"underlying"
    ~doc:"the diffusing workload detectors ride on: work hops down a chain"
    ~params:[ Protocol.param ~lo:2 "n" 3 "chain length (p0 is the root)" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      [
        ("chaindone",
         Protocol.did_prop "chaindone" (Pid.of_int (n - 1)) "worked");
      ])
    ~suggested_depth:6
    (fun vs -> chain_spec ~n:(Protocol.get vs "n"))
