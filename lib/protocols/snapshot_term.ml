open Hpl_core
open Hpl_sim

let name = "snapshot"
let detect_tag = Termination.detect_tag_of name
let marker_tag = "st-marker"
let report_tag = "st-report"
let attempt_timer = "st-attempt"

(* One snapshot attempt: the initiator (the workload root) sends markers
   on every channel; each process records, per incoming channel, the
   work messages arriving between its own recording point and that
   channel's marker, then reports the total to the initiator. The
   attempt is clean iff every recorded channel count is zero AND every
   process reports the same work-sent/work-received balance it saw at
   its cut point summing to zero in flight. Here the second condition
   is implied by the first plus counter conservation, so reports carry
   (recorded-channel-total, sent, received). *)

type state = {
  logic : Underlying.Logic.t;
  params : Underlying.params;
  is_root : bool;
  sent_work : int;
  recv_work : int;
  (* current snapshot attempt *)
  attempt : int;  (** id of the attempt this node last joined *)
  recording : bool;
  marker_from : bool array;
  chan_work : int;  (** work arrivals recorded into channel state *)
  cut_sent : int;
  cut_recv : int;
  (* root bookkeeping *)
  root_attempt : int;
  reports : int;
  total_chan : int;
  total_sent : int;
  total_recv : int;
  announced : bool;
}

let send_work sends = List.map (fun (dst, payload) -> Engine.Send (dst, payload)) sends

let neighbours st me =
  List.filter (fun i -> i <> me) (List.init st.params.Underlying.n (fun i -> i))

let root_pid st = Pid.of_int st.params.Underlying.root

let begin_attempt st ~me ~attempt =
  if st.attempt >= attempt then (st, [])
  else begin
    let st =
      {
        st with
        attempt;
        recording = true;
        marker_from = Array.make st.params.Underlying.n false;
        chan_work = 0;
        cut_sent = st.sent_work;
        cut_recv = st.recv_work;
      }
    in
    ( st,
      List.map
        (fun i -> Engine.Send (Pid.of_int i, Wire.enc marker_tag [ attempt ]))
        (neighbours st me) )
  end

let init ~attempt_delay params p =
  let logic = Underlying.Logic.create params p in
  let me = Pid.to_int p in
  let is_root = me = params.Underlying.root in
  let logic, sends =
    if is_root then Underlying.Logic.initial_spawns params logic else (logic, [])
  in
  let st =
    {
      logic;
      params;
      is_root;
      sent_work = List.length sends;
      recv_work = 0;
      attempt = 0;
      recording = false;
      marker_from = Array.make params.Underlying.n false;
      chan_work = 0;
      cut_sent = 0;
      cut_recv = 0;
      root_attempt = 0;
      reports = 0;
      total_chan = 0;
      total_sent = 0;
      total_recv = 0;
      announced = false;
    }
  in
  let actions =
    send_work sends
    @ if is_root then [ Engine.Set_timer (attempt_delay, attempt_timer) ] else []
  in
  (st, actions)

let recording_complete st me =
  st.recording && List.for_all (fun i -> st.marker_from.(i)) (neighbours st me)

let close_recording st ~me =
  if recording_complete st me then begin
    let st = { st with recording = false } in
    if st.is_root then
      (* root's own report folds in directly *)
      ( {
          st with
          reports = st.reports + 1;
          total_chan = st.total_chan + st.chan_work;
          total_sent = st.total_sent + st.cut_sent;
          total_recv = st.total_recv + st.cut_recv;
        },
        [] )
    else
      ( st,
        [
          Engine.Send
            ( root_pid st,
              Wire.enc report_tag [ st.attempt; st.chan_work; st.cut_sent; st.cut_recv ]
            );
        ] )
  end
  else (st, [])

let root_check ~attempt_delay st =
  if st.is_root && st.reports = st.params.Underlying.n && not st.announced then
    if st.total_chan = 0 && st.total_sent = st.total_recv then
      ({ st with announced = true }, [ Engine.Log_internal detect_tag ])
    else (st, [ Engine.Set_timer (attempt_delay, attempt_timer) ])
  else (st, [])

let on_message ~attempt_delay st ~self ~src ~payload ~now:_ =
  let me = Pid.to_int self in
  let s = Pid.to_int src in
  if Underlying.is_work payload then begin
    let logic, sends = Underlying.Logic.on_work st.params st.logic ~payload in
    let st = { st with logic; recv_work = st.recv_work + 1 } in
    let st =
      if st.recording && not st.marker_from.(s) then
        { st with chan_work = st.chan_work + 1 }
      else st
    in
    let st = { st with sent_work = st.sent_work + List.length sends } in
    (st, send_work sends)
  end
  else
    match Wire.dec payload with
    | Some (tag, [ attempt ]) when String.equal tag marker_tag ->
        let st, start_actions = begin_attempt st ~me ~attempt in
        st.marker_from.(s) <- true;
        let st, close_actions = close_recording st ~me in
        let st, check_actions = root_check ~attempt_delay st in
        (st, start_actions @ close_actions @ check_actions)
    | Some (tag, [ attempt; chan; sent; recv ]) when String.equal tag report_tag
      ->
        if st.is_root && attempt = st.root_attempt then begin
          let st =
            {
              st with
              reports = st.reports + 1;
              total_chan = st.total_chan + chan;
              total_sent = st.total_sent + sent;
              total_recv = st.total_recv + recv;
            }
          in
          root_check ~attempt_delay st
        end
        else (st, [])
    | _ -> (st, [])

let on_timer ~attempt_delay st ~self ~tag ~now:_ =
  if String.equal tag attempt_timer && st.is_root && not st.announced then begin
    let me = Pid.to_int self in
    let attempt = st.root_attempt + 1 in
    let st =
      {
        st with
        root_attempt = attempt;
        reports = 0;
        total_chan = 0;
        total_sent = 0;
        total_recv = 0;
      }
    in
    let st, start_actions = begin_attempt st ~me ~attempt in
    (* a solo system records immediately *)
    let st, close_actions = close_recording st ~me in
    let st, check_actions = root_check ~attempt_delay st in
    (st, start_actions @ close_actions @ check_actions)
  end
  else (st, [])

let handlers ~attempt_delay params =
  {
    Engine.init = init ~attempt_delay params;
    on_message = on_message ~attempt_delay;
    on_timer = on_timer ~attempt_delay;
  }

let run_raw ?(config = Engine.default) ?(attempt_delay = 10.0) params =
  let result =
    Engine.run { config with Engine.n = params.Underlying.n }
      (handlers ~attempt_delay params)
  in
  (result.Engine.stats, result.Engine.trace)

let run ?config ?attempt_delay params =
  let _, trace = run_raw ?config ?attempt_delay params in
  Termination.score ~detector:name ~detect_tag trace

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: one snapshot attempt — collect every process's
   state, then declare termination *)
let protocol =
  Protocol.make ~name:"snapshot-termination"
    ~doc:"snapshot-based termination: collect states, declare if quiet"
    ~params:[ Protocol.param ~lo:2 "n" 2 "processes (p0 initiates)" ]
    ~atoms:(fun _ ->
      [ ("detected", Protocol.did_prop "detected" (Pid.of_int 0) detect_tag) ])
    ~suggested_depth:5
    (fun vs ->
      Protocol.star_spec ~n:(Protocol.get vs "n") ~request:"snap"
        ~reply:"state" ~finish:detect_tag ())
