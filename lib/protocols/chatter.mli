(** Chatter: a maximally nondeterministic ring.

    Each of [n] processes is willing — for its first two steps — to
    send "c" to its right neighbour, to idle, or to receive. Formerly
    inlined in [bin/hpl.ml]; registered as a branching-factor stress
    test for enumeration and the canonical-interleaving quotient. *)

val spec : n:int -> Hpl_core.Spec.t
(** Raises [Invalid_argument] if [n < 1]. *)

val sent : Hpl_core.Prop.t
(** "p0 sent something" — local to p0. *)

val idled : Hpl_core.Prop.t
(** "p0 performed an idle step" — local to p0. *)

val protocol : Protocol.t
