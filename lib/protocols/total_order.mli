(** Total-order (atomic) broadcast via a fixed sequencer.

    Every broadcast is sent to the sequencer (process 0), which assigns
    a global sequence number and re-broadcasts; processes deliver
    strictly in sequence-number order, buffering gaps. All correct
    processes therefore deliver the {e same sequence} — the strongest
    of the classical ordering guarantees, sitting above causal order
    ({!Causal_broadcast}) and FIFO in the hierarchy.

    Knowledge cost: the sequencer is a serialization oracle; after
    delivering message k every process {e knows} every other process
    delivers the same prefix — at the price of 2 messages latency and a
    central chokepoint. The verifier checks identical delivery
    sequences across processes and that total order implies causal
    order on the delivered traffic. *)

type params = {
  n : int;  (** process 0 is the sequencer (and also an application node) *)
  broadcasts_per_process : int;
  period : float;
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  deliveries : (int * int) list array;
      (** per process, delivered (origin, origin-seq) in delivery order *)
  identical_order : bool;  (** all processes delivered the same sequence *)
  all_delivered : bool;
  gaps_buffered : int;  (** arrivals that waited for earlier numbers *)
  messages : int;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
