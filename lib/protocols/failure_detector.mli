(** Failure detection (§5).

    The paper proves that without timeouts a process can never {e know}
    that another has failed: failure is local to the failed process,
    and a crashed process sends nothing, so no process chain can carry
    the fact out (Theorem 5's premise can never be met). The
    impossibility half of this module states that claim on a bounded
    universe; the practical half is a heartbeat detector on the
    simulator whose correctness depends entirely on the synchrony
    assumption the paper identifies (known bounds on delays and
    execution speeds).

    With [timeout > heartbeat_period + max_delay] and no drops, the
    detector is exact: it suspects all crashed processes and no live
    ones. With delays or losses beyond the bound, false suspicion is
    measurable (bench E10 sweeps it). *)

(** {1 Impossibility (exact, universe-based)} *)

val crashable_spec : n:int -> Hpl_core.Spec.t
(** Every process may tick, send a ping to its neighbour, or crash —
    crash is an internal event after which the process's rule offers
    nothing. *)

val crashed : Hpl_core.Pid.t -> Hpl_core.Prop.t
(** "p has crashed" — local to p. *)

val nobody_ever_knows :
  Hpl_core.Universe.t -> observer:Hpl_core.Pid.t -> subject:Hpl_core.Pid.t -> bool
(** Checks over the whole universe that [observer] never knows
    [crashed subject] (observer ≠ subject). This is the paper's
    impossibility: it holds on every asynchronous universe. *)

(** {1 Heartbeat detector (simulated, timeout-based)} *)

type params = {
  n : int;  (** process 0 is the monitor *)
  heartbeat_period : float;
  timeout : float;
  check_period : float;
  crash_time : float option;  (** crash process [n-1] at this time *)
  horizon : float;
}

val default : params

type outcome = {
  suspected : bool array;  (** monitor's final suspicion vector *)
  crashed : bool array;  (** ground truth *)
  false_suspicions : int;
      (** suspicion events raised against processes that had not crashed
          at that moment — transient suspicions count *)
  missed : int;  (** crashed processes not suspected *)
  detection_time : float option;  (** first suspicion of a crashed process *)
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
