open Hpl_core

let flip_tag = "flip"
let p0 = Pid.of_int 0
let p1 = Pid.of_int 1

let flips_in history =
  List.length
    (List.filter
       (fun e ->
         match e.Event.kind with
         | Event.Internal t -> String.equal t flip_tag
         | Event.Send _ | Event.Receive _ -> false)
       history)

let silent_spec ~n ~flips ~ticks =
  Spec.make ~n (fun p history ->
      if Pid.equal p p0 then
        if flips_in history < flips then [ Spec.Do flip_tag ] else []
      else if List.length history < ticks then [ Spec.Do "tick"; Spec.Recv_any ]
      else [])

(* p0 flips, then notifies p1 and waits for the ack before the next
   flip; p1 acknowledges every notification. *)
let notify_spec ~flips =
  Spec.make ~n:2 (fun p history ->
      if Pid.equal p p0 then begin
        let f = flips_in history in
        let sends = List.length (List.filter Event.is_send history) in
        let acks = List.length (List.filter Event.is_receive history) in
        if sends < f then [ Spec.Send_to (p1, "flipped") ]
        else if acks < sends then [ Spec.Recv_any ]
        else if f < flips then [ Spec.Do flip_tag ]
        else []
      end
      else begin
        let recvs = List.length (List.filter Event.is_receive history) in
        let sends = List.length (List.filter Event.is_send history) in
        (if sends < recvs then [ Spec.Send_to (p0, "ack") ] else [])
        @ [ Spec.Recv_any ]
      end)

let bit =
  Prop.make "bit" (fun z -> flips_in (Trace.proj z p0) mod 2 = 1)

let tracker_always_unsure_after_flip u =
  let unsure = Knowledge.unsure u (Pset.singleton p1) bit in
  let ok = ref true in
  Universe.iter
    (fun _ z ->
      if flips_in (Trace.proj z p0) > 0 && not (Prop.eval unsure z) then
        ok := false)
    u;
  !ok

let flip_enabled u z =
  List.filter
    (fun e ->
      Pid.equal e.Event.pid p0
      &&
      match e.Event.kind with
      | Event.Internal t -> String.equal t flip_tag
      | _ -> false)
    (Spec.enabled (Universe.spec u) z)

let unsure_while_changing u =
  let unsure = Knowledge.unsure u (Pset.singleton p1) bit in
  let ok = ref true in
  Universe.iter
    (fun _ z ->
      if Trace.length z < Universe.depth u then
        List.iter
          (fun e ->
            let ze = Trace.snoc z e in
            if not (Prop.eval unsure z || Prop.eval unsure ze) then ok := false)
          (flip_enabled u z))
    u;
  !ok

let change_requires_known_unsureness u ~tracker =
  let knows_unsure =
    Knowledge.knows u (Pset.singleton p0)
      (Knowledge.unsure u (Pset.singleton tracker) bit)
  in
  let ok = ref true in
  Universe.iter
    (fun _ z ->
      if Trace.length z < Universe.depth u && flip_enabled u z <> [] then
        if not (Prop.eval knows_unsure z) then ok := false)
    u;
  !ok

(* -- registry ----------------------------------------------------------- *)

let protocol =
  Protocol.make ~name:"tracking"
    ~doc:"remote tracking, silent flipper: trackers stay unsure forever"
    ~params:
      [
        Protocol.param ~lo:2 "n" 2 "processes (p0 flips, the rest track)";
        Protocol.param ~lo:0 "flips" 2 "bit flips available to p0";
        Protocol.param ~lo:0 "ticks" 2 "internal ticks per tracker";
      ]
    ~atoms:(fun _ -> [ ("bit", bit) ])
    ~suggested_depth:4
      (* the starved receive IS the impossibility: trackers listen on a
         channel the silent flipper never uses *)
    ~lint_expect:[ "recv-starved" ]
    (fun vs ->
      silent_spec ~n:(Protocol.get vs "n") ~flips:(Protocol.get vs "flips")
        ~ticks:(Protocol.get vs "ticks"))

let notify_protocol =
  Protocol.make ~name:"tracking-notify"
    ~doc:"remote tracking with notify+ack: the tightest tracking allowed"
    ~params:[ Protocol.param ~lo:0 "flips" 1 "bit flips by p0" ]
    ~atoms:(fun _ -> [ ("bit", bit) ])
    ~suggested_depth:5
    (fun vs -> notify_spec ~flips:(Protocol.get vs "flips"))
