(** Chang–Roberts leader election on a unidirectional ring.

    Every process starts as a candidate and forwards the largest
    identifier it has seen; a process receiving its own identifier wins
    and circulates an announcement. Knowledge reading: election ends
    when the winner {e knows} it has the largest id — which takes a
    full circulation, i.e. a process chain through every ring member —
    and everyone else learns the leader only through the announcement
    chain. The verifier checks uniqueness, agreement, and the chain
    property on the trace.

    Message complexity: between [2n − 1] (best case, announcement
    included) and [O(n²)] (worst), [O(n log n)] on average over random
    id placements — reported by bench E13. *)

type params = {
  n : int;
  ids : int array option;  (** ring identifiers; default a seeded shuffle *)
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  leader : int option;  (** elected process index (not its ring id) *)
  agreed : bool;  (** every process learned the same leader *)
  messages : int;
  election_messages : int;  (** excluding the announcement round *)
  announcement_chain : bool;
      (** every process's knowledge of the leader traces back to the
          winner's decision by a process chain *)
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
