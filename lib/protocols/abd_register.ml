open Hpl_core
open Hpl_sim

type params = {
  n : int;
  writes : int;
  reads_per_reader : int;
  op_period : float;
  crash : (float * int) list;
  horizon : float;
  seed : int64;
}

let default =
  {
    n = 5;
    writes = 4;
    reads_per_reader = 2;
    op_period = 12.0;
    crash = [];
    horizon = 400.0;
    seed = 47L;
  }

(* wire *)
let store_tag = "abd-store"  (* (tag, value) replica write *)
let store_ack = "abd-store-ack"  (* (tag) *)
let query_tag = "abd-query"  (* (read id) *)
let query_reply = "abd-reply"  (* (read id, tag, value) *)

(* trace markers: inv/resp per op; tags ride along *)
let inv_write = "inv-write"  (* inv-write:tag *)
let resp_write = "resp-write"
let inv_read = "inv-read"
let resp_read = "resp-read"  (* resp-read:tag *)

type phase =
  | Idle
  | Writing of { tag : int; acks : int }
  | Reading of { id : int; replies : (int * int) list }
  | Writing_back of { tag : int; value : int; acks : int }

type state = {
  params : params;
  me : int;
  (* replica *)
  stored_tag : int;
  stored_val : int;
  (* client *)
  phase : phase;
  writes_done : int;
  reads_done : int;
  next_read_id : int;
}

type op = {
  kind : [ `Read | `Write ];
  owner : int;
  tag : int;
  invoked : int;
  responded : int option;
}

type outcome = {
  trace : Trace.t;
  ops : op list;
  atomic : bool;
  completed_ops : int;
  blocked_ops : int;
  messages : int;
}

let majority st = (st.params.n / 2) + 1
let everyone st = List.init st.params.n (fun i -> i)
let op_timer = "abd-op"

let broadcast st tag ints =
  List.map (fun i -> Engine.Send (Pid.of_int i, Wire.enc tag ints)) (everyone st)

let init params p =
  let me = Pid.to_int p in
  let st =
    {
      params;
      me;
      stored_tag = 0;
      stored_val = 0;
      phase = Idle;
      writes_done = 0;
      reads_done = 0;
      next_read_id = 0;
    }
  in
  (st, [ Engine.Set_timer (params.op_period *. float_of_int (me + 1), op_timer) ])

let start_op st ~now =
  if now > st.params.horizon || st.phase <> Idle then (st, [])
  else if st.me = 0 && st.writes_done < st.params.writes then begin
    let tag = st.writes_done + 1 in
    let value = 100 + tag in
    let st = { st with phase = Writing { tag; acks = 0 } } in
    ( st,
      Engine.Log_internal (Printf.sprintf "%s:%d" inv_write tag)
      :: broadcast st store_tag [ tag; value ] )
  end
  else if st.me > 0 && st.reads_done < st.params.reads_per_reader then begin
    let id = st.next_read_id in
    let st = { st with phase = Reading { id; replies = [] }; next_read_id = id + 1 } in
    ( st,
      Engine.Log_internal inv_read :: broadcast st query_tag [ id ] )
  end
  else (st, [])

let on_message st ~self:_ ~src ~payload ~now:_ =
  match Wire.dec payload with
  | Some (t, [ tag; value ]) when String.equal t store_tag ->
      (* replica write: adopt if newer, ack with the tag *)
      let st =
        if tag > st.stored_tag then { st with stored_tag = tag; stored_val = value }
        else st
      in
      (st, [ Engine.Send (src, Wire.enc store_ack [ tag ]) ])
  | Some (t, [ tag ]) when String.equal t store_ack -> (
      match st.phase with
      | Writing w when tag = w.tag ->
          let acks = w.acks + 1 in
          if acks >= majority st then
            ( { st with phase = Idle; writes_done = st.writes_done + 1 },
              [
                Engine.Log_internal (Printf.sprintf "%s:%d" resp_write tag);
                Engine.Set_timer (st.params.op_period, op_timer);
              ] )
          else ({ st with phase = Writing { w with acks } }, [])
      | Writing_back wb when tag = wb.tag ->
          let acks = wb.acks + 1 in
          if acks >= majority st then
            ( { st with phase = Idle; reads_done = st.reads_done + 1 },
              [
                Engine.Log_internal (Printf.sprintf "%s:%d" resp_read wb.tag);
                Engine.Set_timer (st.params.op_period, op_timer);
              ] )
          else ({ st with phase = Writing_back { wb with acks } }, [])
      | _ -> (st, []))
  | Some (t, [ id ]) when String.equal t query_tag ->
      (st, [ Engine.Send (src, Wire.enc query_reply [ id; st.stored_tag; st.stored_val ]) ])
  | Some (t, [ id; tag; value ]) when String.equal t query_reply -> (
      match st.phase with
      | Reading r when id = r.id ->
          let replies = (tag, value) :: r.replies in
          if List.length replies >= majority st then begin
            let best_tag, best_val =
              List.fold_left
                (fun (bt, bv) (t', v') -> if t' > bt then (t', v') else (bt, bv))
                (-1, 0) replies
            in
            (* ABD phase 2: write back before returning *)
            let st = { st with phase = Writing_back { tag = best_tag; value = best_val; acks = 0 } } in
            (st, broadcast st store_tag [ best_tag; best_val ])
          end
          else ({ st with phase = Reading { r with replies } }, [])
      | _ -> (st, []))
  | _ -> (st, [])

let on_timer st ~self:_ ~tag ~now =
  if String.equal tag op_timer then start_op st ~now else (st, [])

(* -- trace analysis -------------------------------------------------------- *)

let parse_marker tag =
  match String.split_on_char ':' tag with
  | [ m ] -> Some (m, None)
  | [ m; t ] -> (
      match int_of_string_opt t with Some t -> Some (m, Some t) | None -> None)
  | _ -> None

let extract_ops z =
  let open_op : (int, [ `Read | `Write ] * int) Hashtbl.t = Hashtbl.create 8 in
  let ops = ref [] in
  List.iteri
    (fun i e ->
      match e.Event.kind with
      | Event.Internal tag -> (
          match parse_marker tag with
          | Some (m, Some t) when m = inv_write ->
              Hashtbl.replace open_op (Pid.to_int e.Event.pid) (`Write, i);
              ops := (`Write, Pid.to_int e.Event.pid, t, i, ref None) :: !ops
          | Some (m, None) when m = inv_read ->
              Hashtbl.replace open_op (Pid.to_int e.Event.pid) (`Read, i)
          | Some (m, Some t) when m = resp_write ->
              (* close the writer's open op *)
              List.iter
                (fun (k, owner, tag', _inv, resp) ->
                  if k = `Write && owner = Pid.to_int e.Event.pid && tag' = t && !resp = None
                  then resp := Some i)
                !ops
          | Some (m, Some t) when m = resp_read -> (
              match Hashtbl.find_opt open_op (Pid.to_int e.Event.pid) with
              | Some (`Read, inv) ->
                  Hashtbl.remove open_op (Pid.to_int e.Event.pid);
                  ops := (`Read, Pid.to_int e.Event.pid, t, inv, ref (Some i)) :: !ops
              | _ -> ())
          | _ -> ())
      | _ -> ())
    (Trace.to_list z);
  (* reads that never responded *)
  Hashtbl.iter
    (fun owner (k, inv) ->
      if k = `Read then ops := (`Read, owner, -1, inv, ref None) :: !ops)
    open_op;
  List.rev_map
    (fun (kind, owner, tag, invoked, resp) ->
      { kind; owner; tag; invoked; responded = !resp })
    !ops
  |> List.sort (fun a b -> Int.compare a.invoked b.invoked)

let check_atomicity ops =
  let completed = List.filter (fun o -> o.responded <> None) ops in
  let reads = List.filter (fun o -> o.kind = `Read) completed in
  let writes = List.filter (fun o -> o.kind = `Write) completed in
  let resp o = Option.get o.responded in
  let written_tags = 0 :: List.map (fun w -> w.tag) writes in
  let c1 =
    List.for_all (fun r -> List.mem r.tag written_tags) reads
  in
  let c2 =
    (* a read invoked after a write responded returns tag >= it *)
    List.for_all
      (fun r ->
        List.for_all
          (fun w -> not (resp w < r.invoked) || r.tag >= w.tag)
          writes)
      reads
  in
  let c3 =
    List.for_all
      (fun r1 ->
        List.for_all
          (fun r2 -> not (resp r1 < r2.invoked) || r2.tag >= r1.tag)
          reads)
      reads
  in
  let c4 =
    (* no read returns a tag whose write started after the read ended *)
    List.for_all
      (fun r ->
        List.for_all
          (fun w -> not (w.tag = r.tag && w.invoked > resp r))
          writes)
      reads
  in
  c1 && c2 && c3 && c4

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let config =
    { config with Engine.crashes = params.crash @ config.Engine.crashes }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let z = result.Engine.trace in
  let ops = extract_ops z in
  let completed_ops = List.length (List.filter (fun o -> o.responded <> None) ops) in
  {
    trace = z;
    ops;
    atomic = check_atomicity ops;
    completed_ops;
    blocked_ops = List.length ops - completed_ops;
    messages = result.Engine.stats.Engine.sent;
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: one quorum write — the write completes only
   when p0 knows a majority of replicas stored it (the forced process
   chain of E20) *)
let protocol =
  Protocol.make ~name:"abd-register"
    ~doc:"ABD quorum write: completion = knowledge of majority storage"
    ~params:[ Protocol.param ~lo:2 "n" 3 "processes (p0 writes, rest replicate)" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      ("written", Protocol.did_prop "written" (Pid.of_int 0) "wdone")
      :: List.init (n - 1) (fun i ->
             (Printf.sprintf "stored%d" (i + 1),
              Protocol.received_prop (Printf.sprintf "stored%d" (i + 1))
                (Pid.of_int (i + 1)) "write")))
    ~suggested_depth:6
    (fun vs ->
      let n = Protocol.get vs "n" in
      Protocol.star_spec ~n ~quorum:(((n - 1) / 2) + 1) ~request:"write"
        ~reply:"wack" ~finish:"wdone" ())
