open Hpl_core

let p0 = Pid.of_int 0
let p1 = Pid.of_int 1

(* Hoisted from bin/hpl.ml: the smallest interesting system — one
   request, one reply — used throughout the docs as the first universe
   to enumerate. *)
let spec =
  Spec.make ~n:2 (fun p history ->
      if Pid.equal p p0 then
        match history with
        | [] -> [ Spec.Send_to (p1, "ping") ]
        | _ -> [ Spec.Recv_any ]
      else
        match history with
        | [] -> [ Spec.Recv_any ]
        | [ _ ] -> [ Spec.Send_to (p0, "pong") ]
        | _ -> [])

let sent =
  Prop.make "sent" (fun z -> Trace.send_count z p0 > 0)

let received =
  Prop.make "received" (fun z ->
      List.exists Event.is_receive (Trace.proj z p1))

let round_trip =
  let ping = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"ping" in
  let pong = Msg.make ~src:p1 ~dst:p0 ~seq:0 ~payload:"pong" in
  Trace.of_list
    [
      Event.send ~pid:p0 ~lseq:0 ping;
      Event.receive ~pid:p1 ~lseq:0 ping;
      Event.send ~pid:p1 ~lseq:1 pong;
      Event.receive ~pid:p0 ~lseq:1 pong;
    ]

(* p0's recv guard (len >= 1) is statically unbounded, but its receive
   count is still finite by message conservation: the only inbound
   channel p1->p0 carries at most one "pong". *)
let profile _ =
  let open Protocol.Profile in
  [|
    [
      {
        guard = [ Between (C_len, 0, Some 0) ];
        acts = [ Send { dst = 1; payload = "ping" } ];
      };
      { guard = [ Between (C_len, 1, None) ]; acts = [ Recv ] };
    ];
    [
      { guard = [ Between (C_len, 0, Some 0) ]; acts = [ Recv ] };
      {
        guard = [ Between (C_len, 1, Some 1) ];
        acts = [ Send { dst = 0; payload = "pong" } ];
      };
    ];
  |]

let protocol =
  Protocol.make ~name:"ping-pong"
    ~doc:"p0 pings, p1 pongs — the smallest request/reply universe"
    ~atoms:(fun _ -> [ ("sent", sent); ("received", received) ])
    ~canonical_trace:(fun _ -> round_trip)
    ~suggested_depth:4
    ~fault_scenarios:[ "drop:p0->p1"; "dup:p1->p0"; "crash:p1@1" ]
    ~profile (fun _ -> spec)
