(** Causally ordered broadcast (Birman–Schiper–Stephenson style).

    Every process broadcasts application messages stamped with its
    vector clock; receivers buffer arrivals until all causal
    predecessors have been delivered. Over a reordering network the
    arrival order violates causality (measurably — the engine's
    non-FIFO mode supplies the adversary); the delivery order never
    does.

    This is the operational complement to {!Hpl_clocks.Causal_order}:
    the checker says whether a run happened to be causal, this protocol
    {e makes} it causal — paying buffering (reported) instead of
    messages, a different point on the paper's information-flow
    trade-off. *)

type params = {
  n : int;
  broadcasts_per_process : int;
  period : float;
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  delivered_total : int;
  buffered_arrivals : int;
      (** arrivals that had to wait for causal predecessors *)
  causal_delivery_ok : bool;
      (** every process's delivery order respects the causal order of
          broadcasts (vector-clock comparison) *)
  all_delivered : bool;
  messages : int;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
