open Hpl_core
open Hpl_sim

type params = { n : int; wait_for : int -> int list; seed : int64 }

let ring_deadlock ~n =
  { n; wait_for = (fun i -> [ (i + 1) mod n ]); seed = 5L }

let chain_no_deadlock ~n =
  { n; wait_for = (fun i -> if i + 1 < n then [ i + 1 ] else []); seed = 5L }

let of_edges ~n edges =
  {
    n;
    wait_for = (fun i -> List.filter_map (fun (a, b) -> if a = i then Some b else None) edges);
    seed = 5L;
  }

let probe_tag = "probe"
let declares_tag = "deadlocked"

type state = {
  params : params;
  me : int;
  blocked : bool;
  forwarded : bool array;  (** per initiator *)
  declared : bool;
}

type outcome = {
  trace : Trace.t;
  declared : bool array;
  on_cycle : bool array;
  correct : bool;
  probes : int;
}

let init params p =
  let me = Pid.to_int p in
  let deps = params.wait_for me in
  let blocked = deps <> [] in
  let st =
    { params; me; blocked; forwarded = Array.make params.n false; declared = false }
  in
  (* every blocked process initiates a probe along its dependencies *)
  let actions =
    if blocked then
      List.map (fun d -> Engine.Send (Pid.of_int d, Wire.enc probe_tag [ me ])) deps
    else []
  in
  (st, actions)

let on_message st ~self:_ ~src:_ ~payload ~now:_ =
  match Wire.dec payload with
  | Some (tag, [ initiator ]) when String.equal tag probe_tag ->
      if initiator = st.me then
        if st.declared then (st, [])
        else ({ st with declared = true }, [ Engine.Log_internal declares_tag ])
      else if st.blocked && not st.forwarded.(initiator) then begin
        st.forwarded.(initiator) <- true;
        ( st,
          List.map
            (fun d -> Engine.Send (Pid.of_int d, Wire.enc probe_tag [ initiator ]))
            (st.params.wait_for st.me) )
      end
      else (st, [])
  | _ -> (st, [])

let cycle_membership params =
  (* i is on a cycle iff i is reachable from some successor of i *)
  let n = params.n in
  let reach = Array.make_matrix n n false in
  List.iter
    (fun i -> List.iter (fun j -> reach.(i).(j) <- true) (params.wait_for i))
    (List.init n (fun i -> i));
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  Array.init n (fun i -> reach.(i).(i))

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let result =
    Engine.run config
      {
        Engine.init = init params;
        on_message;
        on_timer = (fun st ~self:_ ~tag:_ ~now:_ -> (st, []));
      }
  in
  let declared = Array.map (fun (st : state) -> st.declared) result.Engine.states in
  let on_cycle = cycle_membership params in
  {
    trace = result.Engine.trace;
    declared;
    on_cycle;
    correct = Array.for_all2 Bool.equal declared on_cycle;
    probes = result.Engine.stats.Engine.sent;
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: a CMH probe around a fully blocked ring — the
   probe's return is p0's knowledge of the cycle *)
let probe_spec ~n =
  if n < 2 then invalid_arg "Deadlock.probe_spec: need at least two processes";
  Spec.make ~n (fun p history ->
      let i = Pid.to_int p in
      let right = Pid.of_int ((i + 1) mod n) in
      if i = 0 then
        (if Protocol.sends history = 0 then [ Spec.Send_to (right, "probe") ]
         else [])
        @ (if
             Protocol.recvs_of history "probe" > 0
             && not (Protocol.did history declares_tag)
           then [ Spec.Do declares_tag ]
           else [])
        @ [ Spec.Recv_any ]
      else
        (if Protocol.recvs_of history "probe" > Protocol.sends history then
           [ Spec.Send_to (right, "probe") ]
         else [])
        @ [ Spec.Recv_any ])

let protocol =
  Protocol.make ~name:"deadlock"
    ~doc:"CMH probe on a blocked ring: the probe's return proves the cycle"
    ~params:[ Protocol.param ~lo:2 "n" 3 "ring size (all blocked)" ]
    ~atoms:(fun _ ->
      [ ("deadlocked", Protocol.did_prop "deadlocked" (Pid.of_int 0) declares_tag) ])
    ~suggested_depth:7
    (fun vs -> probe_spec ~n:(Protocol.get vs "n"))
