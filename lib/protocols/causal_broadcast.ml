open Hpl_core
open Hpl_sim

type params = {
  n : int;
  broadcasts_per_process : int;
  period : float;
  seed : int64;
}

let default = { n = 4; broadcasts_per_process = 5; period = 4.0; seed = 13L }

let bcast_tag = "cb"
let tick_timer = "cb-tick"

(* payload: cb:<sender>:<vc_0>,...,<vc_{n-1}> — sender's vector clock at
   broadcast time, including this broadcast *)
let encode sender vc = Wire.enc bcast_tag (sender :: Array.to_list vc)

let decode n payload =
  match Wire.dec payload with
  | Some (tag, sender :: rest)
    when String.equal tag bcast_tag && List.length rest = n ->
      Some (sender, Array.of_list rest)
  | _ -> None

type pending = { from : int; vc : int array }

type state = {
  params : params;
  me : int;
  vc : int array;  (** delivered-broadcast counts per origin *)
  buffer : pending list;
  delivery_log : pending list;  (** in delivery order, newest first *)
  sent_count : int;
  buffered_arrivals : int;
}

type outcome = {
  trace : Trace.t;
  delivered_total : int;
  buffered_arrivals : int;
  causal_delivery_ok : bool;
  all_delivered : bool;
  messages : int;
}

let deliverable st (p : pending) =
  (* from j with vector v: v.(j) = st.vc.(j) + 1 and v.(k) <= st.vc.(k) *)
  p.vc.(p.from) = st.vc.(p.from) + 1
  && List.for_all
       (fun k -> k = p.from || p.vc.(k) <= st.vc.(k))
       (List.init st.params.n (fun i -> i))

let rec drain st actions =
  match List.find_opt (deliverable st) st.buffer with
  | None -> (st, List.rev actions)
  | Some p ->
      st.vc.(p.from) <- st.vc.(p.from) + 1;
      let st =
        {
          st with
          buffer = List.filter (fun q -> q != p) st.buffer;
          delivery_log = p :: st.delivery_log;
        }
      in
      drain st (Engine.Log_internal (Printf.sprintf "dlv:%d:%d" p.from p.vc.(p.from)) :: actions)

let init params p =
  let me = Pid.to_int p in
  let st =
    {
      params;
      me;
      vc = Array.make params.n 0;
      buffer = [];
      delivery_log = [];
      sent_count = 0;
      buffered_arrivals = 0;
    }
  in
  (st, [ Engine.Set_timer (params.period *. float_of_int (me + 1), tick_timer) ])

let on_message st ~self:_ ~src:_ ~payload ~now:_ =
  match decode st.params.n payload with
  | None -> (st, [])
  | Some (sender, vc) ->
      let p = { from = sender; vc } in
      let immediately = deliverable st p in
      let st =
        {
          st with
          buffer = p :: st.buffer;
          buffered_arrivals =
            (st.buffered_arrivals + if immediately then 0 else 1);
        }
      in
      drain st []

let on_timer st ~self ~tag ~now:_ =
  if String.equal tag tick_timer && st.sent_count < st.params.broadcasts_per_process
  then begin
    (* broadcasting counts as delivering to yourself *)
    st.vc.(st.me) <- st.vc.(st.me) + 1;
    let stamp = Array.copy st.vc in
    let st = { st with sent_count = st.sent_count + 1 } in
    let targets =
      List.filter (fun i -> i <> Pid.to_int self) (List.init st.params.n (fun i -> i))
    in
    ( st,
      List.map (fun i -> Engine.Send (Pid.of_int i, encode st.me stamp)) targets
      @ [ Engine.Set_timer (st.params.period, tick_timer) ] )
  end
  else (st, [])

let vc_lt a b =
  let leq x y =
    Array.for_all2 ( <= ) x y
  in
  leq a b && not (leq b a)

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let states = result.Engine.states in
  let delivered_total =
    Array.fold_left (fun acc (st : state) -> acc + List.length st.delivery_log) 0 states
  in
  let causal_delivery_ok =
    Array.for_all
      (fun (st : state) ->
        let log = List.rev st.delivery_log in
        (* if broadcast a causally precedes broadcast b (vc_a < vc_b),
           a must be delivered before b *)
        let rec pairs_ok : pending list -> bool = function
          | [] -> true
          | a :: rest ->
              List.for_all (fun (b : pending) -> not (vc_lt b.vc a.vc)) rest
              && pairs_ok rest
        in
        pairs_ok log)
      states
  in
  let expected = params.broadcasts_per_process * (params.n - 1) * params.n in
  {
    trace = result.Engine.trace;
    delivered_total;
    buffered_arrivals =
      Array.fold_left (fun acc (st : state) -> acc + st.buffered_arrivals) 0 states;
    causal_delivery_ok;
    all_delivered = delivered_total = expected;
    messages = result.Engine.stats.Engine.sent;
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: the causal triangle — p0 posts m1 to p1 then m2
   to p2; p1 relays m1 to p2. Whether p2 sees the relay before m2 is
   exactly the causal-delivery question *)
let triangle_spec =
  let p0 = Pid.of_int 0 and p1 = Pid.of_int 1 and p2 = Pid.of_int 2 in
  Spec.make ~n:3 (fun p history ->
      if Pid.equal p p0 then
        match Protocol.sends history with
        | 0 -> [ Spec.Send_to (p1, "m1") ]
        | 1 -> [ Spec.Send_to (p2, "m2") ]
        | _ -> []
      else if Pid.equal p p1 then
        if Protocol.recvs_of history "m1" > 0 && Protocol.sends history = 0 then
          [ Spec.Send_to (p2, "relay") ]
        else [ Spec.Recv_any ]
      else [ Spec.Recv_any ])

let relay_first =
  Prop.make "relayfirst" (fun z ->
      match List.filter Event.is_receive (Trace.proj z (Pid.of_int 2)) with
      | e :: _ -> (
          match Event.message e with
          | Some m -> String.equal m.Msg.payload "relay"
          | None -> false)
      | [] -> false)

let protocol =
  Protocol.make ~name:"causal-broadcast"
    ~doc:"the causal triangle: does the relay beat the later direct send?"
    ~atoms:(fun _ ->
      [
        ("relayfirst", relay_first);
        ("sawrelay", Protocol.received_prop "sawrelay" (Pid.of_int 2) "relay");
        ("sawdirect", Protocol.received_prop "sawdirect" (Pid.of_int 2) "m2");
      ])
    ~suggested_depth:6
    (fun _ -> triangle_spec)
