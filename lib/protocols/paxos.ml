open Hpl_core
open Hpl_sim

type params = {
  n : int;
  proposers : int;
  retry_timeout : float;
  crash : (float * int) list;
  horizon : float;
  seed : int64;
}

let default =
  {
    n = 5;
    proposers = 1;
    retry_timeout = 40.0;
    crash = [];
    horizon = 2000.0;
    seed = 53L;
  }

let proposal_of i = 1000 + i

(* wire: prepare(b) / promise(b, ab, av) / accept(b, v) / accepted(b) /
   decide(v).  ab = -1 encodes "nothing accepted yet". *)
let prepare_tag = "px-prepare"
let promise_tag = "px-promise"
let accept_tag = "px-accept"
let accepted_tag = "px-accepted"
let decide_tag = "px-decide"
let retry_timer = "px-retry"
let decided_marker = "px-decided"

type proposer_phase =
  | P_idle
  | P_preparing of { ballot : int; promises : (int * int) list; count : int }
  | P_accepting of { ballot : int; value : int; count : int }
  | P_done

type state = {
  params : params;
  me : int;
  (* acceptor *)
  promised : int;
  accepted_ballot : int;
  accepted_value : int;
  (* proposer *)
  phase : proposer_phase;
  round : int;
  decided_value : int option;
}

type outcome = {
  trace : Trace.t;
  decided : (int * int) list;
  agreement : bool;
  validity : bool;
  any_decision : bool;
  ballots_started : int;
  messages : int;
}

let everyone st = List.init st.params.n (fun i -> i)
let majority st = (st.params.n / 2) + 1

let broadcast st tag ints =
  List.map (fun i -> Engine.Send (Pid.of_int i, Wire.enc tag ints)) (everyone st)

let is_proposer st = st.me < st.params.proposers

let new_ballot st round = (round * st.params.n) + st.me + 1

let start_round st =
  let round = st.round + 1 in
  let ballot = new_ballot st round in
  let st =
    { st with round; phase = P_preparing { ballot; promises = []; count = 0 } }
  in
  ( st,
    broadcast st prepare_tag [ ballot ]
    @ [ Engine.Set_timer (st.params.retry_timeout, retry_timer) ] )

let init params p =
  let me = Pid.to_int p in
  let st =
    {
      params;
      me;
      promised = 0;
      accepted_ballot = -1;
      accepted_value = -1;
      phase = P_idle;
      round = 0;
      decided_value = None;
    }
  in
  if me < params.proposers then
    (* stagger proposers by half a retry period to reduce (not
       eliminate) duels *)
    ( st,
      [
        Engine.Set_timer
          (1.0 +. (params.retry_timeout /. 2.0 *. float_of_int me), retry_timer);
      ] )
  else (st, [])

let decide st value =
  if st.decided_value <> None then (st, [])
  else
    ( { st with decided_value = Some value; phase = P_done },
      Engine.Log_internal (Printf.sprintf "%s:%d" decided_marker value)
      :: broadcast st decide_tag [ value ] )

let on_message st ~self:_ ~src ~payload ~now:_ =
  match Wire.dec payload with
  | Some (t, [ ballot ]) when String.equal t prepare_tag ->
      if ballot > st.promised then
        ( { st with promised = ballot },
          [
            Engine.Send
              (src, Wire.enc promise_tag [ ballot; st.accepted_ballot; st.accepted_value ]);
          ] )
      else (st, [])
  | Some (t, [ ballot; ab; av ]) when String.equal t promise_tag -> (
      match st.phase with
      | P_preparing p when ballot = p.ballot ->
          let promises = if ab >= 0 then (ab, av) :: p.promises else p.promises in
          let count = p.count + 1 in
          if count >= majority st then begin
            let value =
              match
                List.fold_left
                  (fun best (ab', av') ->
                    match best with
                    | Some (b, _) when b >= ab' -> best
                    | _ -> Some (ab', av'))
                  None promises
              with
              | Some (_, v) -> v
              | None -> proposal_of st.me
            in
            let st = { st with phase = P_accepting { ballot; value; count = 0 } } in
            (st, broadcast st accept_tag [ ballot; value ])
          end
          else ({ st with phase = P_preparing { p with promises; count } }, [])
      | _ -> (st, []))
  | Some (t, [ ballot; value ]) when String.equal t accept_tag ->
      if ballot >= st.promised then
        ( { st with promised = ballot; accepted_ballot = ballot; accepted_value = value },
          [ Engine.Send (src, Wire.enc accepted_tag [ ballot ]) ] )
      else (st, [])
  | Some (t, [ ballot ]) when String.equal t accepted_tag -> (
      match st.phase with
      | P_accepting a when ballot = a.ballot ->
          let count = a.count + 1 in
          if count >= majority st then decide st a.value
          else ({ st with phase = P_accepting { a with count } }, [])
      | _ -> (st, []))
  | Some (t, [ value ]) when String.equal t decide_tag ->
      if st.decided_value = None then
        ( { st with decided_value = Some value; phase = P_done },
          [ Engine.Log_internal (Printf.sprintf "%s:%d" decided_marker value) ] )
      else (st, [])
  | _ -> (st, [])

let on_timer st ~self:_ ~tag ~now =
  if
    String.equal tag retry_timer && is_proposer st
    && st.decided_value = None
    && now <= st.params.horizon
  then start_round st
  else (st, [])

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let config =
    {
      config with
      Engine.crashes = params.crash @ config.Engine.crashes;
      max_time = params.horizon *. 1.5;
    }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let z = result.Engine.trace in
  let decided =
    List.filter_map
      (fun e ->
        match e.Event.kind with
        | Event.Internal tag -> (
            match String.split_on_char ':' tag with
            | [ m; v ] when m = decided_marker ->
                Option.map (fun v -> (Pid.to_int e.Event.pid, v)) (int_of_string_opt v)
            | _ -> None)
        | _ -> None)
      (Trace.to_list z)
  in
  let values = List.sort_uniq Int.compare (List.map snd decided) in
  let proposals = List.init params.proposers proposal_of in
  let ballots_started =
    List.length
      (List.filter
         (fun m -> Wire.is prepare_tag m.Msg.payload)
         (Trace.sent z))
    / params.n
  in
  {
    trace = z;
    decided;
    agreement = List.length values <= 1;
    validity = List.for_all (fun v -> List.mem v proposals) values;
    any_decision = decided <> [];
    ballots_started;
    messages = result.Engine.stats.Engine.sent;
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: one proposer, one ballot — deciding requires
   knowing a quorum promised and then a quorum accepted *)
let ballot_spec ~acceptors =
  if acceptors < 1 then invalid_arg "Paxos.ballot_spec: need an acceptor";
  let n = acceptors + 1 in
  let q = (acceptors / 2) + 1 in
  let p0 = Pid.of_int 0 in
  Spec.make ~n (fun p history ->
      if Pid.equal p p0 then begin
        let prep = Protocol.sends_of history "prepare" in
        let prom = Protocol.recvs_of history "promise" in
        let acc = Protocol.sends_of history "accept" in
        let accd = Protocol.recvs_of history "accepted" in
        if prep < acceptors then
          [ Spec.Send_to (Pid.of_int (prep + 1), "prepare") ]
        else if prom < q then [ Spec.Recv_any ]
        else if acc < acceptors then
          [ Spec.Send_to (Pid.of_int (acc + 1), "accept") ]
        else if accd < q then [ Spec.Recv_any ]
        else if Protocol.did history "decide" then [ Spec.Recv_any ]
        else [ Spec.Do "decide" ]
      end
      else
        (if
           Protocol.recvs_of history "prepare"
           > Protocol.sends_of history "promise"
         then [ Spec.Send_to (p0, "promise") ]
         else [])
        @ (if
             Protocol.recvs_of history "accept"
             > Protocol.sends_of history "accepted"
           then [ Spec.Send_to (p0, "accepted") ]
           else [])
        @ [ Spec.Recv_any ])

let protocol =
  Protocol.make ~name:"paxos"
    ~doc:"single-ballot Paxos: decide = know a quorum promised + accepted"
    ~params:[ Protocol.param ~lo:1 "acceptors" 2 "acceptor count (p0 proposes)" ]
    ~atoms:(fun vs ->
      let a = Protocol.get vs "acceptors" in
      ("decided", Protocol.did_prop "decided" (Pid.of_int 0) "decide")
      :: List.init a (fun i ->
             (Printf.sprintf "promised%d" (i + 1),
              Protocol.sent_prop (Printf.sprintf "promised%d" (i + 1))
                (Pid.of_int (i + 1)) "promise")))
    ~suggested_depth:6
    (fun vs -> ballot_spec ~acceptors:(Protocol.get vs "acceptors"))
