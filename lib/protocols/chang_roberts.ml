open Hpl_core
open Hpl_sim

type params = { n : int; ids : int array option; seed : int64 }

let default = { n = 6; ids = None; seed = 19L }

let elect_tag = "elect"
let leader_tag = "leader"
let won_tag = "i-won"

type state = {
  params : params;
  me : int;
  my_id : int;
  leader : int option;
  won : bool;
}

type outcome = {
  trace : Trace.t;
  leader : int option;
  agreed : bool;
  messages : int;
  election_messages : int;
  announcement_chain : bool;
}

let shuffled_ids n seed =
  let rng = Rng.create seed in
  let ids = Array.init n (fun i -> i + 1) in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- tmp
  done;
  ids

let next st = Pid.of_int ((st.me + 1) mod st.params.n)

let init ids params p =
  let me = Pid.to_int p in
  let st = { params; me; my_id = ids.(me); leader = None; won = false } in
  (st, [ Engine.Send (next st, Wire.enc elect_tag [ st.my_id ]) ])

let on_message st ~self:_ ~src:_ ~payload ~now:_ =
  match Wire.dec payload with
  | Some (tag, [ id ]) when String.equal tag elect_tag ->
      if id > st.my_id then (st, [ Engine.Send (next st, Wire.enc elect_tag [ id ]) ])
      else if id = st.my_id then
        (* our own id came all the way around: we win *)
        ( { st with won = true; leader = Some st.me },
          [
            Engine.Log_internal won_tag;
            Engine.Send (next st, Wire.enc leader_tag [ st.me ]);
          ] )
      else (* swallow smaller ids *) (st, [])
  | Some (tag, [ leader ]) when String.equal tag leader_tag ->
      if st.won then (st, []) (* announcement returned to the winner *)
      else
        ( { st with leader = Some leader },
          [ Engine.Send (next st, Wire.enc leader_tag [ leader ]) ] )
  | _ -> (st, [])

let run ?config params =
  let ids =
    match params.ids with
    | Some ids ->
        if Array.length ids <> params.n then
          invalid_arg "Chang_roberts.run: ids length mismatch";
        ids
    | None -> shuffled_ids params.n params.seed
  in
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let result =
    Engine.run config
      {
        Engine.init = init ids params;
        on_message;
        on_timer = (fun st ~self:_ ~tag:_ ~now:_ -> (st, []));
      }
  in
  let z = result.Engine.trace in
  let winners =
    Array.to_list result.Engine.states
    |> List.filter_map (fun st -> if st.won then Some st.me else None)
  in
  let leader = match winners with [ w ] -> Some w | _ -> None in
  let agreed =
    match leader with
    | None -> false
    | Some w ->
        Array.for_all (fun (st : state) -> st.leader = Some w) result.Engine.states
  in
  let sent = Trace.sent z in
  let messages = List.length sent in
  let election_messages =
    List.length (List.filter (fun m -> Wire.is elect_tag m.Msg.payload) sent)
  in
  let announcement_chain =
    match leader with
    | None -> false
    | Some w ->
        List.for_all
          (fun i ->
            i = w
            || Chain.exists ~n:params.n ~z
                 [ Pset.singleton (Pid.of_int w); Pset.singleton (Pid.of_int i) ])
          (List.init params.n (fun i -> i))
  in
  { trace = z; leader; agreed; messages; election_messages; announcement_chain }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: ids are ring positions; every process emits its
   id once, forwards larger ids, and the maximum declares itself
   elected when its own id completes the circuit *)
let election_spec ~n =
  if n < 2 then
    invalid_arg "Chang_roberts.election_spec: need at least two processes";
  Spec.make ~n (fun p history ->
      let i = Pid.to_int p in
      let right = Pid.of_int ((i + 1) mod n) in
      let mine = string_of_int i in
      let starts =
        if Protocol.sends_of history mine = 0 then
          [ Spec.Send_to (right, mine) ]
        else []
      in
      let forwards =
        List.filter_map
          (fun j ->
            let cand = string_of_int j in
            if
              j > i
              && Protocol.recvs_of history cand > Protocol.sends_of history cand
            then Some (Spec.Send_to (right, cand))
            else None)
          (List.init n (fun j -> j))
      in
      let crown =
        if Protocol.recvs_of history mine > 0 && not (Protocol.did history "elected")
        then [ Spec.Do "elected" ]
        else []
      in
      (Spec.Recv_any :: starts) @ forwards @ crown)

let protocol =
  Protocol.make ~name:"chang-roberts"
    ~doc:"ring election: forward larger ids; max id's return crowns it"
    ~params:[ Protocol.param ~lo:2 "n" 3 "ring size (ids = positions)" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      [ ("elected", Protocol.did_prop "elected" (Pid.of_int (n - 1)) "elected") ])
    ~suggested_depth:6
    (fun vs -> election_spec ~n:(Protocol.get vs "n"))
