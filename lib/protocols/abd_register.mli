(** A fault-tolerant read/write register (single-writer ABD).

    The writer stamps each value with an increasing tag and writes to a
    majority; a reader queries a majority, adopts the largest tag, and
    — the ABD trick — writes it back to a majority before returning, so
    that a later reader cannot see an older value. Quorum intersection
    is the knowledge mechanism: any two majorities share a replica, so
    the second operation's quorum {e must} contain a process that knows
    the first one's outcome — a process-chain guarantee by
    construction, crash-tolerant up to a minority.

    The verifier checks single-writer atomicity on the recorded trace
    via tag discipline (write values are unique, so this is sound and
    complete for SWMR):
    + every read returns a written (or the initial) tag;
    + a read invoked after a write completed returns a tag ≥ it;
    + reads never go backwards (read₂ invoked after read₁ responded
      returns a tag ≥ read₁'s);
    + a read never returns a tag whose write was invoked after the
      read responded.

    Run it with a minority of replica crashes and everything still
    holds; crash a majority and operations block (reported, not
    failed — unavailability, not inconsistency). *)

type params = {
  n : int;  (** process 0 writes; everyone replicates; readers 1..n-1 *)
  writes : int;  (** total writes issued *)
  reads_per_reader : int;
  op_period : float;
  crash : (float * int) list;  (** replica crash schedule *)
  horizon : float;
  seed : int64;
}

val default : params

type op = {
  kind : [ `Read | `Write ];
  owner : int;
  tag : int;  (** written tag, or the tag the read returned *)
  invoked : int;  (** trace position of the invocation event *)
  responded : int option;  (** trace position of the response, if any *)
}

type outcome = {
  trace : Hpl_core.Trace.t;
  ops : op list;
  atomic : bool;  (** the four conditions above *)
  completed_ops : int;
  blocked_ops : int;  (** invoked but never responded (e.g. majority lost) *)
  messages : int;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
