open Hpl_core
open Hpl_sim

type params = {
  n : int;
  rounds : int;
  cs_duration : float;
  think_time : float;
  seed : int64;
}

let default = { n = 4; rounds = 3; cs_duration = 3.0; think_time = 5.0; seed = 41L }

let request_tag = "mx-req"
let ack_tag = "mx-ack"
let release_tag = "mx-rel"
let enter_tag = "mx-enter"
let exit_tag = "mx-exit"
let think_timer = "mx-think"
let leave_timer = "mx-leave"

type request = { ts : int; who : int }

let req_before a b = a.ts < b.ts || (a.ts = b.ts && a.who < b.who)

type state = {
  params : params;
  me : int;
  clock : int;
  queue : request list;  (** sorted by [req_before] *)
  acks_from : bool array;  (** acks for my current request *)
  my_request : request option;
  in_cs : bool;
  rounds_done : int;
}

type outcome = {
  trace : Trace.t;
  entries : int array;
  mutual_exclusion : bool;
  all_rounds_served : bool;
  timestamp_order_respected : bool;
  messages : int;
  messages_per_entry : float;
}

let others st = List.filter (fun i -> i <> st.me) (List.init st.params.n (fun i -> i))

let insert req queue =
  let rec go = function
    | [] -> [ req ]
    | r :: rest -> if req_before req r then req :: r :: rest else r :: go rest
  in
  go queue

let remove who queue = List.filter (fun r -> r.who <> who) queue

let broadcast st tag ints =
  List.map (fun i -> Engine.Send (Pid.of_int i, Wire.enc tag ints)) (others st)

(* try to enter: my request heads the queue and everyone acked *)
let try_enter st =
  match st.my_request with
  | Some my
    when (not st.in_cs)
         && (match st.queue with r :: _ -> r.who = st.me && r.ts = my.ts | [] -> false)
         && List.for_all (fun i -> st.acks_from.(i)) (others st) ->
      ( { st with in_cs = true },
        [
          Engine.Log_internal enter_tag;
          Engine.Set_timer (st.params.cs_duration, leave_timer);
        ] )
  | _ -> (st, [])

let make_request st =
  let clock = st.clock + 1 in
  let my = { ts = clock; who = st.me } in
  let st =
    {
      st with
      clock;
      my_request = Some my;
      queue = insert my st.queue;
      acks_from = Array.make st.params.n false;
    }
  in
  let st, enter = try_enter st in
  (st, broadcast st request_tag [ my.ts ] @ enter)

let init params p =
  let me = Pid.to_int p in
  let st =
    {
      params;
      me;
      clock = 0;
      queue = [];
      acks_from = Array.make params.n false;
      my_request = None;
      in_cs = false;
      rounds_done = 0;
    }
  in
  (st, [ Engine.Set_timer (params.think_time *. float_of_int (me + 1), think_timer) ])

let on_message st ~self:_ ~src ~payload ~now:_ =
  let s = Pid.to_int src in
  match Wire.dec payload with
  | Some (tag, [ ts ]) when String.equal tag request_tag ->
      let st = { st with clock = max st.clock ts + 1 } in
      let st = { st with queue = insert { ts; who = s } st.queue } in
      let clock = st.clock + 1 in
      ( { st with clock },
        [ Engine.Send (src, Wire.enc ack_tag [ clock ]) ] )
  | Some (tag, [ ts ]) when String.equal tag ack_tag ->
      let st = { st with clock = max st.clock ts + 1 } in
      st.acks_from.(s) <- true;
      try_enter st
  | Some (tag, [ ts ]) when String.equal tag release_tag ->
      let st = { st with clock = max st.clock ts + 1 } in
      let st = { st with queue = remove s st.queue } in
      try_enter st
  | _ -> (st, [])

let on_timer st ~self:_ ~tag ~now:_ =
  if String.equal tag think_timer then
    if st.rounds_done < st.params.rounds && st.my_request = None then
      make_request st
    else (st, [])
  else if String.equal tag leave_timer && st.in_cs then begin
    let clock = st.clock + 1 in
    let st =
      {
        st with
        clock;
        in_cs = false;
        my_request = None;
        queue = remove st.me st.queue;
        rounds_done = st.rounds_done + 1;
      }
    in
    let again =
      if st.rounds_done < st.params.rounds then
        [ Engine.Set_timer (st.params.think_time, think_timer) ]
      else []
    in
    (st, (Engine.Log_internal exit_tag :: broadcast st release_tag [ clock ]) @ again)
  end
  else (st, [])

let check_exclusion z =
  let inside = ref 0 in
  let ok = ref true in
  List.iter
    (fun e ->
      match e.Event.kind with
      | Event.Internal t when String.equal t enter_tag ->
          if !inside > 0 then ok := false;
          incr inside
      | Event.Internal t when String.equal t exit_tag -> decr inside
      | _ -> ())
    (Trace.to_list z);
  !ok

(* verify CS entries occur in (ts, pid) order of their requests: pair
   each enter event with the request timestamp of its process at that
   moment, replaying the trace *)
let timestamp_order z n =
  (* reconstruct request timestamps: the k-th request of process i has
     the clock value it broadcast; recover from the send events *)
  let pending = Array.make n [] in
  Array.iteri (fun i _ -> pending.(i) <- []) pending;
  let order = ref [] in
  List.iter
    (fun e ->
      match e.Event.kind with
      | Event.Send m when Wire.is request_tag m.Msg.payload -> (
          match Wire.dec m.Msg.payload with
          | Some (_, [ ts ]) ->
              let i = Pid.to_int e.Event.pid in
              (* the same broadcast appears n-1 times; record once *)
              (match pending.(i) with
              | t :: _ when t = ts -> ()
              | _ -> pending.(i) <- ts :: pending.(i))
          | _ -> ())
      | Event.Internal t when String.equal t enter_tag ->
          let i = Pid.to_int e.Event.pid in
          (match pending.(i) with
          | ts :: rest ->
              order := { ts; who = i } :: !order;
              pending.(i) <- rest
          | [] -> ())
      | _ -> ())
    (Trace.to_list z);
  let served = List.rev !order in
  let rec increasing = function
    | a :: b :: rest -> req_before a b && increasing (b :: rest)
    | _ -> true
  in
  increasing served

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let z = result.Engine.trace in
  let entries =
    Array.init params.n (fun i ->
        List.length
          (List.filter
             (fun e ->
               match e.Event.kind with
               | Event.Internal t -> String.equal t enter_tag
               | _ -> false)
             (Trace.proj z (Pid.of_int i))))
  in
  let total_entries = Array.fold_left ( + ) 0 entries in
  {
    trace = z;
    entries;
    mutual_exclusion = check_exclusion z;
    all_rounds_served = Array.for_all (fun e -> e = params.rounds) entries;
    timestamp_order_respected = timestamp_order z params.n;
    messages = result.Engine.stats.Engine.sent;
    messages_per_entry =
      (if total_entries = 0 then 0.0
       else float_of_int result.Engine.stats.Engine.sent /. float_of_int total_entries);
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: one requester; entering the critical section
   requires acknowledgements from everyone — knowledge that every
   process has timestamped the request *)
let protocol =
  Protocol.make ~name:"lamport-mutex"
    ~doc:"timestamp mutex, one requester: CS entry needs every ack"
    ~params:[ Protocol.param ~lo:2 "n" 2 "processes (p0 requests)" ]
    ~atoms:(fun _ ->
      [
        ("incs", Protocol.did_prop "incs" (Pid.of_int 0) "cs");
        ("requested", Protocol.sent_prop "requested" (Pid.of_int 0) "req");
      ])
    ~suggested_depth:5
    (fun vs ->
      Protocol.star_spec ~n:(Protocol.get vs "n") ~request:"req" ~reply:"ack"
        ~finish:"cs" ())
