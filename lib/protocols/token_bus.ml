open Hpl_core

let token = "token"

(* p's token balance from its own history: +1 initial for p0, +1 per
   receive, -1 per send. p holds iff balance = 1. *)
let balance_of_history p history =
  let init = if Pid.to_int p = 0 then 1 else 0 in
  List.fold_left
    (fun bal e ->
      match e.Event.kind with
      | Event.Send _ -> bal - 1
      | Event.Receive _ -> bal + 1
      | Event.Internal _ -> bal)
    init history

let spec ~n =
  if n < 2 then invalid_arg "Token_bus.spec: need at least two processes";
  Spec.make ~n (fun p history ->
      let i = Pid.to_int p in
      let holds = balance_of_history p history = 1 in
      let passes =
        if not holds then []
        else
          let neighbours =
            (if i > 0 then [ i - 1 ] else []) @ if i < n - 1 then [ i + 1 ] else []
          in
          List.map (fun j -> Spec.Send_to (Pid.of_int j, token)) neighbours
      in
      Spec.Recv_any :: passes)

let holds p =
  Prop.make
    (Printf.sprintf "%s holds token" (Pid.to_string p))
    (fun z -> balance_of_history p (Trace.proj z p) = 1)

let token_in_flight =
  Prop.make "token in flight" (fun z -> Trace.in_flight z <> [])

let exactly_one_holder_or_flight ~n =
  Prop.make "bus invariant" (fun z ->
      let holders =
        List.filter
          (fun i -> balance_of_history (Pid.of_int i) (Trace.proj z (Pid.of_int i)) = 1)
          (List.init n (fun i -> i))
      in
      match (holders, Trace.in_flight z) with
      | [ _ ], [] -> true
      | [], [ _ ] -> true
      | _ -> false)

let holder_at ~n z =
  let holders =
    List.filter
      (fun i -> balance_of_history (Pid.of_int i) (Trace.proj z (Pid.of_int i)) = 1)
      (List.init n (fun i -> i))
  in
  match holders with [ i ] -> Some (Pid.of_int i) | _ -> None

let paper_assertion u =
  if Spec.n (Universe.spec u) <> 5 then
    invalid_arg "Token_bus.paper_assertion: needs the 5-process bus";
  let p = Pid.of_int 0
  and q = Pid.of_int 1
  and s = Pset.singleton (Pid.of_int 3)
  and t = Pid.of_int 4 in
  let q_knows = Knowledge.knows u (Pset.singleton q) (Prop.not_ (holds p)) in
  let s_knows = Knowledge.knows u s (Prop.not_ (holds t)) in
  Knowledge.knows u
    (Pset.singleton (Pid.of_int 2))
    (Prop.and_ q_knows s_knows)

let check_paper_claim u =
  let r_holds = holds (Pid.of_int 2) in
  let assertion = paper_assertion u in
  let ok = ref true in
  Universe.iter
    (fun _ z -> if Prop.eval r_holds z && not (Prop.eval assertion z) then ok := false)
    u;
  !ok

(* -- registry ----------------------------------------------------------- *)

let first_pass _ =
  let m =
    Msg.make ~src:(Pid.of_int 0) ~dst:(Pid.of_int 1) ~seq:0 ~payload:token
  in
  Trace.of_list
    [
      Event.send ~pid:(Pid.of_int 0) ~lseq:0 m;
      Event.receive ~pid:(Pid.of_int 1) ~lseq:0 m;
    ]

let protocol =
  Protocol.make ~name:"token-bus"
    ~doc:"\xc2\xa74.1 linear token passing; the paper's nested-knowledge showcase"
    ~params:[ Protocol.param ~lo:2 "n" 5 "bus length" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      List.init n (fun i -> (Printf.sprintf "holds%d" i, holds (Pid.of_int i)))
      @ [ ("inflight", token_in_flight) ])
    ~canonical_trace:first_pass ~suggested_depth:6
    (fun vs -> spec ~n:(Protocol.get vs "n"))
