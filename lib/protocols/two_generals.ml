open Hpl_core

let a = Pid.of_int 0
let b = Pid.of_int 1
let decide_tag = "decide"

(* A: decide, then send "attack"; thereafter acknowledge each received
   message once. B: acknowledge each received message once. A process
   has "pending acknowledgements" when it has received more messages
   than it has replied to (beyond A's initial attack). *)
let spec =
  Spec.make ~n:2 (fun p history ->
      let decided =
        List.exists
          (fun e ->
            match e.Event.kind with
            | Event.Internal t -> String.equal t decide_tag
            | _ -> false)
          history
      in
      let sends =
        List.length (List.filter Event.is_send history)
      in
      let recvs = List.length (List.filter Event.is_receive history) in
      if Pid.equal p a then
        if not decided then [ Spec.Do decide_tag ]
        else if sends = 0 then
          (* first send is the attack order *)
          [ Spec.Send_to (b, "attack"); Spec.Recv_any ]
        else begin
          (* afterwards reply once per received ack *)
          let replies_owed = recvs - (sends - 1) in
          (if replies_owed > 0 then [ Spec.Send_to (b, "ack") ] else [])
          @ [ Spec.Recv_any ]
        end
      else begin
        let replies_owed = recvs - sends in
        (if replies_owed > 0 then [ Spec.Send_to (a, "ack") ] else [])
        @ [ Spec.Recv_any ]
      end)

let attack_decided =
  Prop.make "attack decided" (fun z ->
      List.exists
        (fun e ->
          match e.Event.kind with
          | Event.Internal t -> String.equal t decide_tag
          | _ -> false)
        (Trace.proj z a))

let knowledge_ladder u ~depth =
  let rec build k =
    if k = 0 then attack_decided
    else
      let inner = build (k - 1) in
      let who = if k mod 2 = 1 then b else a in
      Knowledge.knows u (Pset.singleton who) inner
  in
  build depth

let ladder_trace ~rounds =
  (* decide; attack delivered; then alternating acks, all delivered *)
  let rec go k trace a_sends b_sends a_recvs b_recvs =
    if k >= rounds then trace
    else if k mod 2 = 0 then begin
      (* A -> B *)
      let payload = if k = 0 then "attack" else "ack" in
      let m = Msg.make ~src:a ~dst:b ~seq:a_sends ~payload in
      let lseq_a = 1 + a_sends + a_recvs in
      let lseq_b = b_sends + b_recvs in
      let trace =
        Trace.append trace
          [ Event.send ~pid:a ~lseq:lseq_a m; Event.receive ~pid:b ~lseq:lseq_b m ]
      in
      go (k + 1) trace (a_sends + 1) b_sends a_recvs (b_recvs + 1)
    end
    else begin
      (* B -> A *)
      let m = Msg.make ~src:b ~dst:a ~seq:b_sends ~payload:"ack" in
      let lseq_b = b_sends + b_recvs in
      let lseq_a = 1 + a_sends + a_recvs in
      let trace =
        Trace.append trace
          [ Event.send ~pid:b ~lseq:lseq_b m; Event.receive ~pid:a ~lseq:lseq_a m ]
      in
      go (k + 1) trace a_sends (b_sends + 1) (a_recvs + 1) b_recvs
    end
  in
  go 0 (Trace.of_list [ Event.internal ~pid:a ~lseq:0 decide_tag ]) 0 0 0 0

let max_depth_at u z =
  let rec go k =
    if k > Universe.depth u then k - 1
    else if Prop.eval (knowledge_ladder u ~depth:k) z then go (k + 1)
    else k - 1
  in
  go 1

let common_knowledge_never u =
  let ck = Common_knowledge.common u attack_decided in
  let ok = ref true in
  Universe.iter (fun _ z -> if Prop.eval ck z then ok := false) u;
  !ok

(* -- registry ----------------------------------------------------------- *)

let protocol =
  Protocol.make ~name:"two-generals"
    ~doc:"coordinated attack: a knowledge ladder that never reaches CK"
    ~atoms:(fun _ -> [ ("attack", attack_decided) ])
    ~canonical_trace:(fun _ -> ladder_trace ~rounds:2)
    ~suggested_depth:6
    ~fault_scenarios:[ "drop:p0->p1"; "drop:*"; "crash:p1@2" ]
    (fun _ -> spec)
