open Hpl_core
open Hpl_sim

let name = "credit"
let detect_tag = Termination.detect_tag_of name
let report = "credit-report"

type state = {
  logic : Underlying.Logic.t;
  params : Underlying.params;
  is_root : bool;
  outstanding : int;  (** root only: unreturned credits *)
  announced : bool;
}

let send_work sends = List.map (fun (dst, payload) -> Engine.Send (dst, payload)) sends

let root_pid params = Pid.of_int params.Underlying.root

let settle_root st =
  if st.is_root && st.outstanding = 0 && not st.announced then
    ({ st with announced = true }, [ Engine.Log_internal detect_tag ])
  else (st, [])

let init params p =
  let logic = Underlying.Logic.create params p in
  let is_root = Pid.to_int p = params.Underlying.root in
  let logic, sends =
    if is_root then Underlying.Logic.initial_spawns params logic else (logic, [])
  in
  let st =
    { logic; params; is_root; outstanding = List.length sends; announced = false }
  in
  let st, announce = settle_root st in
  (st, send_work sends @ announce)

let on_message st ~self:_ ~src:_ ~payload ~now:_ =
  if Underlying.is_work payload then begin
    let logic, sends = Underlying.Logic.on_work st.params st.logic ~payload in
    let spawned = List.length sends in
    let st = { st with logic } in
    if st.is_root then begin
      (* the coordinator settles its own credits without a message *)
      let st = { st with outstanding = st.outstanding + spawned - 1 } in
      let st, announce = settle_root st in
      (st, send_work sends @ announce)
    end
    else
      ( st,
        send_work sends
        @ [ Engine.Send (root_pid st.params, Wire.enc report [ spawned ]) ] )
  end
  else
    match Wire.dec payload with
    | Some (tag, [ spawned ]) when String.equal tag report ->
        let st = { st with outstanding = st.outstanding + spawned - 1 } in
        let st, announce = settle_root st in
        (st, announce)
    | _ -> (st, [])

let handlers params =
  {
    Engine.init = init params;
    on_message;
    on_timer = (fun st ~self:_ ~tag:_ ~now:_ -> (st, []));
  }

let run_raw ?(config = Engine.default) params =
  let result =
    Engine.run { config with Engine.n = params.Underlying.n } (handlers params)
  in
  (result.Engine.stats, result.Engine.trace)

let run ?config params =
  let _, trace = run_raw ?config params in
  Termination.score ~detector:name ~detect_tag trace

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: credit recovery — the root lends a credit with
   each work message and detects when every credit is refunded *)
let protocol =
  Protocol.make ~name:"credit"
    ~doc:"credit-counting termination: detection = all credit refunded"
    ~params:[ Protocol.param ~lo:2 "n" 2 "processes (p0 holds the bank)" ]
    ~atoms:(fun _ ->
      [ ("detected", Protocol.did_prop "detected" (Pid.of_int 0) detect_tag) ])
    ~suggested_depth:6
    (fun vs ->
      Protocol.star_spec ~n:(Protocol.get vs "n") ~work:"worked"
        ~request:"credit" ~reply:"refund" ~finish:detect_tag ())
