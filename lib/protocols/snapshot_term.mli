(** Snapshot-based termination detection.

    Chandy & Lamport's motivating application for global snapshots, by
    the paper's own first author: repeatedly record a consistent global
    state of the underlying computation; since a node here is active
    only while handling a delivery, a consistent cut whose channels
    carry no work messages is a terminated state — and because
    termination is stable, it has terminated in the present too.

    Overhead per attempt is a full marker wave, [n(n−1)] messages;
    attempts repeat until one is clean, so on long-lived workloads the
    total overhead again scales past [M] — detector number six for the
    E11 table, paying the §5 price in marker currency. *)

val name : string
val detect_tag : string

val run :
  ?config:Hpl_sim.Engine.config ->
  ?attempt_delay:float ->
  Underlying.params ->
  Termination.report

val run_raw :
  ?config:Hpl_sim.Engine.config ->
  ?attempt_delay:float ->
  Underlying.params ->
  Hpl_sim.Engine.stats * Hpl_core.Trace.t

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
