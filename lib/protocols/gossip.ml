open Hpl_core
open Hpl_sim

type mode = Push | Pull | Push_pull

type params = {
  n : int;
  period : float;
  fanout : int;
  mode : mode;
  horizon : float;
  seed : int64;
}

let default =
  { n = 8; period = 5.0; fanout = 1; mode = Push; horizon = 1000.0; seed = 11L }

type outcome = {
  trace : Trace.t;
  informed_time : float option array;
  all_informed : bool;
  messages : int;
  depth2_complete_time : float option;
}

let rumor_tag = "rumor"
let pull_tag = "pull"
let tick_timer = "gossip-tick"

type state = {
  params : params;
  me : int;
  informed : bool;
  informed_at : float option;
  rng : Rng.t;
  (* matrix clock: row q, col r = my bound on how much q knows of r's
     rumor status; entry (q, r) > 0 means (to my knowledge) q knows r
     is informed. We track "informedness" rather than event counts. *)
  know : bool array array;
  depth2_at : float option;
}

let init params p =
  let me = Pid.to_int p in
  let informed = me = 0 in
  let know = Array.init params.n (fun _ -> Array.make params.n false) in
  if informed then know.(0).(0) <- true;
  let st =
    {
      params;
      me;
      informed;
      informed_at = (if informed then Some 0.0 else None);
      rng = Rng.create (Int64.add params.seed (Int64.of_int (me * 104729)));
      know;
      depth2_at = None;
    }
  in
  let ticks_from_start =
    match params.mode with Push -> informed | Pull | Push_pull -> true
  in
  let actions =
    if ticks_from_start then [ Engine.Set_timer (params.period, tick_timer) ]
    else []
  in
  (st, actions)

let encode_know st =
  (* flatten the boolean matrix into ints *)
  let bits = ref [] in
  for q = st.params.n - 1 downto 0 do
    for r = st.params.n - 1 downto 0 do
      bits := (if st.know.(q).(r) then 1 else 0) :: !bits
    done
  done;
  Wire.enc rumor_tag !bits

let depth2_complete st now =
  if st.depth2_at <> None then st
  else
    let complete =
      let ok = ref true in
      for q = 0 to st.params.n - 1 do
        for r = 0 to st.params.n - 1 do
          if not st.know.(q).(r) then ok := false
        done
      done;
      !ok
    in
    if complete then { st with depth2_at = Some now } else st

let on_message st ~self:_ ~src ~payload ~now =
  match Wire.dec payload with
  | Some (tag, []) when String.equal tag pull_tag ->
      (* answer a pull request if we have the rumor *)
      if st.informed then (st, [ Engine.Send (src, encode_know st) ]) else (st, [])
  | Some (tag, bits) when String.equal tag rumor_tag ->
      let n = st.params.n in
      if List.length bits <> n * n then (st, [])
      else begin
        let arr = Array.of_list bits in
        for q = 0 to n - 1 do
          for r = 0 to n - 1 do
            if arr.((q * n) + r) = 1 then st.know.(q).(r) <- true
          done
        done;
        let first_time = not st.informed in
        let st =
          if first_time then
            { st with informed = true; informed_at = Some now }
          else st
        in
        st.know.(st.me).(st.me) <- true;
        (* I now know everything the sender's matrix showed *)
        for r = 0 to n - 1 do
          if st.know.(r).(r) then st.know.(st.me).(r) <- true
        done;
        let st = depth2_complete st now in
        let actions =
          (* in push mode a newly informed node starts ticking *)
          if first_time && st.params.mode = Push then
            [ Engine.Set_timer (st.params.period, tick_timer) ]
          else []
        in
        (st, actions)
      end
  | _ -> (st, [])

let random_targets st =
  List.init st.params.fanout (fun _ ->
      let t = Rng.int st.rng st.params.n in
      if t = st.me then (t + 1) mod st.params.n else t)
  |> List.sort_uniq compare

let on_timer st ~self:_ ~tag ~now =
  if String.equal tag tick_timer && now <= st.params.horizon then begin
    let sends =
      match st.params.mode with
      | Push ->
          if st.informed then
            let payload = encode_know st in
            List.map (fun t -> Engine.Send (Pid.of_int t, payload)) (random_targets st)
          else []
      | Pull ->
          (* only the still-ignorant query; the tail goes quiet on its own *)
          if st.informed then []
          else
            List.map
              (fun t -> Engine.Send (Pid.of_int t, Wire.enc pull_tag []))
              (random_targets st)
      | Push_pull ->
          if st.informed then
            let payload = encode_know st in
            List.map (fun t -> Engine.Send (Pid.of_int t, payload)) (random_targets st)
          else
            List.map
              (fun t -> Engine.Send (Pid.of_int t, Wire.enc pull_tag []))
              (random_targets st)
    in
    let keep_ticking =
      match st.params.mode with
      | Push -> st.informed
      | Pull -> not st.informed
      | Push_pull -> true
    in
    ( st,
      sends
      @ if keep_ticking then [ Engine.Set_timer (st.params.period, tick_timer) ] else [] )
  end
  else (st, [])

let informed_positions ~n z =
  let pos = Array.make n None in
  pos.(0) <- Some 0;
  List.iteri
    (fun i e ->
      match e.Event.kind with
      | Event.Receive m when Wire.is rumor_tag m.Msg.payload ->
          let d = Pid.to_int e.Event.pid in
          if pos.(d) = None then pos.(d) <- Some i
      | _ -> ())
    (Trace.to_list z);
  pos

let run ?(config = Engine.default) params =
  let config =
    { config with Engine.n = params.n; max_time = params.horizon *. 2.0 }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let informed_time = Array.map (fun st -> st.informed_at) result.Engine.states in
  let all_informed = Array.for_all (fun t -> t <> None) informed_time in
  let depth2_complete_time =
    Array.fold_left
      (fun acc st ->
        match (acc, st.depth2_at) with
        | Some best, Some t -> Some (min best t)
        | None, t | t, None -> t)
      None result.Engine.states
  in
  {
    trace = result.Engine.trace;
    informed_time;
    all_informed;
    messages = result.Engine.stats.Engine.sent;
    depth2_complete_time;
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: push gossip around a ring, each process
   forwarding the rumor once — the minimal chain along which "p0 knows
   the rumor" propagates *)
let ring_spec ~n =
  if n < 2 then invalid_arg "Gossip.ring_spec: need at least two processes";
  Spec.make ~n (fun p history ->
      let i = Pid.to_int p in
      let informed = i = 0 || Protocol.recvs_of history rumor_tag > 0 in
      Spec.Recv_any
      ::
      (if informed && Protocol.sends_of history rumor_tag = 0 then
         [ Spec.Send_to (Pid.of_int ((i + 1) mod n), rumor_tag) ]
       else []))

let informed_prop ~i =
  Prop.make (Printf.sprintf "informed%d" i) (fun z ->
      i = 0 || Protocol.recvs_of (Trace.proj z (Pid.of_int i)) rumor_tag > 0)

let relay_ring vs =
  let n = Protocol.get vs "n" in
  let rec go k z =
    if k >= n - 1 then z
    else
      let src = Pid.of_int k and dst = Pid.of_int (k + 1) in
      let m = Msg.make ~src ~dst ~seq:0 ~payload:rumor_tag in
      let send_lseq = if k = 0 then 0 else 1 in
      go (k + 1)
        (Trace.append z
           [ Event.send ~pid:src ~lseq:send_lseq m;
             Event.receive ~pid:dst ~lseq:0 m ])
  in
  go 0 Trace.empty

let protocol =
  Protocol.make ~name:"gossip"
    ~doc:"push rumor around a ring; informedness spreads one hop per send"
    ~params:[ Protocol.param ~lo:2 "n" 3 "ring size (p0 starts informed)" ]
    ~atoms:(fun vs ->
      List.init (Protocol.get vs "n") (fun i ->
          (Printf.sprintf "informed%d" i, informed_prop ~i)))
    ~canonical_trace:relay_ring ~suggested_depth:6
    (fun vs -> ring_spec ~n:(Protocol.get vs "n"))
