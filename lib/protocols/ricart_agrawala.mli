(** Ricart–Agrawala mutual exclusion.

    The classic optimization of Lamport's algorithm: the acknowledgement
    and release are fused into a single deferred REPLY, cutting the cost
    from 3(n−1) to exactly 2(n−1) messages per critical-section entry. A
    requester enters once every other process has replied; a process
    holding a smaller (timestamp, id) request defers its reply until it
    exits.

    Same knowledge story, cheaper currency: a reply is the sender
    saying "I know my outstanding request (if any) loses to yours" —
    one message now carries both the acknowledgement and the release
    information. Verified like {!Lamport_mutex}: exclusion, service in
    timestamp order, and the exact message count. *)

type params = {
  n : int;
  rounds : int;
  cs_duration : float;
  think_time : float;
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  entries : int array;
  mutual_exclusion : bool;
  all_rounds_served : bool;
  messages : int;
  messages_per_entry : float;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
