(** The token bus of §4.1.

    "A linear sequence of processes among which a token is passed back
    and forth; processes at the left or right boundary have only a
    right or left neighbor to whom they may pass the token … There is
    only one token in the system and initially it is at the leftmost
    process."

    The system is given as a {!Hpl_core.Spec.t}, so the exact knowledge
    engine applies. [holds p] is a predicate local to [p]; the module
    builds the paper's showcase assertion — with five processes
    p,q,r,s,t, whenever r holds the token:

    {v r knows ((q knows ¬(p holds)) ∧ (s knows ¬(t holds))) v} *)

val spec : n:int -> Hpl_core.Spec.t
(** Raises [Invalid_argument] if [n < 2]. *)

val holds : Hpl_core.Pid.t -> Hpl_core.Prop.t
(** [holds p] — "p holds the token": initially true of p0; thereafter
    determined by p's own sends/receives of the token (local to p). *)

val token_in_flight : Hpl_core.Prop.t
(** True when the token has been sent and not yet received. *)

val exactly_one_holder_or_flight : n:int -> Hpl_core.Prop.t
(** The bus invariant: exactly one process holds the token, unless it
    is in flight. *)

val paper_assertion : Hpl_core.Universe.t -> Hpl_core.Prop.t
(** The nested-knowledge formula above, for a universe of the
    5-process bus. Raises [Invalid_argument] on other sizes. *)

val check_paper_claim : Hpl_core.Universe.t -> bool
(** Verifies over the whole universe: whenever r (= p2) holds the
    token, {!paper_assertion} holds. *)

val holder_at : n:int -> Hpl_core.Trace.t -> Hpl_core.Pid.t option
(** Who holds the token (None while in flight). *)

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
