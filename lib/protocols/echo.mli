(** The echo algorithm (propagation of information with feedback).

    The initiator floods a message over the (complete) graph; each
    process, on first contact, adopts the sender as parent and forwards
    to everyone else; when all its neighbours have answered it echoes
    to its parent. When the initiator has collected every echo it logs
    "pif-done" — at which point, in knowledge terms, the initiator
    {e knows that every process knows} the payload: every process's
    receive sits in the causal past of the completion event, which the
    verifier checks by chain extraction (Theorem 5's witness, again).

    Message complexity is one echo per wave: [2·((n−1) + (n−1)·(n−2))]
    [= 2(n−1)²] messages on the complete graph. *)

type params = { n : int; seed : int64 }

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  completed : bool;
  messages : int;
  all_informed : bool;  (** every process received the wave *)
  completion_knows_all : bool;
      (** every process has a chain from its first receipt to the
          initiator's completion event — the knowledge justification *)
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val done_tag : string

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
