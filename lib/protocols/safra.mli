(** Safra's token-based termination detection.

    A token circulates the ring accumulating per-node message-count
    deltas (work sent − work received); a node that has received work
    since it last forwarded the token is black and taints the token.
    The initiator announces termination after a fully white round whose
    accumulated count (plus its own) is zero; otherwise it whitens
    itself and launches a new round after a back-off.

    Unlike Dijkstra–Scholten, Safra needs no per-message signals: its
    overhead is one token hop per ring position per round — cheap when
    the workload dies quickly, unbounded in rounds when activity keeps
    re-blackening the ring (bench E11 sweeps both regimes). *)

val name : string
val detect_tag : string

val run :
  ?config:Hpl_sim.Engine.config ->
  ?round_delay:float ->
  Underlying.params ->
  Termination.report

val run_raw :
  ?config:Hpl_sim.Engine.config ->
  ?round_delay:float ->
  Underlying.params ->
  Hpl_sim.Engine.stats * Hpl_core.Trace.t

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
