(** Dijkstra–Scholten termination detection for diffusing computations.

    Every work message is eventually acknowledged by a signal; a node
    stays engaged (with the sender of its first unacknowledged work
    message as parent) until its own deficit — work sent but not yet
    signalled — returns to zero, then signals its parent. The root
    announces termination when its deficit reaches zero.

    Overhead is exactly one signal per work message, which matches the
    paper's lower bound tightly: detecting termination costs as many
    control messages as the underlying computation used. *)

val name : string
val detect_tag : string

val run :
  ?config:Hpl_sim.Engine.config -> Underlying.params -> Termination.report
(** Runs the workload under DS instrumentation and scores it. *)

val run_raw :
  ?config:Hpl_sim.Engine.config ->
  Underlying.params ->
  Hpl_sim.Engine.stats * Hpl_core.Trace.t
(** The raw run, for tests that inspect the trace. *)

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
