(** Registers every in-tree protocol with {!Protocol.Registry}.

    Call {!init} (a no-op) early in any executable that wants the
    registry populated — the reference forces this module to link, and
    its initializer performs the registrations. *)

val all : Protocol.t list
(** Every built-in protocol, in registration order. *)

val init : unit -> unit
