open Hpl_core
open Hpl_sim

type params = {
  n : int;
  cs_probability : float;
  cs_duration : float;
  pass_delay : float;
  horizon : float;
  seed : int64;
}

let default =
  {
    n = 5;
    cs_probability = 0.6;
    cs_duration = 4.0;
    pass_delay = 1.0;
    horizon = 600.0;
    seed = 23L;
  }

type outcome = {
  trace : Trace.t;
  entries : int array;
  mutual_exclusion : bool;
  all_served : bool;
  token_passes : int;
}

let token_tag = "ring-token"
let enter_tag = "cs-enter"
let exit_tag = "cs-exit"
let leave_timer = "cs-leave"
let pass_timer = "pass"

type state = {
  params : params;
  me : int;
  rng : Rng.t;
  holding : bool;
  in_cs : bool;
  my_entries : int;
}

let next_pid st = Pid.of_int ((st.me + 1) mod st.params.n)

let init params p =
  let me = Pid.to_int p in
  let st =
    {
      params;
      me;
      rng = Rng.create (Int64.add params.seed (Int64.of_int (me * 31)));
      holding = me = 0;
      in_cs = false;
      my_entries = 0;
    }
  in
  let actions =
    if st.holding then [ Engine.Set_timer (params.pass_delay, pass_timer) ] else []
  in
  (st, actions)

(* the holder either enters its critical section or passes on *)
let act st ~now =
  if now > st.params.horizon then (st, [])
  else if (not st.in_cs) && Rng.float st.rng 1.0 < st.params.cs_probability then
    ( { st with in_cs = true; my_entries = st.my_entries + 1 },
      [
        Engine.Log_internal enter_tag;
        Engine.Set_timer (st.params.cs_duration, leave_timer);
      ] )
  else
    ( { st with holding = false },
      [ Engine.Send (next_pid st, Wire.enc token_tag []) ] )

let on_message st ~self:_ ~src:_ ~payload ~now:_ =
  if Wire.is token_tag payload then
    ( { st with holding = true },
      [ Engine.Set_timer (st.params.pass_delay, pass_timer) ] )
  else (st, [])

let on_timer st ~self:_ ~tag ~now =
  if String.equal tag pass_timer && st.holding && not st.in_cs then act st ~now
  else if String.equal tag leave_timer && st.in_cs then
    ( { st with in_cs = false; holding = false },
      [
        Engine.Log_internal exit_tag;
        Engine.Send (next_pid st, Wire.enc token_tag []);
      ] )
  else (st, [])

let check_exclusion z =
  let inside : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let ok = ref true in
  List.iter
    (fun e ->
      match e.Event.kind with
      | Event.Internal t when String.equal t enter_tag ->
          if Hashtbl.length inside > 0 then ok := false;
          Hashtbl.replace inside (Pid.to_int e.Event.pid) ()
      | Event.Internal t when String.equal t exit_tag ->
          Hashtbl.remove inside (Pid.to_int e.Event.pid)
      | _ -> ())
    (Trace.to_list z);
  !ok

let run ?(config = Engine.default) params =
  let config =
    { config with Engine.n = params.n; max_time = params.horizon *. 2.0 }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let z = result.Engine.trace in
  let entries = Array.map (fun st -> st.my_entries) result.Engine.states in
  {
    trace = z;
    entries;
    mutual_exclusion = check_exclusion z;
    all_served = Array.for_all (fun e -> e > 0) entries;
    token_passes =
      List.length
        (List.filter (fun m -> Wire.is token_tag m.Msg.payload) (Trace.sent z));
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: the token circulates; holding is determined by
   a process's own send/receive balance, so it is a local predicate *)
let ring_spec ~n =
  if n < 2 then invalid_arg "Token_ring.ring_spec: need at least two processes";
  Spec.make ~n (fun p history ->
      let i = Pid.to_int p in
      let bal =
        (if i = 0 then 1 else 0) + Protocol.recvs history - Protocol.sends history
      in
      Spec.Recv_any
      ::
      (if bal = 1 then [ Spec.Send_to (Pid.of_int ((i + 1) mod n), "token") ]
       else []))

let holds_prop ~i =
  Prop.make (Printf.sprintf "holds%d" i) (fun z ->
      let h = Trace.proj z (Pid.of_int i) in
      (if i = 0 then 1 else 0) + Protocol.recvs h - Protocol.sends h = 1)

let protocol =
  Protocol.make ~name:"token-ring"
    ~doc:"token circulates a ring; holding is a local predicate"
    ~params:[ Protocol.param ~lo:2 "n" 3 "ring size" ]
    ~atoms:(fun vs ->
      List.init (Protocol.get vs "n") (fun i ->
          (Printf.sprintf "holds%d" i, holds_prop ~i)))
    ~suggested_depth:6
    ~fault_scenarios:[ "drop:p0->p1"; "crash:p1@2"; "crash-any:1" ]
    (fun vs -> ring_spec ~n:(Protocol.get vs "n"))
