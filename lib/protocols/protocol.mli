(** First-class protocols and the central registry.

    Every module under [lib/protocols/] describes one protocol; this
    module gives them a single uniform surface — a {!t} record carrying
    the protocol's name, documentation, integer parameters (with
    defaults and validation), a generative {!Hpl_core.Spec.t} for the
    exact knowledge engine, named atomic predicates for the formula
    language, and optionally a canonical trace plus a suggested
    enumeration depth — and a {!Registry} keyed by name, so the CLI,
    tests, and examples can drive {e any} protocol without
    protocol-specific code.

    The paper's results (isomorphism, the twelve knowledge facts,
    Theorems 4–6) are quantified over arbitrary systems; the registry is
    what lets the tooling quantify over them too. Simulation-first
    modules register a small bounded {e knowledge-view} spec — the
    message skeleton of the protocol, suitable for exact enumeration —
    alongside their full discrete-event implementation. *)

open Hpl_core

(** {1 Parameters} *)

type param = {
  key : string;  (** parameter name, e.g. ["n"] *)
  default : int;
  lo : int;  (** inclusive lower bound *)
  hi : int option;  (** inclusive upper bound, if any *)
  pdoc : string;  (** one-line description *)
}

type values = (string * int) list
(** Resolved parameter values, one binding per declared {!param}. *)

val param : ?lo:int -> ?hi:int -> string -> int -> string -> param
(** [param key default doc] declares an integer parameter; [lo] defaults
    to 1. *)

val get : values -> string -> int
(** Look up a resolved value. Raises [Invalid_argument] on an undeclared
    key — registration bugs, not user errors. *)

(** {1 Static rule profiles}

    Registered specs are opaque OCaml closures; a {!Profile.t} is an
    optional first-order reflection of a protocol's rules — guards as
    conjunctions of interval/difference constraints over local-history
    counters, actions as send/receive/internal intents — that the
    static analyzer ([Hpl_analysis.Dataflow], [hpl flow]) interprets
    without running the spec. A profile is a {e claim} about the
    closure: the flow test suite cross-validates every declared profile
    against enumeration (guard soundness, channel-graph equality), so a
    profile that drifts from its spec fails loudly rather than silently
    misleading the analyzer. *)

module Profile : sig
  type counter =
    | C_len  (** [len history] *)
    | C_sends  (** total sends *)
    | C_recvs  (** total receives *)
    | C_sends_of of string  (** sends with this payload *)
    | C_recvs_of of string  (** receives with this payload *)
    | C_sends_to of int  (** sends to this pid *)
    | C_did of string  (** 0/1: internal event performed *)

  type atom =
    | Between of counter * int * int option
        (** counter ∈ [lo, hi]; [None] means unbounded above.
            [Between (C_did t, 0, Some 0)] encodes ¬did,
            [Between (C_did t, 1, None)] encodes did. *)
    | Diff_le of counter * counter * int  (** [c1 - c2 <= k] *)

  type act = Send of { dst : int; payload : string } | Recv | Do of string

  type rule = { guard : atom list; acts : act list }
  (** Guard atoms are conjoined; a rule with an empty guard is always
      enabled. *)

  type t = rule list array
  (** One rule list per pid, indexed by pid. *)
end

(** {1 The protocol record} *)

type t = {
  name : string;  (** registry key, matches [[a-z0-9-]+] *)
  doc : string;  (** one-line description for [hpl list] *)
  params : param list;  (** positional: [name:v1:v2:…] *)
  spec : values -> Spec.t;  (** the generative system *)
  atoms : values -> (string * Prop.t) list;
      (** named atomic predicates usable in formulas *)
  symmetry : values -> Symmetry.perm list;
      (** generators of a pid-permutation group under which the spec is
          invariant (automorphisms) — declares eligibility for
          [--reduce sym|full] (DESIGN.md §10). The registry test suite
          validates each generator with
          {!Hpl_core.Symmetry.is_automorphism}. *)
  canonical_trace : (values -> Trace.t) option;
      (** a distinguished valid computation, when one is worth naming *)
  suggested_depth : int;  (** sensible enumeration depth bound *)
  fault_scenarios : string list;
      (** fault scenarios (CLI [--faults] syntax) that are meaningful
          for this protocol — shown by [hpl list -v], exercised by the
          registry fault tests *)
  lint_expect : string list;
      (** findings the static analyzer ([hpl lint]) is expected to
          report for this protocol — each entry a rule id (["dead-letter"])
          or rule-at-target (["dead-letter@p0->p1"]). Expected findings
          are annotated in the report and do not fail the lint gate. *)
  profile : (values -> Profile.t) option;
      (** optional static reflection of the spec's rules for [hpl flow]
          (see {!Profile}); [None] means the protocol is opaque to
          abstract interpretation *)
}

val make :
  name:string ->
  doc:string ->
  ?params:param list ->
  ?atoms:(values -> (string * Prop.t) list) ->
  ?symmetry:(values -> Symmetry.perm list) ->
  ?canonical_trace:(values -> Trace.t) ->
  ?suggested_depth:int ->
  ?fault_scenarios:string list ->
  ?lint_expect:string list ->
  ?profile:(values -> Profile.t) ->
  (values -> Spec.t) ->
  t
(** [suggested_depth] defaults to 6, [symmetry], [fault_scenarios] and
    [lint_expect] to empty. Raises [Invalid_argument] on a malformed
    name. *)

val name : t -> string
val doc : t -> string
val params : t -> param list
val suggested_depth : t -> int
val fault_scenarios : t -> string list
val lint_expect : t -> string list

val defaults : t -> values
(** Every parameter at its default. *)

(** {1 Instances — a protocol plus resolved parameters} *)

type instance

val proto : instance -> t
val values : instance -> values

val instantiate : t -> int list -> (instance, string) result
(** Positional parameters; missing ones take their defaults. [Error]
    explains a bound violation or an excess argument. *)

val default_instance : t -> instance
val spec_of : instance -> Spec.t
val atoms_of : instance -> (string * Prop.t) list

val atom_env : instance -> string -> Prop.t option
(** The instance's atoms as a formula environment
    (cf. {!Hpl_core.Formula.eval}). *)

val profile_of : instance -> Profile.t option
(** The declared rule profile at this instance's parameters, if any. *)

val generators_of : instance -> Symmetry.perm list
(** The declared symmetry generators at this instance's parameters. *)

val symmetry_of : instance -> Symmetry.group option
(** The declared symmetry as a materialized group (closure of
    {!generators_of}); [None] when the protocol declares none. Feed to
    {!Hpl_core.Reduction.resolve}. *)

val canonical_trace_of : instance -> Trace.t option
val depth_of : instance -> int

val instance_name : instance -> string
(** Round-trips through {!Registry.parse}: ["token-bus:7"]. *)

(** {1 History and predicate helpers}

    Shared by the registered knowledge-view specs; all operate on a
    process's local history or projection, preserving locality. *)

val sends : Event.t list -> int
val recvs : Event.t list -> int

val sends_of : Event.t list -> string -> int
(** Sends with exactly this payload. *)

val recvs_of : Event.t list -> string -> int
val did : Event.t list -> string -> bool

val did_prop : string -> Pid.t -> string -> Prop.t
(** [did_prop name p tag] — "p performed internal event [tag]"; local
    to [p]. *)

val received_prop : string -> Pid.t -> string -> Prop.t
val sent_prop : string -> Pid.t -> string -> Prop.t

val star_spec :
  n:int ->
  ?quorum:int ->
  ?work:string ->
  request:string ->
  reply:string ->
  finish:string ->
  unit ->
  Spec.t
(** The star skeleton shared by wave/collect protocols: process 0 sends
    [request] to every other process in pid order; each optionally
    performs internal [work], then replies [reply]; after [quorum]
    replies (default: all) the hub performs internal [finish]. Raises
    [Invalid_argument] if [n < 2] or the quorum is out of range. *)

val first_walk : Spec.t -> depth:int -> Trace.t
(** Follow the first enabled event up to [depth] steps — a valid
    computation by construction (the registry test suite checks it is
    found in the enumerated universe). *)

(** {1 The registry} *)

module Registry : sig
  val register : t -> unit
  (** Raises [Invalid_argument] on a duplicate name. Protocols register
      via {!Builtins}; out-of-tree protocols may call this directly. *)

  val find : string -> t option

  val list : unit -> t list
  (** All registered protocols, sorted by name. *)

  val parse : string -> (instance, string) result
  (** One generic parser for the CLI surface: ["name[:v1[:v2…]]"],
      validated against the declared parameters. *)
end
