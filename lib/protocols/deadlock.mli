(** Chandy–Misra–Haas deadlock detection (AND model).

    The same authors' companion algorithm, and another instance of the
    paper's thesis: a blocked process can only {e learn} that it is
    deadlocked through a chain of messages that traverses the very
    cycle it is stuck in. A blocked process sends a probe to every
    process it waits for; blocked receivers forward (once per
    initiator); a probe arriving back at its initiator proves a cycle
    through it.

    Soundness/completeness (verified against graph ground truth): an
    initiator declares deadlock iff it lies on a wait-for cycle. The
    probe that proves it is a process chain around the cycle —
    extracted via {!Hpl_core.Chain} in the tests. *)

type params = {
  n : int;
  wait_for : int -> int list;
      (** static wait-for edges; a process with no outgoing edge is
          active, all others are blocked *)
  seed : int64;
}

val ring_deadlock : n:int -> params
(** Everyone waits for the next process: one big cycle. *)

val chain_no_deadlock : n:int -> params
(** p0 ← p1 ← … ← p(n-1), acyclic: nobody deadlocked. *)

val of_edges : n:int -> (int * int) list -> params

type outcome = {
  trace : Hpl_core.Trace.t;
  declared : bool array;  (** per process: declared itself deadlocked *)
  on_cycle : bool array;  (** ground truth from the wait-for graph *)
  correct : bool;  (** declared = on_cycle pointwise *)
  probes : int;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val declares_tag : string

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
