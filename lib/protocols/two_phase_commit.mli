(** Two-phase commit, and why it blocks.

    The coordinator collects votes and broadcasts the outcome; a
    participant that voted YES and then hears nothing is {e uncertain}:
    both commit and abort are still possible as far as it can tell. The
    folklore theorem — 2PC blocks on coordinator failure — is a
    knowledge statement, and this module states it both ways:

    - {e simulated}: crash the coordinator inside the vulnerability
      window and the YES-voters are stuck (measured as participants
      with no decision at the horizon), while crashes outside the
      window are harmless;
    - {e exact}: on the bounded universe of a miniature 2PC,
      a YES-voted participant that has not heard the outcome neither
      knows "commit" nor knows "abort" ({!uncertainty_is_real}) — and by
      §4.3 it cannot gain that knowledge without a message from
      someone who knows. Acting safely would require knowledge it
      provably lacks.

    Safety (no two processes decide differently) and validity (commit
    only if all voted yes) are checked on every run. *)

(** {1 Simulated} *)

type params = {
  n : int;  (** process 0 coordinates; 1..n-1 participate *)
  no_voters : int list;  (** participants that vote NO *)
  crash_coordinator_at : float option;
  decision_timeout : float;  (** horizon to measure blocking *)
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  decisions : string option array;  (** "commit" / "abort" per process *)
  agreement : bool;  (** no two different decisions *)
  validity : bool;  (** committed only if nobody voted NO *)
  blocked : int;  (** participants without a decision at the horizon *)
  messages : int;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

(** {1 Exact (bounded universe)} *)

val spec : Hpl_core.Spec.t
(** A 3-process miniature: coordinator c (p0), participants a (p1) and
    b (p2); every participant may vote YES or NO; the coordinator
    decides and broadcasts; any message may remain undelivered. *)

val committed : Hpl_core.Prop.t
(** "the coordinator decided commit" (local to p0). *)

val aborted : Hpl_core.Prop.t

val uncertainty_is_real : Hpl_core.Universe.t -> bool
(** Over the given universe of {!spec}: there is a computation where
    p1 has voted YES, the coordinator has decided, and p1 neither knows
    [committed] nor knows [aborted] — the uncertainty window exists and
    the §4.3 corollary applies (only a receive can resolve it). *)

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
