(** The two generals, as a knowledge ladder.

    General A decides to attack and messages B; acknowledgements bounce
    back and forth. Message loss needs no extra machinery in the §2
    model: a computation in which a sent message is simply never
    received is already a valid computation, so every rung of the
    acknowledgement ladder is optional.

    The knowledge content, verified exactly on the bounded universe:
    after [k] successfully delivered messages the chain
    [A knows B knows A knows … (k alternations) … attack] holds and the
    [k+1]-st alternation does not — each additional level of mutual
    knowledge costs one more message (Theorem 5 instantiated) — and
    common knowledge of the attack is never attained (the corollary to
    Lemma 3: it is constant, and it is false initially). *)

val spec : Hpl_core.Spec.t
(** Two processes: A = p0, B = p1. A may decide (internal "decide") and
    then send "attack"; each side acknowledges the latest message it
    received; any message may remain undelivered forever. *)

val attack_decided : Hpl_core.Prop.t
(** "A has decided to attack" — local to A. *)

val knowledge_ladder : Hpl_core.Universe.t -> depth:int -> Hpl_core.Prop.t
(** [knowledge_ladder u ~depth:k] is the alternating chain with [k]
    knowledge operators: [A knows B knows A knows … attack_decided]
    (outermost is A for odd positions from the top; depth 0 is the
    predicate itself; depth 1 is [B knows attack]). *)

val ladder_trace : rounds:int -> Hpl_core.Trace.t
(** The canonical run in which the attack message and [rounds − 1]
    acknowledgements are all delivered. *)

val max_depth_at : Hpl_core.Universe.t -> Hpl_core.Trace.t -> int
(** The largest [k] for which [knowledge_ladder ~depth:k] holds at the
    given computation (bounded by the universe depth). *)

val common_knowledge_never : Hpl_core.Universe.t -> bool
(** CK(attack_decided) is false at every computation of the universe. *)

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
