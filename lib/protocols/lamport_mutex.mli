(** Lamport's timestamp-ordered mutual exclusion (from "Time, Clocks,
    and the Ordering of Events" — the paper's reference \[5\]).

    Each process keeps a scalar clock and a request queue. To enter the
    critical section it timestamps a REQUEST and broadcasts it; it
    enters when its own request is first in its queue (timestamp order,
    process id as tie-break) {e and} it has heard something later from
    every other process (here: an explicit ACK). RELEASE removes the
    request everywhere.

    Knowledge reading: the queue-head condition is exactly "I know no
    one else can have an earlier outstanding request" — scalar clocks
    carry just enough causal information to support that knowledge,
    which is why the algorithm needs the acknowledgements (without
    them, the silence of a process keeps the requester unsure; compare
    §5's tracking impossibility).

    The verifier replays the recorded run: mutual exclusion, and
    FIFO-fairness in timestamp order (requests are served in (clock,
    pid) order). 3(n−1) messages per critical-section entry. *)

type params = {
  n : int;
  rounds : int;  (** each process requests the CS this many times *)
  cs_duration : float;
  think_time : float;
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  entries : int array;
  mutual_exclusion : bool;
  all_rounds_served : bool;
  timestamp_order_respected : bool;
      (** CS entries happen in the (clock, pid) order of their requests *)
  messages : int;
  messages_per_entry : float;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
