(** Token-ring mutual exclusion on the simulator.

    A single token circulates a ring; a process enters its critical
    section only while holding the token. Mutual exclusion is exactly
    the kind of property the paper's knowledge reading illuminates:
    "p is in its critical section" is local to p, and holding the token
    makes p {e know} no other process is in its critical section — the
    bus example of §4.1 turned into a running protocol. The verifier
    replays the trace and checks the exclusion and liveness claims on
    the §2 computation directly. *)

type params = {
  n : int;
  cs_probability : float;  (** chance the holder enters its CS *)
  cs_duration : float;
  pass_delay : float;  (** dwell time before passing the token on *)
  horizon : float;
  seed : int64;
}

val default : params

type outcome = {
  trace : Hpl_core.Trace.t;
  entries : int array;  (** CS entries per process *)
  mutual_exclusion : bool;  (** never two processes in CS *)
  all_served : bool;  (** every process entered at least once *)
  token_passes : int;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val check_exclusion : Hpl_core.Trace.t -> bool
(** Replays CS-enter/CS-exit internal events and checks that the
    sections never overlap (usable on any trace using the same tags). *)

val enter_tag : string
val exit_tag : string

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
