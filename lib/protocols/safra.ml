open Hpl_core
open Hpl_sim

let name = "safra"
let detect_tag = Termination.detect_tag_of name
let token_tag = "safra-token"
let round_timer = "safra-round"

type state = {
  logic : Underlying.Logic.t;
  params : Underlying.params;
  mc : int;  (** work sent − work received *)
  black : bool;
  announced : bool;
}

let send_work sends = List.map (fun (dst, payload) -> Engine.Send (dst, payload)) sends

let next_in_ring params self =
  Pid.of_int ((Pid.to_int self + 1) mod params.Underlying.n)

let init ~round_delay params p =
  let logic = Underlying.Logic.create params p in
  let is_root = Pid.to_int p = params.Underlying.root in
  let logic, sends =
    if is_root then Underlying.Logic.initial_spawns params logic else (logic, [])
  in
  let st =
    { logic; params; mc = List.length sends; black = false; announced = false }
  in
  let actions =
    send_work sends
    @ if is_root then [ Engine.Set_timer (round_delay, round_timer) ] else []
  in
  (st, actions)

let forward_token ~round_delay st ~self ~count ~black_token =
  let is_root = Pid.to_int self = st.params.Underlying.root in
  if is_root then
    if (not black_token) && (not st.black) && count + st.mc = 0 then
      if st.announced then (st, [])
      else ({ st with announced = true }, [ Engine.Log_internal detect_tag ])
    else
      (* failed round: whiten and retry later *)
      ({ st with black = false }, [ Engine.Set_timer (round_delay, round_timer) ])
  else begin
    let count' = count + st.mc in
    let color = if st.black || black_token then 1 else 0 in
    let st = { st with black = false } in
    ( st,
      [
        Engine.Send
          (next_in_ring st.params self, Wire.enc token_tag [ count'; color ]);
      ] )
  end

let on_message ~round_delay st ~self ~src:_ ~payload ~now:_ =
  if Underlying.is_work payload then begin
    let logic, sends = Underlying.Logic.on_work st.params st.logic ~payload in
    let st =
      {
        st with
        logic;
        mc = st.mc + List.length sends - 1;
        black = true;
      }
    in
    (st, send_work sends)
  end
  else
    match Wire.dec payload with
    | Some (tag, [ count; color ]) when String.equal tag token_tag ->
        forward_token ~round_delay st ~self ~count ~black_token:(color = 1)
    | _ -> (st, [])

let on_timer ~round_delay:_ st ~self ~tag ~now:_ =
  if String.equal tag round_timer && not st.announced then begin
    (* root launches a white token carrying its own count at the end of
       the round; the token starts with count 0 from the next node *)
    let dst = next_in_ring st.params self in
    (st, [ Engine.Send (dst, Wire.enc token_tag [ 0; 0 ]) ])
  end
  else (st, [])

let handlers ~round_delay params =
  {
    Engine.init = init ~round_delay params;
    on_message = on_message ~round_delay;
    on_timer = on_timer ~round_delay;
  }

let run_raw ?(config = Engine.default) ?(round_delay = 25.0) params =
  let result =
    Engine.run { config with Engine.n = params.Underlying.n }
      (handlers ~round_delay params)
  in
  (result.Engine.stats, result.Engine.trace)

let run ?config ?round_delay params =
  let _, trace = run_raw ?config ?round_delay params in
  Termination.score ~detector:name ~detect_tag trace

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: one circuit of the ring token — every process
   works, passes the token on, and its return tells p0 the ring is
   quiet *)
let ring_spec ~n =
  if n < 2 then invalid_arg "Safra.ring_spec: need at least two processes";
  Spec.make ~n (fun p history ->
      let i = Pid.to_int p in
      let right = Pid.of_int ((i + 1) mod n) in
      if i = 0 then
        if not (Protocol.did history "worked") then [ Spec.Do "worked" ]
        else if Protocol.sends history = 0 then [ Spec.Send_to (right, "token") ]
        else if Protocol.recvs history = 0 then [ Spec.Recv_any ]
        else if Protocol.did history detect_tag then []
        else [ Spec.Do detect_tag ]
      else if Protocol.recvs history = 0 then [ Spec.Recv_any ]
      else if not (Protocol.did history "worked") then [ Spec.Do "worked" ]
      else if Protocol.sends history = 0 then [ Spec.Send_to (right, "token") ]
      else [])

let protocol =
  Protocol.make ~name:"safra"
    ~doc:"Safra-style ring termination: the token's full circuit detects"
    ~params:[ Protocol.param ~lo:2 "n" 2 "ring size (p0 starts the token)" ]
    ~atoms:(fun _ ->
      [ ("detected", Protocol.did_prop "detected" (Pid.of_int 0) detect_tag) ])
    ~suggested_depth:7
    (fun vs -> ring_spec ~n:(Protocol.get vs "n"))
