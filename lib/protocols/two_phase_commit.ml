open Hpl_core
open Hpl_sim

(* -- simulated ----------------------------------------------------------- *)

type params = {
  n : int;
  no_voters : int list;
  crash_coordinator_at : float option;
  decision_timeout : float;
  seed : int64;
}

let default =
  {
    n = 4;
    no_voters = [];
    crash_coordinator_at = None;
    decision_timeout = 200.0;
    seed = 37L;
  }

let prepare_tag = "2pc-prepare"
let yes_tag = "2pc-yes"
let no_tag = "2pc-no"
let commit_tag = "2pc-commit"
let abort_tag = "2pc-abort"
let decide_commit = "decide-commit"
let decide_abort = "decide-abort"

type state = {
  params : params;
  me : int;
  votes_in : int;
  any_no : bool;
  decision : string option;
}

type outcome = {
  trace : Trace.t;
  decisions : string option array;
  agreement : bool;
  validity : bool;
  blocked : int;
  messages : int;
}

let participants st = List.init (st.params.n - 1) (fun i -> i + 1)

let init params p =
  let me = Pid.to_int p in
  let st = { params; me; votes_in = 0; any_no = false; decision = None } in
  if me = 0 then
    ( st,
      List.map
        (fun i -> Engine.Send (Pid.of_int i, Wire.enc prepare_tag []))
        (List.init (params.n - 1) (fun i -> i + 1)) )
  else (st, [])

let decide st verdict tag_msg log =
  let st = { st with decision = Some verdict } in
  ( st,
    Engine.Log_internal log
    :: List.map
         (fun i -> Engine.Send (Pid.of_int i, Wire.enc tag_msg []))
         (participants st) )

let on_message st ~self:_ ~src ~payload ~now:_ =
  if Wire.is prepare_tag payload then
    let vote =
      if List.mem st.me st.params.no_voters then no_tag else yes_tag
    in
    (st, [ Engine.Send (src, Wire.enc vote []) ])
  else if Wire.is yes_tag payload || Wire.is no_tag payload then begin
    if st.me <> 0 || st.decision <> None then (st, [])
    else begin
      let st =
        {
          st with
          votes_in = st.votes_in + 1;
          any_no = st.any_no || Wire.is no_tag payload;
        }
      in
      if st.votes_in = st.params.n - 1 then
        if st.any_no then decide st "abort" abort_tag decide_abort
        else decide st "commit" commit_tag decide_commit
      else (st, [])
    end
  end
  else if Wire.is commit_tag payload then
    ({ st with decision = Some "commit" }, [ Engine.Log_internal decide_commit ])
  else if Wire.is abort_tag payload then
    ({ st with decision = Some "abort" }, [ Engine.Log_internal decide_abort ])
  else (st, [])

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let config =
    {
      config with
      Engine.max_time = params.decision_timeout;
      crashes =
        (match params.crash_coordinator_at with
        | Some t -> (t, 0) :: config.Engine.crashes
        | None -> config.Engine.crashes);
    }
  in
  let result =
    Engine.run config
      {
        Engine.init = init params;
        on_message;
        on_timer = (fun st ~self:_ ~tag:_ ~now:_ -> (st, []));
      }
  in
  let decisions = Array.map (fun (st : state) -> st.decision) result.Engine.states in
  let distinct =
    Array.to_list decisions
    |> List.filter_map Fun.id
    |> List.sort_uniq String.compare
  in
  let agreement = List.length distinct <= 1 in
  let validity =
    (not (List.mem "commit" distinct)) || params.no_voters = []
  in
  let blocked =
    let count = ref 0 in
    Array.iteri
      (fun i d ->
        if i > 0 && d = None && not result.Engine.crashed.(i) then incr count)
      decisions;
    !count
  in
  {
    trace = result.Engine.trace;
    decisions;
    agreement;
    validity;
    blocked;
    messages = result.Engine.stats.Engine.sent;
  }

(* -- exact miniature ------------------------------------------------------ *)

let c = Pid.of_int 0
let a = Pid.of_int 1
let b = Pid.of_int 2

let vote_of history =
  List.find_map
    (fun e ->
      match e.Event.kind with
      | Event.Send m when String.equal m.Msg.payload "yes" -> Some true
      | Event.Send m when String.equal m.Msg.payload "no" -> Some false
      | _ -> None)
    history

let coord_decided history =
  List.find_map
    (fun e ->
      match e.Event.kind with
      | Event.Internal t when String.equal t decide_commit -> Some "commit"
      | Event.Internal t when String.equal t decide_abort -> Some "abort"
      | _ -> None)
    history

let spec =
  Spec.make ~n:3 (fun p history ->
      if Pid.equal p c then begin
        let yes =
          List.length
            (List.filter
               (fun e ->
                 match e.Event.kind with
                 | Event.Receive m -> String.equal m.Msg.payload "yes"
                 | _ -> false)
               history)
        in
        let no =
          List.exists
            (fun e ->
              match e.Event.kind with
              | Event.Receive m -> String.equal m.Msg.payload "no"
              | _ -> false)
            history
        in
        match coord_decided history with
        | Some verdict ->
            (* broadcast the outcome, one message per participant *)
            let sent =
              List.length (List.filter Event.is_send history)
            in
            if sent < 2 then
              [ Spec.Send_to ((if sent = 0 then a else b), verdict) ]
            else []
        | None ->
            [ Spec.Recv_any ]
            @ (if yes = 2 then [ Spec.Do decide_commit ] else [])
            @ if no then [ Spec.Do decide_abort ] else []
      end
      else begin
        (* participants: vote once (either way), then listen *)
        match vote_of history with
        | None -> [ Spec.Send_to (c, "yes"); Spec.Send_to (c, "no") ]
        | Some _ -> [ Spec.Recv_any ]
      end)

let committed =
  Prop.make "committed" (fun z -> coord_decided (Trace.proj z c) = Some "commit")

let aborted =
  Prop.make "aborted" (fun z -> coord_decided (Trace.proj z c) = Some "abort")

let uncertainty_is_real u =
  let k_commit = Knowledge.knows u (Pset.singleton a) committed in
  let k_abort = Knowledge.knows u (Pset.singleton a) aborted in
  Universe.fold
    (fun _ z acc ->
      acc
      ||
      let a_hist = Trace.proj z a in
      let voted_yes = vote_of a_hist = Some true in
      let heard = List.exists Event.is_receive a_hist in
      let decided = coord_decided (Trace.proj z c) <> None in
      voted_yes && (not heard) && decided
      && (not (Prop.eval k_commit z))
      && not (Prop.eval k_abort z))
    u false

(* -- registry ----------------------------------------------------------- *)

let protocol =
  Protocol.make ~name:"two-phase-commit"
    ~doc:"2PC, coordinator + 2 participants; blocking = unresolvable unknowledge"
    ~atoms:(fun _ -> [ ("committed", committed); ("aborted", aborted) ])
    ~suggested_depth:6
    (fun _ -> spec)
