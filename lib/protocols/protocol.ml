open Hpl_core

(* -- parameters --------------------------------------------------------- *)

type param = {
  key : string;
  default : int;
  lo : int;
  hi : int option;
  pdoc : string;
}

type values = (string * int) list

let param ?(lo = 1) ?hi key default pdoc = { key; default; lo; hi; pdoc }

let get values key =
  match List.assoc_opt key values with
  | Some v -> v
  | None -> invalid_arg ("Protocol.get: unknown parameter " ^ key)

(* -- static rule profiles ------------------------------------------------ *)

(* A reflection shim: registered specs are opaque OCaml closures, so a
   protocol may additionally declare a [Profile.t] — a first-order
   description of its rules over local-history counters — that static
   analysis ([Dataflow]) can interpret without running the spec. The
   profile is a claim about the closure; the flow test suite
   cross-validates it against enumeration (guard soundness, channel
   graph equality), so a drifting profile fails loudly. *)

module Profile = struct
  type counter =
    | C_len
    | C_sends
    | C_recvs
    | C_sends_of of string
    | C_recvs_of of string
    | C_sends_to of int
    | C_did of string

  type atom =
    | Between of counter * int * int option
        (* counter in [lo, hi]; [None] = unbounded above *)
    | Diff_le of counter * counter * int  (* c1 - c2 <= k *)

  type act = Send of { dst : int; payload : string } | Recv | Do of string
  type rule = { guard : atom list; acts : act list }

  type t = rule list array
  (* per-pid rule lists; guard atoms are conjoined *)
end

(* -- the protocol record ------------------------------------------------- *)

type t = {
  name : string;
  doc : string;
  params : param list;
  spec : values -> Spec.t;
  atoms : values -> (string * Prop.t) list;
  symmetry : values -> Symmetry.perm list;
  canonical_trace : (values -> Trace.t) option;
  suggested_depth : int;
  fault_scenarios : string list;
  lint_expect : string list;
  profile : (values -> Profile.t) option;
}

let make ~name ~doc ?(params = []) ?(atoms = fun _ -> [])
    ?(symmetry = fun _ -> []) ?canonical_trace ?(suggested_depth = 6)
    ?(fault_scenarios = []) ?(lint_expect = []) ?profile spec =
  if name = "" then invalid_arg "Protocol.make: empty name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' | '-' -> ()
      | _ -> invalid_arg "Protocol.make: name must match [a-z0-9-]+")
    name;
  {
    name;
    doc;
    params;
    spec;
    atoms;
    symmetry;
    canonical_trace;
    suggested_depth;
    fault_scenarios;
    lint_expect;
    profile;
  }

let name t = t.name
let doc t = t.doc
let params t = t.params
let suggested_depth t = t.suggested_depth
let fault_scenarios t = t.fault_scenarios
let lint_expect t = t.lint_expect
let defaults t = List.map (fun p -> (p.key, p.default)) t.params

(* -- instances ----------------------------------------------------------- *)

type instance = { proto : t; values : values }

let proto i = i.proto
let values i = i.values

let instantiate t args =
  let check p v =
    if v < p.lo then
      Error (Printf.sprintf "%s: %s must be >= %d (got %d)" t.name p.key p.lo v)
    else
      match p.hi with
      | Some hi when v > hi ->
          Error
            (Printf.sprintf "%s: %s must be <= %d (got %d)" t.name p.key hi v)
      | _ -> Ok (p.key, v)
  in
  let rec go ps args acc =
    match (ps, args) with
    | ps, [] -> Ok (List.rev acc @ List.map (fun p -> (p.key, p.default)) ps)
    | [], _ :: _ ->
        Error
          (Printf.sprintf "%s takes at most %d parameter(s)" t.name
             (List.length t.params))
    | p :: ps, v :: args -> (
        match check p v with
        | Ok kv -> go ps args (kv :: acc)
        | Error _ as e -> e)
  in
  match go t.params args [] with
  | Ok values -> Ok { proto = t; values }
  | Error e -> Error e

let default_instance t = { proto = t; values = defaults t }
let spec_of i = i.proto.spec i.values
let atoms_of i = i.proto.atoms i.values
let generators_of i = i.proto.symmetry i.values

let symmetry_of i =
  match generators_of i with
  | [] -> None
  | gens ->
      let n = Spec.n (spec_of i) in
      Some (Symmetry.of_generators ~n gens)
let atom_env i name = List.assoc_opt name (atoms_of i)
let profile_of i = Option.map (fun f -> f i.values) i.proto.profile
let canonical_trace_of i = Option.map (fun f -> f i.values) i.proto.canonical_trace
let depth_of i = i.proto.suggested_depth

let instance_name i =
  match i.proto.params with
  | [] -> i.proto.name
  | ps ->
      i.proto.name
      ^ String.concat ""
          (List.map (fun p -> ":" ^ string_of_int (get i.values p.key)) ps)

(* -- history & predicate helpers (shared by registered specs) ------------ *)

let sends history = List.length (List.filter Event.is_send history)
let recvs history = List.length (List.filter Event.is_receive history)

let sends_of history payload =
  List.length
    (List.filter
       (fun e ->
         match e.Event.kind with
         | Event.Send m -> String.equal m.Msg.payload payload
         | _ -> false)
       history)

let recvs_of history payload =
  List.length
    (List.filter
       (fun e ->
         match e.Event.kind with
         | Event.Receive m -> String.equal m.Msg.payload payload
         | _ -> false)
       history)

let did history tag =
  List.exists
    (fun e ->
      match e.Event.kind with
      | Event.Internal t -> String.equal t tag
      | _ -> false)
    history

let did_prop name p tag =
  Prop.make name (fun z -> did (Trace.proj z p) tag)

let received_prop name p payload =
  Prop.make name (fun z -> recvs_of (Trace.proj z p) payload > 0)

let sent_prop name p payload =
  Prop.make name (fun z -> sends_of (Trace.proj z p) payload > 0)

(* The star skeleton shared by wave/collect protocols (echo, quorum
   writes, several termination detectors): the hub sends [request] to
   every other process in pid order; each optionally performs [work]
   and replies [reply]; once [quorum] replies are in, the hub performs
   [finish]. *)
let star_spec ~n ?quorum ?work ~request ~reply ~finish () =
  if n < 2 then invalid_arg "Protocol.star_spec: need at least two processes";
  let q = match quorum with Some q -> q | None -> n - 1 in
  if q < 1 || q > n - 1 then invalid_arg "Protocol.star_spec: bad quorum";
  let hub = Pid.of_int 0 in
  Spec.make ~n (fun p history ->
      if Pid.equal p hub then begin
        let s = sends history in
        if s < n - 1 then [ Spec.Send_to (Pid.of_int (s + 1), request) ]
        else if recvs history < q then [ Spec.Recv_any ]
        else if did history finish then [ Spec.Recv_any ]
        else [ Spec.Do finish ]
      end
      else if recvs history = 0 then [ Spec.Recv_any ]
      else
        match work with
        | Some w when not (did history w) -> [ Spec.Do w ]
        | _ -> if sends history = 0 then [ Spec.Send_to (hub, reply) ] else [])

let first_walk spec ~depth =
  let rec go z k =
    if k = 0 then z
    else
      match Spec.enabled spec z with
      | [] -> z
      | e :: _ -> go (Trace.append z [ e ]) (k - 1)
  in
  go Trace.empty depth

(* -- registry ------------------------------------------------------------ *)

module Registry = struct
  let table : (string, t) Hashtbl.t = Hashtbl.create 64

  let register t =
    if Hashtbl.mem table t.name then
      invalid_arg ("Protocol.Registry.register: duplicate name " ^ t.name);
    Hashtbl.replace table t.name t

  let find name = Hashtbl.find_opt table name

  let list () =
    Hashtbl.fold (fun _ t acc -> t :: acc) table []
    |> List.sort (fun a b -> String.compare a.name b.name)

  (* Levenshtein with the classic two-row table; names are short, so no
     need for banding or early exit *)
  let edit_distance a b =
    let la = String.length a and lb = String.length b in
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)

  (* the closest registered name, if it is close enough that the input
     was plausibly a typo of it (distance at most 1/3 of its length) *)
  let suggestion name =
    let best =
      List.fold_left
        (fun acc t ->
          let d = edit_distance name t.name in
          match acc with
          | Some (_, bd) when bd <= d -> acc
          | _ -> Some (t.name, d))
        None (list ())
    in
    match best with
    | Some (candidate, d) when d * 3 <= String.length candidate ->
        Printf.sprintf " — did you mean '%s'?" candidate
    | _ -> ""

  let parse s =
    match String.split_on_char ':' s with
    | [] | [ "" ] -> Error "empty protocol name"
    | name :: rest -> (
        match find name with
        | None ->
            Error
              (Printf.sprintf
                 "unknown protocol %S%s (run `hpl list` for names)" name
                 (suggestion name))
        | Some t -> (
            let ints = List.map int_of_string_opt rest in
            match
              List.find_opt Option.is_none ints
            with
            | Some _ ->
                Error
                  (Printf.sprintf "%s: parameters must be integers (got %S)" name
                     s)
            | None -> instantiate t (List.filter_map Fun.id ints)))
end
