(** Chandy–Lamport global snapshots.

    The natural companion application by the same authors: a marker
    algorithm that records a {e consistent} global state of a running
    computation over FIFO channels. In this library it doubles as a
    fusion-theorem showcase — a consistent cut is precisely a
    computation that agrees with the actual run per process but
    interleaves only events whose causal past is inside the cut.

    The app traffic is a simple counter workload; the snapshot records
    each process's counters and the in-channel app messages. The
    verifier replays the trace and checks cut consistency: no app
    message is received inside the cut but sent outside it. *)

type params = {
  n : int;
  app_period : float;  (** every process sends app traffic at this period *)
  snapshot_time : float;  (** when process 0 initiates *)
  horizon : float;
}

val default : params

type recorded = {
  states : int array;  (** per-process recorded send counters *)
  channel_messages : (int * int * int) list;
      (** (src, dst, count) recorded in-channel app messages *)
  cut_positions : int array;  (** per-process recording point in the trace *)
}

type outcome = {
  recorded : recorded;
  consistent : bool;  (** the cut is causally consistent *)
  conservation : bool;
      (** recorded states + channels account exactly for the app
          messages sent before each sender's cut point *)
  trace : Hpl_core.Trace.t;
}

val run : ?config:Hpl_sim.Engine.config -> params -> outcome

val cut_is_consistent :
  n:int -> Hpl_core.Trace.t -> cut_positions:int array -> bool
(** Standalone checker: no {e application} message is received inside
    the cut but sent outside it. Marker messages are excluded — they
    cross the cut by construction. *)

val protocol : Protocol.t
(** Registry entry (see {!Protocol.Registry}); for simulation-first
    modules this carries the bounded knowledge-view spec. *)
