open Hpl_core
open Hpl_sim

type params = {
  n : int;
  broadcasts_per_process : int;
  period : float;
  seed : int64;
}

let default = { n = 4; broadcasts_per_process = 4; period = 5.0; seed = 17L }

let submit_tag = "to-submit"  (* origin -> sequencer: origin, oseq *)
let order_tag = "to-order"  (* sequencer -> all: gseq, origin, oseq *)
let tick_timer = "to-tick"

type state = {
  params : params;
  me : int;
  sent : int;
  next_gseq : int;  (** sequencer: next number to assign *)
  next_deliver : int;  (** everyone: next global number to deliver *)
  buffer : (int * (int * int)) list;  (** gseq -> (origin, oseq) *)
  deliveries : (int * int) list;  (** newest first *)
  gaps_buffered : int;
}

type outcome = {
  trace : Trace.t;
  deliveries : (int * int) list array;
  identical_order : bool;
  all_delivered : bool;
  gaps_buffered : int;
  messages : int;
}

let sequencer = Pid.of_int 0

let rec drain st actions =
  match List.assoc_opt st.next_deliver st.buffer with
  | Some (origin, oseq) ->
      let st =
        {
          st with
          buffer = List.remove_assoc st.next_deliver st.buffer;
          deliveries = (origin, oseq) :: st.deliveries;
          next_deliver = st.next_deliver + 1;
        }
      in
      drain st
        (Engine.Log_internal (Printf.sprintf "to-dlv:%d:%d" origin oseq) :: actions)
  | None -> (st, List.rev actions)

let init params p =
  let me = Pid.to_int p in
  let st =
    {
      params;
      me;
      sent = 0;
      next_gseq = 0;
      next_deliver = 0;
      buffer = [];
      deliveries = [];
      gaps_buffered = 0;
    }
  in
  (st, [ Engine.Set_timer (params.period *. float_of_int (me + 1), tick_timer) ])

let broadcast_order st gseq origin oseq =
  List.map
    (fun i -> Engine.Send (Pid.of_int i, Wire.enc order_tag [ gseq; origin; oseq ]))
    (List.init st.params.n (fun i -> i))

let on_message st ~self ~src:_ ~payload ~now:_ =
  match Wire.dec payload with
  | Some (tag, [ origin; oseq ]) when String.equal tag submit_tag ->
      if Pid.to_int self = 0 then begin
        let gseq = st.next_gseq in
        let st = { st with next_gseq = gseq + 1 } in
        (st, broadcast_order st gseq origin oseq)
      end
      else (st, [])
  | Some (tag, [ gseq; origin; oseq ]) when String.equal tag order_tag ->
      let waited = gseq <> st.next_deliver in
      let st =
        {
          st with
          buffer = (gseq, (origin, oseq)) :: st.buffer;
          gaps_buffered = (st.gaps_buffered + if waited then 1 else 0);
        }
      in
      drain st []
  | _ -> (st, [])

let on_timer st ~self ~tag ~now:_ =
  if String.equal tag tick_timer && st.sent < st.params.broadcasts_per_process
  then begin
    let oseq = st.sent in
    let st = { st with sent = st.sent + 1 } in
    let submit =
      if Pid.to_int self = 0 then begin
        (* the sequencer's own broadcasts are sequenced directly *)
        let gseq = st.next_gseq in
        let st = { st with next_gseq = gseq + 1 } in
        (st, broadcast_order st gseq st.me oseq)
      end
      else (st, [ Engine.Send (sequencer, Wire.enc submit_tag [ st.me; oseq ]) ])
    in
    let st, actions = submit in
    (st, actions @ [ Engine.Set_timer (st.params.period, tick_timer) ])
  end
  else (st, [])

let run ?config params =
  let config =
    match config with
    | Some c -> { c with Engine.n = params.n }
    | None -> { Engine.default with Engine.n = params.n; seed = params.seed }
  in
  let result =
    Engine.run config { Engine.init = init params; on_message; on_timer }
  in
  let deliveries =
    Array.map (fun (st : state) -> List.rev st.deliveries) result.Engine.states
  in
  let identical_order =
    Array.for_all (fun d -> d = deliveries.(0)) deliveries
  in
  let expected = params.n * params.broadcasts_per_process in
  let all_delivered =
    Array.for_all (fun d -> List.length d = expected) deliveries
  in
  {
    trace = result.Engine.trace;
    deliveries;
    identical_order;
    all_delivered;
    gaps_buffered =
      Array.fold_left
        (fun acc (st : state) -> acc + st.gaps_buffered)
        0 result.Engine.states;
    messages = result.Engine.stats.Engine.sent;
  }

(* -- registry ----------------------------------------------------------- *)

(* knowledge-view spec: a sequencer at p0 — publications go to the hub,
   the hub emits the stamped order to every subscriber *)
let sequencer_spec ~n =
  if n < 2 then
    invalid_arg "Total_order.sequencer_spec: need at least two processes";
  let p0 = Pid.of_int 0 in
  Spec.make ~n (fun p history ->
      let i = Pid.to_int p in
      if i = 0 then begin
        let owed =
          (Protocol.recvs_of history "pub" * (n - 1)) - Protocol.sends history
        in
        (if owed > 0 then
           [ Spec.Send_to (Pid.of_int (1 + (Protocol.sends history mod (n - 1))), "ord") ]
         else [])
        @ [ Spec.Recv_any ]
      end
      else
        (if Protocol.sends_of history "pub" = 0 then
           [ Spec.Send_to (p0, "pub") ]
         else [])
        @ [ Spec.Recv_any ])

let protocol =
  Protocol.make ~name:"total-order"
    ~doc:"sequencer broadcast: the hub's stamp makes delivery order common"
    ~params:[ Protocol.param ~lo:2 "n" 3 "processes (p0 sequences)" ]
    ~atoms:(fun vs ->
      let n = Protocol.get vs "n" in
      ("sequenced", Protocol.sent_prop "sequenced" (Pid.of_int 0) "ord")
      :: List.init (n - 1) (fun i ->
             (Printf.sprintf "delivered%d" (i + 1),
              Protocol.received_prop (Printf.sprintf "delivered%d" (i + 1))
                (Pid.of_int (i + 1)) "ord")))
    ~suggested_depth:6
    (fun vs -> sequencer_spec ~n:(Protocol.get vs "n"))
