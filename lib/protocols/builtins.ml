(* Central registration point. Linking this module (any reference to
   [init]) populates the registry with every in-tree protocol; keeping
   the calls here rather than as module-initialization side effects in
   each protocol file makes registration order deterministic and
   independent of the linker's dead-module elimination. *)

let all : Protocol.t list =
  [
    Abd_register.protocol;
    Bully.protocol;
    Causal_broadcast.protocol;
    Chang_roberts.protocol;
    Chatter.protocol;
    Credit.protocol;
    Deadlock.protocol;
    Dijkstra_scholten.protocol;
    Echo.protocol;
    Failure_detector.protocol;
    Gossip.protocol;
    Lamport_mutex.protocol;
    Paxos.protocol;
    Ping_pong.protocol;
    Probe.protocol;
    Ricart_agrawala.protocol;
    Safra.protocol;
    Snapshot.protocol;
    Snapshot_term.protocol;
    Symmetric.ring;
    Symmetric.quorum;
    Symmetric.star_flood;
    Symmetric.mesh;
    Token_bus.protocol;
    Token_ring.protocol;
    Total_order.protocol;
    Tracking.protocol;
    Tracking.notify_protocol;
    Two_generals.protocol;
    Two_phase_commit.protocol;
    Underlying.protocol;
  ]

let () = List.iter Protocol.Registry.register all
let init () = ()
