open Hpl_core

(* Hoisted from bin/hpl.ml: a ring of talkative processes, each willing
   to send right, idle, or receive — maximal branching per step, so a
   stress test for the enumerator and the canonical quotient. *)
let spec ~n =
  if n < 1 then invalid_arg "Chatter.spec: need at least one process";
  Spec.make ~n (fun p history ->
      if List.length history >= 2 then []
      else
        let right = Pid.of_int ((Pid.to_int p + 1) mod n) in
        [ Spec.Send_to (right, "c"); Spec.Do "idle"; Spec.Recv_any ])

let sent =
  Prop.make "sent" (fun z -> Trace.send_count z (Pid.of_int 0) > 0)

let idled =
  Protocol.did_prop "idled" (Pid.of_int 0) "idle"

let protocol =
  Protocol.make ~name:"chatter"
    ~doc:"every process may send right, idle, or receive — branching stress"
    ~params:[ Protocol.param "n" 2 "ring size" ]
    ~atoms:(fun _ -> [ ("sent", sent); ("idled", idled) ])
    ~symmetry:(fun vs ->
      let n = Protocol.get vs "n" in
      if n >= 2 then [ Symmetry.rotation n ] else [])
    ~suggested_depth:4
    ~fault_scenarios:[ "crash-any:1"; "dup:*" ]
    (fun vs -> spec ~n:(Protocol.get vs "n"))
