(** Ping-pong: one request, one reply.

    The two-process warm-up system (formerly inlined in [bin/hpl.ml]):
    p0 sends "ping" to p1, p1 answers "pong". Its universe at depth 4
    is complete and is the first example of knowledge gain via a
    process chain — after the pong is delivered, p0 knows p1 received
    the ping. *)

val spec : Hpl_core.Spec.t

val sent : Hpl_core.Prop.t
(** "p0 sent something" — local to p0. *)

val received : Hpl_core.Prop.t
(** "p1 received something" — local to p1. *)

val round_trip : Hpl_core.Trace.t
(** The canonical full exchange: ping sent and delivered, pong sent and
    delivered. *)

val protocol : Protocol.t
