(** Observability: hierarchical timed spans, monotonic counters,
    gauges, and exporters — the measurement substrate for every other
    layer (enumeration, knowledge evaluation, lint, sim, faults).

    Zero dependencies beyond the stdlib's [unix] clock, and zero cost
    when disabled: every probe compiles to one branch on the single
    {!enabled} flag, so instrumented hot paths stay within noise of
    their uninstrumented selves (the bench [--quick --assert-overhead]
    job holds this to <= 2% on the [enumerate/depth=7] row).

    Probes may fire from multiple domains (the parallel enumeration
    workers record their own spans); the event buffer and the counter
    tables are mutex-guarded, and a span's thread id is its domain id,
    so per-domain timelines come out separated in the Chrome trace.

    Three exporters:
    - {!stats_table} — a human-readable aggregate (per-span-name count,
      total and max duration; counters; gauges),
    - {!stats_json} — the same aggregate as one line of JSON with a
      fixed schema [{"spans":[{"name","count","total_us","max_us"}],
      "counters":[{"name","value"}], "gauges":[{"name","last","max"}]}],
    - {!chrome_trace}/{!write_profile} — the raw event timeline in
      Chrome trace-event format (an array of [{name,ph,ts,pid,tid,...}]
      objects; load it in [about://tracing] or [ui.perfetto.dev]). *)

val enabled : bool ref
(** The master switch every probe branches on. [false] by default; do
    not set directly — use {!enable}/{!disable} so the clock epoch and
    buffers are managed. *)

val enable : unit -> unit
(** Reset all recorded data and start recording. *)

val disable : unit -> unit
(** Stop recording. Recorded data stays readable until {!enable} or
    {!reset}. *)

val reset : unit -> unit
(** Drop every recorded span, counter and gauge; re-anchor the clock. *)

(** {2 Probes} — all no-ops (one branch) when disabled. *)

val span : ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] and records a complete event. [args] is
    only evaluated when enabled, after [f] returns, so argument
    rendering costs nothing on the disabled path. The event is recorded
    even when [f] raises (and the exception is re-raised), so truncated
    enumerations still leave a readable timeline. *)

val instant : ?args:(string * string) list -> string -> unit
(** A point-in-time marker (Chrome [ph:"i"]) — e.g. a budget trigger. *)

val count : string -> int -> unit
(** [count name n] adds [n] to the monotonic counter [name], creating
    it at 0 first. *)

val set_gauge : string -> float -> unit
(** [set_gauge name v] sets gauge [name] to [v], tracking its maximum. *)

(** {2 Readback} — for cross-check tests and bench breakdowns. *)

val counter : string -> int
(** Current value of a counter, 0 if never touched. *)

val gauge_max : string -> float option
val span_count : string -> int
(** Number of recorded spans named [name]. *)

val span_total_us : string -> float
(** Summed duration (µs) of every recorded span named [name]. *)

val span_names : unit -> string list
(** Distinct recorded span names, sorted. *)

(** {2 Exporters} *)

val stats_table : unit -> string
val stats_json : unit -> string
(** One line of JSON; schema documented above. *)

val chrome_trace : unit -> string
(** The full timeline as Chrome trace-event JSON (an array). *)

val write_profile : string -> (unit, string) result
(** Write {!chrome_trace} to a file; [Error] with a one-line message on
    an unwritable path. *)
