(* Spans, counters, gauges, and three exporters. The design constraint
   is the disabled path: every probe is [if not !enabled then f ()] —
   one load and one branch — so instrumentation can live inside the
   enumeration and knowledge hot paths permanently. All recording
   happens behind a mutex because the parallel enumeration workers emit
   spans from their own domains. *)

let enabled = ref false

type ev =
  | Span of {
      name : string;
      ts : float; (* µs since epoch reset *)
      dur : float; (* µs *)
      tid : int;
      args : (string * string) list;
    }
  | Inst of { name : string; ts : float; tid : int; args : (string * string) list }

let mutex = Mutex.create ()
let events : ev list ref = ref [] (* reverse chronological-ish; sorted on export *)
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, (float * float) ref) Hashtbl.t = Hashtbl.create 16
(* gauge name -> (last, max) *)

let epoch = ref 0.0
let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let reset () =
  locked (fun () ->
      events := [];
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      epoch := Unix.gettimeofday ())

let enable () =
  reset ();
  enabled := true

let disable () = enabled := false
let tid () = (Domain.self () :> int)
let push e = locked (fun () -> events := e :: !events)

let span ?args name f =
  if not !enabled then f ()
  else begin
    let t0 = now_us () in
    let record () =
      let dur = now_us () -. t0 in
      let args = match args with None -> [] | Some g -> g () in
      push (Span { name; ts = t0; dur; tid = tid (); args })
    in
    match f () with
    | v ->
        record ();
        v
    | exception e ->
        record ();
        raise e
  end

let instant ?(args = []) name =
  if !enabled then push (Inst { name; ts = now_us (); tid = tid (); args })

let count name n =
  if !enabled then
    locked (fun () ->
        match Hashtbl.find_opt counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.add counters name (ref n))

let set_gauge name v =
  if !enabled then
    locked (fun () ->
        match Hashtbl.find_opt gauges name with
        | Some r ->
            let _, mx = !r in
            r := (v, Float.max mx v)
        | None -> Hashtbl.add gauges name (ref (v, v)))

(* -- readback --------------------------------------------------------- *)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

let gauge_max name =
  locked (fun () ->
      Option.map (fun r -> snd !r) (Hashtbl.find_opt gauges name))

(* per-name span aggregate: (count, total µs, max µs) *)
let span_aggregate () =
  locked (fun () ->
      let tbl : (string, int * float * float) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (function
          | Span { name; dur; _ } ->
              let c, tot, mx =
                Option.value (Hashtbl.find_opt tbl name) ~default:(0, 0.0, 0.0)
              in
              Hashtbl.replace tbl name (c + 1, tot +. dur, Float.max mx dur)
          | Inst _ -> ())
        !events;
      Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let span_count name =
  match List.assoc_opt name (span_aggregate ()) with
  | Some (c, _, _) -> c
  | None -> 0

let span_total_us name =
  match List.assoc_opt name (span_aggregate ()) with
  | Some (_, tot, _) -> tot
  | None -> 0.0

let span_names () = List.map fst (span_aggregate ())

let sorted_counters () =
  locked (fun () ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let sorted_gauges () =
  locked (fun () ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) gauges []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* -- exporters -------------------------------------------------------- *)

let dur_to_string us =
  if us >= 1e6 then Printf.sprintf "%.2f s" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.2f ms" (us /. 1e3)
  else Printf.sprintf "%.1f µs" us

let stats_table () =
  let b = Buffer.create 512 in
  let spans = span_aggregate () in
  Buffer.add_string b
    (Printf.sprintf "%-36s %7s %12s %12s\n" "span" "count" "total" "max");
  List.iter
    (fun (name, (c, tot, mx)) ->
      Buffer.add_string b
        (Printf.sprintf "  %-34s %7d %12s %12s\n" name c (dur_to_string tot)
           (dur_to_string mx)))
    spans;
  let cs = sorted_counters () in
  if cs <> [] then begin
    Buffer.add_string b (Printf.sprintf "%-36s %12s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "  %-34s %12d\n" name v))
      cs
  end;
  let gs = sorted_gauges () in
  if gs <> [] then begin
    Buffer.add_string b (Printf.sprintf "%-36s %12s %12s\n" "gauge" "last" "max");
    List.iter
      (fun (name, (last, mx)) ->
        Buffer.add_string b
          (Printf.sprintf "  %-34s %12.1f %12.1f\n" name last mx))
      gs
  end;
  Buffer.contents b

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON numbers must not be [nan]/[inf]; durations never are, but guard
   anyway so an exporter can't emit unparseable output *)
let num v = if Float.is_finite v then Printf.sprintf "%.1f" v else "0.0"

let stats_json () =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"spans\":[";
  List.iteri
    (fun i (name, (c, tot, mx)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"count\":%d,\"total_us\":%s,\"max_us\":%s}"
           (escape name) c (num tot) (num mx)))
    (span_aggregate ());
  Buffer.add_string b "],\"counters\":[";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"value\":%d}" (escape name) v))
    (sorted_counters ());
  Buffer.add_string b "],\"gauges\":[";
  List.iteri
    (fun i (name, (last, mx)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"last\":%s,\"max\":%s}"
           (escape name) (num last) (num mx)))
    (sorted_gauges ());
  Buffer.add_string b "]}";
  Buffer.contents b

let chrome_args b args =
  if args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
      args;
    Buffer.add_char b '}'
  end

let chrome_trace () =
  let evs = locked (fun () -> List.rev !events) in
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  List.iter
    (fun ev ->
      sep ();
      match ev with
      | Span { name; ts; dur; tid; args } ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d"
               (escape name) (num ts) (num dur) tid);
          chrome_args b args;
          Buffer.add_char b '}'
      | Inst { name; ts; tid; args } ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%s,\"s\":\"t\",\"pid\":1,\"tid\":%d"
               (escape name) (num ts) tid);
          chrome_args b args;
          Buffer.add_char b '}')
    evs;
  (* counters close the timeline as Chrome counter samples *)
  let t_end = now_us () in
  List.iter
    (fun (name, v) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":0,\"args\":{\"value\":%d}}"
           (escape name) (num t_end) v))
    (sorted_counters ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let write_profile path =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      let r =
        match output_string oc (chrome_trace ()) with
        | () -> Ok ()
        | exception Sys_error msg -> Error msg
      in
      close_out_noerr oc;
      r
