(** Fault models as system transformers.

    The paper's sharpest corollaries are about failure: common knowledge
    is constant (§4.2), so over unreliable channels it can never be
    gained — the coordinated-attack impossibility. The base engine only
    models perfect executions; this layer injects faults {e without
    changing the engine}: every fault model is a [Spec.t -> Spec.t]
    transformer in the style of {!Hpl_core.Spec_algebra}, producing an
    ordinary generative spec whose universes stay prefix-closed, so
    {!Hpl_core.Universe.enumerate} and the whole knowledge stack apply
    unmodified.

    {2 Semantics choices}

    - {b Crashes} ({!crash_stop}, {!crash_any}) silence a process: once
      crashed it enables nothing, matching §5's failure model ("the
      process does not send messages after its failure").
      Nondeterministic crashes are made {e visible} as internal
      ["crash"] events so traces record when the failure happened.
      Because a spec rule sees only the process's local history (the
      locality hypothesis behind every knowledge result), a {e global}
      crash budget ("at most k of the n processes fail") is not
      expressible; {!crash_any} instead makes the first [upto] processes
      crash-prone, which bounds failures per computation by [upto] while
      staying local.
    - {b Channel faults} ({!lossy}, {!duplicating}, {!route}) reroute
      each faulty channel through an explicit {e network daemon}
      process — one per channel, pids [n, n+1, …] in channel order. The
      daemon receives the message and nondeterministically forwards it,
      drops it (an internal ["drop:…"] event — losses are visible in
      traces, and universes remain prefix-closed because the drop is
      just one more enabled event), or — on duplicating channels —
      forwards it a second time. Routing is what keeps the epistemics
      honest: a drop event lives on the daemon, not on the sender or
      receiver, so {e neither endpoint can distinguish} a lost message
      from one still in flight — exactly the uncertainty the
      coordinated-attack argument needs. One daemon {e per channel}
      (rather than one shared daemon) matters too: message sequence
      numbers are per-sender, so a shared daemon's forwards would leak
      cross-channel activity into a receiver's local history; with
      per-channel daemons a forward's sequence number reveals only
      prior traffic on that same channel — exactly what the base
      model's sequence numbers already reveal. The transformed
      processes see translated local histories (routed sends and
      forwarded receives are presented to the underlying rule in their
      original form), so protocol code is unaware of the daemons.

    Routed channels double the hop count of a delivery (send→daemon,
    daemon→receiver), so enumeration depth must roughly double to see
    the same protocol progress — and branching multiplies. Pair fault
    scenarios with {!Hpl_core.Universe.budget}. *)

open Hpl_core

val crash_tag : string
(** ["crash"] — the internal-event tag recording a nondeterministic
    crash (same tag the simulation engine uses). *)

val recover_tag : string
(** ["recover"] — the internal-event tag recording a crash-recovery
    (see {!crash_recover}; same tag the simulation engine uses). *)

val crash_stop : pid:Pid.t -> after:int -> Spec.t -> Spec.t
(** [crash_stop ~pid ~after s]: as [s], except that [pid] enables
    nothing once it has performed [after] local events — a scheduled
    crash-stop failure, silent in the trace (the process simply stops).
    Raises [Invalid_argument] if [pid] is outside [s] or [after < 0]. *)

val crash_any : upto:int -> Spec.t -> Spec.t
(** [crash_any ~upto s]: the first [upto] processes are crash-prone —
    whenever such a process could take a step it may instead perform an
    internal {!crash_tag} event, after which it enables nothing. At
    most [upto] processes crash in any computation. A process that
    already enables nothing gains no crash event (an unobservable
    crash), which keeps finite systems finite and makes the transformer
    commute with {!Hpl_core.Spec_algebra.bound_events}. Raises
    [Invalid_argument] unless [0 <= upto <= n]. *)

val crash_recover : pid:Pid.t -> after:int -> upto:int -> Spec.t -> Spec.t
(** [crash_recover ~pid ~after ~upto s]: crash-recovery failures for
    [pid]. Each "life" of the process ends with a visible internal
    {!crash_tag} event once it has performed [after] events since its
    last recovery (the first life counts from the start); while down it
    enables only a visible {!recover_tag} event, after which its rule
    resumes — the underlying rule sees its local history with the fault
    bookkeeping (crash/recover events) filtered out, so protocol code is
    unaware of the failures. State survives recovery (the rule is a
    function of the filtered history, which persists). At most [upto]
    recoveries; after the last one the next crash is final. Raises
    [Invalid_argument] if [pid] is outside [s], [after < 0], or
    [upto < 1]. *)

type channel_fault = { drop : bool; dup : bool }

val route : Spec.t -> ((Pid.t * Pid.t) * channel_fault) list -> Spec.t
(** [route s faults] is [s] with every channel [(src, dst)] listed in
    [faults] redirected through its own fresh network-daemon process;
    daemons take pids [n, n+1, …] in the order channels are listed, so
    the result has [n + length faults] processes. For each routed
    message, in arrival order, the channel's daemon may forward it; if
    the channel has [drop = true] it may instead swallow it with a
    visible internal ["drop:psrc->pdst:payload"] event; if [dup = true]
    it may forward the most recently forwarded message a second time
    (one duplicate per delivery, recognizable at the receiver as a
    second copy of the same original message). Raises
    [Invalid_argument] on an out-of-range or self-loop channel, or a
    duplicate channel entry. *)

val lossy : ?channels:(Pid.t * Pid.t) list -> Spec.t -> Spec.t
(** [lossy s] routes the given channels (default: every ordered pair)
    with [drop] faults: every send on them may nondeterministically be
    swallowed by the daemon. *)

val duplicating : ?channels:(Pid.t * Pid.t) list -> Spec.t -> Spec.t
(** Same, with [dup] faults: every delivery may be repeated once. *)

val view : n:int -> Trace.t -> Trace.t
(** [view ~n z] is the fault-free observation of a routed-universe
    computation [z] ([n] = process count {e before} routing): daemon
    events are erased and routed sends / forwarded receives are
    rewritten to their original form, so predicates written against the
    fault-free system evaluate directly on faulty computations.
    Dropped messages appear as sent-but-never-received; a duplicated
    delivery appears as a second receive of the same message (the view
    is for predicate evaluation, not re-enumeration — it need not be
    intrinsically well-formed). *)

val delivery_channel : n:int -> Event.t -> (int * int) option
(** [delivery_channel ~n e] is the fault-free [(src, dst)] channel of a
    delivery event in a (possibly routed) system with [n] real
    processes: [Some] for a receive by a real process — decoding a
    daemon forward back to its original sender — and [None] for
    anything else, including a daemon's own pickup of a routed message
    (the message is then still inside the network). The Monte Carlo
    sampler uses this to block boundary-crossing deliveries during a
    partition window. *)

(** {1 Scenarios — compact fault descriptions}

    A scenario is a parsed, composable list of fault items with the
    concrete syntax used by the CLI's [--faults] flag:

    {v crash:p1@2,drop:p0->p1,dup:p2->p0,crash-any:1,drop:* v}

    - [crash:pN@K] — {!crash_stop} of process [N] after [K] events
    - [crash-any:K] — {!crash_any} with [upto = K]
    - [drop:pA->pB] / [drop:*] — {!lossy} on one channel / all channels
    - [dup:pA->pB] / [dup:*] — {!duplicating} likewise
    - [partition:pA|pB|…@t0-t1] — a network partition: during the
      window [\[t0, t1)] messages crossing the boundary between the
      listed group and the rest of the system do not get through. The
      three engines interpret the window at their own granularity: the
      sim engine as simulated-time instants (crossing sends are lost),
      the Monte Carlo sampler as global step indices (crossing
      deliveries are delayed until the window closes), and the exact
      engine — which has no global clock — over-approximates the window
      as whole-run lossiness on the crossing channels.
    - [recover:pN@K] — process [N] recovers from its scheduled crash,
      at most [K] times ({!crash_recover}); requires a matching
      [crash:pN@…] item.

    Pids may be written with or without the leading [p]. *)

module Scenario : sig
  type item =
    | Crash_stop of { pid : int; after : int }
    | Crash_any of { upto : int }
    | Drop of channel_pat
    | Dup of channel_pat
    | Partition of { group : int list; t0 : int; t1 : int }
    | Recover of { pid : int; upto : int }

  and channel_pat = All_channels | Channel of int * int

  type t = item list

  val parse : string -> (t, string) result
  (** Parse the comma-separated syntax above. The empty string is an
      error. Pid ranges are checked at {!apply} time (a scenario is
      system-independent until applied). *)

  val to_string : t -> string
  (** Round-trips through {!parse}. *)

  val routes_channels : t -> bool
  (** True when the scenario contains channel faults — including
      partitions, whose crossing channels the exact engine routes — and
      {!apply} will add daemon processes. *)

  val partition_windows : t -> (int * int * int list) list
  (** The scenario's partition items as [(t0, t1, group)] windows, in
      scenario order — what the Monte Carlo sampler consumes (it blocks
      crossing deliveries while the global step index is inside a
      window). *)

  val without_partitions : t -> t
  (** The scenario with partition items removed. The Monte Carlo
      sampler applies this and handles the windows itself, instead of
      the exact engine's whole-run over-approximation. The result may
      be the empty list, which {!apply} treats as the identity. *)

  val validate_channels :
    t -> channels:(int * int) list -> (unit, string) result
  (** [validate_channels t ~channels] checks every explicitly named
      [drop:pA->pB] / [dup:pA->pB] item against the system's actual
      channel list (as integer [src, dst] pairs — extracted by
      [Hpl_analysis.Channel_graph], which sits above this library).
      The error names the spec's real channels. [drop:*]/[dup:*]
      quantify over existing channels and always pass. *)

  val apply : t -> Spec.t -> (Spec.t, string) result
  (** Compose the scenario onto a spec: channel faults first (one
      daemon per channel; a partition contributes its crossing channels
      as lossy — the whole-run over-approximation), then crash
      transformers ([crash:pN@K] with a matching [recover:pN@R] becomes
      {!crash_recover}). [Error] on out-of-range pids or channels for
      this spec, on a partition group that is not a proper nonempty
      subset, or on a [recover:] item without its [crash:]. *)

  val apply_exn : t -> Spec.t -> Spec.t
  (** Raises [Invalid_argument] where {!apply} returns [Error]. *)

  val suggested_depth : t -> int -> int
  (** [suggested_depth t d] scales a fault-free enumeration depth [d]
      for this scenario: routed channels double the hops per delivery,
      crash events consume extra depth. *)

  val view : t -> n:int -> Trace.t -> Trace.t
  (** {!Faults.view} when the scenario routes channels, identity
      otherwise ([n] = process count before the scenario). *)

  val to_sim_config : t -> Hpl_sim.Engine.config -> Hpl_sim.Engine.config
  (** Interpret the same scenario for the random-walk simulation
      engine: [drop:…] becomes per-channel message loss, [dup:…]
      per-channel duplication, [crash:pN@K] a crash after [K] local
      events, [crash-any:K] makes the first [K] processes crash-prone
      with a small per-step crash probability, [partition:…@t0-t1] a
      timed entry in [config.partitions] (window bounds read as
      simulated-time instants), and [recover:pN@K] an entry in
      [config.recoveries]. Probabilistic fields are only raised, never
      lowered, so a config that already injects faults keeps its
      settings. *)
end
