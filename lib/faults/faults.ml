open Hpl_core

let crash_tag = "crash"
let recover_tag = "recover"

let is_crash e =
  match e.Event.kind with
  | Event.Internal t -> String.equal t crash_tag
  | _ -> false

let is_recover e =
  match e.Event.kind with
  | Event.Internal t -> String.equal t recover_tag
  | _ -> false

(* -- crash transformers ------------------------------------------------- *)

let crash_stop ~pid ~after s =
  let n = Spec.n s in
  if Pid.to_int pid < 0 || Pid.to_int pid >= n then
    invalid_arg "Faults.crash_stop: pid outside the system";
  if after < 0 then invalid_arg "Faults.crash_stop: negative event count";
  Spec.make ~n (fun p history ->
      if Pid.equal p pid && List.length history >= after then []
      else Spec.rule_of s p history)

let crash_any ~upto s =
  let n = Spec.n s in
  if upto < 0 || upto > n then
    invalid_arg "Faults.crash_any: upto must be within 0..n";
  Spec.make ~n (fun p history ->
      if Pid.to_int p >= upto then Spec.rule_of s p history
      else if List.exists is_crash history then []
      else
        (* a process that enables nothing gains no crash event: a crash
           of a halted process is unobservable, and leaving it out keeps
           finite systems finite and commutes with [bound_events] *)
        match Spec.rule_of s p history with
        | [] -> []
        | intents -> intents @ [ Spec.Do crash_tag ])

let crash_recover ~pid ~after ~upto s =
  let n = Spec.n s in
  if Pid.to_int pid < 0 || Pid.to_int pid >= n then
    invalid_arg "Faults.crash_recover: pid outside the system";
  if after < 0 then invalid_arg "Faults.crash_recover: negative event count";
  if upto < 1 then invalid_arg "Faults.crash_recover: need at least one recovery";
  let is_fault e = is_crash e || is_recover e in
  Spec.make ~n (fun p history ->
      if not (Pid.equal p pid) then Spec.rule_of s p history
      else
        let crashes = List.length (List.filter is_crash history) in
        let recovers = List.length (List.filter is_recover history) in
        if crashes > recovers then
          (* down: the only thing a crashed process can do is come back
             up — and only while it has recoveries left *)
          if recovers < upto then [ Spec.Do recover_tag ] else []
        else
          (* alive: the crash quota counts protocol events since the
             last recovery (each life gets a fresh quota) *)
          let since_recover =
            List.fold_left
              (fun acc e -> if is_recover e then 0 else acc + 1)
              0 history
          in
          if since_recover >= after then [ Spec.Do crash_tag ]
          else
            (* the underlying rule never sees the fault bookkeeping *)
            Spec.rule_of s p (List.filter (fun e -> not (is_fault e)) history))

(* -- channel routing ----------------------------------------------------- *)

type channel_fault = { drop : bool; dup : bool }

(* Payload encodings. A routed send carries its real destination; a
   forward (or duplicate) carries the original sender and the original
   sequence number, so the receiver-side translation can reconstruct
   the exact fault-free message value — duplicates decode to the same
   original (src, seq), which is how a protocol can notice them. *)

let cut c s =
  match String.index_opt s c with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let enc_routed ~dst payload = Printf.sprintf "R:%d:%s" (Pid.to_int dst) payload

let dec_routed payload =
  if String.length payload >= 2 && payload.[0] = 'R' && payload.[1] = ':' then
    match cut ':' (String.sub payload 2 (String.length payload - 2)) with
    | Some (d, pl) -> (
        match int_of_string_opt d with Some d -> Some (d, pl) | None -> None)
    | None -> None
  else None

let enc_forward ~dup ~src ~seq payload =
  Printf.sprintf "%c:%d:%d:%s"
    (if dup then 'D' else 'F')
    (Pid.to_int src) seq payload

let dec_forward payload =
  if
    String.length payload >= 2
    && (payload.[0] = 'F' || payload.[0] = 'D')
    && payload.[1] = ':'
  then
    match cut ':' (String.sub payload 2 (String.length payload - 2)) with
    | Some (srci, rest) -> (
        match cut ':' rest with
        | Some (seq, pl) -> (
            match (int_of_string_opt srci, int_of_string_opt seq) with
            | Some srci, Some seq -> Some (srci, seq, pl)
            | _ -> None)
        | None -> None)
    | None -> None
  else None

let drop_tag ~src ~dst payload =
  Printf.sprintf "drop:p%d->p%d:%s" (Pid.to_int src) (Pid.to_int dst) payload

let is_drop_tag t = String.length t >= 5 && String.sub t 0 5 = "drop:"

(* Translate one event of a real process's raw history back to its
   fault-free form: a routed send is presented as the original send, a
   forwarded receive as a receive of the original message. [is_daemon]
   recognizes daemon pids. *)
let translate_event ~is_daemon p e =
  match e.Event.kind with
  | Event.Send m when is_daemon m.Msg.dst -> (
      match dec_routed m.Msg.payload with
      | Some (d, pl) ->
          Event.send ~pid:p ~lseq:e.Event.lseq
            (Msg.make ~src:p ~dst:(Pid.of_int d) ~seq:m.Msg.seq ~payload:pl)
      | None -> e)
  | Event.Receive m when is_daemon m.Msg.src -> (
      match dec_forward m.Msg.payload with
      | Some (srci, seq, pl) ->
          Event.receive ~pid:p ~lseq:e.Event.lseq
            (Msg.make ~src:(Pid.of_int srci) ~dst:p ~seq ~payload:pl)
      | None -> e)
  | _ -> e

let route s faults =
  let n = Spec.n s in
  if faults = [] then invalid_arg "Faults.route: empty channel list";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun ((a, b), _) ->
      let ai = Pid.to_int a and bi = Pid.to_int b in
      if ai < 0 || ai >= n || bi < 0 || bi >= n then
        invalid_arg
          (Printf.sprintf "Faults.route: channel p%d->p%d outside the %d-process system"
             ai bi n);
      if ai = bi then
        invalid_arg (Printf.sprintf "Faults.route: self-loop channel p%d->p%d" ai bi);
      if Hashtbl.mem seen (ai, bi) then
        invalid_arg
          (Printf.sprintf "Faults.route: duplicate channel p%d->p%d" ai bi);
      Hashtbl.add seen (ai, bi) ())
    faults;
  let k = List.length faults in
  let chans = Array.of_list faults in
  (* channel (src,dst) -> daemon pid index *)
  let daemon_of = Hashtbl.create 8 in
  Array.iteri
    (fun i ((a, b), _) ->
      Hashtbl.replace daemon_of (Pid.to_int a, Pid.to_int b) (Pid.of_int (n + i)))
    chans;
  let routed src dst = Hashtbl.find_opt daemon_of (Pid.to_int src, Pid.to_int dst) in
  let is_daemon p = Pid.to_int p >= n in
  (* one daemon per channel: receive routed messages, then for each in
     arrival order forward it, drop it (if allowed), or — after a
     forward on a duplicating channel — forward it once more *)
  let daemon_rule ci history =
    let (src, dst), fault = chans.(ci) in
    let queued =
      List.filter_map
        (fun e ->
          match e.Event.kind with
          | Event.Receive m -> (
              match dec_routed m.Msg.payload with
              | Some (_, pl) -> Some (m.Msg.seq, pl)
              | None -> None)
          | _ -> None)
        history
    in
    let handled, dup_candidate =
      List.fold_left
        (fun (h, cand) e ->
          match e.Event.kind with
          | Event.Send m ->
              if String.length m.Msg.payload > 0 && m.Msg.payload.[0] = 'D' then
                (h, None)
              else (h + 1, if fault.dup then Some (List.nth queued h) else None)
          | Event.Internal t when is_drop_tag t -> (h + 1, None)
          | _ -> (h, cand))
        (0, None) history
    in
    let next =
      if handled < List.length queued then begin
        let seq, pl = List.nth queued handled in
        Spec.Send_to (dst, enc_forward ~dup:false ~src ~seq pl)
        ::
        (if fault.drop then [ Spec.Do (drop_tag ~src ~dst pl) ] else [])
      end
      else []
    in
    let dup_intent =
      match dup_candidate with
      | Some (seq, pl) -> [ Spec.Send_to (dst, enc_forward ~dup:true ~src ~seq pl) ]
      | None -> []
    in
    (Spec.Recv_any :: next) @ dup_intent
  in
  let wrap_pred p pred m =
    if is_daemon m.Msg.src then
      match dec_forward m.Msg.payload with
      | Some (srci, seq, pl) ->
          pred (Msg.make ~src:(Pid.of_int srci) ~dst:p ~seq ~payload:pl)
      | None -> false
    else pred m
  in
  Spec.make ~n:(n + k) (fun p history ->
      let pi = Pid.to_int p in
      if pi >= n then begin
        if !Hpl_obs.enabled then Hpl_obs.count "faults.daemon_probes" 1;
        daemon_rule (pi - n) history
      end
      else
        let local = List.map (translate_event ~is_daemon p) history in
        Spec.rule_of s p local
        |> List.map (fun intent ->
               match intent with
               | Spec.Send_to (dst, payload) -> (
                   match routed p dst with
                   | Some daemon -> Spec.Send_to (daemon, enc_routed ~dst payload)
                   | None -> intent)
               | Spec.Recv_from src -> (
                   match routed src p with
                   | Some daemon ->
                       Spec.Recv_if
                         ( Printf.sprintf "from-p%d-routed" (Pid.to_int src),
                           fun m ->
                             Pid.equal m.Msg.src src
                             || Pid.equal m.Msg.src daemon
                                && Option.is_some (dec_forward m.Msg.payload) )
                   | None -> intent)
               | Spec.Recv_if (name, pred) -> Spec.Recv_if (name, wrap_pred p pred)
               | Spec.Recv_any | Spec.Do _ -> intent))

let all_pairs n =
  List.concat
    (List.init n (fun i ->
         List.filter_map
           (fun j -> if i = j then None else Some (Pid.of_int i, Pid.of_int j))
           (List.init n Fun.id)))

let lossy ?channels s =
  let chans = match channels with Some c -> c | None -> all_pairs (Spec.n s) in
  route s (List.map (fun c -> (c, { drop = true; dup = false })) chans)

let duplicating ?channels s =
  let chans = match channels with Some c -> c | None -> all_pairs (Spec.n s) in
  route s (List.map (fun c -> (c, { drop = false; dup = true })) chans)

let view ~n z =
  if !Hpl_obs.enabled then begin
    Hpl_obs.count "faults.view_calls" 1;
    Hpl_obs.count "faults.view_events" (Trace.length z)
  end;
  let is_daemon p = Pid.to_int p >= n in
  Trace.to_list z
  |> List.filter_map (fun e ->
         if is_daemon e.Event.pid then None
         else Some (translate_event ~is_daemon e.Event.pid e))
  |> Trace.of_list

let delivery_channel ~n e =
  match e.Event.kind with
  | Event.Receive m ->
      let src = Pid.to_int m.Msg.src and dst = Pid.to_int m.Msg.dst in
      if dst >= n then None (* daemon pickup: the message is still in the network *)
      else if src >= n then
        (* daemon forward: decode the original sender *)
        (match dec_forward m.Msg.payload with
        | Some (srci, _, _) -> Some (srci, dst)
        | None -> None)
      else Some (src, dst)
  | _ -> None

(* -- scenarios ------------------------------------------------------------ *)

module Scenario = struct
  type item =
    | Crash_stop of { pid : int; after : int }
    | Crash_any of { upto : int }
    | Drop of channel_pat
    | Dup of channel_pat
    | Partition of { group : int list; t0 : int; t1 : int }
    | Recover of { pid : int; upto : int }

  and channel_pat = All_channels | Channel of int * int

  type t = item list

  let parse_pid tok =
    let tok =
      if String.length tok >= 2 && tok.[0] = 'p' then
        String.sub tok 1 (String.length tok - 1)
      else tok
    in
    match int_of_string_opt tok with Some i when i >= 0 -> Some i | _ -> None

  let parse_channel rest =
    if String.equal rest "*" then Some All_channels
    else
      match cut '-' rest with
      | Some (a, b)
        when String.length b >= 1 && b.[0] = '>' ->
          let b = String.sub b 1 (String.length b - 1) in
          (match (parse_pid a, parse_pid b) with
          | Some a, Some b -> Some (Channel (a, b))
          | _ -> None)
      | _ -> None

  let parse_item itm =
    match cut ':' itm with
    | Some ("crash", rest) -> (
        match cut '@' rest with
        | Some (p, k) -> (
            match (parse_pid p, int_of_string_opt k) with
            | Some pid, Some after when after >= 0 ->
                Ok (Crash_stop { pid; after })
            | _ ->
                Error (Printf.sprintf "bad fault item %S (want crash:pN@K)" itm))
        | None -> Error (Printf.sprintf "bad fault item %S (want crash:pN@K)" itm))
    | Some ("crash-any", rest) -> (
        match int_of_string_opt rest with
        | Some k when k >= 0 -> Ok (Crash_any { upto = k })
        | _ -> Error (Printf.sprintf "bad fault item %S (want crash-any:K)" itm))
    | Some ("drop", rest) -> (
        match parse_channel rest with
        | Some pat -> Ok (Drop pat)
        | None ->
            Error (Printf.sprintf "bad fault item %S (want drop:pA->pB or drop:*)" itm))
    | Some ("dup", rest) -> (
        match parse_channel rest with
        | Some pat -> Ok (Dup pat)
        | None ->
            Error (Printf.sprintf "bad fault item %S (want dup:pA->pB or dup:*)" itm))
    | Some ("partition", rest) -> (
        let err () =
          Error
            (Printf.sprintf "bad fault item %S (want partition:pA|pB@t0-t1)" itm)
        in
        match cut '@' rest with
        | Some (grp, win) -> (
            let pids =
              String.split_on_char '|' grp |> List.map String.trim
              |> List.map parse_pid
            in
            match cut '-' win with
            | Some (a, b) -> (
                match (int_of_string_opt a, int_of_string_opt b) with
                | Some t0, Some t1
                  when t0 >= 0 && t1 >= t0 && pids <> []
                       && List.for_all Option.is_some pids ->
                    Ok
                      (Partition
                         { group = List.filter_map Fun.id pids; t0; t1 })
                | _ -> err ())
            | None -> err ())
        | None -> err ())
    | Some ("recover", rest) -> (
        let err () =
          Error
            (Printf.sprintf
               "bad fault item %S (want recover:pN@K with K >= 1 recoveries)" itm)
        in
        match cut '@' rest with
        | Some (p, k) -> (
            match (parse_pid p, int_of_string_opt k) with
            | Some pid, Some upto when upto >= 1 -> Ok (Recover { pid; upto })
            | _ -> err ())
        | None -> err ())
    | _ ->
        Error
          (Printf.sprintf
             "unknown fault item %S (want crash:pN@K, crash-any:K, drop:pA->pB, dup:pA->pB, * for all channels, partition:pA|pB@t0-t1, or recover:pN@K)"
             itm)

  let parse s =
    let items =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun x -> not (String.equal x ""))
    in
    if items = [] then Error "empty fault scenario"
    else
      List.fold_left
        (fun acc itm ->
          match (acc, parse_item itm) with
          | Error _, _ -> acc
          | Ok t, Ok i -> Ok (t @ [ i ])
          | Ok _, Error e -> Error e)
        (Ok []) items

  let pat_to_string = function
    | All_channels -> "*"
    | Channel (a, b) -> Printf.sprintf "p%d->p%d" a b

  let item_to_string = function
    | Crash_stop { pid; after } -> Printf.sprintf "crash:p%d@%d" pid after
    | Crash_any { upto } -> Printf.sprintf "crash-any:%d" upto
    | Drop pat -> "drop:" ^ pat_to_string pat
    | Dup pat -> "dup:" ^ pat_to_string pat
    | Partition { group; t0; t1 } ->
        Printf.sprintf "partition:%s@%d-%d"
          (String.concat "|" (List.map (Printf.sprintf "p%d") group))
          t0 t1
    | Recover { pid; upto } -> Printf.sprintf "recover:p%d@%d" pid upto

  let to_string t = String.concat "," (List.map item_to_string t)

  let routes_channels t =
    List.exists (function Drop _ | Dup _ | Partition _ -> true | _ -> false) t

  let partition_windows t =
    List.filter_map
      (function
        | Partition { group; t0; t1 } -> Some (t0, t1, group) | _ -> None)
      t

  let without_partitions t =
    List.filter (function Partition _ -> false | _ -> true) t

  (* merge every Drop/Dup item into one per-channel fault map, expanding
     [*]; deterministic order: sorted by (src, dst) *)
  let all_ordered_pairs n =
    List.concat
      (List.init n (fun i ->
           List.filter_map
             (fun j -> if i = j then None else Some (i, j))
             (List.init n Fun.id)))

  let crossing_pairs n group =
    List.filter
      (fun (i, j) -> List.mem i group <> List.mem j group)
      (all_ordered_pairs n)

  let channel_faults n t =
    let tbl = Hashtbl.create 8 in
    let add_chans chans set =
      List.iter
        (fun c ->
          let cur =
            Option.value ~default:{ drop = false; dup = false }
              (Hashtbl.find_opt tbl c)
          in
          Hashtbl.replace tbl c (set cur))
        chans
    in
    let add pat set =
      let chans =
        match pat with
        | All_channels -> all_ordered_pairs n
        | Channel (a, b) -> [ (a, b) ]
      in
      add_chans chans set
    in
    List.iter
      (function
        | Drop pat -> add pat (fun f -> { f with drop = true })
        | Dup pat -> add pat (fun f -> { f with dup = true })
        | Partition { group; _ } ->
            (* the exact engine has no global clock, so a partition
               window is over-approximated as whole-run lossiness on the
               boundary-crossing channels; the sim engine and the Monte
               Carlo sampler honor the [t0, t1) window precisely *)
            add_chans (crossing_pairs n group) (fun f -> { f with drop = true })
        | Crash_stop _ | Crash_any _ | Recover _ -> ())
      t;
    Hashtbl.fold (fun c f acc -> (c, f) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

  let validate n t =
    let bad fmt = Printf.ksprintf (fun e -> Error e) fmt in
    List.fold_left
      (fun acc item ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            match item with
            | Crash_stop { pid; _ } when pid >= n ->
                bad "crash:p%d: pid out of range for a %d-process system" pid n
            | Crash_any { upto } when upto > n ->
                bad "crash-any:%d: more processes than the system has (%d)" upto n
            | Drop (Channel (a, b)) | Dup (Channel (a, b)) ->
                if a >= n || b >= n then
                  bad "channel p%d->p%d out of range for a %d-process system" a b n
                else if a = b then bad "channel p%d->p%d is a self-loop" a b
                else Ok ()
            | Partition { group; _ } -> (
                match List.find_opt (fun p -> p >= n) group with
                | Some p ->
                    bad "partition: pid p%d out of range for a %d-process system"
                      p n
                | None ->
                    let distinct = List.sort_uniq Int.compare group in
                    if List.length distinct <> List.length group then
                      bad "partition: duplicate pid in group"
                    else if List.length distinct >= n then
                      bad
                        "partition: the group must leave at least one process \
                         on the other side"
                    else Ok ())
            | Recover { pid; _ } ->
                if pid >= n then
                  bad "recover:p%d: pid out of range for a %d-process system"
                    pid n
                else if
                  not
                    (List.exists
                       (function
                         | Crash_stop { pid = p; _ } -> p = pid | _ -> false)
                       t)
                then
                  bad
                    "recover:p%d: needs a matching crash:p%d@K item (recovery \
                     is from a scheduled crash)"
                    pid pid
                else if
                  List.length
                    (List.filter
                       (function
                         | Recover { pid = p; _ } -> p = pid | _ -> false)
                       t)
                  > 1
                then bad "recover:p%d: duplicate recovery item" pid
                else Ok ()
            | _ -> Ok ()))
      (Ok ()) t

  (* Channel faults must name channels the system actually has: routing
     a never-used channel through a daemon silently changes nothing,
     which always means a typo in the scenario. The channel graph comes
     from the caller (the static analyzer owns extraction; this library
     stays below it in the dependency order). Only explicitly named
     channels are checked — [drop:*]/[dup:*] quantify over whatever
     channels exist, so they are vacuously fine on the rest. *)
  let validate_channels t ~channels =
    let known (a, b) = List.exists (fun c -> c = (a, b)) channels in
    let describe () =
      match channels with
      | [] -> "the spec has no channels at all"
      | cs ->
          "the spec's channels are "
          ^ String.concat ", "
              (List.map (fun (a, b) -> Printf.sprintf "p%d->p%d" a b) cs)
    in
    List.fold_left
      (fun acc item ->
        match (acc, item) with
        | Error _, _ -> acc
        | Ok (), (Drop (Channel (a, b)) | Dup (Channel (a, b)))
          when not (known (a, b)) ->
            Error
              (Printf.sprintf "%s: no such channel in this spec (%s)"
                 (item_to_string item) (describe ()))
        | Ok (), _ -> acc)
      (Ok ()) t

  let apply t s =
    let n = Spec.n s in
    match validate n t with
    | Error _ as e -> e
    | Ok () ->
        let cf =
          channel_faults n t
          |> List.map (fun ((a, b), f) -> ((Pid.of_int a, Pid.of_int b), f))
        in
        (* one network daemon per routed channel *)
        Hpl_obs.count "faults.daemons" (List.length cf);
        let s = if cf = [] then s else route s cf in
        let recover_of pid =
          List.find_map
            (function
              | Recover { pid = p; upto } when p = pid -> Some upto | _ -> None)
            t
        in
        Ok
          (List.fold_left
             (fun s item ->
               match item with
               | Crash_stop { pid; after } -> (
                   match recover_of pid with
                   | Some upto ->
                       crash_recover ~pid:(Pid.of_int pid) ~after ~upto s
                   | None -> crash_stop ~pid:(Pid.of_int pid) ~after s)
               | Crash_any { upto } -> crash_any ~upto s
               | Drop _ | Dup _ | Partition _ | Recover _ -> s)
             s t)

  let apply_exn t s =
    match apply t s with Ok s -> s | Error e -> invalid_arg ("Faults." ^ e)

  let suggested_depth t d =
    let d = if routes_channels t then 2 * d else d in
    d
    + List.fold_left
        (fun acc -> function
          | Crash_any { upto } -> acc + upto
          | Recover { upto; _ } -> acc + (2 * upto)
          | Crash_stop _ | Drop _ | Dup _ | Partition _ -> acc)
        0 t

  let view t ~n z = if routes_channels t then view ~n z else z

  let to_sim_config t (cfg : Hpl_sim.Engine.config) =
    let open Hpl_sim in
    let drops = ref [] and drop_all = ref false in
    let dups = ref [] and dup_all = ref false in
    let crash_after = ref cfg.Engine.crash_after_events in
    let prone = ref cfg.Engine.crash_prone in
    let parts = ref [] in
    let recs = ref [] in
    let any_drop = ref false and any_dup = ref false and any_prone = ref false in
    List.iter
      (function
        | Drop All_channels ->
            any_drop := true;
            drop_all := true
        | Drop (Channel (a, b)) ->
            any_drop := true;
            drops := (a, b) :: !drops
        | Dup All_channels ->
            any_dup := true;
            dup_all := true
        | Dup (Channel (a, b)) ->
            any_dup := true;
            dups := (a, b) :: !dups
        | Crash_stop { pid; after } -> crash_after := (pid, after) :: !crash_after
        | Crash_any { upto } ->
            any_prone := true;
            prone := List.init upto Fun.id @ !prone
        | Partition { group; t0; t1 } ->
            (* scenario window bounds are interpreted as simulated-time
               instants here (the sim clock), as step indices in the mc
               sampler *)
            parts := (float_of_int t0, float_of_int t1, group) :: !parts
        | Recover { pid; upto } -> recs := (pid, upto) :: !recs)
      t;
    {
      cfg with
      Engine.drop_prob =
        (if !any_drop then Stdlib.max cfg.Engine.drop_prob 0.25
         else cfg.Engine.drop_prob);
      drop_channels =
        (if !drop_all then [] else List.rev !drops @ cfg.Engine.drop_channels);
      dup_prob =
        (if !any_dup then Stdlib.max cfg.Engine.dup_prob 0.25
         else cfg.Engine.dup_prob);
      dup_channels =
        (if !dup_all then [] else List.rev !dups @ cfg.Engine.dup_channels);
      partitions = cfg.Engine.partitions @ List.rev !parts;
      crash_after_events = !crash_after;
      crash_prone = List.sort_uniq Int.compare !prone;
      crash_prob =
        (if !any_prone then Stdlib.max cfg.Engine.crash_prob 0.05
         else cfg.Engine.crash_prob);
      recoveries = cfg.Engine.recoveries @ List.rev !recs;
    }
end
