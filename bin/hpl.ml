(* hpl — explore "How Processes Learn" systems from the command line.

   Subcommands:
     list         show every registered protocol
     enumerate    enumerate a registered protocol's computations
     diagram      emit the isomorphism diagram of a universe as DOT
     knows        evaluate knowledge along the canonical run of a system
     extent       count the computations where one named atom holds
     serve        run the cached knowledge-query daemon (JSON over socket/stdio)
     flow         abstractly interpret a protocol's rules (dead guards, POR)
     fuzz         push generated .hpl specs through the whole pipeline
     termination  run the §5 termination-detector comparison
     heartbeat    run the §5 heartbeat failure detector
     gossip       run the rumor-spreading simulation
     snapshot     take a Chandy–Lamport snapshot of a running system

   Universe-driven subcommands take the protocol either from the
   registry (-s name[:v1...]) or from a .hpl spec file
   (-f path[:v1...]); both produce the same Protocol.instance, so
   --depth/--faults/--reduce/--stats behave identically. *)
open Cmdliner
open Hpl_core
open Hpl_faults
open Hpl_protocols
open Hpl_analysis
module Mc = Hpl_mc.Mc

(* Exit codes: 0 ok; 1 property violated; 2 bad arguments; 3 the
   enumeration budget truncated the universe. *)
let exit_violated = 1
let exit_usage = 2
let exit_truncated = 3

(* Bad [-s]/[--depth]/[--faults]/budget arguments die with one line on
   stderr and exit 2 — which is why those flags are parsed here as
   strings rather than through [Arg.conv] (whose failures exit with
   cmdliner's generic CLI error code). *)
let die_usage fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("hpl: " ^ m);
      exit exit_usage)
    fmt

(* -- protocol selection ------------------------------------------------ *)

(* Every protocol comes from the registry: one generic [name[:v1[:v2]]]
   parser replaces the old hardcoded system variant. *)
let () = Builtins.init ()

let proto_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "system" ] ~docv:"PROTOCOL"
        ~doc:
          "Registered protocol, as $(b,name[:v1[:v2...]]) with positional \
           integer parameters, e.g. $(b,token-bus:7). Run $(b,hpl list) for \
           the full registry. Default: $(b,ping-pong).")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:
          "Load the protocol from a $(b,.hpl) spec file instead of the \
           registry, as $(b,path[:v1[:v2...]]) with positional integer \
           parameters, e.g. $(b,corpus/specs/ring.hpl:4). Mutually \
           exclusive with $(b,-s).")

(* Request resolution and answer rendering are shared with the [serve]
   daemon: [Hpl_serve.Query] owns them (conformance by construction —
   see DESIGN.md §14), and this layer only turns [Error] results into
   exit-2 diagnostics. *)
module Query = Hpl_serve.Query

let die = function Ok v -> v | Error m -> die_usage "%s" m

(* [-s] and [-f] are two sources for the same thing: a loaded spec flows
   through enumeration, knowledge, checking, linting and reduction as an
   ordinary instance. The returned [loaded] AST (for [-f] specs) is what
   the flow analyzer reads — compiled rule closures are opaque. *)
let resolve_proto proto_str file_str =
  die (Query.resolve_proto ?proto:proto_str ?file:file_str ())

let depth_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "depth" ] ~docv:"DEPTH"
        ~doc:"Enumeration depth bound (default: the protocol's suggested depth).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SCENARIO"
        ~doc:
          "Fault scenario applied to the system before enumeration, e.g. \
           $(b,crash:p1@2,drop:p0->p1) or $(b,drop:*). Items: \
           $(b,crash:pN@K), $(b,crash-any:K), $(b,drop:pA->pB), \
           $(b,dup:pA->pB).")

let max_states_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "max-states" ] ~docv:"N"
        ~doc:
          "Stop enumerating after N stored computations (graceful \
           truncation, exit code 3).")

let max_seconds_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "max-seconds" ] ~docv:"S"
        ~doc:"Stop enumerating after S seconds of CPU time (exit code 3).")

(* Everything a universe-driven subcommand needs, resolved from the raw
   string arguments (with exit-2 diagnostics on bad input) — the same
   [Query.setup] the server resolves per request. *)
let resolve proto file depth faults max_states max_seconds =
  die (Query.resolve ?proto ?file ?depth ?faults ?max_states ?max_seconds ())

(* -- observability flags ----------------------------------------------- *)

(* Shared by every instrumented subcommand: [--stats] appends the
   aggregate table, [--stats-json] appends one line of JSON,
   [--profile FILE] writes the Chrome trace-event timeline. Any of the
   three enables recording; otherwise every probe stays a single
   disabled-flag branch. *)
type obs_opts = { stats : bool; stats_json : bool; profile : string option }

let obs_term =
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print an observability summary (spans, counters, gauges).")
  in
  let stats_json =
    Arg.(
      value & flag
      & info [ "stats-json" ]
          ~doc:"Print the observability summary as one line of JSON.")
  in
  let profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event profile (load it in \
             about://tracing or ui.perfetto.dev).")
  in
  Term.(
    const (fun stats stats_json profile -> { stats; stats_json; profile })
    $ stats $ stats_json $ profile)

let obs_setup o =
  if o.stats || o.stats_json || o.profile <> None then Hpl_obs.enable ()

(* Emit before any exit path so --stats/--profile survive exit 1/3. *)
let obs_emit o =
  if o.stats then print_string (Hpl_obs.stats_table ());
  if o.stats_json then print_endline (Hpl_obs.stats_json ());
  match o.profile with
  | None -> ()
  | Some path -> (
      match Hpl_obs.write_profile path with
      | Ok () -> ()
      | Error e -> die_usage "--profile: %s" e)

(* Report a truncated universe on stderr and exit 3 — after the
   subcommand has printed what it could (graceful degradation). *)
let exit_on_truncation u =
  match Universe.status u with
  | Universe.Complete -> ()
  | Universe.Truncated r ->
      Printf.eprintf "hpl: enumeration truncated: %s\n"
        (Universe.reason_to_string r);
      exit exit_truncated

let mode_arg =
  let mode_of_string = function
    | "full" -> Ok `Full
    | "canonical" -> Ok `Canonical
    | _ -> Error (`Msg "mode is 'full' or 'canonical'")
  in
  let mode_conv =
    Arg.conv
      ( mode_of_string,
        fun fmt m ->
          Format.pp_print_string fmt
            (match m with `Full -> "full" | `Canonical -> "canonical") )
  in
  Arg.(
    value
    & opt mode_conv `Canonical
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Enumeration mode: 'full' (all interleavings) or 'canonical'.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:"Worker domains for parallel enumeration (results are deterministic).")

let reduce_arg =
  Arg.(
    value & opt string "none"
    & info [ "reduce" ] ~docv:"R"
        ~doc:
          "Reduction layer (DESIGN.md §10): 'none', 'por' (partial-order — \
           bit-identical universe, computed faster), 'sym' (symmetry \
           quotient; requires a protocol with declared generators, see \
           $(b,hpl list -v)), or 'full' (both).")

let resolve_reduce st ~mode ?indep reduce_str =
  die (Query.resolve_reduce st ~mode ?indep reduce_str)

(* Print a [Query.outcome] the way the CLI always has: stdout bytes,
   observability output, stderr bytes, exit code. Usage errors (exit 2)
   skip the observability report, matching the historical die_usage
   paths. *)
let emit_outcome obs (o : Query.outcome) =
  print_string o.Query.out;
  if o.Query.code <> exit_usage then obs_emit obs;
  if o.Query.err <> "" then prerr_string o.Query.err;
  if o.Query.code <> 0 then exit o.Query.code

(* -- enumerate ---------------------------------------------------------- *)

let enumerate proto file depth faults max_states max_seconds mode domains
    reduce verbose obs =
  obs_setup obs;
  let st = resolve proto file depth faults max_states max_seconds in
  (* enumerate is the one subcommand that attaches the static
     independence relation to a por reduction (~indep:true) *)
  let reduce = resolve_reduce st ~mode ~indep:true reduce in
  let u = Query.enumerate ~mode ~domains st ~reduce in
  let o = Query.run_stats u in
  print_string o.Query.out;
  if verbose then
    Universe.iter (fun i z -> Format.printf "%4d: %a@." i Trace.pp z) u;
  obs_emit obs;
  if o.Query.err <> "" then prerr_string o.Query.err;
  if o.Query.code <> 0 then exit o.Query.code

let enumerate_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every computation.")
  in
  Cmd.v
    (Cmd.info "enumerate" ~doc:"Enumerate a protocol's bounded computation universe")
    Term.(
      const enumerate $ proto_arg $ file_arg $ depth_arg $ faults_arg
      $ max_states_arg $ max_seconds_arg $ mode_arg $ domains_arg $ reduce_arg
      $ verbose $ obs_term)

(* -- diagram ------------------------------------------------------------- *)

let diagram proto file depth faults max_states max_seconds mode reduce limit =
  let st = resolve proto file depth faults max_states max_seconds in
  let reduce = resolve_reduce st ~mode reduce in
  let u = Query.enumerate ~mode st ~reduce in
  let size = min limit (Universe.size u) in
  let named =
    Universe.fold
      (fun i z acc -> if i < size then (string_of_int i, z) :: acc else acc)
      u []
    |> List.rev
  in
  let dg =
    Iso_diagram.of_computations ~all:(Spec.all (Universe.spec u)) named
  in
  print_string (Iso_diagram.to_dot dg);
  exit_on_truncation u

let diagram_cmd =
  let limit =
    Arg.(
      value & opt int 16
      & info [ "limit" ] ~docv:"N" ~doc:"Cap on diagram vertices.")
  in
  Cmd.v
    (Cmd.info "diagram" ~doc:"Emit the isomorphism diagram as Graphviz DOT")
    Term.(
      const diagram $ proto_arg $ file_arg $ depth_arg $ faults_arg
      $ max_states_arg $ max_seconds_arg $ mode_arg $ reduce_arg $ limit)

(* -- knows ---------------------------------------------------------------- *)

let knows proto file depth faults max_states max_seconds reduce obs =
  obs_setup obs;
  let st = resolve proto file depth faults max_states max_seconds in
  let reduce = resolve_reduce st ~mode:`Canonical reduce in
  let u = Query.enumerate st ~reduce in
  emit_outcome obs (Query.run_knows st u)

let knows_cmd =
  Cmd.v
    (Cmd.info "knows" ~doc:"Summarize who knows what across a universe")
    Term.(
      const knows $ proto_arg $ file_arg $ depth_arg $ faults_arg
      $ max_states_arg $ max_seconds_arg $ reduce_arg $ obs_term)

(* -- extent --------------------------------------------------------------- *)

(* The smallest knowledge query: in how many stored computations does
   one named atom hold? Exists chiefly so the serve conformance battery
   can exercise the server's extent op against a CLI twin. *)
let extent proto file depth faults max_states max_seconds reduce atom obs =
  obs_setup obs;
  let st = resolve proto file depth faults max_states max_seconds in
  let reduce = resolve_reduce st ~mode:`Canonical reduce in
  let u = Query.enumerate st ~reduce in
  emit_outcome obs (Query.run_extent st u ~atom)

let extent_cmd =
  let atom =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ATOM"
          ~doc:"Registered atom name (run $(b,hpl list -v) for the atoms).")
  in
  Cmd.v
    (Cmd.info "extent"
       ~doc:"Count the computations of a universe where one named atom holds")
    Term.(
      const extent $ proto_arg $ file_arg $ depth_arg $ faults_arg
      $ max_states_arg $ max_seconds_arg $ reduce_arg $ atom $ obs_term)

(* -- termination ------------------------------------------------------------ *)

let termination budget n fanout seed dump obs =
  obs_setup obs;
  let params =
    { Underlying.default with n; budget; fanout; seed = Int64.of_int seed }
  in
  let config = { Hpl_sim.Engine.default with seed = Int64.of_int seed } in
  Printf.printf "%s\n" Termination.row_header;
  List.iter
    (fun r -> Printf.printf "%s\n" (Termination.report_row r))
    [
      Dijkstra_scholten.run ~config params;
      Credit.run ~config params;
      Safra.run ~config ~round_delay:2.0 params;
      Snapshot_term.run ~config ~attempt_delay:3.0 params;
      Probe.run ~config ~wave_delay:2.0 ~mode:`Four_counter params;
      Probe.run ~config ~wave_delay:2.0 ~mode:`Naive params;
    ];
  (match dump with
  | None -> ()
  | Some path ->
      let _, z = Dijkstra_scholten.run_raw ~config params in
      Trace_io.save path z;
      Printf.printf "DS run saved to %s\n" path);
  obs_emit obs

let termination_cmd =
  let budget =
    Arg.(value & opt int 100 & info [ "budget" ] ~doc:"Underlying message budget.")
  in
  let n = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Number of processes.") in
  let fanout = Arg.(value & opt int 3 & info [ "fanout" ] ~doc:"Max spawns per delivery.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  let dump =
    Arg.(
      value & opt (some string) None
      & info [ "dump" ] ~docv:"FILE" ~doc:"Save the DS run's trace for 'hpl analyze'.")
  in
  Cmd.v
    (Cmd.info "termination"
       ~doc:"Compare termination detectors on a diffusing workload (§5)")
    Term.(const termination $ budget $ n $ fanout $ seed $ dump $ obs_term)

(* -- heartbeat ---------------------------------------------------------------- *)

let heartbeat timeout crash =
  let params =
    {
      Failure_detector.default with
      timeout;
      crash_time = (if crash < 0.0 then None else Some crash);
    }
  in
  let o = Failure_detector.run params in
  Printf.printf "false suspicions: %d\nmissed crashes:  %d\ndetection time:  %s\n"
    o.Failure_detector.false_suspicions o.Failure_detector.missed
    (match o.Failure_detector.detection_time with
    | Some t -> Printf.sprintf "%.1f" t
    | None -> "-")

let heartbeat_cmd =
  let timeout =
    Arg.(value & opt float 20.0 & info [ "timeout" ] ~doc:"Suspicion timeout.")
  in
  let crash =
    Arg.(
      value & opt float 100.0
      & info [ "crash-at" ] ~doc:"Crash injection time (negative: no crash).")
  in
  Cmd.v
    (Cmd.info "heartbeat" ~doc:"Run the timeout-based failure detector (§5)")
    Term.(const heartbeat $ timeout $ crash)

(* -- gossip -------------------------------------------------------------------- *)

let gossip n seed mode obs =
  obs_setup obs;
  let mode =
    match mode with
    | "pull" -> Gossip.Pull
    | "push-pull" -> Gossip.Push_pull
    | _ -> Gossip.Push
  in
  let o = Gossip.run { Gossip.default with n; mode; seed = Int64.of_int seed } in
  Printf.printf "all informed: %b  messages: %d\n" o.Gossip.all_informed
    o.Gossip.messages;
  Array.iteri
    (fun i t ->
      Printf.printf "  p%-3d informed at %s\n" i
        (match t with Some t -> Printf.sprintf "%.1f" t | None -> "never"))
    o.Gossip.informed_time;
  Printf.printf "everyone-knows-everyone-knows at: %s\n"
    (match o.Gossip.depth2_complete_time with
    | Some t -> Printf.sprintf "%.1f" t
    | None -> "-");
  obs_emit obs

let gossip_cmd =
  let n = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Number of processes.") in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Random seed.") in
  let mode =
    Arg.(value & opt string "push" & info [ "mode" ] ~doc:"push, pull, or push-pull.")
  in
  Cmd.v
    (Cmd.info "gossip" ~doc:"Run the rumor-spreading simulation")
    Term.(const gossip $ n $ seed $ mode $ obs_term)

(* -- analyze --------------------------------------------------------------------- *)

let analyze path nprocs =
  match Trace_io.load path with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
  | Ok z ->
      let n =
        match nprocs with
        | Some n -> n
        | None ->
            (* infer: one past the largest pid appearing *)
            1
            + List.fold_left
                (fun m e -> max m (Pid.to_int e.Event.pid))
                0 (Trace.to_list z)
      in
      Printf.printf "processes:     %d\n" n;
      Format.printf "%a@." Trace_stats.pp (Trace_stats.compute ~n z);
      Printf.printf "fifo channels: %b\n" (Hpl_clocks.Causal_order.fifo_per_channel z);
      Printf.printf "causal order:  %b\n"
        (Hpl_clocks.Causal_order.delivers_causally ~n z);
      if Trace.length z <= 14 then
        Printf.printf "consistent cuts: %d\n" (Cut.count_consistent ~n z)
      else Printf.printf "consistent cuts: (trace too long to enumerate)\n"

let analyze_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  let nprocs =
    Arg.(value & opt (some int) None & info [ "n" ] ~doc:"Process count (inferred if omitted).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyze a saved trace: causality, channels, cuts")
    Term.(const analyze $ path $ nprocs)

(* -- deadlock -------------------------------------------------------------------- *)

let deadlock_cmd =
  let shape =
    Arg.(
      value & opt string "ring"
      & info [ "shape" ] ~doc:"Wait-for graph: 'ring', 'chain', or 'partial'.")
  in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of processes.") in
  let run shape n =
    let params =
      match shape with
      | "chain" -> Deadlock.chain_no_deadlock ~n
      | "partial" -> Deadlock.of_edges ~n [ (0, 1); (1, 2); (2, 1) ]
      | _ -> Deadlock.ring_deadlock ~n
    in
    let o = Deadlock.run params in
    Array.iteri
      (fun i d -> Printf.printf "p%d: %s\n" i (if d then "deadlocked" else "ok"))
      o.Deadlock.declared;
    Printf.printf "matches wait-for-graph ground truth: %b (%d probes)\n"
      o.Deadlock.correct o.Deadlock.probes
  in
  Cmd.v
    (Cmd.info "deadlock" ~doc:"Run Chandy-Misra-Haas deadlock detection")
    Term.(const run $ shape $ n)

(* -- mutex ----------------------------------------------------------------------- *)

let mutex_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of processes.") in
  let rounds = Arg.(value & opt int 3 & info [ "rounds" ] ~doc:"CS entries per process.") in
  let run n rounds =
    let o = Lamport_mutex.run { Lamport_mutex.default with n; rounds } in
    Printf.printf
      "mutual exclusion: %b\nall rounds served: %b\ntimestamp order: %b\nmessages/entry: %.1f (theory %d)\n"
      o.Lamport_mutex.mutual_exclusion o.Lamport_mutex.all_rounds_served
      o.Lamport_mutex.timestamp_order_respected o.Lamport_mutex.messages_per_entry
      (3 * (n - 1))
  in
  Cmd.v
    (Cmd.info "mutex" ~doc:"Run Lamport's timestamp mutual exclusion")
    Term.(const run $ n $ rounds)

(* -- election --------------------------------------------------------------------- *)

let election_cmd =
  let n = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Ring size.") in
  let seed = Arg.(value & opt int 19 & info [ "seed" ] ~doc:"Id shuffle seed.") in
  let run n seed =
    let o = Chang_roberts.run { Chang_roberts.default with n; seed = Int64.of_int seed } in
    Printf.printf "leader: %s\nagreed: %b\nelection messages: %d (best %d, worst %d)\n"
      (match o.Chang_roberts.leader with Some l -> "p" ^ string_of_int l | None -> "-")
      o.Chang_roberts.agreed o.Chang_roberts.election_messages
      ((2 * n) - 1)
      (n * (n + 1) / 2)
  in
  Cmd.v
    (Cmd.info "election" ~doc:"Run Chang-Roberts leader election")
    Term.(const run $ n $ seed)

(* -- knew (post-mortem knowledge on a trace file) ----------------------------------- *)

let knew path nprocs who atom =
  match Trace_io.load path with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
  | Ok z ->
      let n =
        match nprocs with
        | Some n -> n
        | None ->
            1
            + List.fold_left
                (fun m e -> max m (Pid.to_int e.Event.pid))
                0 (Trace.to_list z)
      in
      if Trace.length z > 16 then begin
        Printf.eprintf
          "trace has %d events; replay universes are exponential — use a run of ≤ 16 events\n"
          (Trace.length z);
        exit 1
      end;
      let b =
        match String.split_on_char ':' atom with
        | [ "acted"; p ] ->
            let p = int_of_string p in
            Prop.make atom (fun c -> Trace.local_length c (Pid.of_int p) > 0)
        | [ "sent"; p ] ->
            let p = int_of_string p in
            Prop.make atom (fun c -> Trace.send_count c (Pid.of_int p) > 0)
        | [ "received"; p ] ->
            let p = int_of_string p in
            Prop.make atom (fun c ->
                List.exists Event.is_receive (Trace.proj c (Pid.of_int p)))
        | _ ->
            Printf.eprintf "unknown atom %S (use acted:N, sent:N, received:N)\n" atom;
            exit 1
      in
      let ps = Pset.singleton (Pid.of_int who) in
      (match Replay.knew_at ~n z ps b with
      | Some k when k < 0 ->
          Printf.printf "p%d knew %S before any event\n" who atom
      | Some k ->
          Format.printf "p%d first knew %S after event %d: %a@." who atom k
            Event.pp (Trace.nth z k)
      | None -> Printf.printf "p%d never knew %S during this run\n" who atom)

let knew_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  let nprocs =
    Arg.(value & opt (some int) None & info [ "n" ] ~doc:"Process count (inferred if omitted).")
  in
  let who =
    Arg.(value & opt int 1 & info [ "who" ] ~doc:"Observer process index.")
  in
  let atom =
    Arg.(
      value & opt string "sent:0"
      & info [ "fact" ] ~doc:"Fact: acted:N, sent:N, or received:N.")
  in
  Cmd.v
    (Cmd.info "knew"
       ~doc:"When could a process first know a fact, given a recorded run?")
    Term.(const knew $ path $ nprocs $ who $ atom)

(* -- consensus / commit -------------------------------------------------------------- *)

let paxos_cmd =
  let proposers =
    Arg.(value & opt int 2 & info [ "proposers" ] ~doc:"Contending proposers.")
  in
  let seed = Arg.(value & opt int 53 & info [ "seed" ] ~doc:"Random seed.") in
  let run proposers seed =
    let o = Paxos.run { Paxos.default with proposers; seed = Int64.of_int seed } in
    Printf.printf "agreement: %b\nvalidity: %b\ndecided: %b\nballots: %d\nmessages: %d\n"
      o.Paxos.agreement o.Paxos.validity o.Paxos.any_decision o.Paxos.ballots_started
      o.Paxos.messages
  in
  Cmd.v
    (Cmd.info "paxos" ~doc:"Run single-decree Paxos")
    Term.(const run $ proposers $ seed)

let commit_cmd =
  let crash =
    Arg.(
      value & opt float (-1.0)
      & info [ "crash-at" ] ~doc:"Crash the coordinator (negative: never).")
  in
  let no_voters =
    Arg.(value & opt (list int) [] & info [ "no" ] ~doc:"Participants voting NO.")
  in
  let run crash no_voters =
    let o =
      Two_phase_commit.run
        {
          Two_phase_commit.default with
          no_voters;
          crash_coordinator_at = (if crash < 0.0 then None else Some crash);
        }
    in
    Array.iteri
      (fun i d ->
        Printf.printf "p%d: %s\n" i
          (match d with Some d -> d | None -> "(blocked)"))
      o.Two_phase_commit.decisions;
    Printf.printf "agreement: %b  blocked: %d\n" o.Two_phase_commit.agreement
      o.Two_phase_commit.blocked
  in
  Cmd.v
    (Cmd.info "commit" ~doc:"Run two-phase commit (optionally crash the coordinator)")
    Term.(const run $ crash $ no_voters)

(* -- check (epistemic-temporal model checking) ------------------------------------ *)

let check_formula proto file depth faults max_states max_seconds mode domains
    reduce formula_text obs =
  obs_setup obs;
  match Formula.parse formula_text with
  | Error e -> die_usage "parse error: %s" e
  | Ok f ->
      let st = resolve proto file depth faults max_states max_seconds in
      let reduce = resolve_reduce st ~mode reduce in
      let u = Query.enumerate ~mode ~domains st ~reduce in
      emit_outcome obs (Query.run_check st u f)

let check_cmd =
  let formula =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FORMULA"
          ~doc:
            "Epistemic-temporal formula, e.g. 'AG (holds2 -> K p2 (~holds0))'. \
             Operators: ~ & | ->, K/E/S/sure <pset>, CK, AG EF AF EG AX EX.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Model-check an epistemic-temporal formula over a system's universe")
    Term.(
      const check_formula $ proto_arg $ file_arg $ depth_arg $ faults_arg
      $ max_states_arg $ max_seconds_arg $ mode_arg $ domains_arg $ reduce_arg
      $ formula $ obs_term)

(* -- mc (Monte Carlo statistical estimation) ------------------------------- *)

(* The statistical sibling of [check]: where enumeration is Truncated,
   seeded random walks estimate the formula's μ-prevalence at walk
   endpoints with a Wilson confidence interval (see lib/mc). Exit 0:
   estimate computed (the CI may still include 1); exit 1: at least one
   sampled walk violated the formula — the CI excludes prevalence 1 at
   the requested level — or, with --robust, a confident
   degraded/destroyed verdict; exit 3: the wall-clock budget cut
   sampling short (the partial estimate is still printed). *)
let mc proto file depth_str faults_str runs_str seed_str ci_str peers_str
    peer_tries_str ck_str max_seconds_str robust formula_str obs =
  obs_setup obs;
  let formula_text =
    match formula_str with
    | Some t -> t
    | None -> die_usage "mc needs --formula"
  in
  let f =
    match Formula.parse formula_text with
    | Error e -> die_usage "--formula: parse error: %s" e
    | Ok f -> f
  in
  let inst, _loaded = resolve_proto proto file in
  let scenario =
    match faults_str with
    | None -> None
    | Some s -> (
        match Faults.Scenario.parse s with
        | Ok t -> Some t
        | Error e -> die_usage "--faults: %s" e)
  in
  let base = Protocol.spec_of inst in
  let base_n = Spec.n base in
  (* validate the whole scenario (including partition windows) against
     the base system before splitting it for the sampler *)
  (match scenario with
  | Some t -> (
      match Faults.Scenario.apply t base with
      | Ok _ -> ()
      | Error e -> die_usage "--faults: %s" e)
  | None -> ());
  (* partitions are sampled as step-index delivery windows, not routed
     lossy channels: split them off the spec transformation *)
  let windows =
    match scenario with
    | None -> []
    | Some t -> Faults.Scenario.partition_windows t
  in
  let routed = Option.map Faults.Scenario.without_partitions scenario in
  let faulty_spec =
    match routed with
    | None -> base
    | Some t -> (
        match Faults.Scenario.apply t base with
        | Ok s -> s
        | Error e -> die_usage "--faults: %s" e)
  in
  let view =
    match routed with
    | None -> Fun.id
    | Some t -> Faults.Scenario.view t ~n:base_n
  in
  let pos_int what s =
    match int_of_string_opt s with
    | Some k when k >= 1 -> k
    | _ -> die_usage "bad %s %S (want a positive integer)" what s
  in
  let runs =
    Option.fold ~none:Mc.default.Mc.runs ~some:(pos_int "--runs") runs_str
  in
  let seed =
    match seed_str with
    | None -> 1L
    | Some s -> (
        match Int64.of_string_opt s with
        | Some v -> v
        | None -> die_usage "bad --seed %S (want an integer)" s)
  in
  let level =
    match ci_str with
    | None -> Mc.default.Mc.level
    | Some s -> (
        match float_of_string_opt s with
        | Some v when v > 0.0 && v < 1.0 -> v
        | _ -> die_usage "bad --ci %S (want a level strictly in (0, 1))" s)
  in
  let peers =
    Option.fold ~none:Mc.default.Mc.peers ~some:(pos_int "--peers") peers_str
  in
  let peer_tries =
    Option.fold ~none:Mc.default.Mc.peer_tries
      ~some:(pos_int "--peer-tries") peer_tries_str
  in
  let ck_depth =
    Option.fold ~none:Mc.default.Mc.ck_depth ~some:(pos_int "--ck-depth")
      ck_str
  in
  let max_seconds =
    match max_seconds_str with
    | None -> None
    | Some s -> (
        match float_of_string_opt s with
        | Some v when v > 0.0 -> Some v
        | _ -> die_usage "bad --max-seconds %S (want a positive number)" s)
  in
  let depth_of_str s =
    match int_of_string_opt s with
    | Some d when d >= 0 -> d
    | _ -> die_usage "bad --depth %S (want a nonnegative integer)" s
  in
  let base_depth =
    match depth_str with
    | Some s -> depth_of_str s
    | None -> Protocol.depth_of inst
  in
  let depth =
    match (depth_str, scenario) with
    | Some s, _ -> depth_of_str s
    | None, None -> base_depth
    | None, Some t -> Faults.Scenario.suggested_depth t base_depth
  in
  let cfg =
    {
      Mc.runs;
      depth;
      seed;
      level;
      peers;
      peer_tries;
      ck_depth;
      base_n = Some base_n;
      windows;
      max_seconds;
    }
  in
  let env = Protocol.atom_env inst in
  Format.printf "formula: %a@." Formula.pp f;
  if robust then begin
    if scenario = None then die_usage "--robust needs --faults to compare against";
    let baseline_cfg = { cfg with Mc.depth = base_depth; windows = [] } in
    match
      Mc.estimate_robust baseline_cfg base ~faulty:faulty_spec
        ~faulty_config:cfg ~view ~env f
    with
    | Error e -> die_usage "%s" e
    | Ok r ->
        Format.printf "robust: %a@." Mc.pp_robustness r;
        obs_emit obs;
        if
          r.Mc.baseline.Mc.status = Mc.Out_of_time
          || r.Mc.faulty.Mc.status = Mc.Out_of_time
        then begin
          prerr_endline "hpl: mc sampling truncated by --max-seconds";
          exit exit_truncated
        end;
        match r.Mc.verdict with
        | Mc.Degraded | Mc.Destroyed -> exit exit_violated
        | Mc.Robust | Mc.Vacuous | Mc.Inconclusive -> ()
  end
  else
    match Mc.estimate_formula ~view cfg faulty_spec ~env f with
    | Error e -> die_usage "%s" e
    | Ok e ->
        Format.printf "estimate: %a@." Mc.pp_estimate e;
        obs_emit obs;
        if e.Mc.status = Mc.Out_of_time then begin
          prerr_endline "hpl: mc sampling truncated by --max-seconds";
          exit exit_truncated
        end;
        if e.Mc.hits < e.Mc.runs then exit exit_violated

let mc_cmd =
  let formula =
    Arg.(
      value
      & opt (some string) None
      & info [ "formula" ] ~docv:"FORMULA"
          ~doc:
            "Epistemic formula to estimate (required), e.g. 'CK attack'. \
             Temporal operators are rejected — walk endpoints have no \
             branching structure; use $(b,hpl check) for those.")
  in
  let runs =
    Arg.(
      value
      & opt (some string) None
      & info [ "runs" ] ~docv:"N" ~doc:"Number of sampled walks (default 10000).")
  in
  let seed =
    Arg.(
      value
      & opt (some string) None
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Replay seed (default 1); the same seed gives bit-identical \
             estimates.")
  in
  let ci =
    Arg.(
      value
      & opt (some string) None
      & info [ "ci" ] ~docv:"LEVEL"
          ~doc:"Confidence level for the Wilson interval (default 0.95).")
  in
  let peers =
    Arg.(
      value
      & opt (some string) None
      & info [ "peers" ] ~docv:"N"
          ~doc:"Peer samples per knowledge evaluation (default 12).")
  in
  let peer_tries =
    Arg.(
      value
      & opt (some string) None
      & info [ "peer-tries" ] ~docv:"N"
          ~doc:"Rejection-sampling attempts allowed per peer (default 30).")
  in
  let ck =
    Arg.(
      value
      & opt (some string) None
      & info [ "ck-depth" ] ~docv:"K"
          ~doc:"Approximate CK by K levels of 'everyone knows' (default 2).")
  in
  let robust =
    Arg.(
      value & flag
      & info [ "robust" ]
          ~doc:
            "Compare the formula's prevalence fault-free vs under --faults \
             (statistical analogue of the robustness verdicts); exit 1 on a \
             confident degraded/destroyed verdict.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Estimate an epistemic formula's prevalence by seeded Monte Carlo \
          walks, with Wilson confidence intervals — scales to depths where \
          enumeration is truncated")
    Term.(
      const mc $ proto_arg $ file_arg $ depth_arg $ faults_arg $ runs $ seed
      $ ci $ peers $ peer_tries $ ck $ max_seconds_arg $ robust $ formula
      $ obs_term)

(* -- lint (static analysis, no enumeration) -------------------------------- *)

let lint proto file all faults_str formula_texts depth_str fuel_str
    max_states_str obs =
  obs_setup obs;
  let scenario =
    match faults_str with
    | None -> None
    | Some s -> (
        match Faults.Scenario.parse s with
        | Ok t -> Some t
        | Error e -> die_usage "--faults: %s" e)
  in
  let formulas =
    List.map
      (fun text ->
        match Formula.parse text with
        | Ok f -> f
        | Error e -> die_usage "--formula: parse error: %s" e)
      formula_texts
  in
  let depth =
    match depth_str with
    | None -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some d when d >= 0 -> Some d
        | _ -> die_usage "bad --depth %S (want a nonnegative integer)" s)
  in
  let fuel =
    match fuel_str with
    | None -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some f when f >= 1 -> Some f
        | _ -> die_usage "bad --fuel %S (want a positive integer)" s)
  in
  let max_states =
    match max_states_str with
    | None -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some k when k >= 1 -> Some k
        | _ -> die_usage "bad --max-states %S (want a positive integer)" s)
  in
  (* the flow rule family (dead-rule, unreachable-message,
     guard-tautology) joins the report whenever the instance is
     analyzable — [Lint] cannot depend on [Dataflow] (both live in
     lib/analysis and lint is a dataflow test oracle), so the merge
     happens here *)
  let with_flow ~loaded inst report =
    match Query.dataflow ~loaded inst with
    | None -> report
    | Some df ->
        let expect = Protocol.lint_expect (Protocol.proto inst) in
        {
          report with
          Lint.findings = report.Lint.findings @ Dataflow.findings df ~expect;
        }
  in
  let reports =
    if all then begin
      if formula_texts <> [] || faults_str <> None || file <> None then
        die_usage "--all lints the whole registry; it cannot be combined with \
                   --formula, --faults, or -f";
      List.map
        (fun t ->
          let inst = Protocol.default_instance t in
          with_flow ~loaded:None inst
            (Lint.lint_instance ?fuel ?max_states ?depth inst))
        (Protocol.Registry.list ())
    end
    else
      let inst, loaded = resolve_proto proto file in
      [ with_flow ~loaded inst
          (Lint.lint_instance ?fuel ?max_states ?depth ~formulas
             ?faults:scenario inst) ]
  in
  List.iter (fun r -> Format.printf "%a@." Lint.pp_report r) reports;
  obs_emit obs;
  exit (Lint.exit_code reports)

let lint_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Lint every registered protocol (the CI gate).")
  in
  let formula =
    Arg.(
      value & opt_all string []
      & info [ "formula" ] ~docv:"FORMULA"
          ~doc:
            "Assert a formula and statically check its knowledge chains \
             (repeatable). Findings on asserted formulas gate the exit code.")
  in
  let fuel =
    Arg.(
      value
      & opt (some string) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Local-history exploration bound for channel-graph extraction \
             (default: max 16 depth).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a protocol: channel graph, spec hygiene, \
          knowledge-chain feasibility (Theorems 4-6) — without enumerating \
          the universe")
    Term.(
      const lint $ proto_arg $ file_arg $ all $ faults_arg $ formula
      $ depth_arg $ fuel $ max_states_arg $ obs_term)

(* -- flow (abstract interpretation over rules) ------------------------------ *)

(* [hpl flow] runs the interval-domain abstract interpreter on its own:
   per-rule verdicts, the static channel graph, per-process event
   bounds and the derived POR independence relation — no enumeration,
   no traces. Exit 0 when clean (or every finding was expected), 1 on
   an unexpected warning-level finding, 2 on bad arguments. *)
let flow proto file all verbose =
  let bad = ref false in
  let analyze name t ~expect =
    let fs = Dataflow.findings t ~expect in
    if
      List.exists
        (fun f -> f.Lint.severity <> Lint.Info && not f.Lint.expected)
        fs
    then bad := true;
    Format.printf "%s: %d rule(s), %d dead, %d channel(s)%s%s%s@." name
      (List.length (Dataflow.rules t))
      (List.length (Dataflow.dead_rules t))
      (List.length (Dataflow.channels t))
      (if Dataflow.graph_exact t then "" else " (over-approximated)")
      (match Dataflow.independence t with
      | Some ind ->
          Printf.sprintf ", POR may restrict at depth >= %d"
            (Reduction.Independence.total ind)
      | None -> "")
      (if fs = [] then " — clean" else "");
    List.iter (fun f -> Format.printf "  %a@." Lint.pp_finding f) fs;
    if verbose then Format.printf "%a@." Dataflow.pp t
  in
  if all then begin
    if proto <> None || file <> None then
      die_usage
        "--all analyzes the whole registry; it cannot be combined with -s \
         or -f";
    let skipped = ref [] in
    List.iter
      (fun t ->
        let inst = Protocol.default_instance t in
        match Dataflow.of_instance inst with
        | None -> skipped := Protocol.name t :: !skipped
        | Some df ->
            analyze (Protocol.name t) df ~expect:(Protocol.lint_expect t))
      (Protocol.Registry.list ());
    if !skipped <> [] then
      Format.printf "(no declared profile, skipped: %s)@."
        (String.concat " " (List.rev !skipped))
  end
  else begin
    let inst, loaded = resolve_proto proto file in
    match Query.dataflow ~loaded inst with
    | None ->
        die_usage
          "%s declares no flow profile; only .hpl specs (-f) and profiled \
           registry protocols can be analyzed — try `hpl flow --all`"
          (Protocol.instance_name inst)
    | Some df ->
        analyze (Protocol.instance_name inst) df
          ~expect:(Protocol.lint_expect (Protocol.proto inst))
  end;
  if !bad then exit exit_violated

let flow_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Analyze every registered protocol that declares a profile (the \
             CI gate).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Print the full per-rule verdicts, channels, and bounds.")
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "Abstractly interpret a protocol's rules in an interval domain: \
          guard satisfiability (dead rules, tautologies), the static channel \
          graph, and the POR independence relation — without constructing a \
          single trace")
    Term.(const flow $ proto_arg $ file_arg $ all $ verbose)

(* -- snapshot ------------------------------------------------------------------- *)

let snapshot n at =
  let o = Snapshot.run { Snapshot.default with n; snapshot_time = at } in
  Printf.printf "consistent: %b  conservation: %b\n" o.Snapshot.consistent
    o.Snapshot.conservation;
  Array.iteri
    (fun i s -> Printf.printf "  p%d recorded state: %d sent\n" i s)
    o.Snapshot.recorded.Snapshot.states;
  List.iter
    (fun (s, d, c) -> Printf.printf "  channel p%d->p%d: %d in flight\n" s d c)
    o.Snapshot.recorded.Snapshot.channel_messages

let snapshot_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of processes.") in
  let at =
    Arg.(value & opt float 50.0 & info [ "at" ] ~doc:"Snapshot initiation time.")
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc:"Take a Chandy–Lamport snapshot")
    Term.(const snapshot $ n $ at)

(* -- list ----------------------------------------------------------------- *)

let print_protocol ~verbose ?from t =
  Printf.printf "%-21s %s%s\n" (Protocol.name t) (Protocol.doc t)
    (match from with
    | None -> ""
    | Some path -> Printf.sprintf "  [file: %s]" path);
  if verbose then begin
    List.iter
      (fun p ->
        Printf.printf "    param %-10s default %d, %s%s  %s\n" p.Protocol.key
          p.Protocol.default
          (Printf.sprintf ">= %d" p.Protocol.lo)
          (match p.Protocol.hi with
          | Some hi -> Printf.sprintf ", <= %d" hi
          | None -> "")
          p.Protocol.pdoc)
      (Protocol.params t);
    let inst = Protocol.default_instance t in
    (match Protocol.atoms_of inst with
    | [] -> ()
    | atoms ->
        Printf.printf "    atoms: %s\n" (String.concat " " (List.map fst atoms)));
    Printf.printf "    suggested depth: %d\n" (Protocol.suggested_depth t);
    (match Protocol.generators_of inst with
    | [] -> ()
    | gens ->
        let order =
          match Protocol.symmetry_of inst with
          | Some g -> Symmetry.order g
          | None -> 1
        in
        Printf.printf "    symmetry: %s (group order %d)\n"
          (String.concat " " (List.map Symmetry.to_string gens))
          order);
    (match Protocol.fault_scenarios t with
    | [] -> ()
    | fs -> Printf.printf "    fault scenarios: %s\n" (String.concat " " fs));
    match Protocol.lint_expect t with
    | [] -> ()
    | ls -> Printf.printf "    lint expects: %s\n" (String.concat " " ls)
  end

let list_protocols verbose file =
  List.iter (fun t -> print_protocol ~verbose t) (Protocol.Registry.list ());
  match file with
  | None -> ()
  | Some f ->
      (* the loaded spec is appended, marked with its source path, so
         file specs are never mistaken for builtins *)
      let inst, _loaded = die (Query.load f) in
      let path = List.hd (String.split_on_char ':' f) in
      print_protocol ~verbose ~from:path (Protocol.proto inst)

let list_cmd =
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:
            "Also print parameters, atoms, depths, symmetry generators, \
             fault scenarios, and expected lint findings.")
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List every registered protocol (and any -f loaded spec)")
    Term.(const list_protocols $ verbose $ file_arg)

(* -- fuzz (generated .hpl specs through the whole pipeline) -------------- *)

(* The CI vehicle for the DSL: generate [count] seeded specs, push each
   through parse + elaborate + lint + enumerate, and spot-check the §3
   isomorphism laws on the resulting universe. Failures print the
   offending source — replayable from (seed, index) alone — and the run
   exits 1. *)
let fuzz seed count verbose =
  if count < 1 then die_usage "bad --count %d (want a positive integer)" count;
  let failed = ref false in
  let fail index src fmt =
    Printf.ksprintf
      (fun m ->
        failed := true;
        Printf.eprintf "hpl fuzz: spec %d (seed %d): %s\n%s" index seed m src)
      fmt
  in
  for index = 0 to count - 1 do
    let src = Hpl_dsl.Fuzz.spec_text ~seed ~index in
    let name = Printf.sprintf "fuzz-%d-%d" seed index in
    match Hpl_dsl.Elaborate.load_string ~file:name src with
    | Error d -> fail index src "load failed: %s" (Hpl_dsl.Diag.to_string d)
    | Ok loaded -> (
        let inst = Protocol.default_instance loaded.Hpl_dsl.Elaborate.proto in
        let report = Lint.lint_instance inst in
        List.iter
          (fun f ->
            if f.Lint.severity = Lint.Error then
              fail index src "lint error %s on %s: %s" f.Lint.rule f.Lint.target
                f.Lint.message)
          report.Lint.findings;
        let spec = Protocol.spec_of inst in
        let n = Spec.n spec in
        let depth = min (Protocol.depth_of inst) 5 in
        let budget = Universe.budget ~max_states:30_000 () in
        let u = Universe.enumerate ~budget spec ~depth in
        match Universe.status u with
        | Universe.Truncated r ->
            fail index src "enumeration truncated: %s"
              (Universe.reason_to_string r)
        | Universe.Complete ->
            let st = Random.State.make [| 0x9e37; seed; index |] in
            let pick_idx () = Random.State.int st (Universe.size u) in
            let pick_pset () =
              let ps = ref Pset.empty in
              for i = 0 to n - 1 do
                if Random.State.bool st then ps := Pset.add (Pid.of_int i) !ps
              done;
              !ps
            in
            let law lname ok =
              if not ok then fail index src "law violated: %s" lname
            in
            law "equivalence" (Isomorphism.Laws.equivalence u (pick_pset ()));
            for _ = 1 to 5 do
              let p = pick_pset () and q = pick_pset () in
              let x = pick_idx () and y = pick_idx () in
              law "idempotence" (Isomorphism.Laws.idempotence u p x y);
              law "reflexivity" (Isomorphism.Laws.reflexivity u [ p; q ] x);
              law "inversion" (Isomorphism.Laws.inversion u [ p; q ] x y);
              law "union-inter" (Isomorphism.Laws.union_inter u p q x y);
              law "monotonicity"
                (Isomorphism.Laws.monotonicity u p (Pset.union p q) x y);
              law "subsumption"
                (Isomorphism.Laws.subsumption u p (Pset.union p q) x y)
            done;
            (* flow soundness, per spec: a reported-dead rule's guard
               must be false on every reachable local history (the
               universe is prefix-closed, so projecting every stored
               computation covers them all), and the static channel
               graph must cover every channel the enumeration actually
               used *)
            (match
               Dataflow.of_loaded loaded (Protocol.values inst)
             with
            | Error d ->
                fail index src "flow failed: %s" (Hpl_dsl.Diag.to_string d)
            | Ok df ->
                List.iter
                  (fun (r : Dataflow.rule_report) ->
                    Universe.iter
                      (fun _ z ->
                        let h = Trace.proj z (Pid.of_int r.Dataflow.pid) in
                        if
                          Dataflow.guard_holds df ~pid:r.Dataflow.pid
                            ~index:r.Dataflow.index h
                        then
                          fail index src
                            "flow unsound: dead rule enabled (p%d rule %d \
                             `when %s`)"
                            r.Dataflow.pid r.Dataflow.index r.Dataflow.text)
                      u)
                  (Dataflow.dead_rules df);
                let static = Dataflow.channels df in
                Universe.iter
                  (fun _ z ->
                    List.iter
                      (fun e ->
                        match Event.message e with
                        | Some m when Event.is_send e ->
                            let edge =
                              ( Pid.to_int m.Msg.src,
                                Pid.to_int m.Msg.dst,
                                m.Msg.payload )
                            in
                            if not (List.mem edge static) then
                              let s, d, p = edge in
                              fail index src
                                "flow unsound: dynamic channel p%d->p%d %S \
                                 not in the static graph"
                                s d p
                        | _ -> ())
                      (Trace.to_list z))
                  u);
            (* statistical cross-check: a small seeded mc sample of each
               atom must land its (wide, 99.9%) CI on the exact
               μ-prevalence at this depth — deterministic per (seed,
               index), so a pass here is a pass everywhere *)
            List.iter
              (fun v ->
                if not v.Mc.ok then
                  fail index src "mc estimate off: %s"
                    (Format.asprintf "%a" Mc.pp_validation v))
              (Mc.cross_validate ~runs:400 ~depth:(min depth 4)
                 ~seed:(Int64.of_int ((seed * 7919) + index)) ~level:0.999
                 ~max_nodes:50_000 ~name spec
                 ~atoms:(Protocol.atoms_of inst));
            if verbose then
              Printf.printf "%-16s n=%d depth=%d universe=%d lint=%s\n" name n
                depth (Universe.size u)
                (if Lint.clean report then "clean" else "findings"))
  done;
  if !failed then exit exit_violated;
  Printf.printf "fuzz: %d spec(s) ok (seed %d)\n" count seed

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let count =
    Arg.(
      value & opt int 50
      & info [ "count" ] ~docv:"N" ~doc:"Number of specs to generate.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print one line per generated spec.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate seeded random .hpl specs and push each through the whole \
          pipeline: parse, elaborate, lint, enumerate, isomorphism laws")
    Term.(const fuzz $ seed $ count $ verbose)

(* -- serve (cached knowledge-query daemon) -------------------------------- *)

let serve pipe socket max_cached_states cache_dir =
  if max_cached_states < 1 then
    die_usage "bad --max-cached-states %d (want a positive integer)"
      max_cached_states;
  (match cache_dir with
  | None -> ()
  | Some d ->
      if Sys.file_exists d then begin
        if not (Sys.is_directory d) then
          die_usage "--cache-dir %s: not a directory" d
      end
      else (
        try Unix.mkdir d 0o755 with
        | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
        | Unix.Unix_error (e, _, _) ->
            die_usage "--cache-dir %s: %s" d (Unix.error_message e)));
  let t =
    Hpl_serve.Serve.create
      { Hpl_serve.Serve.max_cached_states; cache_dir }
  in
  (* the daemon always records: every reply carries counters, and
     profiling a live server is the point of the obs surface *)
  Hpl_obs.enable ();
  match (pipe, socket) with
  | true, Some _ -> die_usage "use either --pipe or --socket PATH, not both"
  | false, None -> die_usage "serve needs a transport: --pipe or --socket PATH"
  | true, None -> Hpl_serve.Serve.run_pipe t stdin stdout
  | false, Some path -> (
      match Hpl_serve.Serve.run_socket t ~path with
      | Ok () -> ()
      | Error m -> die_usage "%s" m)

let serve_cmd =
  let pipe =
    Arg.(
      value & flag
      & info [ "pipe" ]
          ~doc:
            "Serve stdin/stdout, one JSON request per line — the transport \
             the tests and the bench client drive.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Bind a Unix domain socket at $(docv) and serve connections.")
  in
  let max_cached =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-cached-states" ] ~docv:"N"
          ~doc:
            "LRU cache budget: total stored computations across all cached \
             universes.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist universe snapshots in $(docv) (created if missing) for \
             warm starts across daemon restarts.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the knowledge-query daemon: knows/check/extent/enumerate-stats \
          over line-delimited JSON, backed by an LRU universe cache and \
          on-disk snapshots")
    Term.(const serve $ pipe $ socket $ max_cached $ cache_dir)

let () =
  let doc = "explore the systems of 'How Processes Learn' (Chandy & Misra 1985)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "hpl" ~version:"1.0.0" ~doc)
          [
            list_cmd;
            enumerate_cmd;
            diagram_cmd;
            knows_cmd;
            extent_cmd;
            serve_cmd;
            termination_cmd;
            heartbeat_cmd;
            gossip_cmd;
            snapshot_cmd;
            analyze_cmd;
            deadlock_cmd;
            mutex_cmd;
            election_cmd;
            check_cmd;
            mc_cmd;
            lint_cmd;
            flow_cmd;
            fuzz_cmd;
            knew_cmd;
            paxos_cmd;
            commit_cmd;
          ]))
