(* Determinism of parallel enumeration/extent, and the cached O(1)
   trace hash.

   [Universe.enumerate ~domains:k] must be bit-identical to the
   sequential run for every [k]: same size, same comp-array order, same
   class ids. [Trace.hash] is cached incrementally by snoc/of_list and
   must agree with equality however a trace was built. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* --- parallel enumeration determinism ------------------------------ *)

let same_universe name u1 u2 =
  check tint (name ^ ": size") (Universe.size u1) (Universe.size u2);
  Universe.iter
    (fun i z ->
      check tbool
        (Printf.sprintf "%s: comp %d identical" name i)
        true
        (Trace.equal z (Universe.comp u2 i)))
    u1;
  let spec = Universe.spec u1 in
  List.iter
    (fun p ->
      check tbool (name ^ ": per-pid class ids") true
        (Universe.class_ids u1 p = Universe.class_ids u2 p))
    (Spec.pids spec);
  let all = Spec.all spec in
  check tbool (name ^ ": pset class ids") true
    (Universe.pset_class_ids u1 all = Universe.pset_class_ids u2 all)

let cases =
  [
    ("one-msg", Fixtures.one_msg, 5);
    ("ping-pong", Fixtures.ping_pong, 4);
    ("ticks-2x2", Fixtures.ticks ~n:2 ~k:2, 10);
    ("chatter-2x2", Fixtures.chatter ~n:2 ~k:2, 4);
    ("chatter-3x2", Fixtures.chatter ~n:3 ~k:2, 5);
    ("random-17", Fixtures.random_spec ~n:3 ~k:2 ~seed:17, 5);
  ]

let mode_name = function `Full -> "full" | `Canonical -> "canonical"

let test_parallel_determinism () =
  List.iter
    (fun (name, spec, depth) ->
      List.iter
        (fun mode ->
          let u1 = Universe.enumerate ~mode ~domains:1 spec ~depth in
          List.iter
            (fun domains ->
              let ud = Universe.enumerate ~mode ~domains spec ~depth in
              same_universe
                (Printf.sprintf "%s/%s/domains=%d" name (mode_name mode)
                   domains)
                u1 ud)
            [ 2; 3; 4 ])
        [ `Full; `Canonical ])
    cases

let test_default_is_sequential () =
  (* the ?domains default must not change the existing API's result *)
  let spec = Fixtures.chatter ~n:2 ~k:2 in
  let u = Universe.enumerate spec ~depth:4 in
  let u1 = Universe.enumerate ~domains:1 spec ~depth:4 in
  same_universe "default=1" u u1

let test_extent_domains () =
  let spec = Fixtures.chatter ~n:3 ~k:2 in
  let u = Universe.enumerate spec ~depth:5 in
  List.iter
    (fun b ->
      let e1 = Prop.extent ~domains:1 u b in
      List.iter
        (fun domains ->
          check tbool
            (Printf.sprintf "extent %s domains=%d" (Prop.name b) domains)
            true
            (Bitset.equal e1 (Prop.extent ~domains u b)))
        [ 2; 3; 4 ])
    [
      Prop.make "sent0" (fun z -> Trace.send_count z Fixtures.p0 > 0);
      Prop.make "len-even" (fun z -> Trace.length z mod 2 = 0);
      Prop.tt;
      Prop.ff;
    ]

let test_bad_domains () =
  check tbool "enumerate rejects 0" true
    (try
       ignore (Universe.enumerate ~domains:0 Fixtures.one_msg ~depth:2);
       false
     with Invalid_argument _ -> true);
  let u = Universe.enumerate Fixtures.one_msg ~depth:2 in
  check tbool "extent rejects 0" true
    (try
       ignore (Prop.extent ~domains:0 u Prop.tt);
       false
     with Invalid_argument _ -> true)

(* --- cached trace hash --------------------------------------------- *)

let gen_event =
  QCheck.Gen.(
    int_range 0 2 >>= fun pid ->
    int_range 0 3 >>= fun lseq ->
    let p = Pid.of_int pid in
    oneof
      [
        ( oneofl [ "a"; "b"; "c" ] >|= fun tag ->
          Event.internal ~pid:p ~lseq tag );
        ( int_range 0 2 >>= fun dst ->
          int_range 0 3 >>= fun seq ->
          oneofl [ "m"; "n" ] >|= fun payload ->
          Event.send ~pid:p ~lseq
            (Msg.make ~src:p ~dst:(Pid.of_int dst) ~seq ~payload) );
        ( int_range 0 2 >>= fun src ->
          int_range 0 3 >>= fun seq ->
          oneofl [ "m"; "n" ] >|= fun payload ->
          Event.receive ~pid:p ~lseq
            (Msg.make ~src:(Pid.of_int src) ~dst:p ~seq ~payload) );
      ])

(* an event list together with a seeded Fisher-Yates permutation of it *)
let gen_events_and_permutation =
  QCheck.make
    ~print:(fun (es, perm) ->
      Printf.sprintf "%s / %s"
        (Trace.to_string (Trace.of_list es))
        (Trace.to_string (Trace.of_list perm)))
    QCheck.Gen.(
      list_size (int_range 0 12) gen_event >>= fun es ->
      int >|= fun seed ->
      let a = Array.of_list es in
      let st = Random.State.make [| seed |] in
      for i = Array.length a - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      done;
      (es, Array.to_list a))

let qcheck_props =
  [
    QCheck.Test.make ~name:"hash agrees with equality on permuted traces"
      ~count:500 gen_events_and_permutation (fun (es, perm) ->
        let a = Trace.of_list es and b = Trace.of_list perm in
        (* the fast-path hash must neither break equality (equal lists
           stay equal) nor violate [equal ⇒ same hash] *)
        Trace.equal a b = List.equal Event.equal es perm
        && ((not (Trace.equal a b)) || Trace.hash a = Trace.hash b));
    QCheck.Test.make ~name:"hash independent of construction path" ~count:500
      gen_events_and_permutation (fun (es, _) ->
        let via_of_list = Trace.of_list es in
        let via_snoc = List.fold_left Trace.snoc Trace.empty es in
        let k = List.length es / 2 in
        let prefix = List.filteri (fun i _ -> i < k) es in
        let suffix = List.filteri (fun i _ -> i >= k) es in
        let via_append = Trace.append (Trace.of_list prefix) suffix in
        Trace.equal via_of_list via_snoc
        && Trace.equal via_of_list via_append
        && Trace.hash via_of_list = Trace.hash via_snoc
        && Trace.hash via_of_list = Trace.hash via_append);
    QCheck.Test.make ~name:"rebuilt trace has equal hash" ~count:500
      gen_events_and_permutation (fun (es, _) ->
        let z = Trace.of_list es in
        let z' = Trace.of_list (Trace.to_list z) in
        Trace.equal z z' && Trace.hash z = Trace.hash z');
  ]

let suite =
  [
    ("parallel enumeration is deterministic", `Quick, test_parallel_determinism);
    ("default domains matches old API", `Quick, test_default_is_sequential);
    ("parallel extent matches sequential", `Quick, test_extent_domains);
    ("domains < 1 rejected", `Quick, test_bad_domains);
  ]
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~verbose:false p) qcheck_props
