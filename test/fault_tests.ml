(* Fault transformers: crash/loss/duplication semantics, commutation
   with the spec algebra, budgets, and scenario parsing. *)
open Hpl_core
open Hpl_faults

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string
let p0 = Pid.of_int 0
let p1 = Pid.of_int 1

let recv_count z p =
  List.length (List.filter Event.is_receive (Trace.proj z p))

let has_internal tag z p =
  List.exists
    (fun e ->
      match e.Event.kind with
      | Event.Internal t -> String.equal t tag
      | _ -> false)
    (Trace.proj z p)

let same_universe u1 u2 =
  Universe.size u1 = Universe.size u2
  && Universe.fold
       (fun _ z ok -> ok && Option.is_some (Universe.find u2 z))
       u1 true

(* -- crash_stop ---------------------------------------------------------- *)

let test_crash_stop_silences () =
  (* p0 crashed from the start: the only computation is ε *)
  let s = Faults.crash_stop ~pid:p0 ~after:0 Fixtures.one_msg in
  let u = Universe.enumerate s ~depth:4 in
  check tint "only the empty computation" 1 (Universe.size u)

let test_crash_stop_after_quota () =
  (* p1 may receive the ping but crashes before replying *)
  let s = Faults.crash_stop ~pid:p1 ~after:1 Fixtures.ping_pong in
  let u = Universe.enumerate s ~depth:6 in
  Universe.iter
    (fun _ z ->
      check tbool "p1 never exceeds one event" true
        (List.length (Trace.proj z p1) <= 1))
    u;
  (* the ping itself still happens *)
  check tbool "p0 still sends" true
    (Universe.fold (fun _ z acc -> acc || Trace.send_count z p0 > 0) u false)

let test_crash_stop_rejects_bad_args () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check tbool "pid out of range" true
    (raises (fun () -> Faults.crash_stop ~pid:(Pid.of_int 9) ~after:1 Fixtures.one_msg));
  check tbool "negative quota" true
    (raises (fun () -> Faults.crash_stop ~pid:p0 ~after:(-1) Fixtures.one_msg))

(* -- crash_any ----------------------------------------------------------- *)

let test_crash_any_visible_and_silencing () =
  let s = Faults.crash_any ~upto:1 Fixtures.ping_pong in
  let u = Universe.enumerate ~mode:`Full s ~depth:6 in
  (* some computation crashes p0 *)
  check tbool "a crash of p0 exists" true
    (Universe.fold
       (fun _ z acc -> acc || has_internal Faults.crash_tag z p0)
       u false);
  (* p1 is not crash-prone *)
  Universe.iter
    (fun _ z ->
      check tbool "p1 never crashes" false (has_internal Faults.crash_tag z p1))
    u;
  (* after its crash, a process performs nothing *)
  Universe.iter
    (fun _ z ->
      let h = Trace.proj z p0 in
      match
        List.find_opt
          (fun e ->
            match e.Event.kind with
            | Event.Internal t -> String.equal t Faults.crash_tag
            | _ -> false)
          h
      with
      | None -> ()
      | Some crash ->
          check tbool "crash is p0's last event" true
            (crash.Event.lseq = List.length h - 1))
    u

let test_crash_any_zero_is_identity () =
  let s = Faults.crash_any ~upto:0 Fixtures.ping_pong in
  let u0 = Universe.enumerate Fixtures.ping_pong ~depth:6 in
  let u1 = Universe.enumerate s ~depth:6 in
  check tbool "same universe" true (same_universe u0 u1)

(* -- commutation with the spec algebra ----------------------------------- *)

let test_crash_any_commutes_with_bound () =
  let base = Fixtures.chatter ~n:3 ~k:4 in
  let fb = Spec_algebra.bound_events (Faults.crash_any ~upto:2 base) 3 in
  let bf = Faults.crash_any ~upto:2 (Spec_algebra.bound_events base 3) in
  let u1 = Universe.enumerate fb ~depth:6 in
  let u2 = Universe.enumerate bf ~depth:6 in
  check tbool "fault-then-bound = bound-then-fault" true (same_universe u1 u2)

let test_crash_stop_commutes_with_bound () =
  let base = Fixtures.chatter ~n:2 ~k:4 in
  let fb = Spec_algebra.bound_events (Faults.crash_stop ~pid:p1 ~after:2 base) 3 in
  let bf = Faults.crash_stop ~pid:p1 ~after:2 (Spec_algebra.bound_events base 3) in
  let u1 = Universe.enumerate fb ~depth:6 in
  let u2 = Universe.enumerate bf ~depth:6 in
  check tbool "fault-then-bound = bound-then-fault" true (same_universe u1 u2)

let test_crash_stop_commutes_with_restrict () =
  let base = Fixtures.chatter ~n:2 ~k:4 in
  let keep _p = function Spec.Do "idle" -> false | _ -> true in
  let fr = Spec_algebra.restrict (Faults.crash_stop ~pid:p0 ~after:2 base) keep in
  let rf = Faults.crash_stop ~pid:p0 ~after:2 (Spec_algebra.restrict base keep) in
  let u1 = Universe.enumerate fr ~depth:5 in
  let u2 = Universe.enumerate rf ~depth:5 in
  check tbool "fault-then-restrict = restrict-then-fault" true (same_universe u1 u2)

(* -- lossy channels ------------------------------------------------------ *)

let test_lossy_routes_through_daemon () =
  let s = Faults.lossy ~channels:[ (p0, p1) ] Fixtures.one_msg in
  check tint "one daemon added" 3 (Spec.n s);
  let u = Universe.enumerate ~mode:`Full s ~depth:6 in
  let daemon = Pid.of_int 2 in
  (* a drop exists somewhere *)
  let dropped =
    Universe.fold
      (fun _ z acc ->
        acc
        || List.exists
             (fun e ->
               match e.Event.kind with
               | Event.Internal t ->
                   String.length t >= 5 && String.sub t 0 5 = "drop:"
               | _ -> false)
             (Trace.proj z daemon))
      u false
  in
  check tbool "a drop event exists" true dropped;
  (* a complete delivery exists too *)
  let delivered =
    Universe.fold (fun _ z acc -> acc || recv_count z p1 > 0) u false
  in
  check tbool "a delivery exists" true delivered;
  (* drops live on the daemon only: the endpoints never log internals *)
  Universe.iter
    (fun _ z ->
      check tint "p0 has no internal events" 0
        (List.length
           (List.filter
              (fun e ->
                match e.Event.kind with Event.Internal _ -> true | _ -> false)
              (Trace.proj z p0 @ Trace.proj z p1))))
    u

let test_lossy_endpoint_ignorance () =
  (* after p0's send, p0's local history is the same whether the daemon
     dropped, forwarded, or did nothing yet — so p0 cannot know *)
  let s = Faults.lossy ~channels:[ (p0, p1) ] Fixtures.one_msg in
  let u = Universe.enumerate ~mode:`Full s ~depth:6 in
  let projections_with pred =
    Universe.fold
      (fun _ z acc -> if pred z then Trace.proj z p0 :: acc else acc)
      u []
  in
  let daemon = Pid.of_int 2 in
  let has_drop z =
    List.exists
      (fun e ->
        match e.Event.kind with
        | Event.Internal t -> String.length t >= 5 && String.sub t 0 5 = "drop:"
        | _ -> false)
      (Trace.proj z daemon)
  in
  let sent z = Trace.send_count z p0 > 0 in
  let dropped_projs = projections_with (fun z -> sent z && has_drop z) in
  let ok_projs = projections_with (fun z -> sent z && not (has_drop z)) in
  check tbool "dropped branches exist" true (dropped_projs <> []);
  List.iter
    (fun h ->
      check tbool "p0's view of a dropped run also occurs in a clean run" true
        (List.exists
           (fun h' -> List.length h = List.length h' && List.for_all2 Event.equal h h')
           ok_projs))
    dropped_projs

let test_lossy_view_is_fault_free_shaped () =
  let s = Faults.lossy ~channels:[ (p0, p1) ] Fixtures.one_msg in
  let u = Universe.enumerate ~mode:`Full s ~depth:6 in
  Universe.iter
    (fun _ z ->
      let v = Faults.view ~n:2 z in
      List.iter
        (fun e ->
          check tbool "no daemon events in view" true (Pid.to_int e.Event.pid < 2);
          match e.Event.kind with
          | Event.Send m | Event.Receive m ->
              check tstr "original payload restored" "m" m.Msg.payload;
              check tint "original endpoints" 1 (Pid.to_int m.Msg.dst)
          | Event.Internal _ -> Alcotest.fail "unexpected internal event")
        (Trace.to_list v))
    u

(* -- duplication --------------------------------------------------------- *)

let test_duplicating_delivers_twice () =
  let s = Faults.duplicating ~channels:[ (p0, p1) ] Fixtures.one_msg in
  let u = Universe.enumerate ~mode:`Full s ~depth:8 in
  let twice =
    Universe.fold (fun _ z acc -> acc || recv_count z p1 >= 2) u false
  in
  check tbool "a double delivery exists" true twice;
  (* both receives decode to the same original message *)
  Universe.iter
    (fun _ z ->
      let v = Faults.view ~n:2 z in
      let received =
        List.filter_map
          (fun e ->
            match e.Event.kind with Event.Receive m -> Some m | _ -> None)
          (Trace.to_list v)
      in
      match received with
      | [ m1; m2 ] ->
          check tbool "duplicate decodes to the same message" true (Msg.equal m1 m2)
      | _ -> ())
    u

(* -- budgets ------------------------------------------------------------- *)

let test_budget_max_states () =
  let base = Fixtures.chatter ~n:3 ~k:4 in
  let budget = Universe.budget ~max_states:20 () in
  let u = Universe.enumerate ~budget base ~depth:8 in
  check tbool "truncated" true
    (match Universe.status u with
    | Universe.Truncated (Universe.Max_states 20) -> true
    | _ -> false);
  check tbool "at most 20 states" true (Universe.size u <= 20);
  (* prefix-closure survives truncation *)
  Universe.iter
    (fun i z ->
      check tint "all prefixes stored"
        (Trace.length z + 1)
        (List.length (Universe.prefixes_of u i)))
    u

let test_budget_max_states_deterministic_across_domains () =
  let base = Fixtures.chatter ~n:3 ~k:4 in
  let budget = Universe.budget ~max_states:50 () in
  let u1 = Universe.enumerate ~budget ~domains:1 base ~depth:8 in
  let u2 = Universe.enumerate ~budget ~domains:4 base ~depth:8 in
  check tbool "identical truncation for any domains" true (same_universe u1 u2)

let test_budget_max_seconds () =
  (* an effectively-zero time budget on a large fault-blown space *)
  let base = Faults.lossy (Fixtures.chatter ~n:3 ~k:6) in
  let budget = Universe.budget ~max_seconds:1e-6 () in
  let u = Universe.enumerate ~budget base ~depth:12 in
  check tbool "time-truncated" true
    (match Universe.status u with
    | Universe.Truncated (Universe.Max_seconds _) -> true
    | _ -> false)

let test_budget_complete_when_roomy () =
  let u =
    Universe.enumerate
      ~budget:(Universe.budget ~max_states:10_000 ())
      Fixtures.ping_pong ~depth:6
  in
  check tbool "complete" true (Universe.status u = Universe.Complete)

(* -- robustness verdicts ------------------------------------------------- *)

let test_robust_under_lossy_ping () =
  (* "p1 knows the ping was sent" — attainable fault-free; over a lossy
     channel it survives (deliveries still happen) but is rarer *)
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  let r =
    Knowledge.robust_under Fixtures.one_msg
      ~transform:(Faults.lossy ~channels:[ (p0, p1) ])
      ~depth:3 ~faulty_depth:6
      ~view:(Faults.view ~n:2)
      (Pset.singleton p1) sent
  in
  check tbool "baseline attains knowledge" true (r.Knowledge.baseline_hits > 0);
  check tbool "faulty still attains knowledge" true (r.Knowledge.faulty_hits > 0);
  check tbool "verdict is degraded or robust" true
    (match r.Knowledge.verdict with
    | Knowledge.Degraded | Knowledge.Robust -> true
    | _ -> false)

let test_robust_under_crash_destroys () =
  (* crash p1 before it can receive: knowledge is destroyed *)
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  let r =
    Knowledge.robust_under Fixtures.one_msg
      ~transform:(fun s -> Faults.crash_stop ~pid:p1 ~after:0 s)
      ~depth:3 (Pset.singleton p1) sent
  in
  check tbool "destroyed" true (r.Knowledge.verdict = Knowledge.Destroyed)

(* -- scenario parsing ---------------------------------------------------- *)

let test_scenario_round_trip () =
  List.iter
    (fun s ->
      match Faults.Scenario.parse s with
      | Ok t -> check tstr "round-trips" s (Faults.Scenario.to_string t)
      | Error e -> Alcotest.failf "parse %S failed: %s" s e)
    [
      "crash:p1@2";
      "crash-any:1";
      "drop:p0->p1";
      "dup:p2->p0";
      "drop:*";
      "crash:p1@2,drop:p0->p1";
      "crash-any:2,dup:*,crash:p0@0";
      "partition:p0@1-3";
      "partition:p0|p2@0-5";
      "crash:p1@2,recover:p1@1";
      "partition:p1@2-4,crash:p0@1,recover:p0@2";
    ]

let test_scenario_parse_errors () =
  List.iter
    (fun s ->
      check tbool (Printf.sprintf "%S rejected" s) true
        (Result.is_error (Faults.Scenario.parse s)))
    [
      "";
      "explode:p0";
      "crash:p1";
      "drop:p0";
      "drop:p0->";
      "crash:p1@x";
      "crash-any:x";
      "partition:p0";
      "partition:p0@5";
      "partition:@1-2";
      "partition:p0@3-1";
      "recover:p0@0";
      "recover:p0";
    ]

let test_scenario_apply_checks_ranges () =
  let t = Result.get_ok (Faults.Scenario.parse "crash:p7@1") in
  check tbool "out-of-range pid rejected" true
    (Result.is_error (Faults.Scenario.apply t Fixtures.one_msg));
  let t = Result.get_ok (Faults.Scenario.parse "partition:p0|p9@1-2") in
  check tbool "partition out-of-range pid rejected" true
    (Result.is_error (Faults.Scenario.apply t Fixtures.one_msg));
  let t = Result.get_ok (Faults.Scenario.parse "partition:p0|p1@1-2") in
  check tbool "whole-system group rejected" true
    (Result.is_error (Faults.Scenario.apply t Fixtures.one_msg))

let test_robustness_provenance () =
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  let transform s = Faults.lossy ~channels:[ (p0, p1) ] s in
  let exact =
    Knowledge.robust_under Fixtures.one_msg ~transform ~depth:3
      (Pset.singleton p0) sent
  in
  check tbool "complete universes give an exact verdict" true
    (exact.Knowledge.provenance = Knowledge.Exact);
  let bound =
    Knowledge.robust_under
      ~budget:(Universe.budget ~max_states:2 ())
      Fixtures.one_msg ~transform ~depth:3 (Pset.singleton p0) sent
  in
  check tbool "truncation downgrades to a bound" true
    (bound.Knowledge.provenance = Knowledge.Bound)

let test_scenario_apply_matches_manual () =
  let t = Result.get_ok (Faults.Scenario.parse "drop:p0->p1") in
  let s1 = Result.get_ok (Faults.Scenario.apply t Fixtures.one_msg) in
  let s2 = Faults.lossy ~channels:[ (p0, p1) ] Fixtures.one_msg in
  let u1 = Universe.enumerate s1 ~depth:6 in
  let u2 = Universe.enumerate s2 ~depth:6 in
  check tbool "scenario = manual transformer" true (same_universe u1 u2)

let test_scenario_sim_config () =
  let t = Result.get_ok (Faults.Scenario.parse "drop:p0->p1,crash-any:2") in
  let cfg = Faults.Scenario.to_sim_config t Hpl_sim.Engine.default in
  check tbool "drop prob raised" true (cfg.Hpl_sim.Engine.drop_prob > 0.0);
  check tbool "channel recorded" true
    (List.mem (0, 1) cfg.Hpl_sim.Engine.drop_channels);
  check tbool "crash-prone pids" true
    (cfg.Hpl_sim.Engine.crash_prone = [ 0; 1 ]);
  check tbool "crash prob raised" true (cfg.Hpl_sim.Engine.crash_prob > 0.0)

(* -- sim engine fault config --------------------------------------------- *)

let test_sim_honours_faults () =
  (* flood messages p0->p1; with drop_channels on that channel only,
     some are dropped; p1->p0 traffic is unaffected *)
  let handlers =
    {
      Hpl_sim.Engine.init =
        (fun pid ->
          if Pid.to_int pid = 0 then
            ((), List.init 30 (fun _ -> Hpl_sim.Engine.Send (p1, "x")))
          else ((), [ Hpl_sim.Engine.Send (p0, "y") ]));
      on_message = (fun s ~self:_ ~src:_ ~payload:_ ~now:_ -> (s, []));
      on_timer = (fun s ~self:_ ~tag:_ ~now:_ -> (s, []));
    }
  in
  let cfg =
    {
      Hpl_sim.Engine.default with
      n = 2;
      drop_prob = 0.5;
      drop_channels = [ (0, 1) ];
      seed = 42L;
    }
  in
  let r = Hpl_sim.Engine.run cfg handlers in
  check tbool "some drops" true (r.Hpl_sim.Engine.stats.dropped > 0);
  check tbool "p1's message got through" true (recv_count r.trace p0 = 1)

let test_sim_crash_after_events () =
  let handlers =
    {
      Hpl_sim.Engine.init =
        (fun pid ->
          if Pid.to_int pid = 0 then
            ((), List.init 10 (fun _ -> Hpl_sim.Engine.Send (p1, "x")))
          else ((), []));
      on_message = (fun s ~self:_ ~src:_ ~payload:_ ~now:_ -> (s, []));
      on_timer = (fun s ~self:_ ~tag:_ ~now:_ -> (s, []));
    }
  in
  let cfg =
    { Hpl_sim.Engine.default with n = 2; crash_after_events = [ (0, 3) ] }
  in
  let r = Hpl_sim.Engine.run cfg handlers in
  check tint "p0 stops at its quota" 3 (List.length (Trace.proj r.trace p0));
  check tbool "p0 marked crashed" true r.crashed.(0)

let test_sim_duplication () =
  let handlers =
    {
      Hpl_sim.Engine.init =
        (fun pid ->
          if Pid.to_int pid = 0 then
            ((), List.init 20 (fun _ -> Hpl_sim.Engine.Send (p1, "x")))
          else ((), []));
      on_message = (fun s ~self:_ ~src:_ ~payload:_ ~now:_ -> (s, []));
      on_timer = (fun s ~self:_ ~tag:_ ~now:_ -> (s, []));
    }
  in
  let cfg =
    { Hpl_sim.Engine.default with n = 2; dup_prob = 0.5; seed = 7L }
  in
  let r = Hpl_sim.Engine.run cfg handlers in
  check tbool "duplicates injected" true (r.stats.duplicated > 0);
  (* duplicates are internal events, so the trace stays well-formed *)
  check tbool "dup-deliver internals present" true
    (List.exists
       (fun e ->
         match e.Event.kind with
         | Event.Internal t ->
             String.length t >= 12 && String.sub t 0 12 = "dup-deliver:"
         | _ -> false)
       (Trace.proj r.trace p1))

let suite =
  [
    ("crash_stop silences", `Quick, test_crash_stop_silences);
    ("crash_stop after quota", `Quick, test_crash_stop_after_quota);
    ("crash_stop validates", `Quick, test_crash_stop_rejects_bad_args);
    ("crash_any visible+silencing", `Quick, test_crash_any_visible_and_silencing);
    ("crash_any upto 0 = id", `Quick, test_crash_any_zero_is_identity);
    ("crash_any x bound commute", `Quick, test_crash_any_commutes_with_bound);
    ("crash_stop x bound commute", `Quick, test_crash_stop_commutes_with_bound);
    ("crash_stop x restrict commute", `Quick, test_crash_stop_commutes_with_restrict);
    ("lossy routes via daemon", `Quick, test_lossy_routes_through_daemon);
    ("lossy endpoint ignorance", `Quick, test_lossy_endpoint_ignorance);
    ("lossy view restores shape", `Quick, test_lossy_view_is_fault_free_shaped);
    ("duplication delivers twice", `Quick, test_duplicating_delivers_twice);
    ("budget max_states", `Quick, test_budget_max_states);
    ("budget deterministic", `Quick, test_budget_max_states_deterministic_across_domains);
    ("budget max_seconds", `Quick, test_budget_max_seconds);
    ("budget roomy = complete", `Quick, test_budget_complete_when_roomy);
    ("robust_under lossy", `Quick, test_robust_under_lossy_ping);
    ("robust_under crash destroys", `Quick, test_robust_under_crash_destroys);
    ("robustness provenance", `Quick, test_robustness_provenance);
    ("scenario round-trip", `Quick, test_scenario_round_trip);
    ("scenario parse errors", `Quick, test_scenario_parse_errors);
    ("scenario range check", `Quick, test_scenario_apply_checks_ranges);
    ("scenario = manual", `Quick, test_scenario_apply_matches_manual);
    ("scenario -> sim config", `Quick, test_scenario_sim_config);
    ("sim per-channel drops", `Quick, test_sim_honours_faults);
    ("sim crash_after_events", `Quick, test_sim_crash_after_events);
    ("sim duplication", `Quick, test_sim_duplication);
  ]
