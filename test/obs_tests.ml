(* Observability cross-checks: the obs layer's numbers must agree with
   ground truth computed by the instrumented code itself, its JSON
   exporters must emit parseable output with the documented schema, and
   the disabled path must be fully transparent.

   The JSON parser below is deliberately minimal (strings, numbers,
   bools, null, arrays, objects — enough for the two exporters); it
   exists so the schema assertions are structural, not grep-shaped. *)
open Hpl_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- a minimal JSON reader ------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      String.iter expect lit;
      v
    in
    let string_body () =
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  advance ()
                done;
                Buffer.add_char b '?';
                go ()
            | Some c ->
                advance ();
                Buffer.add_char b
                  (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
                go ()
            | None -> fail "eof in string")
        | Some c ->
            advance ();
            Buffer.add_char b c;
            go ()
        | None -> fail "eof in string"
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let numchar = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> numchar c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else Obj (members [])
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else Arr (elements [])
      | Some '"' ->
          advance ();
          Str (string_body ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
      | None -> fail "eof"
    and members acc =
      skip_ws ();
      expect '"';
      let k = string_body () in
      skip_ws ();
      expect ':';
      let v = value () in
      skip_ws ();
      match peek () with
      | Some ',' ->
          advance ();
          members ((k, v) :: acc)
      | Some '}' ->
          advance ();
          List.rev ((k, v) :: acc)
      | _ -> fail "expected ',' or '}'"
    and elements acc =
      let v = value () in
      skip_ws ();
      match peek () with
      | Some ',' ->
          advance ();
          elements (v :: acc)
      | Some ']' ->
          advance ();
          List.rev (v :: acc)
      | _ -> fail "expected ',' or ']'"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let arr = function Arr xs -> Some xs | _ -> None
end

(* every enabled-path test must leave the global switch off for the
   rest of the suite, even when failing *)
let with_obs f =
  Hpl_obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Hpl_obs.disable ();
      Hpl_obs.reset ())
    f

let chatter = Fixtures.chatter ~n:3 ~k:2

(* -- disabled path ----------------------------------------------------- *)

let test_disabled_transparent () =
  Hpl_obs.disable ();
  Hpl_obs.reset ();
  let r = Hpl_obs.span "t" (fun () -> 41 + 1) in
  check_int "span returns f ()" 42 r;
  Hpl_obs.instant "i";
  Hpl_obs.count "c" 7;
  Hpl_obs.set_gauge "g" 1.0;
  check_int "no spans recorded" 0 (Hpl_obs.span_count "t");
  check_int "no counters recorded" 0 (Hpl_obs.counter "c");
  check "no gauges recorded" true (Hpl_obs.gauge_max "g" = None);
  check "no names" true (Hpl_obs.span_names () = [])

let test_disabled_span_reraises () =
  Hpl_obs.disable ();
  let raised =
    try
      ignore (Hpl_obs.span "t" (fun () -> failwith "boom"));
      false
    with Failure _ -> true
  in
  check "exception propagates" true raised

(* -- counters vs. ground truth ---------------------------------------- *)

let test_states_counter_matches_size () =
  with_obs (fun () ->
      let u = Universe.enumerate ~mode:`Canonical chatter ~depth:4 in
      check_int "enumerate.states = Universe.size" (Universe.size u)
        (Hpl_obs.counter "enumerate.states"))

let test_extent_evals_counter () =
  with_obs (fun () ->
      let u = Universe.enumerate ~mode:`Canonical chatter ~depth:4 in
      Hpl_obs.reset ();
      let b = Prop.make "any" (fun _ -> true) in
      ignore (Prop.extent u b);
      check_int "prop.extent.evals = Universe.size" (Universe.size u)
        (Hpl_obs.counter "prop.extent.evals"))

let test_lint_findings_counter () =
  Hpl_protocols.Builtins.init ();
  let inst =
    match Hpl_protocols.Protocol.Registry.parse "two-generals" with
    | Ok i -> i
    | Error e -> failwith e
  in
  with_obs (fun () ->
      let report = Hpl_analysis.Lint.lint_instance inst in
      check_int "lint.findings = |report.findings|"
        (List.length report.Hpl_analysis.Lint.findings)
        (Hpl_obs.counter "lint.findings"))

(* -- span aggregation -------------------------------------------------- *)

let test_lint_children_account_for_total () =
  Hpl_protocols.Builtins.init ();
  let inst =
    match Hpl_protocols.Protocol.Registry.parse "token-bus" with
    | Ok i -> i
    | Error e -> failwith e
  in
  with_obs (fun () ->
      ignore (Hpl_analysis.Lint.lint_instance inst);
      let total = Hpl_obs.span_total_us "lint" in
      let children =
        List.fold_left
          (fun acc name -> acc +. Hpl_obs.span_total_us name)
          0.0
          [
            "lint.extract";
            "lint.extract-faulty";
            "lint.locality";
            "lint.rules.hygiene";
            "lint.rules.atoms";
            "lint.rules.faults";
            "lint.rules.formulas";
          ]
      in
      check "lint ran long enough to compare" true (total > 0.0);
      (* the phases are sequential inside [lint], so their sum cannot
         exceed the parent beyond clock granularity, and they are the
         bulk of the work, so they cannot fall below half of it *)
      check
        (Printf.sprintf "children (%.1fus) <= total (%.1fus) + slack" children
           total)
        true
        (children <= (total *. 1.05) +. 10.0);
      check
        (Printf.sprintf "children (%.1fus) >= 0.5 * total (%.1fus)" children
           total)
        true
        (children >= total *. 0.5))

(* -- exporters --------------------------------------------------------- *)

let test_stats_json_schema () =
  with_obs (fun () ->
      ignore (Universe.enumerate ~mode:`Canonical chatter ~depth:4);
      let j = Json.parse (Hpl_obs.stats_json ()) in
      let field name =
        match Json.member name j with
        | Some v -> (
            match Json.arr v with
            | Some xs -> xs
            | None -> Alcotest.failf "%s is not an array" name)
        | None -> Alcotest.failf "missing %s" name
      in
      let spans = field "spans" in
      check "some spans" true (spans <> []);
      List.iter
        (fun sp ->
          List.iter
            (fun k ->
              check ("span has " ^ k) true (Json.member k sp <> None))
            [ "name"; "count"; "total_us"; "max_us" ])
        spans;
      List.iter
        (fun c ->
          check "counter has name" true (Json.member "name" c <> None);
          check "counter has value" true (Json.member "value" c <> None))
        (field "counters");
      List.iter
        (fun g ->
          List.iter
            (fun k -> check ("gauge has " ^ k) true (Json.member k g <> None))
            [ "name"; "last"; "max" ])
        (field "gauges"))

let test_chrome_trace_schema () =
  with_obs (fun () ->
      ignore (Universe.enumerate ~mode:`Canonical chatter ~depth:4);
      let j = Json.parse (Hpl_obs.chrome_trace ()) in
      match Json.arr j with
      | None -> Alcotest.fail "chrome trace is not an array"
      | Some events ->
          check "some events" true (events <> []);
          List.iter
            (fun ev ->
              List.iter
                (fun k ->
                  check ("event has " ^ k) true (Json.member k ev <> None))
                [ "name"; "ph"; "ts"; "pid"; "tid" ])
            events)

let test_profile_roundtrip () =
  with_obs (fun () ->
      ignore (Universe.enumerate ~mode:`Canonical chatter ~depth:3);
      let in_memory = Hpl_obs.chrome_trace () in
      let path = Filename.temp_file "hpl" ".profile.json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          (match Hpl_obs.write_profile path with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write_profile: %s" e);
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let on_disk = really_input_string ic len in
          close_in ic;
          let count s =
            match Json.arr (Json.parse s) with
            | Some xs -> List.length xs
            | None -> Alcotest.fail "profile is not an array"
          in
          check_int "same event count on disk" (count in_memory)
            (count on_disk)))

let test_profile_unwritable () =
  with_obs (fun () ->
      match Hpl_obs.write_profile "/nonexistent-dir/x/profile.json" with
      | Ok () -> Alcotest.fail "expected Error on unwritable path"
      | Error e -> check "one-line message" true (not (String.contains e '\n')))

let suite =
  [
    ("disabled probes are transparent", `Quick, test_disabled_transparent);
    ("disabled span re-raises", `Quick, test_disabled_span_reraises);
    ("states counter = universe size", `Quick, test_states_counter_matches_size);
    ("extent evals counter", `Quick, test_extent_evals_counter);
    ("lint findings counter", `Quick, test_lint_findings_counter);
    ("lint child spans sum to total", `Quick, test_lint_children_account_for_total);
    ("stats json schema", `Quick, test_stats_json_schema);
    ("chrome trace schema", `Quick, test_chrome_trace_schema);
    ("profile round-trips", `Quick, test_profile_roundtrip);
    ("profile unwritable path", `Quick, test_profile_unwritable);
  ]
