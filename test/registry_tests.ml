(* Registry-driven generic coverage: every registered protocol is
   enumerated at a small depth and subjected to the same battery —
   spec validity, atom-environment resolution inside formulas,
   canonical-trace membership, and a knowledge-fact sample. Per-module
   suites test what is special about each protocol; this suite tests
   what must hold for all of them, which is also what keeps the CLI's
   generic dispatch honest. *)
open Hpl_core
open Hpl_protocols

let () = Builtins.init ()
let check = Alcotest.check
let tbool = Alcotest.bool

let test_depth t = min (Protocol.suggested_depth t) 5

let universe_of t =
  let inst = Protocol.default_instance t in
  (inst, Universe.enumerate ~mode:`Canonical (Protocol.spec_of inst)
           ~depth:(test_depth t))

(* one shared enumeration per protocol — the battery below reuses it *)
let universes =
  lazy (List.map (fun t -> (t, universe_of t)) (Protocol.Registry.list ()))

let test_registry_size () =
  check tbool "at least 25 protocols registered" true
    (List.length (Protocol.Registry.list ()) >= 25)

let test_names_roundtrip () =
  List.iter
    (fun t ->
      let name = Protocol.name t in
      (match Protocol.Registry.parse name with
      | Ok inst ->
          check Alcotest.string
            (name ^ " instance_name round-trips")
            (Protocol.instance_name inst)
            (match Protocol.Registry.parse (Protocol.instance_name inst) with
            | Ok i -> Protocol.instance_name i
            | Error e -> e)
      | Error e -> Alcotest.failf "%s does not parse: %s" name e);
      check tbool (name ^ " findable") true
        (Protocol.Registry.find name <> None))
    (Protocol.Registry.list ())

let test_param_validation () =
  let fails s =
    match Protocol.Registry.parse s with Ok _ -> false | Error _ -> true
  in
  check tbool "unknown name rejected" true (fails "no-such-protocol");
  check tbool "below lower bound rejected" true (fails "token-bus:1");
  check tbool "excess parameters rejected" true (fails "token-bus:5:9");
  check tbool "non-integer rejected" true (fails "gossip:abc");
  check tbool "valid override accepted" true (not (fails "token-bus:3"))

let test_specs_enumerate_validly () =
  List.iter
    (fun (t, (_, u)) ->
      let name = Protocol.name t in
      check tbool (name ^ " does something") true (Universe.size u >= 2);
      let spec = Universe.spec u in
      let checked = ref 0 in
      Universe.iter
        (fun _ z ->
          if !checked < 25 then begin
            incr checked;
            match Spec.validity_error spec z with
            | None -> ()
            | Some e -> Alcotest.failf "%s: invalid computation: %s" name e
          end)
        u)
    (Lazy.force universes)

let test_first_walk_membership () =
  List.iter
    (fun (t, (inst, u)) ->
      let name = Protocol.name t in
      let spec = Protocol.spec_of inst in
      let z = Protocol.first_walk spec ~depth:(test_depth t) in
      check tbool (name ^ " first walk valid") true (Spec.valid spec z);
      check tbool
        (name ^ " first walk found in universe")
        true
        (Universe.find u z <> None))
    (Lazy.force universes)

let test_canonical_traces () =
  List.iter
    (fun (t, (inst, u)) ->
      match Protocol.canonical_trace_of inst with
      | None -> ()
      | Some z ->
          let name = Protocol.name t in
          check tbool (name ^ " canonical trace valid") true
            (Spec.valid (Protocol.spec_of inst) z);
          if Trace.length z <= test_depth t then
            check tbool
              (name ^ " canonical trace in universe")
              true
              (Universe.find u z <> None))
    (Lazy.force universes)

(* every advertised atom must parse as a formula atom and evaluate
   without [Error] over the protocol's small universe — this is what
   `hpl check -s <name>` relies on *)
let test_atoms_resolve_in_formulas () =
  List.iter
    (fun (t, (inst, u)) ->
      let name = Protocol.name t in
      let env = Protocol.atom_env inst in
      List.iter
        (fun (atom, prop) ->
          (match Formula.parse atom with
          | Ok (Formula.Atom a) ->
              check Alcotest.string (name ^ " atom lexes as itself") atom a
          | Ok f ->
              Alcotest.failf "%s: atom %s parses as non-atom %s" name atom
                (Formula.print f)
          | Error e -> Alcotest.failf "%s: atom %s: %s" name atom e);
          (match Formula.parse (Printf.sprintf "EF %s" atom) with
          | Error e -> Alcotest.failf "%s: EF %s: %s" name atom e
          | Ok f -> (
              match Formula.check u ~env f with
              | Error e ->
                  Alcotest.failf "%s: checking EF %s: %s" name atom e
              | Ok _ -> ()));
          (* the environment resolves the atom to its registered prop *)
          (match env atom with
          | None -> Alcotest.failf "%s: atom %s unresolved" name atom
          | Some p ->
              Universe.iter
                (fun _ z ->
                  check tbool
                    (name ^ "." ^ atom ^ " agrees with env")
                    (Prop.eval prop z) (Prop.eval p z))
                u))
        (Protocol.atoms_of inst))
    (Lazy.force universes)

(* a knowledge sample per protocol: K_p(atom) is computable and
   satisfies the knowledge axiom (K_p b -> b), paper fact 1 *)
let test_knowledge_facts_sample () =
  List.iter
    (fun (t, (inst, u)) ->
      match Protocol.atoms_of inst with
      | [] -> ()
      | (atom, fact) :: _ ->
          let name = Protocol.name t in
          let n = Spec.n (Universe.spec u) in
          for i = 0 to min (n - 1) 2 do
            let p = Pid.of_int i in
            let k = Knowledge.knows_p u p fact in
            Universe.iter
              (fun _ z ->
                if Prop.eval k z then
                  check tbool
                    (Printf.sprintf "%s: K p%d %s -> %s" name i atom atom)
                    true (Prop.eval fact z))
              u
          done)
    (Lazy.force universes)

let suite =
  [
    Alcotest.test_case "registry has >= 25 protocols" `Quick test_registry_size;
    Alcotest.test_case "names parse and round-trip" `Quick test_names_roundtrip;
    Alcotest.test_case "parameter validation" `Quick test_param_validation;
    Alcotest.test_case "every spec enumerates validly" `Quick
      test_specs_enumerate_validly;
    Alcotest.test_case "first-walk traces are members" `Quick
      test_first_walk_membership;
    Alcotest.test_case "canonical traces are valid members" `Quick
      test_canonical_traces;
    Alcotest.test_case "atoms resolve inside formulas" `Quick
      test_atoms_resolve_in_formulas;
    Alcotest.test_case "knowledge sample satisfies axiom T" `Quick
      test_knowledge_facts_sample;
  ]
