(* Property-based tests over randomly generated computations.

   A computation generator walks Spec.extensions with random choices,
   so every generated trace is a genuine system computation of a
   genuine system; properties then exercise the §2/§3 algebra, the
   canonicalization, causality, clocks, cuts and fusion on thousands of
   machine-built instances rather than hand-picked ones. *)
open Hpl_core

let specs =
  [
    ("chatter3", Fixtures.chatter ~n:3 ~k:2, 3);
    ("ping-pong", Fixtures.ping_pong, 2);
    ("token-bus3", Hpl_protocols.Token_bus.spec ~n:3, 3);
    ("two-generals", Hpl_protocols.Two_generals.spec, 2);
  ]

(* random walk of at most [steps] extensions, driven by a list of ints *)
let walk spec steps choices =
  let rec go z k choices =
    if k >= steps then z
    else
      match (Spec.enabled spec z, choices) with
      | [], _ | _, [] -> z
      | events, c :: rest ->
          let e = List.nth events (abs c mod List.length events) in
          go (Trace.snoc z e) (k + 1) rest
  in
  go Trace.empty 0 choices

let gen_spec_trace =
  QCheck.make
    ~print:(fun (name, _, _, z) -> Printf.sprintf "%s: %s" name (Trace.to_string z))
    QCheck.Gen.(
      oneofl specs >>= fun (name, spec, n) ->
      int_range 0 8 >>= fun steps ->
      list_size (return steps) (int_bound 1000) >>= fun choices ->
      return (name, spec, n, walk spec steps choices))

let gen_pset n =
  QCheck.Gen.(
    list_size (return n) bool >|= fun bits ->
    List.fold_left
      (fun (i, acc) b ->
        (i + 1, if b then Pset.add (Pid.of_int i) acc else acc))
      (0, Pset.empty) bits
    |> snd)

let gen_trace_with_psets =
  QCheck.make
    ~print:(fun (name, _, _, z, _) ->
      Printf.sprintf "%s: %s" name (Trace.to_string z))
    QCheck.Gen.(
      oneofl specs >>= fun (name, spec, n) ->
      int_range 0 8 >>= fun steps ->
      list_size (return steps) (int_bound 1000) >>= fun choices ->
      int_range 1 3 >>= fun chain_len ->
      list_size (return chain_len) (gen_pset n) >>= fun psets ->
      return (name, spec, n, walk spec steps choices, psets))

let t name count gen prop = QCheck.Test.make ~name ~count gen prop

let props =
  [
    (* -- model ----------------------------------------------------- *)
    t "walks are valid computations" 300 gen_spec_trace (fun (_, spec, _, z) ->
        Trace.well_formed z && Spec.valid spec z);
    t "prefixes of walks are valid" 300 gen_spec_trace (fun (_, spec, _, z) ->
        let es = Trace.to_list z in
        List.for_all
          (fun k ->
            Spec.valid spec (Trace.of_list (List.filteri (fun i _ -> i < k) es)))
          (List.init (Trace.length z + 1) (fun i -> i)));
    t "in_flight = sent - received" 300 gen_spec_trace (fun (_, _, _, z) ->
        List.length (Trace.in_flight z)
        = List.length (Trace.sent z) - List.length (Trace.received z));
    t "projections partition the trace" 300 gen_spec_trace (fun (_, _, n, z) ->
        Trace.length z
        = List.fold_left
            (fun acc i -> acc + Trace.local_length z (Pid.of_int i))
            0
            (List.init n (fun i -> i)));
    (* -- canonicalization ------------------------------------------ *)
    t "canon is a permutation" 300 gen_spec_trace (fun (_, spec, _, z) ->
        let u = Universe.enumerate ~mode:`Canonical spec ~depth:0 in
        Trace.permutation_of z (Universe.canon u z));
    t "canon is idempotent" 300 gen_spec_trace (fun (_, spec, _, z) ->
        let u = Universe.enumerate ~mode:`Canonical spec ~depth:0 in
        let c = Universe.canon u z in
        Trace.equal c (Universe.canon u c));
    t "canon is lexicographically least" 300 gen_spec_trace
      (fun (_, spec, _, z) ->
        let u = Universe.enumerate ~mode:`Canonical spec ~depth:0 in
        let c = Universe.canon u z in
        List.compare Event.compare (Trace.to_list c) (Trace.to_list z) <= 0);
    t "canon preserves validity" 300 gen_spec_trace (fun (_, spec, _, z) ->
        let u = Universe.enumerate ~mode:`Canonical spec ~depth:0 in
        Spec.valid spec (Universe.canon u z));
    (* -- isomorphism algebra (trace level) -------------------------- *)
    t "iso reflexive" 300 gen_trace_with_psets (fun (_, _, _, z, psets) ->
        List.for_all (fun ps -> Isomorphism.iso z z ps) psets);
    t "largest label symmetric" 300 gen_spec_trace (fun (_, spec, n, z) ->
        let all = Pset.all n in
        let z' = walk spec 4 [ 1; 2; 3; 4 ] in
        Pset.equal
          (Isomorphism.largest_label all z z')
          (Isomorphism.largest_label all z' z));
    (* -- causality --------------------------------------------------- *)
    t "hb is antisymmetric" 200 gen_spec_trace (fun (_, _, n, z) ->
        let ts = Causality.compute ~n z in
        let len = Causality.length ts in
        let ok = ref true in
        for i = 0 to len - 1 do
          for j = 0 to len - 1 do
            if i <> j && Causality.hb ts i j && Causality.hb ts j i then ok := false
          done
        done;
        !ok);
    t "hb is transitive" 200 gen_spec_trace (fun (_, _, n, z) ->
        let ts = Causality.compute ~n z in
        let len = Causality.length ts in
        let ok = ref true in
        for i = 0 to len - 1 do
          for j = 0 to len - 1 do
            for k = 0 to len - 1 do
              if Causality.hb ts i j && Causality.hb ts j k && not (Causality.hb ts i k)
              then ok := false
            done
          done
        done;
        !ok);
    t "hb respects trace order" 200 gen_spec_trace (fun (_, _, n, z) ->
        let ts = Causality.compute ~n z in
        let len = Causality.length ts in
        let ok = ref true in
        for i = 0 to len - 1 do
          for j = 0 to i - 1 do
            (* a later event never happens-before an earlier one *)
            if Causality.hb ts i j then ok := false
          done
        done;
        !ok);
    t "vector clocks characterize hb" 200 gen_spec_trace (fun (_, _, n, z) ->
        Hpl_clocks.Vector.characterizes_causality ~n z);
    t "lamport consistent with hb" 200 gen_spec_trace (fun (_, _, n, z) ->
        Hpl_clocks.Lamport.consistent_with_causality ~n z);
    (* -- chains ------------------------------------------------------- *)
    t "naive chain = dp chain" 300 gen_trace_with_psets
      (fun (_, _, n, z, psets) ->
        Chain.exists ~n ~z psets = Chain.exists_naive ~n ~z psets);
    t "chain monotone in suffix" 200 gen_trace_with_psets
      (fun (_, _, n, z, psets) ->
        (* a chain in a later suffix exists in any earlier one *)
        Trace.length z < 2
        ||
        let es = Trace.to_list z in
        let x1 = Trace.of_list (List.filteri (fun i _ -> i < 1) es) in
        (not (Chain.exists ~n ~x:x1 ~z psets)) || Chain.exists ~n ~z psets);
    t "chain padding (observation 1)" 200 gen_trace_with_psets
      (fun (_, _, n, z, psets) ->
        match psets with
        | p :: rest ->
            Chain.exists ~n ~z (p :: rest) = Chain.exists ~n ~z (p :: p :: rest)
        | [] -> true);
    (* -- cuts ----------------------------------------------------------- *)
    t "prefix cuts are consistent" 300 gen_spec_trace (fun (_, _, n, z) ->
        Cut.consistent ~n z (Cut.of_prefix ~n z));
    t "consistent cuts closed under join/meet" 100 gen_spec_trace
      (fun (_, _, n, z) ->
        Trace.length z > 6
        ||
        let cuts = Cut.all_consistent ~n z in
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                Cut.consistent ~n z (Cut.join a b)
                && Cut.consistent ~n z (Cut.meet a b))
              cuts)
          cuts);
    t "at least length+1 consistent cuts" 100 gen_spec_trace
      (fun (_, _, n, z) ->
        Trace.length z > 6 || Cut.count_consistent ~n z >= Trace.length z + 1);
    t "cut sub-computations well-formed" 100 gen_spec_trace
      (fun (_, _, n, z) ->
        Trace.length z > 6
        || List.for_all
             (fun c -> Trace.well_formed (Cut.sub_computation z c))
             (Cut.all_consistent ~n z));
    (* -- fusion ------------------------------------------------------------ *)
    t "theorem2 fusions verify when admitted" 200 gen_trace_with_psets
      (fun (_, spec, n, z, psets) ->
        let all = Pset.all n in
        let p = match psets with ps :: _ -> ps | [] -> Pset.empty in
        (* x = some prefix, y = z, z' = an alternative extension of x *)
        let es = Trace.to_list z in
        let x =
          Trace.of_list (List.filteri (fun i _ -> i < Trace.length z / 2) es)
        in
        let z' = walk spec 3 [ 7; 5; 3 ] in
        if not (Trace.is_prefix x z') then true
        else
          match Fusion.theorem2 ~all ~n ~x ~y:z ~z:z' ~p with
          | Ok w ->
              Fusion.verify_theorem2 ~all ~x ~y:z ~z:z' ~p ~w
              && Spec.valid spec w
          | Error _ -> true);
  ]

(* -- §3 algebra hardening: seeded, registry-driven cases ----------------

   Every case is a pair (registry protocol, seed): all random choices
   — computation indices, process sets, composition chains — are
   derived from [Random.State.make [| seed |]], so the QCheck failure
   printout ("token-bus seed=481327") is a complete replay recipe: feed
   the same pair back through [case_rng] and the exact instance
   reappears. Universes are enumerated once per protocol and memoized;
   the depths below keep every universe small enough (5-106
   computations) that the O(U²) law checks stay fast across 200 cases
   per law. *)

let registry_pool =
  [
    ("ping-pong", 6);
    ("two-generals", 6);
    ("token-bus", 5);
    ("token-ring", 5);
    ("gossip", 4);
    ("echo", 4);
    ("causal-broadcast", 5);
    ("two-phase-commit", 4);
    ("bully", 4);
    ("chatter", 4);
  ]

(* protocols whose spec terminates below the given depth, so the
   enumerated universe is the complete computation set (checked by
   enumerating two levels deeper and comparing sizes). Theorem 3's
   send-grows direction quantifies over intermediate computations [y]
   at any depth; on a truncated universe the witness [y; e] can fall
   outside the bound and spuriously fail the check, so that law only
   draws from this pool. *)
let saturated_pool =
  [
    ("ping-pong", 6);
    ("chatter", 4);
    ("credit", 8);
    ("lamport-mutex", 8);
    ("tracking", 6);
    ("deadlock", 8);
    ("probe", 8);
  ]

(* universe, process count, and per-process "ever acts in some
   computation" flags (the extensionality caveat needs the latter) *)
let protocol_env =
  let tbl = Hashtbl.create 16 in
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
        Hpl_protocols.Builtins.init ();
        let depth = List.assoc name (registry_pool @ saturated_pool) in
        let inst =
          match Hpl_protocols.Protocol.Registry.parse name with
          | Ok i -> i
          | Error e -> failwith e
        in
        let spec = Hpl_protocols.Protocol.spec_of inst in
        let u = Universe.enumerate ~mode:`Canonical spec ~depth in
        let n = Spec.n spec in
        let active = Array.make n false in
        Universe.iter
          (fun _ z ->
            for i = 0 to n - 1 do
              if Trace.local_length z (Pid.of_int i) > 0 then active.(i) <- true
            done)
          u;
        let v = (u, n, active) in
        Hashtbl.add tbl name v;
        v

let case_rng seed = Random.State.make [| 0x9e37; seed |]

let gen_case_from pool =
  QCheck.make
    ~print:(fun (name, seed) -> Printf.sprintf "%s seed=%d" name seed)
    QCheck.Gen.(pair (oneofl (List.map fst pool)) (int_bound 1_000_000))

let gen_case = gen_case_from registry_pool

let pick_idx st u = Random.State.int st (Universe.size u)

let pick_pset st n =
  let ps = ref Pset.empty in
  for i = 0 to n - 1 do
    if Random.State.bool st then ps := Pset.add (Pid.of_int i) !ps
  done;
  !ps

let pick_chain st n len = List.init len (fun _ -> pick_pset st n)

(* one hardening law: 200 seeded cases, each deriving its instance from
   the case's own rng so failures replay bit-for-bit *)
let law_from pool name prop =
  t ("hardening: " ^ name) 200 (gen_case_from pool) (fun (proto, seed) ->
      let u, n, active = protocol_env proto in
      let st = case_rng seed in
      prop u n active st)

let law name prop = law_from registry_pool name prop

let hardening =
  [
    (* the ten §3 laws, numbered as in isomorphism.mli *)
    law "equivalence (1)" (fun u n _ st ->
        Isomorphism.Laws.equivalence u (pick_pset st n));
    law "substitution (2)" (fun u n _ st ->
        let alpha = pick_chain st n (Random.State.int st 3) in
        let gamma = pick_chain st n (Random.State.int st 3) in
        let beta = pick_pset st n in
        (* force the [β] = [δ] premise true half the time *)
        let delta = if Random.State.bool st then beta else pick_pset st n in
        Isomorphism.Laws.substitution u alpha beta delta gamma (pick_idx st u)
          (pick_idx st u));
    law "idempotence (3)" (fun u n _ st ->
        Isomorphism.Laws.idempotence u (pick_pset st n) (pick_idx st u)
          (pick_idx st u));
    law "reflexivity (4)" (fun u n _ st ->
        Isomorphism.Laws.reflexivity u
          (pick_chain st n (1 + Random.State.int st 3))
          (pick_idx st u));
    law "inversion (5)" (fun u n _ st ->
        Isomorphism.Laws.inversion u
          (pick_chain st n (1 + Random.State.int st 3))
          (pick_idx st u) (pick_idx st u));
    law "concatenation (6)" (fun u n _ st ->
        Isomorphism.Laws.concatenation u
          (pick_chain st n (1 + Random.State.int st 2))
          (pick_chain st n (1 + Random.State.int st 2))
          (pick_idx st u) (pick_idx st u));
    law "union-inter (7)" (fun u n _ st ->
        Isomorphism.Laws.union_inter u (pick_pset st n) (pick_pset st n)
          (pick_idx st u) (pick_idx st u));
    law "monotonicity (8)" (fun u n _ st ->
        let p = pick_pset st n in
        (* make P ⊆ Q hold half the time so the premise is exercised *)
        let q =
          if Random.State.bool st then Pset.union p (pick_pset st n)
          else pick_pset st n
        in
        Isomorphism.Laws.monotonicity u p q (pick_idx st u) (pick_idx st u));
    law "extensionality (9)" (fun u n active st ->
        let p = pick_pset st n and q = pick_pset st n in
        let diff = Pset.union (Pset.diff p q) (Pset.diff q p) in
        if Pset.for_all (fun pid -> active.(Pid.to_int pid)) diff then
          Isomorphism.Laws.extensionality u p q
        else
          (* the documented caveat: a process with no event anywhere in
             the universe cannot separate [P] from [Q], so only the
             trivial direction is owed *)
          (not (Pset.equal p q)) || Isomorphism.Laws.same_relation u p q);
    law "subsumption (10)" (fun u n _ st ->
        let p = pick_pset st n in
        let q =
          if Random.State.bool st then Pset.union p (pick_pset st n)
          else pick_pset st n
        in
        Isomorphism.Laws.subsumption u q p (pick_idx st u) (pick_idx st u));
    (* Theorem 1: x [P1…Pn] z or a chain <P1…Pn> exists in (x,z) *)
    law "theorem1 dichotomy" (fun u n _ st ->
        let zi = pick_idx st u in
        let z = Universe.comp u zi in
        let prefixes = Universe.prefixes_of u zi in
        let xi = List.nth prefixes (Random.State.int st (List.length prefixes)) in
        let x = Universe.comp u xi in
        let psets = pick_chain st n (1 + Random.State.int st 3) in
        (not (Trace.is_prefix x z)) || Theorem1.dichotomy_holds u ~x ~z psets);
    (* Theorem 3: receives shrink iso_set, sends grow it, internal
       events preserve it — at (x; e) for a stored z = x; e *)
    law_from saturated_pool "theorem3 monotonicity" (fun u n _ st ->
        let zi = pick_idx st u in
        let ok i = Trace.length (Universe.comp u i) >= 1 in
        match List.filter ok (Universe.prefixes_of u zi) with
        | [] -> true
        | cands ->
            let z =
              Universe.comp u
                (List.nth cands (Random.State.int st (List.length cands)))
            in
            let es = Trace.to_list z in
            let e = List.nth es (List.length es - 1) in
            let x =
              Trace.of_list
                (List.filteri (fun i _ -> i < List.length es - 1) es)
            in
            (* p must contain e's process; pad with random extras *)
            let p = Pset.add e.Event.pid (pick_pset st n) in
            Extension.check_theorem3 u ~p ~x ~e);
  ]

let suite =
  List.map (fun p -> QCheck_alcotest.to_alcotest ~verbose:false p)
    (props @ hardening)
