#!/usr/bin/env bash
# Exit-code discipline of the hpl CLI:
#   0 = ok, 1 = property violated, 2 = bad arguments, 3 = budget-truncated.
# Bad -s/--depth/--faults/budget arguments must produce ONE line on
# stderr and exit 2 — not a backtrace, not cmdliner's generic error.
set -u
HPL="$1"
fails=0

expect() { # expect <code> <what> -- <args...>
  local want="$1" what="$2"; shift 3
  local err
  err=$("$HPL" "$@" 2>&1 >/dev/null)
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $what: expected exit $want, got $got" >&2
    fails=$((fails + 1))
  fi
  case "$want" in
  2)
    if [ "$(printf '%s\n' "$err" | grep -c .)" -ne 1 ]; then
      echo "FAIL: $what: expected one-line stderr, got:" >&2
      printf '%s\n' "$err" >&2
      fails=$((fails + 1))
    fi
    if printf '%s' "$err" | grep -qi backtrace; then
      echo "FAIL: $what: stderr contains a backtrace" >&2
      fails=$((fails + 1))
    fi
    ;;
  esac
}

# ok paths
expect 0 "plain enumerate" -- enumerate -s ping-pong
expect 0 "faulty enumerate" -- enumerate -s ping-pong --faults 'drop:p0->p1'
expect 0 "valid check" -- check -s token-ring 'AG (holds0 -> ~holds1)'

# bad arguments: one line, exit 2
expect 2 "unknown protocol" -- enumerate -s no-such-protocol
expect 2 "bad protocol params" -- enumerate -s token-ring:1
expect 2 "non-integer depth" -- enumerate -s ping-pong --depth=x
expect 2 "negative depth" -- enumerate -s ping-pong --depth=-3
expect 2 "unknown fault item" -- knows -s ping-pong --faults 'explode:p0'
expect 2 "malformed crash item" -- knows -s ping-pong --faults 'crash:p1'
expect 2 "fault pid out of range" -- knows -s ping-pong --faults 'crash:p7@1'
expect 2 "bad max-states" -- enumerate -s ping-pong --max-states 0
expect 2 "bad max-seconds" -- enumerate -s ping-pong --max-seconds nope
expect 2 "formula parse error" -- check -s ping-pong 'AG (('
expect 2 "unknown drop channel" -- enumerate -s token-ring --faults 'drop:p0->p2'
expect 2 "unknown dup channel" -- knows -s token-ring --faults 'dup:p2->p1'
expect 2 "lint unknown protocol" -- lint -s no-such-protocol
expect 2 "lint formula parse error" -- lint -s ping-pong --formula 'AG (('
expect 2 "lint --all with formula" -- lint --all --formula 'true'

# lint: clean spec exits 0, unlearnable assertion exits 1 with the rule named
expect 0 "lint clean" -- lint -s token-ring
expect 1 "lint unlearnable formula" -- lint -s underlying:3 --formula 'K p0 chaindone'
expect 1 "lint lossy gain chain" -- lint -s two-generals --faults 'drop:*' --formula 'K p1 attack'

# property violated: exit 1
expect 1 "failing formula" -- check -s token-ring 'AG holds0'

# budget truncation: exit 3
expect 3 "state budget" -- enumerate -s chatter:3 -d 8 --max-states 50

# -- observability golden shapes ---------------------------------------

# --stats: the aggregate table with the three section headers and a row
# for the enumerate span
stats_out=$("$HPL" enumerate -s two-generals --depth 6 --stats 2>/dev/null)
for pat in '^span  *count  *total  *max$' '^counter  *value$' \
  '^gauge  *last  *max$' '^  enumerate  ' '^  enumerate\.frontier  ' \
  '^  enumerate\.states  *7$'; do
  if ! printf '%s\n' "$stats_out" | grep -Eq "$pat"; then
    echo "FAIL: --stats table: no line matching '$pat'" >&2
    fails=$((fails + 1))
  fi
done

# --stats-json: the last stdout line is one JSON object with the three
# documented schema keys
json_line=$("$HPL" enumerate -s two-generals --depth 6 --stats-json 2>/dev/null | tail -n 1)
case "$json_line" in
{*}) ;;
*)
  echo "FAIL: --stats-json: last line is not a JSON object: $json_line" >&2
  fails=$((fails + 1))
  ;;
esac
for key in '"spans":' '"counters":' '"gauges":' '"total_us":'; do
  if ! printf '%s' "$json_line" | grep -qF "$key"; then
    echo "FAIL: --stats-json: missing $key" >&2
    fails=$((fails + 1))
  fi
done

# --profile: unwritable path is a usage error (one line, exit 2)
expect 2 "unwritable profile path" -- enumerate -s ping-pong --profile /no-such-dir/t.json

# --profile: a Chrome trace-event array lands on disk
profile=$(mktemp /tmp/hpl-profile.XXXXXX.json)
if "$HPL" enumerate -s two-generals --depth 6 --profile "$profile" >/dev/null 2>&1; then
  case "$(head -c 1 "$profile")" in
  '[') ;;
  *)
    echo "FAIL: --profile: file does not start with '['" >&2
    fails=$((fails + 1))
    ;;
  esac
  for key in '"ph"' '"tid"' '"ts"' '"name"'; do
    if ! grep -qF "$key" "$profile"; then
      echo "FAIL: --profile: no $key field in trace" >&2
      fails=$((fails + 1))
    fi
  done
else
  echo "FAIL: --profile: enumerate exited nonzero" >&2
  fails=$((fails + 1))
fi
rm -f "$profile"

# the flags ride along on the other instrumented subcommands too
expect 0 "knows --stats" -- knows -s ping-pong --stats
expect 0 "check --stats-json" -- check -s token-ring 'AG (holds0 -> ~holds1)' --stats-json
expect 0 "lint --stats" -- lint -s token-ring --stats

if [ "$fails" -ne 0 ]; then
  echo "cli_errors: $fails failure(s)" >&2
  exit 1
fi
echo "cli_errors: all checks passed"
