#!/usr/bin/env bash
# Exit-code discipline of the hpl CLI:
#   0 = ok, 1 = property violated, 2 = bad arguments, 3 = budget-truncated.
# Bad -s/--depth/--faults/budget arguments must produce ONE line on
# stderr and exit 2 — not a backtrace, not cmdliner's generic error.
set -u
HPL="$1"
fails=0

expect() { # expect <code> <what> -- <args...>
  local want="$1" what="$2"; shift 3
  local err
  err=$("$HPL" "$@" 2>&1 >/dev/null)
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $what: expected exit $want, got $got" >&2
    fails=$((fails + 1))
  fi
  case "$want" in
  2)
    if [ "$(printf '%s\n' "$err" | grep -c .)" -ne 1 ]; then
      echo "FAIL: $what: expected one-line stderr, got:" >&2
      printf '%s\n' "$err" >&2
      fails=$((fails + 1))
    fi
    if printf '%s' "$err" | grep -qi backtrace; then
      echo "FAIL: $what: stderr contains a backtrace" >&2
      fails=$((fails + 1))
    fi
    ;;
  esac
}

# ok paths
expect 0 "plain enumerate" -- enumerate -s ping-pong
expect 0 "faulty enumerate" -- enumerate -s ping-pong --faults 'drop:p0->p1'
expect 0 "valid check" -- check -s token-ring 'AG (holds0 -> ~holds1)'

# bad arguments: one line, exit 2
expect 2 "unknown protocol" -- enumerate -s no-such-protocol
expect 2 "bad protocol params" -- enumerate -s token-ring:1
expect 2 "non-integer depth" -- enumerate -s ping-pong --depth=x
expect 2 "negative depth" -- enumerate -s ping-pong --depth=-3
expect 2 "unknown fault item" -- knows -s ping-pong --faults 'explode:p0'
expect 2 "malformed crash item" -- knows -s ping-pong --faults 'crash:p1'
expect 2 "fault pid out of range" -- knows -s ping-pong --faults 'crash:p7@1'
expect 2 "bad max-states" -- enumerate -s ping-pong --max-states 0
expect 2 "bad max-seconds" -- enumerate -s ping-pong --max-seconds nope
expect 2 "formula parse error" -- check -s ping-pong 'AG (('
expect 2 "unknown drop channel" -- enumerate -s token-ring --faults 'drop:p0->p2'
expect 2 "unknown dup channel" -- knows -s token-ring --faults 'dup:p2->p1'
expect 2 "lint unknown protocol" -- lint -s no-such-protocol
expect 2 "lint formula parse error" -- lint -s ping-pong --formula 'AG (('
expect 2 "lint --all with formula" -- lint --all --formula 'true'

# lint: clean spec exits 0, unlearnable assertion exits 1 with the rule named
expect 0 "lint clean" -- lint -s token-ring
expect 1 "lint unlearnable formula" -- lint -s underlying:3 --formula 'K p0 chaindone'
expect 1 "lint lossy gain chain" -- lint -s two-generals --faults 'drop:*' --formula 'K p1 attack'

# property violated: exit 1
expect 1 "failing formula" -- check -s token-ring 'AG holds0'

# budget truncation: exit 3
expect 3 "state budget" -- enumerate -s chatter:3 -d 8 --max-states 50

if [ "$fails" -ne 0 ]; then
  echo "cli_errors: $fails failure(s)" >&2
  exit 1
fi
echo "cli_errors: all checks passed"
