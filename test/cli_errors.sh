#!/usr/bin/env bash
# Exit-code discipline of the hpl CLI:
#   0 = ok, 1 = property violated, 2 = bad arguments, 3 = budget-truncated.
# Bad -s/--depth/--faults/budget arguments must produce ONE line on
# stderr and exit 2 — not a backtrace, not cmdliner's generic error.
set -u
HPL="$1"
fails=0

expect() { # expect <code> <what> -- <args...>
  local want="$1" what="$2"; shift 3
  local err
  err=$("$HPL" "$@" 2>&1 >/dev/null)
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $what: expected exit $want, got $got" >&2
    fails=$((fails + 1))
  fi
  case "$want" in
  2)
    if [ "$(printf '%s\n' "$err" | grep -c .)" -ne 1 ]; then
      echo "FAIL: $what: expected one-line stderr, got:" >&2
      printf '%s\n' "$err" >&2
      fails=$((fails + 1))
    fi
    if printf '%s' "$err" | grep -qi backtrace; then
      echo "FAIL: $what: stderr contains a backtrace" >&2
      fails=$((fails + 1))
    fi
    ;;
  esac
}

# ok paths
expect 0 "plain enumerate" -- enumerate -s ping-pong
expect 0 "faulty enumerate" -- enumerate -s ping-pong --faults 'drop:p0->p1'
expect 0 "valid check" -- check -s token-ring 'AG (holds0 -> ~holds1)'

# bad arguments: one line, exit 2
expect 2 "unknown protocol" -- enumerate -s no-such-protocol
expect 2 "bad protocol params" -- enumerate -s token-ring:1
expect 2 "non-integer depth" -- enumerate -s ping-pong --depth=x
expect 2 "negative depth" -- enumerate -s ping-pong --depth=-3
expect 2 "unknown fault item" -- knows -s ping-pong --faults 'explode:p0'
expect 2 "malformed crash item" -- knows -s ping-pong --faults 'crash:p1'
expect 2 "fault pid out of range" -- knows -s ping-pong --faults 'crash:p7@1'
expect 2 "bad max-states" -- enumerate -s ping-pong --max-states 0
expect 2 "bad max-seconds" -- enumerate -s ping-pong --max-seconds nope
expect 2 "formula parse error" -- check -s ping-pong 'AG (('
expect 2 "unknown drop channel" -- enumerate -s token-ring --faults 'drop:p0->p2'
expect 2 "unknown dup channel" -- knows -s token-ring --faults 'dup:p2->p1'
expect 2 "lint unknown protocol" -- lint -s no-such-protocol
expect 2 "lint formula parse error" -- lint -s ping-pong --formula 'AG (('
expect 2 "lint --all with formula" -- lint --all --formula 'true'

# lint: clean spec exits 0, unlearnable assertion exits 1 with the rule named
expect 0 "lint clean" -- lint -s token-ring
expect 1 "lint unlearnable formula" -- lint -s underlying:3 --formula 'K p0 chaindone'
expect 1 "lint lossy gain chain" -- lint -s two-generals --faults 'drop:*' --formula 'K p1 attack'

# property violated: exit 1
expect 1 "failing formula" -- check -s token-ring 'AG holds0'

# -- .hpl spec files (-f) ----------------------------------------------
# Malformed specs die with ONE file:line:col line on stderr and exit 2;
# well-formed specs flow through the same subcommands as -s names.

hpldir=$(mktemp -d /tmp/hpl-specs.XXXXXX)

cat > "$hpldir/good.hpl" <<'EOF'
protocol good {
  param n = 3 min 2
  processes n
  depth 4
  process * {
    when sends < 1 => send "m" to (me + 1) % n
    when recvs < 1 => recv
  }
  atom moved at 0 = sends > 0
  symmetry rotation
}
EOF

cat > "$hpldir/bad_bounds.hpl" <<'EOF'
protocol badbounds {
  param n = 1 min 2 max 4
  processes n
}
EOF

cat > "$hpldir/bad_process.hpl" <<'EOF'
protocol badprocess {
  processes 2
  process 5 {
    when len < 1 => recv
  }
}
EOF

cat > "$hpldir/dup_atom.hpl" <<'EOF'
protocol dupatom {
  processes 2
  process * { when len < 1 => recv }
  atom seen at 0 = recvs > 0
  atom seen at 1 = recvs > 0
}
EOF

cat > "$hpldir/bad_symmetry.hpl" <<'EOF'
protocol badsymmetry {
  processes 3
  process * { when len < 1 => recv }
  symmetry spin
}
EOF

# well-formed spec: the universe subcommands accept it like a -s name
expect 0 "hpl file enumerate" -- enumerate -f "$hpldir/good.hpl"
expect 0 "hpl file with params" -- enumerate -f "$hpldir/good.hpl:4"
expect 0 "hpl file knows" -- knows -f "$hpldir/good.hpl"
expect 0 "hpl file lint" -- lint -f "$hpldir/good.hpl"
expect 0 "hpl file check" -- check -f "$hpldir/good.hpl" 'AG (moved -> K p0 moved)'
expect 0 "hpl file reduce" -- enumerate -f "$hpldir/good.hpl" --reduce sym
expect 0 "hpl file list" -- list -v -f "$hpldir/good.hpl"

# malformed specs: one-line file:line:col diagnostic, exit 2
expect 2 "hpl bad param bounds" -- enumerate -f "$hpldir/bad_bounds.hpl"
expect 2 "hpl undeclared process" -- enumerate -f "$hpldir/bad_process.hpl"
expect 2 "hpl duplicate atom" -- knows -f "$hpldir/dup_atom.hpl"
expect 2 "hpl bad symmetry" -- lint -f "$hpldir/bad_symmetry.hpl"
expect 2 "hpl missing spec file" -- enumerate -f "$hpldir/nowhere.hpl"
expect 2 "hpl -f param out of range" -- enumerate -f "$hpldir/good.hpl:1"
expect 2 "hpl -f non-integer param" -- enumerate -f "$hpldir/good.hpl:x"
expect 2 "hpl -f with -s" -- enumerate -s ring -f "$hpldir/good.hpl"
expect 2 "hpl lint --all with -f" -- lint --all -f "$hpldir/good.hpl"

# the diagnostic carries a source position
pos_err=$("$HPL" enumerate -f "$hpldir/bad_bounds.hpl" 2>&1 >/dev/null)
case "$pos_err" in
*bad_bounds.hpl:2:*) ;;
*)
  echo "FAIL: bad-bounds diagnostic lacks file:line:col: $pos_err" >&2
  fails=$((fails + 1))
  ;;
esac

# seeded fuzz: generated specs load, lint clean, and satisfy the laws
expect 0 "hpl fuzz" -- fuzz --seed 7 --count 5
expect 2 "hpl fuzz bad count" -- fuzz --count 0

# -- flow (abstract interpretation) ------------------------------------
# Same discipline: 0 = clean (or every finding expected), 1 = an
# unexpected warning-level finding, 2 = bad arguments.

cat > "$hpldir/dead_rule.hpl" <<'EOF'
protocol deadrule {
  processes 2
  process 0 {
    when sends == 0 => send "m" to 1
    when recvs("nope") >= 1 => send "m" to 1
  }
  process 1 {
    when len < 2 => recv
  }
}
EOF

expect 0 "flow clean spec" -- flow -f "$hpldir/good.hpl"
expect 0 "flow registry protocol" -- flow -s quorum
expect 0 "flow registry gate" -- flow --all
expect 1 "flow dead rule" -- flow -f "$hpldir/dead_rule.hpl"
expect 2 "flow -f with -s" -- flow -f "$hpldir/good.hpl" -s quorum
expect 2 "flow unknown protocol" -- flow -s no-such-protocol
expect 2 "flow unprofiled protocol" -- flow -s token-bus
expect 2 "flow --all with -s" -- flow --all -s quorum
expect 2 "flow --all with -f" -- flow --all -f "$hpldir/good.hpl"
expect 2 "flow missing spec file" -- flow -f "$hpldir/nowhere.hpl"

# the dead-rule finding pins the whole guard with a span (line:col-ecol)
flow_out=$("$HPL" flow -f "$hpldir/dead_rule.hpl" 2>/dev/null)
case "$flow_out" in
*dead_rule.hpl:5:*-*) ;;
*)
  echo "FAIL: flow dead-rule finding lacks a guard span: $flow_out" >&2
  fails=$((fails + 1))
  ;;
esac

rm -rf "$hpldir"

# budget truncation: exit 3
expect 3 "state budget" -- enumerate -s chatter:3 -d 8 --max-states 50

# -- mc (Monte Carlo estimation) ---------------------------------------
# Same discipline: 0 = estimate computed, 1 = estimated-violated at the
# CI level (or a confident degraded/destroyed --robust verdict), 2 = bad
# arguments, 3 = wall-clock budget cut sampling short.

expect 0 "mc trivial estimate" -- mc -s ping-pong --formula 'true' --runs 200
expect 0 "mc knowledge estimate" -- mc -s ping-pong --formula 'K p0 sent' --runs 100
expect 0 "mc faulty estimate" -- mc -s ping-pong --faults 'drop:p1->p0' --formula 'true' --runs 100
expect 1 "mc violated estimate" -- mc -s ping-pong --formula 'false' --runs 100
expect 1 "mc partitioned knowledge" -- mc -s two-generals --faults 'partition:p0@0-99' --formula 'K p1 attack' --depth 12 --runs 100
expect 1 "mc robust degraded" -- mc -s two-generals --faults 'drop:*' --formula 'CK attack' --depth 15 --runs 100 --robust
expect 2 "mc missing formula" -- mc -s ping-pong
expect 2 "mc formula parse error" -- mc -s ping-pong --formula 'K (('
expect 2 "mc temporal rejected" -- mc -s ping-pong --formula 'AG true'
expect 2 "mc unknown atom" -- mc -s ping-pong --formula 'K p0 nonsense'
expect 2 "mc pid out of range" -- mc -s ping-pong --formula 'K p9 sent'
expect 2 "mc bad runs" -- mc -s ping-pong --formula 'true' --runs 0
expect 2 "mc bad seed" -- mc -s ping-pong --formula 'true' --seed x
expect 2 "mc bad ci" -- mc -s ping-pong --formula 'true' --ci 1.5
expect 2 "mc robust without faults" -- mc -s ping-pong --formula 'true' --robust
expect 2 "mc malformed partition" -- mc -s ping-pong --formula 'true' --faults 'partition:p0@5'
expect 2 "mc empty partition group" -- mc -s ping-pong --formula 'true' --faults 'partition:@1-2'
expect 2 "mc partition pid range" -- mc -s ping-pong --formula 'true' --faults 'partition:p0|p9@1-2'
expect 2 "mc whole-system partition" -- mc -s ping-pong --formula 'true' --faults 'partition:p0|p1@1-2'
expect 2 "mc bad recover count" -- mc -s ping-pong --formula 'true' --faults 'crash:p0@1,recover:p0@0'
expect 2 "mc recover without crash" -- mc -s ping-pong --formula 'true' --faults 'recover:p0@1'
expect 3 "mc time budget" -- mc -s two-generals --formula 'CK attack' --depth 15 --runs 10000000 --max-seconds 0.1

# -- observability golden shapes ---------------------------------------

# --stats: the aggregate table with the three section headers and a row
# for the enumerate span
stats_out=$("$HPL" enumerate -s two-generals --depth 6 --stats 2>/dev/null)
for pat in '^span  *count  *total  *max$' '^counter  *value$' \
  '^gauge  *last  *max$' '^  enumerate  ' '^  enumerate\.frontier  ' \
  '^  enumerate\.states  *7$'; do
  if ! printf '%s\n' "$stats_out" | grep -Eq "$pat"; then
    echo "FAIL: --stats table: no line matching '$pat'" >&2
    fails=$((fails + 1))
  fi
done

# --stats-json: the last stdout line is one JSON object with the three
# documented schema keys
json_line=$("$HPL" enumerate -s two-generals --depth 6 --stats-json 2>/dev/null | tail -n 1)
case "$json_line" in
{*}) ;;
*)
  echo "FAIL: --stats-json: last line is not a JSON object: $json_line" >&2
  fails=$((fails + 1))
  ;;
esac
for key in '"spans":' '"counters":' '"gauges":' '"total_us":'; do
  if ! printf '%s' "$json_line" | grep -qF "$key"; then
    echo "FAIL: --stats-json: missing $key" >&2
    fails=$((fails + 1))
  fi
done

# --profile: unwritable path is a usage error (one line, exit 2)
expect 2 "unwritable profile path" -- enumerate -s ping-pong --profile /no-such-dir/t.json

# --profile: a Chrome trace-event array lands on disk
profile=$(mktemp /tmp/hpl-profile.XXXXXX.json)
if "$HPL" enumerate -s two-generals --depth 6 --profile "$profile" >/dev/null 2>&1; then
  case "$(head -c 1 "$profile")" in
  '[') ;;
  *)
    echo "FAIL: --profile: file does not start with '['" >&2
    fails=$((fails + 1))
    ;;
  esac
  for key in '"ph"' '"tid"' '"ts"' '"name"'; do
    if ! grep -qF "$key" "$profile"; then
      echo "FAIL: --profile: no $key field in trace" >&2
      fails=$((fails + 1))
    fi
  done
else
  echo "FAIL: --profile: enumerate exited nonzero" >&2
  fails=$((fails + 1))
fi
rm -f "$profile"

# the flags ride along on the other instrumented subcommands too
expect 0 "knows --stats" -- knows -s ping-pong --stats
expect 0 "check --stats-json" -- check -s token-ring 'AG (holds0 -> ~holds1)' --stats-json
expect 0 "lint --stats" -- lint -s token-ring --stats

# -- extent (the CLI face of the server's extent op) -------------------

expect 0 "extent ok" -- extent -s ping-pong sent -d 6
expect 2 "extent unknown atom" -- extent -s ping-pong bogus
expect 2 "extent unknown protocol" -- extent -s no-such-protocol sent

# -- serve: argument discipline ----------------------------------------

expect 2 "serve without transport" -- serve
expect 2 "serve both transports" -- serve --pipe --socket /tmp/hpl-ce.sock
expect 2 "serve bad cache budget" -- serve --pipe --max-cached-states 0
expect 2 "serve unbindable socket" -- serve --socket /no-such-dir/hpl.sock
expect 2 "serve cache dir is a file" -- serve --pipe --cache-dir "$0"

# a socket path occupied by a regular file is refused, not clobbered
notsock=$(mktemp /tmp/hpl-notsock.XXXXXX)
expect 2 "serve socket path is a file" -- serve --socket "$notsock"
if [ ! -f "$notsock" ]; then
  echo "FAIL: serve clobbered a non-socket file at its --socket path" >&2
  fails=$((fails + 1))
fi
rm -f "$notsock"

# -- serve: one --pipe session end to end ------------------------------
# Frame discipline: a malformed frame and an unknown protocol get
# exit-2-style JSON error replies mid-stream (the daemon keeps going),
# a good request answers with the CLI's exact extent line, and EOF
# after shutdown is a clean exit 0.

serve_out=$(printf '%s\n' \
  '{"op":"extent","protocol":"ping-pong","depth":6,"atom":"sent","id":1}' \
  'this is not json' \
  '{"op":"knows","protocol":"no-such-protocol","id":2}' \
  '{"op":"extent","protocol":"ping-pong","depth":6,"atom":"sent","id":3}' \
  '{"op":"shutdown","id":4}' |
  "$HPL" serve --pipe 2>/dev/null)
serve_code=$?
if [ "$serve_code" -ne 0 ]; then
  echo "FAIL: serve --pipe session: expected exit 0, got $serve_code" >&2
  fails=$((fails + 1))
fi
if [ "$(printf '%s\n' "$serve_out" | grep -c .)" -ne 5 ]; then
  echo "FAIL: serve --pipe: expected 5 reply frames, got:" >&2
  printf '%s\n' "$serve_out" >&2
  fails=$((fails + 1))
fi
check_frame() { # check_frame <line-no> <what> <pattern...>
  local n="$1" what="$2"; shift 2
  local frame
  frame=$(printf '%s\n' "$serve_out" | sed -n "${n}p")
  for pat in "$@"; do
    if ! printf '%s' "$frame" | grep -qF "$pat"; then
      echo "FAIL: serve --pipe $what: no '$pat' in: $frame" >&2
      fails=$((fails + 1))
    fi
  done
}
cli_extent=$("$HPL" extent -s ping-pong sent -d 6 | tail -n 1)
check_frame 1 "good extent" '"id":1' '"ok":true' '"exit":0' "$cli_extent"
check_frame 1 "cold cache" '"cache":"miss"'
check_frame 2 "malformed frame" '"ok":false' '"exit":2' 'hpl: malformed frame'
check_frame 3 "unknown protocol" '"id":2' '"ok":false' '"exit":2' 'hpl: '
check_frame 4 "warm repeat" '"id":3' '"cache":"hit"' "$cli_extent"
check_frame 5 "shutdown" '"id":4' '"op":"shutdown"' '"exit":0'

# EOF without shutdown is also a clean stop
if ! printf '%s\n' '{"op":"server-stats"}' | "$HPL" serve --pipe >/dev/null 2>&1; then
  echo "FAIL: serve --pipe: EOF should exit 0" >&2
  fails=$((fails + 1))
fi

if [ "$fails" -ne 0 ]; then
  echo "cli_errors: $fails failure(s)" >&2
  exit 1
fi
echo "cli_errors: all checks passed"
