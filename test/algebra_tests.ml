(* Spec composition algebra and total-order broadcast. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let spec_a =
  Spec.make ~n:1 (fun _ h -> if List.length h < 2 then [ Spec.Do "a" ] else [])

let spec_b =
  Spec.make ~n:2 (fun p h ->
      if Pid.to_int p = 0 then
        if h = [] then [ Spec.Send_to (Pid.of_int 1, "m") ] else []
      else [ Spec.Recv_any ])

(* -- parallel ---------------------------------------------------------- *)

let test_parallel_product_law () =
  (* canonical universes of independent systems multiply *)
  let pairs =
    [
      (spec_a, spec_b);
      (spec_b, spec_a);
      (Fixtures.ticks ~n:2 ~k:1, spec_b);
      (spec_a, spec_a);
    ]
  in
  List.iter
    (fun (a, b) ->
      let ab = Spec_algebra.parallel a b in
      let ua = Universe.enumerate a ~depth:12 in
      let ub = Universe.enumerate b ~depth:12 in
      let uab = Universe.enumerate ab ~depth:12 in
      check tint "product law" (Universe.size ua * Universe.size ub)
        (Universe.size uab))
    pairs

let test_parallel_preserves_validity () =
  let ab = Spec_algebra.parallel spec_a spec_b in
  let u = Universe.enumerate ~mode:`Full ab ~depth:6 in
  Universe.iter (fun _ z -> check tbool "valid" true (Spec.valid ab z)) u

let test_parallel_knowledge_independence () =
  (* knowledge about component A is unaffected by composing with B:
     p0's knowledge of its own progress is identical in A and A∥B *)
  let ab = Spec_algebra.parallel spec_a spec_b in
  let ua = Universe.enumerate ~mode:`Full spec_a ~depth:6 in
  let uab = Universe.enumerate ~mode:`Full ab ~depth:6 in
  let p0 = Pid.of_int 0 in
  let b = Prop.local_event_count p0 (fun k -> k >= 1) "a moved" in
  let ka = Knowledge.knows uab (Pset.singleton p0) b in
  (* for every composite computation, knowledge matches the projection
     evaluated in A's own universe *)
  Universe.iter
    (fun _ z ->
      let za = Trace.of_list (Trace.proj z p0) in
      let ka_pure = Knowledge.knows ua (Pset.singleton p0) b in
      check tbool "independent" (Prop.eval ka_pure za) (Prop.eval ka z))
    uab

let test_parallel_rejects_cross_talk () =
  (* a component that addresses a process outside itself is caught, and
     the error names the offending pid and payload *)
  let rogue =
    Spec.make ~n:1 (fun _ h ->
        if h = [] then [ Spec.Send_to (Pid.of_int 1, "out") ] else [])
  in
  let ab = Spec_algebra.parallel rogue spec_a in
  let msg =
    try
      ignore (Universe.enumerate ab ~depth:2);
      "no exception raised"
    with Invalid_argument m -> m
  in
  let contains needle =
    let nl = String.length needle and ml = String.length msg in
    let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
    go 0
  in
  check tbool "names the sender" true (contains "p0");
  check tbool "names the payload" true (contains {|"out"|});
  check tbool "names the bad destination" true (contains "p1")

(* -- restrict / bound / rename ------------------------------------------- *)

let test_restrict () =
  let no_sends =
    Spec_algebra.restrict Fixtures.ping_pong (fun _ i ->
        match i with Spec.Send_to _ -> false | _ -> true)
  in
  let u = Universe.enumerate no_sends ~depth:4 in
  check tint "nothing can happen" 1 (Universe.size u)

let test_bound_events () =
  let bounded = Spec_algebra.bound_events Fixtures.flipper 2 in
  let u = Universe.enumerate ~mode:`Canonical bounded ~depth:10 in
  Universe.iter
    (fun _ z ->
      check tbool "per-process cap" true
        (Trace.local_length z Fixtures.p0 <= 2
        && Trace.local_length z Fixtures.p1 <= 2))
    u;
  (* and the system is now inherently finite: deeper enumeration is a
     fixpoint *)
  let u' = Universe.enumerate ~mode:`Canonical bounded ~depth:20 in
  check tint "finite" (Universe.size u) (Universe.size u')

let test_rename_payloads () =
  let tagged = Spec_algebra.rename_payloads Fixtures.one_msg (fun s -> "sys1/" ^ s) in
  let u = Universe.enumerate ~mode:`Full tagged ~depth:4 in
  Universe.iter
    (fun _ z ->
      List.iter
        (fun m ->
          check tbool "payload tagged" true
            (String.length m.Msg.payload > 5 && String.sub m.Msg.payload 0 5 = "sys1/"))
        (Trace.sent z))
    u;
  (* same shape as the original *)
  let u0 = Universe.enumerate ~mode:`Full Fixtures.one_msg ~depth:4 in
  check tint "isomorphic size" (Universe.size u0) (Universe.size u)

(* -- total order ------------------------------------------------------------ *)

let test_total_order_identical () =
  List.iter
    (fun seed ->
      let config =
        { Hpl_sim.Engine.default with fifo = false; max_delay = 40.0; seed; n = 4 }
      in
      let o = Total_order.run ~config Total_order.default in
      check tbool "identical" true o.Total_order.identical_order;
      check tbool "all delivered" true o.Total_order.all_delivered)
    [ 1L; 2L; 3L; 4L ]

let test_total_order_gaps_buffered () =
  let config =
    { Hpl_sim.Engine.default with fifo = false; max_delay = 60.0; seed = 5L; n = 4 }
  in
  let o = Total_order.run ~config Total_order.default in
  check tbool "buffering happened" true (o.Total_order.gaps_buffered > 0)

let test_total_order_message_cost () =
  (* per non-sequencer broadcast: 1 submit + n orders; sequencer's own:
     n orders. total = b*(n-1)*(1+n) + b*n *)
  let p = { Total_order.default with n = 4; broadcasts_per_process = 3 } in
  let o = Total_order.run p in
  let b = 3 and n = 4 in
  check tint "message count" ((b * (n - 1) * (1 + n)) + (b * n)) o.Total_order.messages

let test_total_order_respects_origin_fifo () =
  (* each origin's messages are delivered in origin-sequence order *)
  let o = Total_order.run Total_order.default in
  Array.iter
    (fun log ->
      let per_origin = Hashtbl.create 4 in
      List.iter
        (fun (origin, oseq) ->
          let prev = Option.value ~default:(-1) (Hashtbl.find_opt per_origin origin) in
          check tbool "origin order" true (oseq > prev);
          Hashtbl.replace per_origin origin oseq)
        log)
    o.Total_order.deliveries

let suite =
  [
    ("parallel product law", `Quick, test_parallel_product_law);
    ("parallel validity", `Quick, test_parallel_preserves_validity);
    ("parallel knowledge independence", `Quick, test_parallel_knowledge_independence);
    ("parallel rejects cross-talk", `Quick, test_parallel_rejects_cross_talk);
    ("restrict", `Quick, test_restrict);
    ("bound_events", `Quick, test_bound_events);
    ("rename_payloads", `Quick, test_rename_payloads);
    ("total order identical", `Quick, test_total_order_identical);
    ("total order buffers gaps", `Quick, test_total_order_gaps_buffered);
    ("total order message cost", `Quick, test_total_order_message_cost);
    ("total order origin fifo", `Quick, test_total_order_respects_origin_fifo);
  ]
