open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_empty_full () =
  let e = Bitset.create 100 and f = Bitset.create_full 100 in
  check tint "empty card" 0 (Bitset.cardinal e);
  check tint "full card" 100 (Bitset.cardinal f);
  check tbool "empty is_empty" true (Bitset.is_empty e);
  check tbool "full not empty" false (Bitset.is_empty f);
  check tbool "e subset f" true (Bitset.subset e f);
  check tbool "f not subset e" false (Bitset.subset f e)

let test_full_sizes () =
  (* domain sizes around the word boundary *)
  List.iter
    (fun n ->
      let f = Bitset.create_full n in
      check tint (Printf.sprintf "full %d" n) n (Bitset.cardinal f);
      if n > 0 then begin
        check tbool "first" true (Bitset.mem f 0);
        check tbool "last" true (Bitset.mem f (n - 1))
      end)
    [ 0; 1; 61; 62; 63; 64; 123; 124; 125; 200 ]

let test_add_remove () =
  let s = Bitset.create 70 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 69;
  check tint "card 3" 3 (Bitset.cardinal s);
  check tbool "mem 63" true (Bitset.mem s 63);
  Bitset.remove s 63;
  check tbool "removed" false (Bitset.mem s 63);
  check tint "card 2" 2 (Bitset.cardinal s);
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.mem s 70))

let test_algebra () =
  let a = Bitset.of_pred 128 (fun i -> i mod 2 = 0) in
  let b = Bitset.of_pred 128 (fun i -> i mod 3 = 0) in
  check tint "union" (64 + 43 - 22) (Bitset.cardinal (Bitset.union a b));
  check tint "inter" 22 (Bitset.cardinal (Bitset.inter a b));
  check tint "diff" (64 - 22) (Bitset.cardinal (Bitset.diff a b));
  check tint "compl" 64 (Bitset.cardinal (Bitset.complement a));
  check tbool "de morgan" true
    (Bitset.equal
       (Bitset.complement (Bitset.union a b))
       (Bitset.inter (Bitset.complement a) (Bitset.complement b)))

let test_into () =
  let a = Bitset.of_pred 80 (fun i -> i < 40) in
  let b = Bitset.of_pred 80 (fun i -> i >= 20) in
  let a' = Bitset.copy a in
  Bitset.inter_into a' b;
  check tbool "inter_into" true (Bitset.equal a' (Bitset.inter a b));
  let a'' = Bitset.copy a in
  Bitset.union_into a'' b;
  check tbool "union_into" true (Bitset.equal a'' (Bitset.union a b))

let test_iteration () =
  let s = Bitset.of_pred 100 (fun i -> i mod 10 = 0) in
  check Alcotest.(list int) "to_list" [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (Bitset.to_list s);
  check tint "fold" 450 (Bitset.fold ( + ) s 0);
  check tbool "for_all" true (Bitset.for_all (fun i -> i mod 5 = 0) s);
  check tbool "not for_all" false (Bitset.for_all (fun i -> i < 50) s);
  check tbool "exists" true (Bitset.exists (fun i -> i = 50) s);
  check tbool "not exists" false (Bitset.exists (fun i -> i = 55) s);
  check Alcotest.(option int) "choose" (Some 0) (Bitset.choose s);
  check Alcotest.(option int) "choose empty" None (Bitset.choose (Bitset.create 10))

let qcheck_props =
  let gen_set =
    QCheck.make
      ~print:(fun (n, l) -> Printf.sprintf "n=%d [%s]" n (String.concat ";" (List.map string_of_int l)))
      QCheck.Gen.(
        int_range 1 300 >>= fun n ->
        list_size (int_range 0 50) (int_range 0 (n - 1)) >>= fun l -> return (n, l))
  in
  let mk (n, l) =
    let s = Bitset.create n in
    List.iter (Bitset.add s) l;
    s
  in
  [
    QCheck.Test.make ~name:"bitset cardinal = |distinct|" ~count:200 gen_set
      (fun (n, l) ->
        Bitset.cardinal (mk (n, l)) = List.length (List.sort_uniq compare l));
    QCheck.Test.make ~name:"bitset to_list sorted distinct" ~count:200 gen_set
      (fun (n, l) ->
        let tl = Bitset.to_list (mk (n, l)) in
        tl = List.sort_uniq compare l);
    QCheck.Test.make ~name:"bitset double complement" ~count:200 gen_set
      (fun (n, l) ->
        let s = mk (n, l) in
        Bitset.equal s (Bitset.complement (Bitset.complement s)));
    QCheck.Test.make ~name:"bitset union/inter absorption" ~count:200
      (QCheck.pair gen_set gen_set) (fun ((n1, l1), (_, l2)) ->
        let n = n1 in
        let clip = List.filter (fun i -> i < n) in
        let a = mk (n, l1) and b = mk (n, clip l2) in
        Bitset.equal a (Bitset.inter a (Bitset.union a b)));
  ]

let suite =
  [
    ("empty/full", `Quick, test_empty_full);
    ("full at boundaries", `Quick, test_full_sizes);
    ("add/remove", `Quick, test_add_remove);
    ("algebra", `Quick, test_algebra);
    ("in-place ops", `Quick, test_into);
    ("iteration", `Quick, test_iteration);
  ]
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~verbose:false p) qcheck_props
