(* Tests for universe enumeration and the canonical quotient. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_one_msg_counts () =
  (* computations: ε, [send], [send;recv] — a single chain, so full and
     canonical agree *)
  let ufull = Universe.enumerate ~mode:`Full Fixtures.one_msg ~depth:5 in
  let ucan = Universe.enumerate ~mode:`Canonical Fixtures.one_msg ~depth:5 in
  check tint "full size" 3 (Universe.size ufull);
  check tint "canonical size" 3 (Universe.size ucan)

let test_indep_counts () =
  (* ε, a, b, ab, ba: full 5; canonical merges ab/ba: 4 *)
  let ufull = Universe.enumerate ~mode:`Full Fixtures.indep ~depth:5 in
  let ucan = Universe.enumerate ~mode:`Canonical Fixtures.indep ~depth:5 in
  check tint "full" 5 (Universe.size ufull);
  check tint "canonical" 4 (Universe.size ucan)

let test_depth_truncation () =
  let u = Universe.enumerate ~mode:`Full Fixtures.one_msg ~depth:1 in
  check tint "depth 1" 2 (Universe.size u);
  let u0 = Universe.enumerate ~mode:`Full Fixtures.one_msg ~depth:0 in
  check tint "depth 0" 1 (Universe.size u0)

let test_ticks_counts () =
  (* 2 processes, 2 ticks each. Full: interleavings of two sequences of
     length ≤2 each: Σ_{i≤2,j≤2} C(i+j,i) = 1+1+1 +1+2+3 +1+3+6 = 19.
     Canonical: one per (i,j) pair: 9. *)
  let ufull = Universe.enumerate ~mode:`Full (Fixtures.ticks ~n:2 ~k:2) ~depth:10 in
  let ucan =
    Universe.enumerate ~mode:`Canonical (Fixtures.ticks ~n:2 ~k:2) ~depth:10
  in
  check tint "full 19" 19 (Universe.size ufull);
  check tint "canonical 9" 9 (Universe.size ucan)

let test_all_enumerated_valid () =
  List.iter
    (fun mode ->
      let u = Universe.enumerate ~mode Fixtures.ping_pong ~depth:4 in
      Universe.iter
        (fun _ z ->
          check tbool "valid" true (Spec.valid Fixtures.ping_pong z))
        u)
    [ `Full; `Canonical ]

let test_canonical_is_canonical () =
  let u = Universe.enumerate ~mode:`Canonical (Fixtures.chatter ~n:3 ~k:2) ~depth:4 in
  Universe.iter
    (fun _ z -> check tbool "fixpoint of canon" true (Trace.equal z (Universe.canon u z)))
    u

let test_canon_is_class_invariant () =
  (* all interleavings of a class canonicalize to the same representative *)
  let u = Universe.enumerate ~mode:`Full Fixtures.indep ~depth:5 in
  let ab = ref None in
  Universe.iter
    (fun _ z ->
      if Trace.length z = 2 then begin
        let c = Universe.canon u z in
        match !ab with
        | None -> ab := Some c
        | Some c' -> check tbool "same canon" true (Trace.equal c c')
      end)
    u;
  check tbool "saw classes" true (!ab <> None)

let test_full_covers_canonical_classes () =
  (* every full-universe computation's canonical form is in the
     canonical universe, and the canonical one is [D]-equivalent *)
  let spec = Fixtures.chatter ~n:2 ~k:2 in
  let ufull = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let ucan = Universe.enumerate ~mode:`Canonical spec ~depth:4 in
  Universe.iter
    (fun _ z ->
      match Universe.find ucan z with
      | None -> Alcotest.fail "class missing from canonical universe"
      | Some i ->
          check tbool "[D]-equivalent" true
            (Trace.permutation_of z (Universe.comp ucan i)))
    ufull

let test_find_and_index () =
  let u = Universe.enumerate ~mode:`Canonical Fixtures.indep ~depth:5 in
  let a = Event.internal ~pid:Fixtures.p0 ~lseq:0 "a" in
  let b = Event.internal ~pid:Fixtures.p1 ~lseq:0 "b" in
  let ba = Trace.of_list [ b; a ] in
  (* ba is non-canonical, so exact index fails but find succeeds *)
  check tbool "index misses interleaving" true (Universe.index u ba = None);
  check tbool "find canonicalizes" true (Universe.find u ba <> None);
  check tbool "find_exn raises outside" true
    (try
       ignore (Universe.find_exn u (Trace.of_list [ Event.internal ~pid:Fixtures.p0 ~lseq:0 "zz" ]));
       false
     with Not_found -> true)

let test_class_ids_match_projection () =
  let u = Universe.enumerate ~mode:`Full (Fixtures.chatter ~n:2 ~k:2) ~depth:3 in
  let ids = Universe.class_ids u Fixtures.p0 in
  Universe.iter
    (fun i x ->
      Universe.iter
        (fun j y ->
          let same_class = ids.(i) = ids.(j) in
          let same_proj =
            List.equal Event.equal (Trace.proj x Fixtures.p0) (Trace.proj y Fixtures.p0)
          in
          check tbool "class iff proj" true (same_class = same_proj))
        u)
    u

let test_pset_class_ids () =
  let u = Universe.enumerate ~mode:`Full (Fixtures.ticks ~n:2 ~k:1) ~depth:4 in
  let d = Pset.all 2 in
  let ids_d = Universe.pset_class_ids u d in
  Universe.iter
    (fun i x ->
      Universe.iter
        (fun j y ->
          check tbool "[D] iff permutation" true
            ((ids_d.(i) = ids_d.(j)) = Trace.permutation_of x y))
        u)
    u;
  (* empty set: everything equivalent *)
  let ids_e = Universe.pset_class_ids u Pset.empty in
  Array.iter (fun id -> check tint "one class" 0 id) ids_e

let test_class_members () =
  let u = Universe.enumerate ~mode:`Full Fixtures.indep ~depth:5 in
  Universe.iter
    (fun i _ ->
      let members = Universe.class_members u (Pset.singleton Fixtures.p0) i in
      check tbool "contains self" true (Bitset.mem members i))
    u

let test_prefixes_of () =
  let u = Universe.enumerate ~mode:`Full Fixtures.one_msg ~depth:5 in
  (* the 2-event computation has 3 prefixes: ε, send, itself *)
  let long = ref None in
  Universe.iter (fun i z -> if Trace.length z = 2 then long := Some i) u;
  match !long with
  | None -> Alcotest.fail "expected 2-event computation"
  | Some i -> check tint "prefixes" 3 (List.length (Universe.prefixes_of u i))

let test_prefix_closed_universe () =
  (* the stored set is prefix-closed in both modes (canonical prefixes
     of canonical words are canonical) *)
  List.iter
    (fun mode ->
      let u = Universe.enumerate ~mode (Fixtures.chatter ~n:3 ~k:2) ~depth:4 in
      Universe.iter
        (fun _ z ->
          if not (Trace.is_empty z) then begin
            let es = Trace.to_list z in
            let prefix = Trace.of_list (List.filteri (fun i _ -> i < List.length es - 1) es) in
            check tbool "immediate prefix stored" true (Universe.index u prefix <> None)
          end)
        u)
    [ `Full; `Canonical ]

let qcheck_props =
  let spec = Fixtures.chatter ~n:2 ~k:2 in
  let ucan = Universe.enumerate ~mode:`Canonical spec ~depth:4 in
  let ufull = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let gen_idx =
    QCheck.make ~print:string_of_int (QCheck.Gen.int_range 0 (Universe.size ufull - 1))
  in
  [
    QCheck.Test.make ~name:"canon preserves projections" ~count:200 gen_idx (fun i ->
        let z = Universe.comp ufull i in
        let c = Universe.canon ufull z in
        Trace.permutation_of z c);
    QCheck.Test.make ~name:"canon idempotent" ~count:200 gen_idx (fun i ->
        let c = Universe.canon ufull (Universe.comp ufull i) in
        Trace.equal c (Universe.canon ufull c));
    QCheck.Test.make ~name:"find consistent across modes" ~count:200 gen_idx
      (fun i ->
        let z = Universe.comp ufull i in
        match Universe.find ucan z with
        | None -> false
        | Some j -> Trace.permutation_of z (Universe.comp ucan j));
  ]

let suite =
  [
    ("one-msg counts", `Quick, test_one_msg_counts);
    ("indep counts", `Quick, test_indep_counts);
    ("depth truncation", `Quick, test_depth_truncation);
    ("ticks counts", `Quick, test_ticks_counts);
    ("all enumerated valid", `Quick, test_all_enumerated_valid);
    ("canonical fixpoint", `Quick, test_canonical_is_canonical);
    ("canon class-invariant", `Quick, test_canon_is_class_invariant);
    ("full covers canonical", `Quick, test_full_covers_canonical_classes);
    ("find vs index", `Quick, test_find_and_index);
    ("class ids = projection classes", `Quick, test_class_ids_match_projection);
    ("pset class ids", `Quick, test_pset_class_ids);
    ("class members", `Quick, test_class_members);
    ("prefixes_of", `Quick, test_prefixes_of);
    ("prefix-closed storage", `Quick, test_prefix_closed_universe);
  ]
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~verbose:false p) qcheck_props
