(* The protocol DSL (lib/dsl): parity of the ported corpus/specs/*.hpl
   against their compiled builtins, elaborator diagnostics, and the
   seeded fuzz pipeline (§3 laws + lint soundness on generated specs). *)
open Hpl_core
open Hpl_protocols
open Hpl_dsl

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let spec_path file =
  let candidates =
    List.map
      (fun up -> Filename.concat up (Filename.concat "corpus/specs" file))
      [ "."; ".."; "../.."; "../../.."; "../../../.."; "../../../../.." ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
      Alcotest.failf "corpus spec %s not found from %s" file (Sys.getcwd ())

let load_spec file =
  match Elaborate.load_file (spec_path file) with
  | Ok l -> l
  | Error d -> Alcotest.failf "cannot load %s: %s" file (Diag.to_string d)

let builtin name =
  match Protocol.Registry.find name with
  | Some p -> p
  | None -> Alcotest.failf "builtin %s not registered" name

(* -- parity: ported specs are bit-identical to their builtins ------------ *)

(* Size equality plus pairwise Trace.equal in index order: enumeration
   is deterministic, so identical enabled sets force identical
   universes — any divergence in a rule shows up here. *)
let assert_bit_identical ~what ua ub =
  check tint (what ^ " size") (Universe.size ua) (Universe.size ub);
  Universe.iter
    (fun i za ->
      if not (Trace.equal za (Universe.comp ub i)) then
        Alcotest.failf "%s: computation %d differs: %s vs %s" what i
          (Trace.to_string za)
          (Trace.to_string (Universe.comp ub i)))
    ua

let parity_case file name () =
  let loaded = load_spec file in
  let b = builtin name in
  check Alcotest.string "name" (Protocol.name b) (Protocol.name loaded.proto);
  check tint "suggested depth" (Protocol.suggested_depth b)
    (Protocol.suggested_depth loaded.proto);
  check (Alcotest.list Alcotest.string) "fault scenarios"
    (Protocol.fault_scenarios b)
    (Protocol.fault_scenarios loaded.proto);
  let ib = Protocol.default_instance b in
  let il = Protocol.default_instance loaded.proto in
  let depth = Protocol.suggested_depth b in
  let ub = Universe.enumerate (Protocol.spec_of ib) ~depth in
  let ul = Universe.enumerate (Protocol.spec_of il) ~depth in
  assert_bit_identical ~what:(name ^ " universe") ul ub;
  (* atoms: same names, same extent over the (identical) universe *)
  let atoms_b = Protocol.atoms_of ib and atoms_l = Protocol.atoms_of il in
  check tint "atom count" (List.length atoms_b) (List.length atoms_l);
  List.iter
    (fun (aname, pb) ->
      match List.assoc_opt aname atoms_l with
      | None -> Alcotest.failf "atom %s missing from the loaded spec" aname
      | Some pl ->
          check tbool
            (Printf.sprintf "atom %s extent" aname)
            true
            (Bitset.equal (Prop.extent ub pb) (Prop.extent ub pl)))
    atoms_b;
  (* symmetry: every loaded generator is an automorphism, and the
     generated groups coincide (same order, each generator a member) *)
  List.iter
    (fun g ->
      check tbool "generator is an automorphism" true
        (Symmetry.is_automorphism (Protocol.spec_of il) g))
    (Protocol.generators_of il);
  match (Protocol.symmetry_of ib, Protocol.symmetry_of il) with
  | None, None -> ()
  | Some gb, Some gl ->
      check tint "group order" (Symmetry.order gb) (Symmetry.order gl);
      List.iter
        (fun g ->
          check tbool "loaded generator in builtin group" true
            (Symmetry.index_of gb g <> None))
        (Protocol.generators_of il)
  | Some _, None -> Alcotest.fail "loaded spec lost the symmetry group"
  | None, Some _ -> Alcotest.fail "loaded spec gained a symmetry group"

(* quorum.hpl raises n's lower bound to 3 (the declared swap needs two
   members); parity at a non-default instantiation keeps the clamp
   q > members honest too *)
let test_quorum_clamp () =
  let loaded = load_spec "quorum.hpl" in
  let b = builtin "quorum" in
  let inst p vals =
    match Protocol.instantiate p vals with
    | Ok i -> i
    | Error e -> Alcotest.failf "instantiate: %s" e
  in
  List.iter
    (fun vals ->
      let ub = Universe.enumerate (Protocol.spec_of (inst b vals)) ~depth:6 in
      let ul =
        Universe.enumerate (Protocol.spec_of (inst loaded.proto vals)) ~depth:6
      in
      assert_bit_identical
        ~what:(Printf.sprintf "quorum:%s" (String.concat ":" (List.map string_of_int vals)))
        ul ub)
    [ [ 3; 1 ]; [ 4; 9 ] ]

(* -- elaborator diagnostics ----------------------------------------------- *)

let diag_case ~src ~line ~col ~needle () =
  match Elaborate.load_string ~file:"test.hpl" src with
  | Ok _ -> Alcotest.failf "expected a diagnostic matching %S, got Ok" needle
  | Error d ->
      let s = Diag.to_string d in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      if not (contains s needle) then
        Alcotest.failf "diagnostic %S does not mention %S" s needle;
      check tint "line" line d.Diag.line;
      check tint "col" col d.Diag.col;
      (* lexer/parser/elaborator diagnostics are points — both span ends
         coincide and the rendering is exactly the classic prefix (flow
         findings are where guard-wide spans appear, see flow_tests) *)
      check tbool "point, not a span" false (Diag.is_span d);
      let prefix = Printf.sprintf "test.hpl:%d:%d: " line col in
      check tbool "classic point prefix" true
        (String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix)

let proto_wrap body = "protocol t {\n  processes 2\n" ^ body ^ "}\n"

let diag_cases =
  [
    ( "bad param bounds",
      "protocol t {\n  param n = 0\n  processes n\n}\n",
      2, 3, "below min" );
    ( "empty param bounds",
      "protocol t {\n  param n = 5 min 6 max 4\n  processes n\n}\n",
      2, 3, "bounds are empty" );
    ( "undeclared name in rule",
      proto_wrap "  process 0 {\n    when sends < k => send \"m\" to 1\n  }\n",
      4, 18, "undeclared name 'k'" );
    ( "undeclared process in rule",
      proto_wrap "  process 0 {\n    when sends < 1 => send \"m\" to q\n  }\n",
      4, 35, "undeclared name 'q'" );
    ( "duplicate atom",
      proto_wrap "  atom a at 0 = sends > 0\n  atom a at 1 = recvs > 0\n",
      4, 3, "duplicate atom 'a'" );
    ( "unparseable symmetry generator",
      proto_wrap "  symmetry spin\n",
      3, 12, "unknown symmetry generator 'spin'" );
    ( "missing processes",
      "protocol t {\n  doc \"x\"\n}\n",
      1, 10, "missing 'processes'" );
    ( "selector out of range",
      proto_wrap "  process 7 {\n    when len == 0 => recv\n  }\n",
      3, 11, "out of range" );
    (* a Binop carries its operator's position *)
    ( "boolean where integer",
      proto_wrap "  process 0 {\n    when len == 0 => send \"m\" to (1 == 1)\n  }\n",
      4, 37, "must be an integer" );
    ( "integer where boolean",
      proto_wrap "  process 0 {\n    when len + 1 => recv\n  }\n",
      4, 14, "must be a boolean" );
    ( "history in static position",
      "protocol t {\n  processes sends\n}\n",
      2, 13, "reads the local history" );
    ( "history-dependent divisor",
      proto_wrap "  process 0 {\n    when len % recvs == 0 => recv\n  }\n",
      4, 16, "history" );
    ( "self-send",
      proto_wrap "  process 0 {\n    when len == 0 => send \"m\" to 0\n  }\n",
      4, 34, "itself" );
    ( "division by zero at defaults",
      "protocol t {\n  param k = 2\n  processes 4 / (k - 2)\n}\n",
      3, 15, "evaluates to 0" );
    ( "unterminated string",
      "protocol t {\n  doc \"oops\n}\n",
      2, 7, "unterminated string" );
    ( "parse error: missing brace",
      "protocol t {\n  processes 2\n",
      3, 1, "expected" );
    ( "duplicate processes item",
      "protocol t {\n  processes 2\n  processes 3\n}\n",
      3, 3, "duplicate 'processes'" );
    ( "bad fault scenario",
      proto_wrap "  faults \"explode:p0\"\n",
      3, 3, "bad fault scenario" );
    ( "reserved parameter name",
      "protocol t {\n  param me = 1\n  processes 2\n}\n",
      2, 3, "reserved" );
    ( "bad protocol name",
      "protocol \"Bad_Name\" {\n  processes 2\n}\n",
      1, 10, "[a-z0-9-]+" );
  ]

(* -- fuzz pipeline --------------------------------------------------------- *)

let fuzz_budget = Universe.budget ~max_states:30_000 ()

let fuzz_case index () =
  let seed = 7 in
  let src = Fuzz.spec_text ~seed ~index in
  let file = Printf.sprintf "fuzz-%d-%d.hpl" seed index in
  match Elaborate.load_string ~file src with
  | Error d ->
      Alcotest.failf "generated spec failed to load: %s\n%s" (Diag.to_string d)
        src
  | Ok loaded -> (
      let inst = Protocol.default_instance loaded.proto in
      let spec = Protocol.spec_of inst in
      let n = Spec.n spec in
      (* declared generators really are automorphisms *)
      List.iter
        (fun g ->
          check tbool "fuzz generator is an automorphism" true
            (Symmetry.is_automorphism spec g))
        (Protocol.generators_of inst);
      (* lint soundness: elaborated rules are total and well-addressed,
         so no error-severity hygiene finding can fire *)
      let report = Hpl_analysis.Lint.lint_instance inst in
      List.iter
        (fun f ->
          if f.Hpl_analysis.Lint.severity = Hpl_analysis.Lint.Error then
            Alcotest.failf "lint error %s on generated spec:\n%s"
              f.Hpl_analysis.Lint.rule src)
        report.Hpl_analysis.Lint.findings;
      (* §3 isomorphism laws on the enumerated universe *)
      let depth = min (Protocol.depth_of inst) 5 in
      let u = Universe.enumerate ~budget:fuzz_budget spec ~depth in
      match Universe.status u with
      | Universe.Truncated _ ->
          Alcotest.failf "fuzz universe truncated (size %d):\n%s"
            (Universe.size u) src
      | Universe.Complete ->
          let st = Random.State.make [| 0x9e37; seed; index |] in
          let pick_idx () = Random.State.int st (Universe.size u) in
          let pick_pset () =
            let ps = ref Pset.empty in
            for i = 0 to n - 1 do
              if Random.State.bool st then ps := Pset.add (Pid.of_int i) !ps
            done;
            !ps
          in
          check tbool "law: equivalence" true
            (Isomorphism.Laws.equivalence u (pick_pset ()));
          for _ = 1 to 5 do
            let p = pick_pset () and q = pick_pset () in
            let x = pick_idx () and y = pick_idx () in
            check tbool "law: idempotence" true
              (Isomorphism.Laws.idempotence u p x y);
            check tbool "law: reflexivity" true
              (Isomorphism.Laws.reflexivity u [ p; q ] x);
            check tbool "law: inversion" true
              (Isomorphism.Laws.inversion u [ p; q ] x y);
            check tbool "law: union-inter" true
              (Isomorphism.Laws.union_inter u p q x y);
            check tbool "law: monotonicity" true
              (Isomorphism.Laws.monotonicity u p (Pset.union p q) x y);
            check tbool "law: subsumption" true
              (Isomorphism.Laws.subsumption u p (Pset.union p q) x y)
          done)

let fuzz_determinism () =
  let a = Fuzz.spec_text ~seed:42 ~index:3 in
  let b = Fuzz.spec_text ~seed:42 ~index:3 in
  check Alcotest.string "same (seed, index), same text" a b;
  let c = Fuzz.spec_text ~seed:43 ~index:3 in
  check tbool "different seed, different text" true (a <> c)

(* -- registry suggestions (satellite: nearest-name hint) ------------------ *)

let test_registry_suggestion () =
  let expect_hint input hint =
    match Protocol.Registry.parse input with
    | Ok _ -> Alcotest.failf "%s unexpectedly parsed" input
    | Error e ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        if not (contains e hint) then
          Alcotest.failf "error %S does not suggest %S" e hint
  in
  expect_hint "ping-png" "did you mean 'ping-pong'?";
  expect_hint "qourum:3" "did you mean 'quorum'?";
  expect_hint "rng" "did you mean 'ring'?";
  expect_hint "rng" "hpl list";
  (* far from everything: no suggestion, still points at hpl list *)
  match Protocol.Registry.parse "zzzzzzzzzz" with
  | Ok _ -> Alcotest.fail "zzzzzzzzzz unexpectedly parsed"
  | Error e ->
      check tbool "far-fetched input gets no suggestion" false
        (String.contains e '?');
      expect_hint "zzzzzzzzzz" "hpl list"

let suite =
  [
    Alcotest.test_case "parity: ping-pong" `Quick
      (parity_case "ping_pong.hpl" "ping-pong");
    Alcotest.test_case "parity: ring" `Quick (parity_case "ring.hpl" "ring");
    Alcotest.test_case "parity: quorum" `Quick
      (parity_case "quorum.hpl" "quorum");
    Alcotest.test_case "parity: quorum off-default values" `Quick
      test_quorum_clamp;
    Alcotest.test_case "fuzz: deterministic" `Quick fuzz_determinism;
    Alcotest.test_case "registry: nearest-name suggestion" `Quick
      test_registry_suggestion;
  ]
  @ List.map
      (fun (name, src, line, col, needle) ->
        Alcotest.test_case ("diag: " ^ name) `Quick
          (diag_case ~src ~line ~col ~needle))
      diag_cases
  @ List.init 20 (fun i ->
        Alcotest.test_case (Printf.sprintf "fuzz: spec %d" i) `Quick
          (fuzz_case i))
