(* Monte Carlo estimation: interval math, seeded determinism, the
   estimator-vs-exact cross-validation gate, knowledge estimation bias,
   and the partition/recovery fault surface it samples. *)
open Hpl_core
open Hpl_faults
open Hpl_protocols
open Hpl_mc

let () = Builtins.init ()
let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string
let p0 = Pid.of_int 0
let p1 = Pid.of_int 1

let instance name =
  match Protocol.Registry.parse name with
  | Ok i -> i
  | Error e -> Alcotest.failf "registry parse %S: %s" name e

let formula text =
  match Formula.parse text with
  | Ok f -> f
  | Error e -> Alcotest.failf "formula parse %S: %s" text e

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let recv_count z p =
  List.length (List.filter Event.is_receive (Trace.proj z p))

(* -- Rat ----------------------------------------------------------------- *)

let test_rat_arithmetic () =
  let open Mc.Rat in
  check tstr "normalized" "1/2" (to_string (make 2 4));
  check tstr "sign in numerator" "-1/3" (to_string (make 2 (-6)));
  check tbool "add" true (equal (make 5 6) (add (make 1 2) (make 1 3)));
  check tbool "mul" true (equal (make 1 3) (mul (make 1 2) (make 2 3)));
  check tbool "div_int" true (equal (make 1 6) (div_int (make 1 2) 3));
  check tbool "compare" true (compare (make 1 3) (make 1 2) < 0);
  check tbool "to_float" true (abs_float (to_float (make 1 4) -. 0.25) < 1e-12);
  check tbool "zero identity" true (equal one (add zero one));
  Alcotest.check_raises "overflow detected" Overflow (fun () ->
      ignore (mul (make max_int 1) (make max_int 1)))

(* -- intervals ----------------------------------------------------------- *)

let test_z_of_level () =
  check tbool "z(0.95)" true (abs_float (Mc.z_of_level 0.95 -. 1.95996) < 1e-4);
  check tbool "z(0.99)" true (abs_float (Mc.z_of_level 0.99 -. 2.57583) < 1e-4)

let test_wilson_boundaries () =
  let c0 = Mc.wilson ~hits:0 ~runs:100 ~level:0.95 in
  check tbool "zero hits floors at 0" true (c0.Mc.lo = 0.0);
  check tbool "zero hits still informative" true
    (c0.Mc.hi > 0.0 && c0.Mc.hi < 0.1);
  let c1 = Mc.wilson ~hits:100 ~runs:100 ~level:0.95 in
  check tbool "all hits caps at 1" true (c1.Mc.hi = 1.0 && c1.Mc.lo > 0.9);
  let c = Mc.wilson ~hits:99 ~runs:100 ~level:0.95 in
  check tbool "one miss excludes 1" true (c.Mc.hi < 1.0);
  let v = Mc.wilson ~hits:0 ~runs:0 ~level:0.95 in
  check tbool "no data is vacuous" true (v.Mc.lo = 0.0 && v.Mc.hi = 1.0);
  check tbool "covers" true (Mc.covers c 0.98);
  check tbool "not covers" false (Mc.covers c 0.5)

(* -- seeded determinism -------------------------------------------------- *)

let test_seeded_determinism () =
  let spec = Protocol.spec_of (instance "ping-pong") in
  let cfg = { Mc.default with Mc.runs = 200; depth = 6; seed = 17L } in
  let b = Prop.make "recv" (fun z -> recv_count z p1 > 0) in
  let e1 = Mc.estimate_prop cfg spec b in
  let e2 = Mc.estimate_prop cfg spec b in
  check tint "same hits" e1.Mc.hits e2.Mc.hits;
  check tbool "same mean" true (e1.Mc.mean = e2.Mc.mean);
  check tbool "same interval" true
    (e1.Mc.ci.Mc.lo = e2.Mc.ci.Mc.lo && e1.Mc.ci.Mc.hi = e2.Mc.ci.Mc.hi);
  let w1 = Mc.walks cfg spec and w2 = Mc.walks cfg spec in
  check tbool "bit-identical walk samples" true
    (List.for_all2 Trace.equal w1 w2);
  (* the estimator visits exactly the [walks] samples *)
  let by_hand =
    List.length (List.filter (fun z -> Prop.eval b z) w1)
  in
  check tint "estimate = judge over walks" by_hand e1.Mc.hits;
  (* ping-pong walks are deterministic; use a branching system to see
     the seed actually steer the sampler *)
  let branchy = Fixtures.chatter ~n:3 ~k:3 in
  let bcfg = { cfg with Mc.runs = 50; depth = 10 } in
  let w3 = Mc.walks bcfg branchy in
  let w4 = Mc.walks { bcfg with Mc.seed = 18L } branchy in
  check tbool "same seed, same branching samples" true
    (List.for_all2 Trace.equal w3 (Mc.walks bcfg branchy));
  check tbool "different seed, different samples" false
    (List.for_all2 Trace.equal w3 w4)

(* -- exact μ-prevalence --------------------------------------------------- *)

let test_exact_prevalence_hand_computed () =
  (* one_msg is a two-step chain: send then receive, no branching. The
     μ-measure puts all mass on the single maximal walk. *)
  let b = Prop.make "delivered" (fun z -> recv_count z p1 > 0) in
  let at depth =
    match Mc.exact_prevalence Fixtures.one_msg ~depth b with
    | Some r -> r
    | None -> Alcotest.fail "exact side unavailable"
  in
  check tbool "depth 1: undelivered" true (Mc.Rat.equal Mc.Rat.zero (at 1));
  check tbool "depth 2: delivered" true (Mc.Rat.equal Mc.Rat.one (at 2));
  check tbool "depth 5: deadlock extends endpoint" true
    (Mc.Rat.equal Mc.Rat.one (at 5))

let test_exact_prevalence_branching () =
  (* indep: two concurrent internal events — after one step only one of
     the two equally likely orders has let p0 act *)
  let sent0 = Prop.make "p0-acted" (fun z -> Trace.proj z p0 <> []) in
  match Mc.exact_prevalence Fixtures.indep ~depth:1 sent0 with
  | Some r -> check tbool "half measure" true (Mc.Rat.equal (Mc.Rat.make 1 2) r)
  | None -> Alcotest.fail "exact side unavailable"

let test_exact_prevalence_budget () =
  let b = Prop.make "t" (fun _ -> true) in
  check tbool "node budget gives None" true
    (Mc.exact_prevalence ~max_nodes:3
       (Protocol.spec_of (instance "two-generals"))
       ~depth:6 b
    = None)

(* -- the cross-validation gate ------------------------------------------- *)

let test_cross_validate_registry () =
  let vs = Mc.cross_validate_registry ~runs:10_000 ~depth:4 ~seed:1L () in
  check tbool "validated something" true (List.length vs > 10);
  List.iter
    (fun v ->
      if not v.Mc.ok then
        Alcotest.failf "CI misses exact prevalence: %s"
          (Format.asprintf "%a" Mc.pp_validation v))
    vs

(* -- knowledge estimation ------------------------------------------------ *)

let test_knowledge_upper_bound () =
  (* the peer sampler can only refute K with a found peer, so its
     estimate upper-bounds the exact prevalence *)
  let inst = instance "ping-pong" in
  let spec = Protocol.spec_of inst in
  let env = Protocol.atom_env inst in
  let f = formula "K p0 received" in
  let depth = 4 in
  let exact =
    match get (Mc.exact_formula_prevalence spec ~depth ~env f) with
    | Some r -> Mc.Rat.to_float r
    | None -> Alcotest.fail "exact side unavailable"
  in
  let cfg = { Mc.default with Mc.runs = 2_000; depth; seed = 5L } in
  let est = get (Mc.estimate_formula cfg spec ~env f) in
  check tbool "upper-biased: CI upper end covers exact" true
    (est.Mc.ci.Mc.hi +. 1e-9 >= exact)

let test_partition_blocks_knowledge () =
  (* a total partition from step 0: p1 never hears anything, so it can
     never know the attack order — while fault-free it almost surely
     learns it *)
  let inst = instance "two-generals" in
  let spec = Protocol.spec_of inst in
  let env = Protocol.atom_env inst in
  let f = formula "K p1 attack" in
  let cfg = { Mc.default with Mc.runs = 300; depth = 12; seed = 3L } in
  let free = get (Mc.estimate_formula cfg spec ~env f) in
  check tbool "fault-free knowledge prevalent" true (free.Mc.mean > 0.5);
  let cut =
    get
      (Mc.estimate_formula
         { cfg with Mc.windows = [ (0, 100, [ 0 ]) ] }
         spec ~env f)
  in
  (* the peer sampler is upper-biased, so a stray unrefuted walk can
     slip through; the estimate must still collapse *)
  check tbool "partitioned: knowledge collapses" true
    (cut.Mc.mean < 0.05 && cut.Mc.ci.Mc.hi < free.Mc.ci.Mc.lo)

let test_validate_rejects () =
  let inst = instance "ping-pong" in
  let spec = Protocol.spec_of inst in
  let env = Protocol.atom_env inst in
  let rejected t =
    Result.is_error (Mc.estimate_formula Mc.default spec ~env (formula t))
  in
  check tbool "temporal rejected" true (rejected "AG sent");
  check tbool "unbound atom rejected" true (rejected "K p0 nonsense");
  check tbool "out-of-range pid rejected" true (rejected "K p7 sent");
  check tbool "plain atoms accepted" false (rejected "sent & ~received")

let test_estimate_robust_destroyed () =
  (* crash p1 before it can receive: 'received' never holds *)
  let inst = instance "ping-pong" in
  let spec = Protocol.spec_of inst in
  let env = Protocol.atom_env inst in
  let faulty = Faults.crash_stop ~pid:p1 ~after:0 spec in
  let cfg = { Mc.default with Mc.runs = 300; depth = 4; seed = 7L } in
  let r = get (Mc.estimate_robust cfg spec ~faulty ~env (formula "received")) in
  check tbool "destroyed" true (r.Mc.verdict = Mc.Destroyed);
  check tint "no faulty hits" 0 r.Mc.faulty.Mc.hits

let test_out_of_time_status () =
  let spec = Protocol.spec_of (instance "two-generals") in
  let b = Prop.make "t" (fun _ -> true) in
  let cfg =
    {
      Mc.default with
      Mc.runs = 10_000_000;
      depth = 12;
      max_seconds = Some 0.05;
    }
  in
  let e = Mc.estimate_prop cfg spec b in
  check tbool "flagged out of time" true (e.Mc.status = Mc.Out_of_time);
  check tbool "partial sample" true (e.Mc.runs < e.Mc.requested)

(* -- crash-recovery (exact transformer and scenario) --------------------- *)

let has_internal tag z p =
  List.exists
    (fun e ->
      match e.Event.kind with
      | Event.Internal t -> String.equal t tag
      | _ -> false)
    (Trace.proj z p)

let test_crash_recover_round_trip () =
  (* p1 may do one event per life, one recovery: the universe contains
     computations with visible crash and recover events, and p1 can
     still deliver in its second life *)
  let s = Faults.crash_recover ~pid:p1 ~after:1 ~upto:1 Fixtures.ping_pong in
  let u = Universe.enumerate s ~depth:8 in
  let some p = Universe.fold (fun _ z acc -> acc || p z) u false in
  check tbool "crash appears" true
    (some (fun z -> has_internal Faults.crash_tag z p1));
  check tbool "recover appears" true
    (some (fun z -> has_internal Faults.recover_tag z p1));
  check tbool "second-life reply" true
    (some (fun z ->
         has_internal Faults.recover_tag z p1 && Trace.send_count z p1 > 0))

let test_scenario_recover_needs_crash () =
  check tbool "recover alone rejected" true
    (match Faults.Scenario.parse "recover:p1@1" with
    | Ok t -> Result.is_error (Faults.Scenario.apply t Fixtures.ping_pong)
    | Error _ -> true)

let test_scenario_partition_windows () =
  let t = Result.get_ok (Faults.Scenario.parse "partition:p0@1-3,crash:p1@2") in
  check tbool "windows extracted" true
    (Faults.Scenario.partition_windows t = [ (1, 3, [ 0 ]) ]);
  check tbool "stripped scenario keeps the crash" true
    (Faults.Scenario.partition_windows (Faults.Scenario.without_partitions t)
     = []
    && List.length (Faults.Scenario.without_partitions t) = 1)

let test_scenario_sim_threading () =
  let t =
    Result.get_ok
      (Faults.Scenario.parse "partition:p0@1-3,crash:p1@2,recover:p1@1")
  in
  let cfg = Faults.Scenario.to_sim_config t Hpl_sim.Engine.default in
  check tbool "partition window threaded" true
    (List.mem (1.0, 3.0, [ 0 ]) cfg.Hpl_sim.Engine.partitions);
  check tbool "recovery threaded" true
    (List.mem (1, 1) cfg.Hpl_sim.Engine.recoveries)

let test_sim_engine_recovery () =
  (* p1 streams messages at p0 forever; p0 crashes after 3 local
     events, comes back once, and keeps receiving on its fresh quota *)
  let handlers =
    {
      Hpl_sim.Engine.init =
        (fun pid ->
          if Pid.to_int pid = 1 then
            ((), [ Hpl_sim.Engine.Set_timer (1.0, "t") ])
          else ((), []));
      on_message = (fun s ~self:_ ~src:_ ~payload:_ ~now:_ -> (s, []));
      on_timer =
        (fun s ~self:_ ~tag ~now:_ ->
          (s, [ Hpl_sim.Engine.Send (p0, "x"); Hpl_sim.Engine.Set_timer (1.0, tag) ]));
    }
  in
  let cfg =
    {
      Hpl_sim.Engine.default with
      n = 2;
      crash_after_events = [ (0, 3) ];
      recoveries = [ (0, 1) ];
      max_steps = 400;
      max_time = 120.0;
    }
  in
  let r = Hpl_sim.Engine.run cfg handlers in
  (* quota crashes are silent (like Faults.crash_stop), but the comeback
     is a visible event *)
  check tbool "recover recorded" true (has_internal "recover" r.trace p0);
  (* two lives of 3 events each, plus the crash/recover markers *)
  check tbool "second life happened" true
    (List.length (Trace.proj r.trace p0) > 5);
  let norec = Hpl_sim.Engine.run { cfg with recoveries = [] } handlers in
  check tbool "without recovery: silenced at quota" true
    (List.length (Trace.proj norec.trace p0)
    < List.length (Trace.proj r.trace p0))

let suite =
  [
    ("rat arithmetic", `Quick, test_rat_arithmetic);
    ("z of level", `Quick, test_z_of_level);
    ("wilson boundaries", `Quick, test_wilson_boundaries);
    ("seeded determinism", `Quick, test_seeded_determinism);
    ("exact prevalence: chain", `Quick, test_exact_prevalence_hand_computed);
    ("exact prevalence: branching", `Quick, test_exact_prevalence_branching);
    ("exact prevalence: budget", `Quick, test_exact_prevalence_budget);
    ("cross-validate registry", `Slow, test_cross_validate_registry);
    ("knowledge estimate upper-bounds exact", `Quick, test_knowledge_upper_bound);
    ("partition blocks knowledge", `Quick, test_partition_blocks_knowledge);
    ("formula validation", `Quick, test_validate_rejects);
    ("robust: destroyed", `Quick, test_estimate_robust_destroyed);
    ("out-of-time status", `Quick, test_out_of_time_status);
    ("crash-recover universe", `Quick, test_crash_recover_round_trip);
    ("recover needs crash", `Quick, test_scenario_recover_needs_crash);
    ("partition windows split", `Quick, test_scenario_partition_windows);
    ("sim config threading", `Quick, test_scenario_sim_threading);
    ("sim engine recovery", `Quick, test_sim_engine_recovery);
  ]
