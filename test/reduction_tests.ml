(* Cross-validation of the reduction layer (DESIGN.md §10).

   The reductions are only worth having if they are exact, so every
   claim the layer makes is checked here against the baseline
   definitions, registry-wide:

   - por produces a universe bit-identical to the unreduced canonical
     enumeration (same computations, same order, same class ids);
   - sym/full store one representative per orbit: every unreduced
     class resolves to exactly one representative ([Universe.find]),
     two classes share a representative iff their orbit keys agree,
     and knowledge / CK / temporal verdicts at the representatives
     coincide with the unreduced verdicts — including for asymmetric
     atoms, where exactness rests on the orbit-expansion semantics;
   - declared generators really are spec automorphisms (and known
     non-automorphisms are rejected), and the lint rules guarding
     both directions fire.

   Random-walk cases are seeded and replayable like the §3 law suite. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let case_rng seed = Random.State.make [| 0x9e37; seed |]

(* small enough that unreduced enumeration of every registry protocol
   stays cheap, deep enough that orbits are non-trivial *)
let cross_depth inst = min 4 (Protocol.depth_of inst)

let registry () = Protocol.Registry.list ()

let enum ?reduce inst ~depth =
  Universe.enumerate ?reduce (Protocol.spec_of inst) ~depth

let symmetric_instances () =
  List.filter_map
    (fun proto ->
      let inst = Protocol.default_instance proto in
      match Protocol.symmetry_of inst with
      | Some g when not (Symmetry.is_trivial g) -> Some (inst, g)
      | _ -> None)
    (registry ())

(* -- por: bit-identical universe ----------------------------------------- *)

let test_por_bit_identity () =
  List.iter
    (fun proto ->
      let inst = Protocol.default_instance proto in
      let name = Protocol.instance_name inst in
      let depth = cross_depth inst in
      let u0 = enum inst ~depth in
      let u1 = enum ~reduce:Reduction.por inst ~depth in
      checki (name ^ ": por size") (Universe.size u0) (Universe.size u1);
      Universe.iter
        (fun i z ->
          checkb
            (Printf.sprintf "%s: por comp %d" name i)
            true
            (Trace.equal z (Universe.comp u1 i)))
        u0;
      let n = Spec.n (Protocol.spec_of inst) in
      for p = 0 to n - 1 do
        check
          Alcotest.(array int)
          (Printf.sprintf "%s: por class ids p%d" name p)
          (Universe.class_ids u0 (Pid.of_int p))
          (Universe.class_ids u1 (Pid.of_int p))
      done)
    (registry ())

(* -- sym: orbit coverage and consistency ---------------------------------- *)

let test_sym_orbit_coverage () =
  List.iter
    (fun (inst, g) ->
      let name = Protocol.instance_name inst in
      let depth = cross_depth inst in
      let u0 = enum inst ~depth in
      let u1 = enum ~reduce:(Reduction.full g) inst ~depth in
      checkb
        (name ^ ": reduced no larger")
        true
        (Universe.size u1 <= Universe.size u0);
      (* every unreduced class resolves to a representative, reps to
         themselves, and the representative map is exactly orbit-key
         equality *)
      let hit = Array.make (Universe.size u1) false in
      let rep = Array.make (Universe.size u0) (-1) in
      Universe.iter
        (fun i z ->
          match Universe.find u1 z with
          | None -> Alcotest.failf "%s: class %d has no representative" name i
          | Some j ->
              hit.(j) <- true;
              rep.(i) <- j)
        u0;
      checkb (name ^ ": all representatives hit") true (Array.for_all Fun.id hit);
      Universe.iter
        (fun j z ->
          check
            Alcotest.(option int)
            (Printf.sprintf "%s: rep %d resolves to itself" name j)
            (Some j) (Universe.find u1 z))
        u1;
      let keys = Array.init (Universe.size u0) (fun i ->
          Symmetry.orbit_key g (Universe.comp u0 i))
      in
      Universe.iter
        (fun i _ ->
          Universe.iter
            (fun i' _ ->
              if i < i' then
                checkb
                  (Printf.sprintf "%s: orbit key iff same rep (%d,%d)" name i i')
                  (Symmetry.equal_key keys.(i) keys.(i'))
                  (rep.(i) = rep.(i')))
            u0)
        u0)
    (symmetric_instances ())

(* -- sym: operator agreement at representatives --------------------------- *)

(* verdicts on the reduced universe are reported at representatives;
   exactness means they equal the unreduced verdict at the same class *)
let agree_at_reps name u0 u1 ~what (ext0 : Bitset.t) (ext1 : Bitset.t) =
  Universe.iter
    (fun j z ->
      let i =
        match Universe.find u0 z with
        | Some i -> i
        | None -> Alcotest.failf "%s: rep %d not in full universe" name j
      in
      checkb
        (Printf.sprintf "%s: %s at rep %d" name what j)
        (Bitset.mem ext0 i) (Bitset.mem ext1 j))
    u1

let test_sym_knowledge_agreement () =
  List.iter
    (fun (inst, g) ->
      let name = Protocol.instance_name inst in
      let depth = cross_depth inst in
      let u0 = enum inst ~depth in
      let u1 = enum ~reduce:(Reduction.full g) inst ~depth in
      let n = Spec.n (Protocol.spec_of inst) in
      List.iter
        (fun (aname, b) ->
          agree_at_reps name u0 u1
            ~what:("extent " ^ aname)
            (Prop.extent u0 b) (Prop.extent u1 b);
          for p = 0 to n - 1 do
            let ps = Pset.singleton (Pid.of_int p) in
            agree_at_reps name u0 u1
              ~what:(Printf.sprintf "p%d knows %s" p aname)
              (Knowledge.knows_prop_ext u0 ps b)
              (Knowledge.knows_prop_ext u1 ps b)
          done)
        (Protocol.atoms_of inst))
    (symmetric_instances ())

let test_sym_ck_and_temporal_agreement () =
  List.iter
    (fun (inst, g) ->
      let name = Protocol.instance_name inst in
      let depth = cross_depth inst in
      let u0 = enum inst ~depth in
      let u1 = enum ~reduce:(Reduction.full g) inst ~depth in
      List.iter
        (fun (aname, b) ->
          agree_at_reps name u0 u1
            ~what:("CK " ^ aname)
            (Prop.extent u0 (Common_knowledge.common u0 b))
            (Prop.extent u1 (Common_knowledge.common u1 b));
          agree_at_reps name u0 u1
            ~what:("E^2 " ^ aname)
            (Prop.extent u0 (Common_knowledge.level u0 2 b))
            (Prop.extent u1 (Common_knowledge.level u1 2 b));
          List.iter
            (fun (fname, f) ->
              agree_at_reps name u0 u1
                ~what:(Printf.sprintf "%s %s" fname aname)
                (Temporal.check u0 f) (Temporal.check u1 f))
            Temporal.
              [
                ("AF", af (atom b));
                ("EG", eg (atom b));
                ("EX", ex (atom b));
                ("AG¬", ag (not_ (atom b)));
              ])
        (Protocol.atoms_of inst))
    (symmetric_instances ())

(* -- find_orbit on seeded random walks ------------------------------------ *)

let walk rng spec depth =
  let rec go z k =
    if k >= depth then z
    else
      match Spec.enabled spec z with
      | [] -> z
      | events ->
          let e = List.nth events (Random.State.int rng (List.length events)) in
          go (Trace.snoc z e) (k + 1)
  in
  go Trace.empty 0

let test_find_orbit_random_walks () =
  List.iter
    (fun (inst, g) ->
      let name = Protocol.instance_name inst in
      let spec = Protocol.spec_of inst in
      let depth = cross_depth inst in
      let u1 = enum ~reduce:(Reduction.full g) inst ~depth in
      let rng = case_rng 1 in
      for c = 1 to 50 do
        let z = walk rng spec depth in
        match Universe.find_orbit u1 z with
        | None ->
            Alcotest.failf "%s: walk %d escaped the reduced universe" name c
        | Some (i, rho) ->
            (* z is interleaving-equivalent to rho · comp i *)
            checkb
              (Printf.sprintf "%s: find_orbit witness %d" name c)
              true
              (Trace.equal (Universe.canon u1 z)
                 (Universe.canon u1
                    (Symmetry.permute_trace rho (Universe.comp u1 i))))
      done)
    (symmetric_instances ())

(* -- declared generators are automorphisms -------------------------------- *)

let test_declared_generators_are_automorphisms () =
  List.iter
    (fun (inst, _) ->
      let name = Protocol.instance_name inst in
      let spec = Protocol.spec_of inst in
      List.iter
        (fun pi ->
          checkb
            (Printf.sprintf "%s: generator %s" name (Symmetry.to_string pi))
            true
            (Symmetry.is_automorphism spec pi))
        (Protocol.generators_of inst))
    (symmetric_instances ())

let test_non_automorphisms_rejected () =
  (* the quorum collector is distinguished: swapping it with a member
     is not an automorphism *)
  checkb "quorum: collector swap rejected" false
    (Symmetry.is_automorphism
       (Symmetric.quorum_spec ~n:3 ~q:1)
       (Symmetry.transposition 3 0 1));
  (* the star hub likewise cannot be rotated into a member *)
  checkb "star-flood: rotation rejected" false
    (Symmetry.is_automorphism (Symmetric.star_flood_spec ~n:4)
       (Symmetry.rotation 4));
  (* Protocol.star_spec contacts members in pid order — even the
     member swap fails, which is why star-flood exists *)
  checkb "ordered star: member swap rejected" false
    (Symmetry.is_automorphism
       (Protocol.star_spec ~n:4 ~request:"req" ~reply:"rep" ~finish:"fin" ())
       (Symmetry.transposition 4 1 2))

(* -- lint rules ------------------------------------------------------------ *)

let find_rule report rule =
  List.filter (fun f -> f.Hpl_analysis.Lint.rule = rule)
    report.Hpl_analysis.Lint.findings

let test_lint_undeclared_symmetry () =
  let proto =
    Protocol.make ~name:"lint-probe-undeclared"
      ~doc:"ring spec without a symmetry declaration"
      ~params:[ Protocol.param ~lo:2 "n" 3 "ring size" ]
      (fun vs -> Symmetric.ring_spec ~n:(Protocol.get vs "n") ~rounds:1)
  in
  let report =
    Hpl_analysis.Lint.lint_instance (Protocol.default_instance proto)
  in
  match find_rule report "undeclared-symmetry" with
  | [ f ] -> checkb "warning" true (f.Hpl_analysis.Lint.severity = Warning)
  | fs -> Alcotest.failf "expected one undeclared-symmetry finding, got %d"
            (List.length fs)

let test_lint_invalid_symmetry () =
  let proto =
    Protocol.make ~name:"lint-probe-invalid"
      ~doc:"quorum spec with a bogus generator"
      ~params:[ Protocol.param ~lo:3 "n" 3 "processes" ]
      ~symmetry:(fun vs -> [ Symmetry.transposition (Protocol.get vs "n") 0 1 ])
      (fun vs -> Symmetric.quorum_spec ~n:(Protocol.get vs "n") ~q:1)
  in
  let report =
    Hpl_analysis.Lint.lint_instance (Protocol.default_instance proto)
  in
  match find_rule report "invalid-symmetry" with
  | [ f ] -> checkb "error" true (f.Hpl_analysis.Lint.severity = Error)
  | fs -> Alcotest.failf "expected one invalid-symmetry finding, got %d"
            (List.length fs)

let test_lint_registry_declares () =
  (* every registry protocol either declares valid generators or has no
     obvious symmetry: the registry lints clean of both rules *)
  List.iter
    (fun proto ->
      let inst = Protocol.default_instance proto in
      let report = Hpl_analysis.Lint.lint_instance ~depth:3 inst in
      List.iter
        (fun rule ->
          checki
            (Printf.sprintf "%s: no %s" (Protocol.instance_name inst) rule)
            0
            (List.length (find_rule report rule)))
        [ "undeclared-symmetry"; "invalid-symmetry" ])
    (registry ())

(* -- depth-wall spot check ------------------------------------------------- *)

let test_reduction_reduces () =
  let counts inst g depth =
    let u0 = enum inst ~depth in
    let u1 = enum ~reduce:(Reduction.full g) inst ~depth in
    (Universe.size u0, Universe.size u1)
  in
  List.iter
    (fun (pname, depth, min_factor) ->
      match Protocol.Registry.find pname with
      | None -> Alcotest.failf "%s not registered" pname
      | Some proto ->
          let inst = Protocol.default_instance proto in
          let g = Option.get (Protocol.symmetry_of inst) in
          let full, reduced = counts inst g depth in
          checkb
            (Printf.sprintf "%s: %d -> %d states at depth %d (>= %dx)" pname
               full reduced depth min_factor)
            true
            (reduced * min_factor <= full))
    [ ("ring", 6, 4); ("star-flood", 6, 10); ("mesh", 4, 10) ]

let suite =
  [
    Alcotest.test_case "por is bit-identical, registry-wide" `Quick
      test_por_bit_identity;
    Alcotest.test_case "sym orbit coverage and key consistency" `Quick
      test_sym_orbit_coverage;
    Alcotest.test_case "knows/extent agree at representatives" `Quick
      test_sym_knowledge_agreement;
    Alcotest.test_case "CK and temporal agree at representatives" `Quick
      test_sym_ck_and_temporal_agreement;
    Alcotest.test_case "find_orbit resolves seeded random walks" `Quick
      test_find_orbit_random_walks;
    Alcotest.test_case "declared generators are automorphisms" `Quick
      test_declared_generators_are_automorphisms;
    Alcotest.test_case "non-automorphisms are rejected" `Quick
      test_non_automorphisms_rejected;
    Alcotest.test_case "lint: undeclared-symmetry fires" `Quick
      test_lint_undeclared_symmetry;
    Alcotest.test_case "lint: invalid-symmetry fires" `Quick
      test_lint_invalid_symmetry;
    Alcotest.test_case "lint: registry symmetry-clean" `Quick
      test_lint_registry_declares;
    Alcotest.test_case "reduction shrinks ring/star/mesh universes" `Quick
      test_reduction_reduces;
  ]
