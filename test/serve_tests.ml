(* The hpl serve surface: universe serialization round-trips, snapshot
   integrity under seeded corruption, LRU cache behavior, and — the
   headline — conformance between the server and the CLI, checked both
   in-process (registry-wide) and through real hpl processes. *)
open Hpl_core
open Hpl_protocols
open Hpl_serve

let () = Builtins.init ()
let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let setup ?proto ?file ?depth ?faults ?max_states ?max_seconds () =
  get (Query.resolve ?proto ?file ?depth ?faults ?max_states ?max_seconds ())

let universe ?(mode = `Canonical) ?(reduce = "none") ?(indep = false) st =
  let r = get (Query.resolve_reduce st ~mode ~indep reduce) in
  Query.enumerate ~mode st ~reduce:r

let stats_str u = Format.asprintf "%a" Universe.pp_stats u

let formula text =
  match Formula.parse text with
  | Ok f -> f
  | Error e -> Alcotest.failf "formula parse %S: %s" text e

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hpl-serve-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

(* -- Universe serialization ---------------------------------------------- *)

(* A reloaded universe must be observationally identical: same stats
   line, same computations at the same indices, and — through the
   rebuilt per-process class ids — the same knowledge answers. *)
let assert_same_universe what st u u2 =
  check tstr (what ^ ": stats") (stats_str u) (stats_str u2);
  check tint (what ^ ": size") (Universe.size u) (Universe.size u2);
  Universe.iter
    (fun i z ->
      match Universe.index u2 z with
      | Some j when j = i -> ()
      | Some j -> Alcotest.failf "%s: comp %d reloaded at index %d" what i j
      | None -> Alcotest.failf "%s: comp %d lost on reload" what i)
    u;
  let k1 = Query.run_knows st u and k2 = Query.run_knows st u2 in
  check tstr (what ^ ": knows report") k1.Query.out k2.Query.out;
  check tint (what ^ ": knows code") k1.Query.code k2.Query.code

let roundtrip what st u =
  let body = get (Universe.serialize u) in
  let u2 = get (Universe.deserialize st.Query.spec body) in
  assert_same_universe what st u u2

let test_roundtrip_plain () =
  let st = setup ~proto:"ping-pong" ~depth:"6" () in
  roundtrip "ping-pong" st (universe st);
  let st = setup ~proto:"token-ring:3" ~depth:"4" () in
  roundtrip "token-ring:3" st (universe st);
  let st = setup ~proto:"two-generals" ~depth:"5" () in
  roundtrip "two-generals" st (universe st);
  (* full mode and a truncated universe keep their status through the
     round trip (stats line includes both) *)
  let st = setup ~proto:"chatter" ~depth:"3" ~max_states:"10" () in
  let u = universe ~mode:`Full st in
  check tbool "truncated fixture" true (Universe.status u <> Universe.Complete);
  roundtrip "chatter full truncated" st u

let test_roundtrip_por_faults () =
  let st = setup ~proto:"token-ring:3" ~depth:"4" () in
  roundtrip "token-ring:3 por" st (universe ~reduce:"por" st);
  (* por with attached independence (the enumerate semantics) prunes
     differently but serializes the same way *)
  let st = setup ~proto:"ping-pong" ~depth:"6" () in
  roundtrip "ping-pong por+indep" st (universe ~reduce:"por" ~indep:true st);
  let st = setup ~proto:"ping-pong" ~depth:"6" ~faults:"drop:p0->p1" () in
  roundtrip "ping-pong dropped" st (universe st);
  let st = setup ~proto:"two-generals" ~depth:"5" ~faults:"crash:p1@2" () in
  roundtrip "two-generals crashed" st (universe st)

let test_serialize_sym () =
  let st = setup ~proto:"mesh" ~depth:"3" () in
  let u = universe ~reduce:"sym" st in
  match Universe.serialize u with
  | Ok _ -> Alcotest.fail "symmetry-reduced universe must refuse to serialize"
  | Error _ -> ()

let test_deserialize_garbage () =
  let st = setup ~proto:"ping-pong" ~depth:"4" () in
  let bad what s =
    match Universe.deserialize st.Query.spec s with
    | Ok _ -> Alcotest.failf "deserialize accepted %s" what
    | Error _ -> ()
  in
  bad "empty input" "";
  bad "garbage" "this is not a universe body";
  let body = get (Universe.serialize (universe st)) in
  bad "truncated body" (String.sub body 0 (String.length body / 2));
  bad "trailing bytes" (body ^ "x");
  (* a body from one spec must not decode against another arity *)
  let st3 = setup ~proto:"token-ring:3" () in
  (match Universe.deserialize st3.Query.spec body with
  | Ok _ -> Alcotest.fail "deserialize accepted a wrong-arity spec"
  | Error _ -> ())

(* -- Snapshot container --------------------------------------------------- *)

let test_snapshot_roundtrip () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let st = setup ~proto:"two-generals" ~depth:"5" () in
      let u = universe st in
      let key = "test|two-generals|d5" in
      get (Snapshot.save ~dir ~key u);
      (match Snapshot.load ~dir ~key st.Query.spec with
      | Ok u2 -> assert_same_universe "snapshot" st u u2
      | Error Snapshot.Absent -> Alcotest.fail "snapshot vanished"
      | Error (Snapshot.Cache_invalid m) ->
          Alcotest.failf "fresh snapshot invalid: %s" m);
      (* overwriting with a different universe under the same key wins *)
      let st2 = setup ~proto:"two-generals" ~depth:"3" () in
      let u3 = universe st2 in
      get (Snapshot.save ~dir ~key u3);
      match Snapshot.load ~dir ~key st2.Query.spec with
      | Ok u4 -> assert_same_universe "snapshot overwrite" st2 u3 u4
      | Error _ -> Alcotest.fail "overwritten snapshot unreadable")

let test_snapshot_absent_mismatch () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let st = setup ~proto:"ping-pong" ~depth:"4" () in
      (match Snapshot.load ~dir ~key:"never-saved" st.Query.spec with
      | Error Snapshot.Absent -> ()
      | Error (Snapshot.Cache_invalid m) ->
          Alcotest.failf "missing file reported invalid: %s" m
      | Ok _ -> Alcotest.fail "missing snapshot loaded");
      (* a file whose embedded key disagrees with the requested one (a
         filename-hash collision or a stale rename) must be invalid,
         not silently served *)
      let key = "the real key" in
      get (Snapshot.save ~dir ~key (universe st));
      let other = "an impostor key" in
      Sys.rename (Snapshot.path_of ~dir ~key) (Snapshot.path_of ~dir ~key:other);
      match Snapshot.load ~dir ~key:other st.Query.spec with
      | Error (Snapshot.Cache_invalid _) -> ()
      | Error Snapshot.Absent -> Alcotest.fail "renamed snapshot absent"
      | Ok _ -> Alcotest.fail "key mismatch served a universe")

(* Seeded fuzz: truncate and corrupt a snapshot at random offsets. Every
   damaged load must come back Cache_invalid — never Ok with a wrong
   universe — and the intact bytes must keep loading a universe whose
   atom extent matches fresh enumeration. *)
let test_snapshot_fuzz () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let st = setup ~proto:"two-generals" ~depth:"5" () in
      let u = universe st in
      let key = "fuzz|two-generals|d5" in
      get (Snapshot.save ~dir ~key u);
      let path = Snapshot.path_of ~dir ~key in
      let good = In_channel.with_open_bin path In_channel.input_all in
      let len = String.length good in
      let write s =
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc s)
      in
      let expect_invalid what =
        match Snapshot.load ~dir ~key st.Query.spec with
        | Error (Snapshot.Cache_invalid _) -> ()
        | Error Snapshot.Absent -> Alcotest.failf "%s: reported absent" what
        | Ok u2 ->
            (* the one excuse for Ok would be an unscathed universe —
               and damage within the file can never produce one without
               beating the checksum *)
            Alcotest.failf "%s: served a universe (stats %S vs good %S)" what
              (stats_str u2) (stats_str u)
      in
      let rng = Random.State.make [| 0xC0FFEE |] in
      for _ = 1 to 40 do
        let cut = Random.State.int rng len in
        write (String.sub good 0 cut);
        expect_invalid (Printf.sprintf "truncated at %d/%d" cut len)
      done;
      for _ = 1 to 40 do
        let pos = Random.State.int rng len in
        let b = Bytes.of_string good in
        Bytes.set b pos
          (Char.chr (Char.code (Bytes.get b pos) lxor (1 + Random.State.int rng 255)));
        write (Bytes.to_string b);
        expect_invalid (Printf.sprintf "flipped byte at %d/%d" pos len)
      done;
      (* restore and cross-check the answer against fresh enumeration *)
      write good;
      match Snapshot.load ~dir ~key st.Query.spec with
      | Error _ -> Alcotest.fail "restored snapshot unreadable"
      | Ok u2 ->
          let e1 = Query.run_extent st u ~atom:"attack"
          and e2 = Query.run_extent st u2 ~atom:"attack" in
          check tstr "extent after recovery" e1.Query.out e2.Query.out)

(* -- LRU cache ------------------------------------------------------------ *)

let test_cache_lru () =
  let u2 = universe (setup ~proto:"ping-pong" ~depth:"2" ())
  and u3 = universe (setup ~proto:"ping-pong" ~depth:"3" ())
  and u4 = universe (setup ~proto:"ping-pong" ~depth:"4" ()) in
  let sz = Universe.size in
  (* budget holds any two of the three; the cold entry is the victim *)
  let c = Cache.create ~max_states:(sz u2 + sz u3 + sz u4 - 1) in
  Cache.add c "a" u2;
  Cache.add c "b" u3;
  check tbool "refresh a" true (Cache.find c "a" <> None);
  Cache.add c "c" u4;
  check tbool "b evicted (LRU)" true (Cache.find c "b" = None);
  check tbool "a survives (refreshed)" true (Cache.find c "a" <> None);
  check tbool "c cached" true (Cache.find c "c" <> None);
  check tint "one eviction" 1 (Cache.evictions c);
  check tint "two entries" 2 (Cache.entries c);
  check tint "stored weight" (sz u2 + sz u4) (Cache.stored_states c);
  (* re-adding an existing key is a no-op *)
  Cache.add c "a" u2;
  check tint "re-add keeps entries" 2 (Cache.entries c);
  check tint "re-add keeps evictions" 1 (Cache.evictions c);
  (* a universe larger than the whole budget is never cached *)
  let tiny = Cache.create ~max_states:(sz u4 - 1) in
  Cache.add tiny "big" u4;
  check tint "oversize not cached" 0 (Cache.entries tiny);
  check tbool "oversize not found" true (Cache.find tiny "big" = None);
  Alcotest.check_raises "bad budget" (Invalid_argument
    "Cache.create: max_states < 1") (fun () -> ignore (Cache.create ~max_states:0))

(* -- cache keys ------------------------------------------------------------ *)

let test_cache_key () =
  let key ?proto:(p = "ping-pong") ?depth ?faults ?max_states
      ?(mode = `Canonical) ?(reduce = "none") ?(indep = false) () =
    let st = setup ~proto:p ?depth ?faults ?max_states () in
    let r = get (Query.resolve_reduce st ~mode ~indep reduce) in
    Serve.cache_key st ~mode ~reduce:r
  in
  let base = key () in
  check tstr "deterministic" base (key ());
  let distinct = [
    ("depth", key ~depth:"3" ());
    ("faults", key ~faults:"drop:p0->p1" ());
    ("max-states", key ~max_states:"7" ());
    ("mode", key ~mode:`Full ());
    ("reduce", key ~reduce:"por" ());
    ("protocol", key ~proto:"two-generals" ());
    ("params", key ~proto:"token-ring:4" ());
  ] in
  List.iter
    (fun (what, k) ->
      if String.equal k base then
        Alcotest.failf "%s does not separate cache keys (%s)" what k)
    distinct;
  (* por with and without attached independence prune differently, so
     their keys must differ even though Reduction.label agrees *)
  check tbool "indep bit" true (key ~reduce:"por" () <> key ~reduce:"por" ~indep:true ())

(* -- in-process server helpers --------------------------------------------- *)

let server ?(max_states = 10_000_000) ?cache_dir () =
  Serve.create { Serve.max_cached_states = max_states; cache_dir }

let req fields = Json.to_string (Json.Obj fields)

let reply t fields =
  match Json.parse (Serve.handle_line t (req fields)) with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable reply: %s" e

let jstr k j =
  match Json.member k j with Some (Json.Str s) -> s | _ -> ""

let jint k j =
  match Json.int_member k j with
  | Some n -> n
  | None -> Alcotest.failf "reply missing int %S" k

let counter k j =
  match Json.member "counters" j with
  | Some c -> jint k c
  | None -> Alcotest.failf "reply missing counters"

(* The conformance assertion: a server reply must carry the exact bytes
   and exit code the CLI code path produces. *)
let assert_conform t what fields (oracle : Query.outcome) =
  let j = reply t fields in
  check tstr (what ^ ": answer bytes") oracle.Query.out (jstr "answer" j);
  check tstr (what ^ ": error bytes") oracle.Query.err (jstr "error" j);
  check tint (what ^ ": exit code") oracle.Query.code (jint "exit" j)

let oracle_err m = { Query.out = ""; err = "hpl: " ^ m ^ "\n"; code = 2 }

(* Compute the CLI-side outcome for one request, sharing the universe
   across ops exactly as the CLI's per-invocation enumeration would
   (each op re-enumerates to the identical universe). *)
let oracle ?proto ?file ?depth ?faults ?max_states ?(reduce = "none") ~op
    ?formula_text ?atom () =
  match Query.resolve ?proto ?file ?depth ?faults ?max_states () with
  | Error m -> oracle_err m
  | Ok st -> (
      let indep = op = "enumerate-stats" in
      match Query.resolve_reduce st ~mode:`Canonical ~indep reduce with
      | Error m -> oracle_err m
      | Ok r -> (
          let u = Query.enumerate ~mode:`Canonical st ~reduce:r in
          match op with
          | "knows" -> Query.run_knows st u
          | "extent" -> Query.run_extent st u ~atom:(Option.get atom)
          | "check" ->
              Query.run_check st u (formula (Option.get formula_text))
          | _ -> Query.run_stats u))

(* -- conformance battery ---------------------------------------------------- *)

(* Every registered protocol, four ops each: the server's answer bytes,
   error bytes and exit code must equal the CLI code path's, at the
   protocol's own depth (capped) under a state budget. *)
let test_conformance_registry () =
  let t = server () in
  List.iter
    (fun p ->
      let name = Protocol.name p in
      let depth = min (Protocol.suggested_depth p) 4 in
      let base =
        [
          ("protocol", Json.Str name);
          ("depth", Json.Int depth);
          ("max-states", Json.Int 2000);
        ]
      in
      let run what extra ~op ?formula_text ?atom () =
        assert_conform t
          (Printf.sprintf "%s %s" name what)
          (("op", Json.Str op) :: base @ extra)
          (oracle ~proto:name ~depth:(string_of_int depth) ~max_states:"2000"
             ~op ?formula_text ?atom ())
      in
      run "enumerate-stats" [] ~op:"enumerate-stats" ();
      run "knows" [] ~op:"knows" ();
      run "check true" [ ("formula", Json.Str "true") ] ~op:"check"
        ~formula_text:"true" ();
      (match Protocol.atoms_of (Protocol.default_instance p) with
      | [] -> ()
      | (a, _) :: _ ->
          run "extent" [ ("atom", Json.Str a) ] ~op:"extent" ~atom:a ());
      (* unknown atoms must fail with the CLI's exact one-liner *)
      run "extent unknown-atom" [ ("atom", Json.Str "no-such-atom") ]
        ~op:"extent" ~atom:"no-such-atom" ())
    (Protocol.Registry.list ())

(* Faults and reductions ride through the same pipeline: first declared
   scenario per protocol, por everywhere, sym where declared (and the
   identical rejection where not). *)
let test_conformance_faults_reduce () =
  let t = server () in
  List.iter
    (fun p ->
      match Protocol.fault_scenarios p with
      | [] -> ()
      | sc :: _ ->
          let name = Protocol.name p in
          let depth = min (Protocol.suggested_depth p) 4 in
          assert_conform t
            (Printf.sprintf "%s knows --faults %s" name sc)
            [
              ("op", Json.Str "knows");
              ("protocol", Json.Str name);
              ("depth", Json.Int depth);
              ("faults", Json.Str sc);
              ("max-states", Json.Int 2000);
            ]
            (oracle ~proto:name ~depth:(string_of_int depth) ~faults:sc
               ~max_states:"2000" ~op:"knows" ()))
    (Protocol.Registry.list ());
  List.iter
    (fun (name, reduce) ->
      assert_conform t
        (Printf.sprintf "%s enumerate-stats --reduce %s" name reduce)
        [
          ("op", Json.Str "enumerate-stats");
          ("protocol", Json.Str name);
          ("depth", Json.Int 4);
          ("reduce", Json.Str reduce);
        ]
        (oracle ~proto:name ~depth:"4" ~reduce ~op:"enumerate-stats" ()))
    [
      ("ping-pong", "por");
      ("token-ring:3", "por");
      ("mesh", "sym");
      ("mesh", "full");
      (* ping-pong declares no symmetry: both sides reject identically *)
      ("ping-pong", "sym");
      ("ping-pong", "bogus");
    ]

(* Requests that never reach a universe still conform on error bytes. *)
let test_conformance_errors () =
  let t = server () in
  assert_conform t "unknown protocol"
    [ ("op", Json.Str "knows"); ("protocol", Json.Str "no-such-protocol") ]
    (oracle ~proto:"no-such-protocol" ~op:"knows" ());
  assert_conform t "bad depth"
    [ ("op", Json.Str "knows"); ("protocol", Json.Str "ping-pong");
      ("depth", Json.Str "x") ]
    (oracle ~proto:"ping-pong" ~depth:"x" ~op:"knows" ());
  assert_conform t "bad faults"
    [ ("op", Json.Str "knows"); ("protocol", Json.Str "ping-pong");
      ("faults", Json.Str "explode:p0") ]
    (oracle ~proto:"ping-pong" ~faults:"explode:p0" ~op:"knows" ());
  assert_conform t "formula parse error"
    [ ("op", Json.Str "check"); ("protocol", Json.Str "ping-pong");
      ("formula", Json.Str "AG ((") ]
    (oracle_err
       (match Formula.parse "AG ((" with
       | Error e -> "parse error: " ^ e
       | Ok _ -> Alcotest.fail "bad formula parsed"));
  (* a failing formula is exit 1 with the witness, same as the CLI *)
  assert_conform t "failing check"
    [ ("op", Json.Str "check"); ("protocol", Json.Str "token-ring");
      ("formula", Json.Str "AG holds0") ]
    (oracle ~proto:"token-ring" ~op:"check" ~formula_text:"AG holds0" ())

(* -- server protocol discipline -------------------------------------------- *)

let test_protocol_errors () =
  let t = server () in
  (* malformed frame: error reply, not a crash, and not a request *)
  let j = get (Json.parse (Serve.handle_line t "this is { not json")) in
  check tbool "malformed not ok" false (jstr "ok" j = "true");
  check tint "malformed exit 2" 2 (jint "exit" j);
  check tbool "malformed names the problem" true
    (String.length (jstr "error" j) > String.length "hpl: malformed frame: ");
  (* ids echo back verbatim, strings and numbers alike *)
  let j = reply t [ ("op", Json.Str "shutdown-nope"); ("id", Json.Str "abc") ] in
  check tstr "string id echoed" "abc" (jstr "id" j);
  let j = reply t [ ("op", Json.Str "server-stats"); ("id", Json.Int 42) ] in
  check tint "int id echoed" 42 (jint "id" j);
  (* missing op *)
  let j = reply t [ ("id", Json.Int 1) ] in
  check tint "missing op is exit 2" 2 (jint "exit" j);
  (* structured fields where scalars belong *)
  let j = reply t [ ("op", Json.Str "knows"); ("depth", Json.List []) ] in
  check tint "bad field type is exit 2" 2 (jint "exit" j);
  (* none of the above consulted the cache *)
  let j = reply t [ ("op", Json.Str "server-stats") ] in
  check tint "no requests counted" 0 (counter "requests" j);
  check tbool "errors counted" true (counter "errors" j >= 4);
  (* shutdown flips the stop flag *)
  check tbool "running" false (Serve.stopped t);
  let j = reply t [ ("op", Json.Str "shutdown") ] in
  check tint "shutdown ok" 0 (jint "exit" j);
  check tbool "stopped" true (Serve.stopped t)

(* -- cache behavior through the server -------------------------------------- *)

let test_server_cache_provenance () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let fields =
        [
          ("op", Json.Str "extent");
          ("protocol", Json.Str "two-generals");
          ("depth", Json.Int 5);
          ("atom", Json.Str "attack");
        ]
      in
      let t = server ~cache_dir:dir () in
      let j = reply t fields in
      check tstr "cold: miss" "miss" (jstr "cache" j);
      check tstr "cold: enumerated" "enumerated" (jstr "source" j);
      check tint "cold: snapshot written" 1 (counter "snapshot_write" j);
      let answer = jstr "answer" j in
      let j = reply t fields in
      check tstr "warm: hit" "hit" (jstr "cache" j);
      check tstr "warm: memory" "memory" (jstr "source" j);
      check tstr "warm: same answer" answer (jstr "answer" j);
      (* a fresh server over the same cache dir warm-starts from disk *)
      let t2 = server ~cache_dir:dir () in
      let j = reply t2 fields in
      check tstr "restart: miss" "miss" (jstr "cache" j);
      check tstr "restart: snapshot" "snapshot" (jstr "source" j);
      check tstr "restart: same answer" answer (jstr "answer" j);
      (* corrupt the snapshot: the server must re-enumerate (never a
         wrong answer) and overwrite the bad file *)
      let path = Sys.readdir dir in
      check tint "one snapshot file" 1 (Array.length path);
      let path = Filename.concat dir path.(0) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "HPLSNAP1 but rotten");
      let t3 = server ~cache_dir:dir () in
      let j = reply t3 fields in
      check tstr "corrupt: enumerated" "enumerated" (jstr "source" j);
      check tint "corrupt: counted invalid" 1 (counter "snapshot_invalid" j);
      check tstr "corrupt: same answer" answer (jstr "answer" j);
      let t4 = server ~cache_dir:dir () in
      let j = reply t4 fields in
      check tstr "healed: snapshot again" "snapshot" (jstr "source" j);
      check tstr "healed: same answer" answer (jstr "answer" j);
      (* wall-clock budgets bypass the cache entirely *)
      let j = reply t4 (("max-seconds", Json.Str "30") :: fields) in
      check tstr "bypass: cache" "bypass" (jstr "cache" j);
      check tint "bypass: counted" 1 (counter "bypass" j);
      check tint "bypass: requests untouched" 1 (counter "requests" j))

(* Seeded random query stream against a deliberately tiny cache: LRU
   eviction mid-stream must never change an answer, malformed frames
   must not derail the session, and the counters must keep
   cache_hit + cache_miss = requests. *)
let test_property_stream () =
  let rng = Random.State.make [| 20260809 |] in
  let pool =
    [|
      ("ping-pong", "sent", Some "drop:p0->p1");
      ("two-generals", "attack", None);
      ("token-ring:3", "holds0", None);
    |]
  in
  (* budget below the largest pair of universes, so the stream keeps
     evicting; correctness must not notice *)
  let t = server ~max_states:12 () in
  let sent = ref 0 and malformed = ref 0 in
  for i = 1 to 80 do
    if i mod 9 = 0 then begin
      incr malformed;
      let j = get (Json.parse (Serve.handle_line t "{\"op\": ")) in
      check tint "malformed mid-stream" 2 (jint "exit" j)
    end
    else begin
      let proto, atom, faults = pool.(Random.State.int rng 3) in
      let depth = 2 + Random.State.int rng 4 in
      let faults = if Random.State.bool rng then faults else None in
      let reduce = if Random.State.int rng 4 = 0 then Some "por" else None in
      let op, extra =
        match Random.State.int rng 4 with
        | 0 -> ("knows", [])
        | 1 -> ("extent", [ ("atom", Json.Str atom) ])
        | 2 -> ("check", [ ("formula", Json.Str "true") ])
        | _ -> ("enumerate-stats", [])
      in
      let opt k = function None -> [] | Some v -> [ (k, Json.Str v) ] in
      let fields =
        [ ("op", Json.Str op); ("protocol", Json.Str proto);
          ("depth", Json.Int depth); ("id", Json.Int i) ]
        @ opt "faults" faults @ opt "reduce" reduce @ extra
      in
      incr sent;
      let o =
        oracle ~proto ~depth:(string_of_int depth) ?faults
          ?reduce:(match reduce with Some r -> Some r | None -> None)
          ~op ?formula_text:(if op = "check" then Some "true" else None)
          ?atom:(if op = "extent" then Some atom else None) ()
      in
      assert_conform t (Printf.sprintf "stream #%d %s %s" i proto op) fields o;
      let j = reply t [ ("op", Json.Str "server-stats") ] in
      check tint
        (Printf.sprintf "invariant after #%d" i)
        (counter "requests" j)
        (counter "cache_hit" j + counter "cache_miss" j)
    end
  done;
  let j = reply t [ ("op", Json.Str "server-stats") ] in
  check tint "all queries reached the cache" !sent (counter "requests" j);
  check tbool "stream exercised eviction" true (counter "evictions" j > 0);
  check tbool "stream exercised hits" true (counter "cache_hit" j > 0);
  check tbool "malformed frames counted" true (counter "errors" j >= !malformed)

(* -- the obs counter surface ------------------------------------------------ *)

let test_obs_surface () =
  Hpl_obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Hpl_obs.reset ();
      Hpl_obs.disable ())
    (fun () ->
      Hpl_obs.reset ();
      let t = server () in
      let fields =
        [ ("op", Json.Str "knows"); ("protocol", Json.Str "ping-pong");
          ("depth", Json.Int 4) ]
      in
      ignore (reply t fields);
      ignore (reply t fields);
      check tint "server.requests" 2 (Hpl_obs.counter "server.requests");
      check tint "server.cache_miss" 1 (Hpl_obs.counter "server.cache_miss");
      check tint "server.cache_hit" 1 (Hpl_obs.counter "server.cache_hit");
      check tbool "serve.request spans" true
        (Hpl_obs.span_count "serve.request" = 2);
      ignore (Serve.handle_line t "garbage");
      check tint "server.bad_frames" 1 (Hpl_obs.counter "server.bad_frames"))

(* -- process-level conformance ---------------------------------------------- *)

(* The in-process battery shares code with the CLI by construction; these
   run the real binary both ways — `hpl <op> ...` against `hpl serve
   --pipe` — and compare bytes and exit codes across process boundaries. *)

(* cwd is _build/default/test under `dune runtest`, the workspace root
   under `dune exec` — accept both *)
let hpl_exe =
  let candidates = [ "../bin/hpl.exe"; "_build/default/bin/hpl.exe" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> ( try Unix.realpath p with Unix.Unix_error _ -> p)
  | None -> "../bin/hpl.exe"

let slurp f = In_channel.with_open_bin f In_channel.input_all

let run_cli args =
  let out = Filename.temp_file "hpl-cli" ".out"
  and err = Filename.temp_file "hpl-cli" ".err" in
  let cmd =
    String.concat " " (List.map Filename.quote (hpl_exe :: args))
    ^ Printf.sprintf " >%s 2>%s" (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let o = slurp out and e = slurp err in
  Sys.remove out;
  Sys.remove err;
  (o, e, code)

let run_pipe_server requests =
  let inp = Filename.temp_file "hpl-serve" ".in"
  and out = Filename.temp_file "hpl-serve" ".out" in
  Out_channel.with_open_bin inp (fun oc ->
      List.iter
        (fun r ->
          Out_channel.output_string oc r;
          Out_channel.output_char oc '\n')
        requests);
  let cmd =
    Printf.sprintf "%s serve --pipe <%s >%s 2>/dev/null"
      (Filename.quote hpl_exe) (Filename.quote inp) (Filename.quote out)
  in
  let code = Sys.command cmd in
  check tint "pipe server exits 0" 0 code;
  let lines = String.split_on_char '\n' (String.trim (slurp out)) in
  Sys.remove inp;
  Sys.remove out;
  List.map (fun l -> get (Json.parse l)) lines

let test_conformance_process () =
  let cases =
    [
      ( "knows ping-pong",
        [ "knows"; "-s"; "ping-pong"; "-d"; "6" ],
        [ ("op", Json.Str "knows"); ("protocol", Json.Str "ping-pong");
          ("depth", Json.Int 6) ] );
      ( "extent two-generals",
        [ "extent"; "-s"; "two-generals"; "attack"; "-d"; "5" ],
        [ ("op", Json.Str "extent"); ("protocol", Json.Str "two-generals");
          ("depth", Json.Int 5); ("atom", Json.Str "attack") ] );
      ( "check valid",
        [ "check"; "-s"; "token-ring"; "AG (holds0 -> ~holds1)" ],
        [ ("op", Json.Str "check"); ("protocol", Json.Str "token-ring");
          ("formula", Json.Str "AG (holds0 -> ~holds1)") ] );
      ( "check failing",
        [ "check"; "-s"; "token-ring"; "AG holds0" ],
        [ ("op", Json.Str "check"); ("protocol", Json.Str "token-ring");
          ("formula", Json.Str "AG holds0") ] );
      ( "knows with faults",
        [ "knows"; "-s"; "ping-pong"; "--faults"; "drop:p0->p1" ],
        [ ("op", Json.Str "knows"); ("protocol", Json.Str "ping-pong");
          ("faults", Json.Str "drop:p0->p1") ] );
      ( "extent unknown atom",
        [ "extent"; "-s"; "ping-pong"; "bogus" ],
        [ ("op", Json.Str "extent"); ("protocol", Json.Str "ping-pong");
          ("atom", Json.Str "bogus") ] );
    ]
  in
  let replies = run_pipe_server (List.map (fun (_, _, f) -> req f) cases) in
  check tint "one reply per request" (List.length cases) (List.length replies);
  List.iter2
    (fun (what, args, _) j ->
      let out, err, code = run_cli args in
      check tstr (what ^ ": stdout = answer") out (jstr "answer" j);
      check tstr (what ^ ": stderr = error") err (jstr "error" j);
      check tint (what ^ ": exit code") code (jint "exit" j))
    cases replies

(* -- socket transport -------------------------------------------------------- *)

let test_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hpl-serve-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let pid =
    Unix.create_process hpl_exe
      [| hpl_exe; "serve"; "--socket"; path |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let rec connect tries =
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> ()
        | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
          when tries > 0 ->
            Unix.sleepf 0.05;
            connect (tries - 1)
      in
      connect 100;
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let ask fields =
        output_string oc (req fields);
        output_char oc '\n';
        flush oc;
        get (Json.parse (input_line ic))
      in
      let j =
        ask
          [ ("op", Json.Str "extent"); ("protocol", Json.Str "ping-pong");
            ("depth", Json.Int 6); ("atom", Json.Str "sent"); ("id", Json.Int 1) ]
      in
      let out, _, code = run_cli [ "extent"; "-s"; "ping-pong"; "sent"; "-d"; "6" ] in
      check tstr "socket answer = CLI stdout" out (jstr "answer" j);
      check tint "socket exit = CLI exit" code (jint "exit" j);
      let j = ask [ ("op", Json.Str "shutdown") ] in
      check tint "shutdown over socket" 0 (jint "exit" j);
      close_out_noerr oc;
      let _, status = Unix.waitpid [] pid in
      check tbool "daemon exits cleanly" true (status = Unix.WEXITED 0);
      check tbool "socket file removed" false (Sys.file_exists path))

let suite =
  [
    Alcotest.test_case "serialize round-trips plain universes" `Quick
      test_roundtrip_plain;
    Alcotest.test_case "serialize round-trips por and faulty universes" `Quick
      test_roundtrip_por_faults;
    Alcotest.test_case "serialize refuses symmetry-reduced universes" `Quick
      test_serialize_sym;
    Alcotest.test_case "deserialize rejects damaged bodies" `Quick
      test_deserialize_garbage;
    Alcotest.test_case "snapshot saves and reloads" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "snapshot distinguishes absent from invalid" `Quick
      test_snapshot_absent_mismatch;
    Alcotest.test_case "snapshot fuzz: damage is never a wrong universe" `Quick
      test_snapshot_fuzz;
    Alcotest.test_case "cache LRU eviction and budget discipline" `Quick
      test_cache_lru;
    Alcotest.test_case "cache keys separate every parameter" `Quick
      test_cache_key;
    Alcotest.test_case "conformance: every registry protocol, four ops" `Quick
      test_conformance_registry;
    Alcotest.test_case "conformance: faults and reductions" `Quick
      test_conformance_faults_reduce;
    Alcotest.test_case "conformance: error replies carry CLI bytes" `Quick
      test_conformance_errors;
    Alcotest.test_case "frame discipline: malformed input, ids, shutdown"
      `Quick test_protocol_errors;
    Alcotest.test_case "cache provenance: memory, snapshot, corruption, bypass"
      `Quick test_server_cache_provenance;
    Alcotest.test_case "seeded stream: eviction never changes answers" `Quick
      test_property_stream;
    Alcotest.test_case "obs counters mirror the server's" `Quick
      test_obs_surface;
    Alcotest.test_case "process conformance: CLI vs --pipe server" `Quick
      test_conformance_process;
    Alcotest.test_case "socket transport round-trip" `Quick test_socket;
  ]
