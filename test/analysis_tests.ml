(* Static analysis (lib/analysis): channel-graph extraction, chain
   feasibility, locality inference, and the lint driver — including the
   two cross-checks that tie the static layer to the exact engine:

   - locality inference vs [Local_pred.is_local] on full universes;
   - the soundness property: whenever lint's chain analysis says a
     nested-knowledge formula can never hold (no gain chain, body false
     initially — Theorems 4-5), enumeration must find no computation
     where it holds. *)
open Hpl_core
open Hpl_faults
open Hpl_protocols
open Hpl_analysis

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* -- channel graph -------------------------------------------------------- *)

let chan_list = Alcotest.(list (pair int int))

let test_graph_one_msg () =
  let g = Channel_graph.extract Fixtures.one_msg in
  check chan_list "one channel" [ (0, 1) ] (Channel_graph.channels g);
  check chan_list "delivered" [ (0, 1) ] (Channel_graph.delivered g);
  check
    Alcotest.(list string)
    "payloads" [ "m" ]
    (Channel_graph.channel_payloads g 0 1);
  checkb "exploration saturates" true (Channel_graph.scope g = Channel_graph.Exact);
  checkb "p0 active" true (Channel_graph.active g 0);
  checkb "reach 0->1" true (Channel_graph.reach g 0 1);
  checkb "no reach 1->0" false (Channel_graph.reach g 1 0);
  check
    Alcotest.(option (list int))
    "path" (Some [ 0; 1 ])
    (Channel_graph.path g 0 1)

let test_graph_ring () =
  let inst =
    match Protocol.Registry.parse "token-ring:3" with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  let g = Channel_graph.extract ~fuel:6 (Protocol.spec_of inst) in
  check chan_list "ring channels"
    [ (0, 1); (1, 2); (2, 0) ]
    (Channel_graph.channels g);
  checkb "reach around the ring" true (Channel_graph.reach g 1 0);
  check
    Alcotest.(option (list int))
    "two-hop path" (Some [ 0; 1; 2 ])
    (Channel_graph.path g 0 2)

let test_graph_hygiene () =
  (* p0 sends to itself and out of range; p1 receives-if nothing ever
     matches; p2 does nothing at all *)
  let bad =
    Spec.make ~n:3 (fun p history ->
        if history <> [] then []
        else if Pid.equal p (Pid.of_int 0) then
          [ Spec.Send_to (Pid.of_int 0, "self"); Spec.Send_to (Pid.of_int 9, "far") ]
        else if Pid.equal p (Pid.of_int 1) then
          [ Spec.Recv_if ("never", fun _ -> false) ]
        else [])
  in
  let g = Channel_graph.extract bad in
  check
    Alcotest.(list (triple int int string))
    "bad sends"
    [ (0, 0, "self"); (0, 9, "far") ]
    (Channel_graph.bad_sends g);
  checkb "p2 inactive" false (Channel_graph.active g 2);
  checkb "p1 starved" true
    (List.exists
       (fun (s, sat) -> s = Channel_graph.Filtered "never" && not sat)
       (Channel_graph.recv_shapes g 1))

let test_graph_dead_letter () =
  (* p0 sends "x"; p1 only accepts payload "y" *)
  let s =
    Spec.make ~n:2 (fun p history ->
        if Pid.equal p (Pid.of_int 0) then
          if history = [] then [ Spec.Send_to (Pid.of_int 1, "x") ] else []
        else [ Spec.Recv_if ("only-y", fun m -> m.Msg.payload = "y") ])
  in
  let g = Channel_graph.extract s in
  check
    Alcotest.(list (triple int int string))
    "dead letter"
    [ (0, 1, "x") ]
    (Channel_graph.dead_letters g);
  check chan_list "no delivered edge" [] (Channel_graph.delivered g)

let test_graph_rule_raises () =
  let s =
    Spec.make ~n:2 (fun p _ ->
        if Pid.equal p (Pid.of_int 0) then failwith "boom" else [])
  in
  let g = Channel_graph.extract s in
  checkb "error recorded" true
    (match Channel_graph.rule_errors g with [ (0, _) ] -> true | _ -> false)

let test_graph_matches_enabled () =
  (* over-approximation: every event enabled during real enumeration
     lands on a channel / tag the graph knows *)
  List.iter
    (fun name ->
      let inst =
        match Protocol.Registry.parse name with
        | Ok i -> i
        | Error e -> Alcotest.fail e
      in
      let spec = Protocol.spec_of inst in
      let depth = min 4 (Protocol.depth_of inst) in
      let g = Channel_graph.extract ~fuel:depth spec in
      let u = Universe.enumerate ~mode:`Full spec ~depth in
      Universe.iter
        (fun _ z ->
          List.iter
            (fun e ->
              match e.Event.kind with
              | Event.Send m ->
                  let c = (Pid.to_int m.Msg.src, Pid.to_int m.Msg.dst) in
                  checkb
                    (Printf.sprintf "%s: channel %d->%d known" name (fst c)
                       (snd c))
                    true
                    (List.mem c (Channel_graph.channels g))
              | Event.Receive m ->
                  let c = (Pid.to_int m.Msg.src, Pid.to_int m.Msg.dst) in
                  checkb
                    (Printf.sprintf "%s: delivery %d->%d known" name (fst c)
                       (snd c))
                    true
                    (List.mem c (Channel_graph.delivered g))
              | Event.Internal _ -> ())
            (Trace.to_list z))
        u)
    [ "ping-pong"; "two-generals"; "token-ring:3"; "echo:3" ]

(* -- chain feasibility ---------------------------------------------------- *)

let nest_of text =
  match Formula.parse text with
  | Error e -> Alcotest.fail e
  | Ok f -> (
      match Formula.nests f with
      | [ n ] -> n
      | ns -> Alcotest.fail (Printf.sprintf "expected 1 nest, got %d" (List.length ns)))

let test_chain_feasible () =
  let inst =
    match Protocol.Registry.parse "token-ring:3" with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  let g = Channel_graph.extract ~fuel:6 (Protocol.spec_of inst) in
  let verdict = Chain_check.gain g ~origins:(Some [ 0 ]) (nest_of "K p2 holds0") in
  (match verdict with
  | Chain_check.Feasible { chain; min_hops; _ } ->
      check Alcotest.(list int) "chain" [ 0; 2 ] chain;
      check Alcotest.int "hops around ring" 2 min_hops
  | _ -> Alcotest.fail "expected feasible");
  check Alcotest.(option int) "depth bound" (Some 4)
    (Chain_check.min_depth verdict)

let test_chain_infeasible () =
  let g = Channel_graph.extract Fixtures.one_msg in
  (* p1's state can never reach p0: no channel back *)
  match Chain_check.gain g ~origins:(Some [ 1 ]) (nest_of "K p0 x") with
  | Chain_check.Infeasible { level = Some 1; _ } -> ()
  | _ -> Alcotest.fail "expected infeasible at level 1"

let test_chain_everyone () =
  let g = Channel_graph.extract Fixtures.one_msg in
  (* E {p0,p1} of a p0-local fact: p1 is reachable, but p0 knows it
     trivially (reflexive reach) — feasible *)
  (match Chain_check.gain g ~origins:(Some [ 0 ]) (nest_of "E {0,1} x") with
  | Chain_check.Feasible _ -> ()
  | _ -> Alcotest.fail "E over reachable members should be feasible");
  (* E of a p1-local fact: p0 can never learn it — infeasible *)
  match Chain_check.gain g ~origins:(Some [ 1 ]) (nest_of "E {0,1} x") with
  | Chain_check.Infeasible _ -> ()
  | _ -> Alcotest.fail "E with an unreachable member should be infeasible"

let test_chain_loss_direction () =
  let g = Channel_graph.extract Fixtures.one_msg in
  (* gain of K p1 (p0-local b) is feasible along 0->1; loss needs the
     reverse chain <p1, p0>, which does not exist *)
  (match Chain_check.gain g ~origins:(Some [ 0 ]) (nest_of "K p1 x") with
  | Chain_check.Feasible _ -> ()
  | _ -> Alcotest.fail "gain should be feasible");
  match Chain_check.loss g ~origins:(Some [ 0 ]) (nest_of "K p1 x") with
  | Chain_check.Infeasible _ -> ()
  | _ -> Alcotest.fail "loss should be infeasible"

let test_chain_nested_depth () =
  let inst =
    match Protocol.Registry.parse "token-ring:3" with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  let g = Channel_graph.extract ~fuel:8 (Protocol.spec_of inst) in
  (* K p1 K p2 holds0: info must travel p0 -> p2 (2 hops), then p2 -> p1
     (2 more around the ring) *)
  match Chain_check.gain g ~origins:(Some [ 0 ]) (nest_of "K p1 (K p2 holds0)") with
  | Chain_check.Feasible { min_hops; _ } ->
      check Alcotest.int "nested hops" 4 min_hops
  | _ -> Alcotest.fail "expected feasible"

(* -- locality vs Local_pred ----------------------------------------------- *)

let test_locality_cross_check () =
  List.iter
    (fun name ->
      let inst =
        match Protocol.Registry.parse name with
        | Ok i -> i
        | Error e -> Alcotest.fail e
      in
      let spec = Protocol.spec_of inst in
      let atoms = Protocol.atoms_of inst in
      let depth = min 4 (Protocol.depth_of inst) in
      let loc = Locality.probe spec ~depth ~atoms in
      if Locality.exhaustive loc then begin
        let u = Universe.enumerate ~mode:`Full spec ~depth in
        List.iter
          (fun (aname, prop) ->
            let inferred =
              match Locality.local_pids loc aname with
              | Some ps -> ps
              | None -> Alcotest.fail "atom missing from probe"
            in
            for p = 0 to Spec.n spec - 1 do
              let exact =
                Local_pred.is_local u (Pset.singleton (Pid.of_int p)) prop
              in
              checkb
                (Printf.sprintf "%s/%s local to p%d" name aname p)
                exact
                (List.mem p inferred)
            done)
          atoms
      end)
    [ "ping-pong"; "two-generals"; "token-ring:3"; "tracking"; "credit:2" ]

(* -- the soundness property ----------------------------------------------- *)

(* For every registry protocol at depth <= 5: derive every single- and
   two-level nest over its atoms; whenever the static analysis says the
   nest provably never holds, enumeration must agree — the nested
   knowledge holds at no stored computation. *)
let test_unlearnable_sound () =
  let budget = Universe.budget ~max_states:4_000 () in
  let fired = ref 0 in
  List.iter
    (fun proto ->
      let inst = Protocol.default_instance proto in
      let spec = Protocol.spec_of inst in
      let atoms = Protocol.atoms_of inst in
      if atoms <> [] then begin
        let depth = min 5 (Protocol.depth_of inst) in
        let n = Spec.n spec in
        let g = Channel_graph.extract ~fuel:depth ~max_states:10_000 spec in
        let loc = Locality.probe spec ~depth ~atoms in
        let env name = List.assoc_opt name atoms in
        let pids = List.init (min n 4) Fun.id in
        let nests =
          List.concat_map
            (fun (aname, _) ->
              let body = Formula.Atom aname in
              List.concat_map
                (fun q ->
                  Formula.Know ([ q ], body)
                  :: List.map
                       (fun r -> Formula.Know ([ r ], Formula.Know ([ q ], body)))
                       pids)
                pids)
            atoms
          |> List.concat_map Formula.nests
        in
        let universe = lazy (Universe.enumerate ~budget spec ~depth) in
        List.iter
          (fun (nest : Formula.nest) ->
            let origins = Locality.origins loc nest.body in
            let gain = Chain_check.gain g ~origins nest in
            if Chain_check.never_holds g ~env ~depth:(Some depth) nest ~gain
            then begin
              incr fired;
              let u = Lazy.force universe in
              let body_prop =
                match nest.body with
                | Formula.Atom a -> List.assoc a atoms
                | _ -> Alcotest.fail "atom body expected"
              in
              let psets =
                List.map
                  (fun (l : Formula.nest_level) ->
                    Pset.of_list (List.map Pid.of_int l.Formula.pset))
                  nest.levels
              in
              let k = Knowledge.nested u psets body_prop in
              Universe.iter
                (fun _ z ->
                  checkb
                    (Printf.sprintf "%s: %s holds nowhere"
                       (Protocol.name proto)
                       (Formula.print nest.subformula))
                    false (Prop.eval k z))
                u
            end)
          nests
      end)
    (Protocol.Registry.list ());
  (* guard against vacuity: the registry contains protocols (e.g. the
     one-way [underlying] chain) whose derived nests are unlearnable *)
  checkb "some unlearnable verdicts were exercised" true (!fired > 0)

(* -- scenario channel validation ------------------------------------------ *)

let test_validate_channels () =
  let channels = [ (0, 1); (1, 2); (2, 0) ] in
  let ok s =
    match Faults.Scenario.parse s with
    | Ok t -> Faults.Scenario.validate_channels t ~channels
    | Error e -> Alcotest.fail e
  in
  checkb "existing channel passes" true (ok "drop:p0->p1" = Ok ());
  checkb "wildcard passes" true (ok "drop:*" = Ok ());
  checkb "crash items pass" true (ok "crash:p1@2" = Ok ());
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match ok "drop:p0->p2" with
  | Error msg ->
      checkb "error names the bad channel" true (contains msg "p0->p2");
      checkb "error names a real channel" true (contains msg "p0->p1")
  | Ok () -> Alcotest.fail "nonexistent drop channel must be rejected");
  match ok "dup:p2->p1" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "nonexistent dup channel must be rejected"

(* -- lint driver ----------------------------------------------------------- *)

let test_lint_clean_and_dirty () =
  let lint name =
    match Protocol.Registry.parse name with
    | Ok i -> Lint.lint_instance i
    | Error e -> Alcotest.fail e
  in
  checkb "token-ring clean" true (Lint.clean (lint "token-ring:3"));
  (* tracking's starved receive is declared expected — clean *)
  let tr = lint "tracking" in
  checkb "tracking clean via expectation" true (Lint.clean tr);
  checkb "tracking finding annotated" true
    (List.exists
       (fun f -> f.Lint.rule = "recv-starved" && f.Lint.expected)
       tr.Lint.findings)

let test_lint_unlearnable_formula () =
  let inst =
    match Protocol.Registry.parse "underlying:3" with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  let f =
    match Formula.parse "K p0 chaindone" with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let r = Lint.lint_instance ~formulas:[ f ] inst in
  checkb "reported as error" true
    (List.exists
       (fun fi -> fi.Lint.rule = "chain-infeasible" && fi.Lint.severity = Lint.Error)
       r.Lint.findings);
  check Alcotest.int "exit code" 1 (Lint.exit_code [ r ])

let test_lint_registry_gate () =
  (* the CI gate in library form: every protocol lints clean *)
  let reports =
    List.map
      (fun t ->
        Lint.lint_instance ~max_states:8_000 (Protocol.default_instance t))
      (Protocol.Registry.list ())
  in
  List.iter
    (fun r ->
      checkb (Printf.sprintf "%s clean" r.Lint.subject) true (Lint.clean r))
    reports

let suite =
  [
    Alcotest.test_case "graph: one message" `Quick test_graph_one_msg;
    Alcotest.test_case "graph: token ring" `Quick test_graph_ring;
    Alcotest.test_case "graph: hygiene findings" `Quick test_graph_hygiene;
    Alcotest.test_case "graph: dead letter" `Quick test_graph_dead_letter;
    Alcotest.test_case "graph: rule exception" `Quick test_graph_rule_raises;
    Alcotest.test_case "graph: over-approximates enumeration" `Slow
      test_graph_matches_enabled;
    Alcotest.test_case "chain: feasible with witness" `Quick test_chain_feasible;
    Alcotest.test_case "chain: infeasible" `Quick test_chain_infeasible;
    Alcotest.test_case "chain: everyone levels" `Quick test_chain_everyone;
    Alcotest.test_case "chain: loss direction" `Quick test_chain_loss_direction;
    Alcotest.test_case "chain: nested depth bound" `Quick test_chain_nested_depth;
    Alcotest.test_case "locality matches Local_pred" `Slow
      test_locality_cross_check;
    Alcotest.test_case "unlearnable verdicts sound vs enumeration" `Slow
      test_unlearnable_sound;
    Alcotest.test_case "scenario channel validation" `Quick
      test_validate_channels;
    Alcotest.test_case "lint: clean and expected findings" `Quick
      test_lint_clean_and_dirty;
    Alcotest.test_case "lint: unlearnable formula is an error" `Quick
      test_lint_unlearnable_formula;
    Alcotest.test_case "lint: whole registry clean" `Slow
      test_lint_registry_gate;
  ]
