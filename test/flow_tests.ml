(* The abstract interpreter (lib/analysis/dataflow.ml, `hpl flow`).

   Every static claim is cross-validated against the dynamic baseline,
   registry- and corpus-wide:

   - soundness of verdicts: a reported-dead rule's guard is false on
     every reachable local history of the fully enumerated universe at
     the protocol's suggested depth (and a tautology's guard is true),
     via [Dataflow.guard_holds] — the exact concrete semantics;
   - the static channel graph covers every dynamic channel, and equals
     [Channel_graph.extract] exactly when both sides claim exactness;
   - the exported independence relation really lets POR prune:
     por+independence preserves the set of blocked computations (the
     weakened contract of Reduction §10), stays a subset of the
     unreduced universe, is bit-identical on the protocols where the
     restriction never fires, and shows a strict state-count reduction
     on quorum — the row BENCH.json tracks;
   - profile and AST front ends agree on the ported specs. *)
open Hpl_core
open Hpl_protocols
open Hpl_analysis
open Hpl_dsl

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let spec_path file =
  let candidates =
    List.map
      (fun up -> Filename.concat up (Filename.concat "corpus/specs" file))
      [ "."; ".."; "../.."; "../../.."; "../../../.."; "../../../../.." ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
      Alcotest.failf "corpus spec %s not found from %s" file (Sys.getcwd ())

let corpus_files = [ "ping_pong.hpl"; "ring.hpl"; "quorum.hpl"; "relay.hpl" ]

let load_spec file =
  match Elaborate.load_file (spec_path file) with
  | Ok l -> l
  | Error d -> Alcotest.failf "cannot load %s: %s" file (Diag.to_string d)

let load_inline src =
  match Elaborate.load_string ~file:"inline.hpl" src with
  | Ok l -> l
  | Error d -> Alcotest.failf "cannot load inline spec: %s" (Diag.to_string d)

let flow_of_loaded l =
  let values = Protocol.defaults l.Elaborate.proto in
  match Dataflow.of_loaded l values with
  | Ok t -> t
  | Error d -> Alcotest.failf "flow failed: %s" (Diag.to_string d)

(* every registry protocol that declares a profile, with its analysis *)
let profiled () =
  List.filter_map
    (fun proto ->
      let inst = Protocol.default_instance proto in
      Option.map
        (fun df -> (Protocol.instance_name inst, inst, df))
        (Dataflow.of_instance inst))
    (Protocol.Registry.list ())

(* analyses of the ported corpus specs, through the AST front end *)
let corpus () =
  List.map
    (fun file ->
      let l = load_spec file in
      let inst = Protocol.default_instance l.Elaborate.proto in
      (file, inst, flow_of_loaded l))
    corpus_files

let enum ?reduce inst ~depth =
  Universe.enumerate ?reduce (Protocol.spec_of inst) ~depth

(* -- soundness of verdicts, against full enumeration ---------------------- *)

(* The universe is prefix-closed (canonical representatives are closed
   under prefixes), so the projections of the stored computations are
   exactly the reachable local histories at this depth. *)
let assert_verdicts_sound ~what inst df =
  let depth = Protocol.depth_of inst in
  let u = enum inst ~depth in
  check tbool (what ^ ": complete universe") true
    (Universe.status u = Universe.Complete);
  List.iter
    (fun (r : Dataflow.rule_report) ->
      match r.Dataflow.verdict with
      | Dataflow.Sat -> ()
      | Dataflow.Dead ->
          Universe.iter
            (fun i z ->
              let h = Trace.proj z (Pid.of_int r.Dataflow.pid) in
              if
                Dataflow.guard_holds df ~pid:r.Dataflow.pid
                  ~index:r.Dataflow.index h
              then
                Alcotest.failf
                  "%s: dead rule p%d/%d `when %s` enabled at computation %d"
                  what r.Dataflow.pid r.Dataflow.index r.Dataflow.text i)
            u
      | Dataflow.Tautology ->
          Universe.iter
            (fun i z ->
              let h = Trace.proj z (Pid.of_int r.Dataflow.pid) in
              if
                not
                  (Dataflow.guard_holds df ~pid:r.Dataflow.pid
                     ~index:r.Dataflow.index h)
              then
                Alcotest.failf
                  "%s: tautology p%d/%d `when %s` false at computation %d"
                  what r.Dataflow.pid r.Dataflow.index r.Dataflow.text i)
            u)
    (Dataflow.rules df)

let test_registry_verdicts_sound () =
  List.iter (fun (name, inst, df) -> assert_verdicts_sound ~what:name inst df)
    (profiled ())

let test_corpus_verdicts_sound () =
  List.iter (fun (file, inst, df) -> assert_verdicts_sound ~what:file inst df)
    (corpus ())

(* relay.hpl is the fixture whose dead rule is real: the verdict must
   actually be Dead (not just absent-of-unsoundness), the finding must
   carry the guard's span, and the expected-annotation must match *)
let test_relay_dead_rule () =
  let l = load_spec "relay.hpl" in
  let df = flow_of_loaded l in
  (match Dataflow.dead_rules df with
  | [ r ] ->
      check tint "dead rule is p1's" 1 r.Dataflow.pid;
      check tint "dead rule is rule 2" 2 r.Dataflow.index;
      check tbool "where is a span into the file" true
        (let w = r.Dataflow.where in
         let has_dash = String.contains w '-' in
         has_dash
         && String.length w > 10
         && Filename.basename (List.hd (String.split_on_char ':' w))
            = "relay.hpl")
  | rs -> Alcotest.failf "expected exactly one dead rule, got %d" (List.length rs));
  (match Dataflow.findings df ~expect:[ "dead-rule@p1" ] with
  | [ f ] ->
      check Alcotest.string "rule id" "dead-rule" f.Lint.rule;
      check tbool "severity warning" true (f.Lint.severity = Lint.Warning);
      check tbool "expected" true f.Lint.expected
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  match Dataflow.findings df ~expect:[] with
  | [ f ] -> check tbool "unexpected without annotation" false f.Lint.expected
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* -- static channel graph vs Channel_graph.extract ------------------------ *)

let dynamic_channels inst ~depth =
  let g =
    Channel_graph.extract ~fuel:(max 1 (min 16 depth)) ~max_states:60_000
      (Protocol.spec_of inst)
  in
  let edges =
    List.concat_map
      (fun (s, d) ->
        List.map (fun p -> (s, d, p)) (Channel_graph.channel_payloads g s d))
      (Channel_graph.channels g)
  in
  (List.sort compare edges, Channel_graph.scope g)

let assert_channels_cross ~what inst df =
  let depth = Protocol.depth_of inst in
  let dynamic, scope = dynamic_channels inst ~depth in
  let static = Dataflow.channels df in
  List.iter
    (fun (s, d, p) ->
      if not (List.mem (s, d, p) static) then
        Alcotest.failf "%s: dynamic channel p%d->p%d %S missing statically"
          what s d p)
    dynamic;
  (* both sides exact: the graphs must agree edge for edge *)
  if scope = Channel_graph.Exact && Dataflow.graph_exact df then
    check
      Alcotest.(list (triple int int string))
      (what ^ ": exact graphs equal") dynamic static

let test_registry_channels () =
  List.iter (fun (name, inst, df) -> assert_channels_cross ~what:name inst df)
    (profiled ())

let test_corpus_channels () =
  List.iter (fun (file, inst, df) -> assert_channels_cross ~what:file inst df)
    (corpus ())

(* -- por + independence: the reduction actually prunes -------------------- *)

let blocked u =
  let spec = Universe.spec u in
  Universe.fold
    (fun _ z acc -> if Spec.enabled spec z = [] then z :: acc else acc)
    u []
  |> List.map Trace.to_list |> List.sort compare

let por_with_independence df =
  match Dataflow.independence df with
  | Some ind -> Reduction.with_independence Reduction.por ind
  | None -> Alcotest.fail "expected an independence relation"

(* registry-wide (profiled): por+independence preserves every blocked
   computation and never invents one — at the suggested depth, where
   the certificate may or may not apply *)
let test_por_independence_blocked_preservation () =
  List.iter
    (fun (name, inst, df) ->
      let depth = Protocol.depth_of inst in
      let u0 = enum inst ~depth in
      let u1 = enum ~reduce:(por_with_independence df) inst ~depth in
      check tbool (name ^ ": subset") true
        (Universe.fold
           (fun _ z acc -> acc && Universe.index u0 z <> None)
           u1 true);
      check
        Alcotest.(list (list string))
        (name ^ ": blocked computations preserved")
        (List.map (List.map Event.to_string) (blocked u0))
        (List.map (List.map Event.to_string) (blocked u1)))
    (profiled ())

(* quorum at depth 9: the certificate applies (Σ bound = 7 <= 9) and
   the restriction really fires — strictly fewer states than plain por,
   which is itself bit-identical to the unreduced run *)
let test_quorum_strict_reduction () =
  let _, inst, df =
    List.find (fun (n, _, _) -> n = "quorum:5:2") (profiled ())
  in
  let depth = 9 in
  let u0 = enum inst ~depth in
  let upor = enum ~reduce:Reduction.por inst ~depth in
  let uind = enum ~reduce:(por_with_independence df) inst ~depth in
  check tint "plain por is bit-identical" (Universe.size u0)
    (Universe.size upor);
  check tbool "por+independence strictly reduces" true
    (Universe.size uind < Universe.size u0);
  check
    Alcotest.(list (list string))
    "blocked computations preserved"
    (List.map (List.map Event.to_string) (blocked u0))
    (List.map (List.map Event.to_string) (blocked uind))

let test_quorum_independence_shape () =
  let _, _, df = List.find (fun (n, _, _) -> n = "quorum:5:2") (profiled ()) in
  match Dataflow.independence df with
  | None -> Alcotest.fail "quorum has no independence relation"
  | Some ind ->
      check tint "total" 7 (Reduction.Independence.total ind);
      check tint "n" 5 (Reduction.Independence.n ind);
      check tbool "p0 not stable (it receives)" false
        (Reduction.Independence.stable ind 0);
      check tint "p0 bound" 3 (Reduction.Independence.bound ind 0);
      for p = 1 to 4 do
        check tbool
          (Printf.sprintf "p%d stable" p)
          true
          (Reduction.Independence.stable ind p);
        check tint (Printf.sprintf "p%d bound" p) 1
          (Reduction.Independence.bound ind p)
      done;
      check tbool "applicable at 7" true
        (Reduction.Independence.applicable ind ~depth:7);
      check tbool "not applicable at 6" false
        (Reduction.Independence.applicable ind ~depth:6)

(* on all-receive protocols the singleton restriction never fires: the
   universe stays bit-identical with the independence attached *)
let test_por_independence_bit_identity_when_inapplicable () =
  List.iter
    (fun name ->
      let _, inst, df = List.find (fun (n, _, _) -> n = name) (profiled ()) in
      let depth = Protocol.depth_of inst in
      let u0 = enum ~reduce:Reduction.por inst ~depth in
      let u1 = enum ~reduce:(por_with_independence df) inst ~depth in
      check tint (name ^ ": size") (Universe.size u0) (Universe.size u1);
      Universe.iter
        (fun i z ->
          check tbool
            (Printf.sprintf "%s: comp %d" name i)
            true
            (Trace.equal z (Universe.comp u1 i)))
        u0)
    [ "ring:6:2"; "ping-pong" ]

(* -- the two front ends agree on ported specs ----------------------------- *)

let test_profile_ast_agreement () =
  List.iter
    (fun (file, reg_name) ->
      let ast_df = flow_of_loaded (load_spec file) in
      let _, _, prof_df =
        List.find (fun (n, _, _) -> n = reg_name) (profiled ())
      in
      check
        Alcotest.(list (triple int int string))
        (file ^ ": channels agree")
        (Dataflow.channels prof_df) (Dataflow.channels ast_df);
      check tint (file ^ ": dead rules agree")
        (List.length (Dataflow.dead_rules prof_df))
        (List.length (Dataflow.dead_rules ast_df));
      match (Dataflow.independence prof_df, Dataflow.independence ast_df) with
      | Some a, Some b ->
          check tint (file ^ ": independence total")
            (Reduction.Independence.total a)
            (Reduction.Independence.total b);
          for p = 0 to Reduction.Independence.n a - 1 do
            check tbool
              (Printf.sprintf "%s: p%d stability" file p)
              (Reduction.Independence.stable a p)
              (Reduction.Independence.stable b p);
            check tint
              (Printf.sprintf "%s: p%d bound" file p)
              (Reduction.Independence.bound a p)
              (Reduction.Independence.bound b p)
          done
      | None, None -> ()
      | _ -> Alcotest.failf "%s: independence presence differs" file)
    [ ("ping_pong.hpl", "ping-pong"); ("ring.hpl", "ring:6:2");
      ("quorum.hpl", "quorum:5:2") ]

(* -- findings: unreachable atoms and tautologies -------------------------- *)

let test_unreachable_atom_finding () =
  let l =
    load_inline
      "protocol \"inline-dead-atom\" {\n\
      \  processes 2\n\
      \  process 0 {\n\
      \    when sends == 0 => send \"ping\" to 1\n\
      \  }\n\
      \  process 1 {\n\
      \    when len == 0 => recv\n\
      \  }\n\
      \  atom ghost at 1 = recvs(\"pong\") > 0\n\
      }\n"
  in
  let df = flow_of_loaded l in
  check tbool "not clean" false (Dataflow.clean df);
  let fs = Dataflow.findings df ~expect:[] in
  check tbool "unreachable-message on the atom" true
    (List.exists
       (fun f -> f.Lint.rule = "unreachable-message" && f.Lint.target = "ghost")
       fs)

let test_tautology_finding () =
  let l =
    load_inline
      "protocol \"inline-taut\" {\n\
      \  processes 2\n\
      \  depth 3\n\
      \  process 0 {\n\
      \    when len >= 0 => send \"m\" to 1\n\
      \  }\n\
      \  process 1 {\n\
      \    when len == 0 => recv\n\
      \  }\n\
      }\n"
  in
  let df = flow_of_loaded l in
  let fs = Dataflow.findings df ~expect:[] in
  check tbool "guard-tautology reported at info" true
    (List.exists
       (fun f -> f.Lint.rule = "guard-tautology" && f.Lint.severity = Lint.Info)
       fs);
  (* info findings never gate *)
  check tbool "tautology does not gate" true
    (List.for_all
       (fun f -> f.Lint.severity = Lint.Info || f.Lint.expected)
       fs)

(* -- diagnostic spans ------------------------------------------------------ *)

let test_diag_spans () =
  let p l c = { Ast.line = l; col = c } in
  check Alcotest.string "point" "f.hpl:3:7: boom"
    (Diag.to_string (Diag.make ~file:"f.hpl" ~pos:(p 3 7) "boom"));
  let same = Diag.span ~file:"f.hpl" ~pos:(p 3 7) ~epos:(p 3 19) "boom" in
  check Alcotest.string "same-line span" "f.hpl:3:7-19: boom"
    (Diag.to_string same);
  check tbool "span recognized" true (Diag.is_span same);
  let multi = Diag.span ~file:"f.hpl" ~pos:(p 3 7) ~epos:(p 5 2) "boom" in
  check Alcotest.string "multi-line span" "f.hpl:3:7-5:2: boom"
    (Diag.to_string multi);
  (* a degenerate range collapses to a point *)
  let degen = Diag.span ~file:"f.hpl" ~pos:(p 3 7) ~epos:(p 3 7) "boom" in
  check Alcotest.string "degenerate span is a point" "f.hpl:3:7: boom"
    (Diag.to_string degen);
  check tbool "degenerate not a span" false (Diag.is_span degen)

let suite =
  [
    Alcotest.test_case "verdicts sound, registry-wide" `Quick
      test_registry_verdicts_sound;
    Alcotest.test_case "verdicts sound, corpus-wide" `Quick
      test_corpus_verdicts_sound;
    Alcotest.test_case "relay fixture: the dead rule is found" `Quick
      test_relay_dead_rule;
    Alcotest.test_case "static channels cover dynamic, registry" `Quick
      test_registry_channels;
    Alcotest.test_case "static channels cover dynamic, corpus" `Quick
      test_corpus_channels;
    Alcotest.test_case "por+independence preserves blocked computations"
      `Quick test_por_independence_blocked_preservation;
    Alcotest.test_case "quorum: por+independence strictly reduces" `Quick
      test_quorum_strict_reduction;
    Alcotest.test_case "quorum: independence relation shape" `Quick
      test_quorum_independence_shape;
    Alcotest.test_case "bit-identical where restriction never fires" `Quick
      test_por_independence_bit_identity_when_inapplicable;
    Alcotest.test_case "profile and AST front ends agree" `Quick
      test_profile_ast_agreement;
    Alcotest.test_case "unreachable atom is reported" `Quick
      test_unreachable_atom_finding;
    Alcotest.test_case "guard tautology is reported at info" `Quick
      test_tautology_finding;
    Alcotest.test_case "diagnostic spans render" `Quick test_diag_spans;
  ]
