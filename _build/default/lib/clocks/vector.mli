(** Vector clocks.

    The operational realization of the paper's causality: a vector
    timestamp per event characterizes happened-before {e exactly}
    ([e ⤳ e' ⟺ vt e ≤ vt e']), which is what lets a process decide
    locally whether a fact could have reached it — the "minimum
    information flow" of §1 made executable. *)

type t
(** A process's clock: a vector of event counts, one per process. *)

val create : n:int -> me:Hpl_core.Pid.t -> t
val me : t -> Hpl_core.Pid.t
val read : t -> int array
(** Snapshot of the current vector (fresh array). *)

val tick : t -> int array
(** Advance own component (internal event); returns the event's
    timestamp. *)

val send : t -> int array
(** Advance and return the timestamp to piggyback. *)

val observe : t -> int array -> int array
(** Merge a received timestamp (component-wise max), then advance own
    component. Returns the receive event's timestamp. *)

(** Comparison of timestamps. *)
val leq : int array -> int array -> bool

val lt : int array -> int array -> bool
val concurrent : int array -> int array -> bool

val stamp_trace : n:int -> Hpl_core.Trace.t -> (Hpl_core.Event.t * int array) list
(** Offline assignment over a computation (one clock per process,
    piggybacked on messages). *)

val characterizes_causality : n:int -> Hpl_core.Trace.t -> bool
(** Checks [e ⤳ e' ⟺ vt e ≤ vt e'] against {!Hpl_core.Causality} for
    every pair — the exactness property scalar clocks lack. *)
