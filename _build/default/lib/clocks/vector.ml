open Hpl_core

type t = { who : Pid.t; v : int array }

let create ~n ~me =
  if Pid.to_int me >= n then invalid_arg "Vector.create: pid out of range";
  { who = me; v = Array.make n 0 }

let me c = c.who
let read c = Array.copy c.v

let tick c =
  let i = Pid.to_int c.who in
  c.v.(i) <- c.v.(i) + 1;
  Array.copy c.v

let send = tick

let observe c ts =
  Array.iteri (fun i x -> if x > c.v.(i) then c.v.(i) <- x) ts;
  tick c

let leq a b =
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let lt a b = leq a b && not (leq b a)
let concurrent a b = (not (leq a b)) && not (leq b a)

let stamp_trace ~n z =
  (match Trace.well_formed_error z with
  | Some reason -> invalid_arg ("Vector.stamp_trace: " ^ reason)
  | None -> ());
  let clocks = Array.init n (fun i -> create ~n ~me:(Pid.of_int i)) in
  let msg_ts : (Pid.t * int, int array) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (fun e ->
      let c = clocks.(Pid.to_int e.Event.pid) in
      let ts =
        match e.Event.kind with
        | Event.Internal _ -> tick c
        | Event.Send m ->
            let ts = send c in
            Hashtbl.replace msg_ts (Msg.key m) ts;
            ts
        | Event.Receive m -> observe c (Hashtbl.find msg_ts (Msg.key m))
      in
      (e, ts))
    (Trace.to_list z)

let characterizes_causality ~n z =
  let stamped = Array.of_list (stamp_trace ~n z) in
  let ts = Causality.compute ~n z in
  let ok = ref true in
  let len = Array.length stamped in
  for i = 0 to len - 1 do
    for j = 0 to len - 1 do
      let _, vi = stamped.(i) and _, vj = stamped.(j) in
      if Causality.hb ts i j <> leq vi vj then ok := false
    done
  done;
  !ok
