(** Direct-dependency clocks (Fowler–Zwaenepoel).

    Vector clocks piggyback O(n) integers on every message; dependency
    clocks piggyback {e one} — the sender's local event count. Each
    process then records only its {e direct} dependencies: the latest
    known event of each sender it heard from first-hand. Transitive
    causality is lost online but recoverable {e offline} by closing the
    dependency graph — the classic trade-off for distributed debugging,
    where traces are analyzed after the fact anyway.

    {!reconstruct} performs the offline closure and the tests verify it
    agrees exactly with {!Hpl_core.Causality} (which is built from full
    vector clocks) on every computation tried: cheap online, exact
    offline. *)

type t
(** A process's direct-dependency vector. *)

val create : n:int -> me:Hpl_core.Pid.t -> t
val tick : t -> int
(** Advance for an internal event; returns the local event count. *)

val send : t -> int
(** Advance and return the scalar to piggyback (the sender's new local
    event count). *)

val observe : t -> src:Hpl_core.Pid.t -> int -> int
(** Record a receive of a message carrying the sender's count; returns
    the local event count of the receive. *)

val read : t -> int array
(** Direct-dependency vector: entry [q] is the highest event count of
    [q] directly heard from (own entry: own count). *)

val stamp_trace :
  n:int -> Hpl_core.Trace.t -> (Hpl_core.Event.t * int array) list
(** Offline assignment of direct-dependency vectors per event. *)

val reconstruct : n:int -> Hpl_core.Trace.t -> (int -> int -> bool)
(** [reconstruct ~n z] closes the direct dependencies transitively and
    returns a happened-before oracle on trace positions (reflexive),
    equal to {!Hpl_core.Causality.hb}. *)
