lib/clocks/causal_order.ml: Array Causality Event Hashtbl Hpl_core List Msg Option Pid Trace
