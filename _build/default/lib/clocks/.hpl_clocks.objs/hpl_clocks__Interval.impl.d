lib/clocks/interval.ml: Causality Event Format Hashtbl Hpl_core Int List Pid String Trace
