lib/clocks/lamport.ml: Array Causality Event Hashtbl Hpl_core List Msg Pid Trace
