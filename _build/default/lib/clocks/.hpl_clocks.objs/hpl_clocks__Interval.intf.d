lib/clocks/interval.mli: Format Hpl_core
