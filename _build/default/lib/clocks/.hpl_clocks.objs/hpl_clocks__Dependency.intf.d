lib/clocks/dependency.mli: Hpl_core
