lib/clocks/lamport.mli: Hpl_core
