lib/clocks/causal_order.mli: Hpl_core
