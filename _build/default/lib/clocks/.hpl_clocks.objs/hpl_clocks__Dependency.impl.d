lib/clocks/dependency.ml: Array Event Hashtbl Hpl_core List Msg Pid Trace
