lib/clocks/vector.mli: Hpl_core
