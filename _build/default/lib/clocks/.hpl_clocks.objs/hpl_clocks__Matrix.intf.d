lib/clocks/matrix.mli: Hpl_core
