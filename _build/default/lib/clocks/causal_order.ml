open Hpl_core

let receive_positions z =
  List.mapi (fun i e -> (i, e)) (Trace.to_list z)
  |> List.filter_map (fun (i, e) ->
         match e.Event.kind with
         | Event.Receive m -> Some (i, e.Event.pid, m)
         | Event.Send _ | Event.Internal _ -> None)

let violations ~n z =
  let ts = Causality.compute ~n z in
  let events = Array.of_list (Trace.to_list z) in
  let send_pos : (Pid.t * int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i e ->
      match e.Event.kind with
      | Event.Send m -> Hashtbl.replace send_pos (Msg.key m) i
      | Event.Receive _ | Event.Internal _ -> ())
    events;
  let recvs = receive_positions z in
  let out = ref [] in
  List.iter
    (fun (i1, p1, m1) ->
      List.iter
        (fun (i2, p2, m2) ->
          if Pid.equal p1 p2 && i2 < i1 (* m2 delivered first *) then begin
            let s1 = Hashtbl.find send_pos (Msg.key m1) in
            let s2 = Hashtbl.find send_pos (Msg.key m2) in
            (* violation when send m1 ⤳ send m2 but m2 arrived first *)
            if s1 <> s2 && Causality.hb ts s1 s2 then out := (m1, m2) :: !out
          end)
        recvs)
    recvs;
  List.rev !out

let delivers_causally ~n z = violations ~n z = []

let fifo_per_channel z =
  let sends = Trace.sent z in
  let ok = ref true in
  let recv_order : (int * int, int list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let key = (Pid.to_int m.Msg.src, Pid.to_int m.Msg.dst) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt recv_order key) in
      Hashtbl.replace recv_order key (prev @ [ m.Msg.seq ]))
    (Trace.received z);
  (* per channel, the receive sequence must be increasing within the
     sender's send order restricted to that destination *)
  Hashtbl.iter
    (fun (src, dst) seqs ->
      let channel_sends =
        List.filter
          (fun m -> Pid.to_int m.Msg.src = src && Pid.to_int m.Msg.dst = dst)
          sends
        |> List.map (fun m -> m.Msg.seq)
      in
      let rank s =
        let rec go i = function
          | [] -> -1
          | x :: tl -> if x = s then i else go (i + 1) tl
        in
        go 0 channel_sends
      in
      let ranks = List.map rank seqs in
      let rec increasing = function
        | a :: b :: tl -> a < b && increasing (b :: tl)
        | _ -> true
      in
      if not (increasing ranks) then ok := false)
    recv_order;
  !ok
