open Hpl_core

type t = { who : Pid.t; m : int array array }

let create ~n ~me =
  if Pid.to_int me >= n then invalid_arg "Matrix.create: pid out of range";
  { who = me; m = Array.init n (fun _ -> Array.make n 0) }

let me c = c.who
let read c = Array.map Array.copy c.m
let own_vector c = Array.copy c.m.(Pid.to_int c.who)

let tick c =
  let i = Pid.to_int c.who in
  c.m.(i).(i) <- c.m.(i).(i) + 1

let send c =
  tick c;
  read c

let observe c ~src other =
  let n = Array.length c.m in
  let i = Pid.to_int c.who and s = Pid.to_int src in
  (* all rows: pointwise max — anything the sender knew about anyone's
     knowledge, we now know too *)
  for q = 0 to n - 1 do
    for r = 0 to n - 1 do
      if other.(q).(r) > c.m.(q).(r) then c.m.(q).(r) <- other.(q).(r)
    done
  done;
  (* our own view absorbs the sender's own view *)
  for r = 0 to n - 1 do
    if other.(s).(r) > c.m.(i).(r) then c.m.(i).(r) <- other.(s).(r)
  done;
  c.m.(i).(i) <- c.m.(i).(i) + 1

let knows_count c ~about = c.m.(Pid.to_int c.who).(Pid.to_int about)
let knows_that_knows c ~mid ~about = c.m.(Pid.to_int mid).(Pid.to_int about)

let stamp_trace ~n z =
  (match Trace.well_formed_error z with
  | Some reason -> invalid_arg ("Matrix.stamp_trace: " ^ reason)
  | None -> ());
  let clocks = Array.init n (fun i -> create ~n ~me:(Pid.of_int i)) in
  let msg_m : (Pid.t * int, int array array) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (fun e ->
      let c = clocks.(Pid.to_int e.Event.pid) in
      (match e.Event.kind with
      | Event.Internal _ -> tick c
      | Event.Send m -> Hashtbl.replace msg_m (Msg.key m) (send c)
      | Event.Receive m ->
          observe c ~src:m.Msg.src (Hashtbl.find msg_m (Msg.key m)));
      (e, read c))
    (Trace.to_list z)
