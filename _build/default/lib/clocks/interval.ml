open Hpl_core

type t = { owner : Pid.t; first : int; last : int }

let make ~owner ~first ~last =
  if first > last then invalid_arg "Interval.make: first > last";
  { owner; first; last }

let precedes ts a b = a.last <> b.first && Causality.hb ts a.last b.first

let can_affect ts a b =
  (* some event of a ⤳ some event of b: enough to test a.first vs
     b.last (happened-before is monotone along each interval) *)
  (not (a.owner = b.owner && a.first = b.first && a.last = b.last))
  && Causality.hb ts a.first b.last

let concurrent ts a b = (not (can_affect ts a b)) && not (can_affect ts b a)

let of_bracketing ~enter ~exit z =
  let events = Trace.to_list z in
  let open_at : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  List.iteri
    (fun i e ->
      match e.Event.kind with
      | Event.Internal tag when String.equal tag enter ->
          Hashtbl.replace open_at (Pid.to_int e.Event.pid) i
      | Event.Internal tag when String.equal tag exit -> (
          let p = Pid.to_int e.Event.pid in
          match Hashtbl.find_opt open_at p with
          | Some first ->
              Hashtbl.remove open_at p;
              out := { owner = e.Event.pid; first; last = i } :: !out
          | None -> ())
      | _ -> ())
    events;
  (* unmatched enters run to the end of the trace *)
  let len = List.length events in
  Hashtbl.iter
    (fun p first ->
      out := { owner = Pid.of_int p; first; last = len - 1 } :: !out)
    open_at;
  List.sort (fun a b -> Int.compare a.first b.first) !out

let totally_ordered ts intervals =
  let rec pairs = function
    | [] -> true
    | a :: rest ->
        List.for_all (fun b -> precedes ts a b || precedes ts b a) rest
        && pairs rest
  in
  pairs intervals

let pp fmt i =
  Format.fprintf fmt "%a[%d..%d]" Pid.pp i.owner i.first i.last
