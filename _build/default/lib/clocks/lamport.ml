open Hpl_core

type t = { mutable value : int }

let create () = { value = 0 }
let now c = c.value

let tick c =
  c.value <- c.value + 1;
  c.value

let send = tick

let observe c ts =
  c.value <- max c.value ts + 1;
  c.value

let stamp_trace ~n z =
  (match Trace.well_formed_error z with
  | Some reason -> invalid_arg ("Lamport.stamp_trace: " ^ reason)
  | None -> ());
  let clocks = Array.init n (fun _ -> create ()) in
  let msg_ts : (Pid.t * int, int) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (fun e ->
      let c = clocks.(Pid.to_int e.Event.pid) in
      let ts =
        match e.Event.kind with
        | Event.Internal _ -> tick c
        | Event.Send m ->
            let ts = send c in
            Hashtbl.replace msg_ts (Msg.key m) ts;
            ts
        | Event.Receive m -> observe c (Hashtbl.find msg_ts (Msg.key m))
      in
      (e, ts))
    (Trace.to_list z)

let consistent_with_causality ~n z =
  let stamped = Array.of_list (stamp_trace ~n z) in
  let ts = Causality.compute ~n z in
  let ok = ref true in
  let len = Array.length stamped in
  for i = 0 to len - 1 do
    for j = 0 to len - 1 do
      if i <> j && Causality.hb ts i j then begin
        let _, ti = stamped.(i) and _, tj = stamped.(j) in
        if not (ti < tj) then ok := false
      end
    done
  done;
  !ok
